package bufferqoe

import (
	"fmt"
	"time"

	"bufferqoe/internal/experiments"
	"bufferqoe/internal/testbed"
	"bufferqoe/internal/video"
)

// Link describes a custom access bottleneck: the rates and one-way
// propagation delays of the network under study. The zero value of
// any field keeps the paper's DSL figure (1 Mbit/s up, 16 Mbit/s
// down, 5 ms client side, 20 ms server side). Custom links run on the
// access topology template — clients behind a home router, a
// bottleneck pair, servers behind the far switch — which covers
// fiber, cable, and cellular access networks alike.
type Link struct {
	// UpRate / DownRate are the bottleneck rates in bits/s. When Wifi
	// is enabled they are the PHY air rates of the two directions.
	UpRate, DownRate float64
	// ClientDelay / ServerDelay are the one-way propagation delays
	// between the client network and the bottleneck, and between the
	// bottleneck and the server network.
	ClientDelay, ServerDelay time.Duration
	// Wifi, when Stations > 0, swaps the wired bottleneck for an
	// 802.11 MAC model: CSMA/CA contention among Stations stations on
	// one shared medium, collision retries with exponential backoff,
	// and A-MPDU frame aggregation. The buffer under test still sits
	// in front of the MAC, so the sizing question is unchanged — only
	// the service process is wireless.
	Wifi Wifi
	// Reorder, when in (0,1), reorders packets after the bottleneck:
	// each packet is independently held back with this probability,
	// letting its successors overtake it.
	Reorder float64
}

// Wifi configures the 802.11 MAC of a wireless Link. The zero value
// disables it.
type Wifi struct {
	// Stations is the number of stations contending for the medium
	// (1 = a single station, no collisions); 0 keeps the wired link.
	Stations int
	// RetryLimit bounds per-aggregate retransmissions before the MAC
	// drops the frames (default 7).
	RetryLimit int
	// MaxAggFrames caps A-MPDU aggregation (default 16; 1 disables
	// aggregation).
	MaxAggFrames int
}

// DSLLink is the paper's access link (Figure 3a): 1 Mbit/s up,
// 16 Mbit/s down, 25 ms one-way base delay.
func DSLLink() Link {
	return Link{
		UpRate: testbed.AccessUpRate, DownRate: testbed.AccessDownRate,
		ClientDelay: testbed.AccessClientDelay, ServerDelay: testbed.AccessServerDelay,
	}
}

// FiberLink is a symmetric 1 Gbit/s FTTH line with short last-mile
// delay.
func FiberLink() Link {
	return Link{
		UpRate: 1e9, DownRate: 1e9,
		ClientDelay: 2 * time.Millisecond, ServerDelay: 10 * time.Millisecond,
	}
}

// LTELink is a cellular-like access link: 8 Mbit/s up, 30 Mbit/s
// down, with a longer radio-side delay. Combine it with
// Scenario.Jitter for the air interface's delay variability.
func LTELink() Link {
	return Link{
		UpRate: 8e6, DownRate: 30e6,
		ClientDelay: 15 * time.Millisecond, ServerDelay: 20 * time.Millisecond,
	}
}

// WifiLink is an 802.11n-like home WLAN last hop: a 65 Mbit/s PHY
// shared by both directions, the given number of contending stations,
// default retry limit and A-MPDU aggregation, and short last-mile
// delay. The paper's testbeds deliberately omit WiFi
// connectivity (§5.1); this preset re-asks its buffer-sizing question
// on the link type it excluded.
func WifiLink(stations int) Link {
	return Link{
		UpRate: 65e6, DownRate: 65e6,
		ClientDelay: 2 * time.Millisecond, ServerDelay: 15 * time.Millisecond,
		Wifi: Wifi{Stations: stations},
	}
}

func (l Link) internal() testbed.LinkParams {
	return testbed.LinkParams{
		UpRate: l.UpRate, DownRate: l.DownRate,
		ClientDelay: l.ClientDelay, ServerDelay: l.ServerDelay,
		Wifi: testbed.WifiParams{
			Stations:     l.Wifi.Stations,
			RetryLimit:   l.Wifi.RetryLimit,
			MaxAggFrames: l.Wifi.MaxAggFrames,
		},
		Reorder: l.Reorder,
	}
}

// AQM selects the bottleneck queue discipline of a scenario.
type AQM string

// Queue disciplines. DropTail is the paper's configuration; the rest
// are the post-bufferbloat alternatives the ablations study. On the
// access shape the discipline manages both bottleneck queues, on the
// backbone the congested downstream queue.
const (
	DropTail AQM = ""
	CoDel    AQM = "codel"
	FQCoDel  AQM = "fq-codel"
	RED      AQM = "red"
	ARED     AQM = "ared"
	PIE      AQM = "pie"
)

// CC selects the background traffic's congestion control.
type CC string

// Congestion control algorithms. DefaultCC is the paper's choice for
// the testbed: CUBIC on the access shape, Reno on the backbone. BBR
// is the paced model-based algorithm (post-paper): it estimates
// bottleneck bandwidth and propagation delay, paces at the estimated
// rate, and caps inflight near the BDP, so it needs far less buffer
// than the loss-based family the paper measured.
const (
	DefaultCC CC = ""
	Cubic     CC = "cubic"
	Reno      CC = "reno"
	BIC       CC = "bic"
	BBR       CC = "bbr"
)

// Scenario declares one network-plus-workload configuration: where
// the traffic runs (a paper testbed or a custom link), what loads it
// (a Table 1 workload and its direction), and how the bottleneck
// behaves (queue discipline, congestion control, last-hop jitter).
// The zero value with a Workload is that workload on the paper's
// idle-default access testbed; everything else is opt-in.
type Scenario struct {
	// Name labels the scenario in results; "" derives a label from
	// the fields.
	Name string
	// Network selects a paper testbed; default Access. Custom links
	// run on the access shape, so Network must be Access (or empty)
	// when Link is set — Backbone with a Link is an error.
	Network Network
	// Link, when non-nil, replaces the access bottleneck with a
	// custom one; see Link.
	Link *Link
	// Workload is the Table 1 scenario name; "" means "noBG".
	// Mutually exclusive with Mix.
	Workload string
	// Mix, when non-nil, replaces the named preset with a composable
	// workload (see Workload and the preset constructors LongMany,
	// ShortFew, ...). A mix equal to a Table 1 preset under some
	// congestion direction compiles to that preset's exact cell specs
	// — same cache entries, same CRN-paired seeds — so custom and
	// named spellings of the same traffic are one set of cells.
	// Because a mix names its own directions, Direction must stay
	// empty when Mix is set.
	Mix *Workload
	// Direction is where background congestion applies (access shape
	// only; the backbone is downstream-only). Default Down. Must be
	// empty when Mix is set.
	Direction Direction
	// BufferUp overrides the access uplink buffer in packets; 0 keeps
	// the paper's symmetric configuration (uplink = the swept buffer).
	// Access shape only.
	BufferUp int
	// AQM is the bottleneck queue discipline. Default DropTail.
	AQM AQM
	// CC is the background congestion control. Default DefaultCC.
	CC CC
	// Jitter adds an exponential per-packet delay with this mean on
	// the client's last hop (access shape only).
	Jitter time.Duration
}

// Label returns the scenario's display name: Name if set, otherwise a
// summary derived from the fields, e.g. "access/long-many/up" or
// "custom(1G/1G)/short-few/down+codel".
func (sc Scenario) Label() string {
	if sc.Name != "" {
		return sc.Name
	}
	net := string(sc.Network)
	if net == "" {
		net = string(Access)
	}
	if sc.Link != nil {
		dims := rateLabel(sc.Link.UpRate) + "/" + rateLabel(sc.Link.DownRate)
		// Append delays when customized, so two links differing only
		// there derive distinct labels.
		if sc.Link.ClientDelay != 0 || sc.Link.ServerDelay != 0 {
			dims += "@" + delayLabel(sc.Link.ClientDelay) + "/" + delayLabel(sc.Link.ServerDelay)
		}
		if sc.Link.Wifi.Stations > 0 {
			dims += fmt.Sprintf("+wifi%d", sc.Link.Wifi.Stations)
		}
		if sc.Link.Reorder > 0 {
			dims += fmt.Sprintf("+ro%g", sc.Link.Reorder)
		}
		net = "custom(" + dims + ")"
	}
	wl, dir, hasDir := sc.workloadLabel()
	out := net + "/" + wl
	if hasDir {
		out += "/" + dir
	}
	if sc.AQM != DropTail {
		out += "+" + string(sc.AQM)
	}
	if sc.CC != DefaultCC {
		out += "+" + string(sc.CC)
	}
	if sc.Jitter > 0 {
		out += "+j" + sc.Jitter.String()
	}
	if sc.BufferUp > 0 {
		out += "+bufup=" + fmt.Sprintf("%d", sc.BufferUp)
	}
	return out
}

// workloadLabel derives the workload axis of the label: the preset
// name plus congestion direction, or the canonical mix rendering. A
// Mix equal to a direction-masked Table 1 preset labels exactly like
// the preset spelling, so the two produce byte-identical SweepCells.
func (sc Scenario) workloadLabel() (wl, dir string, hasDir bool) {
	if sc.Mix != nil {
		c := sc.Mix.internal().Canonical()
		if sc.Network == Backbone {
			if name, ok := testbed.MatchBackbonePreset(c); ok {
				return name, "", false
			}
		} else if name, d, ok := testbed.MatchAccessPreset(c); ok {
			return name, d.String(), name != "noBG"
		}
		return "mix(" + c.Encode() + ")", "", false
	}
	wl = sc.Workload
	if wl == "" {
		wl = "noBG"
	}
	if sc.Network != Backbone && wl != "noBG" {
		d := sc.Direction
		if d == "" {
			d = Down
		}
		return wl, string(d), true
	}
	return wl, "", false
}

func rateLabel(bps float64) string {
	switch {
	case bps <= 0:
		return "dflt"
	case bps >= 1e9:
		return fmt.Sprintf("%gG", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%gM", bps/1e6)
	default:
		return fmt.Sprintf("%gk", bps/1e3)
	}
}

func delayLabel(d time.Duration) string {
	if d <= 0 {
		return "dflt"
	}
	return d.String()
}

// spec compiles the scenario and one probe at one buffer size into
// the internal probe spec, validating the combination.
func (sc Scenario) spec(p Probe, buffer int) (experiments.ProbeSpec, error) {
	out := experiments.ProbeSpec{
		Scenario: sc.Workload,
		Buffer:   buffer,
		BufferUp: sc.BufferUp,
		AQM:      string(sc.AQM),
		CC:       string(sc.CC),
		Jitter:   sc.Jitter,
	}
	if sc.Mix != nil {
		if sc.Workload != "" {
			return out, fmt.Errorf("bufferqoe: scenario %q: set Workload or Mix, not both", sc.Label())
		}
		if sc.Direction != "" {
			return out, fmt.Errorf("bufferqoe: scenario %q: a Mix names its own directions (Up/Down components); leave Direction empty", sc.Label())
		}
		iw := sc.Mix.internal()
		out.Mix = &iw
	}
	switch sc.Network {
	case Access, "":
		out.Testbed = "access"
	case Backbone:
		out.Testbed = "backbone"
		if sc.Link != nil {
			return out, fmt.Errorf("bufferqoe: scenario %q: custom links use the access shape; drop Network: Backbone", sc.Label())
		}
		if sc.Jitter != 0 {
			return out, fmt.Errorf("bufferqoe: scenario %q: jitter exists on the access shape only", sc.Label())
		}
		if sc.Direction != "" && sc.Direction != Down {
			return out, fmt.Errorf("bufferqoe: scenario %q: the backbone is congested downstream only", sc.Label())
		}
	default:
		return out, fmt.Errorf("bufferqoe: scenario %q: unknown network %q", sc.Label(), sc.Network)
	}
	if out.Testbed == "access" {
		d, err := sc.Direction.internal()
		if err != nil {
			return out, err
		}
		out.Direction = d
		if sc.Link != nil {
			out.Link = sc.Link.internal()
		}
	}
	switch p.Media {
	case VoIP, Web, Video:
		out.Media = string(p.Media)
	default:
		return out, fmt.Errorf("bufferqoe: unknown probe media %q (want voip, web, video)", p.Media)
	}
	if p.Media == Video {
		prof, err := videoProfile(p.Profile)
		if err != nil {
			return out, err
		}
		out.Profile = prof
	} else if p.Profile != "" {
		return out, fmt.Errorf("bufferqoe: probe %q does not take a profile", p.Media)
	}
	if err := out.Validate(); err != nil {
		return out, fmt.Errorf("bufferqoe: scenario %q: %w", sc.Label(), err)
	}
	return out, nil
}

// Validate checks the scenario against a probe without running
// anything; a buffer of 1 packet stands in for the sweep axis.
func (sc Scenario) Validate(p Probe) error {
	_, err := sc.spec(p, 1)
	return err
}

// Media selects what a probe measures.
type Media string

// Probe media.
const (
	VoIP  Media = "voip"
	Web   Media = "web"
	Video Media = "video"
)

// Probe declares one foreground measurement: the media under study
// and, for video, the encoding profile.
type Probe struct {
	// Media is VoIP, Web, or Video.
	Media Media
	// Profile is the video encoding ladder entry, "SD" (default) or
	// "HD"; must be empty for other media.
	Profile string
}

// Label returns the probe's display name, e.g. "voip" or "video:HD".
// The video profile is normalized ("sd" and "" both label as SD), so
// equivalent probes always share a label.
func (p Probe) Label() string {
	if p.Media == Video {
		prof := p.Profile
		if v, err := videoProfile(prof); err == nil {
			prof = v.Name
		}
		return "video:" + prof
	}
	return string(p.Media)
}

func videoProfile(profile string) (video.Profile, error) {
	switch profile {
	case "SD", "sd", "":
		return video.SD, nil
	case "HD", "hd":
		return video.HD, nil
	default:
		return video.Profile{}, fmt.Errorf("bufferqoe: unknown profile %q (want SD or HD)", profile)
	}
}
