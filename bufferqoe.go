// Package bufferqoe is the public facade of the reproduction of
// "A QoE Perspective on Sizing Network Buffers" (Hohlfeld, Pujol,
// Ciucu, Feldmann, Barford — IMC 2014).
//
// It exposes five layers:
//
//   - experiment runners that regenerate every table and figure of the
//     paper's evaluation (Run / Experiments);
//   - scenario probes that answer one question at a time — "what is
//     the VoIP MOS on a DSL line with a 256-packet modem buffer under
//     upload congestion?" (MeasureVoIP, MeasureWeb, MeasureVideo);
//   - a composable scenario API (Scenario, Probe, Sweep) that goes
//     beyond the paper's fixed testbeds: custom link rates and delays,
//     typed workload mixes (Workload, with the Table 1 presets as
//     constructors of the same type), asymmetric uplink buffers, AQM
//     disciplines, congestion control, and last-hop jitter, swept as a
//     scenario x buffer x probe grid through the parallel cell engine;
//   - a streaming, context-aware execution surface (SweepStream,
//     SweepCtx, RunCtx, Session.WithContext, Options.OnProgress):
//     cells arrive as workers complete them, deadlines and
//     cancellations abandon queued work promptly (ErrCanceled) while
//     in-flight cells drain into the cache;
//   - buffer sizing: static calculators for the schemes the paper
//     compares (SizingSchemes) and an adaptive recommender
//     (Recommend) that searches the buffer axis for a QoE target
//     instead of sweeping it exhaustively.
//
// All state lives in a Session (engine, cache, worker pool); the
// package-level functions operate on a process-wide default session,
// and independent callers create their own with NewSession. Results
// are a pure function of the specs and options — never of session,
// scheduling, parallelism, or whether a batch, stream, or search
// computed them.
//
// Everything runs on a deterministic discrete-event simulation of the
// paper's two testbeds; see DESIGN.md for the substitutions made for
// the hardware and proprietary-data dependencies.
package bufferqoe

import (
	"fmt"
	"time"

	"bufferqoe/internal/experiments"
	"bufferqoe/internal/sizing"
	"bufferqoe/internal/testbed"
)

// Options scale an experiment or probe. The zero value uses the
// defaults documented on each field.
type Options struct {
	// Seed drives all randomness (default 42); equal seeds give
	// bit-identical runs.
	Seed uint64
	// Duration is the per-cell background measurement window
	// (default 30s).
	Duration time.Duration
	// Warmup runs background traffic before measuring (default 5s).
	Warmup time.Duration
	// Reps is the number of calls/streams/fetches per cell
	// (default 3).
	Reps int
	// ClipSeconds is the video clip length (default 4; paper: 16).
	ClipSeconds int
	// CDNFlows sizes the synthetic Section 3 population
	// (default 200000).
	CDNFlows int
	// CIHalfWidth, when > 0, enables adaptive replication: repetition
	// loops (VoIP calls, video streams, web fetches) stop early once
	// the 95% confidence interval of the cell's per-repetition QoE
	// score has half-width at most CIHalfWidth MOS points, instead of
	// always running Reps repetitions. Cheap, stable cells finish after
	// MinReps; noisy ones still run to Reps. The rule is part of cell
	// identity — adaptive and exhaustive runs cache separately, and an
	// adaptive cell's repetitions are the exhaustive cell's first n, so
	// its value is within the configured half-width of the full run's.
	// Zero (the default) keeps the exhaustive, bit-identical behavior.
	CIHalfWidth float64
	// MinReps is the minimum repetitions before the adaptive rule may
	// stop a cell (default 2 when CIHalfWidth is set; clamped to Reps).
	// Ignored when CIHalfWidth is 0.
	MinReps int
	// OnProgress, when set, is called after every completed cell of a
	// Sweep, SweepStream, or Recommend call, from the goroutine
	// consuming completions (never concurrently within one call). It
	// observes progress only — it cannot alter results, and it does
	// not participate in cell identity: runs with different hooks
	// share cache entries.
	OnProgress func(Progress)
	// Collector, when non-nil, receives telemetry from this run:
	// per-cell build/sim/score phase timings, simulator event counts,
	// and trace events. Like OnProgress it is observational only — it
	// never enters cell identity, so runs with and without a collector
	// share cache entries and produce bit-identical results. Runs that
	// leave this nil report to the session's collector, if one was
	// attached with Session.SetCollector.
	Collector *Collector
}

// Progress reports one completed cell of a streaming or batch run.
type Progress struct {
	// Completed and Total count cells finished so far and the cells
	// the call will compute in total (cache hits included).
	Completed, Total int
	// Cell is the cell that just completed.
	Cell SweepCell
	// Elapsed is the wall time since the run started consuming
	// completions.
	Elapsed time.Duration
	// Rate is the observed completion throughput in cells per second
	// (cache hits included; they complete near-instantly and inflate
	// the early rate of warm runs).
	Rate float64
	// ETA estimates the remaining wall time from Rate; zero when the
	// run is complete or no rate is measurable yet.
	ETA time.Duration
}

// timing fills the Elapsed/Rate/ETA fields of a Progress from a run
// start time.
func (p Progress) timing(start time.Time) Progress {
	p.Elapsed = time.Since(start)
	if s := p.Elapsed.Seconds(); s > 0 && p.Completed > 0 {
		p.Rate = float64(p.Completed) / s
		if rem := p.Total - p.Completed; rem > 0 {
			p.ETA = time.Duration(float64(rem) / p.Rate * float64(time.Second))
		}
	}
	return p
}

func (o Options) internal() experiments.Options {
	return experiments.Options{
		Seed:        o.Seed,
		Duration:    o.Duration,
		Warmup:      o.Warmup,
		Reps:        o.Reps,
		ClipSeconds: o.ClipSeconds,
		CDNFlows:    o.CDNFlows,
		CIHalfWidth: o.CIHalfWidth,
		MinReps:     o.MinReps,
		Collector:   o.Collector.raw(),
	}
}

// ErrCanceled reports that a run was abandoned because its context
// was canceled before all of its cells executed. Cells already
// simulating at cancellation drain to completion and stay cached, so
// repeating the canceled call re-simulates only the abandoned cells.
// Test with errors.Is: deadline and cancellation both surface as this
// value.
var ErrCanceled = experiments.ErrCanceled

// Result is a rendered experiment outcome.
type Result struct {
	// ID is the experiment identifier (e.g. "fig7b").
	ID string
	// Text is the paper-style rendering of all result grids.
	Text string

	inner *experiments.Result
}

// Value returns one cell's numeric value from the i-th grid. Legacy
// behavior, kept for compatibility: unknown grid indices and
// row/column labels silently return 0, indistinguishable from a real
// zero-valued cell. New code should use Lookup.
func (r *Result) Value(grid int, row, col string) float64 {
	v, _ := r.Lookup(grid, row, col)
	return v
}

// Lookup returns one cell's numeric value from the i-th grid and
// whether the addressed cell exists; unknown grid indices and
// row/column labels report false instead of a forged zero.
func (r *Result) Lookup(grid int, row, col string) (float64, bool) {
	if r.inner == nil || grid < 0 || grid >= len(r.inner.Grids) {
		return 0, false
	}
	c, ok := r.inner.Grids[grid].Lookup(row, col)
	return c.Value, ok
}

// Experiments lists all experiment IDs (tables, figures, ablations).
func Experiments() []string { return experiments.IDs() }

// Run executes one experiment by ID on the default session.
func Run(id string, o Options) (*Result, error) { return defaultSession.Run(id, o) }

// Outcome is one experiment's entry in a RunAll batch: the result or
// the error, plus the wall time spent.
type Outcome struct {
	ID      string
	Result  *Result
	Err     error
	Elapsed time.Duration
}

// RunAll executes a batch of experiments through the default
// session's cell engine and returns one Outcome per ID, in input
// order. Experiments run concurrently and their cells fan out across
// the worker pool (see SetParallelism); a failing experiment records
// its error without stopping the batch, and cells shared between
// experiments are simulated once per session. Results are
// bit-identical to running each ID alone, sequentially: every cell's
// seed is derived from its canonical spec, never from scheduling.
func RunAll(ids []string, o Options) []Outcome { return defaultSession.RunAll(ids, o) }

// SetParallelism resizes the default session's worker pool; n <= 0
// means GOMAXPROCS. Parallelism never changes results. Independent
// callers should prefer their own Session over resizing the shared
// default.
func SetParallelism(n int) { defaultSession.SetParallelism(n) }

// Parallelism returns the default session's worker-pool size.
func Parallelism() int { return defaultSession.Parallelism() }

// EngineStats is a snapshot of the cell engine's counters: pool size,
// cached cells, how many cell requests were answered from the cache
// versus simulated, and how many were abandoned by cancellation.
type EngineStats struct {
	Workers     int
	CachedCells int
	Hits        uint64
	Misses      uint64
	// Canceled counts cells abandoned before execution because their
	// run's context was canceled.
	Canceled uint64
	// InFlight, QueueDepth, and Waiters are live gauges: cells
	// currently executing, callers waiting for a worker slot, and
	// callers coalesced onto another caller's in-flight cell. All
	// three return to zero when the engine is idle — including after
	// canceled batches.
	InFlight   int64
	QueueDepth int64
	Waiters    int64
	// StoreHits counts cells answered from the persistent store tier
	// (no simulation ran), StoreMisses counts store lookups that fell
	// through to a fresh compute, and StoreWrites counts results
	// accepted by the store for persistence. All zero unless the
	// session opened a store (Session.OpenStore / qoebench -store).
	// A fully warm store shows Misses == 0 with StoreHits covering
	// every unique cell.
	StoreHits   uint64
	StoreMisses uint64
	StoreWrites uint64
}

// Stats snapshots the default session's cell engine.
func Stats() EngineStats { return defaultSession.Stats() }

// Network selects a testbed.
type Network string

// The two testbeds of Figure 3.
const (
	Access   Network = "access"
	Backbone Network = "backbone"
)

// Direction selects where the background congestion is applied
// (access testbed only; the backbone is downstream-only).
type Direction string

// Congestion directions.
const (
	Down  Direction = "down"
	Up    Direction = "up"
	Bidir Direction = "bidir"
)

func (d Direction) internal() (testbed.Direction, error) {
	switch d {
	case Down, "":
		return testbed.DirDown, nil
	case Up:
		return testbed.DirUp, nil
	case Bidir:
		return testbed.DirBidir, nil
	default:
		return 0, fmt.Errorf("bufferqoe: unknown direction %q", d)
	}
}

// Scenarios returns the valid workload names for a network (Table 1).
func Scenarios(n Network) []string {
	if n == Backbone {
		return append([]string(nil), testbed.BackboneScenarioNames...)
	}
	return append([]string(nil), testbed.AccessScenarioNames...)
}

// BufferSizes returns the paper's buffer sweep for a network
// (Table 2).
func BufferSizes(n Network) []int {
	if n == Backbone {
		return append([]int(nil), sizing.BackboneBufferSizes...)
	}
	return append([]int(nil), sizing.AccessBufferSizes...)
}

// VoIPResult is the outcome of a MeasureVoIP probe.
type VoIPResult struct {
	// ListenMOS scores the remote-speaker direction, TalkMOS the
	// user's own. On the backbone only ListenMOS is populated.
	ListenMOS, TalkMOS float64
	// ListenRating / TalkRating are the Figure 6a categories.
	ListenRating, TalkRating string
}

// MeasureVoIP runs VoIP calls under the named workload and returns
// median scores. Unknown scenarios, directions, or non-positive
// buffers return an error.
func MeasureVoIP(n Network, scenario string, dir Direction, buffer int, o Options) (VoIPResult, error) {
	return defaultSession.MeasureVoIP(n, scenario, dir, buffer, o)
}

// WebResult is the outcome of a MeasureWeb probe.
type WebResult struct {
	MedianPLT time.Duration
	MOS       float64
	Rating    string
}

// MeasureWeb fetches the paper's static page under the named workload
// and returns the median page load time with its G.1030 score.
func MeasureWeb(n Network, scenario string, dir Direction, buffer int, o Options) (WebResult, error) {
	return defaultSession.MeasureWeb(n, scenario, dir, buffer, o)
}

// VideoResult is the outcome of a MeasureVideo probe.
type VideoResult struct {
	SSIM   float64
	MOS    float64
	Rating string
}

// MeasureVideo streams the paper's clip C at "SD" (4 Mbit/s) or "HD"
// (8 Mbit/s) and returns the median SSIM with its MOS mapping.
func MeasureVideo(n Network, scenario, profile string, buffer int, o Options) (VideoResult, error) {
	return defaultSession.MeasureVideo(n, scenario, profile, buffer, o)
}

// SweepGrid runs a sweep on the default session; see Session.Sweep.
func SweepGrid(sw Sweep, o Options) (*Grid, error) { return defaultSession.Sweep(sw, o) }

// Scheme is one buffer sizing recommendation.
type Scheme struct {
	Name     string
	Packets  int
	MaxDelay time.Duration
}

// SizingSchemes returns the paper's sizing schemes evaluated for a
// link of the given rate (bits/s), round-trip time, and expected
// concurrent flow count.
func SizingSchemes(rateBps float64, rtt time.Duration, flows int) []Scheme {
	bdp := sizing.BDPPackets(rateBps, rtt)
	mk := func(name string, pkts int) Scheme {
		return Scheme{Name: name, Packets: pkts, MaxDelay: sizing.MaxQueueingDelay(pkts, rateBps)}
	}
	return []Scheme{
		mk("rule-of-thumb (BDP)", bdp),
		mk("stanford (BDP/sqrt(n))", sizing.StanfordPackets(bdp, flows)),
		mk("tiny", sizing.TinyPackets()),
		mk("bloated (10x BDP)", sizing.BloatedPackets(bdp)),
	}
}
