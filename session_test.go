package bufferqoe

import (
	"testing"
	"time"
)

// TestLegacyPathBitIdentical is the compatibility acceptance check:
// the package-level Run and Measure* functions (now thin wrappers
// over the default session) must produce bit-identical results to an
// independent Session, which in turn means the rewiring changed no
// numbers.
func TestLegacyPathBitIdentical(t *testing.T) {
	o := probeOpts()

	legacy, err := Run("fig1a", o)
	if err != nil {
		t.Fatal(err)
	}
	viaSession, err := NewSession().Run("fig1a", o)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Text != viaSession.Text {
		t.Fatalf("Run diverged between legacy and session paths:\n--- legacy ---\n%s\n--- session ---\n%s",
			legacy.Text, viaSession.Text)
	}

	lv, err := MeasureVoIP(Access, "short-few", Up, 64, o)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewSession().MeasureVoIP(Access, "short-few", Up, 64, o)
	if err != nil {
		t.Fatal(err)
	}
	if lv != sv {
		t.Fatalf("MeasureVoIP diverged: legacy %+v vs session %+v", lv, sv)
	}

	lw, err := MeasureWeb(Backbone, "short-low", "", 749, o)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSession().MeasureWeb(Backbone, "short-low", "", 749, o)
	if err != nil {
		t.Fatal(err)
	}
	if lw != sw {
		t.Fatalf("MeasureWeb diverged: legacy %+v vs session %+v", lw, sw)
	}
}

// TestSessionsAreIsolated: parallelism and cache state of one session
// must not leak into another — the property the package-global design
// could not give a multi-tenant service.
func TestSessionsAreIsolated(t *testing.T) {
	a, b := NewSession(), NewSession()
	a.SetParallelism(2)
	b.SetParallelism(5)
	if a.Parallelism() != 2 || b.Parallelism() != 5 {
		t.Fatalf("parallelism leaked: a=%d b=%d", a.Parallelism(), b.Parallelism())
	}
	if _, err := a.MeasureWeb(Access, "noBG", Down, 64, probeOpts()); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Misses == 0 || st.Workers != 2 {
		t.Fatalf("session a stats wrong: %+v", st)
	}
	if st := b.Stats(); st.Misses != 0 || st.CachedCells != 0 {
		t.Fatalf("session a's cells leaked into b: %+v", st)
	}
}

// TestMeasureValidation: the facade must reject bad scenario names,
// buffers, and directions with errors — the seed behavior was a panic
// inside a worker goroutine.
func TestMeasureValidation(t *testing.T) {
	o := probeOpts()
	if _, err := MeasureVoIP(Access, "definitely-not-a-scenario", Down, 64, o); err == nil {
		t.Fatal("unknown access scenario must error, not panic a worker")
	}
	if _, err := MeasureVoIP(Backbone, "long-many", "", 749, o); err == nil {
		t.Fatal("access-only scenario on the backbone must error")
	}
	if _, err := MeasureWeb(Access, "noBG", Down, 0, o); err == nil {
		t.Fatal("zero buffer must error")
	}
	if _, err := MeasureWeb(Access, "noBG", Down, -8, o); err == nil {
		t.Fatal("negative buffer must error")
	}
	if _, err := MeasureVideo(Access, "noBG", "4K", 64, o); err == nil {
		t.Fatal("unknown profile must error")
	}
}

// TestOptionsNormalization: zero and negative Reps, Duration, Warmup,
// and ClipSeconds clamp to the documented defaults, so options that
// normalize equally must address the same cache entries.
func TestOptionsNormalization(t *testing.T) {
	s := NewSession()
	negative := Options{
		Seed:        9,
		Reps:        -5,
		Duration:    -3 * time.Second,
		Warmup:      -time.Second,
		ClipSeconds: -2,
		CDNFlows:    -100,
	}
	zero := Options{Seed: 9}

	r1, err := s.MeasureVoIP(Access, "noBG", Down, 64, negative)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := s.Stats()
	if afterFirst.Misses == 0 {
		t.Fatalf("first probe did not simulate: %+v", afterFirst)
	}
	r2, err := s.MeasureVoIP(Access, "noBG", Down, 64, zero)
	if err != nil {
		t.Fatal(err)
	}
	afterSecond := s.Stats()
	if afterSecond.Misses != afterFirst.Misses {
		t.Fatalf("equal normalized options re-simulated: %+v -> %+v", afterFirst, afterSecond)
	}
	if afterSecond.Hits == afterFirst.Hits {
		t.Fatalf("equal normalized options missed the cache: %+v -> %+v", afterFirst, afterSecond)
	}
	if r1 != r2 {
		t.Fatalf("normalized options gave different results: %+v vs %+v", r1, r2)
	}

	// The defaulted run must match an explicit spelling of the
	// documented defaults (seed aside, which has its own default).
	explicit := Options{Seed: 9, Duration: 30 * time.Second, Warmup: 5 * time.Second, Reps: 3, ClipSeconds: 4, CDNFlows: 200000}
	r3, err := s.MeasureVoIP(Access, "noBG", Down, 64, explicit)
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r1 {
		t.Fatalf("explicit defaults diverge from clamped options: %+v vs %+v", r3, r1)
	}
	if st := s.Stats(); st.Misses != afterSecond.Misses {
		t.Fatalf("explicit defaults re-simulated: %+v -> %+v", afterSecond, st)
	}
}
