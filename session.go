package bufferqoe

import (
	"context"

	"bufferqoe/internal/experiments"
	"bufferqoe/internal/qoe"
)

// Session owns one cell engine: a worker pool, a result cache, and
// the counters Stats reports. Independent callers — a service
// handling many users, a test wanting a cold cache — each create
// their own Session instead of sharing package-global state; the
// package-level Run/RunAll/Measure*/Sweep functions operate on a
// process-wide default session, preserving the original behavior.
// Results are a pure function of specs and options, never of which
// session computed them: the same call gives bit-identical answers on
// any session at any parallelism.
type Session struct {
	inner *experiments.Session
}

// NewSession creates a session with its own engine, cache, and
// GOMAXPROCS-sized worker pool.
func NewSession() *Session {
	return &Session{inner: experiments.NewSession(0)}
}

// defaultSession backs the package-level functions; it wraps the
// experiments package's Default session so probes and experiment runs
// through either API share one cache.
var defaultSession = &Session{inner: experiments.Default}

// WithContext returns a view of the session whose runs — Run, RunAll,
// Sweep, the Measure* probes — are bounded by ctx: once ctx is
// canceled, queued cells are abandoned (in-flight cells drain into
// the cache) and the run returns ErrCanceled. The view shares the
// session's engine, cache, and counters; it scopes calls, it does not
// create a new session. The explicit-context entry points (RunCtx,
// SweepCtx, SweepStream, Recommend) are usually more convenient.
func (s *Session) WithContext(ctx context.Context) *Session {
	return &Session{inner: s.inner.WithContext(ctx)}
}

// ctx returns the context this session view is bounded by.
func (s *Session) ctx() context.Context { return s.inner.Context() }

// SetParallelism resizes the session's cell worker pool; n <= 0 means
// GOMAXPROCS. Parallelism never changes results.
func (s *Session) SetParallelism(n int) { s.inner.SetParallelism(n) }

// Parallelism returns the session's worker-pool size.
func (s *Session) Parallelism() int { return s.inner.Parallelism() }

// Stats snapshots the session's engine counters.
func (s *Session) Stats() EngineStats {
	st := s.inner.EngineStats()
	return EngineStats{
		Workers: st.Workers, CachedCells: st.Entries,
		Hits: st.Hits, Misses: st.Misses, Canceled: st.Canceled,
		InFlight: st.InFlight, QueueDepth: st.QueueDepth, Waiters: st.Waiters,
		StoreHits: st.StoreHits, StoreMisses: st.StoreMisses, StoreWrites: st.StoreWrites,
	}
}

// OpenStore attaches a persistent content-addressed result store
// rooted at dir to the session. Cells already computed by any prior
// run sharing the directory — other processes, other machines, other
// CI jobs — are answered from disk instead of simulated, and every
// fresh compute is persisted (off the hot path) for future runs.
// Stored results are bit-identical to fresh computes by construction,
// and entries are keyed by the engine's semantic version, so a store
// can never serve values the current code would not produce; see
// DESIGN.md "Persistence & server mode". Open the store before
// submitting work; a session holds at most one store at a time.
func (s *Session) OpenStore(dir string) error { return s.inner.OpenStore(dir) }

// CloseStore flushes and detaches the session's persistent store (a
// no-op when none is open). The session keeps working afterwards;
// cells just stop being answered from or persisted to disk. Call it
// before process exit so queued writes reach the directory.
func (s *Session) CloseStore() error { return s.inner.CloseStore() }

// ResetCache drops the session's memoized cell results, zeroes its
// counters, and detaches (closing) any open store, so the next run is
// genuinely cold — nothing is answered from memory or disk. Reattach
// with OpenStore if persistence is wanted again.
func (s *Session) ResetCache() { s.inner.ResetCache() }

// Run executes one experiment by ID on the session.
func (s *Session) Run(id string, o Options) (*Result, error) {
	res, err := s.inner.Run(id, o.internal())
	if err != nil {
		return nil, err
	}
	return &Result{ID: res.ID, Text: res.Render(), inner: res}, nil
}

// RunCtx is Run bounded by ctx: a canceled context abandons the
// experiment's queued cells and returns ErrCanceled.
func (s *Session) RunCtx(ctx context.Context, id string, o Options) (*Result, error) {
	return s.WithContext(ctx).Run(id, o)
}

// RunAll executes a batch of experiments on the session; see the
// package-level RunAll for the batching semantics.
func (s *Session) RunAll(ids []string, o Options) []Outcome {
	inner := s.inner.RunAll(ids, o.internal())
	out := make([]Outcome, len(inner))
	for i, oc := range inner {
		out[i] = Outcome{ID: oc.ID, Err: oc.Err, Elapsed: oc.Elapsed}
		if oc.Result != nil {
			out[i].Result = &Result{ID: oc.Result.ID, Text: oc.Result.Render(), inner: oc.Result}
		}
	}
	return out
}

// RunAllCtx is RunAll bounded by ctx: canceled experiments record
// ErrCanceled outcomes instead of results.
func (s *Session) RunAllCtx(ctx context.Context, ids []string, o Options) []Outcome {
	return s.WithContext(ctx).RunAll(ids, o)
}

// The Measure* methods compile a one-cell Scenario/Probe pair through
// the same spec path as Sweep, so an unknown scenario, direction, or
// profile returns an error here instead of crashing a worker
// goroutine, and a probe of a configuration any sweep or experiment
// on this session has visited is a cache hit.

// measure compiles one legacy probe and runs it. On the backbone the
// caller's direction is ignored (the paper's backbone is
// downstream-only and the pre-Session probes accepted any direction
// there), matching the historical Measure* behavior.
func (s *Session) measure(n Network, scenario string, dir Direction, buffer int, p Probe, o Options) (experiments.ProbeValue, error) {
	sc := Scenario{Network: n, Workload: scenario, Direction: dir}
	if n == Backbone {
		sc.Direction = ""
	}
	spec, err := sc.spec(p, buffer)
	if err != nil {
		return experiments.ProbeValue{}, err
	}
	return s.inner.Probe(spec, o.internal())
}

// MeasureVoIP runs VoIP calls under the named workload and returns
// median scores; see the package-level MeasureVoIP.
func (s *Session) MeasureVoIP(n Network, scenario string, dir Direction, buffer int, o Options) (VoIPResult, error) {
	v, err := s.measure(n, scenario, dir, buffer, Probe{Media: VoIP}, o)
	if err != nil {
		return VoIPResult{}, err
	}
	out := VoIPResult{
		ListenMOS:    v.ListenMOS,
		ListenRating: string(qoe.VoIPSatisfaction(v.ListenMOS)),
	}
	if n != Backbone {
		out.TalkMOS = v.TalkMOS
		out.TalkRating = string(qoe.VoIPSatisfaction(v.TalkMOS))
	}
	return out, nil
}

// MeasureWeb fetches the paper's static page under the named workload
// and returns the median page load time with its G.1030 score.
func (s *Session) MeasureWeb(n Network, scenario string, dir Direction, buffer int, o Options) (WebResult, error) {
	v, err := s.measure(n, scenario, dir, buffer, Probe{Media: Web}, o)
	if err != nil {
		return WebResult{}, err
	}
	model := qoe.AccessWebModel()
	if n == Backbone {
		model = qoe.BackboneWebModel()
	}
	mos := model.MOS(v.PLT)
	return WebResult{MedianPLT: v.PLT, MOS: mos, Rating: string(qoe.Rate(mos))}, nil
}

// MeasureVideo streams the paper's clip C at "SD" (4 Mbit/s) or "HD"
// (8 Mbit/s) and returns the median SSIM with its MOS mapping.
func (s *Session) MeasureVideo(n Network, scenario, profile string, buffer int, o Options) (VideoResult, error) {
	v, err := s.measure(n, scenario, "", buffer, Probe{Media: Video, Profile: profile}, o)
	if err != nil {
		return VideoResult{}, err
	}
	mos := qoe.SSIMToMOS(v.SSIM)
	return VideoResult{SSIM: v.SSIM, MOS: mos, Rating: string(qoe.Rate(mos))}, nil
}
