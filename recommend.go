package bufferqoe

import (
	"context"
	"fmt"
	"sort"
	"time"

	"bufferqoe/internal/experiments"
	"bufferqoe/internal/sizing"
	"bufferqoe/internal/testbed"
)

// Target selects what Recommend optimizes over the buffer axis.
type Target string

const (
	// MinBufferMeetingMOS finds the smallest candidate buffer at which
	// every probe scores at least RecommendSpec.Threshold — the
	// paper's sizing question ("how small can the buffer be before
	// users notice?") asked directly. The search assumes the
	// "all probes satisfied" predicate is monotone in buffer size
	// across the candidate axis (loss-dominated regimes: bigger
	// buffers stop hurting once loss is gone); when nothing on the
	// axis satisfies it, the recommendation falls back to the best
	// aggregate buffer among those evaluated and reports Met=false.
	MinBufferMeetingMOS Target = "min-buffer-meeting-mos"
	// MaxAggregateMOS finds the candidate buffer with the highest mean
	// score across probes, assuming the aggregate is unimodal in
	// buffer size (QoE rises while buffers absorb loss, then falls as
	// queueing delay dominates — the bufferbloat tradeoff).
	MaxAggregateMOS Target = "max-aggregate-mos"
)

// RecommendSpec declares one buffer-sizing question: a scenario, the
// probes whose QoE constrains the answer, the candidate buffer axis,
// and the optimization target.
type RecommendSpec struct {
	// Scenario is the network-plus-workload under study.
	Scenario Scenario
	// Probes are the foreground measurements whose scores drive the
	// search. A VoIP probe's score is the worse of its two directions
	// (listen and, on access networks, talk).
	Probes []Probe
	// Buffers is the candidate axis in packets; Recommend sorts it
	// ascending. Empty means the paper's sweep for the scenario's
	// network bracketed with the link's BDP (Table 2's anchor points).
	Buffers []int
	// Target is the optimization goal; default MinBufferMeetingMOS.
	Target Target
	// Threshold is the per-probe MOS floor for MinBufferMeetingMOS and
	// the Met verdict (default 3.5 — the "all users satisfied" line of
	// the paper's rating scale).
	Threshold float64
	// Flows estimates the concurrent flow count for the paper-scheme
	// comparison (Stanford BDP/sqrt(n)); default 10 on access-shaped
	// networks, 750 on the backbone (the paper's workload scales).
	Flows int
}

// Recommendation is the outcome of a buffer search.
type Recommendation struct {
	// Buffer is the recommended bottleneck buffer in packets.
	Buffer int
	// Score is the aggregate (mean) probe score at Buffer.
	Score float64
	// Met reports whether every probe at Buffer scores at least the
	// spec's Threshold.
	Met bool
	// Cells are the per-probe measurements at Buffer, in probe order.
	Cells []SweepCell
	// BuffersTried lists the candidate buffers the search evaluated,
	// in evaluation order.
	BuffersTried []int
	// CellsEvaluated counts the cells the search submitted to the
	// engine (configurations already in the session cache are counted
	// but not re-simulated); GridCells is what the equivalent
	// exhaustive sweep would have submitted.
	CellsEvaluated, GridCells int
	// Scheme is the paper sizing scheme (Table 2) nearest the
	// recommended buffer for the scenario's link, for comparison with
	// the static rules the paper evaluates.
	Scheme Scheme
}

// evaluation is one candidate buffer's measured outcome.
type evaluation struct {
	cells []SweepCell
	score float64 // mean per-probe score
	ok    bool    // every probe >= threshold
}

// recommendSearch carries the state of one Recommend call.
type recommendSearch struct {
	s         *Session
	ctx       context.Context
	o         Options
	sc        Scenario
	scLabel   string
	probes    []Probe
	plabels   []string
	threshold float64
	bufs      []int

	evals map[int]*evaluation // candidate index -> outcome
	tried []int               // buffers in evaluation order
	done  int                 // cells completed, for OnProgress
	start time.Time           // search start, for Progress timing
}

// Recommend searches the buffer axis for the spec's target instead of
// sweeping it exhaustively: it brackets the candidate axis (the
// paper's sweep plus the link's BDP by default) and bisects —
// binary search for MinBufferMeetingMOS, ternary search for
// MaxAggregateMOS — evaluating only the buffers the search visits.
// Evaluations reuse the session's CRN-paired seeds and result cache,
// so a Recommend run followed by a Sweep over the same scenario
// re-simulates nothing the search already measured, and vice versa.
//
// Cancellation follows the streaming rules: a canceled ctx abandons
// queued cells, drains in-flight ones into the cache, and returns
// ErrCanceled. o.OnProgress, when set, is called per completed cell
// with Total equal to the full-grid upper bound GridCells — the
// search finishing well short of Total is the point.
func (s *Session) Recommend(ctx context.Context, spec RecommendSpec, o Options) (*Recommendation, error) {
	r := &recommendSearch{s: s, ctx: ctx, o: o, sc: spec.Scenario, scLabel: spec.Scenario.Label(), start: time.Now()}
	if len(spec.Probes) == 0 {
		return nil, fmt.Errorf("bufferqoe: a recommendation needs at least one probe")
	}
	seen := map[string]bool{}
	for _, p := range spec.Probes {
		l := p.Label()
		if seen[l] {
			return nil, fmt.Errorf("bufferqoe: duplicate probe %q", l)
		}
		seen[l] = true
		r.probes = append(r.probes, p)
		r.plabels = append(r.plabels, l)
	}
	// Validate the scenario x probe combinations before simulating.
	for _, p := range r.probes {
		if err := spec.Scenario.Validate(p); err != nil {
			return nil, err
		}
	}
	r.threshold = spec.Threshold
	if r.threshold <= 0 {
		r.threshold = 3.5
	}

	bufs, err := candidateBuffers(spec)
	if err != nil {
		return nil, err
	}
	r.bufs = bufs
	r.evals = make(map[int]*evaluation, len(bufs))

	target := spec.Target
	if target == "" {
		target = MinBufferMeetingMOS
	}
	var best int
	switch target {
	case MinBufferMeetingMOS:
		best, err = r.searchMinBuffer()
	case MaxAggregateMOS:
		best, err = r.searchMaxAggregate()
	default:
		return nil, fmt.Errorf("bufferqoe: unknown recommend target %q", target)
	}
	if err != nil {
		return nil, err
	}

	ev := r.evals[best]
	out := &Recommendation{
		Buffer:         r.bufs[best],
		Score:          ev.score,
		Met:            ev.ok,
		Cells:          ev.cells,
		BuffersTried:   r.tried,
		CellsEvaluated: len(r.tried) * len(r.probes),
		GridCells:      len(r.bufs) * len(r.probes),
	}
	out.Scheme = nearestScheme(spec, out.Buffer)
	return out, nil
}

// Recommend searches on the default session; see Session.Recommend.
func Recommend(ctx context.Context, spec RecommendSpec, o Options) (*Recommendation, error) {
	return defaultSession.Recommend(ctx, spec, o)
}

// candidateBuffers resolves and validates the search axis.
func candidateBuffers(spec RecommendSpec) ([]int, error) {
	if len(spec.Buffers) == 0 {
		base := BufferSizes(spec.Scenario.Network)
		if spec.Scenario.Network == "" {
			base = BufferSizes(Access)
		}
		rate, rtt := scenarioLink(spec.Scenario)
		return sizing.Candidates(base, sizing.BDPPackets(rate, rtt)), nil
	}
	seen := map[int]bool{}
	for _, b := range spec.Buffers {
		if b <= 0 {
			return nil, fmt.Errorf("bufferqoe: buffer candidates must be positive, got %d", b)
		}
		if seen[b] {
			return nil, fmt.Errorf("bufferqoe: duplicate buffer candidate %d", b)
		}
		seen[b] = true
	}
	out := append([]int(nil), spec.Buffers...)
	sort.Ints(out)
	return out, nil
}

// scenarioLink returns the congested bottleneck rate and base RTT of
// the scenario's link, the inputs the paper's sizing schemes need.
func scenarioLink(sc Scenario) (rateBps float64, rtt time.Duration) {
	if sc.Network == Backbone {
		return testbed.BackboneRate, 2 * testbed.BackboneDelay
	}
	lp := testbed.LinkParams{}
	if sc.Link != nil {
		lp = sc.Link.internal()
	}
	lp = lp.WithDefaults()
	rateBps = lp.DownRate
	if sc.Direction == Up {
		rateBps = lp.UpRate
	}
	return rateBps, 2 * (lp.ClientDelay + lp.ServerDelay)
}

// nearestScheme finds the paper sizing scheme closest (by size ratio)
// to the recommended buffer on the scenario's link.
func nearestScheme(spec RecommendSpec, buffer int) Scheme {
	flows := spec.Flows
	if flows <= 0 {
		flows = 10
		if spec.Scenario.Network == Backbone {
			flows = 750
		}
	}
	rate, rtt := scenarioLink(spec.Scenario)
	schemes := SizingSchemes(rate, rtt, flows)
	sizes := make([]int, len(schemes))
	for i, s := range schemes {
		sizes[i] = s.Packets
	}
	if i := sizing.NearestIndex(buffer, sizes); i >= 0 {
		return schemes[i]
	}
	return Scheme{}
}

// evaluate measures all probes at candidate index i (memoized): one
// CRN-paired mini-batch through the session engine, so a buffer the
// search revisits costs nothing and a configuration any sweep or
// probe on the session has already measured is a cache hit.
func (r *recommendSearch) evaluate(i int) (*evaluation, error) {
	if ev, ok := r.evals[i]; ok {
		return ev, nil
	}
	buf := r.bufs[i]
	specs := make([]experiments.ProbeSpec, 0, len(r.probes))
	for _, p := range r.probes {
		sp, err := r.sc.spec(p, buf)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	values, err := r.s.inner.ProbeBatchCtx(r.ctx, specs, r.o.internal())
	if err != nil {
		return nil, err
	}
	ev := &evaluation{cells: make([]SweepCell, len(values)), ok: true}
	var sum float64
	for pi, v := range values {
		c := sweepCell(r.scLabel, r.plabels[pi], buf, r.sc, r.probes[pi], v)
		ev.cells[pi] = c
		s := cellScore(c)
		sum += s
		if s < r.threshold {
			ev.ok = false
		}
		r.done++
		if r.o.OnProgress != nil {
			r.o.OnProgress(Progress{Completed: r.done, Total: len(r.bufs) * len(r.probes), Cell: c}.timing(r.start))
		}
	}
	ev.score = sum / float64(len(values))
	r.evals[i] = ev
	r.tried = append(r.tried, buf)
	return ev, nil
}

// cellScore is a cell's scalar QoE score: the opinion-scale MOS,
// taking the worse direction for bidirectional (access VoIP) cells.
func cellScore(c SweepCell) float64 {
	s := c.MOS
	if c.TalkMOS > 0 && c.TalkMOS < s {
		s = c.TalkMOS
	}
	return s
}

// searchMinBuffer binary-searches for the leftmost candidate whose
// evaluation meets the threshold. If none does, it returns the best
// evaluated buffer by aggregate score (Met stays false on the result).
func (r *recommendSearch) searchMinBuffer() (int, error) {
	lo, hi, found := 0, len(r.bufs)-1, -1
	for lo <= hi {
		mid := (lo + hi) / 2
		ev, err := r.evaluate(mid)
		if err != nil {
			return 0, err
		}
		if ev.ok {
			found = mid
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if found >= 0 {
		return found, nil
	}
	// Nothing on the axis satisfies the floor: recommend the best of
	// what the search saw, flagged unmet. Scan candidate indices in
	// ascending order (not the map) so tied scores deterministically
	// prefer the smallest buffer — results must stay a pure function
	// of spec and options.
	best, bestScore := -1, -1.0
	for i := range r.bufs {
		if ev, ok := r.evals[i]; ok && ev.score > bestScore {
			best, bestScore = i, ev.score
		}
	}
	return best, nil
}

// searchMaxAggregate ternary-searches the (assumed unimodal)
// aggregate score, then scans the surviving bracket exhaustively.
func (r *recommendSearch) searchMaxAggregate() (int, error) {
	lo, hi := 0, len(r.bufs)-1
	for hi-lo > 2 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		e1, err := r.evaluate(m1)
		if err != nil {
			return 0, err
		}
		e2, err := r.evaluate(m2)
		if err != nil {
			return 0, err
		}
		if e1.score < e2.score {
			lo = m1 + 1
		} else {
			hi = m2 - 1
		}
	}
	best, bestScore := -1, -1.0
	for i := lo; i <= hi; i++ {
		ev, err := r.evaluate(i)
		if err != nil {
			return 0, err
		}
		if ev.score > bestScore {
			best, bestScore = i, ev.score
		}
	}
	return best, nil
}
