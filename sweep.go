package bufferqoe

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"bufferqoe/internal/experiments"
	"bufferqoe/internal/qoe"
	"bufferqoe/internal/stats"
)

// Sweep fans a scenario x buffer x probe grid through the cell
// engine: every scenario is measured by every probe at every buffer
// size. Cells run in parallel across the session's worker pool,
// paired by common random numbers (one workload realization per
// scenario, replayed at every buffer size and link), and answered
// from the session cache when a configuration repeats across calls.
type Sweep struct {
	// Scenarios are the network-plus-workload configurations to
	// sweep. Labels (Scenario.Label) must be unique within a sweep.
	Scenarios []Scenario
	// Buffers are the bottleneck buffer sizes in packets (the
	// downlink buffer on access-shaped networks; BufferSizes returns
	// the paper's values).
	Buffers []int
	// Probes are the foreground measurements to take.
	Probes []Probe
}

// SweepCell is one measured cell of a sweep grid.
type SweepCell struct {
	// Scenario and Probe are the labels of the cell's coordinates;
	// Buffer is the bottleneck buffer in packets.
	Scenario string `json:"scenario"`
	Probe    string `json:"probe"`
	Buffer   int    `json:"buffer"`
	// Metric names the native measurement in Value: "mos" (VoIP
	// listen MOS), "plt_s" (web page load time, seconds), or "ssim".
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	// MOS is the value mapped to the 1..5 opinion scale (G.107 for
	// VoIP, G.1030 for web, the SSIM regression for video), and
	// Rating its verbal category.
	MOS    float64 `json:"mos"`
	Rating string  `json:"rating"`
	// TalkMOS / TalkRating score the user's own speaking direction;
	// populated for VoIP on access-shaped networks only.
	TalkMOS    float64 `json:"talk_mos,omitempty"`
	TalkRating string  `json:"talk_rating,omitempty"`
}

// Grid is a sweep's structured result: the three axes plus one
// SweepCell per (scenario, probe, buffer) combination, in
// scenario-major, then probe, then buffer order. A Grid is immutable
// once returned; Cell lookups may be issued concurrently.
type Grid struct {
	Scenarios []string    `json:"scenarios"`
	Probes    []string    `json:"probes"`
	Buffers   []int       `json:"buffers"`
	Cells     []SweepCell `json:"cells"`

	// Axis label -> index maps, built lazily on the first Cell call so
	// repeated lookups over large grids are O(1) instead of three
	// linear scans. Grids are immutable once returned (including after
	// a JSON round trip), so the index never goes stale.
	idxOnce sync.Once
	siIdx   map[string]int
	piIdx   map[string]int
	biIdx   map[int]int
}

func (g *Grid) buildIndex() {
	g.siIdx = make(map[string]int, len(g.Scenarios))
	for i, s := range g.Scenarios {
		g.siIdx[s] = i
	}
	g.piIdx = make(map[string]int, len(g.Probes))
	for i, p := range g.Probes {
		g.piIdx[p] = i
	}
	g.biIdx = make(map[int]int, len(g.Buffers))
	for i, b := range g.Buffers {
		g.biIdx[b] = i
	}
}

// Cell returns the cell at the given coordinates.
func (g *Grid) Cell(scenario, probe string, buffer int) (SweepCell, bool) {
	g.idxOnce.Do(g.buildIndex)
	si, okS := g.siIdx[scenario]
	pi, okP := g.piIdx[probe]
	bi, okB := g.biIdx[buffer]
	if !okS || !okP || !okB {
		return SweepCell{}, false
	}
	return g.Cells[(si*len(g.Probes)+pi)*len(g.Buffers)+bi], true
}

// Text renders the grid as aligned tables, one per scenario: probes
// as rows, buffer sizes as columns, each cell showing the native
// value with its rating.
func (g *Grid) Text() string {
	var b strings.Builder
	for si, sc := range g.Scenarios {
		header := []string{""}
		for _, buf := range g.Buffers {
			header = append(header, fmt.Sprintf("%d", buf))
		}
		tb := stats.NewTable(header...)
		for pi, p := range g.Probes {
			row := []string{p}
			for bi := range g.Buffers {
				c := g.Cells[(si*len(g.Probes)+pi)*len(g.Buffers)+bi]
				row = append(row, c.render())
			}
			tb.AddRow(row...)
		}
		fmt.Fprintf(&b, "== %s ==\n%s", sc, tb.String())
	}
	return b.String()
}

func (c SweepCell) render() string {
	switch c.Metric {
	case "plt_s":
		return fmt.Sprintf("%.2fs (%s)", c.Value, c.Rating)
	case "ssim":
		return fmt.Sprintf("%.3f (%s)", c.Value, c.Rating)
	default:
		return fmt.Sprintf("%.2f (%s)", c.Value, c.Rating)
	}
}

// JSON renders the grid as indented machine-readable JSON.
func (g *Grid) JSON() ([]byte, error) {
	return json.MarshalIndent(g, "", "  ")
}

// sweepPlan is a validated, compiled sweep: the result grid skeleton
// (axes labeled, cells zeroed) plus one internal probe spec per cell,
// in the grid's scenario-major cell order. Both the batch (Sweep) and
// streaming (SweepStream) paths execute the same plan, which is why
// they cannot diverge.
type sweepPlan struct {
	grid      *Grid
	specs     []experiments.ProbeSpec
	scenarios []Scenario
	probes    []Probe
}

// compileSweep validates every combination of the sweep's axes and
// compiles the cell specs, so an invalid corner fails the call before
// any simulation starts instead of crashing a worker mid-run.
func compileSweep(sw Sweep) (*sweepPlan, error) {
	if len(sw.Scenarios) == 0 || len(sw.Buffers) == 0 || len(sw.Probes) == 0 {
		return nil, fmt.Errorf("bufferqoe: a sweep needs at least one scenario, one buffer size, and one probe")
	}
	g := &Grid{Buffers: append([]int(nil), sw.Buffers...)}
	seenScenario := map[string]bool{}
	for _, sc := range sw.Scenarios {
		l := sc.Label()
		if seenScenario[l] {
			return nil, fmt.Errorf("bufferqoe: duplicate scenario label %q (set Scenario.Name to disambiguate)", l)
		}
		seenScenario[l] = true
		g.Scenarios = append(g.Scenarios, l)
	}
	seenProbe := map[string]bool{}
	for _, p := range sw.Probes {
		l := p.Label()
		if seenProbe[l] {
			return nil, fmt.Errorf("bufferqoe: duplicate probe %q", l)
		}
		seenProbe[l] = true
		g.Probes = append(g.Probes, l)
	}
	seenBuf := map[int]bool{}
	for _, b := range sw.Buffers {
		if seenBuf[b] {
			return nil, fmt.Errorf("bufferqoe: duplicate buffer size %d", b)
		}
		seenBuf[b] = true
	}

	specs := make([]experiments.ProbeSpec, 0, len(sw.Scenarios)*len(sw.Probes)*len(sw.Buffers))
	for _, sc := range sw.Scenarios {
		for _, p := range sw.Probes {
			for _, buf := range sw.Buffers {
				spec, err := sc.spec(p, buf)
				if err != nil {
					return nil, err
				}
				specs = append(specs, spec)
			}
		}
	}
	g.Cells = make([]SweepCell, len(specs))
	return &sweepPlan{
		grid:      g,
		specs:     specs,
		scenarios: append([]Scenario(nil), sw.Scenarios...),
		probes:    append([]Probe(nil), sw.Probes...),
	}, nil
}

// cell scores the i-th spec's raw value into its SweepCell. The value
// is a pure function of the spec, so the cell is identical no matter
// which path — batch, stream, probe — computed it, or in what order.
func (p *sweepPlan) cell(i int, v experiments.ProbeValue) SweepCell {
	np, nb := len(p.probes), len(p.grid.Buffers)
	si, pi, bi := i/(np*nb), (i/nb)%np, i%nb
	return sweepCell(p.grid.Scenarios[si], p.grid.Probes[pi], p.grid.Buffers[bi],
		p.scenarios[si], p.probes[pi], v)
}

// Sweep runs the full scenario x buffer x probe grid on the session
// and returns the structured results. Every combination is validated
// before any cell is simulated, so an invalid corner fails the call
// instead of crashing a worker mid-run. Sweep is SweepCtx without a
// deadline (it still observes a WithContext bound on the session).
func (s *Session) Sweep(sw Sweep, o Options) (*Grid, error) {
	return s.SweepCtx(s.ctx(), sw, o)
}

// sweepCell scores one raw probe value on the opinion scale.
func sweepCell(scLabel, pLabel string, buffer int, sc Scenario, p Probe, v experiments.ProbeValue) SweepCell {
	out := SweepCell{Scenario: scLabel, Probe: pLabel, Buffer: buffer}
	switch p.Media {
	case VoIP:
		out.Metric = "mos"
		out.Value = v.ListenMOS
		out.MOS = v.ListenMOS
		out.Rating = string(qoe.VoIPSatisfaction(v.ListenMOS))
		if sc.Network != Backbone {
			out.TalkMOS = v.TalkMOS
			out.TalkRating = string(qoe.VoIPSatisfaction(v.TalkMOS))
		}
	case Web:
		model := qoe.AccessWebModel()
		if sc.Network == Backbone {
			model = qoe.BackboneWebModel()
		}
		out.Metric = "plt_s"
		out.Value = v.PLT.Seconds()
		out.MOS = model.MOS(v.PLT)
		out.Rating = string(qoe.Rate(out.MOS))
	case Video:
		out.Metric = "ssim"
		out.Value = v.SSIM
		out.MOS = qoe.SSIMToMOS(v.SSIM)
		out.Rating = string(qoe.Rate(out.MOS))
	}
	return out
}
