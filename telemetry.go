package bufferqoe

import (
	"io"

	"bufferqoe/internal/telemetry"
)

// Collector aggregates runtime telemetry from every layer of a
// session: the cell engine's cache counters and gauges, per-cell wall
// time and build/sim/score phase breakdowns, simulator event and pool
// counters, and sweep progress. Create one with NewCollector, attach
// it with Session.SetCollector or per-run via Options.Collector, and
// read it with Metrics, WritePrometheus, or a JSON-lines trace
// (TraceTo).
//
// Telemetry is observational only: attaching a collector never
// changes results, cache identity, or determinism — cells answered
// from the cache report nothing, and all recording is allocation-free
// (see internal/telemetry). A nil *Collector is safe everywhere and
// disables collection.
type Collector struct {
	inner *telemetry.Collector
}

// NewCollector creates a live collector. One collector may serve
// several sessions or runs concurrently.
func NewCollector() *Collector {
	return &Collector{inner: telemetry.New()}
}

// raw unwraps the internal collector; nil-safe.
func (c *Collector) raw() *telemetry.Collector {
	if c == nil {
		return nil
	}
	return c.inner
}

// TraceTo streams one JSON object per freshly computed cell to w —
// the cell's label, per-phase wall time, and simulator event counts;
// see DESIGN.md "Observability" for the schema. nil disables tracing.
func (c *Collector) TraceTo(w io.Writer) { c.raw().TraceTo(w) }

// WritePrometheus renders the collector's metrics in the Prometheus
// text exposition format (the same rendering `qoebench -metrics-addr`
// serves at /metrics).
func (c *Collector) WritePrometheus(w io.Writer) error { return c.raw().WritePrometheus(w) }

// Metrics snapshots the collector.
func (c *Collector) Metrics() Metrics {
	if c == nil {
		return Metrics{}
	}
	return metricsFromSnapshot(c.inner.Snapshot())
}

// Metrics is a point-in-time snapshot of a session's telemetry. The
// cache/gauge fields are always available (Session.Metrics fills them
// from engine counters even without a collector); wall-time, phase,
// and simulator fields require an attached Collector, since only
// instrumented cells report them.
type Metrics struct {
	// UptimeSeconds is the time since the collector was created (0
	// without a collector).
	UptimeSeconds float64 `json:"uptime_s"`

	// CellsSimulated counts cells computed fresh (cache misses);
	// CacheHits counts cells answered from the session cache;
	// CellsCanceled counts cells abandoned by context cancellation.
	CellsSimulated uint64 `json:"cells_simulated"`
	CacheHits      uint64 `json:"cache_hits"`
	CellsCanceled  uint64 `json:"cells_canceled"`
	// CellsInFlight, QueueDepth, and Waiters are live gauges: cells
	// executing, callers waiting for a worker slot, and callers
	// coalesced onto another caller's in-flight cell.
	CellsInFlight int64 `json:"cells_in_flight"`
	QueueDepth    int64 `json:"queue_depth"`
	Waiters       int64 `json:"waiters"`

	// StoreHits, StoreMisses, and StoreWrites report the persistent
	// store tier: cells answered from disk, lookups that fell through
	// to a compute, and fresh results persisted. StoreLoadP95Seconds
	// summarizes store lookup latency (collector only).
	StoreHits           uint64  `json:"store_hits"`
	StoreMisses         uint64  `json:"store_misses"`
	StoreWrites         uint64  `json:"store_writes"`
	StoreLoadP95Seconds float64 `json:"store_load_p95_s"`

	// WorkerBusySeconds is cumulative wall time workers spent
	// executing cells; divide by elapsed time x Parallelism() for
	// utilization.
	WorkerBusySeconds float64 `json:"worker_busy_s"`
	// CellWallCount/MeanSeconds/P50/P95 summarize the per-cell wall
	// time distribution of freshly computed cells.
	CellWallCount       uint64  `json:"cell_wall_count"`
	CellWallMeanSeconds float64 `json:"cell_wall_mean_s"`
	CellWallP50Seconds  float64 `json:"cell_wall_p50_s"`
	CellWallP95Seconds  float64 `json:"cell_wall_p95_s"`

	// SimEvents is the total simulator events fired across all traced
	// cells; SimEventsByTier splits it by scheduling tier ("closure",
	// "pooled", "arg", "owned").
	SimEvents       uint64            `json:"sim_events"`
	SimEventsByTier map[string]uint64 `json:"sim_events_by_tier"`
	// TimerRecycles / PacketRecycles count pool reuse in the simulator
	// core and the packet layer; HeapHighWater is the deepest any
	// cell's timer heap ran.
	TimerRecycles  uint64 `json:"timer_recycles"`
	PacketRecycles uint64 `json:"packet_recycles"`
	HeapHighWater  int    `json:"heap_high_water"`

	// PhaseSeconds is cumulative per-cell wall time by phase ("build",
	// "sim", "score") across the PhaseCells cells that reported a
	// breakdown.
	PhaseSeconds map[string]float64 `json:"phase_s"`
	PhaseCells   uint64             `json:"phase_cells"`

	// SweepCells counts sweep cells completed (cache hits included).
	SweepCells uint64 `json:"sweep_cells"`

	// RepsTotal and RepCells summarize adaptive replication:
	// repetitions actually run across the RepCells rep-loop cells that
	// reported (RepsTotal shrinks below RepCells x Options.Reps when
	// the stopping rule saves work), and CellsStoppedEarly counts the
	// cells the rule halted before the configured cap.
	RepsTotal         float64 `json:"reps_total"`
	RepCells          uint64  `json:"rep_cells"`
	CellsStoppedEarly uint64  `json:"cells_stopped_early"`
}

func metricsFromSnapshot(s telemetry.Snapshot) Metrics {
	m := Metrics{
		UptimeSeconds:     s.UptimeSeconds,
		CellsSimulated:    s.CacheMisses,
		CacheHits:         s.CacheHits,
		CellsCanceled:     s.CellsCanceled,
		CellsInFlight:     s.CellsInFlight,
		QueueDepth:        s.QueueDepth,
		Waiters:           s.Waiters,
		StoreHits:         s.StoreHits,
		StoreMisses:       s.StoreMisses,
		StoreWrites:       s.StoreWrites,
		WorkerBusySeconds: s.WorkerBusySeconds,
		CellWallCount:     s.CellWall.Count,
		SimEvents:         s.Sim.Events(),
		SimEventsByTier: map[string]uint64{
			"closure": s.Sim.EventsClosure,
			"pooled":  s.Sim.EventsPooled,
			"arg":     s.Sim.EventsArg,
			"owned":   s.Sim.EventsOwned,
		},
		TimerRecycles:  s.Sim.TimerRecycles,
		PacketRecycles: s.Sim.PacketRecycles,
		HeapHighWater:  s.Sim.HeapHighWater,
		PhaseSeconds:   s.PhaseSeconds,
		PhaseCells:     s.PhaseCells,
		SweepCells:     s.SweepCells,

		RepsTotal:         s.RepsPerCell.Sum,
		RepCells:          s.RepsPerCell.Count,
		CellsStoppedEarly: s.CellsStoppedEarly,
	}
	if s.CellWall.Count > 0 {
		m.CellWallMeanSeconds = s.CellWall.Sum / float64(s.CellWall.Count)
		m.CellWallP50Seconds = s.CellWall.Quantile(0.50)
		m.CellWallP95Seconds = s.CellWall.Quantile(0.95)
	}
	if s.StoreLoad.Count > 0 {
		m.StoreLoadP95Seconds = s.StoreLoad.Quantile(0.95)
	}
	return m
}

// SetCollector attaches a collector to the session (nil detaches):
// the engine mirrors its counters into it and every subsequent run
// reports per-cell telemetry, unless a run brings its own
// Options.Collector. Attach before submitting work so collector
// totals reconcile with Stats deltas.
func (s *Session) SetCollector(c *Collector) { s.inner.SetCollector(c.raw()) }

// Metrics snapshots the session's telemetry. Without an attached
// collector only the engine-derived fields (cells simulated, cache
// hits, cancellations, and the live gauges) are populated; with one,
// the wall-time, phase, simulator, and sweep fields fill in too.
func (s *Session) Metrics() Metrics {
	if col := s.inner.Collector(); col != nil {
		return metricsFromSnapshot(col.Snapshot())
	}
	st := s.inner.EngineStats()
	return Metrics{
		CellsSimulated: st.Misses,
		CacheHits:      st.Hits,
		CellsCanceled:  st.Canceled,
		CellsInFlight:  st.InFlight,
		QueueDepth:     st.QueueDepth,
		Waiters:        st.Waiters,
		StoreHits:      st.StoreHits,
		StoreMisses:    st.StoreMisses,
		StoreWrites:    st.StoreWrites,
	}
}
