package bufferqoe

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// sweepOpts are small enough for unit tests; probes ignore Duration.
func sweepOpts() Options {
	return Options{Seed: 11, Warmup: 2 * time.Second, Reps: 1, ClipSeconds: 1}
}

// TestSweepCustomLinkEndToEnd is the acceptance check for the
// composable API: a non-paper link (symmetric fiber) with a non-paper
// queue discipline (CoDel) runs end to end through Sweep.
func TestSweepCustomLinkEndToEnd(t *testing.T) {
	fiber := FiberLink()
	sw := Sweep{
		Scenarios: []Scenario{
			{Name: "fiber-idle", Link: &fiber},
			{Name: "fiber-codel-up", Link: &fiber, Workload: "short-few", Direction: Up, AQM: CoDel},
		},
		Buffers: []int{16, 64},
		Probes:  []Probe{{Media: VoIP}, {Media: Web}},
	}
	s := NewSession()
	g, err := s.Sweep(sw, sweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cells) != 2*2*2 {
		t.Fatalf("cell count = %d, want 8", len(g.Cells))
	}
	c, ok := g.Cell("fiber-idle", "voip", 16)
	if !ok {
		t.Fatal("missing fiber-idle/voip/16 cell")
	}
	if c.MOS < 3.9 || c.TalkMOS < 3.9 {
		t.Fatalf("idle gigabit fiber VoIP MOS = %+v, want excellent", c)
	}
	if c.Rating == "" || c.Metric != "mos" {
		t.Fatalf("cell missing rating/metric: %+v", c)
	}
	w, ok := g.Cell("fiber-codel-up", "web", 64)
	if !ok {
		t.Fatal("missing fiber-codel-up/web/64 cell")
	}
	if w.Metric != "plt_s" || w.Value <= 0 || w.Value > 2 {
		t.Fatalf("fiber web PLT = %+v, want fast load", w)
	}

	txt := g.Text()
	for _, want := range []string{"fiber-idle", "fiber-codel-up", "voip", "web", "16", "64"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("Text() missing %q:\n%s", want, txt)
		}
	}
	raw, err := g.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Grid
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if len(back.Cells) != len(g.Cells) || back.Cells[0].Rating == "" {
		t.Fatalf("JSON lost cells: %+v", back.Cells[0])
	}
}

// TestSweepFasterLinkLoadsFaster pins the physics: the same workload
// and page load on a gigabit custom link beats the paper's DSL line.
func TestSweepFasterLinkLoadsFaster(t *testing.T) {
	fiber := FiberLink()
	sw := Sweep{
		Scenarios: []Scenario{
			{Name: "dsl"},
			{Name: "fiber", Link: &fiber},
		},
		Buffers: []int{64},
		Probes:  []Probe{{Media: Web}},
	}
	g, err := NewSession().Sweep(sw, sweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	dsl, _ := g.Cell("dsl", "web", 64)
	fib, _ := g.Cell("fiber", "web", 64)
	if fib.Value >= dsl.Value {
		t.Fatalf("fiber PLT %.3fs not faster than DSL %.3fs", fib.Value, dsl.Value)
	}
}

// TestSweepBackboneAndJitter covers the preset-backbone and
// jittery-access corners of the scenario space.
func TestSweepBackboneAndJitter(t *testing.T) {
	sw := Sweep{
		Scenarios: []Scenario{
			{Name: "bb", Network: Backbone, Workload: "short-low"},
			{Name: "lte-ish", Link: linkPtr(LTELink()), Jitter: 5 * time.Millisecond},
		},
		Buffers: []int{64},
		Probes:  []Probe{{Media: VoIP}, {Media: Video, Profile: "SD"}},
	}
	g, err := NewSession().Sweep(sw, sweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	bb, _ := g.Cell("bb", "voip", 64)
	if bb.MOS <= 0 || bb.TalkMOS != 0 {
		t.Fatalf("backbone VoIP cell = %+v (talk direction must be empty)", bb)
	}
	v, _ := g.Cell("lte-ish", "video:SD", 64)
	if v.Metric != "ssim" || v.Value <= 0 || v.Value > 1 {
		t.Fatalf("LTE video cell = %+v", v)
	}
}

func linkPtr(l Link) *Link { return &l }

// TestSweepValidation: every invalid corner must fail the call before
// simulation, not panic a worker.
func TestSweepValidation(t *testing.T) {
	valid := Scenario{Workload: "short-few"}
	probe := Probe{Media: VoIP}
	cases := []struct {
		name string
		sw   Sweep
	}{
		{"empty axes", Sweep{}},
		{"unknown workload", Sweep{Scenarios: []Scenario{{Workload: "nope"}}, Buffers: []int{8}, Probes: []Probe{probe}}},
		{"unknown media", Sweep{Scenarios: []Scenario{valid}, Buffers: []int{8}, Probes: []Probe{{Media: "carrier-pigeon"}}}},
		{"bad buffer", Sweep{Scenarios: []Scenario{valid}, Buffers: []int{0}, Probes: []Probe{probe}}},
		{"bad direction", Sweep{Scenarios: []Scenario{{Workload: "short-few", Direction: "sideways"}}, Buffers: []int{8}, Probes: []Probe{probe}}},
		{"bad AQM", Sweep{Scenarios: []Scenario{{Workload: "short-few", AQM: "madness"}}, Buffers: []int{8}, Probes: []Probe{probe}}},
		{"bad CC", Sweep{Scenarios: []Scenario{{Workload: "short-few", CC: "quic"}}, Buffers: []int{8}, Probes: []Probe{probe}}},
		{"backbone custom link", Sweep{Scenarios: []Scenario{{Network: Backbone, Link: linkPtr(FiberLink())}}, Buffers: []int{8}, Probes: []Probe{probe}}},
		{"backbone up congestion", Sweep{Scenarios: []Scenario{{Network: Backbone, Workload: "long", Direction: Up}}, Buffers: []int{8}, Probes: []Probe{probe}}},
		{"profile on voip", Sweep{Scenarios: []Scenario{valid}, Buffers: []int{8}, Probes: []Probe{{Media: VoIP, Profile: "HD"}}}},
		{"unknown profile", Sweep{Scenarios: []Scenario{valid}, Buffers: []int{8}, Probes: []Probe{{Media: Video, Profile: "8K"}}}},
		{"duplicate labels", Sweep{Scenarios: []Scenario{valid, valid}, Buffers: []int{8}, Probes: []Probe{probe}}},
		{"duplicate probes", Sweep{Scenarios: []Scenario{valid}, Buffers: []int{8}, Probes: []Probe{{Media: Video}, {Media: Video, Profile: "SD"}}}},
		{"duplicate probes case-folded", Sweep{Scenarios: []Scenario{valid}, Buffers: []int{8}, Probes: []Probe{{Media: Video, Profile: "sd"}, {Media: Video, Profile: "SD"}}}},
		{"duplicate buffers", Sweep{Scenarios: []Scenario{valid}, Buffers: []int{8, 8}, Probes: []Probe{probe}}},
		{"negative link rate", Sweep{Scenarios: []Scenario{{Link: &Link{UpRate: -1e6}}}, Buffers: []int{8}, Probes: []Probe{probe}}},
		{"negative link delay", Sweep{Scenarios: []Scenario{{Link: &Link{ClientDelay: -time.Millisecond}}}, Buffers: []int{8}, Probes: []Probe{probe}}},
	}
	s := NewSession()
	for _, tc := range cases {
		if _, err := s.Sweep(tc.sw, sweepOpts()); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}

// TestScenarioLabels pins the derived label format.
func TestScenarioLabels(t *testing.T) {
	fiber := FiberLink()
	cases := []struct {
		sc   Scenario
		want string
	}{
		{Scenario{}, "access/noBG"},
		{Scenario{Workload: "long-many", Direction: Up}, "access/long-many/up"},
		{Scenario{Network: Backbone, Workload: "long"}, "backbone/long"},
		{Scenario{Link: &fiber, Workload: "short-few", AQM: CoDel}, "custom(1G/1G@2ms/10ms)/short-few/down+codel"},
		{Scenario{Link: &Link{UpRate: 1e9, DownRate: 1e9}}, "custom(1G/1G)/noBG"},
		{Scenario{Link: &Link{UpRate: 1e9, DownRate: 1e9, ClientDelay: 50 * time.Millisecond}}, "custom(1G/1G@50ms/dflt)/noBG"},
		{Scenario{Name: "mine", Workload: "short-few"}, "mine"},
		{Scenario{Jitter: 2 * time.Millisecond}, "access/noBG+j2ms"},
	}
	for _, tc := range cases {
		if got := tc.sc.Label(); got != tc.want {
			t.Fatalf("Label() = %q, want %q", got, tc.want)
		}
	}
}

// TestMeasureProbesShareSweepCache: a Measure* probe of a cell a
// sweep has visited must be answered from the session cache.
func TestMeasureProbesShareSweepCache(t *testing.T) {
	s := NewSession()
	sw := Sweep{
		Scenarios: []Scenario{{Workload: "noBG"}},
		Buffers:   []int{64},
		Probes:    []Probe{{Media: VoIP}},
	}
	if _, err := s.Sweep(sw, sweepOpts()); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if _, err := s.MeasureVoIP(Access, "noBG", Down, 64, sweepOpts()); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Misses != before.Misses {
		t.Fatalf("probe re-simulated a swept cell: %+v -> %+v", before, after)
	}
	if after.Hits == before.Hits {
		t.Fatalf("probe did not hit the cache: %+v -> %+v", before, after)
	}
}
