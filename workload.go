package bufferqoe

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"bufferqoe/internal/testbed"
)

// Traffic is one typed component of a Workload: either long-lived
// bulk flows (Infinite) or a harpoon-style population of web sessions
// issuing Weibull-sized transfers over Parallel request loops with
// exponential think times. The Table 1 presets are built from the
// same components (see LongMany, ShortFew, ...), so custom mixes and
// presets share one compile, cache, and seed path.
type Traffic struct {
	// Sessions is the number of user sessions.
	Sessions int
	// Parallel is the number of independent request loops per session;
	// 0 means 1.
	Parallel int
	// Think is the mean exponential gap between a transfer completing
	// and the loop's next request. Ignored for Infinite components.
	Think time.Duration
	// Infinite marks long-lived bulk flows (iperf-style) instead of
	// closed request loops.
	Infinite bool
}

// BulkFlows is a component of n long-lived bulk flows.
func BulkFlows(n int) Traffic {
	return Traffic{Sessions: n, Infinite: true}
}

// WebSessions is a component of closed-loop web sessions: sessions
// users, each running parallel request loops with the given mean
// think time.
func WebSessions(sessions, parallel int, think time.Duration) Traffic {
	return Traffic{Sessions: sessions, Parallel: parallel, Think: think}
}

// Workload is a composable background-traffic mix: typed components
// per congestion direction plus a scale multiplier applied to every
// session count. Set it on Scenario.Mix to sweep traffic mixes the
// paper's five Table 1 presets cannot express — e.g. bulk uploads
// competing with a downstream web-session population. A Workload
// canonicalizes before anything runs: component order, the
// Sessions x Parallel split, and the Scale spelling never affect
// results, and a mix equal to a Table 1 preset under some congestion
// direction is the preset — same cell spec, same cache entry, same
// CRN-paired seed.
type Workload struct {
	// Up / Down are the traffic components per congestion direction.
	Up, Down []Traffic
	// Scale multiplies the session count of every component; 0 and 1
	// both mean unscaled.
	Scale int
}

// internal converts to the testbed's workload model.
func (w *Workload) internal() testbed.Workload {
	out := testbed.Workload{Scale: w.Scale}
	conv := func(ts []Traffic) []testbed.Component {
		if len(ts) == 0 {
			return nil
		}
		cs := make([]testbed.Component, len(ts))
		for i, t := range ts {
			cs[i] = testbed.Component{Sessions: t.Sessions, Parallel: t.Parallel, Think: t.Think, Infinite: t.Infinite}
		}
		return cs
	}
	out.Up = conv(w.Up)
	out.Down = conv(w.Down)
	return out
}

// fromInternal converts a testbed workload to the facade type.
func fromInternal(iw testbed.Workload) *Workload {
	out := &Workload{Scale: iw.Scale}
	conv := func(cs []testbed.Component) []Traffic {
		if len(cs) == 0 {
			return nil
		}
		ts := make([]Traffic, len(cs))
		for i, c := range cs {
			ts[i] = Traffic{Sessions: c.Sessions, Parallel: c.Parallel, Think: c.Think, Infinite: c.Infinite}
		}
		return ts
	}
	out.Up = conv(iw.Up)
	out.Down = conv(iw.Down)
	return out
}

// Validate reports whether the mix can be compiled: no negative
// knobs, and a bounded total population.
func (w *Workload) Validate() error {
	if err := w.internal().Validate(); err != nil {
		return fmt.Errorf("bufferqoe: invalid mix: %w", err)
	}
	return nil
}

// Scaled returns a copy whose effective scale is multiplied by n, so
// presets compose with load factors: LongMany().Scaled(4) is the
// long-many mix at four times the session counts. Scaled(0) is the
// empty workload (multiplying the load by zero, not "unscaled");
// negative n yields a workload that fails Validate.
func (w *Workload) Scaled(n int) *Workload {
	if n == 0 {
		return &Workload{}
	}
	out := *w
	scale := out.Scale
	if scale < 1 {
		scale = 1
	}
	out.Scale = scale * n
	return &out
}

// Label returns the workload's deterministic display name for grid
// axes: the preset name when the mix equals a full Table 1 workload
// (access table first, then backbone), otherwise "mix(<canonical
// encoding>)". Equivalent mixes always share a label, whatever their
// spelling. Scenario.Label refines this with the congestion
// direction when a mix equals a direction-masked preset.
func (w *Workload) Label() string {
	c := w.internal().Canonical()
	for _, name := range Scenarios(Access) {
		if full, err := testbed.AccessWorkload(name); err == nil && full.Equal(c) {
			return name
		}
	}
	for _, name := range Scenarios(Backbone) {
		if full, err := testbed.BackboneWorkload(name); err == nil && full.Equal(c) {
			return name
		}
	}
	return "mix(" + c.Encode() + ")"
}

// String renders a human-readable component breakdown, e.g.
// "up: 8 long-lived flow(s); down: 48 web loop(s), think 1.5s".
func (w *Workload) String() string {
	return w.internal().Describe()
}

// Encoding returns the canonical -mix grammar rendering of the
// workload ("noBG" for the empty mix). It is injective over
// equivalence classes — two mixes encode equally exactly when they
// describe the same traffic — and ParseMix(w.Encoding()) always
// round-trips to an equivalent workload, so encodings are safe to
// persist and compare.
func (w *Workload) Encoding() string {
	return w.internal().Encode()
}

// Equal reports whether two mixes describe the same traffic, i.e.
// canonicalize identically.
func (w *Workload) Equal(o *Workload) bool {
	return w.internal().Equal(o.internal())
}

// PresetWorkload returns a Table 1 preset as a Workload, so preset
// mixes can be inspected, scaled, or extended component-wise. The
// returned value is the full (unmasked) up+down population; applying
// it via Scenario.Mix with only one side kept reproduces the
// direction-restricted variants.
func PresetWorkload(n Network, name string) (*Workload, error) {
	var (
		iw  testbed.Workload
		err error
	)
	if n == Backbone {
		iw, err = testbed.BackboneWorkload(name)
	} else {
		iw, err = testbed.AccessWorkload(name)
	}
	if err != nil {
		return nil, fmt.Errorf("bufferqoe: %w", err)
	}
	return fromInternal(iw), nil
}

func mustPreset(n Network, name string) *Workload {
	w, err := PresetWorkload(n, name)
	if err != nil {
		panic(err) // unreachable: preset names below are table literals
	}
	return w
}

// NoBG is the idle workload: no background traffic.
func NoBG() *Workload { return mustPreset(Access, "noBG") }

// LongFew is Table 1 access "long-few": 1 up / 8 down long-lived
// flows.
func LongFew() *Workload { return mustPreset(Access, "long-few") }

// LongMany is Table 1 access "long-many": 8 up / 64 down long-lived
// flows.
func LongMany() *Workload { return mustPreset(Access, "long-many") }

// ShortFew is Table 1 access "short-few": web sessions at moderate
// load.
func ShortFew() *Workload { return mustPreset(Access, "short-few") }

// ShortMany is Table 1 access "short-many": web sessions at high
// load.
func ShortMany() *Workload { return mustPreset(Access, "short-many") }

// BackboneShortLow is Table 1 backbone "short-low" (~16% load).
func BackboneShortLow() *Workload { return mustPreset(Backbone, "short-low") }

// BackboneShortMedium is Table 1 backbone "short-medium" (~50% load).
func BackboneShortMedium() *Workload { return mustPreset(Backbone, "short-medium") }

// BackboneShortHigh is Table 1 backbone "short-high" (~98% load).
func BackboneShortHigh() *Workload { return mustPreset(Backbone, "short-high") }

// BackboneShortOverload is Table 1 backbone "short-overload"
// (persistent overload).
func BackboneShortOverload() *Workload { return mustPreset(Backbone, "short-overload") }

// BackboneLong is Table 1 backbone "long": 768 long-lived flows.
func BackboneLong() *Workload { return mustPreset(Backbone, "long") }

// ParseMix parses the qoebench mix grammar into a Workload:
//
//	mix       := section (';' section)*
//	section   := ('up'|'down') ':' component (',' component)*
//	           | 'scale=' n
//	component := 'long=' n ['x' m]                 n sessions (x m loops)
//	           | 'web='  n ['x' m] '/' duration    with mean think time
//
// Examples: "up:long=2;down:web=16x3/1.5s", "down:long=64,web=48/1s",
// "up:long=8;down:long=64;scale=2". The literal "noBG" parses to the
// empty workload, so canonical encodings (Workload.Label without the
// mix(...) wrapper) round-trip.
func ParseMix(s string) (*Workload, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("bufferqoe: empty mix (want e.g. %q)", "up:long=2;down:web=16x3/1.5s")
	}
	if s == "noBG" {
		return &Workload{}, nil
	}
	w := &Workload{}
	for _, sec := range strings.Split(s, ";") {
		sec = strings.TrimSpace(sec)
		if v, ok := strings.CutPrefix(sec, "scale="); ok {
			if w.Scale != 0 {
				return nil, fmt.Errorf("bufferqoe: mix: duplicate scale section")
			}
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bufferqoe: mix: scale must be a positive integer, got %q", v)
			}
			w.Scale = n
			continue
		}
		side, list, ok := strings.Cut(sec, ":")
		if !ok {
			return nil, fmt.Errorf("bufferqoe: mix section %q: want \"up:...\", \"down:...\", or \"scale=n\"", sec)
		}
		var dst *[]Traffic
		switch strings.TrimSpace(side) {
		case "up":
			dst = &w.Up
		case "down":
			dst = &w.Down
		default:
			return nil, fmt.Errorf("bufferqoe: mix section %q: unknown direction %q (want up or down)", sec, side)
		}
		for _, cs := range strings.Split(list, ",") {
			t, err := parseMixComponent(cs)
			if err != nil {
				return nil, err
			}
			*dst = append(*dst, t)
		}
	}
	return w, nil
}

// parseMixComponent parses one "long=..." / "web=..." term.
func parseMixComponent(s string) (Traffic, error) {
	s = strings.TrimSpace(s)
	kind, val, ok := strings.Cut(s, "=")
	if !ok {
		return Traffic{}, fmt.Errorf("bufferqoe: mix component %q: want \"long=n\" or \"web=n[xm]/think\"", s)
	}
	switch kind {
	case "long":
		sessions, parallel, err := parseMixCounts(val)
		if err != nil {
			return Traffic{}, fmt.Errorf("bufferqoe: mix component %q: %w", s, err)
		}
		return Traffic{Sessions: sessions, Parallel: parallel, Infinite: true}, nil
	case "web":
		counts, thinkStr, ok := strings.Cut(val, "/")
		if !ok {
			return Traffic{}, fmt.Errorf("bufferqoe: mix component %q: web components need a think time, e.g. web=16x3/1.5s", s)
		}
		sessions, parallel, err := parseMixCounts(counts)
		if err != nil {
			return Traffic{}, fmt.Errorf("bufferqoe: mix component %q: %w", s, err)
		}
		think, err := time.ParseDuration(strings.TrimSpace(thinkStr))
		if err != nil || think < 0 {
			return Traffic{}, fmt.Errorf("bufferqoe: mix component %q: bad think time %q", s, thinkStr)
		}
		return Traffic{Sessions: sessions, Parallel: parallel, Think: think}, nil
	default:
		return Traffic{}, fmt.Errorf("bufferqoe: mix component %q: unknown kind %q (want long or web)", s, kind)
	}
}

// parseMixCounts parses "n" or "nxm" session/parallel counts.
func parseMixCounts(s string) (sessions, parallel int, err error) {
	a, b, hasPar := strings.Cut(strings.TrimSpace(s), "x")
	sessions, err = strconv.Atoi(a)
	if err != nil || sessions < 0 {
		return 0, 0, fmt.Errorf("bad session count %q", a)
	}
	if hasPar {
		parallel, err = strconv.Atoi(b)
		if err != nil || parallel < 0 {
			return 0, 0, fmt.Errorf("bad parallelism %q", b)
		}
	}
	return sessions, parallel, nil
}
