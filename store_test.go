package bufferqoe

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// storeSweep is a small grid mixing all three probe media, so the
// persisted set spans voipScore, time.Duration, and videoScore cells.
func storeSweep() Sweep {
	return Sweep{
		Scenarios: []Scenario{
			{Network: Access, Workload: "noBG"},
			{Network: Access, Workload: "short-few", Direction: Up},
		},
		Buffers: []int{16, 64},
		Probes:  []Probe{{Media: VoIP}, {Media: Web}, {Media: Video, Profile: "SD"}},
	}
}

func storeOpts() Options {
	return Options{Seed: 7, Duration: 3 * time.Second, Warmup: 1 * time.Second, Reps: 1, ClipSeconds: 1}
}

// gridJSON renders a grid for bit-identity comparison.
func gridJSON(t *testing.T, g *Grid) []byte {
	t.Helper()
	raw, err := g.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestStoreWarmSweepZeroComputes is the tentpole acceptance test: the
// same sweep run twice through one store directory simulates zero
// cells on the second run and returns bit-identical results.
func TestStoreWarmSweepZeroComputes(t *testing.T) {
	dir := t.TempDir()

	s1 := NewSession()
	if err := s1.OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	cold, err := s1.Sweep(storeSweep(), storeOpts())
	if err != nil {
		t.Fatal(err)
	}
	st1 := s1.Stats()
	if st1.Misses == 0 || st1.StoreHits != 0 {
		t.Fatalf("cold run stats = %+v", st1)
	}
	if st1.StoreWrites != st1.Misses {
		t.Fatalf("cold run persisted %d of %d computes", st1.StoreWrites, st1.Misses)
	}
	if err := s1.CloseStore(); err != nil {
		t.Fatal(err)
	}

	s2 := NewSession()
	if err := s2.OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	defer s2.CloseStore()
	warm, err := s2.Sweep(storeSweep(), storeOpts())
	if err != nil {
		t.Fatal(err)
	}
	st2 := s2.Stats()
	if st2.Misses != 0 {
		t.Fatalf("warm-store run simulated %d cells, want 0 (stats %+v)", st2.Misses, st2)
	}
	if st2.StoreHits != st1.Misses {
		t.Fatalf("store hits = %d, want %d", st2.StoreHits, st1.Misses)
	}
	if !bytes.Equal(gridJSON(t, cold), gridJSON(t, warm)) {
		t.Fatalf("warm-store grid differs from cold grid:\n%s\n---\n%s",
			gridJSON(t, cold), gridJSON(t, warm))
	}
}

// TestStoreCorruptEntryRecovery: mangling stored entries degrades to
// recomputation with identical results, never to wrong answers.
func TestStoreCorruptEntryRecovery(t *testing.T) {
	dir := t.TempDir()
	s1 := NewSession()
	if err := s1.OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	cold, err := s1.Sweep(storeSweep(), storeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.CloseStore(); err != nil {
		t.Fatal(err)
	}

	// Truncate one entry, bit-flip another, zero a third.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) < 3 {
		t.Fatalf("only %d entries persisted", len(ents))
	}
	mangle := []func(p string, d []byte) []byte{
		func(p string, d []byte) []byte { return d[:len(d)/3] },
		func(p string, d []byte) []byte { d[len(d)/2] ^= 0x55; return d },
		func(p string, d []byte) []byte { return nil },
	}
	for i, m := range mangle {
		p := filepath.Join(dir, ents[i].Name())
		d, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, m(p, d), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2 := NewSession()
	if err := s2.OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	defer s2.CloseStore()
	warm, err := s2.Sweep(storeSweep(), storeOpts())
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Misses != 3 {
		t.Fatalf("recomputed %d cells, want exactly the 3 corrupted (stats %+v)", st.Misses, st)
	}
	if !bytes.Equal(gridJSON(t, cold), gridJSON(t, warm)) {
		t.Fatal("recovered grid differs from cold grid")
	}
}

// TestStoreConcurrentSessions: several sessions sharing one directory
// concurrently (separate handles, like separate processes) all get
// correct, identical grids.
func TestStoreConcurrentSessions(t *testing.T) {
	dir := t.TempDir()
	want := func() []byte {
		s := NewSession()
		g, err := s.Sweep(storeSweep(), storeOpts())
		if err != nil {
			t.Fatal(err)
		}
		return gridJSON(t, g)
	}()

	const sessions = 4
	grids := make([][]byte, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := NewSession()
			if err := s.OpenStore(dir); err != nil {
				t.Error(err)
				return
			}
			defer s.CloseStore()
			g, err := s.Sweep(storeSweep(), storeOpts())
			if err != nil {
				t.Error(err)
				return
			}
			grids[i] = gridJSON(t, g)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, g := range grids {
		if !bytes.Equal(g, want) {
			t.Fatalf("session %d grid differs from store-less grid", i)
		}
	}
}

// TestSessionResetCacheDetachesStore: after ResetCache the next run
// is genuinely cold — no in-memory entries, no store answers.
func TestSessionResetCacheDetachesStore(t *testing.T) {
	dir := t.TempDir()
	s := NewSession()
	if err := s.OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sweep(storeSweep(), storeOpts()); err != nil {
		t.Fatal(err)
	}
	first := s.Stats().Misses

	s.ResetCache()
	if st := s.Stats(); st.Misses != 0 || st.StoreHits != 0 {
		t.Fatalf("counters survive reset: %+v", st)
	}
	if _, err := s.Sweep(storeSweep(), storeOpts()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Misses != first {
		t.Fatalf("post-reset run simulated %d cells, want %d (store leaked through)", st.Misses, first)
	}
	if st.StoreHits != 0 || st.StoreWrites != 0 {
		t.Fatalf("post-reset run still using a store: %+v", st)
	}
	// The store handle is closed by ResetCache; a second OpenStore on
	// the same session must work.
	if err := s.OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseStore(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenStoreTwiceFails pins the one-store-per-session contract.
func TestOpenStoreTwiceFails(t *testing.T) {
	s := NewSession()
	if err := s.OpenStore(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer s.CloseStore()
	if err := s.OpenStore(t.TempDir()); err == nil {
		t.Fatal("second OpenStore succeeded")
	}
}

// TestCloseStoreIdempotent: closing without a store is a no-op.
func TestCloseStoreIdempotent(t *testing.T) {
	s := NewSession()
	if err := s.CloseStore(); err != nil {
		t.Fatal(err)
	}
	if err := s.OpenStore(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseStore(); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseStore(); err != nil {
		t.Fatal(err)
	}
}
