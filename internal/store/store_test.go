package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// testCodec serializes string values only, so tests can probe the
// skip path with any other type.
type testCodec struct{}

func (testCodec) Encode(v any) ([]byte, bool) {
	s, ok := v.(string)
	if !ok {
		return nil, false
	}
	return []byte("S" + s), true
}

func (testCodec) Decode(data []byte) (any, error) {
	if len(data) < 1 || data[0] != 'S' {
		return nil, errors.New("bad payload")
	}
	return string(data[1:]), nil
}

func openTest(t *testing.T, dir, version string) *Store {
	t.Helper()
	s, err := Open(dir, version, testCodec{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// put writes synchronously: Put + Close forces the flush, then the
// handle is reopened. Used where a test needs the entry on disk.
func putSync(t *testing.T, dir, version, key, val string) {
	t.Helper()
	s := openTest(t, dir, version)
	if !s.Put(key, val) {
		t.Fatalf("Put(%q) not accepted", key)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	putSync(t, dir, "v1", "cell-a", "value-a")

	s := openTest(t, dir, "v1")
	v, ok := s.Get("cell-a")
	if !ok || v.(string) != "value-a" {
		t.Fatalf("Get = %v, %v; want value-a, true", v, ok)
	}
	if st := s.Stats(); st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMissAndSkip(t *testing.T) {
	s := openTest(t, t.TempDir(), "v1")
	if _, ok := s.Get("absent"); ok {
		t.Fatal("hit on empty store")
	}
	if s.Put("k", 42) { // int is outside testCodec's set
		t.Fatal("Put accepted unsupported type")
	}
	st := s.Stats()
	if st.Misses != 1 || st.Skipped != 1 || st.Writes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutDedupes(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "v1")
	if !s.Put("k", "v") {
		t.Fatal("first Put rejected")
	}
	// Either still pending or already indexed; both dedupe.
	if s.Put("k", "v") {
		t.Fatal("duplicate Put accepted")
	}
	s.Close()
	s2 := openTest(t, dir, "v1")
	if s2.Put("k", "v") {
		t.Fatal("Put accepted for already-persisted entry")
	}
}

func TestWrongVersionMisses(t *testing.T) {
	dir := t.TempDir()
	putSync(t, dir, "v1", "k", "v")
	s := openTest(t, dir, "v2")
	if _, ok := s.Get("k"); ok {
		t.Fatal("v2 store served a v1 entry")
	}
	// The v1 entry must be untouched: different versions hash to
	// different names, so it is simply not addressed.
	s1 := openTest(t, dir, "v1")
	if _, ok := s1.Get("k"); !ok {
		t.Fatal("v1 entry lost after v2 access")
	}
}

// corrupt each entry file a different way; every one must degrade to
// a miss, be deleted, and count as corrupt.
func TestCorruptEntriesRecovered(t *testing.T) {
	cases := []struct {
		name   string
		mangle func(path string, data []byte) error
	}{
		{"truncated", func(p string, d []byte) error {
			return os.WriteFile(p, d[:len(d)/2], 0o644)
		}},
		{"bitflip", func(p string, d []byte) error {
			d[len(d)/2] ^= 0xff
			return os.WriteFile(p, d, 0o644)
		}},
		{"bad-magic", func(p string, d []byte) error {
			copy(d, "XXXX")
			// Fix the CRC so only the magic check can reject it.
			body := d[:len(d)-4]
			binary.LittleEndian.PutUint32(d[len(d)-4:], crcOf(body))
			return os.WriteFile(p, d, 0o644)
		}},
		{"empty", func(p string, d []byte) error {
			return os.WriteFile(p, nil, 0o644)
		}},
		{"garbage", func(p string, d []byte) error {
			return os.WriteFile(p, []byte("not an entry at all"), 0o644)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			putSync(t, dir, "v1", "k", "v")
			ents, err := os.ReadDir(dir)
			if err != nil || len(ents) != 1 {
				t.Fatalf("ReadDir: %v, %d entries", err, len(ents))
			}
			path := filepath.Join(dir, ents[0].Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.mangle(path, data); err != nil {
				t.Fatal(err)
			}
			s := openTest(t, dir, "v1")
			if _, ok := s.Get("k"); ok {
				t.Fatal("corrupt entry served")
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("corrupt count = %d, want 1 (%+v)", st.Corrupt, st)
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("corrupt entry not deleted: %v", err)
			}
			// Recomputation path: a fresh Put must restore the entry.
			if !s.Put("k", "v") {
				t.Fatal("re-Put after corruption rejected")
			}
			s.Close()
			s2 := openTest(t, dir, "v1")
			if v, ok := s2.Get("k"); !ok || v.(string) != "v" {
				t.Fatalf("recovered Get = %v, %v", v, ok)
			}
		})
	}
}

// A key echo mismatch (file renamed onto another address) must be
// rejected even though magic, version, and CRC all validate.
func TestKeyEchoMismatch(t *testing.T) {
	dir := t.TempDir()
	putSync(t, dir, "v1", "key-a", "value-a")
	s := openTest(t, dir, "v1")
	ents, _ := os.ReadDir(dir)
	old := filepath.Join(dir, ents[0].Name())
	forged := filepath.Join(dir, s.fileName("key-b"))
	if err := os.Rename(old, forged); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openTest(t, dir, "v1")
	if _, ok := s2.Get("key-b"); ok {
		t.Fatal("renamed entry served under the wrong key")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt count = %d, want 1", st.Corrupt)
	}
}

func TestConcurrentHandlesOneDir(t *testing.T) {
	dir := t.TempDir()
	const handles, keys = 4, 32
	var wg sync.WaitGroup
	stores := make([]*Store, handles)
	for i := range stores {
		stores[i] = openTest(t, dir, "v1")
	}
	// All handles race to write the same key set; content addressing
	// makes every write of a key byte-identical, so any interleaving
	// of temp-write+rename is safe.
	for _, s := range stores {
		wg.Add(1)
		go func(s *Store) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("cell-%d", k)
				if v, ok := s.Get(key); ok && v.(string) != "val-"+key {
					t.Errorf("Get(%q) = %v", key, v)
				}
				s.Put(key, "val-"+key)
			}
		}(s)
	}
	wg.Wait()
	for _, s := range stores {
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	s := openTest(t, dir, "v1")
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("cell-%d", k)
		if v, ok := s.Get(key); !ok || v.(string) != "val-"+key {
			t.Fatalf("Get(%q) = %v, %v after concurrent writes", key, v, ok)
		}
	}
	if st := s.Stats(); st.Entries != keys {
		t.Fatalf("entries = %d, want %d", st.Entries, keys)
	}
}

func TestClosedHandle(t *testing.T) {
	s := openTest(t, t.TempDir(), "v1")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("Get hit after Close")
	}
	if s.Put("k", "v") {
		t.Fatal("Put accepted after Close")
	}
}

func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, "v1")
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("foreign file indexed: %+v", st)
	}
}

// crcOf mirrors the entry checksum for the bad-magic fixture.
func crcOf(body []byte) uint32 {
	return crc32.ChecksumIEEE(body)
}

// TestEntryNameShape pins the content-address format: hex SHA-256
// plus the suffix, so directories stay portable across platforms.
func TestEntryNameShape(t *testing.T) {
	s := openTest(t, t.TempDir(), "v1")
	name := s.fileName("some|key")
	if !strings.HasSuffix(name, entrySuffix) || len(name) != 64+len(entrySuffix) {
		t.Fatalf("fileName = %q", name)
	}
	if name == s.fileName("other|key") {
		t.Fatal("distinct keys share a file name")
	}
}
