// Package store implements the persistent, content-addressed cell
// result store: the on-disk second tier behind the engine's in-memory
// single-flight cache.
//
// Every cell result is a pure function of its canonical CellSpec and
// the engine's simulation semantics, so the pair (engine version,
// CellSpec.Key()) is a complete content address: equal addresses mean
// bit-identical values, on any machine, in any process, forever. The
// store exploits that by writing each result to one immutable file
// named by the SHA-256 of its address. There is nothing to update and
// nothing to lock across processes — concurrent writers of the same
// address produce identical bytes and the atomic rename makes one of
// them win harmlessly.
//
// Crash safety is write-to-temp + fsync + rename: a reader never
// observes a partial entry file, only a missing one. Every load
// re-validates the entry (magic, version, key echo, CRC32 over the
// whole record) and deletes anything that fails, so torn files from
// crashes, disk corruption, or foreign junk in the directory degrade
// to cache misses — the cell is recomputed, never trusted.
//
// Writes happen on a background goroutine fed by a bounded queue, so
// persisting results never blocks the engine's compute path; under
// sustained pressure excess writes are dropped (and counted), which
// only costs a recomputation in some later process.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Codec serializes cell values. The store is value-agnostic: the
// experiments layer, which owns the closed set of cell result types,
// supplies the codec (see experiments.CellCodec).
type Codec interface {
	// Encode renders v as a self-describing payload. ok is false when
	// v's dynamic type is outside the serializable set (such values are
	// computed per process but never persisted) or when encoding fails.
	Encode(v any) (data []byte, ok bool)
	// Decode reverses Encode. Decode(Encode(v)) must be bit-identical
	// to v for every value Encode accepts — the warm-store path feeds
	// decoded values straight into results that are asserted
	// bit-identical to fresh computes.
	Decode(data []byte) (any, error)
}

// Stats is a snapshot of one store handle's counters.
type Stats struct {
	// Entries is the number of entry files this handle knows about
	// (indexed at Open plus its own completed writes).
	Entries int
	// Hits counts Gets answered from disk; Misses counts Gets that
	// found nothing usable.
	Hits, Misses uint64
	// Writes counts entries durably persisted; Skipped counts Puts of
	// values outside the codec's serializable set; Dropped counts Puts
	// shed because the write queue was full or the write failed.
	Writes, Skipped, Dropped uint64
	// Corrupt counts entries that failed validation on load and were
	// deleted (the caller recomputes).
	Corrupt uint64
}

// Store is one handle on an on-disk result store directory. A handle
// is safe for concurrent use by any number of goroutines; independent
// handles (even in different processes) may share one directory —
// entries are immutable and atomically created, so the only cost of
// not seeing another handle's fresh writes is a recomputation.
type Store struct {
	dir     string
	version string
	codec   Codec

	mu      sync.Mutex
	index   map[string]struct{} // entry file names known present
	pending map[string]struct{} // names queued for write, not yet renamed
	closed  bool

	queue chan writeReq
	done  sync.WaitGroup

	hits, misses, writes, skipped, corrupt, dropped atomic.Uint64
}

type writeReq struct {
	name string
	data []byte
}

const (
	entrySuffix = ".cell"
	tmpPrefix   = "tmp-"
	// writeQueueCap bounds the persistence backlog; cell results are a
	// few hundred bytes, so the queue holds well under a megabyte.
	writeQueueCap = 1024
	// tmpMaxAge is how old an orphaned temp file must be before Open
	// sweeps it: old enough that no live writer (writes take
	// milliseconds) can still own it.
	tmpMaxAge = 15 * time.Minute
)

// entryMagic stamps every entry file; a version bump here invalidates
// the container format itself (distinct from the engine version, which
// invalidates the simulated values).
var entryMagic = [4]byte{'Q', 'B', 'S', '1'}

// Open opens (creating if needed) the store rooted at dir, stamped
// with the given engine version. Entries written under a different
// version hash to different file names, so old results are never
// served — they simply stop being addressable and can be garbage
// collected by deleting the directory.
func Open(dir, version string, codec Codec) (*Store, error) {
	if codec == nil {
		return nil, errors.New("store: nil codec")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		version: version,
		codec:   codec,
		index:   make(map[string]struct{}),
		pending: make(map[string]struct{}),
		queue:   make(chan writeReq, writeQueueCap),
	}
	// Fast startup: index entry names only — no file is opened or
	// validated until a Get addresses it.
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, de := range ents {
		name := de.Name()
		switch {
		case strings.HasSuffix(name, entrySuffix):
			s.index[name] = struct{}{}
		case strings.HasPrefix(name, tmpPrefix):
			// A temp file is an in-flight write or a crash leftover; only
			// sweep ones old enough that no live writer can own them.
			//lint:allow qoelint/determinism startup tmp-file hygiene against file mtimes; no simulation state involved
			if info, err := de.Info(); err == nil && time.Since(info.ModTime()) > tmpMaxAge {
				os.Remove(filepath.Join(dir, name))
			}
		}
	}
	s.done.Add(1)
	go s.writer()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// fileName is the content address: entries live at
// sha256(version \x00 key).cell, so the (version, key) pair fully
// determines the file and a version bump orphans every old entry.
func (s *Store) fileName(key string) string {
	h := sha256.New()
	h.Write([]byte(s.version))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return hex.EncodeToString(h.Sum(nil)) + entrySuffix
}

// Get loads the value stored for key, if a valid entry exists.
// Entries that fail validation (torn writes, corruption, a hash
// collision's mismatched key echo) are deleted and reported as misses
// — the caller recomputes and the recompute re-persists.
func (s *Store) Get(key string) (any, bool) {
	name := s.fileName(key)
	s.mu.Lock()
	_, known := s.index[name]
	closed := s.closed
	s.mu.Unlock()
	if closed || !known {
		s.misses.Add(1)
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		// Indexed but unreadable: deleted or made unreadable externally.
		s.dropEntry(name)
		s.misses.Add(1)
		return nil, false
	}
	payload, err := parseEntry(data, s.version, key)
	if err != nil {
		s.discardCorrupt(name)
		s.misses.Add(1)
		return nil, false
	}
	v, err := s.codec.Decode(payload)
	if err != nil {
		s.discardCorrupt(name)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return v, true
}

// Put schedules key's value for persistence and reports whether it
// was accepted. It never blocks: values outside the codec's
// serializable set are skipped, already-persisted (or already-queued)
// keys are deduplicated, and a full write queue sheds the put — all
// of which only cost a recomputation in some later process.
func (s *Store) Put(key string, v any) bool {
	data, ok := s.codec.Encode(v)
	if !ok {
		s.skipped.Add(1)
		return false
	}
	name := s.fileName(key)
	rec := encodeEntry(s.version, key, data)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if _, dup := s.index[name]; dup {
		return false
	}
	if _, dup := s.pending[name]; dup {
		return false
	}
	// The enqueue happens under mu alongside the closed check, so Close
	// (which flips closed before closing the channel) can never race a
	// send onto a closed channel.
	select {
	case s.queue <- writeReq{name: name, data: rec}:
		s.pending[name] = struct{}{}
		return true
	default:
		s.dropped.Add(1)
		return false
	}
}

// Close flushes all queued writes and releases the handle. Further
// Gets miss and further Puts are dropped. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.done.Wait()
	return nil
}

// Stats snapshots the handle's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries := len(s.index)
	s.mu.Unlock()
	return Stats{
		Entries: entries,
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Writes:  s.writes.Load(),
		Skipped: s.skipped.Load(),
		Dropped: s.dropped.Load(),
		Corrupt: s.corrupt.Load(),
	}
}

// writer drains the persistence queue. One goroutine per handle: cell
// results are small and writes are rare relative to computes, so a
// single writer keeps up while guaranteeing entries appear in the
// index only after they are durably on disk.
func (s *Store) writer() {
	defer s.done.Done()
	for req := range s.queue {
		err := s.writeEntry(req.name, req.data)
		s.mu.Lock()
		delete(s.pending, req.name)
		if err == nil {
			s.index[req.name] = struct{}{}
		}
		s.mu.Unlock()
		if err == nil {
			s.writes.Add(1)
		} else {
			s.dropped.Add(1)
		}
	}
}

// writeEntry persists one record atomically: unique temp file in the
// same directory, write, fsync, rename. A crash at any point leaves
// either no entry or a complete one, never a torn file under the
// final name.
func (s *Store) writeEntry(name string, data []byte) error {
	f, err := os.CreateTemp(s.dir, tmpPrefix)
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	} else {
		f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(s.dir, name))
	}
	if err != nil {
		os.Remove(tmp)
	}
	return err
}

// dropEntry forgets an indexed name that turned out to be unreadable.
func (s *Store) dropEntry(name string) {
	s.mu.Lock()
	delete(s.index, name)
	s.mu.Unlock()
}

// discardCorrupt deletes an entry that failed validation so it is
// never consulted again; the caller's recompute will re-persist it.
func (s *Store) discardCorrupt(name string) {
	os.Remove(filepath.Join(s.dir, name))
	s.dropEntry(name)
	s.corrupt.Add(1)
}

// Entry file layout (all integers little-endian uint32):
//
//	magic "QBS1" | len(version) version | len(key) key | len(payload) payload | CRC32
//
// The version and key are echoed in full so a load verifies the
// entry's identity independently of its file name — a SHA-256
// collision or a renamed file can never serve the wrong cell — and
// the trailing CRC32 (IEEE, over everything before it) rejects torn
// or bit-flipped records.

// encodeEntry renders one record.
func encodeEntry(version, key string, payload []byte) []byte {
	n := len(entryMagic) + 4 + len(version) + 4 + len(key) + 4 + len(payload) + 4
	buf := make([]byte, 0, n)
	buf = append(buf, entryMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(version)))
	buf = append(buf, version...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// errCorrupt is the catch-all validation failure; callers only need
// success/failure, the specific defect is irrelevant (the entry is
// deleted either way).
var errCorrupt = errors.New("store: corrupt entry")

// parseEntry validates one record against the expected version and
// key and returns its payload.
func parseEntry(data []byte, version, key string) ([]byte, error) {
	if len(data) < len(entryMagic)+4*4 {
		return nil, errCorrupt
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, errCorrupt
	}
	if string(body[:len(entryMagic)]) != string(entryMagic[:]) {
		return nil, errCorrupt
	}
	rest := body[len(entryMagic):]
	ver, rest, ok := readChunk(rest)
	if !ok || string(ver) != version {
		return nil, errCorrupt
	}
	k, rest, ok := readChunk(rest)
	if !ok || string(k) != key {
		return nil, errCorrupt
	}
	payload, rest, ok := readChunk(rest)
	if !ok || len(rest) != 0 {
		return nil, errCorrupt
	}
	return payload, nil
}

// readChunk pops one length-prefixed chunk.
func readChunk(b []byte) (chunk, rest []byte, ok bool) {
	if len(b) < 4 {
		return nil, nil, false
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < n {
		return nil, nil, false
	}
	return b[:n], b[n:], true
}
