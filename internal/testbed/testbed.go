// Package testbed assembles the paper's two laboratory testbeds
// (Figure 3) in simulation: an asymmetric DSL access network
// (1 Mbit/s up, 16 Mbit/s down, NetFPGA-style drop-tail bottleneck
// buffers at the home router and DSLAM) and an OC3 backbone
// (155 Mbit/s, 30 ms one-way delay box). It wires hosts, switches,
// routers, buffer configurations (Table 2) and the Harpoon workload
// scenarios (Table 1).
package testbed

import (
	"fmt"
	"time"

	"bufferqoe/internal/harpoon"
	"bufferqoe/internal/mac"
	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
	"bufferqoe/internal/tcp"
)

// Link-layer constants shared by both testbeds.
const (
	gigabit   = 1e9
	hostDelay = 50 * time.Microsecond // host <-> switch
	lanQueue  = 2048                  // switch/host queues: never the bottleneck
)

// Access network constants (Section 5.1).
const (
	AccessUpRate      = 1e6
	AccessDownRate    = 16e6
	AccessClientDelay = 5 * time.Millisecond  // client net <-> home router
	AccessServerDelay = 20 * time.Millisecond // DSLAM <-> server net
)

// Backbone constants (Section 5.1).
const (
	BackboneRate  = 155e6
	BackboneDelay = 30 * time.Millisecond // NetPath delay box, one way
)

// QueueFactory builds the bottleneck queue for a buffer size in
// packets; nil means drop-tail (the paper's configuration). The AQM
// ablations substitute CoDel/RED here.
type QueueFactory func(capPackets int) netem.Queue

// WifiParams selects an 802.11 MAC (internal/mac) for the access
// bottleneck instead of the wired DSL pair. Stations == 0 (the zero
// value) keeps the paper's wired bottleneck; Stations >= 1 replaces
// both bottleneck links with mac.WifiLinks contending on one shared
// medium, with the buffer under test still sitting in front of each.
type WifiParams struct {
	// Stations is the number of stations contending for the medium
	// (1 = no collisions); 0 disables wifi entirely.
	Stations int
	// RetryLimit bounds per-aggregate retransmission attempts
	// (default mac.DefaultRetryLimit).
	RetryLimit int
	// MaxAggFrames caps A-MPDU aggregation (default
	// mac.DefaultMaxAggFrames; 1 disables aggregation).
	MaxAggFrames int
}

// LinkParams overrides the access testbed's bottleneck rates and
// one-way propagation delays, turning the fixed DSL topology of
// Figure 3a into a template for arbitrary access networks (fiber,
// LTE, cable, and — via Wifi — 802.11). Zero fields keep the paper's
// values.
type LinkParams struct {
	// UpRate / DownRate are the bottleneck rates in bits/s
	// (paper: 1 Mbit/s up, 16 Mbit/s down). With Wifi enabled they are
	// the PHY air rates of the two directions.
	UpRate, DownRate float64
	// ClientDelay is the one-way delay between the client network and
	// the home router (paper: 5 ms); ServerDelay between the DSLAM and
	// the server network (paper: 20 ms).
	ClientDelay, ServerDelay time.Duration
	// Wifi, when Stations > 0, swaps the wired bottleneck for the
	// 802.11 MAC model.
	Wifi WifiParams
	// Reorder, when > 0, interposes a reordering stage after each
	// bottleneck link that delays each packet independently with this
	// probability, letting successors overtake it (netem.ReorderBox).
	Reorder float64
}

// WithDefaults fills zero fields with the paper's DSL values (and,
// when wifi is enabled, the 802.11 retry/aggregation defaults).
func (lp LinkParams) WithDefaults() LinkParams {
	if lp.UpRate <= 0 {
		lp.UpRate = AccessUpRate
	}
	if lp.DownRate <= 0 {
		lp.DownRate = AccessDownRate
	}
	if lp.ClientDelay <= 0 {
		lp.ClientDelay = AccessClientDelay
	}
	if lp.ServerDelay <= 0 {
		lp.ServerDelay = AccessServerDelay
	}
	if lp.Wifi.Stations > 0 {
		if lp.Wifi.RetryLimit <= 0 {
			lp.Wifi.RetryLimit = mac.DefaultRetryLimit
		}
		if lp.Wifi.MaxAggFrames <= 0 {
			lp.Wifi.MaxAggFrames = mac.DefaultMaxAggFrames
		}
	}
	return lp
}

// IsDefault reports whether the (default-filled) parameters equal the
// paper's DSL access link.
func (lp LinkParams) IsDefault() bool {
	return lp.WithDefaults() == LinkParams{
		UpRate: AccessUpRate, DownRate: AccessDownRate,
		ClientDelay: AccessClientDelay, ServerDelay: AccessServerDelay,
	}
}

// Scratch holds what a testbed build would otherwise allocate fresh:
// the bottleneck queue and link monitors, and — the big one — the
// assembled testbeds themselves. A worker reuses one Scratch across
// the cells it computes. The first NewAccess/NewBackbone call with a
// given Scratch builds the full node/link/stack graph and caches it
// here; later calls reset that carcass in place (engine, packet pool,
// nodes, links, TCP stacks) and reconfigure only what varies per cell
// (buffer queues, link rates/delays, seeds, congestion control), so
// the structural build cost is paid once per worker instead of once
// per cell. Every reset restores the exact state a cold build would
// produce, so results are bit-identical either way — the golden
// cross-section test exercises precisely this path.
type Scratch struct {
	UpQueueMon, DownQueueMon netem.QueueMonitor
	UpLinkMon, DownLinkMon   netem.LinkMonitor

	// Cached testbed carcasses. The access carcass is keyed on the
	// knobs that change the receiver graph — jitter (a JitterBox on
	// the client LAN hop), wifi (mac.WifiLinks instead of the wired
	// bottleneck pair), and reordering (ReorderBoxes after the
	// bottleneck); everything else is reconfigurable in place.
	access        *Access
	accessJitter  bool
	accessWifi    bool
	accessReorder bool
	backbone      *Backbone
}

// Reset clears all monitors for the next run. Cached testbed
// carcasses survive — they are reset on their next reuse.
func (s *Scratch) Reset() {
	s.UpQueueMon.Reset("")
	s.DownQueueMon.Reset("")
	s.UpLinkMon.Reset()
	s.DownLinkMon.Reset()
}

// Config configures a testbed build.
type Config struct {
	// BufferUp / BufferDown are bottleneck buffer sizes in packets.
	// The backbone uses BufferDown for both directions.
	BufferUp, BufferDown int
	// Link overrides the access bottleneck's rates and delays; the
	// zero value is the paper's DSL configuration. Ignored by the
	// backbone testbed.
	Link LinkParams
	// Seed drives all randomness.
	Seed uint64
	// CC selects background-traffic congestion control; nil uses the
	// paper's choice (CUBIC on access, Reno on backbone).
	CC func() tcp.CongestionControl
	// UpQueue / DownQueue override the bottleneck queue discipline.
	UpQueue, DownQueue QueueFactory
	// TCP overrides stack parameters (zero fields take defaults).
	TCP tcp.Config
	// Jitter, if non-zero, adds WiFi-like exponential per-packet extra
	// delay (with this mean) on the client LAN hop of the access
	// testbed, both directions. The paper explicitly excludes wireless
	// delay variability (§5.1); the ext-jitter experiment re-adds it.
	Jitter time.Duration
	// Scratch, if non-nil, supplies reusable monitors (reset before
	// use) instead of allocating fresh ones — the cell engine passes a
	// per-worker scratch here.
	Scratch *Scratch
}

func (c Config) queue(f QueueFactory, capPkts int, mon *netem.QueueMonitor) netem.Queue {
	if f == nil {
		q := netem.NewDropTail(capPkts)
		q.Monitor = mon
		return q
	}
	return f(capPkts)
}

// Access is the assembled access-network testbed.
type Access struct {
	Eng *sim.Engine
	Net *netem.Network

	// MediaClient / MediaServer host the application under study
	// (VoIP, video, web), kept separate from background-traffic hosts
	// as in the paper.
	MediaClient, MediaServer *netem.Node
	MediaClientTCP           *tcp.Stack
	MediaServerTCP           *tcp.Stack

	// Background traffic endpoints.
	BGClients, BGServers []*tcp.Stack

	// Bottleneck instrumentation. Exactly one pair is non-nil: the
	// wired links for the paper's DSL bottleneck, or the wifi links
	// when cfg.Link.Wifi selects the 802.11 MAC. Read monitors through
	// UpLinkMonitor/DownLinkMonitor, which hide the distinction.
	UpLink, DownLink *netem.Link
	UpWifi, DownWifi *mac.WifiLink
	UpMon, DownMon   *netem.QueueMonitor

	// Workload generators (nil until StartWorkload).
	UpGen, DownGen *harpoon.Generator

	seed uint64

	// Carcass fields for in-place reuse: the structural pieces a reset
	// reconfigures rather than rebuilds.
	csHome, homeCs       *netem.Link // client LAN hop (ClientDelay varies)
	ssDslam, dslamSs     *netem.Link // server LAN hop (ServerDelay varies)
	lanLinks             []*netem.Link
	jitterUp, jitterDn   *netem.JitterBox
	reorderUp, reorderDn *netem.ReorderBox
	medium               *mac.Medium
	allStacks            []*tcp.Stack
}

// UpLinkMonitor returns the bottleneck uplink's monitor regardless of
// whether the bottleneck is wired or wifi.
func (a *Access) UpLinkMonitor() *netem.LinkMonitor {
	if a.UpWifi != nil {
		return a.UpWifi.Monitor
	}
	return a.UpLink.Monitor
}

// DownLinkMonitor returns the bottleneck downlink's monitor.
func (a *Access) DownLinkMonitor() *netem.LinkMonitor {
	if a.DownWifi != nil {
		return a.DownWifi.Monitor
	}
	return a.DownLink.Monitor
}

// NewAccess builds the Figure 3a access testbed with the given buffer
// configuration — or, when the Scratch already caches a compatible
// carcass, resets that testbed in place, which is behavior-identical
// and roughly an order of magnitude cheaper.
func NewAccess(cfg Config) *Access {
	wifi := cfg.Link.Wifi.Stations > 0
	reorder := cfg.Link.Reorder > 0
	if s := cfg.Scratch; s != nil && s.access != nil &&
		s.accessJitter == (cfg.Jitter > 0) && s.accessWifi == wifi && s.accessReorder == reorder {
		s.access.reuse(cfg)
		return s.access
	}
	a := buildAccess(cfg)
	if s := cfg.Scratch; s != nil {
		s.access = a
		s.accessJitter = cfg.Jitter > 0
		s.accessWifi = wifi
		s.accessReorder = reorder
	}
	return a
}

// wifiParams maps the testbed's link axis onto one direction's MAC
// parameters; the 100 us wired-bottleneck propagation delay carries
// over so wifi and wired cells differ only in the MAC itself.
func wifiParams(lp LinkParams, rate float64) mac.Params {
	return mac.Params{
		PhyRate:      rate,
		Delay:        100 * time.Microsecond,
		Stations:     lp.Wifi.Stations,
		RetryLimit:   lp.Wifi.RetryLimit,
		MaxAggFrames: lp.Wifi.MaxAggFrames,
	}
}

func buildAccess(cfg Config) *Access {
	eng := sim.New()
	nw := netem.NewNetwork(eng)
	lp := cfg.Link.WithDefaults()

	a := &Access{Eng: eng, Net: nw, seed: cfg.Seed}

	// Topology: clients - clientSwitch - homeRouter =bottleneck= dslam
	// - serverSwitch - servers.
	cswitch := nw.NewNode("client-switch")
	home := nw.NewNode("home-router")
	dslam := nw.NewNode("dslam")
	sswitch := nw.NewNode("server-switch")

	if cfg.Scratch != nil {
		cfg.Scratch.UpQueueMon.Reset("uplink")
		cfg.Scratch.DownQueueMon.Reset("downlink")
		a.UpMon = &cfg.Scratch.UpQueueMon
		a.DownMon = &cfg.Scratch.DownQueueMon
	} else {
		a.UpMon = &netem.QueueMonitor{Name: "uplink"}
		a.DownMon = &netem.QueueMonitor{Name: "downlink"}
	}
	upQ := cfg.queue(cfg.UpQueue, cfg.BufferUp, a.UpMon)
	downQ := cfg.queue(cfg.DownQueue, cfg.BufferDown, a.DownMon)

	// Bottleneck pair: the uplink buffer sits in the home router, the
	// downlink buffer in the DSLAM (Section 5.3: the bottleneck
	// interface is "the only location where packet loss occurs").
	// Monitors go on the bottleneck links only (the experiments read
	// nothing else); LAN links stay on the unmonitored fast path. An
	// optional reordering stage sits right behind each bottleneck, and
	// cfg.Link.Wifi swaps the wired pair for 802.11 MAC links sharing
	// one medium.
	var upDst netem.Receiver = dslam
	var downDst netem.Receiver = home
	if lp.Reorder > 0 {
		a.reorderUp = netem.NewReorderBox(eng, sim.NewRNG(cfg.Seed, "reorder-up"), lp.Reorder, dslam)
		a.reorderDn = netem.NewReorderBox(eng, sim.NewRNG(cfg.Seed, "reorder-down"), lp.Reorder, home)
		upDst, downDst = a.reorderUp, a.reorderDn
	}
	var upEgress, downEgress netem.Egress
	if lp.Wifi.Stations > 0 {
		a.medium = mac.NewMedium()
		a.UpWifi = mac.NewWifiLink(eng, "uplink", wifiParams(lp, lp.UpRate),
			sim.NewRNG(cfg.Seed, "mac-up"), upQ, a.medium, upDst)
		a.DownWifi = mac.NewWifiLink(eng, "downlink", wifiParams(lp, lp.DownRate),
			sim.NewRNG(cfg.Seed, "mac-down"), downQ, a.medium, downDst)
		if cfg.Scratch != nil {
			cfg.Scratch.UpLinkMon.Reset()
			cfg.Scratch.DownLinkMon.Reset()
			a.UpWifi.AttachMonitor(&cfg.Scratch.UpLinkMon)
			a.DownWifi.AttachMonitor(&cfg.Scratch.DownLinkMon)
		} else {
			a.UpWifi.EnsureMonitor()
			a.DownWifi.EnsureMonitor()
		}
		upEgress, downEgress = a.UpWifi, a.DownWifi
	} else {
		a.UpLink = netem.NewLink(eng, "uplink", lp.UpRate, 100*time.Microsecond, upQ, upDst)
		a.DownLink = netem.NewLink(eng, "downlink", lp.DownRate, 100*time.Microsecond, downQ, downDst)
		if cfg.Scratch != nil {
			cfg.Scratch.UpLinkMon.Reset()
			cfg.Scratch.DownLinkMon.Reset()
			a.UpLink.AttachMonitor(&cfg.Scratch.UpLinkMon)
			a.DownLink.AttachMonitor(&cfg.Scratch.DownLinkMon)
		} else {
			a.UpLink.EnsureMonitor()
			a.DownLink.EnsureMonitor()
		}
		upEgress, downEgress = a.UpLink, a.DownLink
	}
	home.SetRoute(dslam.ID, upEgress)
	dslam.SetRoute(home.ID, downEgress)

	// Client side: 5 ms between client network and home router; an
	// optional jitter box models a WiFi-like last hop.
	var toHome netem.Receiver = home
	var toCswitch netem.Receiver = cswitch
	if cfg.Jitter > 0 {
		a.jitterUp = netem.NewJitterBox(eng, sim.NewRNG(cfg.Seed, "wifi-up"), 0, cfg.Jitter, home)
		a.jitterDn = netem.NewJitterBox(eng, sim.NewRNG(cfg.Seed, "wifi-down"), 0, cfg.Jitter, cswitch)
		toHome, toCswitch = a.jitterUp, a.jitterDn
	}
	a.csHome = netem.NewLink(eng, "cswitch->home", gigabit, lp.ClientDelay, netem.NewDropTail(lanQueue), toHome)
	a.homeCs = netem.NewLink(eng, "home->cswitch", gigabit, lp.ClientDelay, netem.NewDropTail(lanQueue), toCswitch)
	cswitch.SetDefaultRoute(a.csHome)
	// Server side: 20 ms between DSLAM and server network.
	a.ssDslam = netem.NewLink(eng, "sswitch->dslam", gigabit, lp.ServerDelay, netem.NewDropTail(lanQueue), dslam)
	a.dslamSs = netem.NewLink(eng, "dslam->sswitch", gigabit, lp.ServerDelay, netem.NewDropTail(lanQueue), sswitch)
	sswitch.SetDefaultRoute(a.ssDslam)
	a.lanLinks = append(a.lanLinks, a.csHome, a.homeCs, a.ssDslam, a.dslamSs)

	home.SetDefaultRoute(upEgress)
	dslam.SetDefaultRoute(downEgress)

	ccUp := cfg.CC
	if ccUp == nil {
		ccUp = tcp.NewCubic // paper: BIC/CUBIC on the access hosts
	}
	tcpCfg := cfg.TCP
	tcpCfg.NewCC = ccUp

	addClient := func(name string) (*netem.Node, *tcp.Stack) {
		n := nw.NewNode(name)
		toSwitch, back := nw.Connect(n, cswitch, gigabit, hostDelay, lanQueue)
		n.SetDefaultRoute(toSwitch)
		// Teach the core how to reach this host.
		home.SetRoute(n.ID, a.homeCs)
		a.lanLinks = append(a.lanLinks, toSwitch, back)
		st := tcp.NewStack(n, tcpCfg)
		a.allStacks = append(a.allStacks, st)
		return n, st
	}
	addServer := func(name string) (*netem.Node, *tcp.Stack) {
		n := nw.NewNode(name)
		toSwitch, back := nw.Connect(n, sswitch, gigabit, hostDelay, lanQueue)
		n.SetDefaultRoute(toSwitch)
		dslam.SetRoute(n.ID, a.dslamSs)
		a.lanLinks = append(a.lanLinks, toSwitch, back)
		st := tcp.NewStack(n, tcpCfg)
		a.allStacks = append(a.allStacks, st)
		return n, st
	}

	a.MediaClient, a.MediaClientTCP = addClient("media-client")
	a.MediaServer, a.MediaServerTCP = addServer("media-server")
	for i := 0; i < 2; i++ {
		_, st := addClient(fmt.Sprintf("bg-client-%d", i))
		a.BGClients = append(a.BGClients, st)
		_, st2 := addServer(fmt.Sprintf("bg-server-%d", i))
		a.BGServers = append(a.BGServers, st2)
		// Background flows are fire-and-forget (harpoon never retains
		// a conn past OnClose), so their stacks recycle Conn memory.
		st.SetConnReuse(true)
		st2.SetConnReuse(true)
	}
	return a
}

// reuse resets the cached access testbed in place for the next cell:
// the engine, packet pool, nodes, links, and TCP stacks rewind to
// their never-used state, and the per-cell configuration (bottleneck
// queues and rates, LAN delays, seeds, congestion control) is applied
// exactly where buildAccess would. Only reached with a non-nil
// cfg.Scratch.
func (a *Access) reuse(cfg Config) {
	lp := cfg.Link.WithDefaults()
	a.Eng.Reset()
	a.Net.Reset()
	for _, n := range a.Net.Nodes() {
		n.Reset()
	}
	if a.UpLink != nil {
		a.UpLink.Reset()
		a.DownLink.Reset()
	}
	for _, l := range a.lanLinks {
		l.Reset()
	}
	a.seed = cfg.Seed
	a.UpGen, a.DownGen = nil, nil

	cfg.Scratch.UpQueueMon.Reset("uplink")
	cfg.Scratch.DownQueueMon.Reset("downlink")
	a.UpMon = &cfg.Scratch.UpQueueMon
	a.DownMon = &cfg.Scratch.DownQueueMon
	upQ := cfg.queue(cfg.UpQueue, cfg.BufferUp, a.UpMon)
	downQ := cfg.queue(cfg.DownQueue, cfg.BufferDown, a.DownMon)
	cfg.Scratch.UpLinkMon.Reset()
	cfg.Scratch.DownLinkMon.Reset()
	if a.UpWifi != nil {
		a.medium.Reset()
		a.UpWifi.Reset(wifiParams(lp, lp.UpRate), sim.NewRNG(cfg.Seed, "mac-up"), upQ)
		a.DownWifi.Reset(wifiParams(lp, lp.DownRate), sim.NewRNG(cfg.Seed, "mac-down"), downQ)
		a.UpWifi.AttachMonitor(&cfg.Scratch.UpLinkMon)
		a.DownWifi.AttachMonitor(&cfg.Scratch.DownLinkMon)
	} else {
		a.UpLink.Queue = upQ
		a.DownLink.Queue = downQ
		a.UpLink.Rate, a.DownLink.Rate = lp.UpRate, lp.DownRate
		a.UpLink.AttachMonitor(&cfg.Scratch.UpLinkMon)
		a.DownLink.AttachMonitor(&cfg.Scratch.DownLinkMon)
	}
	if a.reorderUp != nil {
		a.reorderUp.Reset(sim.NewRNG(cfg.Seed, "reorder-up"), lp.Reorder)
		a.reorderDn.Reset(sim.NewRNG(cfg.Seed, "reorder-down"), lp.Reorder)
	}

	a.csHome.Delay, a.homeCs.Delay = lp.ClientDelay, lp.ClientDelay
	a.ssDslam.Delay, a.dslamSs.Delay = lp.ServerDelay, lp.ServerDelay
	if cfg.Jitter > 0 {
		a.jitterUp.Reset(sim.NewRNG(cfg.Seed, "wifi-up"), 0, cfg.Jitter)
		a.jitterDn.Reset(sim.NewRNG(cfg.Seed, "wifi-down"), 0, cfg.Jitter)
	}

	ccUp := cfg.CC
	if ccUp == nil {
		ccUp = tcp.NewCubic
	}
	tcpCfg := cfg.TCP
	tcpCfg.NewCC = ccUp
	for _, st := range a.allStacks {
		st.Reset(tcpCfg)
	}
}

// Direction selects which congestion the access scenario applies
// (the paper's "Only downstream", "Up and downstream", "Only
// upstream" variants).
type Direction int

// Direction values.
const (
	DirDown Direction = iota
	DirUp
	DirBidir
)

func (d Direction) String() string {
	switch d {
	case DirDown:
		return "down"
	case DirUp:
		return "up"
	default:
		return "bidir"
	}
}

// Spec pairs the up and down session populations of one scenario.
// Each direction holds zero or more harpoon populations, started in
// order on one shared generator — the compiled form of a Workload
// (preset or custom mix).
type Spec struct {
	Name     string
	Up, Down []harpoon.Spec // empty = no traffic in that direction
}

// HasTraffic reports whether the spec starts any background traffic.
func (s Spec) HasTraffic() bool { return len(s.Up)+len(s.Down) > 0 }

// MustSpec unwraps a preset lookup whose name is a compile-time
// literal — the test/benchmark companion of the non-panicking
// Lookup* variants. Validated paths must use the Lookup* errors.
func MustSpec(s Spec, err error) Spec {
	if err != nil {
		panic(err)
	}
	return s
}

// AccessScenarioNames lists the access workloads of Table 1.
var AccessScenarioNames = []string{"noBG", "long-few", "long-many", "short-few", "short-many"}

// LookupAccessScenario returns the Table 1 session populations for a
// named access workload restricted to a direction, or an error for an
// unknown name or out-of-range direction. Parallelism and think times
// are the calibration documented in the package comment of harpoon.
func LookupAccessScenario(name string, dir Direction) (Spec, error) {
	switch dir {
	case DirDown, DirUp, DirBidir:
	default:
		return Spec{}, fmt.Errorf("unknown direction %d (want DirDown, DirUp, DirBidir)", dir)
	}
	w, err := AccessWorkload(name)
	if err != nil {
		return Spec{}, err
	}
	return tableSpec(name, w.Mask(dir)), nil
}

// tableSpec compiles a preset workload verbatim — table form, not the
// canonical loops form — so preset populations are byte-identical to
// the paper's Table 1 rows (custom mixes compile via Workload.Spec
// instead; the two forms provably start identical loop populations,
// covered by the facade's preset-vs-mix bit-identity test).
func tableSpec(name string, w Workload) Spec {
	out := Spec{Name: name}
	for _, c := range w.Up {
		out.Up = append(out.Up, c.spec())
	}
	for _, c := range w.Down {
		out.Down = append(out.Down, c.spec())
	}
	return out
}

// StartWorkload launches the background traffic of a scenario and
// begins sampling bottleneck utilization and flow concurrency. The
// populations of a direction start in spec order on one generator, so
// the realization is a pure function of the (canonicalized) spec.
func (a *Access) StartWorkload(s Spec) {
	if len(s.Down) > 0 {
		for _, st := range a.BGClients {
			harpoon.RegisterSink(st, harpoon.SinkPort)
		}
		sinks := sinkAddrs(a.BGClients)
		a.DownGen = harpoon.NewGenerator(a.Eng, sim.NewRNG(a.seed, "harpoon-down"), a.BGServers, sinks)
		for _, sp := range s.Down {
			a.DownGen.Start(sp)
		}
		a.DownGen.StartConcurrencySampling(time.Second)
	}
	if len(s.Up) > 0 {
		for _, st := range a.BGServers {
			harpoon.RegisterSink(st, harpoon.SinkPort+1)
		}
		sinks := make([]netem.Addr, 0, len(a.BGServers))
		for _, st := range a.BGServers {
			sinks = append(sinks, st.Node().Addr(harpoon.SinkPort+1))
		}
		a.UpGen = harpoon.NewGenerator(a.Eng, sim.NewRNG(a.seed, "harpoon-up"), a.BGClients, sinks)
		for _, sp := range s.Up {
			a.UpGen.Start(sp)
		}
		a.UpGen.StartConcurrencySampling(time.Second)
	}
	a.UpLinkMonitor().StartSampling(a.Eng, time.Second)
	a.DownLinkMonitor().StartSampling(a.Eng, time.Second)
}

func sinkAddrs(stacks []*tcp.Stack) []netem.Addr {
	out := make([]netem.Addr, 0, len(stacks))
	for _, st := range stacks {
		out = append(out, st.Node().Addr(harpoon.SinkPort))
	}
	return out
}

// Backbone is the assembled Figure 3b backbone testbed.
type Backbone struct {
	Eng *sim.Engine
	Net *netem.Network

	MediaClient, MediaServer *netem.Node
	MediaClientTCP           *tcp.Stack
	MediaServerTCP           *tcp.Stack

	BGClients, BGServers []*tcp.Stack

	// Bottleneck server->client (the congested direction).
	DownLink *netem.Link
	DownMon  *netem.QueueMonitor

	Gen *harpoon.Generator

	seed uint64

	// Carcass fields for in-place reuse.
	upLink    *netem.Link
	lanLinks  []*netem.Link
	allStacks []*tcp.Stack
}

// NewBackbone builds the Figure 3b backbone testbed: four client and
// four server hosts, Cisco-class switches, two routers joined by an
// OC3 bottleneck with a 30 ms one-way delay box. When the Scratch
// already caches a backbone carcass, it is reset in place instead —
// behavior-identical and far cheaper.
func NewBackbone(cfg Config) *Backbone {
	if s := cfg.Scratch; s != nil && s.backbone != nil {
		s.backbone.reuse(cfg)
		return s.backbone
	}
	b := buildBackbone(cfg)
	if s := cfg.Scratch; s != nil {
		s.backbone = b
	}
	return b
}

func buildBackbone(cfg Config) *Backbone {
	eng := sim.New()
	nw := netem.NewNetwork(eng)
	b := &Backbone{Eng: eng, Net: nw, seed: cfg.Seed}

	cswitch := nw.NewNode("client-switch")
	rc := nw.NewNode("router-client")
	rs := nw.NewNode("router-server")
	sswitch := nw.NewNode("server-switch")

	if cfg.Scratch != nil {
		cfg.Scratch.DownQueueMon.Reset("oc3-down")
		b.DownMon = &cfg.Scratch.DownQueueMon
	} else {
		b.DownMon = &netem.QueueMonitor{Name: "oc3-down"}
	}
	downQ := cfg.queue(cfg.DownQueue, cfg.BufferDown, b.DownMon)
	upQ := cfg.queue(cfg.UpQueue, nonzero(cfg.BufferUp, cfg.BufferDown), nil)

	// OC3 with the NetPath delay box folded into propagation.
	b.DownLink = netem.NewLink(eng, "oc3-sc", BackboneRate, BackboneDelay, downQ, rc)
	b.upLink = netem.NewLink(eng, "oc3-cs", BackboneRate, BackboneDelay, upQ, rs)
	if cfg.Scratch != nil {
		cfg.Scratch.DownLinkMon.Reset()
		b.DownLink.AttachMonitor(&cfg.Scratch.DownLinkMon)
	} else {
		b.DownLink.EnsureMonitor()
	}
	rs.SetDefaultRoute(b.DownLink)
	rc.SetDefaultRoute(b.upLink)

	csRc := netem.NewLink(eng, "cswitch->rc", gigabit, 100*time.Microsecond, netem.NewDropTail(lanQueue), rc)
	rcCs := netem.NewLink(eng, "rc->cswitch", gigabit, 100*time.Microsecond, netem.NewDropTail(lanQueue), cswitch)
	ssRs := netem.NewLink(eng, "sswitch->rs", gigabit, 100*time.Microsecond, netem.NewDropTail(lanQueue), rs)
	rsSs := netem.NewLink(eng, "rs->sswitch", gigabit, 100*time.Microsecond, netem.NewDropTail(lanQueue), sswitch)
	cswitch.SetDefaultRoute(csRc)
	sswitch.SetDefaultRoute(ssRs)
	b.lanLinks = append(b.lanLinks, csRc, rcCs, ssRs, rsSs)

	cc := cfg.CC
	if cc == nil {
		cc = tcp.NewReno // paper: TCP-Reno on the backbone hosts
	}
	tcpCfg := cfg.TCP
	tcpCfg.NewCC = cc

	addHost := func(name string, sw *netem.Node, router *netem.Node, routerToSw *netem.Link) (*netem.Node, *tcp.Stack) {
		n := nw.NewNode(name)
		toSwitch, back := nw.Connect(n, sw, gigabit, hostDelay, lanQueue)
		n.SetDefaultRoute(toSwitch)
		router.SetRoute(n.ID, routerToSw)
		b.lanLinks = append(b.lanLinks, toSwitch, back)
		st := tcp.NewStack(n, tcpCfg)
		b.allStacks = append(b.allStacks, st)
		return n, st
	}

	b.MediaClient, b.MediaClientTCP = addHost("media-client", cswitch, rc, rcCs)
	b.MediaServer, b.MediaServerTCP = addHost("media-server", sswitch, rs, rsSs)
	for i := 0; i < 4; i++ {
		_, st := addHost(fmt.Sprintf("bg-client-%d", i), cswitch, rc, rcCs)
		b.BGClients = append(b.BGClients, st)
		_, st2 := addHost(fmt.Sprintf("bg-server-%d", i), sswitch, rs, rsSs)
		b.BGServers = append(b.BGServers, st2)
		// As on the access side: harpoon never retains a conn past
		// OnClose, so background stacks recycle Conn memory.
		st.SetConnReuse(true)
		st2.SetConnReuse(true)
	}
	return b
}

// reuse resets the cached backbone testbed in place for the next
// cell; see Access.reuse. The OC3 rates and delays are constants, so
// only queues, monitors, seeds and TCP configuration vary.
func (b *Backbone) reuse(cfg Config) {
	b.Eng.Reset()
	b.Net.Reset()
	for _, n := range b.Net.Nodes() {
		n.Reset()
	}
	b.DownLink.Reset()
	b.upLink.Reset()
	for _, l := range b.lanLinks {
		l.Reset()
	}
	b.seed = cfg.Seed
	b.Gen = nil

	cfg.Scratch.DownQueueMon.Reset("oc3-down")
	b.DownMon = &cfg.Scratch.DownQueueMon
	b.DownLink.Queue = cfg.queue(cfg.DownQueue, cfg.BufferDown, b.DownMon)
	b.upLink.Queue = cfg.queue(cfg.UpQueue, nonzero(cfg.BufferUp, cfg.BufferDown), nil)
	cfg.Scratch.DownLinkMon.Reset()
	b.DownLink.AttachMonitor(&cfg.Scratch.DownLinkMon)

	cc := cfg.CC
	if cc == nil {
		cc = tcp.NewReno
	}
	tcpCfg := cfg.TCP
	tcpCfg.NewCC = cc
	for _, st := range b.allStacks {
		st.Reset(tcpCfg)
	}
}

func nonzero(a, b int) int {
	if a != 0 {
		return a
	}
	return b
}

// BackboneScenarioNames lists the backbone workloads of Table 1.
var BackboneScenarioNames = []string{"noBG", "short-low", "short-medium", "short-high", "short-overload", "long"}

// LookupBackboneScenario returns the Table 1 backbone session
// population (downstream only, as in the paper), or an error for an
// unknown name.
func LookupBackboneScenario(name string) (Spec, error) {
	w, err := BackboneWorkload(name)
	if err != nil {
		return Spec{}, err
	}
	return tableSpec(name, w), nil
}

// StartWorkload launches the backbone background traffic.
func (b *Backbone) StartWorkload(s Spec) {
	if len(s.Down) > 0 {
		for _, st := range b.BGClients {
			harpoon.RegisterSink(st, harpoon.SinkPort)
		}
		b.Gen = harpoon.NewGenerator(b.Eng, sim.NewRNG(b.seed, "harpoon-bb"), b.BGServers, sinkAddrs(b.BGClients))
		for _, sp := range s.Down {
			b.Gen.Start(sp)
		}
		b.Gen.StartConcurrencySampling(time.Second)
	}
	b.DownLink.Monitor.StartSampling(b.Eng, time.Second)
}
