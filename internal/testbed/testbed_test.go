package testbed

import (
	"testing"
	"time"

	"bufferqoe/internal/harpoon"
	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
	"bufferqoe/internal/tcp"
)

func TestAccessBaseRTT(t *testing.T) {
	// Base path RTT (no congestion) should be ~50 ms: 2*(5+20+0.1+2*0.05)
	// plus serialization.
	a := NewAccess(Config{BufferUp: 8, BufferDown: 64, Seed: 1})
	a.MediaServerTCP.Listen(80, func(c *tcp.Conn) {
		c.OnEstablished = func() { c.Send(1000); c.CloseWrite() }
		c.OnPeerClose = func(*tcp.Conn) { c.CloseWrite() }
	})
	cc := a.MediaClientTCP.Dial(a.MediaServer.Addr(80))
	cc.OnPeerClose = func(*tcp.Conn) { cc.CloseWrite() }
	a.Eng.RunUntil(sim.Time(5 * time.Second))
	rtt := cc.SRTT()
	if rtt < 45*time.Millisecond || rtt > 90*time.Millisecond {
		t.Fatalf("base RTT = %v, want ~50-60ms", rtt)
	}
}

func TestBackboneBaseRTT(t *testing.T) {
	b := NewBackbone(Config{BufferDown: 749, Seed: 1})
	b.MediaServerTCP.Listen(80, func(c *tcp.Conn) {
		c.OnEstablished = func() { c.Send(1000); c.CloseWrite() }
		c.OnPeerClose = func(*tcp.Conn) { c.CloseWrite() }
	})
	cc := b.MediaClientTCP.Dial(b.MediaServer.Addr(80))
	cc.OnPeerClose = func(*tcp.Conn) { cc.CloseWrite() }
	b.Eng.RunUntil(sim.Time(5 * time.Second))
	rtt := cc.SRTT()
	if rtt < 58*time.Millisecond || rtt > 90*time.Millisecond {
		t.Fatalf("backbone RTT = %v, want ~60ms", rtt)
	}
}

func sessions(specs []harpoon.Spec) int {
	n := 0
	for _, s := range specs {
		n += s.Sessions
	}
	return n
}

func TestAccessScenarioDefinitions(t *testing.T) {
	for _, name := range AccessScenarioNames {
		for _, dir := range []Direction{DirUp, DirDown, DirBidir} {
			s := MustSpec(LookupAccessScenario(name, dir))
			if s.Name != name {
				t.Fatalf("scenario name %q != %q", s.Name, name)
			}
			if name == "noBG" && s.HasTraffic() {
				t.Fatal("noBG has sessions")
			}
			if dir == DirUp && len(s.Down) != 0 {
				t.Fatalf("%s up-only has down sessions", name)
			}
			if dir == DirDown && len(s.Up) != 0 {
				t.Fatalf("%s down-only has up sessions", name)
			}
		}
	}
	// Table 1: long-many is 8 up / 64 down infinite flows.
	s := MustSpec(LookupAccessScenario("long-many", DirBidir))
	if sessions(s.Up) != 8 || sessions(s.Down) != 64 || !s.Up[0].Infinite {
		t.Fatalf("long-many = %+v", s)
	}
}

func TestBackboneScenarioDefinitions(t *testing.T) {
	for _, name := range BackboneScenarioNames {
		s := MustSpec(LookupBackboneScenario(name))
		if len(s.Up) != 0 {
			t.Fatalf("%s: backbone must be downstream-only", name)
		}
	}
	if sessions(MustSpec(LookupBackboneScenario("short-overload")).Down) != 768 {
		t.Fatal("short-overload sessions != 3*256")
	}
	if !MustSpec(LookupBackboneScenario("long")).Down[0].Infinite {
		t.Fatal("long not infinite")
	}
}

func TestAccessLongDownSaturatesDownlink(t *testing.T) {
	// Table 1: long downstream scenarios reach ~100% downlink
	// utilization at BDP buffers.
	a := NewAccess(Config{BufferUp: 8, BufferDown: 64, Seed: 2})
	a.StartWorkload(MustSpec(LookupAccessScenario("long-few", DirDown)))
	a.Eng.RunUntil(sim.Time(30 * time.Second))
	util := a.DownLink.Monitor.MeanUtilization(a.Eng.Now())
	if util < 90 {
		t.Fatalf("downlink utilization = %.1f%%, want >90%%", util)
	}
	// The uplink carries only ACKs: nonzero but far from saturated.
	upUtil := a.UpLink.Monitor.MeanUtilization(a.Eng.Now())
	if upUtil <= 0.5 || upUtil > 50 {
		t.Fatalf("uplink (ACK) utilization = %.1f%%, want (0.5, 50)", upUtil)
	}
}

func TestAccessUpWorkloadSaturatesUplink(t *testing.T) {
	// Table 1: upstream scenarios saturate the 1 Mbit/s uplink with
	// substantial loss.
	a := NewAccess(Config{BufferUp: 8, BufferDown: 64, Seed: 3})
	a.StartWorkload(MustSpec(LookupAccessScenario("short-few", DirUp)))
	a.Eng.RunUntil(sim.Time(30 * time.Second))
	util := a.UpLink.Monitor.MeanUtilization(a.Eng.Now())
	if util < 85 {
		t.Fatalf("uplink utilization = %.1f%%, want >85%%", util)
	}
	if a.UpMon.LossRate() == 0 {
		t.Fatal("saturated uplink shows no loss")
	}
}

func TestAccessShortFewDownModerate(t *testing.T) {
	// Table 1: short-few downstream yields moderate (~40-60%)
	// downlink utilization — the key "moderate load" regime.
	a := NewAccess(Config{BufferUp: 8, BufferDown: 64, Seed: 4})
	a.StartWorkload(MustSpec(LookupAccessScenario("short-few", DirDown)))
	a.Eng.RunUntil(sim.Time(60 * time.Second))
	util := a.DownLink.Monitor.MeanUtilization(a.Eng.Now())
	if util < 20 || util > 75 {
		t.Fatalf("short-few downlink utilization = %.1f%%, want moderate (20-75)", util)
	}
	// short-many must load the link more than short-few.
	a2 := NewAccess(Config{BufferUp: 8, BufferDown: 64, Seed: 4})
	a2.StartWorkload(MustSpec(LookupAccessScenario("short-many", DirDown)))
	a2.Eng.RunUntil(sim.Time(60 * time.Second))
	util2 := a2.DownLink.Monitor.MeanUtilization(a2.Eng.Now())
	if util2 <= util {
		t.Fatalf("short-many (%.1f%%) <= short-few (%.1f%%)", util2, util)
	}
}

func TestBufferbloatDelaysGrowWithBufferSize(t *testing.T) {
	// Figure 4c: mean uplink queueing delay grows to seconds with
	// 256-packet buffers under upstream workload.
	delays := map[int]float64{}
	for _, buf := range []int{8, 256} {
		a := NewAccess(Config{BufferUp: buf, BufferDown: buf, Seed: 5})
		a.StartWorkload(MustSpec(LookupAccessScenario("long-many", DirUp)))
		a.Eng.RunUntil(sim.Time(30 * time.Second))
		delays[buf] = a.UpMon.MeanDelayMs()
	}
	if delays[8] > 150 {
		t.Fatalf("8-pkt buffer mean delay = %.0f ms, want <150", delays[8])
	}
	if delays[256] < 1200 {
		t.Fatalf("256-pkt buffer mean delay = %.0f ms, want >1200 (bufferbloat)", delays[256])
	}
}

func TestBackboneUtilizationLadder(t *testing.T) {
	// Table 1 backbone: low ~16%, medium ~50%, high ~98%.
	utils := map[string]float64{}
	for _, name := range []string{"short-low", "short-medium", "short-high"} {
		b := NewBackbone(Config{BufferDown: 749, Seed: 6})
		b.StartWorkload(MustSpec(LookupBackboneScenario(name)))
		b.Eng.RunUntil(sim.Time(30 * time.Second))
		utils[name] = b.DownLink.Monitor.MeanUtilization(b.Eng.Now())
	}
	if !(utils["short-low"] < utils["short-medium"] && utils["short-medium"] < utils["short-high"]) {
		t.Fatalf("utilization not monotone: %+v", utils)
	}
	if utils["short-low"] > 40 {
		t.Fatalf("short-low = %.1f%%, want <40%%", utils["short-low"])
	}
	if utils["short-high"] < 80 {
		t.Fatalf("short-high = %.1f%%, want >80%%", utils["short-high"])
	}
}

func TestBackboneOverloadLoss(t *testing.T) {
	b := NewBackbone(Config{BufferDown: 749, Seed: 7})
	b.StartWorkload(MustSpec(LookupBackboneScenario("short-overload")))
	b.Eng.RunUntil(sim.Time(20 * time.Second))
	util := b.DownLink.Monitor.MeanUtilization(b.Eng.Now())
	if util < 90 {
		t.Fatalf("overload utilization = %.1f%%, want >90%%", util)
	}
	if b.DownMon.LossRate() == 0 {
		t.Fatal("overload shows no loss")
	}
}

func TestHarpoonSinkAndCompletion(t *testing.T) {
	a := NewAccess(Config{BufferUp: 64, BufferDown: 64, Seed: 8})
	a.StartWorkload(MustSpec(LookupAccessScenario("short-few", DirDown)))
	a.Eng.RunUntil(sim.Time(30 * time.Second))
	st := a.DownGen.Stats()
	if st.Completed == 0 {
		t.Fatal("no harpoon transfers completed")
	}
	if st.BytesMoved == 0 {
		t.Fatal("no bytes moved")
	}
	if st.Concurrent.N() == 0 {
		t.Fatal("no concurrency samples")
	}
}

func TestFileSizeWeibullPositive(t *testing.T) {
	rng := sim.NewRNG(9, "w")
	for i := 0; i < 10000; i++ {
		if harpoon.FileSizeWeibull(rng) < 1 {
			t.Fatal("non-positive file size")
		}
	}
}

func TestAQMQueueFactoryOverride(t *testing.T) {
	called := false
	cfg := Config{
		BufferUp:   64,
		BufferDown: 64,
		Seed:       10,
		UpQueue: func(capPkts int) netem.Queue {
			called = true
			return netem.NewDropTail(capPkts)
		},
	}
	NewAccess(cfg)
	if !called {
		t.Fatal("queue factory not used")
	}
}

func TestDataPendulum(t *testing.T) {
	// Section 6: with bidirectional long workloads and a bloated
	// uplink buffer, the uplink queueing delay virtually increases the
	// BDP and the downlink utilization drops below its downstream-only
	// value.
	mkUtil := func(dir Direction) float64 {
		a := NewAccess(Config{BufferUp: 256, BufferDown: 8, Seed: 11})
		a.StartWorkload(MustSpec(LookupAccessScenario("long-few", dir)))
		a.Eng.RunUntil(sim.Time(40 * time.Second))
		return a.DownLink.Monitor.MeanUtilization(a.Eng.Now())
	}
	downOnly := mkUtil(DirDown)
	bidir := mkUtil(DirBidir)
	if bidir >= downOnly {
		t.Fatalf("bidirectional downlink util %.1f%% >= down-only %.1f%% (no data pendulum)",
			bidir, downOnly)
	}
}

func TestLinkParamsDefaults(t *testing.T) {
	lp := LinkParams{}.WithDefaults()
	if lp.UpRate != AccessUpRate || lp.DownRate != AccessDownRate ||
		lp.ClientDelay != AccessClientDelay || lp.ServerDelay != AccessServerDelay {
		t.Fatalf("defaults = %+v", lp)
	}
	if !(LinkParams{}).IsDefault() {
		t.Fatal("zero params not default")
	}
	if !(LinkParams{UpRate: AccessUpRate}).IsDefault() {
		t.Fatal("explicit paper uplink rate not default")
	}
	if (LinkParams{UpRate: 2e6}).IsDefault() {
		t.Fatal("custom uplink rate claimed default")
	}
}

func TestNewAccessCustomLink(t *testing.T) {
	lp := LinkParams{UpRate: 1e9, DownRate: 1e9, ClientDelay: 2 * time.Millisecond, ServerDelay: 10 * time.Millisecond}
	a := NewAccess(Config{BufferUp: 64, BufferDown: 64, Seed: 3, Link: lp})
	if a.UpLink.Rate != 1e9 || a.DownLink.Rate != 1e9 {
		t.Fatalf("bottleneck rates = %v/%v, want 1e9", a.UpLink.Rate, a.DownLink.Rate)
	}
	// Zero fields keep the paper values.
	b := NewAccess(Config{BufferUp: 64, BufferDown: 64, Seed: 3, Link: LinkParams{DownRate: 50e6}})
	if b.UpLink.Rate != AccessUpRate || b.DownLink.Rate != 50e6 {
		t.Fatalf("partial override = %v/%v", b.UpLink.Rate, b.DownLink.Rate)
	}
}

func TestScenarioLookupErrors(t *testing.T) {
	if _, err := LookupAccessScenario("nope", DirDown); err == nil {
		t.Fatal("unknown access scenario accepted")
	}
	if _, err := LookupBackboneScenario("nope"); err == nil {
		t.Fatal("unknown backbone scenario accepted")
	}
	if s, err := LookupAccessScenario("long-few", DirUp); err != nil || sessions(s.Up) == 0 {
		t.Fatalf("long-few up: %+v, %v", s, err)
	}
	if _, err := LookupAccessScenario("long-few", Direction(99)); err == nil {
		t.Fatal("out-of-range direction accepted")
	}
}
