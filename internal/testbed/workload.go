package testbed

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"bufferqoe/internal/harpoon"
)

// Component is one typed traffic population of a workload direction:
// either long-lived bulk flows (Infinite) or a harpoon-style web
// session population (Sessions closed loops issuing Weibull-sized
// transfers with exponential think times). The Table 1 presets and
// arbitrary custom mixes are both built from Components, so "between
// and beyond the presets" is the same type as the presets themselves.
type Component struct {
	// Sessions is the number of user sessions (Table 1 "# Sessions").
	Sessions int
	// Parallel is the number of independent request loops per session;
	// 0 means 1. A session's loops are indistinguishable from extra
	// sessions (harpoon loops share nothing), which is why
	// canonicalization folds Sessions x Parallel into a loop count.
	Parallel int
	// Think is the mean exponential gap between a transfer completing
	// and the loop's next request. Ignored for Infinite components.
	Think time.Duration
	// Infinite marks long-lived bulk flows (iperf-style) instead of
	// closed request loops.
	Infinite bool
}

// loops is the number of independent request loops the component
// expands to (harpoon.Spec.Loops).
func (c Component) loops() int {
	p := c.Parallel
	if p < 1 {
		p = 1
	}
	return c.Sessions * p
}

// spec converts the component verbatim into its harpoon population.
func (c Component) spec() harpoon.Spec {
	return harpoon.Spec{Sessions: c.Sessions, Parallel: c.Parallel, Think: c.Think, Infinite: c.Infinite}
}

// Workload is a composable background-traffic mix: typed components
// per direction plus a scale multiplier applied to every session
// count. The Table 1 presets are Workload values (AccessWorkload /
// BackboneWorkload); custom mixes are the same type, so both flow
// through one compile step (Spec), one canonical cache encoding
// (Encode), and one CRN seed derivation.
type Workload struct {
	// Up / Down are the traffic components per congestion direction.
	Up, Down []Component
	// Scale multiplies the session count of every component; 0 and 1
	// both mean unscaled.
	Scale int
}

// MaxWorkloadLoops bounds the total request loops a workload may
// expand to, as a guard against runaway mixes (the paper's largest
// population, backbone short-overload, is 2304 loops).
const MaxWorkloadLoops = 1 << 20

// Validate reports whether the workload can be compiled: no negative
// knobs, and a bounded total population. Every multiplication is
// guarded against the cap before it happens, so oversized session
// counts are rejected rather than overflowing into a silently
// wrong (or empty) population.
func (w Workload) Validate() error {
	if w.Scale < 0 {
		return fmt.Errorf("workload scale must be non-negative, got %d", w.Scale)
	}
	total := 0
	for side, comps := range map[string][]Component{"up": w.Up, "down": w.Down} {
		for i, c := range comps {
			switch {
			case c.Sessions < 0:
				return fmt.Errorf("%s component %d: sessions must be non-negative, got %d", side, i, c.Sessions)
			case c.Parallel < 0:
				return fmt.Errorf("%s component %d: parallel must be non-negative, got %d", side, i, c.Parallel)
			case c.Think < 0:
				return fmt.Errorf("%s component %d: think time must be non-negative, got %v", side, i, c.Think)
			}
			p := c.Parallel
			if p < 1 {
				p = 1
			}
			// Factors capped first, so Sessions*p (<= cap^2) cannot
			// overflow; then the product and the running total.
			if c.Sessions > MaxWorkloadLoops || p > MaxWorkloadLoops || c.Sessions*p > MaxWorkloadLoops {
				return fmt.Errorf("%s component %d: %d sessions x %d loops exceeds the %d-loop cap", side, i, c.Sessions, p, MaxWorkloadLoops)
			}
			total += c.Sessions * p
			if total > MaxWorkloadLoops {
				return fmt.Errorf("workload expands to %d loops, above the %d cap", total, MaxWorkloadLoops)
			}
		}
	}
	scale := w.Scale
	if scale < 1 {
		scale = 1
	}
	// total*scale > cap, without computing the overflowable product.
	if total > 0 && scale > MaxWorkloadLoops/total {
		return fmt.Errorf("workload expands to more than %d loops after scaling %d loops by %d", MaxWorkloadLoops, total, scale)
	}
	return nil
}

// canonComponents normalizes one direction's components: session
// parallelism folds into a loop count, the scale multiplier applies,
// think times of bulk flows are dropped (unused), equal-shaped
// components merge by summing loops, empty components vanish, and the
// result is sorted (bulk flows first, then web populations by think
// time). Two mixes describing the same traffic — in any component
// order, any Sessions x Parallel split, any scale spelling — thus
// normalize to the same component list, which is both the cache
// encoding and the order the simulator starts them in.
func canonComponents(comps []Component, scale int) []Component {
	type key struct {
		infinite bool
		think    time.Duration
	}
	loops := map[key]int{}
	for _, c := range comps {
		n := c.loops() * scale
		if n <= 0 {
			continue
		}
		k := key{infinite: c.Infinite, think: c.Think}
		if c.Infinite {
			k.think = 0
		}
		loops[k] += n
	}
	out := make([]Component, 0, len(loops))
	for k, n := range loops {
		out = append(out, Component{Sessions: n, Parallel: 1, Think: k.think, Infinite: k.infinite})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Infinite != out[j].Infinite {
			return out[i].Infinite
		}
		return out[i].Think < out[j].Think
	})
	if len(out) == 0 {
		return nil
	}
	return out
}

// Canonical returns the workload's normal form; see canonComponents.
// Canonical workloads compare equal exactly when they describe the
// same traffic, and the simulator always runs the canonical form, so
// the encoding never diverges from the realization.
func (w Workload) Canonical() Workload {
	scale := w.Scale
	if scale < 1 {
		scale = 1
	}
	return Workload{Up: canonComponents(w.Up, scale), Down: canonComponents(w.Down, scale)}
}

// IsEmpty reports whether the workload generates no traffic (the noBG
// scenario).
func (w Workload) IsEmpty() bool {
	c := w.Canonical()
	return len(c.Up) == 0 && len(c.Down) == 0
}

// Equal reports canonical equality: w and o describe the same traffic.
func (w Workload) Equal(o Workload) bool {
	a, b := w.Canonical(), o.Canonical()
	return componentsEqual(a.Up, b.Up) && componentsEqual(a.Down, b.Down)
}

func componentsEqual(a, b []Component) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Mask restricts the workload to a congestion direction, the way the
// paper's Table 1 scenarios are applied ("Only downstream", "Up and
// downstream", "Only upstream").
func (w Workload) Mask(dir Direction) Workload {
	out := Workload{Scale: w.Scale}
	if dir == DirUp || dir == DirBidir {
		out.Up = w.Up
	}
	if dir == DirDown || dir == DirBidir {
		out.Down = w.Down
	}
	return out
}

// Encode renders the canonical form as the cache/seed encoding the
// cell engine sees, e.g. "up:long=8;down:long=48,web=24/1.5s". The
// rendering is injective over canonical workloads — distinct mixes
// never collide — and the empty workload encodes as "noBG". Preset
// detection is separate (MatchAccessPreset / MatchBackbonePreset):
// builders must map preset-equal mixes to the preset's name so both
// spellings share one cache cell.
//
//qoe:encodes Workload Component
func (w Workload) Encode() string {
	c := w.Canonical()
	var parts []string
	if s := encodeSide(c.Up); s != "" {
		parts = append(parts, "up:"+s)
	}
	if s := encodeSide(c.Down); s != "" {
		parts = append(parts, "down:"+s)
	}
	if len(parts) == 0 {
		return "noBG"
	}
	return strings.Join(parts, ";")
}

func encodeSide(comps []Component) string {
	var out []string
	for _, c := range comps {
		if c.Infinite {
			out = append(out, fmt.Sprintf("long=%d", c.Sessions))
		} else {
			out = append(out, fmt.Sprintf("web=%d/%s", c.Sessions, c.Think))
		}
	}
	return strings.Join(out, ",")
}

// Describe renders a human-readable component breakdown, e.g.
// "up: 8 long-lived flows; down: 64 web loops (think 1.5s)".
func (w Workload) Describe() string {
	c := w.Canonical()
	var parts []string
	if s := describeSide(c.Up); s != "" {
		parts = append(parts, "up: "+s)
	}
	if s := describeSide(c.Down); s != "" {
		parts = append(parts, "down: "+s)
	}
	if len(parts) == 0 {
		return "idle (no background traffic)"
	}
	return strings.Join(parts, "; ")
}

func describeSide(comps []Component) string {
	var out []string
	for _, c := range comps {
		if c.Infinite {
			out = append(out, fmt.Sprintf("%d long-lived flow(s)", c.Sessions))
		} else {
			out = append(out, fmt.Sprintf("%d web loop(s), think %s", c.Sessions, c.Think))
		}
	}
	return strings.Join(out, " + ")
}

// Spec compiles the workload into the session populations the
// testbeds start: the canonical components, in canonical order, one
// harpoon population each. The realization is therefore a pure
// function of the canonical form, never of how the mix was spelled.
func (w Workload) Spec(name string) Spec {
	c := w.Canonical()
	out := Spec{Name: name}
	for _, comp := range c.Up {
		out.Up = append(out.Up, comp.spec())
	}
	for _, comp := range c.Down {
		out.Down = append(out.Down, comp.spec())
	}
	return out
}

// accessWorkloads is the single source of the Table 1 access presets:
// full (unmasked) up and down populations, in the paper's table form.
// Parallelism and think times are the calibration documented in the
// harpoon package comment.
var accessWorkloads = map[string]Workload{
	"noBG": {},
	"short-few": {
		Up:   []Component{{Sessions: 1, Parallel: 8, Think: 200 * time.Millisecond}},
		Down: []Component{{Sessions: 8, Parallel: 3, Think: 1500 * time.Millisecond}},
	},
	"short-many": {
		Up:   []Component{{Sessions: 1, Parallel: 8, Think: 200 * time.Millisecond}},
		Down: []Component{{Sessions: 16, Parallel: 3, Think: 1500 * time.Millisecond}},
	},
	"long-few": {
		Up:   []Component{{Sessions: 1, Infinite: true}},
		Down: []Component{{Sessions: 8, Infinite: true}},
	},
	"long-many": {
		Up:   []Component{{Sessions: 8, Infinite: true}},
		Down: []Component{{Sessions: 64, Infinite: true}},
	},
}

// backboneWorkloads is the single source of the Table 1 backbone
// presets (downstream only, as in the paper).
var backboneWorkloads = map[string]Workload{
	"noBG":           {},
	"short-low":      {Down: []Component{{Sessions: 30, Parallel: 3, Think: 1200 * time.Millisecond}}},
	"short-medium":   {Down: []Component{{Sessions: 90, Parallel: 3, Think: 1200 * time.Millisecond}}},
	"short-high":     {Down: []Component{{Sessions: 180, Parallel: 3, Think: 1200 * time.Millisecond}}},
	"short-overload": {Down: []Component{{Sessions: 768, Parallel: 3, Think: 1200 * time.Millisecond}}},
	"long":           {Down: []Component{{Sessions: 768, Infinite: true}}},
}

// AccessWorkload returns the full (unmasked) Table 1 access workload
// for a preset name.
func AccessWorkload(name string) (Workload, error) {
	w, ok := accessWorkloads[name]
	if !ok {
		return Workload{}, fmt.Errorf("unknown access scenario %q (have %v)", name, AccessScenarioNames)
	}
	return w, nil
}

// BackboneWorkload returns the Table 1 backbone workload for a preset
// name.
func BackboneWorkload(name string) (Workload, error) {
	w, ok := backboneWorkloads[name]
	if !ok {
		return Workload{}, fmt.Errorf("unknown backbone scenario %q (have %v)", name, BackboneScenarioNames)
	}
	return w, nil
}

// matchDirections is the deterministic probe order for preset
// matching; noBG masks equal under every direction, and DirDown first
// makes the fold land on the canonical idle cell.
var matchDirections = []Direction{DirDown, DirUp, DirBidir}

// MatchAccessPreset reports whether the workload is one of the
// Table 1 access presets under some congestion direction. Builders
// fold matching mixes onto the preset's (name, direction) cell so a
// custom spelling of a paper scenario answers from — and warms — the
// same cache entry as the preset, with the same CRN-paired seed.
func MatchAccessPreset(w Workload) (name string, dir Direction, ok bool) {
	for _, n := range AccessScenarioNames {
		full := accessWorkloads[n]
		for _, d := range matchDirections {
			if full.Mask(d).Equal(w) {
				return n, d, true
			}
		}
	}
	return "", 0, false
}

// MatchBackbonePreset is MatchAccessPreset for the backbone's
// direction-less preset table.
func MatchBackbonePreset(w Workload) (name string, ok bool) {
	for _, n := range BackboneScenarioNames {
		if backboneWorkloads[n].Equal(w) {
			return n, true
		}
	}
	return "", false
}
