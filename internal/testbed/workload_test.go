package testbed

import (
	"math/rand"
	"testing"
	"time"
)

// randWorkload draws a random workload: up to 3 components per side
// from a small palette of think times, random session/parallel
// splits, and an occasional scale.
func randWorkload(r *rand.Rand) Workload {
	thinks := []time.Duration{0, 200 * time.Millisecond, time.Second, 1500 * time.Millisecond}
	side := func() []Component {
		n := r.Intn(4)
		out := make([]Component, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, Component{
				Sessions: r.Intn(5),
				Parallel: r.Intn(4),
				Think:    thinks[r.Intn(len(thinks))],
				Infinite: r.Intn(2) == 0,
			})
		}
		return out
	}
	return Workload{Up: side(), Down: side(), Scale: r.Intn(3)}
}

// reshuffle returns an equivalent respelling: permuted component
// order, random Sessions x Parallel resplits of each loop count, and
// the scale folded in or factored out.
func reshuffle(r *rand.Rand, w Workload) Workload {
	scale := w.Scale
	if scale < 1 {
		scale = 1
	}
	respell := func(comps []Component) []Component {
		out := make([]Component, 0, len(comps))
		for _, c := range comps {
			loops := c.loops() * scale
			if loops == 0 {
				// A dead component may vanish or stay; both spellings are
				// equivalent.
				if r.Intn(2) == 0 {
					out = append(out, Component{Parallel: c.Parallel, Think: c.Think, Infinite: c.Infinite})
				}
				continue
			}
			// Split the loops into up to three chunks with random
			// sessions x parallel factorizations.
			for loops > 0 {
				chunk := 1 + r.Intn(loops)
				loops -= chunk
				c2 := Component{Sessions: chunk, Parallel: 1, Think: c.Think, Infinite: c.Infinite}
				if c.Infinite {
					c2.Think = time.Duration(r.Intn(2)) * time.Second // ignored for bulk flows
				}
				out = append(out, c2)
			}
		}
		r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	return Workload{Up: respell(w.Up), Down: respell(w.Down)}
}

// TestWorkloadCanonicalizationProperties is the property test the
// cache-key guarantee rests on: canonicalization is order- and
// spelling-insensitive (equivalent mixes share one encoding) and
// collision-free (distinct canonical mixes never share one).
func TestWorkloadCanonicalizationProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	seen := map[string]Workload{}
	for i := 0; i < 2000; i++ {
		w := randWorkload(r)
		if err := w.Validate(); err != nil {
			t.Fatalf("random workload invalid: %v", err)
		}
		enc := w.Encode()

		// Order/spelling insensitivity: every respelling encodes and
		// canonicalizes identically.
		for j := 0; j < 3; j++ {
			alt := reshuffle(r, w)
			if got := alt.Encode(); got != enc {
				t.Fatalf("respelling changed encoding:\n%+v -> %q\n%+v -> %q", w, enc, alt, got)
			}
			if !alt.Equal(w) {
				t.Fatalf("respelling not Equal: %+v vs %+v", w, alt)
			}
		}

		// Collision freedom: equal encodings imply equal canonical
		// workloads across everything ever generated.
		if prev, ok := seen[enc]; ok {
			if !prev.Equal(w) {
				t.Fatalf("encoding collision %q:\n%+v\n%+v", enc, prev, w)
			}
		} else {
			seen[enc] = w
		}

		// The compiled Spec must follow the canonical form exactly.
		spec := w.Spec(enc)
		canon := w.Canonical()
		if len(spec.Up) != len(canon.Up) || len(spec.Down) != len(canon.Down) {
			t.Fatalf("Spec shape diverges from canonical: %+v vs %+v", spec, canon)
		}
		for i, c := range canon.Up {
			if spec.Up[i].Sessions != c.Sessions || spec.Up[i].Infinite != c.Infinite || spec.Up[i].Think != c.Think {
				t.Fatalf("Spec.Up[%d] = %+v, canonical %+v", i, spec.Up[i], c)
			}
		}
	}
	if len(seen) < 100 {
		t.Fatalf("generator produced only %d distinct workloads", len(seen))
	}
}

// TestWorkloadCanonicalShape pins the normalization rules: loops
// form, merged equal shapes, bulk-first ordering, think-ascending web
// components, scale application.
func TestWorkloadCanonicalShape(t *testing.T) {
	w := Workload{
		Down: []Component{
			{Sessions: 2, Parallel: 3, Think: time.Second},
			{Sessions: 4, Infinite: true, Think: 99 * time.Second}, // think ignored on bulk
			{Sessions: 6, Think: time.Second},
			{Sessions: 1, Think: 200 * time.Millisecond},
			{Sessions: 0, Think: 5 * time.Second}, // empty: dropped
			{Sessions: 1, Parallel: 4, Infinite: true},
		},
		Scale: 2,
	}
	c := w.Canonical()
	want := []Component{
		{Sessions: 16, Parallel: 1, Infinite: true},               // (4 + 1x4) x2, merged, first
		{Sessions: 2, Parallel: 1, Think: 200 * time.Millisecond}, // 1x2
		{Sessions: 24, Parallel: 1, Think: time.Second},           // (2x3 + 6) x2, merged
	}
	if len(c.Up) != 0 || !componentsEqual(c.Down, want) {
		t.Fatalf("canonical = %+v, want Down %+v", c, want)
	}
	if enc := w.Encode(); enc != "down:long=16,web=2/200ms,web=24/1s" {
		t.Fatalf("encoding = %q", enc)
	}
	if got := (Workload{}).Encode(); got != "noBG" {
		t.Fatalf("empty encoding = %q", got)
	}
}

// TestMatchPresets covers the preset-fold both ways: every Table 1
// preset under every direction matches itself, and near misses do
// not match.
func TestMatchPresets(t *testing.T) {
	for _, name := range AccessScenarioNames {
		full, err := AccessWorkload(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, dir := range []Direction{DirDown, DirUp, DirBidir} {
			masked := full.Mask(dir)
			gotName, gotDir, ok := MatchAccessPreset(masked)
			if !ok {
				t.Fatalf("%s/%s does not match itself", name, dir)
			}
			// The match must name traffic identical to the input. It may
			// legitimately be a different (name, dir): Table 1 gives
			// short-few and short-many the same upstream population, so
			// short-many/up deterministically folds onto short-few/up —
			// the first equivalent preset in table order.
			gotFull, err := AccessWorkload(gotName)
			if err != nil {
				t.Fatal(err)
			}
			if !gotFull.Mask(gotDir).Equal(masked) {
				t.Fatalf("%s/%s matched non-equivalent %s/%s", name, dir, gotName, gotDir)
			}
		}
	}
	for _, name := range BackboneScenarioNames {
		full, err := BackboneWorkload(name)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := MatchBackbonePreset(full); !ok || got != name {
			t.Fatalf("backbone %s matched %q, %v", name, got, ok)
		}
	}
	// Near misses: one flow off, or the wrong think time.
	if _, _, ok := MatchAccessPreset(Workload{Up: []Component{{Sessions: 7, Infinite: true}}}); ok {
		t.Fatal("7 upstream bulk flows matched a preset")
	}
	if _, _, ok := MatchAccessPreset(Workload{
		Up:   []Component{{Sessions: 1, Parallel: 8, Think: 300 * time.Millisecond}},
		Down: []Component{{Sessions: 8, Parallel: 3, Think: 1500 * time.Millisecond}},
	}); ok {
		t.Fatal("short-few with the wrong think time matched")
	}
	if _, ok := MatchBackbonePreset(Workload{Down: []Component{{Sessions: 768, Parallel: 3, Think: time.Second}}}); ok {
		t.Fatal("short-overload with the wrong think time matched")
	}
}

// TestWorkloadValidateBounds pins the validation errors.
func TestWorkloadValidateBounds(t *testing.T) {
	for name, w := range map[string]Workload{
		"negative sessions": {Up: []Component{{Sessions: -1}}},
		"negative parallel": {Down: []Component{{Sessions: 1, Parallel: -2}}},
		"negative think":    {Down: []Component{{Sessions: 1, Think: -time.Second}}},
		"negative scale":    {Down: []Component{{Sessions: 1}}, Scale: -1},
		"runaway":           {Down: []Component{{Sessions: MaxWorkloadLoops, Parallel: 2}}},
		"runaway by scale":  {Down: []Component{{Sessions: MaxWorkloadLoops / 2, Parallel: 1}}, Scale: 4},
		// Products that would wrap int64 must be rejected, not
		// overflow into a tiny (or empty) population.
		"overflow to zero":  {Up: []Component{{Sessions: 1 << 62, Parallel: 4}}},
		"overflow to tiny":  {Up: []Component{{Sessions: 1<<62 + 1, Parallel: 4}}},
		"overflow by scale": {Up: []Component{{Sessions: 2, Parallel: 1}}, Scale: 1 << 62},
		"overflow in total": {Up: []Component{{Sessions: MaxWorkloadLoops}}, Down: []Component{{Sessions: MaxWorkloadLoops}}},
	} {
		if err := w.Validate(); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
	if err := (Workload{}).Validate(); err != nil {
		t.Errorf("empty workload: %v", err)
	}
}
