// Package mac models an 802.11-flavored last hop: CSMA/CA contention
// (DCF backoff), collisions with exponential backoff and a retry
// limit, and A-MPDU-style frame aggregation. It exists to re-ask the
// paper's buffer-sizing question on the link type its testbeds
// deliberately excluded ("we decided to omit WiFi connectivity"):
// Li/Leith/Malone ("Buffer Sizing for 802.11 Based Networks") show
// that MAC contention and aggregation make fixed BDP rules wrong on
// WiFi, because the service rate the buffer drains at is itself a
// function of contention, not a constant.
//
// The model is a DCF-lite abstraction, not a frame-accurate 802.11
// implementation:
//
//   - One shared Medium per cell serializes airtime between the links
//     that contend on it (the AP's downlink and the station uplink
//     share one channel, like a real BSS).
//   - Each transmission attempt waits DIFS plus a uniform backoff in
//     [0, CW] slots from the instant the medium frees.
//   - Collision probability per attempt is Bianchi-flavored:
//     p = 1-(1-tau)^(n-1) with tau = 2/(CW+2), where n is the
//     configured station count — more stations collide more, and a
//     station that has backed off (larger CW) collides less. A
//     collision wastes the aggregate's airtime (no ACK), doubles CW up
//     to CWmax, and retries up to RetryLimit before dropping the whole
//     aggregate.
//   - Aggregation drains up to MaxAggFrames frames from the queue into
//     one TXOP; the per-TXOP overhead (preamble, backoff, block-ACK)
//     is then amortized over the aggregate, which is why aggregation
//     changes the effective service rate so strongly.
//
// All randomness comes from one seeded stream per link, so cells are
// bit-reproducible; the single owned transmit timer keeps the per-TXOP
// event cost allocation-free.
package mac

import (
	"math"
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
)

// 802.11n-flavored MAC/PHY timing constants (simplified OFDM values).
const (
	Slot     = 9 * time.Microsecond
	DIFS     = 34 * time.Microsecond
	SIFS     = 16 * time.Microsecond
	Preamble = 40 * time.Microsecond // PLCP preamble + header per PPDU
	BlockAck = 32 * time.Microsecond // compressed block-ACK airtime

	CWMin = 15
	CWMax = 1023

	// FrameOverhead is the per-subframe MAC cost in bytes (MAC header
	// plus A-MPDU delimiter and padding).
	FrameOverhead = 40
)

// Default knob values, applied by Params.WithDefaults.
const (
	DefaultRetryLimit   = 7
	DefaultMaxAggFrames = 16
)

// Params configures one WifiLink.
type Params struct {
	// PhyRate is the air data rate in bits/s.
	PhyRate float64
	// Delay is the one-way propagation delay applied after a
	// successful transmission (the wired path beyond the AP).
	Delay time.Duration
	// Stations is the number of stations contending for the medium;
	// it drives the collision probability. 1 means no collisions.
	Stations int
	// RetryLimit is the per-aggregate retry budget before the frames
	// are dropped (802.11 dot11LongRetryLimit-style).
	RetryLimit int
	// MaxAggFrames caps the subframes batched into one A-MPDU TXOP;
	// 1 disables aggregation.
	MaxAggFrames int
}

// WithDefaults fills zero knobs with the 802.11 defaults.
func (p Params) WithDefaults() Params {
	if p.Stations <= 0 {
		p.Stations = 1
	}
	if p.RetryLimit <= 0 {
		p.RetryLimit = DefaultRetryLimit
	}
	if p.MaxAggFrames <= 0 {
		p.MaxAggFrames = DefaultMaxAggFrames
	}
	return p
}

// Medium is the shared radio channel: it remembers when the air goes
// idle so the links contending on it serialize their TXOPs. One Medium
// per cell (BSS); both directions of the last hop share it.
type Medium struct {
	free sim.Time
}

// NewMedium returns an idle medium.
func NewMedium() *Medium { return &Medium{} }

// Reset rewinds the medium to idle for carcass reuse.
func (m *Medium) Reset() { m.free = 0 }

// WifiLink is the 802.11 last-hop egress: packets wait in Queue (the
// bottleneck buffer under test), are batched into aggregates, contend
// for the shared Medium, and — after winning it without collision —
// propagate for Delay before delivery. It slots in wherever a wired
// netem.Link sits: it implements netem.Egress for routing tables,
// netem.Receiver for chaining, and netem.RatedCarrier for the link
// monitor (utilization is reported against the raw PHY rate, so MAC
// overhead and collisions show up as the utilization ceiling they
// really are).
type WifiLink struct {
	Name string
	Params

	// Queue is the bottleneck buffer in front of the MAC.
	Queue netem.Queue
	// Monitor observes successfully transmitted frames (nil = off).
	Monitor *netem.LinkMonitor
	// Tap, if non-nil, observes every successfully transmitted frame.
	Tap func(p *netem.Packet, at sim.Time)

	// Counters for tests and experiments.
	TxFrames     uint64 // frames delivered over the air
	TxAggregates uint64 // TXOPs won without collision
	Collisions   uint64 // TXOP attempts lost to a collision
	RetryDrops   uint64 // frames dropped after RetryLimit collisions

	eng *sim.Engine
	rng *sim.RNG
	med *Medium
	dst netem.Receiver

	busy     bool
	cw       int
	retries  int
	collided bool
	agg      []*netem.Packet
	txTimer  sim.Timer // owned: fires when the current TXOP's airtime ends
}

// NewWifiLink creates a wifi last hop feeding dst through queue,
// contending on med. The RNG stream must be private to this link.
func NewWifiLink(eng *sim.Engine, name string, p Params, rng *sim.RNG, queue netem.Queue, med *Medium, dst netem.Receiver) *WifiLink {
	w := &WifiLink{
		Name:   name,
		Params: p.WithDefaults(),
		Queue:  queue,
		eng:    eng,
		rng:    rng,
		med:    med,
		dst:    dst,
		cw:     CWMin,
		agg:    make([]*netem.Packet, 0, DefaultMaxAggFrames),
	}
	eng.InitTimer(&w.txTimer, w)
	return w
}

// Reset returns the link to its never-used state for carcass reuse
// with the next cell's parameters, mirroring NewWifiLink (the owned
// timer was already unhooked by the engine's Reset). Queued packets
// are released back to the pool.
func (w *WifiLink) Reset(p Params, rng *sim.RNG, queue netem.Queue) {
	for _, pk := range w.agg {
		pk.Release()
	}
	w.agg = w.agg[:0]
	w.Params = p.WithDefaults()
	w.Queue = queue
	w.Monitor, w.Tap = nil, nil
	w.TxFrames, w.TxAggregates, w.Collisions, w.RetryDrops = 0, 0, 0, 0
	w.rng = rng
	w.busy, w.collided = false, false
	w.cw, w.retries = CWMin, 0
}

// NominalRate implements netem.RatedCarrier: the raw PHY rate.
func (w *WifiLink) NominalRate() float64 { return w.PhyRate }

// AttachMonitor wires a caller-owned monitor to the link, replacing
// any current one (the wifi counterpart of Link.AttachMonitor).
func (w *WifiLink) AttachMonitor(m *netem.LinkMonitor) *netem.LinkMonitor {
	m.Attach(w.Name, w)
	w.Monitor = m
	return m
}

// EnsureMonitor attaches (or returns the existing) LinkMonitor.
func (w *WifiLink) EnsureMonitor() *netem.LinkMonitor {
	if w.Monitor == nil {
		w.Monitor = &netem.LinkMonitor{}
		w.Monitor.Attach(w.Name, w)
	}
	return w.Monitor
}

// Send implements netem.Egress: offer a packet to the bottleneck
// queue and kick the MAC if idle.
//
//qoe:hotpath
func (w *WifiLink) Send(p *netem.Packet) bool {
	if !w.Queue.Enqueue(p, w.eng.Now()) {
		p.Release()
		return false
	}
	if !w.busy {
		w.startTxop()
	}
	return true
}

// Receive implements netem.Receiver so the link can terminate a wired
// hop (delivery acceptance is unreported upstream, as with any
// receiver: a queue-full drop is the bottleneck doing its job).
func (w *WifiLink) Receive(p *netem.Packet) { w.Send(p) }

// startTxop drains up to MaxAggFrames frames into one aggregate and
// begins contending for the medium.
//
//qoe:hotpath
func (w *WifiLink) startTxop() {
	now := w.eng.Now()
	for len(w.agg) < w.MaxAggFrames {
		p := w.Queue.Dequeue(now)
		if p == nil {
			break
		}
		w.agg = append(w.agg, p)
	}
	if len(w.agg) == 0 {
		w.busy = false
		return
	}
	w.busy = true
	w.contend()
}

// contend schedules the end of the next transmission attempt: DIFS
// plus a uniform backoff from when the medium frees, then the
// aggregate's airtime. The collision outcome is drawn up front (the
// model needs no per-slot events), and the medium is held for the
// attempt either way — colliding transmissions occupy air too.
//
//qoe:hotpath
func (w *WifiLink) contend() {
	start := w.med.free
	if now := w.eng.Now(); now > start {
		start = now
	}
	slots := w.rng.IntN(w.cw + 1)
	start = start.Add(DIFS + time.Duration(slots)*Slot)

	w.collided = w.collisionDraw()
	end := start.Add(w.airtime(!w.collided))
	w.med.free = end
	w.txTimer.ResetAt(end)
}

// collisionDraw decides the fate of one attempt: p = 1-(1-tau)^(n-1)
// with tau = 2/(CW+2). Stations that have backed off (larger CW)
// transmit less aggressively and collide less — the stabilizing
// feedback of DCF, without per-station simulation.
func (w *WifiLink) collisionDraw() bool {
	if w.Stations <= 1 {
		return false
	}
	tau := 2.0 / float64(w.cw+2)
	p := 1 - math.Pow(1-tau, float64(w.Stations-1))
	return w.rng.Bool(p)
}

// airtime returns how long the current aggregate occupies the medium:
// preamble plus serialized MAC-framed bytes, plus SIFS and block-ACK
// on success (a collision is never acknowledged).
func (w *WifiLink) airtime(success bool) time.Duration {
	bytes := 0
	for _, p := range w.agg {
		bytes += p.Size + FrameOverhead
	}
	d := Preamble + time.Duration(float64(bytes*8)/w.PhyRate*float64(time.Second))
	if success {
		d += SIFS + BlockAck
	}
	return d
}

// Fire implements sim.Handler: the current attempt's airtime ended.
//
//qoe:hotpath
func (w *WifiLink) Fire(now sim.Time) {
	if w.collided {
		w.Collisions++
		w.retries++
		if w.retries > w.RetryLimit {
			// Retry budget exhausted: the aggregate is lost. This is
			// the wifi-specific loss process the buffer never sees —
			// the frames were dequeued long ago.
			w.RetryDrops += uint64(len(w.agg))
			for _, p := range w.agg {
				p.Release()
			}
			w.agg = w.agg[:0]
			w.cw, w.retries = CWMin, 0
			w.startTxop()
			return
		}
		w.cw = min(2*w.cw+1, CWMax)
		w.contend()
		return
	}
	// Success: deliver every subframe after the propagation delay.
	for _, p := range w.agg {
		if w.Monitor != nil {
			w.Monitor.NoteTransmit(p)
		}
		if w.Tap != nil {
			w.Tap(p, now)
		}
		w.eng.ScheduleArg(w.Delay, w, p)
	}
	w.TxFrames += uint64(len(w.agg))
	w.TxAggregates++
	w.agg = w.agg[:0]
	w.cw, w.retries = CWMin, 0
	w.startTxop()
}

// FireArg implements sim.ArgHandler: a frame finished propagating —
// hand it to the receiver.
//
//qoe:hotpath
func (w *WifiLink) FireArg(now sim.Time, arg any) {
	w.dst.Receive(arg.(*netem.Packet))
}

// TransmissionTime returns the airtime of a single unaggregated frame
// of the given payload size, including per-TXOP overhead — the wifi
// analogue of Link.TransmissionTime.
func (w *WifiLink) TransmissionTime(size int) time.Duration {
	bits := float64((size + FrameOverhead) * 8)
	return Preamble + time.Duration(bits/w.PhyRate*float64(time.Second)) + SIFS + BlockAck
}
