package mac

import (
	"testing"
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
)

// timeSink records delivery times against the engine clock.
type timeSink struct {
	eng   *sim.Engine
	ids   []uint64
	times []sim.Time
}

func (s *timeSink) Receive(p *netem.Packet) {
	s.ids = append(s.ids, p.ID)
	s.times = append(s.times, s.eng.Now())
}

// drain pushes n full-size packets into a fresh WifiLink at t=0 and
// runs until the queue empties, returning the time the last frame was
// delivered (0 if not all arrived) and the link for counter checks.
func drain(t *testing.T, n int, p Params, seed uint64) (time.Duration, *WifiLink, *timeSink) {
	t.Helper()
	eng := sim.New()
	sink := &timeSink{eng: eng}
	w := NewWifiLink(eng, "wifi", p, sim.NewRNG(seed, "wifi-test"),
		netem.NewDropTail(n+1), NewMedium(), sink)
	for i := 0; i < n; i++ {
		w.Send(&netem.Packet{ID: uint64(i + 1), Size: 1500})
	}
	eng.RunFor(10 * time.Minute)
	if len(sink.ids)+int(w.RetryDrops) != n {
		t.Fatalf("sent %d, delivered %d, retry-dropped %d", n, len(sink.ids), w.RetryDrops)
	}
	if len(sink.times) == 0 {
		return 0, w, sink
	}
	last := sink.times[len(sink.times)-1]
	return time.Duration(last.Sub(sim.Time(0))), w, sink
}

// TestWifiThroughputNearPhyRate: with one station (no collisions) and
// full aggregation, goodput should be a large fraction of the PHY rate
// — the DIFS/backoff/preamble/ACK overhead is amortized over 16-frame
// aggregates.
func TestWifiThroughputNearPhyRate(t *testing.T) {
	const n = 3200
	elapsed, w, _ := drain(t, n, Params{PhyRate: 50e6, Stations: 1}, 1)
	if w.Collisions != 0 {
		t.Fatalf("single station collided %d times", w.Collisions)
	}
	goodput := float64(n*1500*8) / elapsed.Seconds()
	if goodput < 0.75*50e6 || goodput > 50e6 {
		t.Fatalf("goodput %.1f Mbit/s, want 75-100%% of the 50 Mbit/s PHY rate", goodput/1e6)
	}
}

// TestWifiContentionSlowsDrain: more contending stations mean more
// collision-wasted airtime, so the same workload takes longer — the
// effective service rate is a function of contention, which is the
// whole reason wired BDP rules break on this link.
func TestWifiContentionSlowsDrain(t *testing.T) {
	alone, _, _ := drain(t, 800, Params{PhyRate: 50e6, Stations: 1}, 1)
	crowded, w, _ := drain(t, 800, Params{PhyRate: 50e6, Stations: 20}, 1)
	if w.Collisions == 0 {
		t.Fatal("20 stations produced zero collisions")
	}
	if crowded < alone*5/4 {
		t.Fatalf("20-station drain %v not clearly slower than solo %v", crowded, alone)
	}
}

// TestWifiAggregationAmortizesOverhead: per-TXOP overhead dominates at
// MaxAggFrames=1; batching 16 frames per TXOP must drain the same
// workload substantially faster.
func TestWifiAggregationAmortizesOverhead(t *testing.T) {
	single, ws, _ := drain(t, 800, Params{PhyRate: 50e6, Stations: 1, MaxAggFrames: 1}, 1)
	batched, wb, _ := drain(t, 800, Params{PhyRate: 50e6, Stations: 1, MaxAggFrames: 16}, 1)
	if ws.TxAggregates != 800 {
		t.Fatalf("unaggregated link sent %d TXOPs for 800 frames", ws.TxAggregates)
	}
	if wb.TxAggregates >= ws.TxAggregates/8 {
		t.Fatalf("aggregating link used %d TXOPs, want far fewer than %d", wb.TxAggregates, ws.TxAggregates)
	}
	if batched >= single*3/4 {
		t.Fatalf("aggregated drain %v not clearly faster than unaggregated %v", batched, single)
	}
}

// TestWifiRetryLimitDrops: under heavy contention with a tight retry
// budget, some aggregates exhaust their retries and are dropped — the
// MAC-level loss process that never touches the buffer.
func TestWifiRetryLimitDrops(t *testing.T) {
	_, w, sink := drain(t, 500, Params{PhyRate: 50e6, Stations: 40, RetryLimit: 1}, 1)
	if w.RetryDrops == 0 {
		t.Fatal("40 stations at RetryLimit=1 dropped nothing")
	}
	if uint64(len(sink.ids))+w.RetryDrops != 500 {
		t.Fatalf("delivered %d + dropped %d != 500", len(sink.ids), w.RetryDrops)
	}
	// Survivors still arrive in order: the MAC is FIFO per link.
	for i := 1; i < len(sink.ids); i++ {
		if sink.ids[i] < sink.ids[i-1] {
			t.Fatalf("delivery order inverted at %d: %d after %d", i, sink.ids[i], sink.ids[i-1])
		}
	}
}

// TestWifiDeterministic: identical seeds give bit-identical delivery
// schedules and counters; a different seed diverges.
func TestWifiDeterministic(t *testing.T) {
	p := Params{PhyRate: 30e6, Stations: 10}
	d1, w1, s1 := drain(t, 400, p, 42)
	d2, w2, s2 := drain(t, 400, p, 42)
	if d1 != d2 || w1.Collisions != w2.Collisions || w1.TxAggregates != w2.TxAggregates {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d", d1, w1.Collisions, d2, w2.Collisions)
	}
	for i := range s1.times {
		if s1.times[i] != s2.times[i] {
			t.Fatalf("delivery time %d differs: %v vs %v", i, s1.times[i], s2.times[i])
		}
	}
	d3, w3, _ := drain(t, 400, p, 43)
	if d3 == d1 && w3.Collisions == w1.Collisions {
		t.Fatal("independent seeds produced identical runs")
	}
}

// TestWifiSharedMediumSerializes: two links contending on one medium
// cannot both run at full speed; splitting them onto separate media
// must drain the same joint workload faster.
func TestWifiSharedMediumSerializes(t *testing.T) {
	run := func(shared bool) time.Duration {
		eng := sim.New()
		sink := &timeSink{eng: eng}
		medA := NewMedium()
		medB := medA
		if !shared {
			medB = NewMedium()
		}
		p := Params{PhyRate: 30e6, Stations: 1}
		up := NewWifiLink(eng, "up", p, sim.NewRNG(1, "up"), netem.NewDropTail(600), medA, sink)
		down := NewWifiLink(eng, "down", p, sim.NewRNG(1, "down"), netem.NewDropTail(600), medB, sink)
		for i := 0; i < 500; i++ {
			up.Send(&netem.Packet{ID: uint64(i + 1), Size: 1500})
			down.Send(&netem.Packet{ID: uint64(i + 1001), Size: 1500})
		}
		eng.RunFor(10 * time.Minute)
		if len(sink.ids) != 1000 {
			t.Fatalf("delivered %d of 1000", len(sink.ids))
		}
		return time.Duration(sink.times[len(sink.times)-1].Sub(sim.Time(0)))
	}
	shared, separate := run(true), run(false)
	if shared < separate*3/2 {
		t.Fatalf("shared medium drain %v not clearly slower than separate %v", shared, separate)
	}
}

// TestWifiMonitorIntegration: the LinkMonitor sees transmitted frames
// and reports utilization against the PHY rate.
func TestWifiMonitorIntegration(t *testing.T) {
	eng := sim.New()
	sink := &timeSink{eng: eng}
	w := NewWifiLink(eng, "wifi", Params{PhyRate: 50e6, Stations: 1},
		sim.NewRNG(1, "mon"), netem.NewDropTail(2000), NewMedium(), sink)
	mon := w.EnsureMonitor()
	mon.StartSampling(eng, 100*time.Millisecond)
	for i := 0; i < 1600; i++ {
		w.Send(&netem.Packet{ID: uint64(i + 1), Size: 1500})
	}
	eng.RunFor(10 * time.Minute)
	if mon.PktsSent != 1600 || mon.BytesSent != 1600*1500 {
		t.Fatalf("monitor saw %d pkts / %d bytes", mon.PktsSent, mon.BytesSent)
	}
	if mon.UtilSamples.N() == 0 {
		t.Fatal("no utilization samples recorded")
	}
}

// TestWifiDelayAppliesAfterAir: with propagation delay configured, the
// first delivery cannot beat contention + airtime + delay.
func TestWifiDelayAppliesAfterAir(t *testing.T) {
	eng := sim.New()
	sink := &timeSink{eng: eng}
	const delay = 5 * time.Millisecond
	w := NewWifiLink(eng, "wifi", Params{PhyRate: 50e6, Delay: delay, Stations: 1},
		sim.NewRNG(1, "delay"), netem.NewDropTail(10), NewMedium(), sink)
	w.Send(&netem.Packet{ID: 1, Size: 1500})
	eng.RunFor(time.Second)
	if len(sink.ids) != 1 {
		t.Fatalf("delivered %d of 1", len(sink.ids))
	}
	min := delay + DIFS + Preamble
	if got := time.Duration(sink.times[0].Sub(sim.Time(0))); got < min {
		t.Fatalf("delivered after %v, impossible before %v", got, min)
	}
}

// TestWifiResetReusable: after an engine reset, Reset rewinds the link
// and a rerun with the same seed reproduces the original run exactly.
func TestWifiResetReusable(t *testing.T) {
	eng := sim.New()
	sink := &timeSink{eng: eng}
	p := Params{PhyRate: 30e6, Stations: 10}
	med := NewMedium()
	w := NewWifiLink(eng, "wifi", p, sim.NewRNG(7, "reset"), netem.NewDropTail(300), med, sink)
	feed := func() {
		for i := 0; i < 250; i++ {
			w.Send(&netem.Packet{ID: uint64(i + 1), Size: 1500})
		}
		eng.RunFor(10 * time.Minute)
	}
	feed()
	first := append([]sim.Time(nil), sink.times...)
	firstColl := w.Collisions

	eng.Reset()
	med.Reset()
	w.Reset(p, sim.NewRNG(7, "reset"), netem.NewDropTail(300))
	sink.ids, sink.times = nil, nil
	feed()

	if w.Collisions != firstColl {
		t.Fatalf("rerun collisions %d != first run %d", w.Collisions, firstColl)
	}
	if len(sink.times) != len(first) {
		t.Fatalf("rerun delivered %d, first %d", len(sink.times), len(first))
	}
	for i := range first {
		if sink.times[i] != first[i] {
			t.Fatalf("rerun delivery %d at %v, first run at %v", i, sink.times[i], first[i])
		}
	}
}

// TestWifiQueueDropStillBounded: the bottleneck queue still enforces
// its capacity in front of the MAC (buffer sizing remains meaningful).
func TestWifiQueueDropStillBounded(t *testing.T) {
	eng := sim.New()
	sink := &timeSink{eng: eng}
	q := netem.NewDropTail(8)
	mon := &netem.QueueMonitor{Name: "wifi-q"}
	q.Monitor = mon
	w := NewWifiLink(eng, "wifi", Params{PhyRate: 10e6, Stations: 1, MaxAggFrames: 1},
		sim.NewRNG(1, "qdrop"), q, NewMedium(), sink)
	for i := 0; i < 100; i++ {
		w.Send(&netem.Packet{ID: uint64(i + 1), Size: 1500})
	}
	eng.RunFor(time.Minute)
	if mon.Dropped == 0 {
		t.Fatal("burst into an 8-packet buffer dropped nothing")
	}
	if int(mon.Dropped)+len(sink.ids) != 100 {
		t.Fatalf("dropped %d + delivered %d != 100", mon.Dropped, len(sink.ids))
	}
}
