package aqm

import (
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
)

// PIE implements the Proportional Integral controller Enhanced AQM
// (RFC 8033), the discipline the cable industry standardized for
// DOCSIS modems in direct response to the access-uplink bufferbloat
// this paper studies. A drop probability applied at enqueue is driven
// by a PI controller on the estimated queueing latency:
//
//	p += Alpha*(delay - Target) + Beta*(delay - delayOld)
//
// Latency is estimated from the queue backlog and a departure-rate
// measurement (Little's law), as in the RFC's reference code. The
// controller state advances lazily from enqueue/dequeue calls, which is
// exact in a discrete-event setting: probability updates land on the
// first queue operation after each TUpdate boundary.
type PIE struct {
	// Target is the latency setpoint (RFC default 15 ms).
	Target time.Duration
	// TUpdate is the probability update interval (RFC default 15 ms).
	TUpdate time.Duration
	// Alpha and Beta are the PI gains in 1/s (RFC defaults 0.125 and
	// 1.25, applied to delays in seconds).
	Alpha, Beta float64
	// MaxBurst allows initial bursts through undropped (150 ms).
	MaxBurst time.Duration
	// CapPackets bounds the physical queue.
	CapPackets int
	// ECN marks ECT packets instead of dropping while the drop
	// probability is below ECNThreshold (RFC 8033 §5.1).
	ECN bool
	// ECNThreshold is the marking cutoff (default 0.1).
	ECNThreshold float64
	// Monitor, if non-nil, observes queue events.
	Monitor *netem.QueueMonitor

	rng   *sim.RNG
	q     []*netem.Packet
	head  int
	bytes int

	prob         float64
	qdelay       time.Duration
	qdelayOld    time.Duration
	burstLeft    time.Duration
	nextUpdateAt sim.Time
	started      bool

	// Departure rate estimation (RFC 8033 §4.3): measure in cycles
	// that start when the backlog exceeds a threshold.
	inMeasurement bool
	dqStart       sim.Time
	dqCount       int // bytes dequeued this cycle
	avgDqRate     float64

	// Drops counts probabilistic (non-overflow) drops; Marks counts CE
	// marks applied in place of drops.
	Drops, Marks uint64
}

// PIE constants from RFC 8033.
const (
	pieDqThreshold = 16 * 1024 // bytes; start a rate measurement cycle
	pieMaxProb     = 1.0
)

// NewPIE returns a PIE queue with the RFC 8033 default parameters and
// the given physical capacity in packets.
func NewPIE(capPackets int, rng *sim.RNG) *PIE {
	if capPackets < 1 {
		capPackets = 1
	}
	return &PIE{
		Target:       15 * time.Millisecond,
		TUpdate:      15 * time.Millisecond,
		Alpha:        0.125,
		Beta:         1.25,
		MaxBurst:     150 * time.Millisecond,
		ECNThreshold: 0.1,
		CapPackets:   capPackets,
		rng:          rng,
	}
}

// Enqueue implements netem.Queue: it applies the current drop
// probability before admitting the packet.
func (pi *PIE) Enqueue(p *netem.Packet, now sim.Time) bool {
	pi.update(now)
	if pi.Len() >= pi.CapPackets {
		if pi.Monitor != nil {
			pi.Monitor.NoteDrop(p, now, pi.Len(), pi.bytes)
		}
		return false
	}
	if pi.shouldDrop(p) {
		if pi.ECN && p.ECT && pi.prob < pi.ECNThreshold {
			pi.Marks++
			p.CE = true
		} else {
			pi.Drops++
			if pi.Monitor != nil {
				pi.Monitor.NoteDrop(p, now, pi.Len(), pi.bytes)
			}
			return false
		}
	}
	p.Enqueued = now
	pi.q = append(pi.q, p)
	pi.bytes += p.Size
	if pi.Monitor != nil {
		pi.Monitor.NoteEnqueue(p, now, pi.Len(), pi.bytes)
	}
	return true
}

// shouldDrop implements the RFC's safeguards: no drops while the burst
// allowance lasts or while the queue is trivially small.
func (pi *PIE) shouldDrop(p *netem.Packet) bool {
	if pi.burstLeft > 0 {
		return false
	}
	if pi.qdelay < pi.Target/2 && pi.prob < 0.2 {
		return false
	}
	if pi.bytes <= 2*netem.MTU {
		return false
	}
	return pi.rng.Bool(pi.prob)
}

// update advances the PI controller across any TUpdate boundaries that
// have passed since the last queue operation.
func (pi *PIE) update(now sim.Time) {
	if !pi.started {
		pi.started = true
		pi.burstLeft = pi.MaxBurst
		pi.nextUpdateAt = now.Add(pi.TUpdate)
		return
	}
	for now >= pi.nextUpdateAt {
		// Latency estimate: backlog over measured departure rate,
		// falling back to zero-delay when the rate is unknown (an
		// idle or newly active queue).
		if pi.avgDqRate > 0 {
			pi.qdelay = time.Duration(float64(pi.bytes) / pi.avgDqRate * float64(time.Second))
		} else {
			pi.qdelay = 0
		}

		// PI control with the RFC's auto-scaling of gains at low
		// probability to avoid overshoot.
		alpha, beta := pi.Alpha, pi.Beta
		switch {
		case pi.prob < 0.000001:
			alpha /= 2048
			beta /= 2048
		case pi.prob < 0.00001:
			alpha /= 512
			beta /= 512
		case pi.prob < 0.0001:
			alpha /= 128
			beta /= 128
		case pi.prob < 0.001:
			alpha /= 32
			beta /= 32
		case pi.prob < 0.01:
			alpha /= 8
			beta /= 8
		case pi.prob < 0.1:
			alpha /= 2
			beta /= 2
		}
		dp := alpha*(pi.qdelay-pi.Target).Seconds() + beta*(pi.qdelay-pi.qdelayOld).Seconds()
		pi.prob += dp
		// Exponential decay when the queue is idle (RFC §4.2).
		if pi.qdelay == 0 && pi.qdelayOld == 0 {
			pi.prob *= 0.98
		}
		if pi.prob < 0 {
			pi.prob = 0
		}
		if pi.prob > pieMaxProb {
			pi.prob = pieMaxProb
		}
		pi.qdelayOld = pi.qdelay

		if pi.burstLeft > 0 {
			pi.burstLeft -= pi.TUpdate
			if pi.prob > 0 || pi.qdelay >= pi.Target/2 {
				pi.burstLeft = 0 // burst protection ends at congestion onset
			}
		}
		pi.nextUpdateAt = pi.nextUpdateAt.Add(pi.TUpdate)
	}
}

// Dequeue implements netem.Queue and feeds the departure-rate
// estimator.
func (pi *PIE) Dequeue(now sim.Time) *netem.Packet {
	pi.update(now)
	if pi.Len() == 0 {
		return nil
	}
	p := pi.q[pi.head]
	pi.q[pi.head] = nil
	pi.head++
	if pi.head == len(pi.q) {
		pi.q = pi.q[:0]
		pi.head = 0
	}
	pi.bytes -= p.Size

	// Departure-rate measurement cycle (RFC 8033 §4.3).
	if !pi.inMeasurement && pi.bytes >= pieDqThreshold {
		pi.inMeasurement = true
		pi.dqStart = now
		pi.dqCount = 0
	}
	if pi.inMeasurement {
		pi.dqCount += p.Size
		if pi.dqCount >= pieDqThreshold {
			dt := now.Sub(pi.dqStart).Seconds()
			if dt > 0 {
				rate := float64(pi.dqCount) / dt
				if pi.avgDqRate == 0 {
					pi.avgDqRate = rate
				} else {
					pi.avgDqRate = 0.875*pi.avgDqRate + 0.125*rate
				}
			}
			pi.inMeasurement = false
		}
	}
	if pi.Monitor != nil {
		pi.Monitor.NoteDequeue(p, now, pi.Len(), pi.bytes)
	}
	return p
}

// Len implements netem.Queue.
func (pi *PIE) Len() int { return len(pi.q) - pi.head }

// Bytes implements netem.Queue.
func (pi *PIE) Bytes() int { return pi.bytes }

// Prob exposes the current drop probability (for tests and the
// experiment harness).
func (pi *PIE) Prob() float64 { return pi.prob }
