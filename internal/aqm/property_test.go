package aqm

import (
	"testing"
	"testing/quick"
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
)

// driveQueue exercises a queue with a pseudo-random interleaving of
// enqueues and dequeues derived from ops, advancing a synthetic clock,
// and checks the conservation law accepted = delivered + still-queued
// (+ internally dropped, reported by the caller-provided counter).
// It returns false on any violated invariant.
func driveQueue(q netem.Queue, ops []byte, internalDrops func() uint64) bool {
	var now sim.Time
	accepted, delivered := 0, 0
	seq := uint64(0)
	for _, op := range ops {
		now = now.Add(time.Duration(op%13+1) * time.Millisecond)
		if op%3 != 0 { // two enqueues per dequeue on average
			seq++
			p := &netem.Packet{
				ID:   seq,
				Size: int(op)%netem.MTU + 1,
				Flow: netem.Flow{
					Proto: netem.ProtoUDP,
					Src:   netem.Addr{Node: 1, Port: uint16(op % 7)},
					Dst:   netem.Addr{Node: 2, Port: 80},
				},
			}
			if q.Enqueue(p, now) {
				accepted++
			}
		} else if p := q.Dequeue(now); p != nil {
			delivered++
		}
		if q.Len() < 0 || q.Bytes() < 0 {
			return false
		}
		if q.Len() == 0 && q.Bytes() != 0 {
			return false
		}
	}
	// Drain completely.
	for {
		now = now.Add(10 * time.Millisecond)
		p := q.Dequeue(now)
		if p == nil {
			break
		}
		delivered++
	}
	if q.Len() != 0 || q.Bytes() != 0 {
		return false
	}
	return accepted == delivered+int(internalDrops())
}

func TestPropertyCoDelConservation(t *testing.T) {
	f := func(ops []byte, capSeed uint8) bool {
		c := NewCoDel(int(capSeed)%100 + 1)
		return driveQueue(c, ops, func() uint64 { return c.Drops })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCoDelECNConservation(t *testing.T) {
	// With ECN and ECT traffic, marks replace drops: conservation
	// must hold with the AQM drop count still exact (overflow drops
	// are rejected enqueues, not internal).
	f := func(ops []byte, capSeed uint8) bool {
		c := NewCoDel(int(capSeed)%100 + 1)
		c.ECN = true
		var now sim.Time
		accepted, delivered := 0, 0
		for _, op := range ops {
			now = now.Add(time.Duration(op%13+1) * time.Millisecond)
			if op%3 != 0 {
				p := &netem.Packet{Size: 1500, ECT: true}
				if c.Enqueue(p, now) {
					accepted++
				}
			} else if p := c.Dequeue(now); p != nil {
				delivered++
			}
		}
		for {
			now = now.Add(10 * time.Millisecond)
			if c.Dequeue(now) == nil {
				break
			}
			delivered++
		}
		return accepted == delivered+int(c.Drops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyREDConservation(t *testing.T) {
	f := func(ops []byte, capSeed uint8, adaptive bool) bool {
		r := NewRED(int(capSeed)%100+2, sim.NewRNG(uint64(capSeed), "prop-red"))
		r.Adaptive = adaptive
		// RED drops at enqueue (rejections), never internally.
		return driveQueue(r, ops, func() uint64 { return 0 })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPIEConservation(t *testing.T) {
	f := func(ops []byte, capSeed uint8) bool {
		p := NewPIE(int(capSeed)%100+1, sim.NewRNG(uint64(capSeed), "prop-pie"))
		// PIE also drops only at enqueue.
		return driveQueue(p, ops, func() uint64 { return 0 })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFQCoDelConservation(t *testing.T) {
	f := func(ops []byte, capSeed uint8) bool {
		fq := NewFQCoDel(int(capSeed)%100 + 1)
		return driveQueue(fq, ops, func() uint64 { return fq.Drops })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAREDMaxPStaysBounded(t *testing.T) {
	f := func(ops []byte) bool {
		r := NewARED(64, sim.NewRNG(5, "prop-ared"))
		var now sim.Time
		for _, op := range ops {
			now = now.Add(time.Duration(op%200) * time.Millisecond)
			if op%2 == 0 {
				r.Enqueue(&netem.Packet{Size: 1500}, now)
			} else {
				r.Dequeue(now)
			}
			if r.MaxP < aredMinP-1e-9 || r.MaxP > aredMaxP+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPIEProbabilityBounded(t *testing.T) {
	f := func(ops []byte) bool {
		p := NewPIE(1000, sim.NewRNG(6, "prop-pie2"))
		var now sim.Time
		for _, op := range ops {
			now = now.Add(time.Duration(op%50) * time.Millisecond)
			if op%2 == 0 {
				p.Enqueue(&netem.Packet{Size: 1500}, now)
			} else {
				p.Dequeue(now)
			}
			if pr := p.Prob(); pr < 0 || pr > pieMaxProb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFQCoDelPerFlowFIFO: packets of the same flow must leave
// in arrival order regardless of cross-flow scheduling.
func TestPropertyFQCoDelPerFlowFIFO(t *testing.T) {
	f := func(ops []byte) bool {
		fq := NewFQCoDel(10000)
		var now sim.Time
		nextID := uint64(0)
		lastOut := map[uint16]uint64{}
		for _, op := range ops {
			now = now.Add(time.Millisecond)
			if op%3 != 0 {
				nextID++
				port := uint16(op % 5)
				p := &netem.Packet{
					ID:   nextID,
					Size: 500,
					Flow: netem.Flow{
						Proto: netem.ProtoUDP,
						Src:   netem.Addr{Node: 1, Port: port},
						Dst:   netem.Addr{Node: 2, Port: 80},
					},
				}
				fq.Enqueue(p, now)
			} else if p := fq.Dequeue(now); p != nil {
				port := p.Flow.Src.Port
				if p.ID <= lastOut[port] {
					return false
				}
				lastOut[port] = p.ID
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
