package aqm

import (
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
)

// RED implements Random Early Detection (Floyd & Jacobson 1993): an
// EWMA of the queue length gates probabilistic early drops between
// MinTh and MaxTh, and forces drops above MaxTh. With Adaptive set it
// becomes ARED (Floyd, Gummadi & Shenker 2001): MaxP is periodically
// re-tuned so the average queue settles midway between the thresholds,
// removing RED's notorious sensitivity to the MaxP choice.
type RED struct {
	// MinTh and MaxTh are the average-queue thresholds in packets.
	MinTh, MaxTh float64
	// MaxP is the drop probability at MaxTh (classic value 0.1).
	MaxP float64
	// Wq is the EWMA weight for the average queue estimate (0.002).
	Wq float64
	// CapPackets bounds the physical queue.
	CapPackets int
	// ECN marks ECT packets instead of early-dropping them; forced
	// drops (average above MaxTh or a full buffer) still discard.
	ECN bool
	// Adaptive enables the ARED MaxP adaptation (interval 500 ms,
	// additive increase 0.01, multiplicative decrease 0.9, MaxP kept
	// within [0.01, 0.5]).
	Adaptive bool
	// Monitor, if non-nil, observes queue events.
	Monitor *netem.QueueMonitor

	rng   *sim.RNG
	q     []*netem.Packet
	head  int
	bytes int

	avg          float64
	count        int // packets since last drop, for uniform spreading
	nextAdaptAt  sim.Time
	adaptStarted bool

	// EarlyDrops and ForcedDrops split the RED drop reasons.
	EarlyDrops, ForcedDrops uint64
	// Marks counts CE marks applied in place of early drops.
	Marks uint64
}

// NewRED returns a RED queue with classic parameters scaled to the
// capacity: MinTh = cap/4 (>=1), MaxTh = 3*cap/4, MaxP = 0.1.
func NewRED(capPackets int, rng *sim.RNG) *RED {
	if capPackets < 2 {
		capPackets = 2
	}
	return &RED{
		MinTh:      max(1, float64(capPackets)/4),
		MaxTh:      3 * float64(capPackets) / 4,
		MaxP:       0.1,
		Wq:         0.002,
		CapPackets: capPackets,
		rng:        rng,
	}
}

// NewARED returns an adaptive RED queue (Floyd et al. 2001) with the
// same threshold scaling as NewRED.
func NewARED(capPackets int, rng *sim.RNG) *RED {
	r := NewRED(capPackets, rng)
	r.Adaptive = true
	return r
}

// ARED adaptation constants (Floyd, Gummadi & Shenker 2001).
const (
	aredInterval = 500 * time.Millisecond
	aredAlpha    = 0.01 // additive MaxP increase
	aredBeta     = 0.9  // multiplicative MaxP decrease
	aredMinP     = 0.01
	aredMaxP     = 0.5
)

// adapt re-tunes MaxP once per interval so that avg tracks the middle
// of [MinTh, MaxTh].
func (r *RED) adapt(now sim.Time) {
	if !r.adaptStarted {
		r.adaptStarted = true
		r.nextAdaptAt = now.Add(aredInterval)
		return
	}
	if now < r.nextAdaptAt {
		return
	}
	r.nextAdaptAt = now.Add(aredInterval)
	target := r.MinTh + 0.5*(r.MaxTh-r.MinTh)
	spread := 0.1 * (r.MaxTh - r.MinTh) // +-10% dead band
	switch {
	case r.avg > target+spread && r.MaxP < aredMaxP:
		r.MaxP += aredAlpha
		if r.MaxP > aredMaxP {
			r.MaxP = aredMaxP
		}
	case r.avg < target-spread && r.MaxP > aredMinP:
		r.MaxP *= aredBeta
		if r.MaxP < aredMinP {
			r.MaxP = aredMinP
		}
	}
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Enqueue implements netem.Queue.
func (r *RED) Enqueue(p *netem.Packet, now sim.Time) bool {
	r.avg = (1-r.Wq)*r.avg + r.Wq*float64(r.Len())
	if r.Adaptive {
		r.adapt(now)
	}
	drop := func() bool {
		if r.Monitor != nil {
			r.Monitor.NoteDrop(p, now, r.Len(), r.bytes)
		}
		return false
	}
	switch {
	case r.Len() >= r.CapPackets:
		r.ForcedDrops++
		r.count = 0
		return drop()
	case r.avg >= r.MaxTh:
		r.ForcedDrops++
		r.count = 0
		return drop()
	case r.avg > r.MinTh:
		pb := r.MaxP * (r.avg - r.MinTh) / (r.MaxTh - r.MinTh)
		pa := pb / (1 - float64(r.count)*pb)
		if pa < 0 || pa > 1 {
			pa = 1
		}
		if r.rng.Bool(pa) {
			if r.ECN && p.ECT {
				// Mark instead of early drop; the packet is admitted.
				r.Marks++
				r.count = 0
				p.CE = true
				break
			}
			r.EarlyDrops++
			r.count = 0
			return drop()
		}
		r.count++
	default:
		r.count = 0
	}
	p.Enqueued = now
	r.q = append(r.q, p)
	r.bytes += p.Size
	if r.Monitor != nil {
		r.Monitor.NoteEnqueue(p, now, r.Len(), r.bytes)
	}
	return true
}

// Dequeue implements netem.Queue.
func (r *RED) Dequeue(now sim.Time) *netem.Packet {
	if r.Len() == 0 {
		return nil
	}
	p := r.q[r.head]
	r.q[r.head] = nil
	r.head++
	if r.head == len(r.q) {
		r.q = r.q[:0]
		r.head = 0
	}
	r.bytes -= p.Size
	if r.Monitor != nil {
		r.Monitor.NoteDequeue(p, now, r.Len(), r.bytes)
	}
	return p
}

// Len implements netem.Queue.
func (r *RED) Len() int { return len(r.q) - r.head }

// Bytes implements netem.Queue.
func (r *RED) Bytes() int { return r.bytes }
