package aqm

import (
	"testing"
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
)

func pkt(size int) *netem.Packet {
	return &netem.Packet{Size: size}
}

func TestCoDelPassesLowDelayTraffic(t *testing.T) {
	c := NewCoDel(100)
	var now sim.Time
	for i := 0; i < 50; i++ {
		if !c.Enqueue(pkt(1500), now) {
			t.Fatal("enqueue rejected")
		}
		// Dequeue immediately: sojourn 0 < target.
		if c.Dequeue(now) == nil {
			t.Fatal("dequeue returned nil")
		}
		now = now.Add(time.Millisecond)
	}
	if c.Drops != 0 {
		t.Fatalf("CoDel dropped %d packets at zero sojourn", c.Drops)
	}
}

func TestCoDelDropsPersistentQueue(t *testing.T) {
	c := NewCoDel(1000)
	var now sim.Time
	// Fill a standing queue and drain it slowly so that sojourn stays
	// far above the 5 ms target for much longer than the interval.
	for i := 0; i < 500; i++ {
		c.Enqueue(pkt(1500), now)
		now = now.Add(time.Millisecond)
	}
	got := 0
	for i := 0; i < 400; i++ {
		now = now.Add(12 * time.Millisecond) // slow drain: 1500B at 1 Mbit/s
		if p := c.Dequeue(now); p != nil {
			got++
		}
	}
	if c.Drops == 0 {
		t.Fatal("CoDel never dropped despite persistent >5ms sojourn")
	}
	if got == 0 {
		t.Fatal("CoDel starved the link entirely")
	}
}

func TestCoDelOverflowStillBounded(t *testing.T) {
	c := NewCoDel(4)
	var now sim.Time
	acc := 0
	for i := 0; i < 10; i++ {
		if c.Enqueue(pkt(100), now) {
			acc++
		}
	}
	if acc != 4 {
		t.Fatalf("accepted %d, want 4 (physical cap)", acc)
	}
}

func TestCoDelEmptyDequeue(t *testing.T) {
	c := NewCoDel(10)
	if c.Dequeue(0) != nil {
		t.Fatal("dequeue from empty returned packet")
	}
}

func TestCoDelRecoversWhenQueueDrains(t *testing.T) {
	c := NewCoDel(1000)
	var now sim.Time
	for i := 0; i < 100; i++ {
		c.Enqueue(pkt(1500), now)
	}
	// Drain everything with high sojourn to enter dropping state.
	for c.Len() > 0 {
		now = now.Add(12 * time.Millisecond)
		c.Dequeue(now)
	}
	dropsBefore := c.Drops
	// Fresh, fast traffic should not be dropped.
	for i := 0; i < 50; i++ {
		now = now.Add(time.Millisecond)
		c.Enqueue(pkt(1500), now)
		c.Dequeue(now)
	}
	if c.Drops != dropsBefore {
		t.Fatalf("CoDel kept dropping after queue drained: %d -> %d", dropsBefore, c.Drops)
	}
}

func TestREDBelowMinThNoDrops(t *testing.T) {
	r := NewRED(100, sim.NewRNG(1, "red"))
	var now sim.Time
	for i := 0; i < 1000; i++ {
		if !r.Enqueue(pkt(1500), now) {
			t.Fatal("RED dropped below MinTh")
		}
		r.Dequeue(now) // keep instantaneous queue ~0
	}
	if r.EarlyDrops != 0 || r.ForcedDrops != 0 {
		t.Fatalf("drops = %d/%d below MinTh", r.EarlyDrops, r.ForcedDrops)
	}
}

func TestREDDropsUnderSustainedLoad(t *testing.T) {
	r := NewRED(50, sim.NewRNG(2, "red"))
	var now sim.Time
	drops := 0
	// Sustained buildup: enqueue 3 for every dequeue.
	for i := 0; i < 3000; i++ {
		if !r.Enqueue(pkt(1500), now) {
			drops++
		}
		if i%3 == 0 {
			r.Dequeue(now)
		}
	}
	if drops == 0 {
		t.Fatal("RED never dropped under sustained overload")
	}
	if r.Len() > r.CapPackets {
		t.Fatalf("queue exceeded cap: %d > %d", r.Len(), r.CapPackets)
	}
}

func TestREDFIFOOrder(t *testing.T) {
	r := NewRED(100, sim.NewRNG(3, "red"))
	var now sim.Time
	id := uint64(0)
	for i := 0; i < 10; i++ {
		p := pkt(100)
		id++
		p.ID = id
		r.Enqueue(p, now)
	}
	last := uint64(0)
	for {
		p := r.Dequeue(now)
		if p == nil {
			break
		}
		if p.ID <= last {
			t.Fatal("RED violated FIFO order")
		}
		last = p.ID
	}
}

// Both AQMs must satisfy the netem.Queue interface.
var (
	_ netem.Queue = (*CoDel)(nil)
	_ netem.Queue = (*RED)(nil)
)

func TestCoDelOnLink(t *testing.T) {
	eng := sim.New()
	delivered := 0
	s := recvFunc(func(p *netem.Packet) { delivered++ })
	q := NewCoDel(640)
	// 1 Mbit/s uplink — the paper's bloat locus.
	l := netem.NewLink(eng, "up", 1e6, 5*time.Millisecond, q, s)
	// Offer 2 Mbit/s for 4 s: persistent overload.
	for i := 0; i < 670; i++ {
		d := time.Duration(i) * 6 * time.Millisecond
		eng.Schedule(d, func() {
			l.Send(&netem.Packet{Size: 1500})
		})
	}
	eng.Run()
	if q.Drops == 0 {
		t.Fatal("CoDel on an overloaded link never dropped")
	}
	if delivered == 0 {
		t.Fatal("no packets delivered")
	}
}

type recvFunc func(p *netem.Packet)

func (f recvFunc) Receive(p *netem.Packet) { f(p) }
