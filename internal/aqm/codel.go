// Package aqm provides active queue management disciplines. The paper
// motivates its study with the bufferbloat debate that produced CoDel
// (Nichols & Jacobson, "Controlling Queue Delay", ACM Queue 2012) and
// lists AQM evaluation as the natural follow-up; this package supplies
// CoDel and RED as drop-in replacements for the drop-tail bottleneck
// queue so the ablation benchmarks can quantify how much AQM recovers
// of the QoE lost to bloated buffers.
package aqm

import (
	"math"
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
)

// CoDel implements the Controlled Delay AQM (ACM Queue 2012 reference
// pseudocode). Packets whose sojourn time stays above Target for at
// least Interval are dropped at dequeue, with the drop rate increasing
// by the inverse-sqrt control law.
type CoDel struct {
	// Target is the acceptable standing queue delay (default 5 ms).
	Target time.Duration
	// Interval is the sliding measurement window (default 100 ms).
	Interval time.Duration
	// CapPackets bounds the physical queue (drop-tail beyond it).
	CapPackets int
	// Monitor, if non-nil, observes queue events.
	Monitor *netem.QueueMonitor
	// ECN marks ECN-capable (ECT) packets with CE instead of dropping
	// them (RFC 8289 §3); non-ECT packets are still dropped.
	ECN bool

	q     []*netem.Packet
	head  int
	bytes int

	// CoDel state machine.
	dropping      bool
	firstAboveAt  sim.Time
	dropNextAt    sim.Time
	dropCount     int
	lastDropCount int

	// Drops counts AQM (non-overflow) drops.
	Drops uint64
	// Marks counts CE marks applied in place of drops (ECN mode).
	Marks uint64
}

// NewCoDel returns a CoDel queue with the reference parameters
// (target 5 ms, interval 100 ms) and the given physical capacity.
func NewCoDel(capPackets int) *CoDel {
	if capPackets < 1 {
		capPackets = 1
	}
	return &CoDel{
		Target:     5 * time.Millisecond,
		Interval:   100 * time.Millisecond,
		CapPackets: capPackets,
	}
}

// NewCoDelForRate returns a CoDel tuned for a link of the given rate:
// RFC 8289 §4.4 raises the target on slow links, where serializing a
// single MTU already exceeds 5 ms, to 1.5x the MTU transmission time
// (otherwise the queue can never satisfy the target and the control
// law escalates to dropping every packet).
func NewCoDelForRate(capPackets int, rateBps float64) *CoDel {
	c := NewCoDel(capPackets)
	if rateBps > 0 {
		mtuTx := time.Duration(float64(netem.MTU*8) / rateBps * float64(time.Second))
		if t := mtuTx * 3 / 2; t > c.Target {
			c.Target = t
		}
	}
	return c
}

// Enqueue implements netem.Queue.
func (c *CoDel) Enqueue(p *netem.Packet, now sim.Time) bool {
	if c.Len() >= c.CapPackets {
		if c.Monitor != nil {
			c.Monitor.NoteDrop(p, now, c.Len(), c.bytes)
		}
		return false
	}
	p.Enqueued = now
	c.q = append(c.q, p)
	c.bytes += p.Size
	if c.Monitor != nil {
		c.Monitor.NoteEnqueue(p, now, c.Len(), c.bytes)
	}
	return true
}

func (c *CoDel) popHead() *netem.Packet {
	if c.Len() == 0 {
		return nil
	}
	p := c.q[c.head]
	c.q[c.head] = nil
	c.head++
	if c.head == len(c.q) {
		c.q = c.q[:0]
		c.head = 0
	}
	c.bytes -= p.Size
	return p
}

// doDequeue pops the head packet and updates the "sojourn above
// target" tracking, reporting whether the packet should be considered
// for dropping (ok_to_drop in the reference pseudocode).
func (c *CoDel) doDequeue(now sim.Time) (*netem.Packet, bool) {
	p := c.popHead()
	if p == nil {
		c.firstAboveAt = 0
		return nil, false
	}
	sojourn := now.Sub(p.Enqueued)
	if sojourn < c.Target || c.bytes <= netem.MTU {
		c.firstAboveAt = 0
		return p, false
	}
	if c.firstAboveAt == 0 {
		c.firstAboveAt = now.Add(c.Interval)
		return p, false
	}
	return p, now >= c.firstAboveAt
}

// Dequeue implements netem.Queue with the CoDel state machine.
func (c *CoDel) Dequeue(now sim.Time) *netem.Packet {
	p, okToDrop := c.doDequeue(now)
	if p == nil {
		c.dropping = false
		return nil
	}
	if c.dropping {
		if !okToDrop {
			c.dropping = false
		} else if now >= c.dropNextAt {
			for now >= c.dropNextAt && c.dropping {
				if c.ECN && p.ECT {
					// Mark in place of the drop: the control law
					// advances exactly as if p had been dropped, but
					// the packet is delivered carrying CE.
					c.Marks++
					c.dropCount++
					p.CE = true
					c.dropNextAt = c.controlLaw(c.dropNextAt)
					return c.note(p, now)
				}
				c.Drops++
				c.dropCount++
				if c.Monitor != nil {
					c.Monitor.NoteDrop(p, now, c.Len(), c.bytes)
				}
				p.Release()
				var ok bool
				p, ok = c.doDequeue(now)
				if p == nil {
					c.dropping = false
					return nil
				}
				if !ok {
					c.dropping = false
				} else {
					c.dropNextAt = c.controlLaw(c.dropNextAt)
				}
			}
		}
	} else if okToDrop {
		if c.ECN && p.ECT {
			// Enter dropping state by marking instead of dropping.
			c.Marks++
			p.CE = true
			c.dropping = true
			delta := c.dropCount - c.lastDropCount
			c.dropCount = 1
			if delta > 1 && now.Sub(c.dropNextAt) < 16*c.Interval {
				c.dropCount = delta
			}
			c.lastDropCount = c.dropCount
			c.dropNextAt = c.controlLaw(now)
			return c.note(p, now)
		}
		// Enter dropping state: drop this packet and schedule the next.
		c.Drops++
		if c.Monitor != nil {
			c.Monitor.NoteDrop(p, now, c.Len(), c.bytes)
		}
		p.Release()
		p2, _ := c.doDequeue(now)
		c.dropping = true
		// Start closer to the previous rate if we were dropping
		// recently (reference "delta" heuristic).
		delta := c.dropCount - c.lastDropCount
		c.dropCount = 1
		if delta > 1 && now.Sub(c.dropNextAt) < 16*c.Interval {
			c.dropCount = delta
		}
		c.lastDropCount = c.dropCount
		c.dropNextAt = c.controlLaw(now)
		p = p2
		if p == nil {
			c.dropping = false
			return nil
		}
	}
	return c.note(p, now)
}

func (c *CoDel) controlLaw(t sim.Time) sim.Time {
	return t.Add(time.Duration(float64(c.Interval) / math.Sqrt(float64(c.dropCount))))
}

// note feeds the queue monitor for a delivered packet; drops inside the
// CoDel state machine are counted by the monitor as drops.
func (c *CoDel) note(p *netem.Packet, now sim.Time) *netem.Packet {
	if p != nil && c.Monitor != nil {
		c.Monitor.NoteDequeue(p, now, c.Len(), c.bytes)
	}
	return p
}

// Len implements netem.Queue.
func (c *CoDel) Len() int { return len(c.q) - c.head }

// Bytes implements netem.Queue.
func (c *CoDel) Bytes() int { return c.bytes }
