package aqm

import (
	"testing"
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
)

func ectPkt(size int) *netem.Packet {
	p := pkt(size)
	p.ECT = true
	return p
}

// drainUnder simulates a queue drained at the given link rate for the
// given duration while packets arrive at arrivalInterval, returning
// the count delivered and the queue itself for inspection.
func drainUnder(q netem.Queue, arrival, svc time.Duration, dur time.Duration) (delivered int) {
	var now sim.Time
	end := now.Add(dur)
	nextArrival := now
	nextService := now
	for now < end {
		if nextArrival <= nextService {
			now = nextArrival
			q.Enqueue(pkt(1500), now)
			nextArrival = now.Add(arrival)
		} else {
			now = nextService
			if p := q.Dequeue(now); p != nil {
				delivered++
			}
			nextService = now.Add(svc)
		}
	}
	return delivered
}

func TestPIEKeepsLatencyNearTarget(t *testing.T) {
	p := NewPIE(10000, sim.NewRNG(1, "pie"))
	// Arrivals at 2x the service rate: an unmanaged queue would grow
	// without bound; PIE should hold the backlog near its 15 ms
	// target. Service rate: 1500B/6ms = 2 Mbit/s -> 15 ms of queue is
	// ~2.5 packets... use a faster link: 1500B/1.2ms = 10 Mbit/s, so
	// 15 ms target = ~12.5 packets.
	drainUnder(p, 600*time.Microsecond, 1200*time.Microsecond, 20*time.Second)
	// Steady state: queue latency = bytes / rate should be within a
	// few multiples of target, far below the 10000-packet capacity.
	latency := float64(p.Bytes()) / (1500.0 / 0.0012)
	if latency > 0.2 {
		t.Fatalf("PIE standing queue latency %.3fs, want < 0.2s", latency)
	}
	if p.Drops == 0 {
		t.Fatal("PIE never dropped under sustained 2x overload")
	}
}

func TestPIEBurstAllowancePassesShortBurst(t *testing.T) {
	p := NewPIE(10000, sim.NewRNG(2, "pie"))
	var now sim.Time
	// A 100 ms burst at t=0 into an idle queue must not be dropped
	// (MaxBurst is 150 ms).
	accepted := 0
	for i := 0; i < 50; i++ {
		if p.Enqueue(pkt(1500), now) {
			accepted++
		}
		now = now.Add(2 * time.Millisecond)
	}
	if accepted != 50 {
		t.Fatalf("burst allowance failed: only %d/50 accepted", accepted)
	}
}

func TestPIEProbabilityDecaysWhenIdle(t *testing.T) {
	p := NewPIE(1000, sim.NewRNG(3, "pie"))
	drainUnder(p, 600*time.Microsecond, 1200*time.Microsecond, 10*time.Second)
	probLoaded := p.Prob()
	if probLoaded == 0 {
		t.Fatal("no drop probability built up under overload")
	}
	// Drain fully, then let updates run on an empty queue.
	now := sim.Time(10 * time.Second.Nanoseconds())
	for p.Dequeue(now) != nil {
		now = now.Add(time.Millisecond)
	}
	for i := 0; i < 3000; i++ {
		now = now.Add(15 * time.Millisecond)
		p.Dequeue(now) // drives update()
	}
	if p.Prob() >= probLoaded/2 {
		t.Fatalf("probability did not decay: %.4f -> %.4f", probLoaded, p.Prob())
	}
}

func TestPIEECNMarksInsteadOfDropsAtLowProb(t *testing.T) {
	p := NewPIE(10000, sim.NewRNG(4, "pie"))
	p.ECN = true
	var now sim.Time
	end := now.Add(20 * time.Second)
	nextArrival, nextService := now, now
	for now < end {
		if nextArrival <= nextService {
			now = nextArrival
			p.Enqueue(ectPkt(1500), now)
			nextArrival = now.Add(900 * time.Microsecond)
		} else {
			now = nextService
			p.Dequeue(now)
			nextService = now.Add(1200 * time.Microsecond)
		}
	}
	if p.Marks == 0 {
		t.Fatal("ECN-enabled PIE never marked ECT traffic")
	}
}

func TestPIEZeroCapacityClamped(t *testing.T) {
	p := NewPIE(0, sim.NewRNG(5, "pie"))
	if p.CapPackets != 1 {
		t.Fatalf("CapPackets = %d, want 1", p.CapPackets)
	}
}

func TestCoDelECNMarksECTTraffic(t *testing.T) {
	c := NewCoDel(1000)
	c.ECN = true
	var now sim.Time
	for i := 0; i < 500; i++ {
		c.Enqueue(ectPkt(1500), now)
		now = now.Add(time.Millisecond)
	}
	marked, delivered := 0, 0
	for i := 0; i < 400; i++ {
		now = now.Add(12 * time.Millisecond)
		if p := c.Dequeue(now); p != nil {
			delivered++
			if p.CE {
				marked++
			}
		}
	}
	if c.Drops != 0 {
		t.Fatalf("ECN CoDel dropped %d ECT packets", c.Drops)
	}
	if c.Marks == 0 || marked == 0 {
		t.Fatal("ECN CoDel never marked despite persistent queue")
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestCoDelECNStillDropsNonECT(t *testing.T) {
	c := NewCoDel(1000)
	c.ECN = true
	var now sim.Time
	for i := 0; i < 500; i++ {
		c.Enqueue(pkt(1500), now) // non-ECT
		now = now.Add(time.Millisecond)
	}
	for i := 0; i < 400; i++ {
		now = now.Add(12 * time.Millisecond)
		c.Dequeue(now)
	}
	if c.Drops == 0 {
		t.Fatal("ECN CoDel must still drop non-ECT traffic")
	}
	if c.Marks != 0 {
		t.Fatalf("marked %d non-ECT packets", c.Marks)
	}
}

func TestREDECNMarksEarlyDrops(t *testing.T) {
	r := NewRED(100, sim.NewRNG(6, "red"))
	r.ECN = true
	var now sim.Time
	marked := 0
	for i := 0; i < 20000; i++ {
		p := ectPkt(1500)
		if r.Enqueue(p, now) && p.CE {
			marked++
		}
		if i%2 == 0 {
			r.Dequeue(now)
		}
		now = now.Add(100 * time.Microsecond)
	}
	if r.Marks == 0 || marked == 0 {
		t.Fatal("ECN RED never marked")
	}
	if r.EarlyDrops != 0 {
		t.Fatalf("ECN RED early-dropped %d ECT packets", r.EarlyDrops)
	}
}

func TestAREDAdaptsMaxPUpUnderLoad(t *testing.T) {
	r := NewARED(100, sim.NewRNG(7, "ared"))
	initial := r.MaxP
	var now sim.Time
	// Keep the queue persistently above the upper target: enqueue 2
	// for every dequeue.
	for i := 0; i < 100000; i++ {
		r.Enqueue(pkt(1500), now)
		if i%2 == 0 {
			r.Dequeue(now)
		}
		now = now.Add(200 * time.Microsecond)
	}
	if r.MaxP <= initial {
		t.Fatalf("ARED did not raise MaxP under load: %.3f -> %.3f", initial, r.MaxP)
	}
	if r.MaxP > aredMaxP {
		t.Fatalf("MaxP %.3f above bound %.3f", r.MaxP, aredMaxP)
	}
}

func TestAREDDecaysMaxPWhenIdle(t *testing.T) {
	r := NewARED(100, sim.NewRNG(8, "ared"))
	r.MaxP = 0.4
	var now sim.Time
	// Nearly idle queue: enqueue and immediately dequeue.
	for i := 0; i < 50000; i++ {
		r.Enqueue(pkt(1500), now)
		r.Dequeue(now)
		now = now.Add(time.Millisecond)
	}
	if r.MaxP >= 0.4 {
		t.Fatalf("ARED did not decay MaxP when idle: still %.3f", r.MaxP)
	}
	if r.MaxP < aredMinP {
		t.Fatalf("MaxP %.4f below bound %.4f", r.MaxP, aredMinP)
	}
}

func flowPkt(size int, srcPort uint16) *netem.Packet {
	return &netem.Packet{
		Flow: netem.Flow{
			Proto: netem.ProtoTCP,
			Src:   netem.Addr{Node: 1, Port: srcPort},
			Dst:   netem.Addr{Node: 2, Port: 80},
		},
		Size: size,
	}
}

func TestFQCoDelIsolatesSparseFlow(t *testing.T) {
	fq := NewFQCoDel(1000)
	var now sim.Time
	// A bulk flow floods the queue; a sparse flow sends one small
	// packet every 20 ms. The sparse flow's packets must come out
	// promptly (new-flow priority + DRR), not behind hundreds of bulk
	// packets.
	var sparseDelays []time.Duration
	nextSparse := now
	svc := 12 * time.Millisecond // 1 Mbit/s for 1500B
	nextSvc := now
	for now < sim.Time(10*time.Second.Nanoseconds()) {
		if nextSparse <= nextSvc {
			now = nextSparse
			fq.Enqueue(flowPkt(100, 5060), now)
			// Bulk arrivals bunched with the sparse clock for
			// simplicity: 5 full-size packets each tick.
			for i := 0; i < 5; i++ {
				fq.Enqueue(flowPkt(1500, 8080), now)
			}
			nextSparse = now.Add(20 * time.Millisecond)
		} else {
			now = nextSvc
			if p := fq.Dequeue(now); p != nil && p.Flow.Src.Port == 5060 {
				sparseDelays = append(sparseDelays, now.Sub(p.Enqueued))
			}
			nextSvc = now.Add(svc)
		}
	}
	if len(sparseDelays) == 0 {
		t.Fatal("sparse flow starved entirely")
	}
	var worst time.Duration
	for _, d := range sparseDelays {
		if d > worst {
			worst = d
		}
	}
	// A shared drop-tail queue of hundreds of bulk packets at 1 Mbit/s
	// would delay the sparse flow by seconds; flow isolation keeps it
	// within a few service times.
	if worst > 200*time.Millisecond {
		t.Fatalf("sparse flow worst-case delay %v under FQ-CoDel", worst)
	}
}

func TestFQCoDelOverflowDropsFromFattestFlow(t *testing.T) {
	fq := NewFQCoDel(10)
	var now sim.Time
	// Fill with bulk, then offer a sparse packet: the sparse packet
	// must be admitted and a bulk packet dropped.
	for i := 0; i < 15; i++ {
		fq.Enqueue(flowPkt(1500, 8080), now)
	}
	if fq.Len() != 10 {
		t.Fatalf("len=%d, want capped at 10", fq.Len())
	}
	before := fq.OverflowDrops
	fq.Enqueue(flowPkt(100, 5060), now)
	if fq.OverflowDrops != before+1 {
		t.Fatal("overflow did not drop from fattest flow")
	}
	// The sparse packet must still be queued: dequeue everything and
	// look for it.
	foundSparse := false
	for {
		p := fq.Dequeue(now)
		if p == nil {
			break
		}
		if p.Flow.Src.Port == 5060 {
			foundSparse = true
		}
	}
	if !foundSparse {
		t.Fatal("sparse packet was evicted by bulk overflow")
	}
}

func TestFQCoDelCoDelDropsPersistentQueue(t *testing.T) {
	fq := NewFQCoDel(10000)
	var now sim.Time
	for i := 0; i < 500; i++ {
		fq.Enqueue(flowPkt(1500, 8080), now)
		now = now.Add(time.Millisecond)
	}
	got := 0
	for i := 0; i < 400; i++ {
		now = now.Add(12 * time.Millisecond)
		if fq.Dequeue(now) != nil {
			got++
		}
	}
	if fq.Drops == 0 {
		t.Fatal("per-flow CoDel never dropped a persistent queue")
	}
	if got == 0 {
		t.Fatal("FQ-CoDel starved the link")
	}
}

func TestFQCoDelConservation(t *testing.T) {
	fq := NewFQCoDel(100)
	var now sim.Time
	enq, drop, deq := 0, 0, 0
	mon := &netem.QueueMonitor{Name: "fq"}
	fq.Monitor = mon
	for i := 0; i < 5000; i++ {
		fq.Enqueue(flowPkt(1500, uint16(8000+i%7)), now)
		enq++
		if i%3 == 0 {
			if fq.Dequeue(now) != nil {
				deq++
			}
		}
		now = now.Add(300 * time.Microsecond)
	}
	for fq.Dequeue(now) != nil {
		deq++
	}
	drop = int(fq.Drops)
	if enq != deq+drop {
		t.Fatalf("conservation violated: enq=%d deq=%d drop=%d", enq, deq, drop)
	}
	if fq.Len() != 0 || fq.Bytes() != 0 {
		t.Fatalf("residual len=%d bytes=%d after drain", fq.Len(), fq.Bytes())
	}
}

func TestFQCoDelECNMarks(t *testing.T) {
	fq := NewFQCoDel(10000)
	fq.ECN = true
	var now sim.Time
	for i := 0; i < 500; i++ {
		p := flowPkt(1500, 8080)
		p.ECT = true
		fq.Enqueue(p, now)
		now = now.Add(time.Millisecond)
	}
	for i := 0; i < 400; i++ {
		now = now.Add(12 * time.Millisecond)
		fq.Dequeue(now)
	}
	if fq.Marks == 0 {
		t.Fatal("ECN FQ-CoDel never marked")
	}
	if fq.Drops != 0 {
		t.Fatalf("ECN FQ-CoDel dropped %d ECT packets (overflow aside)", fq.Drops)
	}
}
