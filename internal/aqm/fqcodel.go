package aqm

import (
	"hash/fnv"
	"math"
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
)

// FQCoDel implements the FlowQueue-CoDel packet scheduler and AQM
// (RFC 8290) — the discipline that actually shipped in home routers as
// the fix for the access-uplink bufferbloat the paper studies. Flows
// are hashed into sub-queues; a deficit round-robin scheduler with a
// new-flow priority list isolates sparse flows (VoIP, DNS, TCP ACKs)
// from bulk transfers, and each sub-queue runs its own CoDel instance.
//
// Against the paper's Figure 7b worst case (bloated uplink, long-lived
// upload flows) FQ-CoDel attacks both problems at once: CoDel bounds
// the standing queue, and flow isolation keeps the VoIP packets from
// waiting behind bulk data at all.
type FQCoDel struct {
	// Flows is the number of hash buckets (RFC default 1024; scaled
	// down here to the simulator's population).
	Flows int
	// Quantum is the DRR byte quantum per scheduling round (one MTU).
	Quantum int
	// CapPackets bounds the total buffered packets across sub-queues.
	CapPackets int
	// Target and Interval parameterize the per-flow CoDel instances.
	Target, Interval time.Duration
	// ECN marks ECT packets instead of dropping (per-flow CoDel mode).
	ECN bool
	// Monitor, if non-nil, observes aggregate queue events.
	Monitor *netem.QueueMonitor

	buckets  []*fqFlow
	newFlows []*fqFlow
	oldFlows []*fqFlow
	pkts     int
	bytes    int

	// Drops counts CoDel and overflow drops; Marks counts CE marks.
	Drops, Marks uint64
	// OverflowDrops counts packets head-dropped from the fattest flow
	// when the shared buffer is full.
	OverflowDrops uint64
}

// fqFlow is one hash bucket: a FIFO of packets plus CoDel state and a
// DRR deficit.
type fqFlow struct {
	q       []*netem.Packet
	head    int
	bytes   int
	deficit int
	active  bool // on newFlows or oldFlows list

	// Per-flow CoDel state (RFC 8290 §4.2).
	dropping      bool
	firstAboveAt  sim.Time
	dropNextAt    sim.Time
	dropCount     int
	lastDropCount int
}

func (f *fqFlow) len() int { return len(f.q) - f.head }

func (f *fqFlow) push(p *netem.Packet) {
	f.q = append(f.q, p)
	f.bytes += p.Size
}

func (f *fqFlow) pop() *netem.Packet {
	if f.len() == 0 {
		return nil
	}
	p := f.q[f.head]
	f.q[f.head] = nil
	f.head++
	if f.head == len(f.q) {
		f.q = f.q[:0]
		f.head = 0
	}
	f.bytes -= p.Size
	return p
}

// NewFQCoDelForRate returns an FQ-CoDel tuned for a link of the given
// rate, raising the CoDel target on slow links exactly as
// NewCoDelForRate does (RFC 8290 inherits RFC 8289's guidance).
func NewFQCoDelForRate(capPackets int, rateBps float64) *FQCoDel {
	fq := NewFQCoDel(capPackets)
	if rateBps > 0 {
		mtuTx := time.Duration(float64(netem.MTU*8) / rateBps * float64(time.Second))
		if t := mtuTx * 3 / 2; t > fq.Target {
			fq.Target = t
		}
	}
	return fq
}

// NewFQCoDel returns an FQ-CoDel queue with RFC defaults (5 ms target,
// 100 ms interval, one-MTU quantum) over 64 hash buckets and the given
// total packet capacity.
func NewFQCoDel(capPackets int) *FQCoDel {
	if capPackets < 1 {
		capPackets = 1
	}
	fq := &FQCoDel{
		Flows:      64,
		Quantum:    netem.MTU,
		CapPackets: capPackets,
		Target:     5 * time.Millisecond,
		Interval:   100 * time.Millisecond,
	}
	fq.buckets = make([]*fqFlow, fq.Flows)
	for i := range fq.buckets {
		fq.buckets[i] = &fqFlow{}
	}
	return fq
}

// bucket hashes a packet's flow tuple to its sub-queue.
func (fq *FQCoDel) bucket(p *netem.Packet) *fqFlow {
	h := fnv.New32a()
	var b [13]byte
	b[0] = byte(p.Flow.Proto)
	put32 := func(off int, v uint32) {
		b[off] = byte(v >> 24)
		b[off+1] = byte(v >> 16)
		b[off+2] = byte(v >> 8)
		b[off+3] = byte(v)
	}
	put32(1, uint32(p.Flow.Src.Node)<<16|uint32(p.Flow.Src.Port))
	put32(5, uint32(p.Flow.Dst.Node)<<16|uint32(p.Flow.Dst.Port))
	h.Write(b[:9])
	return fq.buckets[h.Sum32()%uint32(len(fq.buckets))]
}

// Enqueue implements netem.Queue. On overflow it drops from the head
// of the fattest sub-queue (RFC 8290 §4.1.2), so a bulk flow cannot
// push out a sparse one.
func (fq *FQCoDel) Enqueue(p *netem.Packet, now sim.Time) bool {
	f := fq.bucket(p)
	p.Enqueued = now
	f.push(p)
	fq.pkts++
	fq.bytes += p.Size
	if !f.active {
		f.active = true
		f.deficit = fq.Quantum
		fq.newFlows = append(fq.newFlows, f)
	}
	if fq.Monitor != nil {
		fq.Monitor.NoteEnqueue(p, now, fq.pkts, fq.bytes)
	}
	if fq.pkts > fq.CapPackets {
		fq.dropFromFattest(now)
		// The offered packet was admitted; the head of the largest
		// queue paid instead. Report acceptance either way.
	}
	return true
}

// dropFromFattest head-drops one packet from the sub-queue holding the
// most bytes.
func (fq *FQCoDel) dropFromFattest(now sim.Time) {
	var fat *fqFlow
	for _, f := range fq.buckets {
		if fat == nil || f.bytes > fat.bytes {
			fat = f
		}
	}
	if fat == nil || fat.len() == 0 {
		return
	}
	p := fat.pop()
	fq.pkts--
	fq.bytes -= p.Size
	fq.OverflowDrops++
	fq.Drops++
	if fq.Monitor != nil {
		fq.Monitor.NoteDrop(p, now, fq.pkts, fq.bytes)
	}
	p.Release()
}

// codelDequeue runs the per-flow CoDel state machine and returns the
// next deliverable packet from flow f (nil if the flow emptied).
func (fq *FQCoDel) codelDequeue(f *fqFlow, now sim.Time) *netem.Packet {
	pop := func() (*netem.Packet, bool) {
		p := f.pop()
		if p == nil {
			f.firstAboveAt = 0
			return nil, false
		}
		fq.pkts--
		fq.bytes -= p.Size
		sojourn := now.Sub(p.Enqueued)
		if sojourn < fq.Target || f.bytes <= netem.MTU {
			f.firstAboveAt = 0
			return p, false
		}
		if f.firstAboveAt == 0 {
			f.firstAboveAt = now.Add(fq.Interval)
			return p, false
		}
		return p, now >= f.firstAboveAt
	}
	controlLaw := func(t sim.Time) sim.Time {
		return t.Add(time.Duration(float64(fq.Interval) / math.Sqrt(float64(f.dropCount))))
	}

	p, okToDrop := pop()
	if p == nil {
		f.dropping = false
		return nil
	}
	if f.dropping {
		if !okToDrop {
			f.dropping = false
		} else {
			for now >= f.dropNextAt && f.dropping {
				if fq.ECN && p.ECT {
					fq.Marks++
					f.dropCount++
					p.CE = true
					f.dropNextAt = controlLaw(f.dropNextAt)
					return p
				}
				fq.Drops++
				f.dropCount++
				if fq.Monitor != nil {
					fq.Monitor.NoteDrop(p, now, fq.pkts, fq.bytes)
				}
				p.Release()
				var ok bool
				p, ok = pop()
				if p == nil {
					f.dropping = false
					return nil
				}
				if !ok {
					f.dropping = false
				} else {
					f.dropNextAt = controlLaw(f.dropNextAt)
				}
			}
		}
	} else if okToDrop {
		f.dropping = true
		delta := f.dropCount - f.lastDropCount
		f.dropCount = 1
		if delta > 1 && now.Sub(f.dropNextAt) < 16*fq.Interval {
			f.dropCount = delta
		}
		f.lastDropCount = f.dropCount
		f.dropNextAt = controlLaw(now)
		if fq.ECN && p.ECT {
			fq.Marks++
			p.CE = true
			return p
		}
		fq.Drops++
		if fq.Monitor != nil {
			fq.Monitor.NoteDrop(p, now, fq.pkts, fq.bytes)
		}
		p.Release()
		p, _ = pop()
		if p == nil {
			f.dropping = false
			return nil
		}
	}
	return p
}

// Dequeue implements netem.Queue with the RFC 8290 scheduler: serve
// new flows first, rotating exhausted or negative-deficit flows to the
// old list.
func (fq *FQCoDel) Dequeue(now sim.Time) *netem.Packet {
	for {
		var f *fqFlow
		fromNew := false
		switch {
		case len(fq.newFlows) > 0:
			f = fq.newFlows[0]
			fromNew = true
		case len(fq.oldFlows) > 0:
			f = fq.oldFlows[0]
		default:
			return nil
		}
		if f.deficit <= 0 {
			f.deficit += fq.Quantum
			// Rotate to the back of the old list.
			if fromNew {
				fq.newFlows = fq.newFlows[1:]
			} else {
				fq.oldFlows = fq.oldFlows[1:]
			}
			fq.oldFlows = append(fq.oldFlows, f)
			continue
		}
		p := fq.codelDequeue(f, now)
		if p == nil {
			// Flow emptied: a new flow moves to the old list (so a
			// re-arriving packet does not re-earn priority within the
			// same busy period); an old flow is removed.
			if fromNew {
				fq.newFlows = fq.newFlows[1:]
				fq.oldFlows = append(fq.oldFlows, f)
			} else {
				fq.oldFlows = fq.oldFlows[1:]
				f.active = false
			}
			continue
		}
		f.deficit -= p.Size
		if fq.Monitor != nil {
			fq.Monitor.NoteDequeue(p, now, fq.pkts, fq.bytes)
		}
		return p
	}
}

// Len implements netem.Queue.
func (fq *FQCoDel) Len() int { return fq.pkts }

// Bytes implements netem.Queue.
func (fq *FQCoDel) Bytes() int { return fq.bytes }
