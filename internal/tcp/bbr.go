package tcp

import (
	"math"
	"time"

	"bufferqoe/internal/sim"
)

// Pacer is the optional pacing extension of CongestionControl:
// algorithms that pace return the spacing to the next new-data segment
// after sending one of the given size. Zero means "send immediately".
// The connection checks for the interface once at construction, so the
// unpaced fast path costs a single nil comparison.
type Pacer interface {
	PacingInterval(c *Conn, bytes int64) time.Duration
}

// BBRLite is a paced, model-based congestion control in the spirit of
// BBR (Cardwell et al. 2016), scoped to what the buffer-sizing
// experiments need: it estimates the path's bottleneck bandwidth
// (windowed max of per-round delivery rate) and round-trip propagation
// delay (windowed min RTT), paces transmissions at pacing_gain x
// estimated bandwidth, and caps inflight at cwnd_gain x BDP. Unlike
// loss-based algorithms it does not interpret loss as a congestion
// signal, which is exactly why it needs far less buffer (Spang et al.,
// "Updating the Theory of Buffer Sizing"): the standing queue is
// bounded by the model, not by the buffer's drop point.
//
// Differences from real BBR, deliberate for model economy: no
// ProbeRTT phase (cells are short and rtProp re-samples on any lower
// RTT), no explicit ack aggregation compensation, and the delivery
// rate is measured from cumulative-ack progress per round rather than
// per-packet delivery rate samples. All state is deterministic — no
// randomized cycle phase.
type BBRLite struct {
	// Bottleneck bandwidth filter: per-round delivery-rate samples in
	// bytes/sec, windowed max over the last bbrBWFilterLen rounds.
	bwSamples [bbrBWFilterLen]float64
	bwIdx     int

	// RTprop: windowed min of the connection's RTT estimate.
	rtProp      time.Duration
	rtPropStamp sim.Time

	// Round trips, delimited by sndUna crossing nextRoundSeq.
	nextRoundSeq int64
	roundStart   sim.Time
	roundBytes   int64

	// State machine: startup -> drain -> probe-bw.
	mode         int
	fullBW       float64
	fullBWRounds int
	cycleIdx     int
	cycleStamp   sim.Time
	pacingGain   float64
}

const (
	bbrStartup = iota
	bbrDrain
	bbrProbeBW
)

const (
	// bbrBWFilterLen is the max-filter window in rounds (BBR uses 10).
	bbrBWFilterLen = 10
	// bbrStartupGain is 2/ln2, the slow-start-equivalent pacing gain.
	bbrStartupGain = 2.885
	// bbrCwndGain bounds inflight at 2x the estimated BDP, allowing
	// full utilization with delayed/stretched ACKs.
	bbrCwndGain = 2.0
	// bbrRTPropWindow expires a stale min-RTT estimate.
	bbrRTPropWindow = 10 * time.Second
	// bbrMinCwndSegs keeps at least 4 segments in flight so the ACK
	// clock never stalls.
	bbrMinCwndSegs = 4
)

// bbrCycleGains is the probe-bw pacing-gain cycle: probe above the
// estimate for one RTprop, drain the probe's queue, then cruise.
var bbrCycleGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// NewBBRLite returns a BBRLite congestion control instance (for
// Config.NewCC or DialCC).
func NewBBRLite() CongestionControl { return &BBRLite{} }

// Name implements CongestionControl.
func (b *BBRLite) Name() string { return "bbr" }

// OnInit implements CongestionControl.
func (b *BBRLite) OnInit(c *Conn) {
	*b = BBRLite{
		mode:       bbrStartup,
		pacingGain: bbrStartupGain,
		roundStart: c.eng.Now(),
	}
}

// maxBW returns the current bottleneck bandwidth estimate in
// bytes/sec (0 until the first round completes).
func (b *BBRLite) maxBW() float64 {
	bw := 0.0
	for _, s := range b.bwSamples {
		if s > bw {
			bw = s
		}
	}
	return bw
}

// bdp returns the estimated bandwidth-delay product in bytes (0 until
// both estimates exist).
func (b *BBRLite) bdp() float64 {
	if b.rtProp <= 0 {
		return 0
	}
	return b.maxBW() * b.rtProp.Seconds()
}

// targetCwnd returns the model's inflight cap in bytes.
func (b *BBRLite) targetCwnd(c *Conn) float64 {
	mss := float64(c.cfg.MSS)
	floor := bbrMinCwndSegs * mss
	bdp := b.bdp()
	if bdp <= 0 {
		return math.Max(c.cwnd, floor)
	}
	gain := bbrCwndGain
	if b.mode == bbrStartup {
		gain = bbrStartupGain
	}
	return math.Max(gain*bdp, floor)
}

// OnAck implements CongestionControl.
func (b *BBRLite) OnAck(c *Conn, acked int64, now sim.Time) {
	mss := float64(c.cfg.MSS)
	b.roundBytes += acked

	// RTprop: track the minimum RTT estimate, expiring stale minima so
	// a route change (or early srtt inflation) cannot pin the model.
	if c.srtt > 0 {
		if b.rtProp <= 0 || c.srtt <= b.rtProp || now.Sub(b.rtPropStamp) > bbrRTPropWindow {
			b.rtProp = c.srtt
			b.rtPropStamp = now
		}
	}

	// Round boundary: the data outstanding when the round started has
	// been cumulatively acked.
	if c.sndUna >= b.nextRoundSeq {
		if dur := now.Sub(b.roundStart); dur > 0 && b.roundBytes > 0 {
			rate := float64(b.roundBytes) / dur.Seconds()
			b.bwIdx = (b.bwIdx + 1) % bbrBWFilterLen
			b.bwSamples[b.bwIdx] = rate
			b.onRoundEnd(c, now)
		}
		b.nextRoundSeq = c.sndNxt
		b.roundStart = now
		b.roundBytes = 0
	}

	// Drain ends once the startup overshoot has left the queue.
	if b.mode == bbrDrain && c.inflight() <= b.bdp() {
		b.enterProbeBW(now)
	}

	// Probe-bw gain cycling: one phase per RTprop.
	if b.mode == bbrProbeBW && b.rtProp > 0 && now.Sub(b.cycleStamp) >= b.rtProp {
		b.cycleIdx = (b.cycleIdx + 1) % len(bbrCycleGains)
		b.pacingGain = bbrCycleGains[b.cycleIdx]
		b.cycleStamp = now
	}

	// Inflight cap: the model window, not an AIMD ramp. Before the
	// first bandwidth sample exists, grow like slow start so the very
	// first round can fill the pipe.
	if b.bdp() > 0 {
		c.cwnd = b.targetCwnd(c)
	} else {
		c.cwnd += math.Min(float64(acked), mss)
	}
}

// onRoundEnd advances the startup full-pipe detector at round
// boundaries: bandwidth must keep growing >=25% per round or the pipe
// is considered full after three flat rounds.
func (b *BBRLite) onRoundEnd(c *Conn, now sim.Time) {
	bw := b.maxBW()
	if bw > b.fullBW*1.25 {
		b.fullBW = bw
		b.fullBWRounds = 0
		return
	}
	b.fullBWRounds++
	if b.mode == bbrStartup && b.fullBWRounds >= 3 {
		b.mode = bbrDrain
		b.pacingGain = 1 / bbrStartupGain
	}
}

func (b *BBRLite) enterProbeBW(now sim.Time) {
	b.mode = bbrProbeBW
	b.cycleIdx = 0
	b.pacingGain = bbrCycleGains[0]
	b.cycleStamp = now
}

// OnPacketLoss implements CongestionControl. BBR is loss-agnostic:
// losses do not change the model's estimates. The connection's shared
// recovery logic deflates cwnd to ssthresh, so pointing ssthresh at
// the model target makes recovery a no-op for the window (only the
// holes are repaired).
func (b *BBRLite) OnPacketLoss(c *Conn, now sim.Time) {
	mss := float64(c.cfg.MSS)
	if bdp := b.bdp(); bdp > 0 {
		c.ssthresh = math.Max(bbrCwndGain*bdp, bbrMinCwndSegs*mss)
	} else {
		c.ssthresh = math.Max(c.inflight()/2, bbrMinCwndSegs*mss)
	}
}

// OnTimeout implements CongestionControl. The connection collapses
// cwnd to one segment for the go-back-N resend; ssthresh is set to the
// model target so the very next acks restore the model window.
func (b *BBRLite) OnTimeout(c *Conn, now sim.Time) {
	b.OnPacketLoss(c, now)
}

// PacingInterval implements Pacer: space segments at pacing_gain x
// estimated bandwidth. Before the first bandwidth sample, pace off
// cwnd/srtt (the rate slow start would achieve), so even the opening
// burst is smoothed — the property that lets shallow buffers survive.
func (b *BBRLite) PacingInterval(c *Conn, bytes int64) time.Duration {
	rate := b.pacingGain * b.maxBW()
	if rate <= 0 {
		if c.srtt <= 0 || c.cwnd <= 0 {
			return 0
		}
		rate = b.pacingGain * c.cwnd / c.srtt.Seconds()
	}
	if rate <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / rate * float64(time.Second))
}
