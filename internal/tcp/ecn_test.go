package tcp

import (
	"testing"
	"time"

	"bufferqoe/internal/aqm"
	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
)

// newECNNet builds a two-host net whose server->client direction is
// managed by an ECN-marking CoDel bottleneck.
func newECNNet(cfg Config) (*testNet, *aqm.CoDel) {
	eng := sim.New()
	nw := netem.NewNetwork(eng)
	c := nw.NewNode("client")
	s := nw.NewNode("server")
	codel := aqm.NewCoDel(1000)
	codel.ECN = true
	sc := netem.NewLink(eng, "s->c", 5e6, 20*time.Millisecond, codel, c)
	cs := netem.NewLink(eng, "c->s", 5e6, 20*time.Millisecond, netem.NewDropTail(1000), s)
	c.SetRoute(s.ID, cs)
	s.SetRoute(c.ID, sc)
	return &testNet{
		eng: eng, nw: nw, client: c, server: s, cs: cs, sc: sc,
		cStack: NewStack(c, cfg),
		sStack: NewStack(s, cfg),
	}, codel
}

func TestECNNegotiatedWhenBothSidesEnable(t *testing.T) {
	tn, _ := newECNNet(Config{ECN: true})
	cc, sc, done := tn.transfer(t, 50000, 10*time.Second)
	if done == 0 {
		t.Fatal("transfer never completed")
	}
	if !cc.ecnOK || !sc.ecnOK {
		t.Fatalf("ECN not negotiated: client=%v server=%v", cc.ecnOK, sc.ecnOK)
	}
}

func TestECNNotNegotiatedWhenOneSideDisables(t *testing.T) {
	eng := sim.New()
	nw := netem.NewNetwork(eng)
	c := nw.NewNode("client")
	s := nw.NewNode("server")
	nw.Connect(c, s, 10e6, 10*time.Millisecond, 100)
	cStack := NewStack(c, Config{ECN: true})
	sStack := NewStack(s, Config{}) // server without ECN
	var serverConn *Conn
	sStack.Listen(80, func(conn *Conn) {
		serverConn = conn
		conn.OnEstablished = func() { conn.Send(1000); conn.CloseWrite() }
	})
	clientConn := cStack.Dial(s.Addr(80))
	eng.RunUntil(sim.Time(2 * time.Second.Nanoseconds()))
	if clientConn.ecnOK || serverConn.ecnOK {
		t.Fatal("ECN negotiated despite server opt-out")
	}
}

func TestECNReducesWindowWithoutRetransmission(t *testing.T) {
	tn, codel := newECNNet(Config{ECN: true})
	// A long transfer through the 5 Mbit/s CoDel bottleneck: CoDel
	// marks the self-induced standing queue, and the sender must back
	// off via ECE with no packet loss at all.
	var serverConn *Conn
	tn.sStack.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnEstablished = func() { c.SendInfinite() }
	})
	tn.cStack.Dial(tn.server.Addr(80))
	tn.eng.RunUntil(sim.Time(20 * time.Second.Nanoseconds()))

	if codel.Marks == 0 {
		t.Fatal("CoDel never marked: no standing queue built")
	}
	if codel.Drops != 0 {
		t.Fatalf("CoDel dropped %d packets despite ECN", codel.Drops)
	}
	if serverConn.Stat.ECNReductions == 0 {
		t.Fatal("sender never reduced on ECN-Echo")
	}
	if serverConn.Stat.Retransmissions != 0 {
		t.Fatalf("%d retransmissions in a lossless ECN run", serverConn.Stat.Retransmissions)
	}
}

func TestECNKeepsQueueDelayNearCoDelTarget(t *testing.T) {
	tn, codel := newECNNet(Config{ECN: true})
	mon := &netem.QueueMonitor{Name: "codel"}
	codel.Monitor = mon
	tn.sStack.Listen(80, func(c *Conn) {
		c.OnEstablished = func() { c.SendInfinite() }
	})
	tn.cStack.Dial(tn.server.Addr(80))
	tn.eng.RunUntil(sim.Time(20 * time.Second.Nanoseconds()))
	// The standing queue should sit near CoDel's 5 ms target, far
	// below what a 1000-packet drop-tail would allow (1000 pkts at
	// 5 Mbit/s = 2.4 s).
	if d := mon.MeanDelayMs(); d > 50 {
		t.Fatalf("mean queue delay %.1f ms under ECN CoDel, want < 50", d)
	}
}

func TestECNThroughputComparableToLossBased(t *testing.T) {
	run := func(ecn bool) int64 {
		tn, _ := newECNNet(Config{ECN: ecn})
		var sc *Conn
		tn.sStack.Listen(80, func(c *Conn) {
			sc = c
			c.OnEstablished = func() { c.SendInfinite() }
		})
		tn.cStack.Dial(tn.server.Addr(80))
		tn.eng.RunUntil(sim.Time(15 * time.Second.Nanoseconds()))
		return sc.Stat.BytesAcked
	}
	with, without := run(true), run(false)
	// ECN should achieve at least ~80% of loss-based goodput (it is
	// usually slightly better: no retransmitted bytes).
	if with < without*8/10 {
		t.Fatalf("ECN goodput %d vs loss-based %d", with, without)
	}
}

func TestECNPureAcksNotECT(t *testing.T) {
	tn, _ := newECNNet(Config{ECN: true})
	ectData, ectAcks := 0, 0
	tn.cs.Tap = func(p *netem.Packet, at sim.Time) {
		seg := p.Payload.(*Segment)
		if seg.Len == 0 && p.ECT {
			ectAcks++
		}
	}
	tn.sc.Tap = func(p *netem.Packet, at sim.Time) {
		seg := p.Payload.(*Segment)
		if seg.Len > 0 && p.ECT {
			ectData++
		}
	}
	tn.transfer(t, 100000, 10*time.Second)
	if ectAcks != 0 {
		t.Fatalf("%d pure ACKs marked ECT", ectAcks)
	}
	if ectData == 0 {
		t.Fatal("no data packets marked ECT on an ECN connection")
	}
}

func TestECNCWRStopsEcho(t *testing.T) {
	tn, _ := newECNNet(Config{ECN: true})
	sawCWR := false
	tn.sc.Tap = func(p *netem.Packet, at sim.Time) {
		if seg := p.Payload.(*Segment); seg.CWR {
			sawCWR = true
		}
	}
	var sc *Conn
	tn.sStack.Listen(80, func(c *Conn) {
		sc = c
		c.OnEstablished = func() { c.SendInfinite() }
	})
	tn.cStack.Dial(tn.server.Addr(80))
	tn.eng.RunUntil(sim.Time(20 * time.Second.Nanoseconds()))
	if sc.Stat.ECNReductions == 0 {
		t.Skip("no marks generated in this configuration")
	}
	if !sawCWR {
		t.Fatal("sender reduced on ECE but never sent CWR")
	}
}
