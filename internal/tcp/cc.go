package tcp

import (
	"math"

	"bufferqoe/internal/sim"
)

// CongestionControl is the pluggable congestion avoidance algorithm.
// The connection owns cwnd/ssthresh; the algorithm mutates them on
// acknowledgment and loss events. Slow start, fast retransmit entry and
// recovery bookkeeping are shared connection logic.
type CongestionControl interface {
	// Name identifies the algorithm ("reno", "cubic").
	Name() string
	// OnInit is called once when the connection is established.
	OnInit(c *Conn)
	// OnAck is called for every new cumulative acknowledgment of
	// acked bytes while not in fast recovery.
	OnAck(c *Conn, acked int64, now sim.Time)
	// OnPacketLoss is called on entry to fast recovery; it must set
	// ssthresh and cwnd for the multiplicative decrease.
	OnPacketLoss(c *Conn, now sim.Time)
	// OnTimeout is called on an RTO; it must set ssthresh (cwnd is
	// reset to one segment by the connection).
	OnTimeout(c *Conn, now sim.Time)
}

// Reno is classic TCP Reno AIMD: slow start below ssthresh, +1 MSS per
// RTT above it, halve on loss. It matches the backbone hosts of the
// paper's testbed ("the background traffic uses TCP-Reno in the
// backbone").
type Reno struct{}

// Name implements CongestionControl.
func (Reno) Name() string { return "reno" }

// OnInit implements CongestionControl.
func (Reno) OnInit(c *Conn) {}

// OnAck implements CongestionControl.
func (Reno) OnAck(c *Conn, acked int64, now sim.Time) {
	mss := float64(c.cfg.MSS)
	if c.cwnd < c.ssthresh {
		// Slow start: one MSS per acked segment (appropriate byte
		// counting capped at MSS per ACK).
		c.cwnd += math.Min(float64(acked), mss)
	} else {
		// Congestion avoidance: ~one MSS per RTT.
		c.cwnd += mss * mss / c.cwnd
	}
}

// OnPacketLoss implements CongestionControl.
func (Reno) OnPacketLoss(c *Conn, now sim.Time) {
	mss := float64(c.cfg.MSS)
	c.ssthresh = math.Max(c.inflight()/2, 2*mss)
	c.cwnd = c.ssthresh
}

// OnTimeout implements CongestionControl.
func (Reno) OnTimeout(c *Conn, now sim.Time) {
	mss := float64(c.cfg.MSS)
	c.ssthresh = math.Max(c.inflight()/2, 2*mss)
}

// Cubic implements TCP CUBIC (Ha, Rhee, Xu 2008): window growth is a
// cubic function of time since the last decrease, with a TCP-friendly
// region for low-BDP paths. The paper's access testbed hosts ran
// BIC/CUBIC; CUBIC is the successor and the variant modeled here.
type Cubic struct {
	wMax       float64
	epochStart sim.Time
	originK    float64
	wTCP       float64
	started    bool
}

// Cubic constants from the paper's era Linux implementation.
const (
	cubicC    = 0.4
	cubicBeta = 0.7 // multiplicative decrease factor
)

// Name implements CongestionControl.
func (cu *Cubic) Name() string { return "cubic" }

// OnInit implements CongestionControl.
func (cu *Cubic) OnInit(c *Conn) {
	cu.started = false
}

// OnAck implements CongestionControl.
func (cu *Cubic) OnAck(c *Conn, acked int64, now sim.Time) {
	mss := float64(c.cfg.MSS)
	if c.cwnd < c.ssthresh {
		c.cwnd += math.Min(float64(acked), mss)
		return
	}
	if !cu.started {
		cu.started = true
		cu.epochStart = now
		if cu.wMax < c.cwnd {
			cu.wMax = c.cwnd
		}
		cu.originK = math.Cbrt(cu.wMax / mss * (1 - cubicBeta) / cubicC)
		cu.wTCP = c.cwnd
	}
	t := now.Sub(cu.epochStart).Seconds()
	// Cubic target window in segments, then bytes.
	wCubic := (cubicC*math.Pow(t-cu.originK, 3) + cu.wMax/mss) * mss
	// TCP-friendly estimate grows like Reno.
	rtt := c.srtt.Seconds()
	if rtt <= 0 {
		rtt = 0.1
	}
	cu.wTCP += 3 * (1 - cubicBeta) / (1 + cubicBeta) * float64(acked) / c.cwnd * mss
	target := math.Max(wCubic, cu.wTCP)
	if target > c.cwnd {
		// Approach the target over one RTT.
		c.cwnd += (target - c.cwnd) / (c.cwnd / mss)
	} else {
		c.cwnd += mss * mss / (100 * c.cwnd) // minimal growth
	}
}

// OnPacketLoss implements CongestionControl.
func (cu *Cubic) OnPacketLoss(c *Conn, now sim.Time) {
	mss := float64(c.cfg.MSS)
	cu.wMax = c.cwnd
	cu.started = false
	c.ssthresh = math.Max(c.cwnd*cubicBeta, 2*mss)
	c.cwnd = c.ssthresh
}

// OnTimeout implements CongestionControl.
func (cu *Cubic) OnTimeout(c *Conn, now sim.Time) {
	mss := float64(c.cfg.MSS)
	cu.wMax = c.cwnd
	cu.started = false
	c.ssthresh = math.Max(c.cwnd*cubicBeta, 2*mss)
}

// NewReno returns a Reno congestion control factory.
func NewReno() CongestionControl { return Reno{} }

// NewCubic returns a CUBIC congestion control factory.
func NewCubic() CongestionControl { return &Cubic{} }
