// Package tcp implements an event-driven TCP model over the netem
// substrate: three-way handshake, slow start, congestion avoidance,
// fast retransmit and NewReno fast recovery, RFC 6298 retransmission
// timeouts with Karn-safe timestamp-based RTT sampling, delayed ACKs,
// receiver flow control, and FIN teardown. Two congestion control
// algorithms are provided, matching the paper's testbeds: Reno (used
// on the backbone hosts) and CUBIC (used on the access hosts).
//
// Sequence numbers are modeled as 64-bit byte offsets from stream
// start (no wraparound), and payload bytes are accounted but not
// materialized: the applications in this study only need byte counts
// and timing.
package tcp

import (
	"sync"

	"bufferqoe/internal/sim"
)

// Segment is the TCP payload carried inside a netem.Packet.
type Segment struct {
	// Seq is the byte offset of the first payload byte (or of the FIN
	// if Len == 0 and FIN is set). SYN segments use Seq 0.
	Seq int64
	// Ack is the cumulative acknowledgment (next expected byte) and is
	// valid when ACK is set.
	Ack int64
	// Len is the payload length in bytes.
	Len int
	// Wnd is the advertised receive window in bytes.
	Wnd int64
	// SYN, ACK, FIN are the control flags used by the model.
	SYN, ACK, FIN bool
	// TSval is the sender's clock at transmission; TSecr echoes the
	// peer's TSval (RFC 7323 style), giving retransmission-safe RTT
	// samples (Karn's problem avoided).
	TSval, TSecr sim.Time
	// SACK carries up to three selective-acknowledgment blocks of
	// out-of-order data held by the receiver (RFC 2018), when the
	// stack is configured with SACK enabled.
	SACK []SACKBlock

	// ECNSetup negotiates ECN on SYN / SYN-ACK (standing in for the
	// ECE+CWR handshake combination of RFC 3168).
	ECNSetup bool
	// ECE is the ECN-Echo flag: the receiver saw Congestion
	// Experienced and keeps echoing until the sender responds.
	ECE bool
	// CWR acknowledges a congestion-window reduction to the receiver.
	CWR bool
	// CE mirrors the IP-header Congestion Experienced mark of the
	// packet that carried this segment; the demultiplexer copies it
	// over on receive (the model's "IP header" lives on netem.Packet).
	CE bool
}

// SACKBlock is one selective acknowledgment range [Start, End).
type SACKBlock struct {
	Start, End int64
}

// segPool recycles Segments between emission and receive-side
// consumption. Segments cross stacks (a data segment is allocated by
// the server's stack and consumed by the client's), so the pool is
// package-wide: per-stack free-lists would grow without bound on the
// receive-heavy side while the send-heavy side kept allocating. A
// sync.Pool is safe for determinism because newSegment resets every
// field — behavior never depends on which recycled object is handed
// out — and safe for the parallel cell engine because it is
// goroutine-safe.
var segPool = sync.Pool{New: func() any { return new(Segment) }}

// newSegment returns a fully zeroed segment, reusing pool memory and
// the SACK backing array.
//
//qoe:hotpath
func newSegment() *Segment {
	s := segPool.Get().(*Segment)
	sack := s.SACK[:0]
	*s = Segment{SACK: sack}
	return s
}

// releaseSegment returns a consumed segment to the pool. The caller
// (the receive-side dispatcher) must not touch it afterwards.
//
//qoe:hotpath
func releaseSegment(s *Segment) { segPool.Put(s) }

// wireSize returns the on-wire IP packet size for this segment.
func (s *Segment) wireSize() int {
	return 20 /* IP */ + 20 /* TCP */ + s.Len
}

// interval is a half-open byte range [start, end) of received
// out-of-order data.
type interval struct{ start, end int64 }

// intervalSet tracks out-of-order received byte ranges, kept sorted
// and coalesced. The expected steady state is a handful of holes, so a
// small slice beats any tree. Two buffers swap roles on every add so
// steady-state merging allocates nothing.
type intervalSet struct {
	iv  []interval
	tmp []interval
}

// clear empties the set, keeping both backing arrays for reuse.
func (s *intervalSet) clear() {
	s.iv = s.iv[:0]
}

// add merges [start, end) into the set.
func (s *intervalSet) add(start, end int64) {
	if end <= start {
		return
	}
	// Build into the spare buffer: appending into s.iv[:0] in place
	// would overwrite elements not yet visited once an insertion makes
	// the output longer than the read position. Swapping the two
	// buffers afterwards means both reach steady capacity after a few
	// adds and merging stops allocating.
	out := s.tmp[:0]
	inserted := false
	for _, v := range s.iv {
		switch {
		case v.end < start:
			out = append(out, v)
		case end < v.start:
			if !inserted {
				out = append(out, interval{start, end})
				inserted = true
			}
			out = append(out, v)
		default: // overlap or adjacency: coalesce
			if v.start < start {
				start = v.start
			}
			if v.end > end {
				end = v.end
			}
		}
	}
	if !inserted {
		out = append(out, interval{start, end})
	}
	s.iv, s.tmp = out, s.iv
}

// advance returns the new contiguous frontier starting from pos,
// consuming any intervals it absorbs. Survivors are copied down so the
// backing array's full capacity stays usable by future adds.
func (s *intervalSet) advance(pos int64) int64 {
	n := 0
	for n < len(s.iv) && s.iv[n].start <= pos {
		if s.iv[n].end > pos {
			pos = s.iv[n].end
		}
		n++
	}
	if n > 0 {
		m := copy(s.iv, s.iv[n:])
		s.iv = s.iv[:m]
	}
	return pos
}

// empty reports whether no out-of-order data is buffered.
func (s *intervalSet) empty() bool { return len(s.iv) == 0 }
