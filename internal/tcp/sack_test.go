package tcp

import (
	"testing"
	"time"

	"bufferqoe/internal/sim"
)

func TestSACKTransferCompletes(t *testing.T) {
	cfg := Config{SACK: true}
	tn := newTestNet(4e6, 15*time.Millisecond, 8, cfg)
	cc, sc, done := tn.transfer(t, 2_000_000, 60*time.Second)
	if done == 0 {
		t.Fatal("SACK transfer never completed")
	}
	if cc.Stat.BytesReceived != 2_000_000 {
		t.Fatalf("received %d", cc.Stat.BytesReceived)
	}
	if sc.Stat.Retransmissions == 0 {
		t.Fatal("expected losses over an 8-packet buffer")
	}
}

func TestSACKReducesTimeouts(t *testing.T) {
	// Burst losses over a small buffer: the SACK sender repairs holes
	// within one RTT; the NewReno sender needs one RTT per hole and
	// falls back to timeouts.
	run := func(sack bool) (timeouts, fastRetx uint64) {
		cfg := Config{SACK: sack}
		tn := newTestNet(2e6, 25*time.Millisecond, 6, cfg)
		_, sc, done := tn.transfer(t, 1_500_000, 120*time.Second)
		if done == 0 {
			t.Fatalf("transfer (sack=%v) never completed", sack)
		}
		return sc.Stat.Timeouts, sc.Stat.FastRetransmits
	}
	toSACK, _ := run(true)
	toReno, _ := run(false)
	if toSACK > toReno {
		t.Fatalf("SACK timeouts (%d) > NewReno timeouts (%d)", toSACK, toReno)
	}
}

func TestSACKComparableCompletionUnderLoss(t *testing.T) {
	// Single flow over a tiny buffer: SACK's strictly conservative
	// recovery can be a touch slower than NewReno's inflation (which
	// accidentally over-sends), but must stay in the same ballpark.
	// SACK's structural wins — fewer timeouts, sustained standing
	// queues — are asserted by the neighboring tests.
	run := func(sack bool) sim.Time {
		cfg := Config{SACK: sack}
		tn := newTestNet(4e6, 20*time.Millisecond, 6, cfg)
		_, _, done := tn.transfer(t, 3_000_000, 180*time.Second)
		if done == 0 {
			t.Fatalf("transfer (sack=%v) never completed", sack)
		}
		return done
	}
	withSACK := run(true)
	without := run(false)
	if withSACK > without*3/2 {
		t.Fatalf("SACK completion %v far slower than NewReno %v", withSACK, without)
	}
}

func TestSACKKeepsBloatedQueueFuller(t *testing.T) {
	// The fidelity gap documented in EXPERIMENTS.md: without SACK,
	// burst losses collapse into timeouts and the bloated uplink
	// queue drains between events; with SACK the flows sustain the
	// standing queue, moving mean delay toward the paper's hardware
	// numbers.
	run := func(sack bool) time.Duration {
		cfg := Config{SACK: sack, NewCC: NewCubic}
		tn := newTestNet(1e6, 5*time.Millisecond, 256, cfg)
		tn.sStack.Listen(80, func(c *Conn) {})
		up := tn.cStack.Dial(tn.server.Addr(80))
		up.SendInfinite()
		tn.eng.RunUntil(sim.Time(40 * time.Second))
		return up.SRTT()
	}
	withSACK := run(true)
	without := run(false)
	if withSACK < without {
		t.Fatalf("SACK sRTT %v < no-SACK %v: standing queue not fuller", withSACK, without)
	}
	if withSACK < 2*time.Second {
		t.Fatalf("SACK standing queue sRTT = %v, want > 2s at 256 pkts", withSACK)
	}
}

func TestSACKBlocksAttached(t *testing.T) {
	// Direct receiver check: out-of-order data must produce SACK
	// blocks on the dup ack.
	eng := sim.New()
	c := &Conn{
		cfg:        Defaults(Config{SACK: true}),
		cc:         Reno{},
		eng:        eng,
		finSeqPeer: -1,
		state:      StateEstablished,
	}
	// Install a capture stack: emit needs a stack/node; use a minimal
	// fake via the test network instead.
	tn := newTestNet(1e9, time.Millisecond, 100, Config{SACK: true})
	var server *Conn
	tn.sStack.Listen(80, func(sc *Conn) { server = sc })
	client := tn.cStack.Dial(tn.server.Addr(80))
	tn.eng.RunFor(time.Second)
	if server == nil || client.State() != StateEstablished {
		t.Fatal("setup failed")
	}
	// Inject out-of-order data directly into the client's receiver.
	client.handleSegment(&Segment{Seq: 3000, Len: 1000, ACK: true, Wnd: 1 << 20})
	if client.ooo.empty() {
		t.Fatal("out-of-order data not buffered")
	}
	_ = c
}

func TestSACKScoreboardHoleSelection(t *testing.T) {
	c := mkConn(Reno{})
	c.cfg.SACK = true
	c.sndUna = 0
	c.sndNxt = 10000
	c.sndLimit = 10000
	c.sacked.add(2000, 4000)
	c.sacked.add(6000, 8000)
	// First hole: [0, 1460) bounded by MSS; after skipping, holes are
	// [0,2000), [4000,6000), [8000,10000).
	start := c.sndUna
	if c.sackRetxNext > start {
		start = c.sackRetxNext
	}
	// Emulate hole walk (the emit path needs a stack, so replicate the
	// selection logic's outcome via retransmitOneSACK on a wired conn
	// below). Here just validate the scoreboard arithmetic.
	if got := c.sacked.iv[0]; got != (interval{2000, 4000}) {
		t.Fatalf("scoreboard = %v", c.sacked.iv)
	}
	c.sacked.advance(0)
	if len(c.sacked.iv) != 2 {
		t.Fatalf("advance(0) consumed blocks: %v", c.sacked.iv)
	}
}
