package tcp

import (
	"testing"
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
)

// TestDialToDeadPortAborts injects the simplest failure: no listener.
// SYNs go unanswered and the handshake must abort with the documented
// error after the retry budget.
func TestDialToDeadPortAborts(t *testing.T) {
	tn := newTestNet(10e6, 10*time.Millisecond, 100, Config{MaxSynRetries: 3})
	var closedErr error
	c := tn.cStack.Dial(tn.server.Addr(4444)) // nothing listens there
	c.OnClose = func(err error) { closedErr = err }
	tn.eng.RunUntil(sim.Time(60 * time.Second.Nanoseconds()))
	if c.State() != StateClosed {
		t.Fatalf("state = %v, want closed", c.State())
	}
	if closedErr != ErrHandshakeTimeout {
		t.Fatalf("close error = %v, want handshake timeout", closedErr)
	}
}

// TestMidTransferBlackholeAborts cuts the route under an active
// transfer: the sender must exhaust its retransmission budget and
// abort rather than hang forever.
func TestMidTransferBlackholeAborts(t *testing.T) {
	tn := newTestNet(10e6, 10*time.Millisecond, 100, Config{MaxRetries: 4})
	var serverConn *Conn
	tn.sStack.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnEstablished = func() { c.SendInfinite() }
	})
	tn.cStack.Dial(tn.server.Addr(80))
	// Let the transfer run, then blackhole the server->client path by
	// rerouting it into an unconnected node.
	tn.eng.RunFor(2 * time.Second)
	if serverConn == nil || serverConn.Stat.BytesAcked == 0 {
		t.Fatal("transfer did not start")
	}
	void := tn.nw.NewNode("void")
	dead := netem.NewLink(tn.eng, "dead", 10e6, time.Millisecond, netem.NewDropTail(8), void)
	tn.server.SetRoute(tn.client.ID, dead)
	var aborted error
	serverConn.OnClose = func(err error) { aborted = err }
	tn.eng.RunFor(10 * time.Minute)
	if aborted != ErrRetriesExceeded {
		t.Fatalf("abort error = %v, want retries exceeded", aborted)
	}
}

// TestRandomLossTransfersComplete drives transfers through 5% random
// loss in both directions: recovery must still complete the stream,
// with retransmissions but no abort.
func TestRandomLossTransfersComplete(t *testing.T) {
	eng := sim.New()
	nw := netem.NewNetwork(eng)
	c := nw.NewNode("client")
	s := nw.NewNode("server")
	mk := func(name string, dst *netem.Node, stream string) *netem.Link {
		q := netem.NewLossQueue(netem.NewDropTail(200), 0.05, sim.NewRNG(9, stream))
		return netem.NewLink(eng, name, 10e6, 10*time.Millisecond, q, dst)
	}
	cs := mk("c->s", s, "up")
	sc := mk("s->c", c, "down")
	c.SetRoute(s.ID, cs)
	s.SetRoute(c.ID, sc)
	tn := &testNet{eng: eng, nw: nw, client: c, server: s, cs: cs, sc: sc,
		cStack: NewStack(c, Config{}), sStack: NewStack(s, Config{})}
	cc, scn, done := tn.transfer(t, 500_000, 5*time.Minute)
	if done == 0 {
		t.Fatal("transfer under 5% loss never completed")
	}
	if cc.Stat.BytesReceived != 500_000 {
		t.Fatalf("received %d bytes", cc.Stat.BytesReceived)
	}
	if scn.Stat.Retransmissions == 0 {
		t.Fatal("no retransmissions under 5% loss")
	}
}

// TestRandomLossWithSACKCompletes repeats the lossy transfer with
// SACK: the scoreboard path must be equally robust.
func TestRandomLossWithSACKCompletes(t *testing.T) {
	eng := sim.New()
	nw := netem.NewNetwork(eng)
	c := nw.NewNode("client")
	s := nw.NewNode("server")
	mk := func(name string, dst *netem.Node, stream string) *netem.Link {
		q := netem.NewLossQueue(netem.NewDropTail(200), 0.05, sim.NewRNG(10, stream))
		return netem.NewLink(eng, name, 10e6, 10*time.Millisecond, q, dst)
	}
	cs := mk("c->s", s, "up")
	sc := mk("s->c", c, "down")
	c.SetRoute(s.ID, cs)
	s.SetRoute(c.ID, sc)
	cfg := Config{SACK: true}
	tn := &testNet{eng: eng, nw: nw, client: c, server: s, cs: cs, sc: sc,
		cStack: NewStack(c, cfg), sStack: NewStack(s, cfg)}
	cc, _, done := tn.transfer(t, 500_000, 5*time.Minute)
	if done == 0 {
		t.Fatal("SACK transfer under 5% loss never completed")
	}
	if cc.Stat.BytesReceived != 500_000 {
		t.Fatalf("received %d bytes", cc.Stat.BytesReceived)
	}
}

// TestWireInvariants taps every segment of a lossy transfer and checks
// protocol invariants on the wire: cumulative ACKs never regress, SACK
// blocks are well-formed and above the cumulative ACK, and data never
// exceeds the advertised window... the receiver-side ones a remote
// peer could rely on.
func TestWireInvariants(t *testing.T) {
	eng := sim.New()
	nw := netem.NewNetwork(eng)
	c := nw.NewNode("client")
	s := nw.NewNode("server")
	q := netem.NewLossQueue(netem.NewDropTail(50), 0.03, sim.NewRNG(11, "loss"))
	sc := netem.NewLink(eng, "s->c", 10e6, 10*time.Millisecond, q, c)
	cs := netem.NewLink(eng, "c->s", 10e6, 10*time.Millisecond, netem.NewDropTail(50), s)
	c.SetRoute(s.ID, cs)
	s.SetRoute(c.ID, sc)
	cfg := Config{SACK: true}
	tn := &testNet{eng: eng, nw: nw, client: c, server: s, cs: cs, sc: sc,
		cStack: NewStack(c, cfg), sStack: NewStack(s, cfg)}

	var maxAckSeen int64 = -1
	violations := 0
	cs.Tap = func(p *netem.Packet, at sim.Time) {
		seg, ok := p.Payload.(*Segment)
		if !ok || !seg.ACK || seg.SYN {
			return
		}
		if seg.Ack < maxAckSeen {
			violations++
		}
		if seg.Ack > maxAckSeen {
			maxAckSeen = seg.Ack
		}
		for _, b := range seg.SACK {
			if b.End <= b.Start || b.Start < seg.Ack {
				violations++
			}
		}
	}
	_, _, done := tn.transfer(t, 300_000, 5*time.Minute)
	if done == 0 {
		t.Fatal("transfer never completed")
	}
	if violations != 0 {
		t.Fatalf("%d wire invariant violations", violations)
	}
}

// TestAbortMidTransferReleasesState verifies Abort cleans up: the
// connection closes, its port is released, and the stack forgets it.
func TestAbortMidTransferReleasesState(t *testing.T) {
	tn := newTestNet(10e6, 10*time.Millisecond, 100, Config{})
	tn.sStack.Listen(80, func(c *Conn) {
		c.OnEstablished = func() { c.SendInfinite() }
	})
	cc := tn.cStack.Dial(tn.server.Addr(80))
	tn.eng.RunFor(time.Second)
	if tn.cStack.ConnCount() != 1 {
		t.Fatalf("conn count = %d", tn.cStack.ConnCount())
	}
	sentinel := connError("deadline")
	cc.Abort(sentinel)
	if cc.State() != StateClosed || cc.Err != sentinel {
		t.Fatalf("state %v err %v after abort", cc.State(), cc.Err)
	}
	if tn.cStack.ConnCount() != 0 {
		t.Fatalf("stack still tracks %d conns after abort", tn.cStack.ConnCount())
	}
}

// TestECNFallbackUnderNonMarkingLoss: an ECN-negotiated connection
// over a plain drop-tail bottleneck (which drops rather than marks)
// must still recover by the loss path.
func TestECNFallbackUnderNonMarkingLoss(t *testing.T) {
	tn := newTestNet(2e6, 10*time.Millisecond, 10, Config{ECN: true})
	cc, sc, done := tn.transfer(t, 1_000_000, 2*time.Minute)
	if done == 0 {
		t.Fatal("ECN transfer over drop-tail never completed")
	}
	if cc.Stat.BytesReceived != 1_000_000 {
		t.Fatalf("received %d", cc.Stat.BytesReceived)
	}
	if sc.Stat.Retransmissions == 0 {
		t.Fatal("expected loss-based recovery through the 10-pkt bottleneck")
	}
	if sc.Stat.ECNReductions != 0 {
		t.Fatalf("phantom ECN reductions (%d) without a marking queue", sc.Stat.ECNReductions)
	}
}
