package tcp

import (
	"math"

	"bufferqoe/internal/sim"
)

// BIC implements Binary Increase Congestion control (Xu, Harfoush &
// Rhee, INFOCOM 2004), the default Linux algorithm from 2.6.8 until
// CUBIC replaced it in 2.6.19. The paper notes its access hosts ran
// "TCP BIC/TCP CUBIC"; this type provides the BIC half so the
// abl-ccalgo experiment can compare all three era algorithms.
//
// The window growth combines three regimes around the last-known
// saturation point wMax:
//
//   - binary search: far below wMax, jump half the remaining distance
//     per RTT, capped at Smax segments (additive increase);
//   - convergence: near wMax, creep by Smin;
//   - max probing: above wMax, accelerate away symmetrically to find
//     the new saturation point.
//
// On loss, wMax is updated with fast convergence (a flow that lost
// before regaining its previous maximum yields share to newcomers) and
// the window is cut by the BIC beta of 0.8.
type BIC struct {
	wMax float64 // last saturation window, bytes
}

// BIC constants (paper defaults / Linux bictcp).
const (
	bicSmaxSegs   = 32   // max increment per RTT, segments
	bicSminSegs   = 0.01 // min increment per RTT, segments
	bicBeta       = 0.8  // multiplicative decrease factor
	bicLowWinSegs = 14   // below this, behave like Reno
)

// Name implements CongestionControl.
func (b *BIC) Name() string { return "bic" }

// OnInit implements CongestionControl.
func (b *BIC) OnInit(c *Conn) { b.wMax = 0 }

// OnAck implements CongestionControl.
func (b *BIC) OnAck(c *Conn, acked int64, now sim.Time) {
	mss := float64(c.cfg.MSS)
	if c.cwnd < c.ssthresh {
		c.cwnd += math.Min(float64(acked), mss)
		return
	}
	segs := c.cwnd / mss
	if segs < bicLowWinSegs || b.wMax == 0 {
		// Small windows or no saturation point yet: Reno growth.
		c.cwnd += mss * mss / c.cwnd
		return
	}
	wMaxSegs := b.wMax / mss
	var perRTT float64 // target increment in segments per RTT
	if segs < wMaxSegs {
		dist := (wMaxSegs - segs) / 2
		switch {
		case dist > bicSmaxSegs:
			perRTT = bicSmaxSegs // additive increase
		case dist < bicSminSegs:
			perRTT = bicSminSegs // plateau at the saturation point
		default:
			perRTT = dist // binary search
		}
	} else {
		// Max probing: slow start away from wMax, symmetric to the
		// approach, capped at Smax.
		dist := segs - wMaxSegs
		switch {
		case dist < 1:
			perRTT = bicSminSegs * 8
		case dist < bicSmaxSegs:
			perRTT = dist
		default:
			perRTT = bicSmaxSegs
		}
	}
	// Spread the per-RTT increment over the ~cwnd/MSS ACKs of one RTT.
	c.cwnd += perRTT * mss * mss / c.cwnd
}

// OnPacketLoss implements CongestionControl.
func (b *BIC) OnPacketLoss(c *Conn, now sim.Time) {
	mss := float64(c.cfg.MSS)
	if c.cwnd < b.wMax {
		// Fast convergence: release bandwidth to competing flows.
		b.wMax = c.cwnd * (1 + bicBeta) / 2
	} else {
		b.wMax = c.cwnd
	}
	c.ssthresh = math.Max(c.cwnd*bicBeta, 2*mss)
	c.cwnd = c.ssthresh
}

// OnTimeout implements CongestionControl.
func (b *BIC) OnTimeout(c *Conn, now sim.Time) {
	mss := float64(c.cfg.MSS)
	if c.cwnd < b.wMax {
		b.wMax = c.cwnd * (1 + bicBeta) / 2
	} else {
		b.wMax = c.cwnd
	}
	c.ssthresh = math.Max(c.cwnd*bicBeta, 2*mss)
}

// NewBIC returns a BIC congestion control factory.
func NewBIC() CongestionControl { return &BIC{} }
