package tcp

import (
	"fmt"
	"testing"
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
)

// newReorderNet builds a two-host net whose server->client direction
// passes through a ReorderBox, so data segments arrive out of order at
// the client with the given probability.
func newReorderNet(prob float64, seed uint64, cfg Config) *testNet {
	eng := sim.New()
	nw := netem.NewNetwork(eng)
	c := nw.NewNode("client")
	s := nw.NewNode("server")
	rb := netem.NewReorderBox(eng, sim.NewRNG(seed, "reorder"), prob, c)
	sc := netem.NewLink(eng, "s->c", 10e6, 10*time.Millisecond, netem.NewDropTail(100), rb)
	cs := netem.NewLink(eng, "c->s", 10e6, 10*time.Millisecond, netem.NewDropTail(100), s)
	c.SetRoute(s.ID, cs)
	s.SetRoute(c.ID, sc)
	return &testNet{
		eng: eng, nw: nw, client: c, server: s, cs: cs, sc: sc,
		cStack: NewStack(c, cfg),
		sStack: NewStack(s, cfg),
	}
}

// TestTransfersCompleteUnderReordering is the reordering robustness
// property: across reorder probabilities, seeds, and congestion
// controls, every transfer must still complete and deliver every byte
// exactly once (SACK absorbs the spurious dup-ACK pressure).
func TestTransfersCompleteUnderReordering(t *testing.T) {
	ccs := map[string]func() CongestionControl{
		"reno":  NewReno,
		"cubic": NewCubic,
		"bic":   NewBIC,
	}
	for name, newCC := range ccs {
		for _, prob := range []float64{0.02, 0.1, 0.3} {
			for seed := uint64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("%s/p%v/seed%d", name, prob, seed), func(t *testing.T) {
					tn := newReorderNet(prob, seed, Config{NewCC: newCC})
					cc, _, done := tn.transfer(t, 500_000, 120*time.Second)
					if done == 0 {
						t.Fatalf("transfer never completed under %.0f%% reordering", prob*100)
					}
					if cc.Stat.BytesReceived != 500_000 {
						t.Fatalf("received %d bytes, want 500000", cc.Stat.BytesReceived)
					}
				})
			}
		}
	}
}

// TestReorderingCausesSpuriousRetransmits documents why the knob
// matters: heavy reordering without loss still provokes fast
// retransmits in a dup-ACK-threshold sender.
func TestReorderingCausesSpuriousRetransmits(t *testing.T) {
	tn := newReorderNet(0.3, 9, Config{})
	_, sc, done := tn.transfer(t, 1_000_000, 120*time.Second)
	if done == 0 {
		t.Fatal("transfer never completed")
	}
	if sc.Stat.Retransmissions == 0 {
		t.Skip("this seed produced no spurious retransmits")
	}
}
