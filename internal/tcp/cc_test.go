package tcp

import (
	"testing"
	"time"

	"bufferqoe/internal/sim"
)

// mkConn builds a detached connection for direct congestion-control
// unit tests (no network attached; only cwnd/ssthresh evolution is
// exercised).
func mkConn(cc CongestionControl) *Conn {
	cfg := Defaults(Config{})
	c := &Conn{
		cfg:      cfg,
		cc:       cc,
		cwnd:     float64(cfg.InitialWindow * cfg.MSS),
		ssthresh: float64(cfg.RcvWnd),
		srtt:     100 * time.Millisecond,
	}
	cc.OnInit(c)
	return c
}

func TestRenoSlowStartDoubles(t *testing.T) {
	c := mkConn(Reno{})
	mss := int64(c.cfg.MSS)
	start := c.cwnd
	// Ack one full window: slow start adds ~one MSS per acked MSS.
	acked := int64(0)
	for acked < int64(start) {
		c.cc.OnAck(c, mss, 0)
		acked += mss
	}
	if c.cwnd < 1.9*start {
		t.Fatalf("slow start grew %v -> %v, want ~2x", start, c.cwnd)
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	c := mkConn(Reno{})
	mss := float64(c.cfg.MSS)
	c.cwnd = 20 * mss
	c.ssthresh = 10 * mss // below cwnd: CA regime
	start := c.cwnd
	// One window of acks should add ~one MSS total.
	for i := 0; i < 20; i++ {
		c.cc.OnAck(c, int64(mss), 0)
	}
	growth := c.cwnd - start
	if growth < 0.8*mss || growth > 1.3*mss {
		t.Fatalf("CA growth per RTT = %.0f bytes, want ~%0.f", growth, mss)
	}
}

func TestRenoHalvesOnLoss(t *testing.T) {
	c := mkConn(Reno{})
	mss := float64(c.cfg.MSS)
	c.cwnd = 40 * mss
	c.sndUna, c.sndNxt = 0, int64(40*mss) // full window in flight
	c.cc.OnPacketLoss(c, 0)
	if c.cwnd < 19*mss || c.cwnd > 21*mss {
		t.Fatalf("cwnd after loss = %.0f, want ~half of 40 MSS", c.cwnd/mss)
	}
	if c.ssthresh != c.cwnd {
		t.Fatalf("ssthresh %v != cwnd %v after Reno loss", c.ssthresh, c.cwnd)
	}
}

func TestRenoLossFloor(t *testing.T) {
	c := mkConn(Reno{})
	mss := float64(c.cfg.MSS)
	c.cwnd = mss
	c.sndUna, c.sndNxt = 0, int64(mss)
	c.cc.OnPacketLoss(c, 0)
	if c.cwnd < 2*mss {
		t.Fatalf("cwnd floor violated: %.2f MSS", c.cwnd/mss)
	}
}

func TestCubicReducesBy30Percent(t *testing.T) {
	cu := &Cubic{}
	c := mkConn(cu)
	mss := float64(c.cfg.MSS)
	c.cwnd = 100 * mss
	c.ssthresh = 50 * mss
	c.cc.OnPacketLoss(c, 0)
	if c.cwnd < 69*mss || c.cwnd > 71*mss {
		t.Fatalf("CUBIC decrease to %.1f MSS, want 70", c.cwnd/mss)
	}
}

func TestCubicRegrowsTowardWMax(t *testing.T) {
	cu := &Cubic{}
	c := mkConn(cu)
	mss := float64(c.cfg.MSS)
	c.cwnd = 100 * mss
	c.ssthresh = 50 * mss
	now := sim.Time(0)
	c.cc.OnPacketLoss(c, now)
	after := c.cwnd // 70 MSS
	// Feed one window of (delayed) acks per 100 ms RTT; CUBIC should
	// recover most of the way to wMax within its K horizon (~4.2 s
	// for wMax of 100 MSS).
	for s := 0; s < 80; s++ {
		now = now.Add(100 * time.Millisecond)
		acks := int(c.cwnd / mss / 2)
		for k := 0; k < acks; k++ {
			c.cc.OnAck(c, 2*int64(mss), now)
		}
	}
	if c.cwnd < 95*mss {
		t.Fatalf("CUBIC at t=8s: %.1f MSS, want near wMax 100 (started %0.f)",
			c.cwnd/mss, after/mss)
	}
}

func TestCubicSlowStartBelowSsthresh(t *testing.T) {
	cu := &Cubic{}
	c := mkConn(cu)
	mss := float64(c.cfg.MSS)
	c.cwnd = 3 * mss
	c.ssthresh = 100 * mss
	c.cc.OnAck(c, int64(mss), 0)
	if c.cwnd != 4*mss {
		t.Fatalf("slow start ack grew to %.2f MSS, want 4", c.cwnd/mss)
	}
}

func TestCCNames(t *testing.T) {
	if (Reno{}).Name() != "reno" {
		t.Fatal("reno name")
	}
	if (&Cubic{}).Name() != "cubic" {
		t.Fatal("cubic name")
	}
}

func TestDefaultsFill(t *testing.T) {
	cfg := Defaults(Config{})
	if cfg.MSS != 1460 || cfg.RcvWnd != 4<<20 || cfg.InitialWindow != 3 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.MinRTO != 200*time.Millisecond || cfg.DupAckThreshold != 3 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.NewCC == nil || cfg.MaxRetries == 0 {
		t.Fatal("nil CC factory or retries")
	}
	// Overrides survive.
	cfg2 := Defaults(Config{MSS: 500})
	if cfg2.MSS != 500 {
		t.Fatal("override lost")
	}
}

func TestStateStrings(t *testing.T) {
	for st, want := range map[State]string{
		StateSynSent:     "syn-sent",
		StateSynReceived: "syn-received",
		StateEstablished: "established",
		StateClosing:     "closing",
		StateClosed:      "closed",
	} {
		if st.String() != want {
			t.Fatalf("%d -> %q", st, st.String())
		}
	}
	if State(99).String() != "unknown" {
		t.Fatal("unknown state string")
	}
}

func TestSampleRTTRFC6298(t *testing.T) {
	tn := newTestNet(10e6, 25*time.Millisecond, 100, Config{})
	cc, _, done := tn.transfer(t, 50_000, 10*time.Second)
	if done == 0 {
		t.Fatal("no completion")
	}
	// After samples, RTO must be srtt + 4*rttvar clamped to >= MinRTO.
	if cc.rto < cc.cfg.MinRTO {
		t.Fatalf("rto %v below floor", cc.rto)
	}
	if cc.Stat.RTTSamples == 0 {
		t.Fatal("no RTT samples")
	}
}

func TestKarnNoSampleFromZeroEcho(t *testing.T) {
	c := mkConn(Reno{})
	c.eng = sim.New()
	c.sampleRTT(0)
	if c.Stat.RTTSamples != 0 {
		t.Fatal("sampled RTT from zero timestamp echo")
	}
}

// --- BIC unit tests -----------------------------------------------------

func TestBICBinarySearchJumpsHalfway(t *testing.T) {
	c := mkConn(NewBIC())
	mss := float64(c.cfg.MSS)
	b := c.cc.(*BIC)
	c.cwnd = 100 * mss
	c.ssthresh = 50 * mss // CA regime
	b.wMax = 200 * mss
	// One RTT of ACKs: (200-100)/2 = 50 segments away, capped at Smax
	// 32 → expect ~32 MSS growth.
	for i := 0; i < 100; i++ {
		c.cc.OnAck(c, int64(mss), 0)
	}
	growth := (c.cwnd - 100*mss) / mss
	if growth < 20 || growth > 45 {
		t.Fatalf("BIC additive-phase growth %.1f segs/RTT, want ~32", growth)
	}
}

func TestBICPlateausNearWMax(t *testing.T) {
	c := mkConn(NewBIC())
	mss := float64(c.cfg.MSS)
	b := c.cc.(*BIC)
	c.cwnd = 199 * mss
	c.ssthresh = 50 * mss
	b.wMax = 200 * mss
	for i := 0; i < 199; i++ {
		c.cc.OnAck(c, int64(mss), 0)
	}
	growth := (c.cwnd - 199*mss) / mss
	if growth > 1.5 {
		t.Fatalf("BIC grew %.2f segs/RTT at the plateau, want < 1.5", growth)
	}
}

func TestBICReducesByBeta(t *testing.T) {
	c := mkConn(NewBIC())
	mss := float64(c.cfg.MSS)
	c.cwnd = 100 * mss
	c.cc.OnPacketLoss(c, 0)
	if got := c.cwnd / mss; got < 79 || got > 81 {
		t.Fatalf("BIC post-loss window %.1f segs, want 80", got)
	}
}

func TestBICFastConvergenceLowersWMax(t *testing.T) {
	c := mkConn(NewBIC())
	mss := float64(c.cfg.MSS)
	b := c.cc.(*BIC)
	b.wMax = 200 * mss
	c.cwnd = 150 * mss // lost before regaining the old maximum
	c.cc.OnPacketLoss(c, 0)
	if b.wMax >= 200*mss {
		t.Fatalf("fast convergence did not lower wMax: %.0f", b.wMax/mss)
	}
	if b.wMax < 100*mss {
		t.Fatalf("wMax collapsed too far: %.0f segs", b.wMax/mss)
	}
}

func TestBICRenoModeAtSmallWindows(t *testing.T) {
	c := mkConn(NewBIC())
	mss := float64(c.cfg.MSS)
	b := c.cc.(*BIC)
	b.wMax = 200 * mss
	c.cwnd = 8 * mss // below low-window threshold
	c.ssthresh = 4 * mss
	for i := 0; i < 8; i++ {
		c.cc.OnAck(c, int64(mss), 0)
	}
	growth := (c.cwnd - 8*mss) / mss
	if growth < 0.8 || growth > 1.3 {
		t.Fatalf("BIC low-window growth %.2f segs/RTT, want ~1 (Reno)", growth)
	}
}

func TestBICTransfersComplete(t *testing.T) {
	cfg := Config{NewCC: NewBIC}
	tn := newTestNet(10e6, 10*time.Millisecond, 50, cfg)
	_, _, done := tn.transfer(t, 2_000_000, 60*time.Second)
	if done == 0 {
		t.Fatal("BIC transfer never completed")
	}
}

func TestBICName(t *testing.T) {
	if NewBIC().Name() != "bic" {
		t.Fatal("wrong name")
	}
}
