package tcp

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestIntervalSetBasicMerge(t *testing.T) {
	var s intervalSet
	s.add(10, 20)
	s.add(30, 40)
	if len(s.iv) != 2 {
		t.Fatalf("intervals = %v", s.iv)
	}
	s.add(20, 30) // bridges the gap
	if len(s.iv) != 1 || s.iv[0] != (interval{10, 40}) {
		t.Fatalf("merge failed: %v", s.iv)
	}
}

func TestIntervalSetOverlaps(t *testing.T) {
	var s intervalSet
	s.add(10, 30)
	s.add(20, 25) // fully contained
	if len(s.iv) != 1 || s.iv[0] != (interval{10, 30}) {
		t.Fatalf("containment failed: %v", s.iv)
	}
	s.add(5, 15)
	if len(s.iv) != 1 || s.iv[0] != (interval{5, 30}) {
		t.Fatalf("left extension failed: %v", s.iv)
	}
}

func TestIntervalSetAdvance(t *testing.T) {
	var s intervalSet
	s.add(100, 200)
	s.add(300, 400)
	if got := s.advance(50); got != 50 {
		t.Fatalf("advance(50) = %d", got)
	}
	if got := s.advance(100); got != 200 {
		t.Fatalf("advance(100) = %d", got)
	}
	if got := s.advance(250); got != 250 {
		t.Fatalf("advance(250) = %d", got)
	}
	if got := s.advance(300); got != 400 {
		t.Fatalf("advance(300) = %d", got)
	}
	if !s.empty() {
		t.Fatalf("set not empty: %v", s.iv)
	}
}

func TestIntervalSetEmptyAdd(t *testing.T) {
	var s intervalSet
	s.add(10, 10) // zero-length: ignored
	s.add(10, 5)  // inverted: ignored
	if !s.empty() {
		t.Fatalf("set = %v", s.iv)
	}
}

// Property: against a reference bitmap implementation, the interval
// set must agree on the frontier after any sequence of adds/advances.
func TestPropertyIntervalSetMatchesBitmap(t *testing.T) {
	f := func(seed uint64, opsRaw []byte) bool {
		const size = 256
		var s intervalSet
		bitmap := make([]bool, size)
		frontier := int64(0)
		rng := rand.New(rand.NewPCG(seed, 99))
		for _, op := range opsRaw {
			if op%4 != 0 { // add a random range
				start := int64(rng.IntN(size - 1))
				end := start + 1 + int64(rng.IntN(16))
				if end > size {
					end = size
				}
				s.add(start, end)
				for i := start; i < end; i++ {
					bitmap[i] = true
				}
			} else { // advance
				// The TCP receiver advances from its current frontier.
				for frontier < size && bitmap[frontier] {
					frontier++
				}
				got := s.advance(frontier)
				want := frontier
				for want < size && bitmap[want] {
					want++
				}
				if got != want {
					return false
				}
				frontier = got
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: intervals remain sorted, non-empty and non-overlapping.
func TestPropertyIntervalSetWellFormed(t *testing.T) {
	f := func(pairs []uint8) bool {
		var s intervalSet
		for i := 0; i+1 < len(pairs); i += 2 {
			a, b := int64(pairs[i]), int64(pairs[i+1])
			if a > b {
				a, b = b, a
			}
			s.add(a, b)
			for j := range s.iv {
				if s.iv[j].start >= s.iv[j].end {
					return false
				}
				if j > 0 && s.iv[j-1].end >= s.iv[j].start {
					return false // overlap or touching (should coalesce)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
