package tcp

import (
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
)

// Config holds the tunables of the TCP model. Zero fields are filled
// with defaults by Defaults.
type Config struct {
	// MSS is the maximum segment size in bytes (payload); with 40
	// bytes of headers the default gives full-sized 1500-byte packets
	// as in the paper.
	MSS int
	// RcvWnd is the advertised receive window in bytes. The paper
	// verified all hosts used window scaling; a multi-megabyte window
	// lets single flows fill even bloated buffers.
	RcvWnd int64
	// InitialWindow is the initial congestion window in segments
	// (paper-era Linux used 3; the IW10 debate postdates the testbed).
	InitialWindow int
	// MinRTO / MaxRTO clamp the retransmission timeout.
	MinRTO, MaxRTO time.Duration
	// InitialRTO applies before any RTT sample (RFC 6298: 1 s).
	InitialRTO time.Duration
	// DelAckDelay is the delayed-ACK timer.
	DelAckDelay time.Duration
	// DupAckThreshold triggers fast retransmit (3).
	DupAckThreshold int
	// MaxSynRetries bounds connection establishment attempts.
	MaxSynRetries int
	// MaxRetries bounds consecutive data retransmission timeouts
	// before the connection aborts.
	MaxRetries int
	// NewCC constructs the congestion control algorithm per
	// connection; nil means Reno.
	NewCC func() CongestionControl
	// SACK enables RFC 2018-style selective acknowledgments: the
	// receiver reports out-of-order blocks and the sender retransmits
	// only the holes, which keeps recovery from collapsing into
	// timeouts after burst losses. Disabled by default (the base
	// model is NewReno); the abl-sack experiment quantifies the
	// difference.
	SACK bool
	// ECN enables RFC 3168 explicit congestion notification: data
	// packets are sent ECN-capable, AQM queues configured for ECN mark
	// them instead of dropping, and the sender reduces its window on
	// the echoed mark without losing a packet. Both endpoints' stacks
	// must enable it (SYN-time negotiation). Disabled by default; the
	// abl-ecn experiment quantifies the effect.
	ECN bool
}

// Defaults returns cfg with zero fields replaced by the model
// defaults.
func Defaults(cfg Config) Config {
	if cfg.MSS == 0 {
		cfg.MSS = 1460
	}
	if cfg.RcvWnd == 0 {
		cfg.RcvWnd = 4 << 20
	}
	if cfg.InitialWindow == 0 {
		cfg.InitialWindow = 3
	}
	if cfg.MinRTO == 0 {
		cfg.MinRTO = 200 * time.Millisecond
	}
	if cfg.MaxRTO == 0 {
		cfg.MaxRTO = 60 * time.Second
	}
	if cfg.InitialRTO == 0 {
		cfg.InitialRTO = time.Second
	}
	if cfg.DelAckDelay == 0 {
		cfg.DelAckDelay = 40 * time.Millisecond
	}
	if cfg.DupAckThreshold == 0 {
		cfg.DupAckThreshold = 3
	}
	if cfg.MaxSynRetries == 0 {
		cfg.MaxSynRetries = 6
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 8
	}
	if cfg.NewCC == nil {
		cfg.NewCC = NewReno
	}
	return cfg
}

// Listener accepts inbound connections on a port.
type Listener struct {
	stack  *Stack
	port   uint16
	accept func(*Conn)
}

// Stack is the per-node TCP instance: it owns the node's connections
// and listeners and demultiplexes inbound segments by flow.
type Stack struct {
	node *netem.Node
	eng  *sim.Engine
	cfg  Config

	conns     map[netem.Flow]*Conn // keyed by local->remote flow
	listeners map[uint16]*Listener

	// Conn reuse (opt-in, see SetConnReuse): closed connections park
	// here and newConn revives them, keeping their interval backing
	// arrays warm. The list survives Reset — a carcass reuse makes the
	// next cell's flows allocation-free from the first connection.
	reuse bool
	free  []*Conn
}

// NewStack attaches a TCP stack to a node.
func NewStack(node *netem.Node, cfg Config) *Stack {
	return &Stack{
		node:      node,
		eng:       node.Engine(),
		cfg:       Defaults(cfg),
		conns:     make(map[netem.Flow]*Conn),
		listeners: make(map[uint16]*Listener),
	}
}

// Reset re-initializes the stack for carcass reuse with the next run's
// configuration, leaving it exactly as NewStack would: no connections,
// no listeners. The node's port bindings are cleared separately by
// Node.Reset; dropped Conns carry their own timers, which the engine's
// Reset already unhooked.
func (s *Stack) Reset(cfg Config) {
	s.cfg = Defaults(cfg)
	clear(s.conns)
	clear(s.listeners)
}

// Node returns the node this stack is bound to.
func (s *Stack) Node() *netem.Node { return s.node }

// SetConnReuse opts the stack into connection memory reuse: a fully
// closed Conn is returned to a stack-local free list right after its
// OnClose callback and revived by the next Dial or accepted SYN,
// with identical semantics to a fresh allocation. Only enable it
// when no caller retains a *Conn past its OnClose — background
// traffic qualifies; applications that inspect finished connections
// (and tests) must leave it off.
func (s *Stack) SetConnReuse(on bool) { s.reuse = on }

// release parks a closed connection for reuse; no-op unless the
// stack opted in. finish has already stopped both owned timers (an
// eager heap removal), so nothing in the engine references c.
func (s *Stack) release(c *Conn) {
	if !s.reuse {
		return
	}
	s.free = append(s.free, c)
}

// Listen starts accepting connections on port; accept is invoked for
// each new connection before its handshake completes (register
// callbacks there).
func (s *Stack) Listen(port uint16, accept func(*Conn)) *Listener {
	l := &Listener{stack: s, port: port, accept: accept}
	s.listeners[port] = l
	s.node.Bind(netem.ProtoTCP, port, netem.HandlerFunc(func(p *netem.Packet) {
		s.dispatch(p)
	}))
	return l
}

// Dial opens a connection to the remote address using the stack
// config; variant DialCC overrides congestion control.
func (s *Stack) Dial(remote netem.Addr) *Conn {
	return s.DialCC(remote, nil)
}

// DialCC opens a connection with a specific congestion control
// algorithm (nil = stack default).
func (s *Stack) DialCC(remote netem.Addr, cc CongestionControl) *Conn {
	port := s.node.AllocPort(netem.ProtoTCP)
	flow := netem.Flow{
		Proto: netem.ProtoTCP,
		Src:   s.node.Addr(port),
		Dst:   remote,
	}
	if cc == nil {
		cc = s.cfg.NewCC()
	}
	c := s.newConn(flow, cc)
	c.state = StateSynSent
	s.node.Bind(netem.ProtoTCP, port, netem.HandlerFunc(func(p *netem.Packet) {
		s.dispatch(p)
	}))
	s.conns[flow] = c
	c.sendSyn(false)
	return c
}

func (s *Stack) newConn(flow netem.Flow, cc CongestionControl) *Conn {
	var c *Conn
	if n := len(s.free); n > 0 {
		// Revive a parked connection: zero everything but keep the
		// interval-set backing arrays, which reach steady capacity
		// after a few flows and then never allocate again.
		c = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		sacked, ooo := c.sacked, c.ooo
		sacked.clear()
		ooo.clear()
		*c = Conn{sacked: sacked, ooo: ooo}
	} else {
		c = &Conn{}
	}
	c.stack, c.eng, c.flow, c.cfg, c.cc = s, s.eng, flow, s.cfg, cc
	c.rto, c.rwndPeer, c.finSeqPeer = s.cfg.InitialRTO, s.cfg.RcvWnd, -1
	c.rtoF.c, c.delackF.c, c.paceF.c = c, c, c
	c.pacer, _ = cc.(Pacer)
	s.eng.InitTimer(&c.rtoTimer, &c.rtoF)
	s.eng.InitTimer(&c.delackTimer, &c.delackF)
	s.eng.InitTimer(&c.paceTimer, &c.paceF)
	return c
}

// dispatch routes an inbound packet to its connection, creating
// server-side connections for SYNs to listening ports. The segment is
// consumed here: once handling returns it goes back to the pool, so
// connection code must copy anything it wants to keep (it does — SACK
// blocks and timestamps are copied into connection state).
func (s *Stack) dispatch(p *netem.Packet) {
	seg, ok := p.Payload.(*Segment)
	if !ok {
		return
	}
	// The ECN CE mark lives on the packet ("IP header"); surface it to
	// the transport alongside the segment.
	seg.CE = p.CE
	// The local->remote flow is the reverse of the packet's flow.
	flow := p.Flow.Reverse()
	if c, ok := s.conns[flow]; ok {
		c.handleSegment(seg)
		releaseSegment(seg)
		return
	}
	l, ok := s.listeners[p.Flow.Dst.Port]
	if !ok || !seg.SYN || seg.ACK {
		releaseSegment(seg)
		return // no listener or not a connection attempt
	}
	c := s.newConn(flow, s.cfg.NewCC())
	c.state = StateSynReceived
	c.tsRecent = seg.TSval
	c.ecnOK = s.cfg.ECN && seg.ECNSetup
	s.conns[flow] = c
	if l.accept != nil {
		l.accept(c)
	}
	c.sendSyn(true)
	releaseSegment(seg)
}

// remove forgets a closed connection and releases ephemeral ports.
func (s *Stack) remove(c *Conn) {
	delete(s.conns, c.flow)
	port := c.flow.Src.Port
	if _, listening := s.listeners[port]; !listening {
		s.node.Unbind(netem.ProtoTCP, port)
	}
}

// ConnCount returns the number of live connections (for tests and
// workload monitoring).
func (s *Stack) ConnCount() int { return len(s.conns) }
