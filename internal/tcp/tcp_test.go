package tcp

import (
	"testing"
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
)

// testNet is a two-host dumbbell: client -- bottleneck -- server.
type testNet struct {
	eng            *sim.Engine
	nw             *netem.Network
	client, server *netem.Node
	cs, sc         *netem.Link // client->server, server->client
	cStack, sStack *Stack
}

// newTestNet builds a symmetric bottleneck with the given rate, one-way
// delay and queue length in packets.
func newTestNet(rate float64, delay time.Duration, qlen int, cfg Config) *testNet {
	eng := sim.New()
	nw := netem.NewNetwork(eng)
	c := nw.NewNode("client")
	s := nw.NewNode("server")
	cs, sc := nw.Connect(c, s, rate, delay, qlen)
	return &testNet{
		eng: eng, nw: nw, client: c, server: s, cs: cs, sc: sc,
		cStack: NewStack(c, cfg),
		sStack: NewStack(s, cfg),
	}
}

// transfer runs a single n-byte server->client transfer and returns
// the client conn, server conn, and completion time (zero if it never
// completed).
func (tn *testNet) transfer(t *testing.T, n int64, dur time.Duration) (cc, sc *Conn, done sim.Time) {
	t.Helper()
	var serverConn *Conn
	tn.sStack.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnEstablished = func() {
			c.Send(n)
			c.CloseWrite()
		}
		c.OnPeerClose = func(*Conn) { c.CloseWrite() }
	})
	clientConn := tn.cStack.Dial(tn.server.Addr(80))
	var completed sim.Time
	got := int64(0)
	clientConn.OnReadable = func(nb int64) { got += nb }
	clientConn.OnPeerClose = func(*Conn) {
		completed = tn.eng.Now()
		clientConn.CloseWrite()
	}
	tn.eng.RunUntil(sim.Time(dur))
	if got != n && completed != 0 {
		t.Fatalf("completed with %d bytes, want %d", got, n)
	}
	return clientConn, serverConn, completed
}

func TestHandshakeAndSmallTransfer(t *testing.T) {
	tn := newTestNet(10e6, 10*time.Millisecond, 100, Config{})
	cc, sc, done := tn.transfer(t, 10000, 5*time.Second)
	if done == 0 {
		t.Fatal("transfer never completed")
	}
	if cc.Stat.BytesReceived != 10000 {
		t.Fatalf("received %d bytes", cc.Stat.BytesReceived)
	}
	if sc.Stat.BytesAcked != 10000 {
		t.Fatalf("server acked bytes = %d", sc.Stat.BytesAcked)
	}
	// ~3 RTTs minimum: SYN handshake + slow-start doubling.
	if done < sim.Time(40*time.Millisecond) {
		t.Fatalf("implausibly fast completion: %v", done)
	}
}

func TestConnectionsClose(t *testing.T) {
	tn := newTestNet(10e6, 5*time.Millisecond, 100, Config{})
	cc, sc, done := tn.transfer(t, 5000, 10*time.Second)
	tn.eng.RunFor(5 * time.Second) // allow teardown to finish
	if done == 0 {
		t.Fatal("no completion")
	}
	if cc.State() != StateClosed {
		t.Fatalf("client state = %v", cc.State())
	}
	if sc.State() != StateClosed {
		t.Fatalf("server state = %v", sc.State())
	}
	if tn.cStack.ConnCount() != 0 || tn.sStack.ConnCount() != 0 {
		t.Fatalf("conns leaked: %d/%d", tn.cStack.ConnCount(), tn.sStack.ConnCount())
	}
}

func TestThroughputSaturatesBottleneck(t *testing.T) {
	// 8 Mbit/s, 20 ms one-way; BDP = 8e6*0.04/8 = 40 KB ~ 27 pkts.
	// With a BDP-sized buffer a single long flow should achieve high
	// utilization (Appenzeller's regime for n=1).
	tn := newTestNet(8e6, 20*time.Millisecond, 27, Config{})
	tn.sStack.Listen(80, func(c *Conn) {
		c.OnEstablished = func() { c.SendInfinite() }
	})
	cc := tn.cStack.Dial(tn.server.Addr(80))
	tn.eng.RunUntil(sim.Time(30 * time.Second))
	dur := 30.0
	gput := float64(cc.Stat.BytesReceived) * 8 / dur / 8e6 * 100
	if gput < 80 {
		t.Fatalf("goodput = %.1f%% of bottleneck, want >80%%", gput)
	}
}

func TestTinyBufferReducesUtilization(t *testing.T) {
	// A single Reno flow over a 2-packet buffer cannot keep the pipe
	// full (paper: "very small buffers can lead to underutilization").
	mk := func(qlen int) float64 {
		tn := newTestNet(8e6, 20*time.Millisecond, qlen, Config{})
		tn.sStack.Listen(80, func(c *Conn) {
			c.OnEstablished = func() { c.SendInfinite() }
		})
		cc := tn.cStack.Dial(tn.server.Addr(80))
		tn.eng.RunUntil(sim.Time(20 * time.Second))
		return float64(cc.Stat.BytesReceived) * 8 / 20 / 8e6
	}
	tiny := mk(2)
	bdp := mk(30)
	if tiny >= bdp {
		t.Fatalf("tiny-buffer utilization %.2f >= BDP-buffer %.2f", tiny, bdp)
	}
	if bdp-tiny < 0.1 {
		t.Fatalf("expected clear utilization gap, got %.2f vs %.2f", tiny, bdp)
	}
}

func TestLossRecoveryCompletes(t *testing.T) {
	// Heavily constrained buffer forces drops; the transfer must still
	// complete via fast retransmit / RTO.
	tn := newTestNet(2e6, 25*time.Millisecond, 4, Config{})
	cc, sc, done := tn.transfer(t, 500_000, 60*time.Second)
	if done == 0 {
		t.Fatal("transfer did not complete under loss")
	}
	if cc.Stat.BytesReceived != 500_000 {
		t.Fatalf("received %d", cc.Stat.BytesReceived)
	}
	if sc.Stat.Retransmissions == 0 {
		t.Fatal("expected retransmissions over a 4-packet buffer")
	}
}

func TestFastRetransmitUsedBeforeTimeout(t *testing.T) {
	tn := newTestNet(4e6, 15*time.Millisecond, 8, Config{})
	_, sc, done := tn.transfer(t, 2_000_000, 60*time.Second)
	if done == 0 {
		t.Fatal("no completion")
	}
	if sc.Stat.FastRetransmits == 0 {
		t.Fatal("expected fast retransmits")
	}
	if sc.Stat.Timeouts > sc.Stat.FastRetransmits {
		t.Fatalf("timeouts (%d) dominate fast retransmits (%d): recovery is broken",
			sc.Stat.Timeouts, sc.Stat.FastRetransmits)
	}
}

func TestSelfInducedQueueingInflatesRTT(t *testing.T) {
	// Bufferbloat mechanics: a long upload over a 1 Mbit/s uplink with
	// a 256-packet buffer must inflate the measured sRTT to seconds
	// (paper Figure 4c: ~3 s). The paper's access hosts ran CUBIC,
	// whose fast regrowth to wMax keeps the bloated buffer filled;
	// NewReno without SACK drains it after burst losses.
	tn := newTestNet(1e6, 5*time.Millisecond, 256, Config{NewCC: NewCubic})
	tn.sStack.Listen(80, func(c *Conn) {
		c.OnPeerClose = func(*Conn) { c.CloseWrite() }
	})
	up := tn.cStack.Dial(tn.server.Addr(80))
	up.SendInfinite()
	tn.eng.RunUntil(sim.Time(40 * time.Second))
	srtt := up.SRTT()
	if srtt < 1500*time.Millisecond {
		t.Fatalf("sRTT = %v, want >1.5s of self-induced queueing", srtt)
	}
	// And with an 8-packet buffer the same workload stays under 300 ms.
	tn2 := newTestNet(1e6, 5*time.Millisecond, 8, Config{NewCC: NewCubic})
	tn2.sStack.Listen(80, func(c *Conn) {})
	up2 := tn2.cStack.Dial(tn2.server.Addr(80))
	up2.SendInfinite()
	tn2.eng.RunUntil(sim.Time(40 * time.Second))
	if up2.SRTT() > 300*time.Millisecond {
		t.Fatalf("small-buffer sRTT = %v, want <300ms", up2.SRTT())
	}
}

func TestRTTEstimate(t *testing.T) {
	tn := newTestNet(100e6, 30*time.Millisecond, 1000, Config{})
	cc, _, done := tn.transfer(t, 200_000, 10*time.Second)
	if done == 0 {
		t.Fatal("no completion")
	}
	// Uncongested path RTT is 60 ms; the server-side estimate is the
	// meaningful one (it sends the data), but the client samples from
	// its request/FIN exchange too.
	if cc.SRTT() < 55*time.Millisecond || cc.SRTT() > 150*time.Millisecond {
		t.Fatalf("client sRTT = %v, want ~60ms", cc.SRTT())
	}
}

func TestCubicTransfersComplete(t *testing.T) {
	cfg := Config{NewCC: NewCubic}
	tn := newTestNet(8e6, 20*time.Millisecond, 30, cfg)
	cc, _, done := tn.transfer(t, 3_000_000, 60*time.Second)
	if done == 0 {
		t.Fatal("CUBIC transfer did not complete")
	}
	if cc.Stat.BytesReceived != 3_000_000 {
		t.Fatalf("received %d", cc.Stat.BytesReceived)
	}
}

func TestCubicSaturates(t *testing.T) {
	cfg := Config{NewCC: NewCubic}
	tn := newTestNet(8e6, 20*time.Millisecond, 27, cfg)
	tn.sStack.Listen(80, func(c *Conn) {
		c.OnEstablished = func() { c.SendInfinite() }
	})
	cc := tn.cStack.Dial(tn.server.Addr(80))
	tn.eng.RunUntil(sim.Time(30 * time.Second))
	gput := float64(cc.Stat.BytesReceived) * 8 / 30 / 8e6 * 100
	if gput < 80 {
		t.Fatalf("CUBIC goodput = %.1f%%, want >80%%", gput)
	}
}

func TestHandshakeTimeoutAborts(t *testing.T) {
	eng := sim.New()
	nw := netem.NewNetwork(eng)
	c := nw.NewNode("client")
	_ = nw.NewNode("server") // no link: SYNs are undeliverable
	st := NewStack(c, Config{MaxSynRetries: 2})
	var gotErr error
	conn := st.Dial(netem.Addr{Node: 2, Port: 80})
	conn.OnClose = func(err error) { gotErr = err }
	eng.RunUntil(sim.Time(2 * time.Minute))
	if gotErr != ErrHandshakeTimeout {
		t.Fatalf("err = %v, want handshake timeout", gotErr)
	}
	if conn.State() != StateClosed {
		t.Fatalf("state = %v", conn.State())
	}
}

func TestManyConcurrentFlows(t *testing.T) {
	// 16 concurrent downloads share an 8 Mbit/s bottleneck; all must
	// complete and aggregate utilization must be high.
	tn := newTestNet(8e6, 10*time.Millisecond, 60, Config{})
	tn.sStack.Listen(80, func(c *Conn) {
		c.OnEstablished = func() {
			c.Send(200_000)
			c.CloseWrite()
		}
		c.OnPeerClose = func(*Conn) { c.CloseWrite() }
	})
	doneCount := 0
	for i := 0; i < 16; i++ {
		cc := tn.cStack.Dial(tn.server.Addr(80))
		cc.OnPeerClose = func(*Conn) {
			doneCount++
			cc.CloseWrite()
		}
	}
	tn.eng.RunUntil(sim.Time(60 * time.Second))
	if doneCount != 16 {
		t.Fatalf("completed %d/16 flows", doneCount)
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	// Request/response on one connection (the web model's shape).
	tn := newTestNet(10e6, 10*time.Millisecond, 100, Config{})
	var reqGot int64
	tn.sStack.Listen(80, func(c *Conn) {
		c.OnReadable = func(n int64) {
			reqGot += n
			if reqGot == 300 {
				c.Send(50_000)
				c.CloseWrite()
			}
		}
		c.OnPeerClose = func(*Conn) { c.CloseWrite() }
	})
	cc := tn.cStack.Dial(tn.server.Addr(80))
	var respGot int64
	closed := false
	cc.OnEstablished = func() { cc.Send(300) }
	cc.OnReadable = func(n int64) { respGot += n }
	cc.OnPeerClose = func(*Conn) {
		closed = true
		cc.CloseWrite()
	}
	tn.eng.RunUntil(sim.Time(30 * time.Second))
	if reqGot != 300 {
		t.Fatalf("server got %d request bytes", reqGot)
	}
	if respGot != 50_000 {
		t.Fatalf("client got %d response bytes", respGot)
	}
	if !closed {
		t.Fatal("client never saw peer close")
	}
}

func TestDelayedAckReducesAckTraffic(t *testing.T) {
	tn := newTestNet(10e6, 10*time.Millisecond, 100, Config{})
	cc, sc, done := tn.transfer(t, 1_000_000, 30*time.Second)
	if done == 0 {
		t.Fatal("no completion")
	}
	dataSegs := sc.Stat.SegmentsSent
	ackSegs := cc.Stat.SegmentsSent
	// With every-2nd-segment acking, acks should be well under data
	// segments but more than a quarter of them.
	if ackSegs >= dataSegs {
		t.Fatalf("acks (%d) >= data segments (%d)", ackSegs, dataSegs)
	}
	if float64(ackSegs) < 0.25*float64(dataSegs) {
		t.Fatalf("suspiciously few acks: %d vs %d data", ackSegs, dataSegs)
	}
}

func TestStatsRetransmissionCounting(t *testing.T) {
	tn := newTestNet(10e6, 10*time.Millisecond, 1000, Config{})
	_, sc, done := tn.transfer(t, 100_000, 10*time.Second)
	if done == 0 {
		t.Fatal("no completion")
	}
	if sc.Stat.Retransmissions != 0 {
		t.Fatalf("lossless path had %d retransmissions", sc.Stat.Retransmissions)
	}
}

func TestSegmentWireSize(t *testing.T) {
	s := &Segment{Len: 1460}
	if s.wireSize() != 1500 {
		t.Fatalf("wire size = %d, want 1500", s.wireSize())
	}
	ack := &Segment{ACK: true}
	if ack.wireSize() != 40 {
		t.Fatalf("ack size = %d, want 40", ack.wireSize())
	}
}
