package tcp

import (
	"math"
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
)

// State is the connection state, a reduced TCP state machine
// sufficient for the study's workloads.
type State int

// Connection states.
const (
	StateSynSent State = iota
	StateSynReceived
	StateEstablished
	StateClosing // FIN sent and/or received, draining
	StateClosed
)

func (s State) String() string {
	switch s {
	case StateSynSent:
		return "syn-sent"
	case StateSynReceived:
		return "syn-received"
	case StateEstablished:
		return "established"
	case StateClosing:
		return "closing"
	case StateClosed:
		return "closed"
	default:
		return "unknown"
	}
}

// Stats are per-connection counters exposed to applications and the
// experiment harness (the paper's tcpcsm-style analysis).
type Stats struct {
	BytesSent       int64 // payload bytes transmitted (incl. retransmits)
	BytesAcked      int64 // payload bytes cumulatively acked
	BytesReceived   int64 // in-order payload bytes delivered
	SegmentsSent    uint64
	SegmentsRcvd    uint64
	Retransmissions uint64
	Timeouts        uint64
	FastRetransmits uint64
	RTTSamples      uint64
	ECNReductions   uint64 // window reductions triggered by ECN-Echo
	EstablishedAt   sim.Time
	ClosedAt        sim.Time
}

// Conn is one TCP connection endpoint.
type Conn struct {
	stack *Stack
	eng   *sim.Engine
	flow  netem.Flow // local -> remote
	state State
	cfg   Config
	cc    CongestionControl

	// Sender state.
	sndUna     int64 // oldest unacknowledged byte
	sndNxt     int64 // next byte to send
	sndLimit   int64 // application stream length so far
	infinite   bool  // application has unbounded data
	finQueued  bool  // application closed its write side
	finSent    bool
	finAcked   bool
	cwnd       float64
	ssthresh   float64
	rwndPeer   int64
	dupAcks    int
	inRecovery bool
	recoverTo  int64
	// SACK sender state: ranges the peer holds out of order, and the
	// hole-retransmission cursor.
	sacked       intervalSet
	sackRetxNext int64
	rto          time.Duration
	srtt         time.Duration
	rttvar       time.Duration
	backoff      int
	synTries     int

	// Owned reschedulable timers (and their Fire adapters), embedded so
	// arming a retransmission or delayed-ACK deadline never allocates —
	// these are by far the highest-frequency timers in a congested cell.
	rtoTimer    sim.Timer
	delackTimer sim.Timer
	paceTimer   sim.Timer
	rtoF        rtoFirer
	delackF     delackFirer
	paceF       paceFirer

	// Pacing state: pacer is the congestion control's Pacer extension
	// (nil for unpaced algorithms — the nil path is byte-identical to a
	// connection without the hook), paceNext the earliest time trySend
	// may emit the next new-data segment.
	pacer    Pacer
	paceNext sim.Time

	// ECN state (RFC 3168). ecnOK is set when both ends negotiated
	// ECN; the sender reduces once per window on ECE and confirms with
	// CWR; the receiver echoes CE marks while ecnEchoing.
	ecnOK         bool
	ecnEchoing    bool
	ecnCWRPending bool
	ecnReactedTo  int64

	// Receiver state.
	rcvNxt      int64
	ooo         intervalSet
	finSeqPeer  int64 // -1 until peer's FIN seen
	finRcvd     bool  // peer FIN processed (rcvNxt passed it)
	tsRecent    sim.Time
	unackedSegs int

	// Application callbacks. All are optional.
	OnEstablished func()
	OnReadable    func(newBytes int64) // in-order payload delivered
	// OnPeerClose fires when the peer's FIN is consumed. It receives
	// the connection so sinks can install one shared function (e.g.
	// the (*Conn).CloseWrite method expression) instead of allocating
	// a capturing closure per accepted connection.
	OnPeerClose func(*Conn)
	OnClose     func(err error) // fully closed or aborted

	// Err records an abort reason (e.g. handshake failure).
	Err error

	// Stat accumulates counters.
	Stat Stats
}

// rtoFirer and delackFirer adapt the connection's two owned timers to
// sim.Handler with distinct Fire targets.
type rtoFirer struct{ c *Conn }

func (f *rtoFirer) Fire(now sim.Time) { f.c.onTimeout() }

type delackFirer struct{ c *Conn }

func (f *delackFirer) Fire(now sim.Time) { f.c.onDelack() }

type paceFirer struct{ c *Conn }

func (f *paceFirer) Fire(now sim.Time) { f.c.trySend() }

// connError is a minimal error type for aborts.
type connError string

func (e connError) Error() string { return string(e) }

// ErrHandshakeTimeout is reported when SYN retries are exhausted.
const ErrHandshakeTimeout = connError("tcp: handshake timeout")

// ErrRetriesExceeded is reported when consecutive data retransmission
// timeouts exhaust the retry budget (peer unreachable or gone).
const ErrRetriesExceeded = connError("tcp: retransmission retries exceeded")

// LocalAddr returns the local endpoint address.
func (c *Conn) LocalAddr() netem.Addr { return c.flow.Src }

// RemoteAddr returns the remote endpoint address.
func (c *Conn) RemoteAddr() netem.Addr { return c.flow.Dst }

// State returns the current connection state.
func (c *Conn) State() State { return c.state }

// SRTT returns the smoothed round-trip time estimate.
func (c *Conn) SRTT() time.Duration { return c.srtt }

// Cwnd returns the current congestion window in bytes.
func (c *Conn) Cwnd() float64 { return c.cwnd }

// Send appends n bytes to the outgoing stream.
func (c *Conn) Send(n int64) {
	if n <= 0 || c.finQueued || c.state == StateClosed {
		return
	}
	c.sndLimit += n
	c.trySend()
}

// SendInfinite marks the stream as unbounded (the paper's long-lived
// "infinite duration" flows). The connection transmits as fast as
// congestion control allows until the simulation ends.
func (c *Conn) SendInfinite() {
	c.infinite = true
	c.trySend()
}

// CloseWrite half-closes the connection: a FIN is sent once all queued
// data has been transmitted and acknowledged by the window.
func (c *Conn) CloseWrite() {
	if c.finQueued || c.infinite {
		return
	}
	c.finQueued = true
	c.trySend()
}

// dataEnd returns the stream length limit for the sender.
func (c *Conn) dataEnd() int64 {
	if c.infinite {
		return math.MaxInt64 / 2
	}
	return c.sndLimit
}

// inflight returns the number of unacknowledged bytes.
func (c *Conn) inflight() float64 { return float64(c.sndNxt - c.sndUna) }

// --- segment emission -------------------------------------------------

//qoe:hotpath
func (c *Conn) emit(seg *Segment) {
	seg.Wnd = c.cfg.RcvWnd
	seg.TSval = c.eng.Now()
	seg.TSecr = c.tsRecent
	if c.ecnOK {
		if seg.ACK && c.ecnEchoing {
			seg.ECE = true
		}
		if c.ecnCWRPending && seg.Len > 0 {
			seg.CWR = true
			c.ecnCWRPending = false
		}
	}
	pkt := c.stack.node.Network().NewPacket()
	pkt.Flow = c.flow
	pkt.Size = seg.wireSize()
	pkt.Payload = seg
	// Only data segments are ECN-capable (RFC 3168 §6.1.5: pure
	// ACKs are sent non-ECT).
	pkt.ECT = c.ecnOK && seg.Len > 0
	c.Stat.SegmentsSent++
	c.stack.node.Send(pkt)
}

func (c *Conn) sendSyn(withAck bool) {
	setup := c.cfg.ECN
	if withAck {
		// Server side: confirm only if the client offered and our
		// stack is ECN-enabled (ecnOK was decided at SYN receipt).
		setup = c.ecnOK
	}
	seg := newSegment()
	seg.SYN, seg.ACK, seg.Ack, seg.ECNSetup = true, withAck, c.rcvNxt, setup
	c.emit(seg)
	c.synTries++
	c.armRTO()
}

//qoe:hotpath
func (c *Conn) sendAck() {
	c.stopDelack()
	c.unackedSegs = 0
	seg := newSegment()
	seg.ACK, seg.Ack = true, c.ackValue()
	if c.cfg.SACK && !c.ooo.empty() {
		// Report the most recent out-of-order blocks (up to three,
		// as real option space allows with timestamps).
		for i := len(c.ooo.iv) - 1; i >= 0 && len(seg.SACK) < 3; i-- {
			seg.SACK = append(seg.SACK, SACKBlock{c.ooo.iv[i].start, c.ooo.iv[i].end})
		}
	}
	c.emit(seg)
}

// retransmitOneSACK retransmits the first unsacked hole at or above
// max(sndUna, sackRetxNext), bounded by the next sacked block and by
// the recovery point (data above recoverTo has no loss evidence yet).
// It reports whether a hole was retransmitted.
func (c *Conn) retransmitOneSACK() bool {
	start := c.sndUna
	if c.sackRetxNext > start {
		start = c.sackRetxNext
	}
	for _, iv := range c.sacked.iv {
		if iv.end <= start {
			continue
		}
		if iv.start <= start {
			start = iv.end
			continue
		}
		break
	}
	limit := c.sndNxt
	if c.inRecovery && c.recoverTo < limit {
		limit = c.recoverTo
	}
	if start >= limit {
		return false
	}
	n := min64(int64(c.cfg.MSS), min64(c.dataEnd()-start, limit-start))
	for _, iv := range c.sacked.iv {
		if iv.start > start && iv.start-start < n {
			n = iv.start - start
		}
	}
	if n <= 0 {
		return false
	}
	seg := newSegment()
	seg.Seq, seg.Len, seg.ACK, seg.Ack = start, int(n), true, c.ackValue()
	c.emit(seg)
	c.Stat.BytesSent += n
	c.sackRetxNext = start + n
	return true
}

// ackValue returns the cumulative ack, counting the peer's FIN as one
// sequence unit once consumed.
func (c *Conn) ackValue() int64 {
	if c.finRcvd {
		return c.finSeqPeer + 1
	}
	return c.rcvNxt
}

// trySend transmits as much as the congestion and peer windows allow.
// Paced connections additionally space new-data segments by the
// pacer's interval, parking on the owned pace timer when ahead of
// schedule; retransmissions (which go through retransmitOne*) are
// never paced.
//
//qoe:hotpath
func (c *Conn) trySend() {
	if c.state != StateEstablished && c.state != StateClosing {
		return
	}
	mss := int64(c.cfg.MSS)
	for {
		wnd := int64(c.cwnd)
		if c.rwndPeer < wnd {
			wnd = c.rwndPeer
		}
		room := c.sndUna + wnd - c.sndNxt
		avail := c.dataEnd() - c.sndNxt
		if avail > 0 && room > 0 {
			if c.pacer != nil {
				if now := c.eng.Now(); now < c.paceNext {
					if !c.paceTimer.Armed() {
						c.paceTimer.ResetAt(c.paceNext)
					}
					return
				}
			}
			n := min64(mss, min64(avail, room))
			// Avoid silly-window tinygrams: send sub-MSS only if it
			// finishes the stream.
			if n < mss && n < avail {
				return
			}
			seg := newSegment()
			seg.Seq, seg.Len, seg.ACK, seg.Ack = c.sndNxt, int(n), true, c.ackValue()
			c.emit(seg)
			c.Stat.BytesSent += n
			c.sndNxt += n
			c.armRTO()
			if c.pacer != nil {
				if iv := c.pacer.PacingInterval(c, n); iv > 0 {
					base := c.eng.Now()
					if c.paceNext > base {
						base = c.paceNext
					}
					c.paceNext = base.Add(iv)
				}
			}
			continue
		}
		// FIN transmission once the stream is fully sent.
		if c.finQueued && !c.finSent && avail == 0 && room > 0 {
			seg := newSegment()
			seg.Seq, seg.FIN, seg.ACK, seg.Ack = c.sndNxt, true, true, c.ackValue()
			c.emit(seg)
			c.finSent = true
			c.sndNxt++ // FIN consumes one sequence unit
			c.armRTO()
			if c.state == StateEstablished {
				c.state = StateClosing
			}
		}
		return
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// --- retransmission timer ----------------------------------------------

func (c *Conn) armRTO() {
	if c.rtoTimer.Armed() {
		return
	}
	c.startRTO()
}

func (c *Conn) startRTO() {
	d := c.rto << c.backoff
	if d > c.cfg.MaxRTO {
		d = c.cfg.MaxRTO
	}
	c.rtoTimer.Reset(d)
}

func (c *Conn) stopRTO() {
	c.rtoTimer.Stop()
}

func (c *Conn) onTimeout() {
	switch c.state {
	case StateSynSent, StateSynReceived:
		if c.synTries > c.cfg.MaxSynRetries {
			c.abort(ErrHandshakeTimeout)
			return
		}
		c.backoff++
		c.sendSyn(c.state == StateSynReceived)
		return
	case StateClosed:
		return
	}
	if c.sndUna >= c.sndNxt {
		return // nothing outstanding
	}
	if c.backoff >= c.cfg.MaxRetries {
		c.abort(ErrRetriesExceeded)
		return
	}
	// RTO: collapse to slow start and go-back-N from sndUna.
	c.Stat.Timeouts++
	c.Stat.Retransmissions++
	c.cc.OnTimeout(c, c.eng.Now())
	c.cwnd = float64(c.cfg.MSS)
	c.inRecovery = false
	c.dupAcks = 0
	c.backoff++
	// Discard SACK state: after a timeout the model goes back-N, so
	// stale scoreboard entries would only suppress needed resends.
	c.sacked = intervalSet{}
	c.sackRetxNext = 0
	c.retransmitOne()
	c.sndNxt = c.retransmitHigh()
	// If the collapse rewound past an already-sent FIN, allow trySend
	// to emit it again once the data drains.
	if c.finSent && !c.finAcked && c.sndNxt <= c.sndLimit {
		c.finSent = false
	}
	c.startRTO()
}

// retransmitHigh returns where sndNxt should sit after a go-back-N
// retransmit of the first segment: just past the retransmitted data.
func (c *Conn) retransmitHigh() int64 {
	n := min64(int64(c.cfg.MSS), c.dataEnd()-c.sndUna)
	if n <= 0 {
		return c.sndUna + 1 // FIN retransmit
	}
	return c.sndUna + n
}

// retransmitOne resends one segment starting at sndUna.
func (c *Conn) retransmitOne() {
	n := min64(int64(c.cfg.MSS), c.dataEnd()-c.sndUna)
	if n > 0 {
		seg := newSegment()
		seg.Seq, seg.Len, seg.ACK, seg.Ack = c.sndUna, int(n), true, c.ackValue()
		c.emit(seg)
		c.Stat.BytesSent += n
		return
	}
	if c.finSent {
		seg := newSegment()
		seg.Seq, seg.FIN, seg.ACK, seg.Ack = c.sndUna, true, true, c.ackValue()
		c.emit(seg)
	}
}

// --- delayed acks -------------------------------------------------------

func (c *Conn) scheduleDelack() {
	if c.delackTimer.Armed() {
		return
	}
	c.delackTimer.Reset(c.cfg.DelAckDelay)
}

func (c *Conn) onDelack() {
	if c.unackedSegs > 0 {
		c.sendAck()
	}
}

func (c *Conn) stopDelack() {
	c.delackTimer.Stop()
}

// --- RTT estimation (RFC 6298) ------------------------------------------

func (c *Conn) sampleRTT(tsecr sim.Time) {
	if tsecr <= 0 {
		return
	}
	r := c.eng.Now().Sub(tsecr)
	if r < 0 {
		return
	}
	c.Stat.RTTSamples++
	if c.srtt == 0 {
		c.srtt = r
		c.rttvar = r / 2
	} else {
		d := c.srtt - r
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + r) / 8
	}
	rto := c.srtt + 4*c.rttvar
	if rto < c.cfg.MinRTO {
		rto = c.cfg.MinRTO
	}
	if rto > c.cfg.MaxRTO {
		rto = c.cfg.MaxRTO
	}
	c.rto = rto
}

// --- segment processing ---------------------------------------------------

// handleSegment processes one inbound segment addressed to this
// connection.
//
//qoe:hotpath
func (c *Conn) handleSegment(seg *Segment) {
	if c.state == StateClosed {
		return
	}
	c.Stat.SegmentsRcvd++

	switch c.state {
	case StateSynSent:
		if seg.SYN && seg.ACK {
			c.tsRecent = seg.TSval
			c.ecnOK = c.cfg.ECN && seg.ECNSetup
			c.sampleRTT(seg.TSecr)
			c.becomeEstablished()
			c.sendAck()
			c.trySend()
		}
		return
	case StateSynReceived:
		if seg.SYN {
			// Duplicate SYN: re-answer.
			resp := newSegment()
			resp.SYN, resp.ACK, resp.Ack = true, true, c.rcvNxt
			c.emit(resp)
			return
		}
		if seg.ACK {
			c.stopRTO()
			c.backoff = 0
			c.sampleRTT(seg.TSecr)
			c.becomeEstablished()
			// Fall through to normal processing of any data.
		}
	}

	if seg.ACK {
		c.processAck(seg)
	}
	if seg.Len > 0 || seg.FIN {
		c.processData(seg)
	}
	c.maybeFinishClose()
}

func (c *Conn) becomeEstablished() {
	wasServer := c.state == StateSynReceived
	c.state = StateEstablished
	c.stopRTO()
	c.backoff = 0
	c.Stat.EstablishedAt = c.eng.Now()
	c.cwnd = float64(c.cfg.InitialWindow * c.cfg.MSS)
	c.ssthresh = float64(c.cfg.RcvWnd)
	c.cc.OnInit(c)
	_ = wasServer
	if c.OnEstablished != nil {
		c.OnEstablished()
	}
}

//qoe:hotpath
func (c *Conn) processAck(seg *Segment) {
	c.rwndPeer = seg.Wnd
	finSeq := c.sndLimit // FIN occupies [sndLimit, sndLimit+1)

	// ECN-Echo: reduce the congestion window once per window of data
	// (RFC 3168 §6.1.2) without retransmitting anything — the packet
	// was marked, not lost.
	if seg.ECE && c.ecnOK && !c.inRecovery &&
		c.sndUna >= c.ecnReactedTo && c.sndNxt > c.ecnReactedTo {
		c.Stat.ECNReductions++
		c.cc.OnPacketLoss(c, c.eng.Now())
		c.ecnReactedTo = c.sndNxt
		c.ecnCWRPending = true
	}

	if c.cfg.SACK {
		for _, b := range seg.SACK {
			c.sacked.add(b.Start, b.End)
		}
	}

	switch {
	case seg.Ack > c.sndUna:
		acked := seg.Ack - c.sndUna
		c.sndUna = seg.Ack
		if c.sndNxt < c.sndUna {
			c.sndNxt = c.sndUna
		}
		if c.cfg.SACK {
			c.sacked.advance(c.sndUna)
			if c.sackRetxNext < c.sndUna {
				c.sackRetxNext = c.sndUna
			}
		}
		c.Stat.BytesAcked += acked
		c.sampleRTT(seg.TSecr)
		c.backoff = 0
		if c.finSent && !c.finAcked && !c.infinite && seg.Ack >= finSeq+1 {
			c.finAcked = true
			c.Stat.BytesAcked-- // the FIN unit is not payload
		}
		if c.inRecovery {
			if seg.Ack >= c.recoverTo {
				// Full recovery: deflate to ssthresh.
				c.inRecovery = false
				c.dupAcks = 0
				c.cwnd = c.ssthresh
			} else {
				// Partial ack: retransmit the next hole. With SACK
				// the cursor already points past in-flight repairs;
				// without it, go back to the new sndUna.
				if c.cfg.SACK {
					if c.retransmitOneSACK() {
						c.Stat.Retransmissions++
					}
				} else {
					c.Stat.Retransmissions++
					c.retransmitOne()
				}
				c.cwnd = math.Max(c.cwnd-float64(acked)+float64(c.cfg.MSS), float64(c.cfg.MSS))
			}
		} else {
			c.dupAcks = 0
			c.cc.OnAck(c, acked, c.eng.Now())
			if c.cwnd > float64(c.cfg.RcvWnd) {
				c.cwnd = float64(c.cfg.RcvWnd)
			}
		}
		c.stopRTO()
		if c.sndUna < c.sndNxt {
			c.startRTO()
		}
		c.trySend()

	case seg.Ack == c.sndUna && c.sndNxt > c.sndUna && seg.Len == 0 && !seg.FIN:
		// Duplicate ACK.
		c.dupAcks++
		if c.inRecovery {
			// Conservation: each dup ack funds exactly one
			// transmission — preferentially the next scoreboard hole
			// (SACK), otherwise new data via window inflation.
			c.cwnd += float64(c.cfg.MSS)
			if c.cfg.SACK {
				if c.retransmitOneSACK() {
					c.Stat.Retransmissions++
					c.cwnd -= float64(c.cfg.MSS) // the slot is spent
				} else {
					c.trySend()
				}
			} else {
				c.trySend()
			}
		} else if c.dupAcks == c.cfg.DupAckThreshold {
			c.Stat.FastRetransmits++
			c.Stat.Retransmissions++
			c.cc.OnPacketLoss(c, c.eng.Now())
			c.inRecovery = true
			c.recoverTo = c.sndNxt
			if c.cfg.SACK {
				c.sackRetxNext = c.sndUna
				c.retransmitOneSACK()
			} else {
				c.retransmitOne()
			}
			c.cwnd = c.ssthresh + float64(c.cfg.DupAckThreshold*c.cfg.MSS)
			c.stopRTO()
			c.startRTO()
		}
	}
}

//qoe:hotpath
func (c *Conn) processData(seg *Segment) {
	if c.ecnOK {
		// CWR tells us the sender responded; a fresh CE re-arms the
		// echo (evaluated in this order per RFC 3168 §6.1.3).
		if seg.CWR {
			c.ecnEchoing = false
		}
		if seg.CE {
			c.ecnEchoing = true
		}
	}
	if seg.FIN && c.finSeqPeer < 0 {
		c.finSeqPeer = seg.Seq + int64(seg.Len)
	}
	delivered := int64(0)
	if seg.Len > 0 {
		end := seg.Seq + int64(seg.Len)
		if seg.Seq <= c.rcvNxt {
			if end > c.rcvNxt {
				old := c.rcvNxt
				c.rcvNxt = end
				c.rcvNxt = c.ooo.advance(c.rcvNxt)
				delivered = c.rcvNxt - old
			}
			c.tsRecent = seg.TSval
		} else {
			c.ooo.add(seg.Seq, end)
		}
	} else if seg.Seq <= c.rcvNxt {
		c.tsRecent = seg.TSval
	}

	// Peer FIN becomes consumable once all data before it arrived.
	if c.finSeqPeer >= 0 && !c.finRcvd && c.rcvNxt >= c.finSeqPeer {
		c.finRcvd = true
		if c.state == StateEstablished {
			c.state = StateClosing
		}
	}

	if delivered > 0 {
		c.Stat.BytesReceived += delivered
		if c.OnReadable != nil {
			c.OnReadable(delivered)
		}
	}

	inOrder := seg.Seq <= c.rcvNxt && c.ooo.empty() && !c.finRcvd
	switch {
	case c.finRcvd:
		c.sendAck()
		if c.OnPeerClose != nil {
			cb := c.OnPeerClose
			c.OnPeerClose = nil
			cb(c)
		}
	case !inOrder:
		// Out-of-order or filling: immediate (duplicate) ACK.
		c.sendAck()
	default:
		c.unackedSegs++
		if c.unackedSegs >= 2 {
			c.sendAck()
		} else {
			c.scheduleDelack()
		}
	}
}

// maybeFinishClose closes the connection once both directions are
// done: our FIN acked and the peer's FIN received (or we never need to
// receive one because the peer closed first and we acked it).
func (c *Conn) maybeFinishClose() {
	if c.state == StateClosed {
		return
	}
	ourSideDone := !c.finQueued || c.finAcked
	if c.finQueued && c.finRcvd && c.finAcked {
		c.finish(nil)
		return
	}
	// Passive close: peer finished, we have nothing pending and the
	// application has closed its write side.
	_ = ourSideDone
}

func (c *Conn) finish(err error) {
	if c.state == StateClosed {
		return
	}
	c.state = StateClosed
	c.Err = err
	c.Stat.ClosedAt = c.eng.Now()
	c.stopRTO()
	c.stopDelack()
	c.paceTimer.Stop()
	c.stack.remove(c)
	if c.OnClose != nil {
		c.OnClose(err)
	}
	// After OnClose returns nothing may touch this connection again;
	// on reuse-enabled stacks its memory goes back to the free list.
	c.stack.release(c)
}

func (c *Conn) abort(err error) { c.finish(err) }

// Abort closes the connection immediately with the given reason (the
// model's equivalent of a RST-and-forget). Applications use it to
// enforce deadlines on transfers.
func (c *Conn) Abort(err error) { c.finish(err) }
