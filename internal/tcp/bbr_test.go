package tcp

import (
	"testing"
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
)

func TestBBRName(t *testing.T) {
	if NewBBRLite().Name() != "bbr" {
		t.Fatal("wrong name")
	}
}

func TestBBRImplementsPacer(t *testing.T) {
	if _, ok := NewBBRLite().(Pacer); !ok {
		t.Fatal("BBRLite does not implement Pacer")
	}
}

func TestBBRTransfersComplete(t *testing.T) {
	cfg := Config{NewCC: NewBBRLite, SACK: true}
	for _, qlen := range []int{5, 50, 500} {
		tn := newTestNet(10e6, 10*time.Millisecond, qlen, cfg)
		cc, _, done := tn.transfer(t, 2_000_000, 60*time.Second)
		if done == 0 {
			t.Fatalf("BBR transfer never completed with qlen=%d", qlen)
		}
		if cc.Stat.BytesReceived != 2_000_000 {
			t.Fatalf("qlen=%d: received %d bytes", qlen, cc.Stat.BytesReceived)
		}
	}
}

// TestBBRPacesSegments verifies the pacing hook spaces data segments:
// once past startup, back-to-back wire departures on an uncongested
// link must be separated by roughly segment_size/bandwidth rather than
// arriving in window-sized line-rate bursts.
func TestBBRPacesSegments(t *testing.T) {
	cfg := Config{NewCC: NewBBRLite, SACK: true}
	// Bottleneck 8 Mbit/s; the sender's host link runs at the same
	// rate, so unpaced senders would dump whole windows back-to-back.
	tn := newTestNet(8e6, 20*time.Millisecond, 2000, cfg)
	var departures []sim.Time
	tn.sc.Tap = func(p *netem.Packet, at sim.Time) {
		if seg := p.Payload.(*Segment); seg.Len > 0 {
			departures = append(departures, at)
		}
	}
	tn.sStack.Listen(80, func(c *Conn) {
		c.OnEstablished = func() { c.SendInfinite() }
	})
	tn.cStack.Dial(tn.server.Addr(80))
	tn.eng.RunUntil(sim.Time(10 * time.Second.Nanoseconds()))

	if len(departures) < 100 {
		t.Fatalf("only %d data segments", len(departures))
	}
	// Look at steady state (skip the first 2 s of startup).
	cut := sim.Time(2 * time.Second.Nanoseconds())
	gapsOK, gaps := 0, 0
	for i := 1; i < len(departures); i++ {
		if departures[i] < cut {
			continue
		}
		gaps++
		// 1500 bytes at 8 Mbit/s = 1.5 ms serialization. A paced
		// sender spaces near that; a bursting one has near-zero gaps.
		if departures[i].Sub(departures[i-1]) > 500*time.Microsecond {
			gapsOK++
		}
	}
	if gaps == 0 || float64(gapsOK)/float64(gaps) < 0.5 {
		t.Fatalf("only %d/%d steady-state gaps paced", gapsOK, gaps)
	}
}

// TestBBRSmallStandingQueue is the headline property: in a deep
// buffer, a loss-based sender fills it (bufferbloat) while BBR's
// inflight cap keeps the standing queue near the BDP regardless of
// buffer depth.
func TestBBRSmallStandingQueue(t *testing.T) {
	run := func(newCC func() CongestionControl) float64 {
		cfg := Config{NewCC: newCC, SACK: true}
		eng := sim.New()
		nw := netem.NewNetwork(eng)
		c := nw.NewNode("client")
		s := nw.NewNode("server")
		mon := &netem.QueueMonitor{Name: "btl"}
		q := netem.NewDropTail(2000) // deep: far beyond the ~17-pkt BDP
		q.Monitor = mon
		sc := netem.NewLink(eng, "s->c", 10e6, 10*time.Millisecond, q, c)
		cs := netem.NewLink(eng, "c->s", 10e6, 10*time.Millisecond, netem.NewDropTail(100), s)
		c.SetRoute(s.ID, cs)
		s.SetRoute(c.ID, sc)
		sStack := NewStack(s, cfg)
		cStack := NewStack(c, cfg)
		sStack.Listen(80, func(conn *Conn) {
			conn.OnEstablished = func() { conn.SendInfinite() }
		})
		cStack.Dial(s.Addr(80))
		eng.RunUntil(sim.Time(20 * time.Second.Nanoseconds()))
		return mon.MeanDelayMs()
	}
	bbr := run(NewBBRLite)
	reno := run(NewReno)
	if bbr >= reno/4 {
		t.Fatalf("BBR standing queue %.1f ms not well below loss-based %.1f ms", bbr, reno)
	}
	// 2000 pkts at 10 Mbit/s would be 2.4 s of queue if filled; BBR
	// should keep mean delay within a few RTTs.
	if bbr > 100 {
		t.Fatalf("BBR mean queue delay %.1f ms, want < 100", bbr)
	}
}

// TestBBRThroughputComparable: the model must not leave the link idle
// — goodput should be within striking distance of a loss-based sender
// on a well-buffered path.
func TestBBRThroughputComparable(t *testing.T) {
	run := func(newCC func() CongestionControl) int64 {
		tn := newTestNet(10e6, 10*time.Millisecond, 200, Config{NewCC: newCC, SACK: true})
		var sc *Conn
		tn.sStack.Listen(80, func(c *Conn) {
			sc = c
			c.OnEstablished = func() { c.SendInfinite() }
		})
		tn.cStack.Dial(tn.server.Addr(80))
		tn.eng.RunUntil(sim.Time(15 * time.Second.Nanoseconds()))
		return sc.Stat.BytesAcked
	}
	bbr, reno := run(NewBBRLite), run(NewReno)
	if bbr < reno*7/10 {
		t.Fatalf("BBR goodput %d below 70%% of loss-based %d", bbr, reno)
	}
}

func TestBBRStartupReachesProbeBW(t *testing.T) {
	cfg := Config{NewCC: NewBBRLite, SACK: true}
	tn := newTestNet(10e6, 10*time.Millisecond, 200, cfg)
	var sc *Conn
	tn.sStack.Listen(80, func(c *Conn) {
		sc = c
		c.OnEstablished = func() { c.SendInfinite() }
	})
	tn.cStack.Dial(tn.server.Addr(80))
	tn.eng.RunUntil(sim.Time(10 * time.Second.Nanoseconds()))
	b := sc.cc.(*BBRLite)
	if b.mode != bbrProbeBW {
		t.Fatalf("still in mode %d after 10 s, want probe-bw", b.mode)
	}
	// The bandwidth estimate should be near the 10 Mbit/s bottleneck
	// (bytes/sec), within a tolerant band.
	bw := b.maxBW() * 8
	if bw < 6e6 || bw > 14e6 {
		t.Fatalf("bandwidth estimate %.1f Mbit/s, want ~10", bw/1e6)
	}
	if b.rtProp < 20*time.Millisecond || b.rtProp > 80*time.Millisecond {
		t.Fatalf("rtProp %v, want a few tens of ms", b.rtProp)
	}
}

func TestBBRTransfersCompleteUnderReordering(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		tn := newReorderNet(0.1, seed, Config{NewCC: NewBBRLite, SACK: true})
		cc, _, done := tn.transfer(t, 500_000, 120*time.Second)
		if done == 0 {
			t.Fatalf("seed %d: BBR transfer never completed under reordering", seed)
		}
		if cc.Stat.BytesReceived != 500_000 {
			t.Fatalf("seed %d: received %d bytes", seed, cc.Stat.BytesReceived)
		}
	}
}
