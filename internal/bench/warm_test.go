package bench

import (
	"testing"
	"time"

	"bufferqoe/internal/testbed"
)

// TestWarmScratchSweepAllocatesLess gates the second perf wave's core
// claim: sweeping cells through a warmed testbed.Scratch must allocate
// less than running the same number of cells cold (each paying the
// structural build). CI runs this as its own step next to the alloc
// budgets, so a regression in carcass reuse fails loudly even if the
// absolute budgets still hold.
func TestWarmScratchSweepAllocatesLess(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	wl, err := testbed.LookupAccessScenario("short-few", testbed.DirDown)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(scr *testbed.Scratch) {
		a := testbed.NewAccess(testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 42, Scratch: scr})
		a.StartWorkload(wl)
		a.Eng.RunFor(5 * time.Second)
	}
	cold := testing.AllocsPerRun(3, func() {
		var scr testbed.Scratch
		cell(&scr)
	})

	var scr testbed.Scratch
	cell(&scr) // warm the carcass outside the measurement
	const sweep = 4
	warm := testing.AllocsPerRun(3, func() {
		for i := 0; i < sweep; i++ {
			scr.Reset()
			cell(&scr)
		}
	})
	t.Logf("cold cell: %.0f allocs; warm %d-cell sweep: %.0f allocs (%.0f per cell)",
		cold, sweep, warm, warm/sweep)
	// Require real savings, not a rounding-error win: the warm sweep
	// must cost less than three quarters of the equivalent cold cells.
	if warm >= 0.75*sweep*cold {
		t.Fatalf("warm %d-cell sweep allocated %.0f, cold cells would cost %.0f — carcass reuse is not saving allocations",
			sweep, warm, sweep*cold)
	}
}
