package bench

import "testing"

func BenchmarkSimCore(b *testing.B)            { SimCore(b) }
func BenchmarkSimCoreHandler(b *testing.B)     { SimCoreHandler(b) }
func BenchmarkLinkForward(b *testing.B)        { LinkForward(b) }
func BenchmarkWholeCell(b *testing.B)          { WholeCell(b) }
func BenchmarkWholeCellTelemetry(b *testing.B) { WholeCellTelemetry(b) }
func BenchmarkTestbedBuild(b *testing.B)       { TestbedBuild(b) }
func BenchmarkWifiCell(b *testing.B)           { WifiCell(b) }
func BenchmarkPacedCell(b *testing.B)          { PacedCell(b) }
func BenchmarkStatsAccumulate(b *testing.B)    { StatsAccumulate(b) }
func BenchmarkCellRepLoop(b *testing.B)        { CellRepLoop(b) }
