//go:build !race

package bench

// raceEnabled reports that the race detector is instrumenting this
// build; allocation-count assertions are unreliable under it.
const raceEnabled = false
