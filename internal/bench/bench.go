// Package bench holds the repository's canonical micro- and
// macro-benchmarks as plain functions so they can run both under
// `go test -bench` (see bench_test.go) and from `qoebench -benchjson`,
// which records the perf trajectory in BENCH_<pr>.json artifacts.
//
// The three levels mirror the layers of the simulation core:
//
//   - SimCore: the event engine alone — a schedule/fire/stop cycle,
//     the atom every model operation decomposes into.
//   - LinkForward: the netem hot path — packets serialized through a
//     rate/delay link into a sink, exercising queue, transmit and
//     delivery events.
//   - WholeCell: one end-to-end access VoIP cell (testbed build,
//     background workload, one call, QoE evaluation), the unit the
//     parallel cell engine schedules thousands of times per sweep.
//     WholeCellTelemetry is the same cell observed by a live
//     telemetry collector, gating the overhead of telemetry-on runs.
//
// The second perf wave added per-phase benchmarks that isolate where
// a cell's time goes on the production (warm-scratch) path:
//
//   - TestbedBuild: resetting a cached testbed carcass in place, the
//     per-cell structural cost after the first cell on a worker.
//   - StatsAccumulate: one rep loop's worth of accumulation into a
//     reused stats.Sample plus the median extraction.
//   - CellRepLoop: a multi-repetition VoIP cell (the paper's actual
//     cell shape), dominated by simulation rather than build.
//
// WholeCell and WholeCellTelemetry measure the production path: a
// per-worker testbed.Scratch is warmed before the timer starts, so
// iterations pay the in-place carcass reset the cell engine pays,
// not the cold structural build. BENCH artifacts from PR 8 onward
// record this methodology.
package bench

import (
	"testing"
	"time"

	"bufferqoe/internal/media"
	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
	"bufferqoe/internal/stats"
	"bufferqoe/internal/tcp"
	"bufferqoe/internal/telemetry"
	"bufferqoe/internal/testbed"
	"bufferqoe/internal/voip"
)

// SimCore measures one schedule/fire plus one schedule/stop cycle on
// the event engine, the pattern TCP retransmission timers generate at
// scale.
func SimCore(b *testing.B) {
	b.ReportAllocs()
	eng := sim.New()
	fired := 0
	fn := func() { fired++ }
	for i := 0; i < b.N; i++ {
		eng.Schedule(time.Microsecond, fn)
		t := eng.Schedule(time.Millisecond, fn)
		t.Stop()
		eng.RunFor(2 * time.Microsecond)
	}
	if fired == 0 {
		b.Fatal("no events fired")
	}
}

// tickHandler counts pooled-handler fires.
type tickHandler struct{ n int }

func (h *tickHandler) Fire(now sim.Time) { h.n++ }

// SimCoreHandler is SimCore on the zero-allocation tiers: a pooled
// handler one-shot that fires plus an owned timer armed and stopped —
// the pattern the migrated link/TCP schedulers generate.
func SimCoreHandler(b *testing.B) {
	b.ReportAllocs()
	eng := sim.New()
	h := &tickHandler{}
	var owned sim.Timer
	eng.InitTimer(&owned, h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.ScheduleHandler(time.Microsecond, h)
		owned.Reset(time.Millisecond)
		owned.Stop()
		eng.RunFor(2 * time.Microsecond)
	}
	if h.n == 0 {
		b.Fatal("no events fired")
	}
}

// countingSink consumes delivered packets.
type countingSink struct{ n int }

func (s *countingSink) Receive(p *netem.Packet) { s.n++ }

// LinkForward measures one full-sized packet traversing a 100 Mbit/s
// link: enqueue, serialization event, delivery event, sink receive.
func LinkForward(b *testing.B) {
	b.ReportAllocs()
	eng := sim.New()
	sink := &countingSink{}
	link := netem.NewLink(eng, "bench", 100e6, time.Millisecond, netem.NewDropTail(256), sink)
	pkts := make([]netem.Packet, 64)
	for i := range pkts {
		pkts[i] = netem.Packet{Size: netem.MTU}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link.Send(&pkts[i%len(pkts)])
		if (i+1)%len(pkts) == 0 {
			// Drain so the queue never overflows and every packet takes
			// the full transmit+deliver path.
			eng.RunFor(time.Second)
		}
	}
	eng.RunFor(time.Second)
	if sink.n == 0 {
		b.Fatal("no packets delivered")
	}
}

// WholeCell measures one small access VoIP cell end to end on the
// production path: reset the cached Figure 3a testbed carcass, start
// the short-few downstream workload, run one 8-second call through
// the congested link, and evaluate its MOS. The scratch is warmed
// before the timer starts, so every measured iteration pays exactly
// what the cell engine pays per cell after a worker's first — the
// in-place reset, not the cold structural build (TestbedBuild and
// the cold path are benchmarked separately).
func WholeCell(b *testing.B) {
	b.ReportAllocs()
	lib := media.Library(42)
	wl, err := testbed.LookupAccessScenario("short-few", testbed.DirDown)
	if err != nil {
		b.Fatal(err)
	}
	var scr testbed.Scratch
	cell := func() {
		scr.Reset()
		a := testbed.NewAccess(testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 42, Scratch: &scr})
		a.StartWorkload(wl)
		got := false
		a.Eng.Schedule(2*time.Second, func() {
			voip.Start(a.MediaServer, a.MediaClient, lib[0], 0, func(r voip.Result) {
				got = true
				a.Eng.Halt()
			})
		})
		a.Eng.RunFor(60 * time.Second)
		if !got {
			b.Fatal("call did not complete")
		}
	}
	cell() // warm the carcass: pay the structural build outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell()
	}
}

// WholeCellTelemetry is WholeCell with a live telemetry collector
// observing every cell, mirroring the instrumentation the experiments
// layer applies (phase clock around build and sim, simulator metrics
// flushed per cell). The CI gate holds it to the same allocs/op
// budget as WholeCell and within a few percent of its wall time — the
// "cheap when on" half of the telemetry layer's contract.
func WholeCellTelemetry(b *testing.B) {
	b.ReportAllocs()
	lib := media.Library(42)
	wl, err := testbed.LookupAccessScenario("short-few", testbed.DirDown)
	if err != nil {
		b.Fatal(err)
	}
	var scr testbed.Scratch
	// Warm the carcass outside the timer and before the collector, so
	// the cell count below stays exactly b.N.
	testbed.NewAccess(testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 42, Scratch: &scr})
	col := telemetry.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := col.StartCell()
		scr.Reset()
		a := testbed.NewAccess(testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 42, Scratch: &scr})
		a.StartWorkload(wl)
		got := false
		a.Eng.Schedule(2*time.Second, func() {
			voip.Start(a.MediaServer, a.MediaClient, lib[0], 0, func(r voip.Result) {
				got = true
				a.Eng.Halt()
			})
		})
		pc.Mark(telemetry.PhaseBuild)
		a.Eng.RunFor(60 * time.Second)
		pc.Mark(telemetry.PhaseSim)
		if !got {
			b.Fatal("call did not complete")
		}
		sm := a.Eng.Metrics()
		pc.Done("bench/short-few@64", telemetry.SimMetrics{
			EventsClosure:  sm.EventsClosure,
			EventsPooled:   sm.EventsPooled,
			EventsArg:      sm.EventsArg,
			EventsOwned:    sm.EventsOwned,
			TimerRecycles:  sm.TimerRecycles,
			PacketRecycles: a.Net.PacketRecycles(),
			HeapHighWater:  sm.HeapHighWater,
		})
	}
	b.StopTimer()
	if col.PhaseCells.Value() != uint64(b.N) {
		b.Fatalf("collector saw %d cells, want %d", col.PhaseCells.Value(), b.N)
	}
}

// TestbedBuild measures the per-cell structural cost on the
// production path: resetting a cached access-testbed carcass in
// place and reconfiguring it (fresh bottleneck queues, rates,
// delays, stack resets). This is what every cell after a worker's
// first pays instead of the cold node/link/stack build.
func TestbedBuild(b *testing.B) {
	b.ReportAllocs()
	var scr testbed.Scratch
	cfg := testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 42, Scratch: &scr}
	testbed.NewAccess(cfg) // cold build populates the carcass
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scr.Reset()
		a := testbed.NewAccess(cfg)
		if a.Eng == nil {
			b.Fatal("no testbed")
		}
	}
}

// wifiLink is the WifiCell link configuration: the facade's 802.11n
// preset with four contending stations.
func wifiLink() testbed.LinkParams {
	return testbed.LinkParams{
		UpRate: 65e6, DownRate: 65e6,
		ClientDelay: 2 * time.Millisecond, ServerDelay: 15 * time.Millisecond,
		Wifi: testbed.WifiParams{Stations: 4},
	}
}

// WifiCell is WholeCell on the 802.11 last hop: the same warm-carcass
// VoIP cell with the bottleneck pair replaced by contending WifiLinks
// (CSMA/CA backoff, collision retries, A-MPDU aggregation). Gated in
// CI with its own allocs/op budget — the MAC's contend/transmit loop
// runs on owned timers and pooled arg events, so the wireless service
// process must not reintroduce per-event allocation.
func WifiCell(b *testing.B) {
	b.ReportAllocs()
	lib := media.Library(42)
	wl, err := testbed.LookupAccessScenario("short-few", testbed.DirDown)
	if err != nil {
		b.Fatal(err)
	}
	var scr testbed.Scratch
	cfg := testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 42, Scratch: &scr, Link: wifiLink()}
	cell := func() {
		scr.Reset()
		a := testbed.NewAccess(cfg)
		a.StartWorkload(wl)
		got := false
		a.Eng.Schedule(2*time.Second, func() {
			voip.Start(a.MediaServer, a.MediaClient, lib[0], 0, func(r voip.Result) {
				got = true
				a.Eng.Halt()
			})
		})
		a.Eng.RunFor(60 * time.Second)
		if !got {
			b.Fatal("call did not complete")
		}
	}
	cell() // warm the wifi carcass outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell()
	}
}

// PacedCell is WholeCell with the background workload running BBR:
// every data segment the bulk flows send passes the pacing gate, so
// the paced send path's owned pacing timer is on the measured path.
// Its budget gates the claim that pacing is zero-allocation per
// segment.
func PacedCell(b *testing.B) {
	b.ReportAllocs()
	lib := media.Library(42)
	wl, err := testbed.LookupAccessScenario("short-few", testbed.DirDown)
	if err != nil {
		b.Fatal(err)
	}
	var scr testbed.Scratch
	cfg := testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 42, Scratch: &scr, CC: tcp.NewBBRLite}
	cell := func() {
		scr.Reset()
		a := testbed.NewAccess(cfg)
		a.StartWorkload(wl)
		got := false
		a.Eng.Schedule(2*time.Second, func() {
			voip.Start(a.MediaServer, a.MediaClient, lib[0], 0, func(r voip.Result) {
				got = true
				a.Eng.Halt()
			})
		})
		a.Eng.RunFor(60 * time.Second)
		if !got {
			b.Fatal("call did not complete")
		}
	}
	cell()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell()
	}
}

// StatsAccumulate measures one rep loop's worth of bookkeeping on a
// reused arena accumulator: reset, thirty observations (the paper's
// largest per-cell repetition count), and the median extraction the
// cell result reports. The backing array is warmed outside the
// timer, as the CellScratch arena warms it across a sweep.
func StatsAccumulate(b *testing.B) {
	b.ReportAllocs()
	var s stats.Sample
	loop := func() {
		s.Reset()
		for r := 0; r < 30; r++ {
			s.Add(1.0 + float64(r%7)*0.42)
		}
		if s.Median() <= 0 {
			b.Fatal("empty sample")
		}
	}
	loop() // grow the backing array outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loop()
	}
}

// CellRepLoop measures a multi-repetition VoIP cell on the
// production path — the paper's actual cell shape: a warm carcass
// reset, the background workload, three spaced bidirectional calls
// accumulating into reused samples, and the median MOS of each
// direction. Against WholeCell (one call) it shows how the per-cell
// fixed costs amortize across repetitions.
func CellRepLoop(b *testing.B) {
	const reps = 3
	b.ReportAllocs()
	lib := media.Library(42)
	wl, err := testbed.LookupAccessScenario("short-few", testbed.DirDown)
	if err != nil {
		b.Fatal(err)
	}
	var scr testbed.Scratch
	var listen, talk stats.Sample
	cell := func() {
		scr.Reset()
		listen.Reset()
		talk.Reset()
		a := testbed.NewAccess(testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 42, Scratch: &scr})
		a.StartWorkload(wl)
		for i := 0; i < reps; i++ {
			i := i
			a.Eng.Schedule(2*time.Second+time.Duration(i)*16*time.Second, func() {
				voip.StartPair(a.MediaClient, a.MediaServer,
					lib[(2*i)%len(lib)], lib[(2*i+1)%len(lib)], 0,
					func(pr voip.PairResult) {
						listen.Add(pr.Listen.MOS)
						talk.Add(pr.Talk.MOS)
						if listen.N() == reps {
							a.Eng.Halt()
						}
					})
			})
		}
		a.Eng.RunFor(2 * time.Minute)
		if listen.N() != reps {
			b.Fatalf("completed %d of %d calls", listen.N(), reps)
		}
		if listen.Median() <= 0 || talk.Median() <= 0 {
			b.Fatal("no MOS")
		}
	}
	cell() // warm the carcass and sample backings outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell()
	}
}
