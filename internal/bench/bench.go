// Package bench holds the repository's canonical micro- and
// macro-benchmarks as plain functions so they can run both under
// `go test -bench` (see bench_test.go) and from `qoebench -benchjson`,
// which records the perf trajectory in BENCH_<pr>.json artifacts.
//
// The three levels mirror the layers of the simulation core:
//
//   - SimCore: the event engine alone — a schedule/fire/stop cycle,
//     the atom every model operation decomposes into.
//   - LinkForward: the netem hot path — packets serialized through a
//     rate/delay link into a sink, exercising queue, transmit and
//     delivery events.
//   - WholeCell: one end-to-end access VoIP cell (testbed build,
//     background workload, one call, QoE evaluation), the unit the
//     parallel cell engine schedules thousands of times per sweep.
//     WholeCellTelemetry is the same cell observed by a live
//     telemetry collector, gating the overhead of telemetry-on runs.
package bench

import (
	"testing"
	"time"

	"bufferqoe/internal/media"
	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
	"bufferqoe/internal/telemetry"
	"bufferqoe/internal/testbed"
	"bufferqoe/internal/voip"
)

// SimCore measures one schedule/fire plus one schedule/stop cycle on
// the event engine, the pattern TCP retransmission timers generate at
// scale.
func SimCore(b *testing.B) {
	b.ReportAllocs()
	eng := sim.New()
	fired := 0
	fn := func() { fired++ }
	for i := 0; i < b.N; i++ {
		eng.Schedule(time.Microsecond, fn)
		t := eng.Schedule(time.Millisecond, fn)
		t.Stop()
		eng.RunFor(2 * time.Microsecond)
	}
	if fired == 0 {
		b.Fatal("no events fired")
	}
}

// tickHandler counts pooled-handler fires.
type tickHandler struct{ n int }

func (h *tickHandler) Fire(now sim.Time) { h.n++ }

// SimCoreHandler is SimCore on the zero-allocation tiers: a pooled
// handler one-shot that fires plus an owned timer armed and stopped —
// the pattern the migrated link/TCP schedulers generate.
func SimCoreHandler(b *testing.B) {
	b.ReportAllocs()
	eng := sim.New()
	h := &tickHandler{}
	var owned sim.Timer
	eng.InitTimer(&owned, h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.ScheduleHandler(time.Microsecond, h)
		owned.Reset(time.Millisecond)
		owned.Stop()
		eng.RunFor(2 * time.Microsecond)
	}
	if h.n == 0 {
		b.Fatal("no events fired")
	}
}

// countingSink consumes delivered packets.
type countingSink struct{ n int }

func (s *countingSink) Receive(p *netem.Packet) { s.n++ }

// LinkForward measures one full-sized packet traversing a 100 Mbit/s
// link: enqueue, serialization event, delivery event, sink receive.
func LinkForward(b *testing.B) {
	b.ReportAllocs()
	eng := sim.New()
	sink := &countingSink{}
	link := netem.NewLink(eng, "bench", 100e6, time.Millisecond, netem.NewDropTail(256), sink)
	pkts := make([]netem.Packet, 64)
	for i := range pkts {
		pkts[i] = netem.Packet{Size: netem.MTU}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link.Send(&pkts[i%len(pkts)])
		if (i+1)%len(pkts) == 0 {
			// Drain so the queue never overflows and every packet takes
			// the full transmit+deliver path.
			eng.RunFor(time.Second)
		}
	}
	eng.RunFor(time.Second)
	if sink.n == 0 {
		b.Fatal("no packets delivered")
	}
}

// WholeCell measures one small access VoIP cell end to end: build the
// Figure 3a testbed, start the short-few downstream workload, run one
// 8-second call through the congested link, and evaluate its MOS.
// This is the macro benchmark the ≥2x allocs/op acceptance target of
// the zero-allocation event core refers to.
func WholeCell(b *testing.B) {
	b.ReportAllocs()
	lib := media.Library(42)
	wl, err := testbed.LookupAccessScenario("short-few", testbed.DirDown)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		a := testbed.NewAccess(testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 42})
		a.StartWorkload(wl)
		got := false
		a.Eng.Schedule(2*time.Second, func() {
			voip.Start(a.MediaServer, a.MediaClient, lib[0], 0, func(r voip.Result) {
				got = true
				a.Eng.Halt()
			})
		})
		a.Eng.RunFor(60 * time.Second)
		if !got {
			b.Fatal("call did not complete")
		}
	}
}

// WholeCellTelemetry is WholeCell with a live telemetry collector
// observing every cell, mirroring the instrumentation the experiments
// layer applies (phase clock around build and sim, simulator metrics
// flushed per cell). The CI gate holds it to the same allocs/op
// budget as WholeCell and within a few percent of its wall time — the
// "cheap when on" half of the telemetry layer's contract.
func WholeCellTelemetry(b *testing.B) {
	b.ReportAllocs()
	lib := media.Library(42)
	wl, err := testbed.LookupAccessScenario("short-few", testbed.DirDown)
	if err != nil {
		b.Fatal(err)
	}
	col := telemetry.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := col.StartCell()
		a := testbed.NewAccess(testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 42})
		a.StartWorkload(wl)
		got := false
		a.Eng.Schedule(2*time.Second, func() {
			voip.Start(a.MediaServer, a.MediaClient, lib[0], 0, func(r voip.Result) {
				got = true
				a.Eng.Halt()
			})
		})
		pc.Mark(telemetry.PhaseBuild)
		a.Eng.RunFor(60 * time.Second)
		pc.Mark(telemetry.PhaseSim)
		if !got {
			b.Fatal("call did not complete")
		}
		sm := a.Eng.Metrics()
		pc.Done("bench/short-few@64", telemetry.SimMetrics{
			EventsClosure:  sm.EventsClosure,
			EventsPooled:   sm.EventsPooled,
			EventsArg:      sm.EventsArg,
			EventsOwned:    sm.EventsOwned,
			TimerRecycles:  sm.TimerRecycles,
			PacketRecycles: a.Net.PacketRecycles(),
			HeapHighWater:  sm.HeapHighWater,
		})
	}
	b.StopTimer()
	if col.PhaseCells.Value() != uint64(b.N) {
		b.Fatalf("collector saw %d cells, want %d", col.PhaseCells.Value(), b.N)
	}
}
