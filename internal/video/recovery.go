package video

import (
	"bufferqoe/internal/netem"
)

// Recovery selects the stream's error-recovery mechanism. The paper's
// results are explicitly a no-recovery baseline ("systems deploying
// active (retransmission) or passive (FEC) error recovery can achieve
// higher quality", §8.4); these schemes quantify that headroom.
type Recovery int

// Recovery schemes.
const (
	// RecoveryNone is the paper's baseline: plain RTP, losses concealed
	// by the decoder only.
	RecoveryNone Recovery = iota
	// RecoveryARQ requests each lost packet exactly once via a NACK
	// sent back through the (possibly congested) network, mirroring
	// the proprietary IPTV set-top-box scheme of Hohlfeld et al.,
	// "On revealing the ARQ mechanism of MSTV" (ICC 2011) — reference
	// [24] of the paper.
	RecoveryARQ
	// RecoveryFEC adds one XOR parity packet per group of FECGroup
	// data packets (~100/FECGroup % bandwidth overhead); a single loss
	// per group is repaired locally with no upstream traffic.
	RecoveryFEC
)

func (r Recovery) String() string {
	switch r {
	case RecoveryARQ:
		return "arq"
	case RecoveryFEC:
		return "fec"
	default:
		return "none"
	}
}

// nackMsg is the ARQ repair request: the sequence numbers the receiver
// found missing. It travels as a real packet through the upstream
// path, so uplink congestion delays repairs exactly as it would for a
// deployed set-top box.
type nackMsg struct {
	seqs   []int
	stream *Stream
}

// nackWire is the on-wire size of a NACK carrying n sequence numbers
// (RTCP-style feedback packet).
func nackWire(n int) int {
	return netem.IPHeader + netem.UDPHeader + 8 + 4*n
}

// fecPkt is one XOR parity packet covering the data packets with
// sequence numbers [groupLo, groupHi).
type fecPkt struct {
	groupLo, groupHi int
	stream           *Stream
}

// handleFeedback processes packets arriving at the sender's port:
// NACKs trigger one retransmission per requested packet.
func (st *Stream) handleFeedback(p *netem.Packet) {
	msg, ok := p.Payload.(*nackMsg)
	if !ok || msg.stream != st {
		return
	}
	for _, seq := range msg.seqs {
		if seq < 0 || seq >= len(st.records) || st.records[seq].retx {
			continue
		}
		st.records[seq].retx = true
		st.retxSent++
		rec := st.records[seq]
		st.sendPacket(rec.pk, rec.size)
	}
}

// noteArrival is the receiver-side recovery bookkeeping: gap-based
// NACK generation (ARQ) and group repair (FEC). It returns packets
// repaired by FEC so receive can mark their slices.
func (st *Stream) noteArrival(seq int) {
	if seq >= 0 && seq < len(st.gotPkt) {
		st.gotPkt[seq] = true
	}
	if st.recovery != RecoveryARQ {
		if seq > st.maxSeq {
			st.maxSeq = seq
		}
		return
	}
	// A sequence gap means every packet in between was lost (the
	// simulated links are FIFO, so no reordering false-positives).
	// Request each missing packet exactly once.
	var missing []int
	for q := st.maxSeq + 1; q < seq; q++ {
		if !st.gotPkt[q] && !st.nacked[q] {
			st.nacked[q] = true
			missing = append(missing, q)
		}
	}
	if seq > st.maxSeq {
		st.maxSeq = seq
	}
	if len(missing) > 0 {
		st.nacksSent++
		p := st.to.Network().NewPacket()
		p.Flow = netem.Flow{
			Proto: netem.ProtoUDP,
			Src:   st.to.Addr(st.toP),
			Dst:   st.from.Addr(st.fromP),
		}
		p.Size = nackWire(len(missing))
		p.Payload = &nackMsg{seqs: missing, stream: st}
		st.to.Send(p)
	}
}

// tryFECRepair checks whether the parity group covering [lo, hi) has
// exactly one missing member and, if so, repairs it (marks its slices
// as received, subject to the frame deadline).
func (st *Stream) tryFECRepair(lo, hi int) {
	if !st.parityGot[lo/st.fecGroup] {
		return
	}
	missing := -1
	for q := lo; q < hi && q < len(st.gotPkt); q++ {
		if !st.gotPkt[q] {
			if missing >= 0 {
				return // two or more losses: XOR cannot repair
			}
			missing = q
		}
	}
	if missing < 0 {
		return // nothing to repair
	}
	st.gotPkt[missing] = true
	rec := st.records[missing]
	if st.eng.Now() > st.deadline[rec.pk.frame] {
		return // repaired too late to decode
	}
	st.recovered++
	st.markSlices(rec.pk)
}

// markSlices records a packet's slices as decodable.
func (st *Stream) markSlices(pk *vpkt) {
	for s := pk.sliceLo; s < pk.sliceHi && s < len(st.gotSlice[pk.frame]); s++ {
		st.gotSlice[pk.frame][s] = true
	}
}
