package video

import (
	"testing"
	"time"

	"bufferqoe/internal/testbed"
)

// lossyStream runs clip C over a moderately congested backbone and
// returns the result for the given recovery scheme. The congestion
// level (short-medium) produces scattered losses — the regime where
// recovery matters (at overload nothing helps, at idle nothing is
// needed).
func lossyStream(t *testing.T, rec Recovery, seed uint64) Result {
	t.Helper()
	b := testbed.NewBackbone(testbed.Config{BufferDown: 28, Seed: seed})
	b.StartWorkload(testbed.MustSpec(testbed.LookupBackboneScenario("short-high")))
	b.Eng.RunFor(3 * time.Second)
	src := NewSource(ClipC, shortSD, 2)
	var res *Result
	Start(b.MediaServer, b.MediaClient, src, Config{Smooth: true, Seed: seed, Recovery: rec},
		func(r Result) { res = &r })
	b.Eng.RunFor(15 * time.Second)
	if res == nil {
		t.Fatal("stream never finished")
	}
	return *res
}

func TestARQRecoversLosses(t *testing.T) {
	base := lossyStream(t, RecoveryNone, 11)
	arq := lossyStream(t, RecoveryARQ, 11)
	if base.PacketsLost == 0 {
		t.Skip("no losses at this seed; recovery not exercised")
	}
	if arq.NACKs == 0 || arq.Retransmits == 0 {
		t.Fatalf("ARQ sent no repair traffic (nacks=%d retx=%d)", arq.NACKs, arq.Retransmits)
	}
	if arq.Recovered == 0 {
		t.Fatal("ARQ recovered nothing")
	}
	if arq.MeanSSIM <= base.MeanSSIM {
		t.Fatalf("ARQ SSIM %.3f <= baseline %.3f", arq.MeanSSIM, base.MeanSSIM)
	}
}

func TestFECRecoversLosses(t *testing.T) {
	base := lossyStream(t, RecoveryNone, 12)
	fec := lossyStream(t, RecoveryFEC, 12)
	if base.PacketsLost == 0 {
		t.Skip("no losses at this seed; recovery not exercised")
	}
	if fec.Recovered == 0 {
		t.Fatal("FEC recovered nothing")
	}
	if fec.MeanSSIM <= base.MeanSSIM {
		t.Fatalf("FEC SSIM %.3f <= baseline %.3f", fec.MeanSSIM, base.MeanSSIM)
	}
	// FEC must not generate upstream repair traffic.
	if fec.NACKs != 0 || fec.Retransmits != 0 {
		t.Fatalf("FEC produced ARQ traffic (nacks=%d retx=%d)", fec.NACKs, fec.Retransmits)
	}
}

func TestRecoveryCleanPathNoOverheadTraffic(t *testing.T) {
	// On a clean path ARQ must stay silent and quality stays perfect.
	b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: 13})
	src := NewSource(ClipC, shortSD, 2)
	var res *Result
	Start(b.MediaServer, b.MediaClient, src, Config{Smooth: true, Seed: 13, Recovery: RecoveryARQ},
		func(r Result) { res = &r })
	b.Eng.RunFor(10 * time.Second)
	if res == nil {
		t.Fatal("no result")
	}
	if res.NACKs != 0 || res.Retransmits != 0 || res.Recovered != 0 {
		t.Fatalf("clean path produced repair traffic: %+v", res)
	}
	if res.MeanSSIM < 0.999 {
		t.Fatalf("clean ARQ stream SSIM %.3f", res.MeanSSIM)
	}
}

func TestFECCleanPathPerfect(t *testing.T) {
	b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: 14})
	src := NewSource(ClipC, shortSD, 2)
	var res *Result
	Start(b.MediaServer, b.MediaClient, src, Config{Smooth: true, Seed: 14, Recovery: RecoveryFEC},
		func(r Result) { res = &r })
	b.Eng.RunFor(10 * time.Second)
	if res == nil {
		t.Fatal("no result")
	}
	if res.MeanSSIM < 0.999 || res.PacketsLost != 0 {
		t.Fatalf("clean FEC stream degraded: %+v", res)
	}
}

func TestARQRequestsEachPacketOnce(t *testing.T) {
	// The MSTV-style scheme requests a lost packet exactly once
	// (paper reference [24]); retransmits can never exceed the number
	// of distinct data packets.
	r := lossyStream(t, RecoveryARQ, 15)
	if r.Retransmits > r.PacketsSent {
		t.Fatalf("retransmits %d exceed distinct packets %d", r.Retransmits, r.PacketsSent)
	}
}

func TestRecoveryStrings(t *testing.T) {
	cases := map[Recovery]string{RecoveryNone: "none", RecoveryARQ: "arq", RecoveryFEC: "fec"}
	for r, want := range cases {
		if r.String() != want {
			t.Fatalf("Recovery(%d).String() = %q, want %q", r, r.String(), want)
		}
	}
}
