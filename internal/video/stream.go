package video

import (
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/qoe"
	"bufferqoe/internal/sim"
)

// TS packetization: 7 MPEG2-TS cells of 188 bytes per RTP packet.
const tsPayload = 7 * 188

// packetWire returns the on-wire size of a video packet with n payload
// bytes.
func packetWire(n int) int {
	return n + netem.RTPHeader + netem.UDPHeader + netem.IPHeader
}

// StartupDelay is the receiver's decode deadline offset (IPTV set-top
// buffering).
const StartupDelay = time.Second

// vpkt identifies one video packet: which frame it belongs to and
// which slice range it carries.
type vpkt struct {
	seq     int
	frame   int
	sliceLo int
	sliceHi int
	stream  *Stream
}

// pktRecord is the sender-side memory of a transmitted packet, kept
// for ARQ retransmission and FEC group membership.
type pktRecord struct {
	pk   *vpkt
	size int
	retx bool // already retransmitted once (ARQ requests once only)
}

// Result summarizes one streamed clip.
type Result struct {
	// MeanSSIM / MeanPSNR average the per-frame full-reference scores
	// (PSNR of identical frames is capped at 60 dB for averaging).
	MeanSSIM, MeanPSNR float64
	// MOS maps MeanSSIM through the Zinner mapping.
	MOS float64
	// PacketsSent / PacketsLost count RTP packets; Lost includes
	// packets arriving after their frame's decode deadline.
	PacketsSent, PacketsLost int
	// FramesImpaired counts frames decoded with at least one concealed
	// slice.
	FramesImpaired int
	// Recovered counts packets repaired in time by ARQ or FEC;
	// NACKs and Retransmits count the ARQ feedback traffic.
	Recovered, NACKs, Retransmits int
}

// LossPct returns the packet loss percentage.
func (r Result) LossPct() float64 {
	if r.PacketsSent == 0 {
		return 0
	}
	return 100 * float64(r.PacketsLost) / float64(r.PacketsSent)
}

// Stream is one in-flight video transmission.
type Stream struct {
	eng    *sim.Engine
	src    *Source
	from   *netem.Node
	to     *netem.Node
	fromP  uint16
	toP    uint16
	smooth bool
	rng    *sim.RNG
	start  sim.Time
	onDone func(Result)

	sent     int
	gotSlice [][]bool // [frame][slice] received before the decode deadline
	deadline []sim.Time

	// Error recovery state (see recovery.go).
	recovery  Recovery
	fecGroup  int
	records   []pktRecord
	gotPkt    []bool
	nacked    []bool
	parityGot []bool
	maxSeq    int
	nacksSent int
	retxSent  int
	recovered int
}

// Config tunes a stream run.
type Config struct {
	// Smooth enables the paper's 1-second send-rate smoothing
	// (Section 8.1); without it frames burst at line rate, as stock
	// VLC does.
	Smooth bool
	// Seed drives encoder size jitter.
	Seed uint64
	// Recovery selects the error-recovery scheme (default: none, the
	// paper's baseline).
	Recovery Recovery
	// FECGroup is the data packets per parity packet for RecoveryFEC
	// (default 10, i.e. 10% bandwidth overhead).
	FECGroup int
}

// Start streams the source from -> to and calls onDone with the
// quality evaluation when the clip ends.
func Start(from, to *netem.Node, src *Source, cfg Config, onDone func(Result)) *Stream {
	eng := from.Engine()
	st := &Stream{
		eng:      eng,
		src:      src,
		from:     from,
		to:       to,
		fromP:    from.AllocPort(netem.ProtoUDP),
		toP:      to.AllocPort(netem.ProtoUDP),
		smooth:   cfg.Smooth,
		rng:      sim.NewRNG(cfg.Seed, "video-"+src.String()),
		start:    eng.Now(),
		onDone:   onDone,
		recovery: cfg.Recovery,
		fecGroup: cfg.FECGroup,
		maxSeq:   -1,
	}
	if st.fecGroup <= 0 {
		st.fecGroup = 10
	}
	from.Bind(netem.ProtoUDP, st.fromP, netem.HandlerFunc(st.handleFeedback))
	to.Bind(netem.ProtoUDP, st.toP, netem.HandlerFunc(st.receive))

	p := src.Profile
	n := src.Frames()
	st.gotSlice = make([][]bool, n)
	st.deadline = make([]sim.Time, n)
	frameIv := time.Second / time.Duration(p.FPS)

	// Pacing clock: with smoothing, packets leave at the nominal
	// bitrate averaged over a 1 s window; without, a frame's packets
	// leave back-to-back at capture time.
	payloadClock := st.start
	lastSend := st.start
	for t := 0; t < n; t++ {
		st.gotSlice[t] = make([]bool, p.Slices)
		capture := st.start.Add(time.Duration(t) * frameIv)
		st.deadline[t] = capture.Add(StartupDelay)
		bytes := FrameBytes(src.Clip, p, t, st.rng)
		pkts := (bytes + tsPayload - 1) / tsPayload
		for k := 0; k < pkts; k++ {
			payload := tsPayload
			if k == pkts-1 {
				payload = bytes - k*tsPayload
			}
			lo := k * p.Slices / pkts
			hi := (k + 1) * p.Slices / pkts
			sendAt := capture
			if st.smooth {
				// Advance the smoothing clock by this packet's
				// serialization at the nominal rate; never send
				// before capture.
				iv := time.Duration(float64(packetWire(payload)*8) / p.Bitrate * float64(time.Second))
				if payloadClock < capture {
					payloadClock = capture
				}
				sendAt = payloadClock
				payloadClock = payloadClock.Add(iv)
			}
			seq := len(st.records)
			pk := &vpkt{seq: seq, frame: t, sliceLo: lo, sliceHi: hi, stream: st}
			size := packetWire(payload)
			st.records = append(st.records, pktRecord{pk: pk, size: size})
			eng.AtArg(sendAt, st, pk)
			st.sent++
			if sendAt > lastSend {
				lastSend = sendAt
			}
			if st.recovery == RecoveryFEC && seq%st.fecGroup == st.fecGroup-1 {
				st.scheduleParity(seq-st.fecGroup+1, seq+1, sendAt)
			}
		}
	}
	// Trailing partial FEC group.
	if st.recovery == RecoveryFEC && len(st.records)%st.fecGroup != 0 {
		lo := len(st.records) / st.fecGroup * st.fecGroup
		st.scheduleParity(lo, len(st.records), lastSend)
	}
	st.gotPkt = make([]bool, len(st.records))
	st.nacked = make([]bool, len(st.records))
	st.parityGot = make([]bool, (len(st.records)+st.fecGroup-1)/st.fecGroup)
	end := time.Duration(n)*frameIv + StartupDelay + 3*time.Second
	eng.ScheduleHandler(end, st)
	return st
}

// FireArg implements sim.ArgHandler: one packet's send tick. The
// payload identifies the data packet (its size is recorded in
// records) or parity packet (always a full cell) to transmit, so the
// per-packet schedule path allocates nothing.
func (st *Stream) FireArg(now sim.Time, arg any) {
	switch pk := arg.(type) {
	case *vpkt:
		st.send(pk, st.records[pk.seq].size)
	case *fecPkt:
		st.send(pk, packetWire(tsPayload))
	}
}

// Fire implements sim.Handler: the clip (plus drain) ended — evaluate.
func (st *Stream) Fire(now sim.Time) { st.finish() }

// scheduleParity emits the XOR parity packet covering data sequence
// numbers [lo, hi) right after the group's last member.
func (st *Stream) scheduleParity(lo, hi int, at sim.Time) {
	fp := &fecPkt{groupLo: lo, groupHi: hi, stream: st}
	st.eng.AtArg(at, st, fp)
}

// send transmits one payload (data, parity) toward the receiver.
func (st *Stream) send(payload any, size int) {
	p := st.from.Network().NewPacket()
	p.Flow = netem.Flow{
		Proto: netem.ProtoUDP,
		Src:   st.from.Addr(st.fromP),
		Dst:   st.to.Addr(st.toP),
	}
	p.Size = size
	p.Payload = payload
	st.from.Send(p)
}

// sendPacket retransmits a recorded data packet (ARQ path).
func (st *Stream) sendPacket(pk *vpkt, size int) { st.send(pk, size) }

func (st *Stream) receive(p *netem.Packet) {
	switch pk := p.Payload.(type) {
	case *fecPkt:
		if pk.stream != st {
			return
		}
		if g := pk.groupLo / st.fecGroup; g >= 0 && g < len(st.parityGot) {
			st.parityGot[g] = true
			st.tryFECRepair(pk.groupLo, pk.groupHi)
		}
	case *vpkt:
		if pk.stream != st {
			return
		}
		alreadyGot := pk.seq >= 0 && pk.seq < len(st.gotPkt) && st.gotPkt[pk.seq]
		isRepair := st.recovery == RecoveryARQ && !alreadyGot &&
			pk.seq >= 0 && pk.seq < len(st.nacked) && st.nacked[pk.seq]
		st.noteArrival(pk.seq)
		if st.eng.Now() > st.deadline[pk.frame] {
			return // too late to decode: counts as lost
		}
		if alreadyGot {
			return // duplicate delivery (e.g. spurious retransmission)
		}
		if isRepair {
			st.recovered++
		}
		st.markSlices(pk)
		if st.recovery == RecoveryFEC {
			// This arrival may complete a previously unrepairable
			// group whose parity is already here.
			g := pk.seq / st.fecGroup
			if g >= 0 && g < len(st.parityGot) && st.parityGot[g] {
				lo := g * st.fecGroup
				hi := lo + st.fecGroup
				if hi > len(st.records) {
					hi = len(st.records)
				}
				st.tryFECRepair(lo, hi)
			}
		}
	}
}

// finish decodes the stream with previous-frame slice concealment and
// computes the full-reference quality scores.
func (st *Stream) finish() {
	st.from.Unbind(netem.ProtoUDP, st.fromP)
	st.to.Unbind(netem.ProtoUDP, st.toP)

	p := st.src.Profile
	n := st.src.Frames()
	res := Result{PacketsSent: st.sent}

	// Count losses: a slice not received in time means its packet was
	// lost or late; approximate packet loss from slice coverage.
	prev := make([]uint8, p.W*p.H)
	copy(prev, st.src.Frame(0)) // decoder reference starts grey-ish; first I normally arrives
	corrupt := make([]bool, p.Slices)
	decoded := make([]uint8, p.W*p.H)

	var ssimSum, psnrSum float64
	for t := 0; t < n; t++ {
		ref := st.src.Frame(t)
		isI := t%p.GOP == 0
		impaired := false
		lostSlices := 0
		for s := 0; s < p.Slices; s++ {
			got := st.gotSlice[t][s]
			if !got {
				lostSlices++
			}
			// Propagation: a P-slice decodes cleanly only if received
			// AND its reference region was clean; an I-slice resets.
			if got && (isI || !corrupt[s]) {
				corrupt[s] = false
			} else {
				corrupt[s] = true
			}
			lo, hi := sliceRows(p, s)
			if corrupt[s] {
				impaired = true
				copy(decoded[lo*p.W:hi*p.W], prev[lo*p.W:hi*p.W])
			} else {
				copy(decoded[lo*p.W:hi*p.W], ref[lo*p.W:hi*p.W])
			}
		}
		if impaired {
			res.FramesImpaired++
		}
		// Attribute slice losses back to packets (approximately: the
		// per-frame packet count scaled by lost slice fraction).
		if lostSlices > 0 {
			res.PacketsLost += (lostSlices*st.packetsOfFrame(t) + p.Slices - 1) / p.Slices
		}
		s := qoe.SSIM(ref, decoded, p.W, p.H)
		ssimSum += s
		pn := qoe.PSNR(ref, decoded)
		if pn > 60 {
			pn = 60
		}
		psnrSum += pn
		prev, decoded = decoded, prev
	}
	res.MeanSSIM = ssimSum / float64(n)
	res.MeanPSNR = psnrSum / float64(n)
	res.MOS = qoe.SSIMToMOS(res.MeanSSIM)
	res.Recovered = st.recovered
	res.NACKs = st.nacksSent
	res.Retransmits = st.retxSent
	if st.onDone != nil {
		st.onDone(res)
	}
}

// packetsOfFrame recomputes how many packets frame t was sent in.
func (st *Stream) packetsOfFrame(t int) int {
	// Deterministic re-derivation is not possible without replaying
	// the RNG; a per-frame average is accurate enough for the loss
	// statistic.
	avg := st.sent / st.src.Frames()
	if avg < 1 {
		avg = 1
	}
	return avg
}
