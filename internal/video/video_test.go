package video

import (
	"testing"
	"time"

	"bufferqoe/internal/sim"
	"bufferqoe/internal/testbed"
)

// shortSD is a cut-down profile to keep unit tests fast.
var shortSD = Profile{Name: "SD", W: 128, H: 96, Bitrate: 4e6, FPS: 25, GOP: 25, Slices: 32}

func TestSourceRendering(t *testing.T) {
	src := NewSource(ClipC, shortSD, 2)
	if src.Frames() != 50 {
		t.Fatalf("frames = %d", src.Frames())
	}
	f0, f1 := src.Frame(0), src.Frame(1)
	if len(f0) != 128*96 {
		t.Fatalf("plane size = %d", len(f0))
	}
	// Consecutive frames must differ (motion) but not be noise.
	diff := 0
	for i := range f0 {
		if f0[i] != f1[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("no motion between frames")
	}
}

func TestMotionClassesDiffer(t *testing.T) {
	// Soccer (high motion) frames change more than interview frames.
	meanAbsDiff := func(c Clip) float64 {
		src := NewSource(c, shortSD, 1)
		a, b := src.Frame(0), src.Frame(10)
		var s float64
		for i := range a {
			d := float64(a[i]) - float64(b[i])
			if d < 0 {
				d = -d
			}
			s += d
		}
		return s / float64(len(a))
	}
	if meanAbsDiff(ClipB) <= meanAbsDiff(ClipA) {
		t.Fatal("soccer motion <= interview motion")
	}
}

func TestFrameBytesBudget(t *testing.T) {
	rng := sim.NewRNG(1, "fb")
	var total int
	n := shortSD.GOP * 4
	for i := 0; i < n; i++ {
		b := FrameBytes(ClipC, shortSD, i, rng)
		if i%shortSD.GOP == 0 {
			// I-frames are ~3x a P-frame.
			if b < 2*FrameBytes(ClipA, shortSD, 1, sim.NewRNG(2, "fb2")) {
				t.Fatalf("I-frame %d bytes = %d, suspiciously small", i, b)
			}
		}
		total += b
	}
	wantTotal := int(shortSD.Bitrate / 8 * float64(n) / float64(shortSD.FPS))
	if total < wantTotal*7/10 || total > wantTotal*13/10 {
		t.Fatalf("4-GOP bytes = %d, want ~%d (+-30%%)", total, wantTotal)
	}
}

func TestCleanStreamPerfectSSIM(t *testing.T) {
	// Paper Figure 9 noBG rows: SSIM 1 without background traffic.
	b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: 1})
	src := NewSource(ClipC, shortSD, 2)
	var res *Result
	Start(b.MediaServer, b.MediaClient, src, Config{Smooth: true, Seed: 1}, func(r Result) { res = &r })
	b.Eng.RunFor(10 * time.Second)
	if res == nil {
		t.Fatal("stream never finished")
	}
	if res.PacketsLost != 0 {
		t.Fatalf("clean network lost %d packets", res.PacketsLost)
	}
	if res.MeanSSIM < 0.999 {
		t.Fatalf("clean SSIM = %v, want ~1", res.MeanSSIM)
	}
	if res.MOS < 4.9 {
		t.Fatalf("clean MOS = %v", res.MOS)
	}
}

func TestUnsmoothedBurstsOverflowAccessLink(t *testing.T) {
	// Section 8.1: stock VLC bursts a frame's packets at line rate,
	// overflowing access-scale buffers even without background
	// traffic; smoothing fixes it. (4 Mbit/s SD into a 16 Mbit/s
	// downlink with a small buffer.)
	run := func(smooth bool) Result {
		a := testbed.NewAccess(testbed.Config{BufferUp: 8, BufferDown: 8, Seed: 2})
		src := NewSource(ClipC, shortSD, 2)
		var res Result
		Start(a.MediaServer, a.MediaClient, src, Config{Smooth: smooth, Seed: 2}, func(r Result) { res = r })
		a.Eng.RunFor(10 * time.Second)
		return res
	}
	burst := run(false)
	smooth := run(true)
	if smooth.PacketsLost > 0 {
		t.Fatalf("smoothed stream lost %d packets on idle link", smooth.PacketsLost)
	}
	if burst.PacketsLost == 0 {
		t.Fatal("unsmoothed bursts did not overflow the 8-packet buffer")
	}
	if burst.MeanSSIM >= smooth.MeanSSIM {
		t.Fatal("burst SSIM >= smooth SSIM")
	}
}

func TestCongestionDegradesVideo(t *testing.T) {
	// Figure 9b: sustained high utilization wrecks the stream.
	b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: 3})
	b.StartWorkload(testbed.MustSpec(testbed.LookupBackboneScenario("long")))
	b.Eng.RunFor(5 * time.Second)
	src := NewSource(ClipC, shortSD, 2)
	var res *Result
	Start(b.MediaServer, b.MediaClient, src, Config{Smooth: true, Seed: 3}, func(r Result) { res = &r })
	b.Eng.RunFor(15 * time.Second)
	if res == nil {
		t.Fatal("no result")
	}
	if res.PacketsLost == 0 {
		t.Fatal("saturated OC3 lost no video packets")
	}
	if res.MeanSSIM > 0.95 {
		t.Fatalf("congested SSIM = %v, want degraded", res.MeanSSIM)
	}
}

func TestHDvsSDArtifactGeometry(t *testing.T) {
	// Section 8.2: at similar loss, HD shows milder SSIM degradation
	// because an artifact covers a smaller fraction of the frame.
	// Verify the mechanism directly: conceal one slice in both
	// profiles and compare SSIM drops... the slice is 1/32 of the
	// frame in both, so instead verify that per-slice area fraction
	// matches and larger planes average more clean area per lost
	// packet (packets carry fewer slices in HD).
	sdSrc := NewSource(ClipB, SD, 1)
	hdSrc := NewSource(ClipB, HD, 1)
	sdBytes := FrameBytes(ClipB, SD, 1, sim.NewRNG(4, "x"))
	hdBytes := FrameBytes(ClipB, HD, 1, sim.NewRNG(4, "x"))
	if hdBytes <= sdBytes {
		t.Fatal("HD frames not larger than SD")
	}
	sdPkts := (sdBytes + tsPayload - 1) / tsPayload
	hdPkts := (hdBytes + tsPayload - 1) / tsPayload
	// Slices per packet: fewer in HD means one lost packet corrupts a
	// smaller frame fraction.
	if float64(SD.Slices)/float64(sdPkts) <= float64(HD.Slices)/float64(hdPkts) {
		t.Fatal("HD does not localize loss better than SD")
	}
	_ = sdSrc
	_ = hdSrc
}

func TestDeterministicStream(t *testing.T) {
	run := func() Result {
		a := testbed.NewAccess(testbed.Config{BufferUp: 8, BufferDown: 16, Seed: 7})
		a.StartWorkload(testbed.MustSpec(testbed.LookupAccessScenario("long-few", testbed.DirDown)))
		a.Eng.RunFor(2 * time.Second)
		src := NewSource(ClipA, shortSD, 1)
		var res Result
		Start(a.MediaServer, a.MediaClient, src, Config{Smooth: true, Seed: 7}, func(r Result) { res = r })
		a.Eng.RunFor(10 * time.Second)
		return res
	}
	a, b := run(), run()
	if a.MeanSSIM != b.MeanSSIM || a.PacketsLost != b.PacketsLost {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
