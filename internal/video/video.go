// Package video models the paper's IPTV measurement application
// (Section 8): H.264-style slice-structured video streamed over
// RTP/UDP in MPEG2-TS-sized packets, with VLC-style send-rate
// smoothing, a receiver that decodes with previous-frame slice
// concealment, and full-reference SSIM/PSNR evaluation of the decoded
// frames.
//
// Substitution note: the paper's three reference clips (interview,
// soccer, movie) are modeled as procedurally generated luma sequences
// with matching motion/detail classes, at reduced pixel resolution.
// The *network* bitrates stay at the paper's 4 Mbit/s (SD) and
// 8 Mbit/s (HD), so the testbed sees identical traffic; the pixel
// planes only feed the quality metrics, for which slice-loss artifact
// geometry (fraction of frame area frozen, propagation until the next
// I-frame) is what drives SSIM — preserved by the model.
package video

import (
	"fmt"
	"math"

	"bufferqoe/internal/sim"
)

// Profile describes an encoding ladder entry.
type Profile struct {
	Name string
	// W, H are the luma plane dimensions used for quality evaluation.
	W, H int
	// Bitrate is the stream's network bitrate in bits/s.
	Bitrate float64
	// FPS is the frame rate; GOP the I-frame period in frames.
	FPS, GOP int
	// Slices per frame (the paper encodes 32 slices to localize
	// errors).
	Slices int
}

// SD and HD are the paper's two encoding profiles.
var (
	SD = Profile{Name: "SD", W: 128, H: 96, Bitrate: 4e6, FPS: 25, GOP: 25, Slices: 32}
	HD = Profile{Name: "HD", W: 192, H: 144, Bitrate: 8e6, FPS: 25, GOP: 25, Slices: 32}
)

// Clip describes reference content. Motion controls how different
// consecutive frames are (and therefore how visible freeze
// concealment is); Detail controls spatial texture energy.
type Clip struct {
	Name   string
	Motion float64
	Detail float64
	Seed   uint64
}

// The paper's three content classes.
var (
	ClipA = Clip{Name: "A-interview", Motion: 0.2, Detail: 0.5, Seed: 101}
	ClipB = Clip{Name: "B-soccer", Motion: 0.9, Detail: 0.8, Seed: 102}
	ClipC = Clip{Name: "C-movie", Motion: 0.5, Detail: 0.6, Seed: 103}
)

// Clips lists the reference content in paper order.
var Clips = []Clip{ClipA, ClipB, ClipC}

// Source lazily renders and caches the frames of one (clip, profile)
// pair so repeated runs don't re-synthesize content.
type Source struct {
	Clip    Clip
	Profile Profile
	frames  [][]uint8
}

// NewSource creates a frame source for the given duration in seconds.
func NewSource(clip Clip, p Profile, seconds int) *Source {
	s := &Source{Clip: clip, Profile: p}
	n := seconds * p.FPS
	s.frames = make([][]uint8, n)
	for t := 0; t < n; t++ {
		s.frames[t] = renderFrame(clip, p, t)
	}
	return s
}

// Frames returns the number of frames.
func (s *Source) Frames() int { return len(s.frames) }

// Frame returns the t-th reference luma plane.
func (s *Source) Frame(t int) []uint8 { return s.frames[t] }

// renderFrame procedurally generates a luma plane: moving sinusoidal
// structure (global pan driven by Motion) over a static texture field
// (Detail), with a roaming high-contrast blob standing in for
// foreground objects.
func renderFrame(c Clip, p Profile, t int) []uint8 {
	out := make([]uint8, p.W*p.H)
	// Global pan in pixels/frame.
	pan := c.Motion * 3 * float64(t)
	// Blob path.
	bx := float64(p.W)/2 + float64(p.W)/3*math.Sin(0.05*float64(t)*(0.5+c.Motion))
	by := float64(p.H)/2 + float64(p.H)/3*math.Cos(0.04*float64(t)*(0.5+c.Motion))
	texRng := sim.NewRNG(c.Seed, "texture")
	// Static texture: a small tileable noise table.
	const texN = 64
	tex := make([]float64, texN*texN)
	for i := range tex {
		tex[i] = texRng.Float64()*2 - 1
	}
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			fx, fy := float64(x), float64(y)
			v := 128.0
			v += 45 * math.Sin(2*math.Pi*(fx+pan)/37) * math.Cos(2*math.Pi*(fy+0.5*pan)/29)
			v += c.Detail * 30 * tex[(y%texN)*texN+x%texN]
			d := math.Hypot(fx-bx, fy-by)
			if d < float64(p.H)/6 {
				v += 70 * (1 - d/(float64(p.H)/6))
			}
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			out[y*p.W+x] = uint8(v)
		}
	}
	return out
}

// sliceRows returns the row range [lo, hi) covered by slice s.
func sliceRows(p Profile, s int) (lo, hi int) {
	lo = s * p.H / p.Slices
	hi = (s + 1) * p.H / p.Slices
	return lo, hi
}

// FrameBytes returns the encoded size of frame t, allocating the GOP
// byte budget with a 3x weight on I-frames and content-dependent
// jitter (encoding-efficiency differences between clips, Section 8.3).
func FrameBytes(c Clip, p Profile, t int, rng *sim.RNG) int {
	gopBytes := p.Bitrate / 8 * float64(p.GOP) / float64(p.FPS)
	unit := gopBytes / float64(3+p.GOP-1)
	base := unit
	if t%p.GOP == 0 {
		base = 3 * unit
	}
	jitter := 1 + (rng.Float64()*2-1)*0.25*c.Detail
	n := int(base * jitter)
	if n < 200 {
		n = 200
	}
	return n
}

// String identifies a source for logs.
func (s *Source) String() string {
	return fmt.Sprintf("%s/%s", s.Clip.Name, s.Profile.Name)
}
