package experiments

import (
	"math"
	"reflect"
	"testing"
	"time"

	"bufferqoe/internal/cdn"
	"bufferqoe/internal/stats"
)

// TestCodecRoundTripBitIdentity: every type in the serializable set
// must decode to exactly the value encoded — same concrete type, same
// float bit patterns — because warm-store results are asserted
// bit-identical to fresh computes.
func TestCodecRoundTripBitIdentity(t *testing.T) {
	box := stats.Boxplot{Min: 0.25, Q1: 1, Median: 2.5, Q3: 4, Max: 9, WhiskerLo: 0.5, WhiskerHi: 8, N: 17}
	values := []any{
		voipScore{Listen: 4.103500000000001, Talk: 3.2, UpDelayMs: 17.25, UpUtilPct: 93.7},
		videoScore{SSIM: 0.9876543210987654, PSNR: 41.5},
		httpScore{MOS: 3.5000000000000004, Bitrate: 7.9e6},
		playoutScore{MOS: 2.1, Z1: 0.333, LossPct: 1.25},
		smoothingScore{SSIM: 0.75, LossPct: 12.5},
		bgMetrics{
			Conc: 12.5, UtilUpPct: 88.8, UtilDownPct: 97.1,
			SdUp: 0.11, SdDown: 0.07, LossUpPct: 2.5, LossDownPct: 0.1,
			DelayUpMs: 350.125, DelayDownMs: 41.0625,
			UpBox: box, DownBox: box,
		},
		float64(4.499999999999999),
		123456789 * time.Microsecond,
	}
	c := cellCodec{}
	for _, v := range values {
		data, ok := c.Encode(v)
		if !ok {
			t.Fatalf("Encode(%T) rejected", v)
		}
		got, err := c.Decode(data)
		if err != nil {
			t.Fatalf("Decode(%T): %v", v, err)
		}
		if reflect.TypeOf(got) != reflect.TypeOf(v) {
			t.Fatalf("round trip changed type: %T -> %T", v, got)
		}
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("round trip changed value: %#v -> %#v", v, got)
		}
	}
}

// NaN survives (gob encodes float64 by bit pattern); DeepEqual can't
// check it, so it gets its own case.
func TestCodecRoundTripNaN(t *testing.T) {
	c := cellCodec{}
	data, ok := c.Encode(math.NaN())
	if !ok {
		t.Fatal("Encode(NaN) rejected")
	}
	got, err := c.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if f, isF := got.(float64); !isF || !math.IsNaN(f) {
		t.Fatalf("Decode = %v (%T), want NaN", got, got)
	}
}

// *cdn.Analysis carries histogram types with unexported state gob
// would silently drop; the codec must refuse it so those cells are
// recomputed instead of corrupted.
func TestCodecRejectsOutOfSetTypes(t *testing.T) {
	c := cellCodec{}
	for _, v := range []any{
		&cdn.Analysis{},
		"a string",
		nil,
		struct{ X int }{1},
	} {
		if _, ok := c.Encode(v); ok {
			t.Fatalf("Encode(%T) accepted; outside the serializable set", v)
		}
	}
}

func TestCodecRejectsCorruptPayloads(t *testing.T) {
	c := cellCodec{}
	for _, data := range [][]byte{
		nil,
		{},
		{0xff},              // unknown kind tag
		{kindVoIP},          // tag with no gob body
		{kindVoIP, 1, 2, 3}, // tag with a torn gob body
	} {
		if _, err := c.Decode(data); err == nil {
			t.Fatalf("Decode(%v) succeeded on corrupt payload", data)
		}
	}
}
