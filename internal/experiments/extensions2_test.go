package experiments

import (
	"testing"
)

func TestFig7cRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short (race CI) mode")
	}
	r, err := Run("fig7c", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// The §7.2 shape: with combined up+down congestion at large
	// buffers, the talk direction is severely degraded (as in 7b).
	talk := r.Grids[0].Get("user-talks/long-many", "256").Value
	noBG := r.Grids[0].Get("user-talks/noBG", "256").Value
	if talk >= noBG {
		t.Fatalf("combined congestion talk MOS %.1f >= noBG %.1f", talk, noBG)
	}
}

func TestFig10cDominatedByUpload(t *testing.T) {
	r, err := Run("fig10c", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// §9.2: with combined workloads the QoE is dominated by the
	// upload side: long-many at a big buffer must be far above the
	// idle baseline PLT.
	plt := r.Grids[0].Get("long-many", "256").Value
	base := r.Grids[0].Get("noBG", "256").Value
	if plt < 2*base {
		t.Fatalf("combined congestion PLT %.2fs vs baseline %.2fs: upload domination missing", plt, base)
	}
}

func TestAblationIW10Bounded(t *testing.T) {
	r, err := Run("abl-iw10", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Under sustained upstream congestion both IWs land in the same
	// saturated QoE region at the bloated buffer: |delta MOS| < 1.5.
	d := r.Grids[0].Get("IW3 MOS", "256").Value - r.Grids[0].Get("IW10 MOS", "256").Value
	if d < 0 {
		d = -d
	}
	if d > 1.5 {
		t.Fatalf("IW choice moved bloated-buffer web MOS by %.1f", d)
	}
}

func TestAblationECNImprovesOverDropTail(t *testing.T) {
	r, err := Run("abl-ecn", tiny())
	if err != nil {
		t.Fatal(err)
	}
	dt := r.Grids[0].Get("PLT", "drop-tail").Value
	ecn := r.Grids[0].Get("PLT", "codel-ecn").Value
	if ecn >= dt {
		t.Fatalf("ECN+CoDel PLT %.2fs >= drop-tail %.2fs at the bloated uplink", ecn, dt)
	}
}

func TestAblationByteQueueRuns(t *testing.T) {
	r, err := Run("abl-bytequeue", tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range r.Grids[0].Cols {
		v := r.Grids[0].Get("talk MOS", col).Value
		if v < 1 || v > 5 {
			t.Fatalf("talk MOS out of range for %s: %v", col, v)
		}
	}
}

func TestAblationIQXSameConclusion(t *testing.T) {
	r, err := Run("abl-iqx", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// The ablation's claim is model-agreement: wherever congestion has
	// pushed the PLT, the exponential IQX curve and the logarithmic
	// G.1030 curve must tell the same story, column by column.
	for _, col := range r.Grids[0].Cols {
		g1030 := r.Grids[0].Get("G.1030 MOS", col).Value
		iqx := r.Grids[0].Get("IQX MOS", col).Value
		d := g1030 - iqx
		if d < 0 {
			d = -d
		}
		if d > 1 {
			t.Fatalf("models disagree at %s pkts: G.1030 %.1f vs IQX %.1f", col, g1030, iqx)
		}
	}
	// And neither model may paint bloat as a rescue: the bloated
	// 256-packet column must not outscore the BDP column. (A tiny
	// 8-packet buffer legitimately protects the thin web flow against
	// the single long-few bulk upload at test scale — the same
	// mechanism abl-ecn shows for CoDel — so the spread bound is
	// anchored at BDP, not at the minimum.)
	for _, row := range []string{"G.1030 MOS", "IQX MOS"} {
		bdp := r.Grids[0].Get(row, "64").Value
		bloat := r.Grids[0].Get(row, "256").Value
		if bloat > bdp+0.5 {
			t.Fatalf("%s rates bloat (%.1f) above BDP (%.1f)", row, bloat, bdp)
		}
	}
}

func TestExtRecoveryImproves(t *testing.T) {
	r, err := Run("ext-recovery", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// At moderate congestion both schemes must not hurt; at least one
	// must measurably improve on the baseline.
	base := r.Grids[0].Get("none", "short-medium").Value
	arq := r.Grids[0].Get("arq", "short-medium").Value
	fec := r.Grids[0].Get("fec", "short-medium").Value
	if arq < base-0.02 || fec < base-0.02 {
		t.Fatalf("recovery degraded quality: base %.3f arq %.3f fec %.3f", base, arq, fec)
	}
	if arq <= base && fec <= base {
		t.Fatalf("no recovery scheme improved SSIM: base %.3f arq %.3f fec %.3f", base, arq, fec)
	}
}

func TestExtPSNRAgreesWithSSIM(t *testing.T) {
	r, err := Run("ext-psnr", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's omission argument: both metrics order the
	// workloads identically (noBG >= short-medium >= long).
	for _, row := range []string{"SSIM MOS", "PSNR MOS"} {
		clean := r.Grids[0].Get(row, "noBG").Value
		mid := r.Grids[0].Get(row, "short-medium").Value
		bad := r.Grids[0].Get(row, "long").Value
		if clean < mid-0.2 || mid < bad-0.2 {
			t.Fatalf("%s ordering violated: noBG %.1f, short-medium %.1f, long %.1f", row, clean, mid, bad)
		}
	}
}

func TestExtJitterDegradesCleanNetwork(t *testing.T) {
	r, err := Run("ext-jitter", tiny())
	if err != nil {
		t.Fatal(err)
	}
	clean0 := r.Grids[0].Get("noBG listen MOS", "0s").Value
	clean30 := r.Grids[0].Get("noBG listen MOS", "30ms").Value
	if clean30 >= clean0 {
		t.Fatalf("30 ms last-hop jitter did not erode idle-network MOS: %.1f -> %.1f", clean0, clean30)
	}
}

func TestExtFQCoDelWebBestOrEqual(t *testing.T) {
	r, err := Run("ext-fqcodel-web", tiny())
	if err != nil {
		t.Fatal(err)
	}
	dt := r.Grids[0].Get("PLT", "drop-tail").Value
	fq := r.Grids[0].Get("PLT", "fq-codel").Value
	if fq >= dt {
		t.Fatalf("FQ-CoDel PLT %.2fs >= drop-tail %.2fs over the congested uplink", fq, dt)
	}
}

func TestExtABRShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short (race CI) mode")
	}
	r, err := Run("ext-abr", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Idle network: every player works. The ABR rows carry the
	// bitrate-utility discount, amplified at test scale where a
	// two-segment clip never leaves the conservative start, so their
	// floor is lower than the fixed-rate player's.
	if v := r.Grids[0].Get("progressive-4M", "noBG").Value; v < 2.5 {
		t.Fatalf("progressive scored %.1f on an idle backbone", v)
	}
	for _, p := range []string{"abr-rate", "abr-buffer"} {
		if v := r.Grids[0].Get(p, "noBG").Value; v < 2.0 {
			t.Fatalf("%s scored %.1f on an idle backbone", p, v)
		}
	}
	// Sustained overload: adaptation cannot rescue the stream either.
	if v := r.Grids[0].Get("abr-rate", "long").Value; v > 2.5 {
		t.Fatalf("abr-rate scored %.1f under overload, want bad", v)
	}
}

func TestExtParWebNeutralAtBloat(t *testing.T) {
	r, err := Run("ext-parweb", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// At the bloated congested uplink both fetch strategies land in
	// the same QoE region: parallelism must not differ by more than
	// one MOS point.
	d := r.Grids[0].Get("seq MOS", "256").Value - r.Grids[0].Get("par MOS", "256").Value
	if d < 0 {
		d = -d
	}
	if d > 1 {
		t.Fatalf("fetch strategy moved bloated-cell MOS by %.1f", d)
	}
}

func TestAblationBICConsistency(t *testing.T) {
	r, err := Run("abl-bic", tiny())
	if err != nil {
		t.Fatal(err)
	}
	// §5.2's claim across all three algorithms: the CC choice leaves
	// the QoE category unchanged (scores within ~1 MOS).
	lo, hi := 5.0, 1.0
	for _, col := range r.Grids[0].Cols {
		v := r.Grids[0].Get("listen MOS", col).Value
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo > 1.2 {
		t.Fatalf("background CC choice moved listen MOS by %.1f", hi-lo)
	}
}
