// Package experiments contains one runner per table and figure of the
// paper's evaluation, plus the ablation studies DESIGN.md calls out.
// Each runner builds the right testbed(s), applies the Table 1
// workload, sweeps the Table 2 buffer configurations, and returns the
// same rows/series the paper reports, rendered as ASCII grids.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"bufferqoe/internal/stats"
	"bufferqoe/internal/telemetry"
)

// Options scale an experiment run. The zero value gives CLI-friendly
// defaults; tests and benchmarks shrink them.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// Duration is the background-traffic measurement window per cell.
	Duration time.Duration
	// Warmup runs background traffic before measuring.
	Warmup time.Duration
	// Reps is the number of calls/streams/fetches per cell (the paper
	// uses 200-2000 calls and 50 streams; medians stabilize far
	// earlier).
	Reps int
	// ClipSeconds is the video clip length (paper: 16 s).
	ClipSeconds int
	// CDNFlows sizes the synthetic Section 3 population.
	CDNFlows int
	// CIHalfWidth, when > 0, enables adaptive replication: a rep-loop
	// cell (VoIP, video, web) stops repeating once the 95% confidence
	// interval of its per-repetition QoE score has half-width at most
	// CIHalfWidth (in MOS points), instead of always running Reps
	// repetitions. The rule is part of the cell's identity
	// (CellSpec.Stop): adaptive and exhaustive runs cache separately,
	// and an adaptive cell's realizations are the exhaustive cell's
	// first n, so its result is within the configured half-width of the
	// full run's. Zero (the default) reproduces the paper's exhaustive
	// behavior bit-identically.
	CIHalfWidth float64
	// MinReps is the minimum repetitions before the stopping rule may
	// fire; 0 defaults to 2 when CIHalfWidth is set (a variance needs
	// two observations) and is clamped to Reps. Ignored when
	// CIHalfWidth is 0.
	MinReps int
	// Collector, when non-nil, receives per-cell telemetry — the
	// build/sim/score phase breakdown, simulator event counts, and
	// JSON-lines trace events — from cells computed under these
	// options. It is observational only: it never enters a cell spec,
	// so runs with and without a collector share cache entries and
	// produce bit-identical results (cached cells report nothing; only
	// fresh computes are traced). Session.SetCollector installs a
	// session-wide default for runs that leave this nil.
	Collector *telemetry.Collector
}

// withDefaults normalizes an Options value: zero and negative fields
// clamp to the documented defaults. Every entry point normalizes
// before building cell specs, so two callers whose options normalize
// equally submit byte-identical specs and share cache entries.
func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Duration <= 0 {
		o.Duration = 30 * time.Second
	}
	if o.Warmup <= 0 {
		o.Warmup = 5 * time.Second
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if o.ClipSeconds <= 0 {
		o.ClipSeconds = 4
	}
	if o.CDNFlows <= 0 {
		o.CDNFlows = 200000
	}
	if o.CIHalfWidth <= 0 {
		// Disabled: zero both fields so every exhaustive spelling
		// canonicalizes to the same (stop-free) cell specs.
		o.CIHalfWidth, o.MinReps = 0, 0
	} else {
		if o.MinReps < 2 {
			o.MinReps = 2
		}
		if o.MinReps > o.Reps {
			o.MinReps = o.Reps
		}
	}
	return o
}

// Cell is one heatmap/table entry.
type Cell struct {
	// Value is the primary numeric result (MOS, ms, %, SSIM...).
	Value float64
	// Text overrides the rendered value when set.
	Text string
	// Class is an optional category label (G.114 class, MOS rating).
	Class string
}

// Grid is a labeled 2D result (rows x columns), the shape of every
// heatmap in the paper.
type Grid struct {
	Title string
	Rows  []string
	Cols  []string
	cells map[string]Cell
}

// NewGrid creates an empty grid.
func NewGrid(title string, rows, cols []string) *Grid {
	return &Grid{Title: title, Rows: rows, Cols: cols, cells: map[string]Cell{}}
}

func key(row, col string) string { return row + "\x00" + col }

// Set stores a cell.
func (g *Grid) Set(row, col string, c Cell) { g.cells[key(row, col)] = c }

// Get returns a cell (zero Cell if unset).
func (g *Grid) Get(row, col string) Cell { return g.cells[key(row, col)] }

// Lookup returns a cell and whether it was ever set, so callers can
// tell a genuine zero value from an unknown coordinate.
func (g *Grid) Lookup(row, col string) (Cell, bool) {
	c, ok := g.cells[key(row, col)]
	return c, ok
}

// Render draws the grid as an aligned table; cells show the value and
// class (if any).
func (g *Grid) Render() string {
	header := append([]string{""}, g.Cols...)
	tb := stats.NewTable(header...)
	for _, r := range g.Rows {
		row := []string{r}
		for _, c := range g.Cols {
			cell := g.Get(r, c)
			txt := cell.Text
			if txt == "" {
				txt = stats.FormatFloat(cell.Value)
			}
			if cell.Class != "" {
				txt += " (" + cell.Class + ")"
			}
			row = append(row, txt)
		}
		tb.AddRow(row...)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n%s", g.Title, tb.String())
	return b.String()
}

// Result is one experiment's output.
type Result struct {
	ID    string
	Grids []*Grid
	Notes []string
}

// Render concatenates all grids and notes.
func (r *Result) Render() string {
	var b strings.Builder
	for _, g := range r.Grids {
		b.WriteString(g.Render())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// runner is one experiment implementation, bound to the session whose
// engine its cells run on.
type runner func(*Session, Options) (*Result, error)

var registry = map[string]runner{
	"table1":          table1,
	"table2":          table2,
	"fig1a":           fig1a,
	"fig1b":           fig1b,
	"fig1c":           fig1c,
	"fig4a":           func(s *Session, o Options) (*Result, error) { return fig4(s, o, "a") },
	"fig4b":           func(s *Session, o Options) (*Result, error) { return fig4(s, o, "b") },
	"fig4c":           func(s *Session, o Options) (*Result, error) { return fig4(s, o, "c") },
	"fig5":            fig5,
	"fig7a":           func(s *Session, o Options) (*Result, error) { return fig7(s, o, "a") },
	"fig7b":           func(s *Session, o Options) (*Result, error) { return fig7(s, o, "b") },
	"fig7c":           func(s *Session, o Options) (*Result, error) { return fig7(s, o, "c") },
	"fig8":            fig8,
	"fig9a":           func(s *Session, o Options) (*Result, error) { return fig9(s, o, "a") },
	"fig9b":           func(s *Session, o Options) (*Result, error) { return fig9(s, o, "b") },
	"fig10a":          func(s *Session, o Options) (*Result, error) { return fig10(s, o, "a") },
	"fig10b":          func(s *Session, o Options) (*Result, error) { return fig10(s, o, "b") },
	"fig10c":          func(s *Session, o Options) (*Result, error) { return fig10(s, o, "c") },
	"fig11":           fig11,
	"abl-aqm":         ablationAQM,
	"abl-bic":         ablationBIC,
	"abl-bytequeue":   ablationByteQueue,
	"abl-ccalgo":      ablationCC,
	"abl-ecn":         ablationECN,
	"abl-iqx":         ablationIQX,
	"abl-iw10":        ablationIW10,
	"abl-loadaware":   ablationLoadAware,
	"abl-smoothing":   ablationSmoothing,
	"abl-playout":     ablationPlayout,
	"abl-sack":        ablationSACK,
	"ext-abr":         extABR,
	"ext-clips":       extClips,
	"ext-fqcodel-web": extFQCoDelWeb,
	"ext-httpvideo":   extHTTPVideo,
	"ext-jitter":      extJitter,
	"ext-parweb":      extParWeb,
	"ext-psnr":        extPSNR,
	"ext-recovery":    extRecovery,
}

// IDs returns all experiment identifiers, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID on the session's engine. A run on
// a WithContext view whose context is canceled abandons its queued
// cells and returns ErrCanceled (in-flight cells drain into the
// cache).
func (s *Session) Run(id string, o Options) (res *Result, err error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	// Runners signal cancellation by panicking with cancelSignal from
	// runOne/runCells (always on this goroutine); everything else is a
	// genuine bug and keeps propagating.
	defer func() {
		if p := recover(); p != nil {
			cs, ok := p.(cancelSignal)
			if !ok {
				panic(p)
			}
			res, err = nil, cs.err
		}
	}()
	return r(s, s.opts(o))
}

// RunCtx is Run bounded by ctx.
func (s *Session) RunCtx(ctx context.Context, id string, o Options) (*Result, error) {
	return s.WithContext(ctx).Run(id, o)
}

// Run executes one experiment by ID on the Default session.
func Run(id string, o Options) (*Result, error) { return Default.Run(id, o) }

// Outcome is one experiment's entry in a RunAll batch.
type Outcome struct {
	ID      string
	Result  *Result
	Err     error
	Elapsed time.Duration
}

// RunAll executes a batch of experiments and returns one Outcome per
// ID, in input order. Experiments run concurrently (their cells
// additionally fan out across the session's worker pool); a failing
// experiment records its error and does not stop the rest. Cells
// shared between experiments in the batch are simulated once: the
// engine coalesces duplicate in-flight specs and caches results.
func (s *Session) RunAll(ids []string, o Options) []Outcome {
	ctx := s.context()
	out := make([]Outcome, len(ids))
	// Experiment-level concurrency is bounded separately from the cell
	// pool: experiment goroutines spend almost all their time waiting
	// on cells, so a small multiple of the cell pool keeps it fed
	// without piling up every grid's bookkeeping at once.
	sem := make(chan struct{}, 2*s.Parallelism())
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				// Canceled while waiting for an experiment slot: record
				// the abandonment without starting the run.
				out[i] = Outcome{ID: id, Err: ErrCanceled}
				return
			}
			defer func() { <-sem }()
			start := time.Now()
			res, err := s.Run(id, o)
			out[i] = Outcome{ID: id, Result: res, Err: err, Elapsed: time.Since(start)}
		}(i, id)
	}
	wg.Wait()
	return out
}

// RunAllCtx is RunAll bounded by ctx: canceled experiments record
// ErrCanceled outcomes instead of results.
func (s *Session) RunAllCtx(ctx context.Context, ids []string, o Options) []Outcome {
	return s.WithContext(ctx).RunAll(ids, o)
}

// RunAll executes a batch of experiments on the Default session.
func RunAll(ids []string, o Options) []Outcome { return Default.RunAll(ids, o) }
