package experiments

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"
)

// tiny returns options small enough for unit tests.
func tiny() Options {
	return Options{
		Seed:        7,
		Duration:    4 * time.Second,
		Warmup:      2 * time.Second,
		Reps:        1,
		ClipSeconds: 1,
		CDNFlows:    30000,
	}
}

func TestIDsComplete(t *testing.T) {
	want := []string{
		"table1", "table2",
		"fig1a", "fig1b", "fig1c",
		"fig4a", "fig4b", "fig4c", "fig5",
		"fig7a", "fig7b", "fig7c", "fig8",
		"fig9a", "fig9b",
		"fig10a", "fig10b", "fig10c", "fig11",
		"abl-aqm", "abl-bic", "abl-bytequeue", "abl-ccalgo", "abl-ecn",
		"abl-iqx", "abl-iw10", "abl-loadaware", "abl-smoothing",
		"abl-playout", "abl-sack",
		"ext-abr", "ext-clips", "ext-fqcodel-web", "ext-httpvideo",
		"ext-jitter", "ext-parweb", "ext-psnr", "ext-recovery",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("missing experiment %q", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Fatalf("experiment count = %d, want %d (%v)", len(IDs()), len(want), IDs())
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("nope", tiny()); err == nil {
		t.Fatal("expected error")
	}
}

// TestEveryRunnerBuildsItsCells drives every registered experiment
// under an already-canceled context: each runner builds its full task
// list (workload names resolve at task-build time, so a runner
// handing an access builder a backbone scenario name — the fig9b bug
// — panics right here), then the engine abandons the cells without
// simulating anything. Cheap total coverage of every builder path.
func TestEveryRunnerBuildsItsCells(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewSession(1).WithContext(ctx)
	for _, id := range IDs() {
		res, err := s.Run(id, tiny())
		if err != nil && !errors.Is(err, ErrCanceled) {
			t.Fatalf("%s: %v", id, err)
		}
		// Cell-free experiments (table2, fig1* population analysis may
		// still submit one cell) legitimately complete; everything else
		// reports the cancellation.
		if err == nil && res == nil {
			t.Fatalf("%s: nil result without error", id)
		}
	}
}

func TestGridRender(t *testing.T) {
	g := NewGrid("t", []string{"r1"}, []string{"c1", "c2"})
	g.Set("r1", "c1", Cell{Value: 3.14159})
	g.Set("r1", "c2", Cell{Text: "x", Class: "good"})
	out := g.Render()
	if !strings.Contains(out, "3.14") || !strings.Contains(out, "x (good)") {
		t.Fatalf("render = %q", out)
	}
}

func TestTable2Static(t *testing.T) {
	r, err := Run("table2", tiny())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	// Spot-check the paper's headline delays: 3167 ms uplink max,
	// 580 ms backbone bloat.
	if !strings.Contains(out, "3072") && !strings.Contains(out, "3167") {
		// we compute 3072 ms for 256 pkts at 1 Mbit/s
		t.Fatalf("missing uplink max delay in:\n%s", out)
	}
	if !strings.Contains(out, "579.") && !strings.Contains(out, "580") {
		t.Fatalf("missing backbone bloat delay in:\n%s", out)
	}
}

func TestFig1Family(t *testing.T) {
	for _, id := range []string{"fig1a", "fig1b", "fig1c"} {
		r, err := Run(id, tiny())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(r.Grids) == 0 {
			t.Fatalf("%s: no grids", id)
		}
		if r.Render() == "" {
			t.Fatalf("%s: empty render", id)
		}
	}
}

func TestFig1aOrdering(t *testing.T) {
	r, err := Run("fig1a", tiny())
	if err != nil {
		t.Fatal(err)
	}
	g := r.Grids[0]
	minMode := g.Get("min RTT", "mode (ms)").Value
	maxMode := g.Get("max RTT", "mode (ms)").Value
	if maxMode <= minMode {
		t.Fatalf("max mode %v <= min mode %v", maxMode, minMode)
	}
}

func TestFig4cBufferbloatShape(t *testing.T) {
	r, err := Run("fig4c", tiny())
	if err != nil {
		t.Fatal(err)
	}
	g := r.Grids[0]
	// Uplink delay at 256 packets must dwarf the 8-packet delay for
	// the long-many upstream workload (Figure 4c's headline).
	small := g.Get("uplink/long-many", "8").Value
	big := g.Get("uplink/long-many", "256").Value
	if big < 5*small || big < 500 {
		t.Fatalf("bufferbloat shape missing: 8pkt=%.0fms 256pkt=%.0fms", small, big)
	}
	if g.Get("uplink/long-many", "256").Class != "severe" {
		t.Fatalf("256-pkt uplink delay not classified severe")
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := Run("fig5", tiny())
	if err != nil {
		t.Fatal(err)
	}
	g := r.Grids[0]
	// Uplink stays near-saturated across buffer sizes (paper: ~100%).
	up := g.Get("uplink median", "64").Value
	if up < 70 {
		t.Fatalf("uplink median utilization = %.1f%%, want high", up)
	}
}

func TestFig7bShape(t *testing.T) {
	o := tiny()
	r, err := Run("fig7b", o)
	if err != nil {
		t.Fatal(err)
	}
	g := r.Grids[0]
	// noBG rows stay excellent at every buffer size.
	for _, col := range g.Cols {
		if v := g.Get("user-talks/noBG", col).Value; v < 3.9 {
			t.Fatalf("noBG talk MOS at %s = %v", col, v)
		}
	}
	// Upload congestion with bloat wrecks the talk direction relative
	// to noBG.
	talkBloat := g.Get("user-talks/short-many", "256").Value
	if talkBloat > 3.0 {
		t.Fatalf("talk MOS under bloated congested uplink = %v, want low", talkBloat)
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short (race CI) mode")
	}
	r, err := Run("fig8", tiny())
	if err != nil {
		t.Fatal(err)
	}
	g := r.Grids[0]
	// noBG is excellent; short-overload is catastrophic (paper: 1.2-1.7).
	if v := g.Get("noBG", "749").Value; v < 4.0 {
		t.Fatalf("backbone noBG MOS = %v", v)
	}
	clean := g.Get("short-low", "749").Value
	overload := g.Get("short-overload", "749").Value
	if overload >= clean {
		t.Fatalf("overload MOS %v >= short-low %v", overload, clean)
	}
}

func TestFig9aShape(t *testing.T) {
	r, err := Run("fig9a", tiny())
	if err != nil {
		t.Fatal(err)
	}
	g := r.Grids[0]
	// noBG rows: SSIM ~1 for both resolutions at every buffer.
	for _, col := range g.Cols {
		for _, p := range []string{"SD", "HD"} {
			if v := g.Get(p+"/noBG", col).Value; v < 0.99 {
				t.Fatalf("%s noBG SSIM at %s = %v", p, col, v)
			}
		}
	}
	// Congested SD is clearly degraded (paper: ~0.4-0.56).
	if v := g.Get("SD/long-many", "64").Value; v > 0.97 {
		t.Fatalf("congested SD SSIM = %v, want degraded", v)
	}
}

func TestFig10bShape(t *testing.T) {
	r, err := Run("fig10b", tiny())
	if err != nil {
		t.Fatal(err)
	}
	g := r.Grids[0]
	// noBG loads fast; upload congestion inflates PLT dramatically.
	base := g.Get("noBG", "64").Value
	cong := g.Get("long-many", "256").Value
	if base > 1.5 {
		t.Fatalf("noBG PLT = %vs", base)
	}
	if cong < 2*base {
		t.Fatalf("congested PLT %vs not clearly above baseline %vs", cong, base)
	}
}

func TestExtensionHTTPVideo(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short (race CI) mode")
	}
	r, err := Run("ext-httpvideo", tiny())
	if err != nil {
		t.Fatal(err)
	}
	g := r.Grids[0]
	clean := g.Get("noBG", "749").Value
	loaded := g.Get("short-overload", "749").Value
	if clean < 4.0 {
		t.Fatalf("idle HTTP video MOS = %v", clean)
	}
	if loaded >= clean {
		t.Fatalf("overload MOS %v >= clean %v (workload should dominate)", loaded, clean)
	}
}

func TestAblationPlayout(t *testing.T) {
	r, err := Run("abl-playout", tiny())
	if err != nil {
		t.Fatal(err)
	}
	g := r.Grids[0]
	// The adaptive buffer must not lose more frames than the fixed
	// one under downstream jitter.
	fixed := g.Get("app loss %", "fixed-60ms").Value
	adaptive := g.Get("app loss %", "adaptive").Value
	if adaptive > fixed+1 {
		t.Fatalf("adaptive playout loses more (%v%%) than fixed (%v%%)", adaptive, fixed)
	}
}

func TestExtensionClips(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short (race CI) mode")
	}
	r, err := Run("ext-clips", tiny())
	if err != nil {
		t.Fatal(err)
	}
	g := r.Grids[0]
	// All clips are pristine without load and degraded under long.
	for _, row := range g.Rows {
		if v := g.Get(row, "noBG").Value; v < 0.99 {
			t.Fatalf("%s noBG SSIM = %v", row, v)
		}
		if v := g.Get(row, "long").Value; v > 0.97 {
			t.Fatalf("%s under long workload SSIM = %v, want degraded", row, v)
		}
	}
}

func TestAblationSACKKeepsQueueFuller(t *testing.T) {
	r, err := Run("abl-sack", tiny())
	if err != nil {
		t.Fatal(err)
	}
	g := r.Grids[0]
	reno := g.Get("mean uplink delay (ms)", "newreno").Value
	sack := g.Get("mean uplink delay (ms)", "sack").Value
	if sack < reno*0.8 {
		t.Fatalf("SACK mean delay %v << NewReno %v: standing queue should be at least comparable", sack, reno)
	}
}

func TestAblationsRun(t *testing.T) {
	for _, id := range []string{"abl-aqm", "abl-ccalgo", "abl-loadaware", "abl-smoothing", "abl-playout", "abl-sack"} {
		r, err := Run(id, tiny())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(r.Grids) == 0 || r.Render() == "" {
			t.Fatalf("%s: empty result", id)
		}
	}
}

func TestAblationAQMImprovesTalkDelay(t *testing.T) {
	r, err := Run("abl-aqm", tiny())
	if err != nil {
		t.Fatal(err)
	}
	g := r.Grids[0]
	droptail := g.Get("talk MOS", "drop-tail").Value
	codel := g.Get("talk MOS", "codel").Value
	// CoDel should not be worse than a bloated drop-tail for the
	// conversational score.
	if codel+0.3 < droptail {
		t.Fatalf("CoDel talk MOS %v clearly worse than drop-tail %v", codel, droptail)
	}
}

func TestAblationSmoothingShape(t *testing.T) {
	r, err := Run("abl-smoothing", tiny())
	if err != nil {
		t.Fatal(err)
	}
	g := r.Grids[0]
	if g.Get("loss %", "smooth-8pkt").Value != 0 {
		t.Fatal("smoothed stream lost packets on idle link")
	}
	if g.Get("loss %", "burst-8pkt").Value == 0 {
		t.Fatal("unsmoothed bursts lost nothing at 8-pkt buffer")
	}
}

func TestOptionDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Reps == 0 || o.Duration == 0 || o.Seed == 0 || o.CDNFlows == 0 {
		t.Fatalf("defaults missing: %+v", o)
	}
}

func TestBufferColumnLabels(t *testing.T) {
	cols := accessBufferCols()
	if len(cols) != 6 || cols[0] != "8" || cols[5] != "256" {
		t.Fatalf("access cols = %v", cols)
	}
	for _, c := range backboneBufferCols() {
		if _, err := strconv.Atoi(c); err != nil {
			t.Fatalf("bad column %q", c)
		}
	}
}
