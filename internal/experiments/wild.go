package experiments

import (
	"fmt"

	"bufferqoe/internal/cdn"
	"bufferqoe/internal/stats"
)

// wildAnalysis runs (or fetches from the cell cache) the synthetic
// CDN analysis; the three Figure 1 panels share one population per
// (seed, flows) pair.
func wildAnalysis(s *Session, o Options) *cdn.Analysis {
	return s.runOne(wildTask(o)).(*cdn.Analysis)
}

// fig1a regenerates the min/avg/max sRTT PDFs.
func fig1a(s *Session, o Options) (*Result, error) {
	a := wildAnalysis(s, o)
	g := NewGrid("Figure 1a: PDF of log sRTT (sparklines over 1ms..10s)",
		[]string{"min RTT", "avg RTT", "max RTT"},
		[]string{"pdf", "mode (ms)"})
	g.Set("min RTT", "pdf", Cell{Text: stats.SparklinePDF(a.MinPDF.PDF())})
	g.Set("avg RTT", "pdf", Cell{Text: stats.SparklinePDF(a.AvgPDF.PDF())})
	g.Set("max RTT", "pdf", Cell{Text: stats.SparklinePDF(a.MaxPDF.PDF())})
	g.Set("min RTT", "mode (ms)", Cell{Value: a.MinPDF.Mode()})
	g.Set("avg RTT", "mode (ms)", Cell{Value: a.AvgPDF.Mode()})
	g.Set("max RTT", "mode (ms)", Cell{Value: a.MaxPDF.Mode()})
	return &Result{
		ID:    "fig1a",
		Grids: []*Grid{g},
		Notes: []string{fmt.Sprintf("%d flows analyzed (>=10 samples)", a.FlowsAnalyzed)},
	}, nil
}

// fig1b regenerates the min-vs-max 2D histogram.
func fig1b(s *Session, o Options) (*Result, error) {
	a := wildAnalysis(s, o)
	g := NewGrid("Figure 1b: min vs max RTT per flow",
		[]string{"frac near diagonal (+-1 bin)"}, []string{"value"})
	g.Set("frac near diagonal (+-1 bin)", "value", Cell{Value: a.MinMax.FracOnDiagonal(1)})
	return &Result{
		ID:    "fig1b",
		Grids: []*Grid{g},
		Notes: []string{"density plot:\n" + a.MinMax.RenderASCII()},
	}, nil
}

// fig1c regenerates the estimated queueing-delay PDFs by access
// technology, plus the headline marginals.
func fig1c(s *Session, o Options) (*Result, error) {
	a := wildAnalysis(s, o)
	rows := []string{"FTTH", "Cable", "ADSL", "all"}
	g := NewGrid("Figure 1c: PDF of estimated queueing delay (max-min sRTT)",
		rows, []string{"pdf", "n"})
	for _, r := range rows {
		h := a.QDelay[r]
		g.Set(r, "pdf", Cell{Text: stats.SparklinePDF(h.PDF())})
		g.Set(r, "n", Cell{Value: float64(h.N())})
	}
	m := NewGrid("Section 3 marginals (paper: 80% / 2.8% / 1%)",
		[]string{"delay variation"}, []string{"<100ms", ">500ms", ">1000ms"})
	m.Set("delay variation", "<100ms", Cell{Value: 100 * a.FracBelow100ms})
	m.Set("delay variation", ">500ms", Cell{Value: 100 * a.FracAbove500ms})
	m.Set("delay variation", ">1000ms", Cell{Value: 100 * a.FracAbove1000ms})
	p := NewGrid("Proximity (min RTT <= 100ms; paper: 95% / 99.9%)",
		[]string{"near flows"}, []string{"<100ms", "<1000ms"})
	p.Set("near flows", "<100ms", Cell{Value: 100 * a.NearFracBelow100})
	p.Set("near flows", "<1000ms", Cell{Value: 100 * a.NearFracBelow1000})
	return &Result{ID: "fig1c", Grids: []*Grid{g, m, p}}, nil
}
