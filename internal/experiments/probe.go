package experiments

import (
	"context"
	"fmt"
	"time"

	"bufferqoe/internal/aqm"
	"bufferqoe/internal/engine"
	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
	"bufferqoe/internal/tcp"
	"bufferqoe/internal/testbed"
	"bufferqoe/internal/video"
)

// ProbeSpec is the exported cell-submission path for custom
// configurations: one foreground measurement (VoIP, web, or video) on
// one fully described network — a paper testbed or a custom access
// link — under one Table 1 workload, buffer configuration, queue
// discipline, congestion control, and last-hop jitter. A ProbeSpec
// whose knobs match a paper configuration submits the exact cell spec
// the experiment grids use, so it answers from the same cache.
type ProbeSpec struct {
	// Testbed is "access" (the default) or "backbone". Custom links,
	// jitter, and congestion direction exist on the access shape only;
	// the backbone is downstream-congested as in the paper.
	Testbed string
	// Scenario is the Table 1 workload name; "" means "noBG". Mutually
	// exclusive with Mix.
	Scenario string
	// Mix, when non-nil, replaces the named preset with a composable
	// workload. A mix equal to a Table 1 preset under some congestion
	// direction is folded onto that preset's (Scenario, Direction)
	// during normalization, so both spellings submit the identical
	// cell spec and share one cache entry and CRN seed; a genuinely
	// custom mix is canonicalized and carried on the cell spec's
	// workload axis by its canonical encoding. Because a mix names its
	// own directions, Direction must be left at its zero value.
	Mix *testbed.Workload
	// Direction is where the background congestion applies (access).
	Direction testbed.Direction
	// Buffer is the bottleneck buffer in packets (downlink on access).
	Buffer int
	// BufferUp overrides the access uplink buffer; 0 = same as Buffer.
	BufferUp int
	// Media is "voip", "web", or "video".
	Media string
	// Profile is the video encoding profile; the zero value means SD.
	Profile video.Profile
	// Link overrides the access bottleneck rates/delays; the zero
	// value is the paper's DSL link.
	Link testbed.LinkParams
	// AQM selects the bottleneck queue discipline: "" or "droptail"
	// (the paper's), "codel", "fq-codel", "red", "ared", "pie". On the
	// access testbed it applies to both bottleneck queues, on the
	// backbone to the congested downstream queue.
	AQM string
	// CC selects background congestion control: "" (the testbed's
	// paper default: CUBIC on access, Reno on backbone), "cubic",
	// "reno", "bic", "bbr".
	CC string
	// Jitter adds a WiFi/LTE-like exponential per-packet delay on the
	// access client hop.
	Jitter time.Duration
}

// ProbeValue is a probe's measurement; which fields are populated
// depends on the media. VoIP fills ListenMOS (and TalkMOS on the
// access testbed), web fills PLT, video fills SSIM and PSNR.
type ProbeValue struct {
	ListenMOS, TalkMOS float64
	PLT                time.Duration
	SSIM, PSNR         float64
}

// aqmFactory maps a discipline name to a queue factory for a
// bottleneck of the given rate, plus its canonical variant tag.
// Drop-tail returns a nil factory (the testbed default).
func aqmFactory(name string, rateBps float64, rngLabel string) (queueFactory, error) {
	switch name {
	case "", "droptail", "drop-tail":
		return nil, nil
	case "codel":
		return func(capPkts int, _ uint64) netem.Queue {
			return aqm.NewCoDelForRate(capPkts, rateBps)
		}, nil
	case "fq-codel", "fqcodel":
		return func(capPkts int, _ uint64) netem.Queue {
			return aqm.NewFQCoDelForRate(capPkts, rateBps)
		}, nil
	case "red":
		return func(capPkts int, seed uint64) netem.Queue {
			return aqm.NewRED(capPkts, sim.NewRNG(seed, rngLabel))
		}, nil
	case "ared":
		return func(capPkts int, seed uint64) netem.Queue {
			return aqm.NewARED(capPkts, sim.NewRNG(seed, rngLabel))
		}, nil
	case "pie":
		return func(capPkts int, seed uint64) netem.Queue {
			return aqm.NewPIE(capPkts, sim.NewRNG(seed, rngLabel))
		}, nil
	default:
		return nil, fmt.Errorf("unknown AQM %q (want droptail, codel, fq-codel, red, ared, pie)", name)
	}
}

// aqmTag renders the canonical variant fragment for a discipline;
// drop-tail — the default — contributes nothing.
func aqmTag(name string) string {
	switch name {
	case "", "droptail", "drop-tail":
		return ""
	case "fqcodel":
		return "aqm=fq-codel"
	default:
		return "aqm=" + name
	}
}

// ccChoice maps a congestion-control name to its constructor and
// canonical tag, folding the testbed's paper default to the zero
// value so "cubic on access" and "default on access" are one cell.
func ccChoice(name, testbedName string) (func() tcp.CongestionControl, string, error) {
	def := "cubic"
	if testbedName == "backbone" {
		def = "reno"
	}
	if name == def {
		name = ""
	}
	switch name {
	case "":
		return nil, "", nil
	case "cubic":
		return tcp.NewCubic, "cc=cubic", nil
	case "reno":
		return tcp.NewReno, "cc=reno", nil
	case "bic":
		return tcp.NewBIC, "cc=bic", nil
	case "bbr":
		return tcp.NewBBRLite, "cc=bbr", nil
	default:
		return nil, "", fmt.Errorf("unknown congestion control %q (want cubic, reno, bic, bbr)", name)
	}
}

// normalize fills defaults and validates the spec without building
// anything. A Mix is validated, canonicalized, and folded onto the
// matching Table 1 preset when one exists, so the rest of the
// pipeline sees exactly one spelling per workload.
func (p ProbeSpec) normalize() (ProbeSpec, error) {
	if p.Mix != nil {
		if p.Scenario != "" {
			return p, fmt.Errorf("set Scenario or Mix, not both (Scenario %q and a custom mix given)", p.Scenario)
		}
		if err := p.Mix.Validate(); err != nil {
			return p, fmt.Errorf("invalid mix: %w", err)
		}
		if p.Direction != testbed.DirDown {
			return p, fmt.Errorf("a mix names its own directions (Up/Down components); leave Direction at its zero value")
		}
	}
	if p.Scenario == "" && p.Mix == nil {
		p.Scenario = "noBG"
	}
	switch p.Testbed {
	case "":
		p.Testbed = "access"
	case "access", "backbone":
	default:
		return p, fmt.Errorf("unknown testbed %q (want access or backbone)", p.Testbed)
	}
	if p.Mix != nil {
		canon := p.Mix.Canonical()
		if p.Testbed == "backbone" {
			if len(canon.Up) > 0 {
				return p, fmt.Errorf("backbone mixes are downstream-only (Figure 3b): drop the Up components or use the access testbed")
			}
			if name, ok := testbed.MatchBackbonePreset(canon); ok {
				p.Scenario, p.Mix = name, nil
			} else {
				p.Mix = &canon
			}
		} else {
			if name, dir, ok := testbed.MatchAccessPreset(canon); ok {
				p.Scenario, p.Direction, p.Mix = name, dir, nil
			} else {
				p.Mix = &canon
			}
		}
	}
	if p.Buffer <= 0 {
		return p, fmt.Errorf("buffer must be positive, got %d", p.Buffer)
	}
	if p.BufferUp < 0 {
		return p, fmt.Errorf("uplink buffer must be non-negative, got %d", p.BufferUp)
	}
	switch p.Media {
	case "voip", "web", "video":
	default:
		return p, fmt.Errorf("unknown media %q (want voip, web, video)", p.Media)
	}
	if p.Media == "video" && p.Profile.Name == "" {
		p.Profile = video.SD
	}
	if p.Testbed == "backbone" {
		if p.Mix == nil {
			if _, err := testbed.LookupBackboneScenario(p.Scenario); err != nil {
				return p, err
			}
		}
		if p.Direction != testbed.DirDown {
			return p, fmt.Errorf("backbone congestion is downstream-only, got direction %v", p.Direction)
		}
		if !p.Link.IsDefault() {
			return p, fmt.Errorf("custom links use the access shape; the backbone testbed is preset-only")
		}
		if p.Jitter != 0 {
			return p, fmt.Errorf("last-hop jitter exists on the access shape only")
		}
		if p.BufferUp != 0 {
			return p, fmt.Errorf("uplink buffer override exists on the access testbed only")
		}
	} else {
		if p.Mix == nil {
			if _, err := testbed.LookupAccessScenario(p.Scenario, p.Direction); err != nil {
				return p, err
			}
		}
		if p.Jitter < 0 {
			return p, fmt.Errorf("jitter must be non-negative, got %v", p.Jitter)
		}
		// Zero link fields mean "the paper's value"; negatives are a
		// caller mistake, not a default request.
		if p.Link.UpRate < 0 || p.Link.DownRate < 0 {
			return p, fmt.Errorf("link rates must be non-negative, got %g/%g up/down", p.Link.UpRate, p.Link.DownRate)
		}
		if p.Link.ClientDelay < 0 || p.Link.ServerDelay < 0 {
			return p, fmt.Errorf("link delays must be non-negative, got %v/%v client/server", p.Link.ClientDelay, p.Link.ServerDelay)
		}
		if p.Link.Wifi.Stations < 0 {
			return p, fmt.Errorf("wifi stations must be non-negative, got %d", p.Link.Wifi.Stations)
		}
		if p.Link.Wifi.Stations == 0 && (p.Link.Wifi.RetryLimit != 0 || p.Link.Wifi.MaxAggFrames != 0) {
			return p, fmt.Errorf("wifi retry/aggregation knobs need Stations >= 1 to enable the 802.11 bottleneck")
		}
		if p.Link.Wifi.RetryLimit < 0 || p.Link.Wifi.MaxAggFrames < 0 {
			return p, fmt.Errorf("wifi retry limit and aggregation must be non-negative, got %d/%d", p.Link.Wifi.RetryLimit, p.Link.Wifi.MaxAggFrames)
		}
		if p.Link.Reorder < 0 || p.Link.Reorder >= 1 {
			return p, fmt.Errorf("reorder probability must be in [0,1), got %g", p.Link.Reorder)
		}
	}
	if _, err := aqmFactory(p.AQM, 1e6, "x"); err != nil {
		return p, err
	}
	if _, _, err := ccChoice(p.CC, p.Testbed); err != nil {
		return p, err
	}
	return p, nil
}

// task compiles a normalized spec into the engine task it names.
func (p ProbeSpec) task(o Options) (engine.Task, error) {
	p, err := p.normalize()
	if err != nil {
		return engine.Task{}, fmt.Errorf("experiments: invalid probe: %w", err)
	}
	cc, ccTag, _ := ccChoice(p.CC, p.Testbed)
	var jitterTag string
	if p.Jitter > 0 {
		jitterTag = "jitter=" + p.Jitter.String()
	}
	tag := joinTags(aqmTag(p.AQM), ccTag, jitterTag)

	if p.Testbed == "backbone" {
		downQ, _ := aqmFactory(p.AQM, testbed.BackboneRate, "aqm-down")
		v := backboneVariant{tag: tag, downQueue: downQ, cc: cc, mix: p.Mix}
		switch p.Media {
		case "voip":
			return voipBackboneTask(o, p.Scenario, p.Buffer, v), nil
		case "web":
			return webBackboneTask(o, p.Scenario, p.Buffer, v), nil
		default:
			return videoBackboneTask(o, p.Scenario, video.ClipC, p.Profile, video.RecoveryNone, p.Buffer, v), nil
		}
	}

	lp := p.Link.WithDefaults()
	upQ, _ := aqmFactory(p.AQM, lp.UpRate, "aqm-up")
	downQ, _ := aqmFactory(p.AQM, lp.DownRate, "aqm-down")
	v := accessVariant{
		tag: tag, bufUp: p.BufferUp,
		upQueue: upQ, downQueue: downQ,
		cc: cc, jitter: p.Jitter, link: p.Link,
		mix: p.Mix,
	}
	switch p.Media {
	case "voip":
		return voipAccessTask(o, p.Scenario, p.Direction, p.Buffer, v), nil
	case "web":
		return webAccessTask(o, p.Scenario, p.Direction, p.Buffer, v, 0), nil
	default:
		return videoAccessTask(o, p.Scenario, p.Direction, video.ClipC, p.Profile, p.Buffer, v), nil
	}
}

// value converts a cell's raw result into a ProbeValue.
func (p ProbeSpec) value(raw any) ProbeValue {
	switch r := raw.(type) {
	case voipScore:
		return ProbeValue{ListenMOS: r.Listen, TalkMOS: r.Talk}
	case float64: // backbone VoIP: one direction
		return ProbeValue{ListenMOS: r}
	case time.Duration:
		return ProbeValue{PLT: r}
	case videoScore:
		return ProbeValue{SSIM: r.SSIM, PSNR: r.PSNR}
	default:
		panic(fmt.Sprintf("experiments: unexpected cell value %T for %q probe", raw, p.Media))
	}
}

// Validate checks a probe spec without running anything.
func (p ProbeSpec) Validate() error {
	_, err := p.normalize()
	if err != nil {
		return fmt.Errorf("experiments: invalid probe: %w", err)
	}
	return nil
}

// Probe runs one probe cell on the session's engine.
func (s *Session) Probe(p ProbeSpec, o Options) (ProbeValue, error) {
	return s.ProbeCtx(s.context(), p, o)
}

// ProbeCtx is Probe bounded by ctx: it returns ErrCanceled if the
// context is canceled before the cell executes.
func (s *Session) ProbeCtx(ctx context.Context, p ProbeSpec, o Options) (ProbeValue, error) {
	t, err := p.task(s.opts(o))
	if err != nil {
		return ProbeValue{}, err
	}
	raw, err := s.eng.DoCtx(ctx, t.Spec, t.Fn)
	if err != nil {
		return ProbeValue{}, err
	}
	return p.value(raw), nil
}

// compile validates every spec up front and returns its engine tasks;
// an invalid spec fails the whole batch before any simulation starts.
func compileProbes(ps []ProbeSpec, o Options) ([]engine.Task, error) {
	tasks := make([]engine.Task, len(ps))
	for i, p := range ps {
		t, err := p.task(o)
		if err != nil {
			return nil, fmt.Errorf("spec %d: %w", i, err)
		}
		tasks[i] = t
	}
	return tasks, nil
}

// ProbeBatch validates every spec up front — an invalid spec fails
// the whole call before any simulation starts — then fans the cells
// out across the session's worker pool and returns one value per
// spec, in input order. Duplicate specs within the batch, or specs
// the session has already answered, are simulated once.
func (s *Session) ProbeBatch(ps []ProbeSpec, o Options) ([]ProbeValue, error) {
	return s.ProbeBatchCtx(s.context(), ps, o)
}

// ProbeBatchCtx is ProbeBatch bounded by ctx. A canceled batch returns
// ErrCanceled: in-flight cells drain into the session cache, queued
// cells are abandoned, and no partial values are returned.
func (s *Session) ProbeBatchCtx(ctx context.Context, ps []ProbeSpec, o Options) ([]ProbeValue, error) {
	tasks, err := compileProbes(ps, s.opts(o))
	if err != nil {
		return nil, err
	}
	raws, err := s.eng.RunBatchCtx(ctx, tasks)
	if err != nil {
		return nil, err
	}
	out := make([]ProbeValue, len(ps))
	for i, raw := range raws {
		out[i] = ps[i].value(raw)
	}
	return out, nil
}

// ProbeSubmit is the streaming submission path: every spec is
// validated up front (an invalid spec fails the call before any
// simulation starts), then the cells fan out across the worker pool
// and each(i, v, err) is invoked as every cell completes — in
// completion order, possibly concurrently, from worker goroutines.
// err is ErrCanceled for cells abandoned because ctx was canceled
// before they executed. ProbeSubmit returns once every callback has
// run; cells already executing at cancellation drain into the session
// cache first.
func (s *Session) ProbeSubmit(ctx context.Context, ps []ProbeSpec, o Options, each func(i int, v ProbeValue, err error)) error {
	tasks, err := compileProbes(ps, s.opts(o))
	if err != nil {
		return err
	}
	s.eng.SubmitBatch(ctx, tasks, func(i int, raw any, err error) {
		if err != nil {
			each(i, ProbeValue{}, err)
			return
		}
		each(i, ps[i].value(raw), nil)
	})
	return nil
}
