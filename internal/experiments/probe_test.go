package experiments

import (
	"testing"
	"time"

	"bufferqoe/internal/testbed"
	"bufferqoe/internal/video"
)

func TestProbeSpecValidate(t *testing.T) {
	good := []ProbeSpec{
		{Buffer: 64, Media: "voip"},
		{Buffer: 64, Media: "web", Scenario: "short-few", Direction: testbed.DirUp},
		{Buffer: 749, Media: "video", Testbed: "backbone", Scenario: "long"},
		{Buffer: 64, Media: "voip", Link: testbed.LinkParams{UpRate: 1e9, DownRate: 1e9}, AQM: "codel", CC: "reno", Jitter: time.Millisecond},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Fatalf("good spec %d rejected: %v", i, err)
		}
	}
	bad := []ProbeSpec{
		{Buffer: 64, Media: "voip", Testbed: "datacenter"},
		{Buffer: 0, Media: "voip"},
		{Buffer: 64, Media: "smoke-signals"},
		{Buffer: 64, Media: "voip", Scenario: "nope"},
		{Buffer: 749, Media: "voip", Testbed: "backbone", Scenario: "long-many"},
		{Buffer: 749, Media: "voip", Testbed: "backbone", Scenario: "long", Direction: testbed.DirUp},
		{Buffer: 749, Media: "voip", Testbed: "backbone", Scenario: "long", Link: testbed.LinkParams{UpRate: 5e6}},
		{Buffer: 749, Media: "voip", Testbed: "backbone", Scenario: "long", Jitter: time.Millisecond},
		{Buffer: 64, Media: "voip", AQM: "wishful-thinking"},
		{Buffer: 64, Media: "voip", CC: "carrier-pigeon"},
		{Buffer: 64, Media: "voip", BufferUp: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad spec %d accepted: %+v", i, p)
		}
	}
}

// TestProbeMatchesMeasure: the probe path must submit the exact cell
// the legacy Measure* path submits, sharing cache and value.
func TestProbeMatchesMeasure(t *testing.T) {
	s := NewSession(0)
	o := tiny()
	listen, talk := s.MeasureVoIPAccess("short-few", testbed.DirUp, 64, o)
	before := s.EngineStats()
	v, err := s.Probe(ProbeSpec{Scenario: "short-few", Direction: testbed.DirUp, Buffer: 64, Media: "voip"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if v.ListenMOS != listen || v.TalkMOS != talk {
		t.Fatalf("probe (%v/%v) != measure (%v/%v)", v.ListenMOS, v.TalkMOS, listen, talk)
	}
	if after := s.EngineStats(); after.Misses != before.Misses {
		t.Fatalf("probe re-simulated the measured cell: %+v -> %+v", before, after)
	}
}

// TestProbeBatchPairsLinks: custom-link cells must reuse the same
// derived seed as the preset link (common random numbers), while
// caching separately.
func TestProbeBatchPairsLinks(t *testing.T) {
	s := NewSession(0)
	o := tiny()
	specs := []ProbeSpec{
		{Scenario: "short-few", Direction: testbed.DirUp, Buffer: 64, Media: "web"},
		{Scenario: "short-few", Direction: testbed.DirUp, Buffer: 64, Media: "web",
			Link: testbed.LinkParams{UpRate: 1e9, DownRate: 1e9, ClientDelay: 2 * time.Millisecond, ServerDelay: 10 * time.Millisecond}},
	}
	vals, err := s.ProbeBatch(specs, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Fatalf("got %d values", len(vals))
	}
	if vals[0].PLT <= 0 || vals[1].PLT <= 0 {
		t.Fatalf("empty PLTs: %+v", vals)
	}
	if vals[1].PLT >= vals[0].PLT {
		t.Fatalf("gigabit fiber (%v) not faster than DSL (%v)", vals[1].PLT, vals[0].PLT)
	}
	if st := s.EngineStats(); st.Misses != 2 {
		t.Fatalf("expected 2 distinct cells, got %+v", st)
	}
}

// TestProbeBatchFailsFast: one invalid spec must fail the whole batch
// before any simulation.
func TestProbeBatchFailsFast(t *testing.T) {
	s := NewSession(0)
	_, err := s.ProbeBatch([]ProbeSpec{
		{Scenario: "noBG", Buffer: 64, Media: "web"},
		{Scenario: "bogus", Buffer: 64, Media: "web"},
	}, tiny())
	if err == nil {
		t.Fatal("expected error")
	}
	if st := s.EngineStats(); st.Misses != 0 {
		t.Fatalf("batch simulated cells despite invalid spec: %+v", st)
	}
}

// TestLinkTagCanonical: a custom link spelled as the paper defaults
// must collapse to the preset encoding.
func TestLinkTagCanonical(t *testing.T) {
	if tag := linkTag(testbed.LinkParams{}); tag != "" {
		t.Fatalf("zero link params tagged %q", tag)
	}
	explicit := testbed.LinkParams{
		UpRate: testbed.AccessUpRate, DownRate: testbed.AccessDownRate,
		ClientDelay: testbed.AccessClientDelay, ServerDelay: testbed.AccessServerDelay,
	}
	if tag := linkTag(explicit); tag != "" {
		t.Fatalf("explicit paper link tagged %q, want preset \"\"", tag)
	}
	partial := testbed.LinkParams{UpRate: 2e6}
	if tag := linkTag(partial); tag == "" {
		t.Fatal("custom uplink rate collapsed to the preset tag")
	}
}

// TestVideoProbeHonorsDirection: an access video probe under upload
// congestion must be a distinct cell from the download-congestion one
// (the paper's grids are down-only; the composable path is not).
func TestVideoProbeHonorsDirection(t *testing.T) {
	s := NewSession(0)
	o := tiny()
	down := ProbeSpec{Scenario: "long-many", Direction: testbed.DirDown, Buffer: 64, Media: "video"}
	up := ProbeSpec{Scenario: "long-many", Direction: testbed.DirUp, Buffer: 64, Media: "video"}
	vals, err := s.ProbeBatch([]ProbeSpec{down, up}, o)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.EngineStats(); st.Misses != 2 {
		t.Fatalf("up and down video probes shared a cell: %+v", st)
	}
	// Downstream sessions congest the video's own direction; upload
	// congestion leaves the downlink clear, so the stream must score
	// at least as well.
	if vals[1].SSIM < vals[0].SSIM {
		t.Fatalf("upload-congestion SSIM %.3f < download-congestion %.3f", vals[1].SSIM, vals[0].SSIM)
	}
	// The down-direction probe is still the paper grid's cell.
	if got := s.MeasureVideoAccess("long-many", video.SD, 64, o); got != vals[0].SSIM {
		t.Fatalf("down probe %v != MeasureVideoAccess %v", vals[0].SSIM, got)
	}
	if st := s.EngineStats(); st.Misses != 2 {
		t.Fatalf("MeasureVideoAccess missed the probe cache: %+v", s.EngineStats())
	}
}

// TestProbeRejectsOutOfRangeDirection: an invalid Direction int must
// fail validation instead of caching an idle cell under the "bidir"
// key (Direction.String's default branch).
func TestProbeRejectsOutOfRangeDirection(t *testing.T) {
	p := ProbeSpec{Scenario: "long-many", Direction: testbed.Direction(3), Buffer: 64, Media: "voip"}
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range direction accepted")
	}
}
