package experiments

import (
	"fmt"
	"time"

	"bufferqoe/internal/aqm"
	"bufferqoe/internal/netem"
	"bufferqoe/internal/qoe"
	"bufferqoe/internal/tcp"
	"bufferqoe/internal/testbed"
	"bufferqoe/internal/video"
)

// codelUpQueue is the RFC 8289 §4.4 slow-link CoDel used by several
// web ablations at the access uplink.
func codelUpQueue(capPkts int, _ uint64) netem.Queue {
	return aqm.NewCoDelForRate(capPkts, testbed.AccessUpRate)
}

// ablationIW10 tests the engineering change the bufferbloat argument
// was used to oppose — raising TCP's initial window from 3 to 10
// segments (Gettys, "IW10 considered harmful", paper reference [18]).
// If queues are already bloated and filled, a larger IW injects a
// burst into a standing queue; the experiment measures what that does
// to the page a user is loading over the same uplink. IW3 is the
// paper-era default, so those cells are the cached fig10b column.
func ablationIW10(s *Session, o Options) (*Result, error) {
	model := qoe.AccessWebModel()
	bufs := []int{8, 64, 256}
	cols := make([]string, len(bufs))
	for i, b := range bufs {
		cols[i] = fmt.Sprintf("%d", b)
	}
	g := NewGrid("Ablation: initial window 3 vs 10 (access web, upstream long-many congestion)",
		[]string{"IW3 PLT", "IW10 PLT", "IW3 MOS", "IW10 MOS"}, cols)
	var jobs []cellJob
	for bi, buf := range bufs {
		for _, iw := range []int{3, 10} {
			v := accessVariant{}
			if iw != 3 {
				v = accessVariant{tag: "iw=10", tcpCfg: tcp.Config{InitialWindow: 10}}
			}
			jobs = append(jobs, cellJob{webAccessTask(o, "long-many", testbed.DirUp, buf, v, 0),
				fmt.Sprintf("IW%d", iw), cols[bi]})
		}
	}
	s.runCells(jobs, func(row, col string, v any) {
		plt := v.(time.Duration)
		mos := model.MOS(plt)
		g.Set(row+" PLT", col, Cell{
			Value: plt.Seconds(), Text: fmt.Sprintf("%.2fs", plt.Seconds()),
		})
		g.Set(row+" MOS", col, Cell{
			Value: mos, Class: string(qoe.Rate(mos)),
		})
	})
	return &Result{
		ID:    "abl-iw10",
		Grids: []*Grid{g},
		Notes: []string{"IW10's QoE effect is bounded by the same logic as buffer size: under sustained congestion the PLT is already in the 'bad' band either way"},
	}, nil
}

// ablationECN pairs ECN-enabled TCP with marking AQM at the bloated
// uplink: congestion feedback arrives without packet loss, so the web
// transfer suffers neither retransmissions nor (thanks to CoDel) the
// standing-queue RTT. Three columns: the paper's drop-tail baseline,
// CoDel dropping, CoDel marking with ECN endpoints. The workload is
// long-few (one upstream bulk flow) — the regime an AQM can actually
// control at 1 Mbit/s; with long-many the per-flow window floor keeps
// the sojourn above any feasible target (that pathological case is
// what FQ-CoDel's flow isolation addresses, see ext-fqcodel-web).
// The CoDel target follows RFC 8289 §4.4's slow-link rule.
func ablationECN(s *Session, o Options) (*Result, error) {
	model := qoe.AccessWebModel()
	configs := []struct {
		name string
		v    accessVariant
	}{
		{"drop-tail", accessVariant{}},
		{"codel-drop", accessVariant{tag: "queue=codel", upQueue: codelUpQueue}},
		{"codel-ecn", accessVariant{
			tag:    "queue=codel-ecn",
			tcpCfg: tcp.Config{ECN: true},
			upQueue: func(capPkts int, _ uint64) netem.Queue {
				c := aqm.NewCoDelForRate(capPkts, testbed.AccessUpRate)
				c.ECN = true
				return c
			},
		}},
	}
	cols := make([]string, len(configs))
	var jobs []cellJob
	for i, c := range configs {
		cols[i] = c.name
		jobs = append(jobs, cellJob{webAccessTask(o, "long-few", testbed.DirUp, 256, c.v, 0), "", c.name})
	}
	g := NewGrid("Ablation: ECN at a bloated (256-pkt) uplink (web under upstream long-few)",
		[]string{"PLT", "MOS"}, cols)
	s.runCells(jobs, func(_, col string, v any) {
		plt := v.(time.Duration)
		mos := model.MOS(plt)
		g.Set("PLT", col, Cell{Value: plt.Seconds(), Text: fmt.Sprintf("%.2fs", plt.Seconds())})
		g.Set("MOS", col, Cell{Value: mos, Class: string(qoe.Rate(mos))})
	})
	return &Result{ID: "abl-ecn", Grids: []*Grid{g}}, nil
}

// ablationByteQueue compares packet-counted and byte-counted uplink
// buffers of equal nominal capacity. Buffer sizing debates usually
// count packets (as the paper's Table 2 does, following the NetFPGA
// and line-card convention); counting bytes changes which packets a
// full buffer turns away — a 60-byte VoIP frame no longer costs the
// same share as a 1500-byte bulk segment.
func ablationByteQueue(s *Session, o Options) (*Result, error) {
	const pkts = 64
	queues := []struct {
		name string
		v    accessVariant
	}{
		{"pkt-64", accessVariant{}},
		{fmt.Sprintf("bytes-%dK", pkts*netem.MTU/1024), accessVariant{
			tag: "queue=bytes-mtu",
			upQueue: func(int, uint64) netem.Queue {
				return netem.NewDropTailBytes(pkts * netem.MTU)
			},
		}},
		{"bytes-24K", accessVariant{
			tag: "queue=bytes-24k",
			upQueue: func(int, uint64) netem.Queue {
				return netem.NewDropTailBytes(24 * 1024)
			},
		}},
	}
	cols := make([]string, len(queues))
	var jobs []cellJob
	for i, q := range queues {
		cols[i] = q.name
		jobs = append(jobs, cellJob{voipAccessTask(o, "long-many", testbed.DirUp, pkts, q.v), "", q.name})
	}
	g := NewGrid("Ablation: packet- vs byte-counted uplink buffer (VoIP under upstream long-many)",
		[]string{"talk MOS", "listen MOS"}, cols)
	s.runCells(jobs, func(_, col string, v any) {
		p := v.(voipScore)
		g.Set("talk MOS", col, Cell{Value: p.Talk, Class: string(qoe.VoIPSatisfaction(p.Talk))})
		g.Set("listen MOS", col, Cell{Value: p.Listen, Class: string(qoe.VoIPSatisfaction(p.Listen))})
	})
	return &Result{
		ID:    "abl-bytequeue",
		Grids: []*Grid{g},
		Notes: []string{"equal nominal capacity: 64 packets vs 64 MTU of bytes; the 24K column is a deliberately delay-tight byte budget"},
	}, nil
}

// ablationIQX rescores the Figure 10b upload-congestion web cells
// under the exponential IQX mapping instead of the logarithmic G.1030
// one. The paper's conclusion — buffer size barely moves WebQoE once
// congestion has pushed the PLT into the saturated region — should
// survive the change of curve. The underlying cells are plain
// long-few upstream web runs, shared with ext-parweb's sequential
// column through the cache.
func ablationIQX(s *Session, o Options) (*Result, error) {
	logModel := qoe.AccessWebModel()
	iqxModel := qoe.NewIQXWebModel(logModel)
	bufs := []int{8, 64, 256}
	cols := make([]string, len(bufs))
	var jobs []cellJob
	for i, b := range bufs {
		cols[i] = fmt.Sprintf("%d", b)
		jobs = append(jobs, cellJob{webAccessTask(o, "long-few", testbed.DirUp, b, accessVariant{}, 0), "", cols[i]})
	}
	g := NewGrid("Ablation: G.1030 (log) vs IQX (exp) scoring of access web, upstream long-few",
		[]string{"PLT", "G.1030 MOS", "IQX MOS"}, cols)
	s.runCells(jobs, func(_, col string, v any) {
		plt := v.(time.Duration)
		lm, im := logModel.MOS(plt), iqxModel.MOS(plt)
		g.Set("PLT", col, Cell{Value: plt.Seconds(), Text: fmt.Sprintf("%.2fs", plt.Seconds())})
		g.Set("G.1030 MOS", col, Cell{Value: lm, Class: string(qoe.Rate(lm))})
		g.Set("IQX MOS", col, Cell{Value: im, Class: string(qoe.Rate(im))})
	})
	return &Result{
		ID:    "abl-iqx",
		Grids: []*Grid{g},
		Notes: []string{"the two curves may disagree on mid-range scores but must agree on the buffer-size conclusion (both saturate)"},
	}, nil
}

// extRecovery quantifies the quality headroom the paper's §8.4 leaves
// on the table: the same backbone video cells with the MSTV-style ARQ
// (reference [24]) and with 10% XOR FEC.
func extRecovery(s *Session, o Options) (*Result, error) {
	scenarios := []string{"short-medium", "short-high"}
	schemes := []video.Recovery{video.RecoveryNone, video.RecoveryARQ, video.RecoveryFEC}
	var rows []string
	for _, r := range schemes {
		rows = append(rows, r.String())
	}
	g := NewGrid("Extension: RTP error recovery (SD video, backbone, 28-pkt buffer)", rows, scenarios)
	var jobs []cellJob
	for _, s := range scenarios {
		for _, rec := range schemes {
			jobs = append(jobs, cellJob{videoBackboneTask(o, s, video.ClipC, video.SD, rec, 28, backboneVariant{}), rec.String(), s})
		}
	}
	s.runCells(jobs, func(row, col string, v any) {
		ssim := v.(videoScore).SSIM
		g.Set(row, col, Cell{Value: ssim, Class: string(qoe.Rate(qoe.SSIMToMOS(ssim)))})
	})
	return &Result{
		ID:    "ext-recovery",
		Grids: []*Grid{g},
		Notes: []string{"paper §8.4: 'systems deploying active (retransmission) or passive (FEC) error recovery can achieve higher quality' — quantified here"},
	}, nil
}

// extPSNR reruns representative Figure 9b cells scoring with PSNR as
// well as SSIM. The paper omits its PSNR heatmaps because "they yield
// predicted scores similar to those obtained by SSIM"; this experiment
// verifies that equivalence holds in the reproduction too. Every cell
// here is a cache hit after fig9b/ext-clips: video cells always carry
// both scores.
func extPSNR(s *Session, o Options) (*Result, error) {
	scenarios := []string{"noBG", "short-medium", "long"}
	g := NewGrid("Extension: SSIM vs PSNR scoring (SD video, backbone, BDP buffer)",
		[]string{"SSIM", "SSIM MOS", "PSNR dB", "PSNR MOS"}, scenarios)
	var jobs []cellJob
	for _, s := range scenarios {
		jobs = append(jobs, cellJob{videoBackboneTask(o, s, video.ClipC, video.SD, video.RecoveryNone, 749, backboneVariant{}), "", s})
	}
	s.runCells(jobs, func(_, col string, v any) {
		sc := v.(videoScore)
		sm, pm := qoe.SSIMToMOS(sc.SSIM), qoe.PSNRToMOS(sc.PSNR)
		g.Set("SSIM", col, Cell{Value: sc.SSIM})
		g.Set("SSIM MOS", col, Cell{Value: sm, Class: string(qoe.Rate(sm))})
		g.Set("PSNR dB", col, Cell{Value: sc.PSNR})
		g.Set("PSNR MOS", col, Cell{Value: pm, Class: string(qoe.Rate(pm))})
	})
	return &Result{
		ID:    "ext-psnr",
		Grids: []*Grid{g},
		Notes: []string{"paper §8.2/§8.3: PSNR heatmaps omitted as similar to SSIM — the two MOS rows should agree on every category"},
	}, nil
}

// extJitter re-adds the dimension the paper's testbeds exclude: a
// WiFi-like variable-delay last hop between the client and the home
// router (§5.1: "we decided to omit WiFi connectivity which adds its
// own variable delay characteristics"). VoIP is the sensitive
// application; the sweep shows how much last-hop jitter erodes the
// clean-network score before any buffer sizing question arises.
func extJitter(s *Session, o Options) (*Result, error) {
	jitters := []time.Duration{0, 2 * time.Millisecond, 10 * time.Millisecond, 30 * time.Millisecond}
	cols := make([]string, len(jitters))
	for i, j := range jitters {
		cols[i] = j.String()
	}
	g := NewGrid("Extension: WiFi-like last-hop jitter (VoIP, idle vs congested access)",
		[]string{"noBG listen MOS", "short-few listen MOS"}, cols)
	var jobs []cellJob
	for ji, j := range jitters {
		for _, s := range []string{"noBG", "short-few"} {
			v := accessVariant{}
			if j != 0 {
				v = accessVariant{tag: "jitter=" + j.String(), jitter: j}
			}
			jobs = append(jobs, cellJob{voipAccessTask(o, s, testbed.DirDown, 64, v), s, cols[ji]})
		}
	}
	s.runCells(jobs, func(row, col string, v any) {
		p := v.(voipScore)
		g.Set(row+" listen MOS", col, Cell{Value: p.Listen, Class: string(qoe.VoIPSatisfaction(p.Listen))})
	})
	return &Result{
		ID:    "ext-jitter",
		Grids: []*Grid{g},
		Notes: []string{"jitter consumes playout-buffer headroom: the idle-network ceiling drops before congestion even starts"},
	}, nil
}

// extFQCoDelWeb isolates what flow-queueing adds over plain CoDel for
// a mixed workload: the web fetch's ACK/request packets cross the
// congested uplink next to bulk uploads. Plain CoDel bounds the
// standing queue; FQ-CoDel additionally excuses the thin web flow
// from waiting behind the bulk flows at all.
func extFQCoDelWeb(s *Session, o Options) (*Result, error) {
	model := qoe.AccessWebModel()
	queues := []struct {
		name string
		v    accessVariant
	}{
		{"drop-tail", accessVariant{}},
		{"codel", accessVariant{tag: "queue=codel", upQueue: codelUpQueue}},
		{"fq-codel", accessVariant{
			tag: "queue=fq-codel",
			upQueue: func(capPkts int, _ uint64) netem.Queue {
				return aqm.NewFQCoDelForRate(capPkts, testbed.AccessUpRate)
			},
		}},
	}
	cols := make([]string, len(queues))
	var jobs []cellJob
	for i, q := range queues {
		cols[i] = q.name
		jobs = append(jobs, cellJob{webAccessTask(o, "long-many", testbed.DirUp, 256, q.v, 0), "", q.name})
	}
	g := NewGrid("Extension: FQ-CoDel vs CoDel vs drop-tail (web over a 256-pkt congested uplink, upstream long-many)",
		[]string{"PLT", "MOS"}, cols)
	s.runCells(jobs, func(_, col string, v any) {
		plt := v.(time.Duration)
		mos := model.MOS(plt)
		g.Set("PLT", col, Cell{Value: plt.Seconds(), Text: fmt.Sprintf("%.2fs", plt.Seconds())})
		g.Set("MOS", col, Cell{Value: mos, Class: string(qoe.Rate(mos))})
	})
	return &Result{ID: "ext-fqcodel-web", Grids: []*Grid{g}}, nil
}

// ablationBIC completes the paper's §5.2 stack note ("TCP BIC/TCP
// CUBIC for the access") with the third era algorithm: the same
// bidirectional long-few cell under Reno, BIC, and CUBIC background
// traffic. The claim under test is unchanged — the CC choice should
// not move the QoE conclusion.
func ablationBIC(s *Session, o Options) (*Result, error) {
	algos := []struct {
		name string
		v    accessVariant
	}{
		{"reno", accessVariant{tag: "cc=reno", cc: tcp.NewReno}},
		{"bic", accessVariant{tag: "cc=bic", cc: tcp.NewBIC}},
		{"cubic", accessVariant{}}, // the access default
	}
	cols := make([]string, len(algos))
	var jobs []cellJob
	for i, al := range algos {
		cols[i] = al.name
		jobs = append(jobs, cellJob{voipAccessTask(o, "long-few", testbed.DirBidir, 64, al.v), "", al.name})
	}
	g := NewGrid("Ablation: Reno vs BIC vs CUBIC background (access, 64-pkt buffers, bidir long-few)",
		[]string{"listen MOS", "talk MOS", "uplink util %"}, cols)
	s.runCells(jobs, func(_, col string, v any) {
		p := v.(voipScore)
		g.Set("listen MOS", col, Cell{Value: p.Listen, Class: string(qoe.VoIPSatisfaction(p.Listen))})
		g.Set("talk MOS", col, Cell{Value: p.Talk, Class: string(qoe.VoIPSatisfaction(p.Talk))})
		g.Set("uplink util %", col, Cell{Value: p.UpUtilPct})
	})
	return &Result{ID: "abl-bic", Grids: []*Grid{g}}, nil
}
