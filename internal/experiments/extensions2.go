package experiments

import (
	"fmt"
	"time"

	"bufferqoe/internal/aqm"
	"bufferqoe/internal/netem"
	"bufferqoe/internal/qoe"
	"bufferqoe/internal/stats"
	"bufferqoe/internal/tcp"
	"bufferqoe/internal/testbed"
	"bufferqoe/internal/video"
	"bufferqoe/internal/web"
)

// webUplinkCell measures the median PLT on an access testbed with the
// given TCP and uplink-queue configuration under the named upstream
// congestion workload.
func webUplinkCell(o Options, scenario string, tcpCfg tcp.Config, upQueue testbed.QueueFactory, buf int) time.Duration {
	a := testbed.NewAccess(testbed.Config{
		BufferUp: buf, BufferDown: buf, Seed: o.Seed,
		TCP: tcpCfg, UpQueue: upQueue,
	})
	a.StartWorkload(testbed.AccessScenario(scenario, testbed.DirUp))
	web.RegisterServer(a.MediaServerTCP, web.Port)
	return webReps(a.Eng, o, func(done func(web.Result)) {
		web.Fetch(a.MediaClientTCP, a.MediaServer.Addr(web.Port), 60*time.Second, done)
	})
}

// ablationIW10 tests the engineering change the bufferbloat argument
// was used to oppose — raising TCP's initial window from 3 to 10
// segments (Gettys, "IW10 considered harmful", paper reference [18]).
// If queues are already bloated and filled, a larger IW injects a
// burst into a standing queue; the experiment measures what that does
// to the page a user is loading over the same uplink.
func ablationIW10(o Options) (*Result, error) {
	model := qoe.AccessWebModel()
	bufs := []int{8, 64, 256}
	cols := make([]string, len(bufs))
	for i, b := range bufs {
		cols[i] = fmt.Sprintf("%d", b)
	}
	g := NewGrid("Ablation: initial window 3 vs 10 (access web, upstream long-many congestion)",
		[]string{"IW3 PLT", "IW10 PLT", "IW3 MOS", "IW10 MOS"}, cols)
	for bi, buf := range bufs {
		col := cols[bi]
		for _, iw := range []int{3, 10} {
			plt := webUplinkCell(o, "long-many", tcp.Config{InitialWindow: iw}, nil, buf)
			mos := model.MOS(plt)
			g.Set(fmt.Sprintf("IW%d PLT", iw), col, Cell{
				Value: plt.Seconds(), Text: fmt.Sprintf("%.2fs", plt.Seconds()),
			})
			g.Set(fmt.Sprintf("IW%d MOS", iw), col, Cell{
				Value: mos, Class: string(qoe.Rate(mos)),
			})
		}
	}
	return &Result{
		ID:    "abl-iw10",
		Grids: []*Grid{g},
		Notes: []string{"IW10's QoE effect is bounded by the same logic as buffer size: under sustained congestion the PLT is already in the 'bad' band either way"},
	}, nil
}

// ablationECN pairs ECN-enabled TCP with marking AQM at the bloated
// uplink: congestion feedback arrives without packet loss, so the web
// transfer suffers neither retransmissions nor (thanks to CoDel) the
// standing-queue RTT. Three columns: the paper's drop-tail baseline,
// CoDel dropping, CoDel marking with ECN endpoints. The workload is
// long-few (one upstream bulk flow) — the regime an AQM can actually
// control at 1 Mbit/s; with long-many the per-flow window floor keeps
// the sojourn above any feasible target (that pathological case is
// what FQ-CoDel's flow isolation addresses, see ext-fqcodel-web).
// The CoDel target follows RFC 8289 §4.4's slow-link rule.
func ablationECN(o Options) (*Result, error) {
	model := qoe.AccessWebModel()
	type cfg struct {
		name  string
		tcp   tcp.Config
		queue testbed.QueueFactory
	}
	configs := []cfg{
		{"drop-tail", tcp.Config{}, nil},
		{"codel-drop", tcp.Config{}, func(capPkts int) netem.Queue {
			return aqm.NewCoDelForRate(capPkts, testbed.AccessUpRate)
		}},
		{"codel-ecn", tcp.Config{ECN: true}, func(capPkts int) netem.Queue {
			c := aqm.NewCoDelForRate(capPkts, testbed.AccessUpRate)
			c.ECN = true
			return c
		}},
	}
	cols := make([]string, len(configs))
	for i, c := range configs {
		cols[i] = c.name
	}
	g := NewGrid("Ablation: ECN at a bloated (256-pkt) uplink (web under upstream long-few)",
		[]string{"PLT", "MOS"}, cols)
	for _, c := range configs {
		plt := webUplinkCell(o, "long-few", c.tcp, c.queue, 256)
		mos := model.MOS(plt)
		g.Set("PLT", c.name, Cell{Value: plt.Seconds(), Text: fmt.Sprintf("%.2fs", plt.Seconds())})
		g.Set("MOS", c.name, Cell{Value: mos, Class: string(qoe.Rate(mos))})
	}
	return &Result{ID: "abl-ecn", Grids: []*Grid{g}}, nil
}

// ablationByteQueue compares packet-counted and byte-counted uplink
// buffers of equal nominal capacity. Buffer sizing debates usually
// count packets (as the paper's Table 2 does, following the NetFPGA
// and line-card convention); counting bytes changes which packets a
// full buffer turns away — a 60-byte VoIP frame no longer costs the
// same share as a 1500-byte bulk segment.
func ablationByteQueue(o Options) (*Result, error) {
	const pkts = 64
	queues := []struct {
		name    string
		factory testbed.QueueFactory
	}{
		{"pkt-64", nil},
		{fmt.Sprintf("bytes-%dK", pkts*netem.MTU/1024), func(int) netem.Queue {
			return netem.NewDropTailBytes(pkts * netem.MTU)
		}},
		{"bytes-24K", func(int) netem.Queue { return netem.NewDropTailBytes(24 * 1024) }},
	}
	cols := make([]string, len(queues))
	for i, q := range queues {
		cols[i] = q.name
	}
	g := NewGrid("Ablation: packet- vs byte-counted uplink buffer (VoIP under upstream long-many)",
		[]string{"talk MOS", "listen MOS"}, cols)
	for _, q := range queues {
		listen, talk := voipAccessCellQueue("long-many", testbed.DirUp, pkts, o, q.factory)
		g.Set("talk MOS", q.name, Cell{Value: talk, Class: string(qoe.VoIPSatisfaction(talk))})
		g.Set("listen MOS", q.name, Cell{Value: listen, Class: string(qoe.VoIPSatisfaction(listen))})
	}
	return &Result{
		ID:    "abl-bytequeue",
		Grids: []*Grid{g},
		Notes: []string{"equal nominal capacity: 64 packets vs 64 MTU of bytes; the 24K column is a deliberately delay-tight byte budget"},
	}, nil
}

// ablationIQX rescores the Figure 10b upload-congestion web cells
// under the exponential IQX mapping instead of the logarithmic G.1030
// one. The paper's conclusion — buffer size barely moves WebQoE once
// congestion has pushed the PLT into the saturated region — should
// survive the change of curve.
func ablationIQX(o Options) (*Result, error) {
	logModel := qoe.AccessWebModel()
	iqxModel := qoe.NewIQXWebModel(logModel)
	bufs := []int{8, 64, 256}
	cols := make([]string, len(bufs))
	for i, b := range bufs {
		cols[i] = fmt.Sprintf("%d", b)
	}
	g := NewGrid("Ablation: G.1030 (log) vs IQX (exp) scoring of access web, upstream long-few",
		[]string{"PLT", "G.1030 MOS", "IQX MOS"}, cols)
	for bi, buf := range bufs {
		col := cols[bi]
		a := testbed.NewAccess(testbed.Config{BufferUp: buf, BufferDown: buf, Seed: o.Seed})
		a.StartWorkload(testbed.AccessScenario("long-few", testbed.DirUp))
		web.RegisterServer(a.MediaServerTCP, web.Port)
		plt := webReps(a.Eng, o, func(done func(web.Result)) {
			web.Fetch(a.MediaClientTCP, a.MediaServer.Addr(web.Port), 60*time.Second, done)
		})
		lm, im := logModel.MOS(plt), iqxModel.MOS(plt)
		g.Set("PLT", col, Cell{Value: plt.Seconds(), Text: fmt.Sprintf("%.2fs", plt.Seconds())})
		g.Set("G.1030 MOS", col, Cell{Value: lm, Class: string(qoe.Rate(lm))})
		g.Set("IQX MOS", col, Cell{Value: im, Class: string(qoe.Rate(im))})
	}
	return &Result{
		ID:    "abl-iqx",
		Grids: []*Grid{g},
		Notes: []string{"the two curves may disagree on mid-range scores but must agree on the buffer-size conclusion (both saturate)"},
	}, nil
}

// extRecovery quantifies the quality headroom the paper's §8.4 leaves
// on the table: the same backbone video cells with the MSTV-style ARQ
// (reference [24]) and with 10% XOR FEC.
func extRecovery(o Options) (*Result, error) {
	clipDur := time.Duration(o.ClipSeconds) * time.Second
	scenarios := []string{"short-medium", "short-high"}
	schemes := []video.Recovery{video.RecoveryNone, video.RecoveryARQ, video.RecoveryFEC}
	var rows []string
	for _, r := range schemes {
		rows = append(rows, r.String())
	}
	g := NewGrid("Extension: RTP error recovery (SD video, backbone, 28-pkt buffer)", rows, scenarios)
	for _, s := range scenarios {
		for _, rec := range schemes {
			src := video.NewSource(video.ClipC, video.SD, o.ClipSeconds)
			b := testbed.NewBackbone(testbed.Config{BufferDown: 28, Seed: o.Seed})
			b.StartWorkload(testbed.BackboneScenario(s))
			ssim := videoReps(b.Eng, o, clipDur, func(done func(video.Result)) {
				video.Start(b.MediaServer, b.MediaClient, src,
					video.Config{Smooth: true, Seed: o.Seed, Recovery: rec}, done)
			})
			g.Set(rec.String(), s, Cell{Value: ssim, Class: string(qoe.Rate(qoe.SSIMToMOS(ssim)))})
		}
	}
	return &Result{
		ID:    "ext-recovery",
		Grids: []*Grid{g},
		Notes: []string{"paper §8.4: 'systems deploying active (retransmission) or passive (FEC) error recovery can achieve higher quality' — quantified here"},
	}, nil
}

// extPSNR reruns representative Figure 9b cells scoring with PSNR as
// well as SSIM. The paper omits its PSNR heatmaps because "they yield
// predicted scores similar to those obtained by SSIM"; this experiment
// verifies that equivalence holds in the reproduction too.
func extPSNR(o Options) (*Result, error) {
	clipDur := time.Duration(o.ClipSeconds) * time.Second
	scenarios := []string{"noBG", "short-medium", "long"}
	g := NewGrid("Extension: SSIM vs PSNR scoring (SD video, backbone, BDP buffer)",
		[]string{"SSIM", "SSIM MOS", "PSNR dB", "PSNR MOS"}, scenarios)
	for _, s := range scenarios {
		src := video.NewSource(video.ClipC, video.SD, o.ClipSeconds)
		b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: o.Seed})
		if s != "noBG" {
			b.StartWorkload(testbed.BackboneScenario(s))
		}
		var ssimS, psnrS stats.Sample
		spacing := clipDur + video.StartupDelay + 5*time.Second
		for i := 0; i < o.Reps; i++ {
			b.Eng.Schedule(o.Warmup+time.Duration(i)*spacing, func() {
				video.Start(b.MediaServer, b.MediaClient, src,
					video.Config{Smooth: true, Seed: o.Seed}, func(r video.Result) {
						ssimS.Add(r.MeanSSIM)
						psnrS.Add(r.MeanPSNR)
						if ssimS.N() == o.Reps {
							b.Eng.Halt()
						}
					})
			})
		}
		b.Eng.RunFor(cellCap)
		ssim, psnr := ssimS.Median(), psnrS.Median()
		sm, pm := qoe.SSIMToMOS(ssim), qoe.PSNRToMOS(psnr)
		g.Set("SSIM", s, Cell{Value: ssim})
		g.Set("SSIM MOS", s, Cell{Value: sm, Class: string(qoe.Rate(sm))})
		g.Set("PSNR dB", s, Cell{Value: psnr})
		g.Set("PSNR MOS", s, Cell{Value: pm, Class: string(qoe.Rate(pm))})
	}
	return &Result{
		ID:    "ext-psnr",
		Grids: []*Grid{g},
		Notes: []string{"paper §8.2/§8.3: PSNR heatmaps omitted as similar to SSIM — the two MOS rows should agree on every category"},
	}, nil
}

// extJitter re-adds the dimension the paper's testbeds exclude: a
// WiFi-like variable-delay last hop between the client and the home
// router (§5.1: "we decided to omit WiFi connectivity which adds its
// own variable delay characteristics"). VoIP is the sensitive
// application; the sweep shows how much last-hop jitter erodes the
// clean-network score before any buffer sizing question arises.
func extJitter(o Options) (*Result, error) {
	jitters := []time.Duration{0, 2 * time.Millisecond, 10 * time.Millisecond, 30 * time.Millisecond}
	cols := make([]string, len(jitters))
	for i, j := range jitters {
		cols[i] = j.String()
	}
	g := NewGrid("Extension: WiFi-like last-hop jitter (VoIP, idle vs congested access)",
		[]string{"noBG listen MOS", "short-few listen MOS"}, cols)
	for ji, j := range jitters {
		col := cols[ji]
		for _, s := range []string{"noBG", "short-few"} {
			a := testbed.NewAccess(testbed.Config{
				BufferUp: 64, BufferDown: 64, Seed: o.Seed, Jitter: j,
			})
			if s != "noBG" {
				a.StartWorkload(testbed.AccessScenario(s, testbed.DirDown))
			}
			listen, _ := runVoIPPair(a, o)
			g.Set(s+" listen MOS", col, Cell{Value: listen, Class: string(qoe.VoIPSatisfaction(listen))})
		}
	}
	return &Result{
		ID:    "ext-jitter",
		Grids: []*Grid{g},
		Notes: []string{"jitter consumes playout-buffer headroom: the idle-network ceiling drops before congestion even starts"},
	}, nil
}

// extFQCoDelWeb isolates what flow-queueing adds over plain CoDel for
// a mixed workload: the web fetch's ACK/request packets cross the
// congested uplink next to bulk uploads. Plain CoDel bounds the
// standing queue; FQ-CoDel additionally excuses the thin web flow
// from waiting behind the bulk flows at all.
func extFQCoDelWeb(o Options) (*Result, error) {
	model := qoe.AccessWebModel()
	queues := []struct {
		name    string
		factory testbed.QueueFactory
	}{
		{"drop-tail", nil},
		{"codel", func(capPkts int) netem.Queue {
			return aqm.NewCoDelForRate(capPkts, testbed.AccessUpRate)
		}},
		{"fq-codel", func(capPkts int) netem.Queue {
			return aqm.NewFQCoDelForRate(capPkts, testbed.AccessUpRate)
		}},
	}
	cols := make([]string, len(queues))
	for i, q := range queues {
		cols[i] = q.name
	}
	g := NewGrid("Extension: FQ-CoDel vs CoDel vs drop-tail (web over a 256-pkt congested uplink, upstream long-many)",
		[]string{"PLT", "MOS"}, cols)
	for _, q := range queues {
		plt := webUplinkCell(o, "long-many", tcp.Config{}, q.factory, 256)
		mos := model.MOS(plt)
		g.Set("PLT", q.name, Cell{Value: plt.Seconds(), Text: fmt.Sprintf("%.2fs", plt.Seconds())})
		g.Set("MOS", q.name, Cell{Value: mos, Class: string(qoe.Rate(mos))})
	}
	return &Result{ID: "ext-fqcodel-web", Grids: []*Grid{g}}, nil
}

// ablationBIC completes the paper's §5.2 stack note ("TCP BIC/TCP
// CUBIC for the access") with the third era algorithm: the same
// bidirectional long-few cell under Reno, BIC, and CUBIC background
// traffic. The claim under test is unchanged — the CC choice should
// not move the QoE conclusion.
func ablationBIC(o Options) (*Result, error) {
	algos := []struct {
		name    string
		factory func() tcp.CongestionControl
	}{
		{"reno", tcp.NewReno},
		{"bic", tcp.NewBIC},
		{"cubic", tcp.NewCubic},
	}
	cols := make([]string, len(algos))
	for i, a := range algos {
		cols[i] = a.name
	}
	g := NewGrid("Ablation: Reno vs BIC vs CUBIC background (access, 64-pkt buffers, bidir long-few)",
		[]string{"listen MOS", "talk MOS", "uplink util %"}, cols)
	for _, al := range algos {
		a := testbed.NewAccess(testbed.Config{
			BufferUp: 64, BufferDown: 64, Seed: o.Seed, CC: al.factory,
		})
		a.StartWorkload(testbed.AccessScenario("long-few", testbed.DirBidir))
		listen, talk := runVoIPPair(a, o)
		now := a.Eng.Now()
		g.Set("listen MOS", al.name, Cell{Value: listen, Class: string(qoe.VoIPSatisfaction(listen))})
		g.Set("talk MOS", al.name, Cell{Value: talk, Class: string(qoe.VoIPSatisfaction(talk))})
		g.Set("uplink util %", al.name, Cell{Value: a.UpLink.Monitor.MeanUtilization(now)})
	}
	return &Result{ID: "abl-bic", Grids: []*Grid{g}}, nil
}
