package experiments

import (
	"fmt"

	"bufferqoe/internal/qoe"
	"bufferqoe/internal/sizing"
	"bufferqoe/internal/tcp"
	"bufferqoe/internal/testbed"
	"bufferqoe/internal/video"
)

// extHTTPVideo evaluates the paper's Section 10 future-work claim:
// "initial work on HTTP video streaming is consistent with our
// results". The backbone load ladder is replayed with a TCP
// progressive-download player; QoE comes from the Mok et al. stall
// regression instead of SSIM.
func extHTTPVideo(s *Session, o Options) (*Result, error) {
	scenarios := testbed.BackboneScenarioNames
	g := NewGrid("Extension: HTTP progressive video on the backbone (Mok et al. MOS)",
		scenarios, backboneBufferCols())
	var jobs []cellJob
	for _, buf := range sizing.BackboneBufferSizes {
		col := fmt.Sprintf("%d", buf)
		for _, s := range scenarios {
			jobs = append(jobs, cellJob{httpVideoTask(o, s, buf, "progressive"), s, col})
		}
	}
	s.runCells(jobs, func(row, col string, v any) {
		m := v.(httpScore).MOS
		g.Set(row, col, Cell{Value: m, Class: string(qoe.Rate(m))})
	})
	return &Result{
		ID:    "ext-httpvideo",
		Grids: []*Grid{g},
		Notes: []string{"consistency check vs Figure 9b: workload, not buffer size, decides the score"},
	}, nil
}

// extClips reruns the backbone video cell across the three content
// classes (paper Section 8.3: "Comparing the obtained quality scores
// among the three different videos leads to minor differences ...
// the quality scores of all video clips lead to the same primary
// observation"). The ClipC column is shared with fig9b and ext-psnr
// through the cell cache.
func extClips(s *Session, o Options) (*Result, error) {
	scenarios := []string{"noBG", "short-medium", "long"}
	var rows []string
	for _, c := range video.Clips {
		rows = append(rows, c.Name)
	}
	g := NewGrid("Extension: per-clip SSIM (SD, backbone, BDP buffer)", rows, scenarios)
	var jobs []cellJob
	for _, s := range scenarios {
		for _, clip := range video.Clips {
			jobs = append(jobs, cellJob{videoBackboneTask(o, s, clip, video.SD, video.RecoveryNone, 749, backboneVariant{}), clip.Name, s})
		}
	}
	s.runCells(jobs, func(row, col string, v any) {
		ssim := v.(videoScore).SSIM
		g.Set(row, col, Cell{Value: ssim, Class: string(qoe.Rate(qoe.SSIMToMOS(ssim)))})
	})
	return &Result{
		ID:    "ext-clips",
		Grids: []*Grid{g},
		Notes: []string{"per-clip differences should be minor next to the workload effect (paper §8.3)"},
	}, nil
}

// ablationSACK quantifies the documented fidelity gap between our
// NewReno-default TCP and the paper's SACK-enabled Linux stacks:
// SACK-enabled background flows sustain the bloated uplink's standing
// queue (mean delay moves toward the paper's Figure 4c numbers),
// where NewReno flows let it drain between loss events. The newreno
// column is the default configuration, i.e. the cached fig7b
// long-many/256 cell.
func ablationSACK(s *Session, o Options) (*Result, error) {
	g := NewGrid("Ablation: SACK vs NewReno background flows (upstream long-many, 256-pkt uplink)",
		[]string{"mean uplink delay (ms)", "talk MOS", "uplink util %"},
		[]string{"newreno", "sack"})
	var jobs []cellJob
	for _, mode := range []string{"newreno", "sack"} {
		v := accessVariant{}
		if mode == "sack" {
			v = accessVariant{tag: "tcp=sack", tcpCfg: tcp.Config{SACK: true}}
		}
		jobs = append(jobs, cellJob{voipAccessTask(o, "long-many", testbed.DirUp, 256, v), "", mode})
	}
	s.runCells(jobs, func(_, mode string, v any) {
		p := v.(voipScore)
		g.Set("mean uplink delay (ms)", mode, Cell{
			Value: p.UpDelayMs,
			Class: qoe.ClassifyDelay(msToDuration(p.UpDelayMs)).String(),
		})
		g.Set("talk MOS", mode, Cell{Value: p.Talk, Class: string(qoe.VoIPSatisfaction(p.Talk))})
		g.Set("uplink util %", mode, Cell{Value: p.UpUtilPct})
	})
	return &Result{ID: "abl-sack", Grids: []*Grid{g}}, nil
}

// ablationPlayout compares the fixed 60 ms jitter buffer against the
// PjSIP-style adaptive playout under downstream jitter: the adaptive
// receiver trades late loss against added delay.
func ablationPlayout(s *Session, o Options) (*Result, error) {
	g := NewGrid("Ablation: fixed vs adaptive playout buffer (access, short-many down, 256-pkt buffers)",
		[]string{"MOS", "z1 (signal)", "app loss %"}, []string{"fixed-60ms", "adaptive"})
	var jobs []cellJob
	for _, mode := range []string{"fixed-60ms", "adaptive"} {
		jobs = append(jobs, cellJob{playoutTask(o, mode), "", mode})
	}
	s.runCells(jobs, func(_, mode string, v any) {
		p := v.(playoutScore)
		g.Set("MOS", mode, Cell{Value: p.MOS})
		g.Set("z1 (signal)", mode, Cell{Value: p.Z1})
		g.Set("app loss %", mode, Cell{Value: p.LossPct})
	})
	return &Result{ID: "abl-playout", Grids: []*Grid{g}}, nil
}
