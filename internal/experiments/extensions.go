package experiments

import (
	"fmt"
	"time"

	"bufferqoe/internal/httpvideo"
	"bufferqoe/internal/media"
	"bufferqoe/internal/qoe"
	"bufferqoe/internal/sizing"
	"bufferqoe/internal/stats"
	"bufferqoe/internal/tcp"
	"bufferqoe/internal/testbed"
	"bufferqoe/internal/video"
	"bufferqoe/internal/voip"
)

// extHTTPVideo evaluates the paper's Section 10 future-work claim:
// "initial work on HTTP video streaming is consistent with our
// results". The backbone load ladder is replayed with a TCP
// progressive-download player; QoE comes from the Mok et al. stall
// regression instead of SSIM.
func extHTTPVideo(o Options) (*Result, error) {
	scenarios := testbed.BackboneScenarioNames
	g := NewGrid("Extension: HTTP progressive video on the backbone (Mok et al. MOS)",
		scenarios, backboneBufferCols())
	cfg := httpvideo.Config{
		Bitrate:       4e6,
		MediaDuration: time.Duration(o.ClipSeconds*4) * time.Second,
	}
	for _, buf := range sizing.BackboneBufferSizes {
		col := fmt.Sprintf("%d", buf)
		for _, s := range scenarios {
			b := testbed.NewBackbone(testbed.Config{BufferDown: buf, Seed: o.Seed})
			if s != "noBG" {
				b.StartWorkload(testbed.BackboneScenario(s))
			}
			httpvideo.RegisterServer(b.MediaServerTCP, httpvideo.Port, cfg)
			var mosS stats.Sample
			remaining := o.Reps
			var next func()
			next = func() {
				if remaining == 0 {
					b.Eng.Halt()
					return
				}
				remaining--
				httpvideo.Watch(b.MediaClientTCP, b.MediaServer.Addr(httpvideo.Port), cfg,
					func(r httpvideo.Result) {
						mosS.Add(r.MOS)
						b.Eng.Schedule(time.Second, next)
					})
			}
			b.Eng.Schedule(o.Warmup, next)
			b.Eng.RunFor(cellCap)
			m := mosS.Median()
			g.Set(s, col, Cell{Value: m, Class: string(qoe.Rate(m))})
		}
	}
	return &Result{
		ID:    "ext-httpvideo",
		Grids: []*Grid{g},
		Notes: []string{"consistency check vs Figure 9b: workload, not buffer size, decides the score"},
	}, nil
}

// extClips reruns the backbone video cell across the three content
// classes (paper Section 8.3: "Comparing the obtained quality scores
// among the three different videos leads to minor differences ...
// the quality scores of all video clips lead to the same primary
// observation").
func extClips(o Options) (*Result, error) {
	scenarios := []string{"noBG", "short-medium", "long"}
	var rows []string
	for _, c := range video.Clips {
		rows = append(rows, c.Name)
	}
	g := NewGrid("Extension: per-clip SSIM (SD, backbone, BDP buffer)", rows, scenarios)
	for _, s := range scenarios {
		for _, clip := range video.Clips {
			src := video.NewSource(clip, video.SD, o.ClipSeconds)
			b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: o.Seed})
			if s != "noBG" {
				b.StartWorkload(testbed.BackboneScenario(s))
			}
			ssim := videoReps(b.Eng, o, time.Duration(o.ClipSeconds)*time.Second,
				func(done func(video.Result)) {
					video.Start(b.MediaServer, b.MediaClient, src,
						video.Config{Smooth: true, Seed: o.Seed}, done)
				})
			g.Set(clip.Name, s, Cell{Value: ssim, Class: string(qoe.Rate(qoe.SSIMToMOS(ssim)))})
		}
	}
	return &Result{
		ID:    "ext-clips",
		Grids: []*Grid{g},
		Notes: []string{"per-clip differences should be minor next to the workload effect (paper §8.3)"},
	}, nil
}

// ablationSACK quantifies the documented fidelity gap between our
// NewReno-default TCP and the paper's SACK-enabled Linux stacks:
// SACK-enabled background flows sustain the bloated uplink's standing
// queue (mean delay moves toward the paper's Figure 4c numbers),
// where NewReno flows let it drain between loss events.
func ablationSACK(o Options) (*Result, error) {
	g := NewGrid("Ablation: SACK vs NewReno background flows (upstream long-many, 256-pkt uplink)",
		[]string{"mean uplink delay (ms)", "talk MOS", "uplink util %"},
		[]string{"newreno", "sack"})
	for _, mode := range []string{"newreno", "sack"} {
		cfg := testbed.Config{BufferUp: 256, BufferDown: 256, Seed: o.Seed}
		cfg.TCP = tcp.Config{SACK: mode == "sack"}
		a := testbed.NewAccess(cfg)
		a.StartWorkload(testbed.AccessScenario("long-many", testbed.DirUp))
		_, talk := runVoIPPair(a, o)
		now := a.Eng.Now()
		g.Set("mean uplink delay (ms)", mode, Cell{
			Value: a.UpMon.MeanDelayMs(),
			Class: qoe.ClassifyDelay(time.Duration(a.UpMon.MeanDelayMs() * float64(time.Millisecond))).String(),
		})
		g.Set("talk MOS", mode, Cell{Value: talk, Class: string(qoe.VoIPSatisfaction(talk))})
		g.Set("uplink util %", mode, Cell{Value: a.UpLink.Monitor.MeanUtilization(now)})
	}
	return &Result{ID: "abl-sack", Grids: []*Grid{g}}, nil
}

// ablationPlayout compares the fixed 60 ms jitter buffer against the
// PjSIP-style adaptive playout under downstream jitter: the adaptive
// receiver trades late loss against added delay.
func ablationPlayout(o Options) (*Result, error) {
	g := NewGrid("Ablation: fixed vs adaptive playout buffer (access, short-many down, 256-pkt buffers)",
		[]string{"MOS", "z1 (signal)", "app loss %"}, []string{"fixed-60ms", "adaptive"})
	lib := media.Library(o.Seed)
	for _, mode := range []string{"fixed-60ms", "adaptive"} {
		a := testbed.NewAccess(testbed.Config{BufferUp: 256, BufferDown: 256, Seed: o.Seed})
		a.StartWorkload(testbed.AccessScenario("short-many", testbed.DirDown))
		var mosS, z1S, lossS stats.Sample
		for i := 0; i < o.Reps; i++ {
			i := i
			a.Eng.Schedule(o.Warmup+time.Duration(i)*callSpacing, func() {
				done := func(r voip.Result) {
					mosS.Add(r.MOS)
					z1S.Add(r.Z1)
					lossS.Add(r.LossPct())
					if mosS.N() == o.Reps {
						a.Eng.Halt()
					}
				}
				if mode == "adaptive" {
					voip.StartAdaptive(a.MediaServer, a.MediaClient, lib[i%len(lib)], done)
				} else {
					voip.Start(a.MediaServer, a.MediaClient, lib[i%len(lib)], 0, done)
				}
			})
		}
		a.Eng.RunFor(cellCap)
		g.Set("MOS", mode, Cell{Value: mosS.Median()})
		g.Set("z1 (signal)", mode, Cell{Value: z1S.Median()})
		g.Set("app loss %", mode, Cell{Value: lossS.Median()})
	}
	return &Result{ID: "abl-playout", Grids: []*Grid{g}}, nil
}
