package experiments

import (
	"math"
	"testing"

	"bufferqoe/internal/engine"
	"bufferqoe/internal/stats"
	"bufferqoe/internal/telemetry"
)

// TestStopRuleNeverFiresBeforeMinReps is the stopping rule's safety
// property: even on the most stop-eager input imaginable — identical
// scores, so the confidence interval has zero width — done must stay
// false until MinReps observations have accumulated, and must never
// fire on fewer than two (a variance needs two observations).
func TestStopRuleNeverFiresBeforeMinReps(t *testing.T) {
	for min := 0; min <= 6; min++ {
		for _, hw := range []float64{1e-6, 0.1, 1, 100} {
			rule := stopRule{min: min, hw: hw}
			var s stats.Sample
			for n := 1; n <= 10; n++ {
				s.Add(3.5) // zero variance: CI collapses immediately
				got := rule.done(&s)
				want := n >= min && n >= 2
				if got != want {
					t.Fatalf("min=%d hw=%g n=%d: done=%v, want %v", min, hw, n, got, want)
				}
			}
		}
	}
	// A disabled rule (hw == 0) never stops, whatever the sample.
	var s stats.Sample
	for n := 0; n < 50; n++ {
		s.Add(3.5)
		if (stopRule{}).done(&s) {
			t.Fatalf("disabled rule fired at n=%d", n+1)
		}
	}
}

// TestStopRuleRespectsHalfWidth checks the rule against a hand-built
// sample: with spread-out scores the rule must hold out until the CI
// actually tightens below the threshold, and a generous threshold
// must fire as soon as MinReps is met.
func TestStopRuleRespectsHalfWidth(t *testing.T) {
	var s stats.Sample
	s.Add(1.0)
	s.Add(4.0) // std ~2.12, t(1)=12.7: half-width ~19 MOS
	tight := stopRule{min: 2, hw: 0.5}
	if tight.done(&s) {
		t.Fatal("tight rule fired on a 2-sample CI spanning the whole MOS scale")
	}
	loose := stopRule{min: 2, hw: 25}
	if !loose.done(&s) {
		t.Fatal("loose rule did not fire although the CI fits the threshold")
	}
	// Many concordant samples tighten the CI until the strict rule
	// fires too.
	for i := 0; i < 200; i++ {
		s.Add(2.5)
	}
	if !tight.done(&s) {
		t.Fatalf("tight rule never fired; n=%d", s.N())
	}
}

// TestStopTagAndDefaults pins the normalization and the cache-axis
// encoding: disabled options canonicalize to the stop-free tag (so
// every exhaustive spelling shares cells), MinReps defaults to 2 and
// clamps to Reps, and the tag round-trips the parameters compactly.
func TestStopTagAndDefaults(t *testing.T) {
	off := Options{}.withDefaults()
	if off.CIHalfWidth != 0 || off.MinReps != 0 {
		t.Fatalf("disabled options kept stop fields: %+v", off)
	}
	if tag := off.stop().tag(); tag != "" {
		t.Fatalf("disabled options produced stop tag %q", tag)
	}

	on := Options{Reps: 5, CIHalfWidth: 0.25}.withDefaults()
	if on.MinReps != 2 {
		t.Fatalf("MinReps default = %d, want 2", on.MinReps)
	}
	if tag := on.stop().tag(); tag != "ci2:0.25" {
		t.Fatalf("stop tag = %q, want ci2:0.25", tag)
	}

	clamped := Options{Reps: 3, CIHalfWidth: 0.25, MinReps: 9}.withDefaults()
	if clamped.MinReps != 3 {
		t.Fatalf("MinReps = %d, want clamp to Reps=3", clamped.MinReps)
	}
}

// TestStopAxisInKeyNotInSeed is the determinism contract in spec
// form: the stopping rule distinguishes cache/store identities (an
// adaptive result must never answer an exhaustive query) but leaves
// the derived simulation seed untouched, so an adaptive cell's
// repetitions are the exhaustive cell's first n.
func TestStopAxisInKeyNotInSeed(t *testing.T) {
	base := engine.CellSpec{
		Testbed: "access", Scenario: "short-few", Direction: "down",
		Media: "voip", Buffer: 64, Seed: 42, Reps: 5,
	}
	adaptive := base
	adaptive.Stop = "ci2:0.25"
	if base.Key() == adaptive.Key() {
		t.Fatal("Stop axis absent from cache key: adaptive and exhaustive cells collide")
	}
	if engine.DeriveSeed(base) != engine.DeriveSeed(adaptive) {
		t.Fatal("Stop axis perturbed the derived seed: adaptive reps diverge from the exhaustive run's")
	}
	// The stop-free key is byte-identical to what pre-adaptive builds
	// produced (no trailing axis), so existing store entries stay
	// addressable.
	if k := base.Key(); k != base.Canonical().Key() {
		t.Fatalf("canonicalization changed the key: %q", k)
	}
}

// TestAdaptiveFewerRepsWithinHalfWidth is the demonstration sweep of
// the adaptive-replication layer: against an exhaustive fig7b run it
// must spend measurably fewer repetitions (telemetry is the proof)
// while every grid value stays within the configured half-width of
// the exhaustive value.
func TestAdaptiveFewerRepsWithinHalfWidth(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short (race CI) mode")
	}
	o := tiny()
	o.Reps = 3

	ResetEngineCache()
	exCol := telemetry.New()
	oEx := o
	oEx.Collector = exCol
	rEx, err := Run("fig7b", oEx)
	if err != nil {
		t.Fatal(err)
	}
	exhaustive := rEx.Grids[0]
	exReps := exCol.Snapshot()

	ResetEngineCache()
	adCol := telemetry.New()
	oAd := o
	oAd.Collector = adCol
	oAd.CIHalfWidth = 0.5
	rAd, err := Run("fig7b", oAd)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := rAd.Grids[0]
	adReps := adCol.Snapshot()

	if adReps.RepsPerCell.Count != exReps.RepsPerCell.Count {
		t.Fatalf("cell counts differ: adaptive %d, exhaustive %d",
			adReps.RepsPerCell.Count, exReps.RepsPerCell.Count)
	}
	if adReps.RepsPerCell.Sum >= exReps.RepsPerCell.Sum {
		t.Fatalf("adaptive run spent %v total reps, exhaustive %v — no savings",
			adReps.RepsPerCell.Sum, exReps.RepsPerCell.Sum)
	}
	if adReps.CellsStoppedEarly == 0 {
		t.Fatal("no cell stopped early although the rep total shrank")
	}
	if exReps.CellsStoppedEarly != 0 {
		t.Fatalf("exhaustive run reported %d early stops", exReps.CellsStoppedEarly)
	}
	for _, row := range exhaustive.Rows {
		for _, col := range exhaustive.Cols {
			e, a := exhaustive.Get(row, col).Value, adaptive.Get(row, col).Value
			if d := math.Abs(e - a); d > oAd.CIHalfWidth {
				t.Errorf("%s@%s: adaptive %v vs exhaustive %v differ by %v > half-width %v",
					row, col, a, e, d, oAd.CIHalfWidth)
			}
		}
	}
}

// TestAdaptiveDeterministicAcrossSchedules extends the engine's core
// guarantee to early-stopped cells: an adaptive run renders
// bit-identically sequentially, fanned out across workers, and from
// the warm cache — the stop decision is a pure function of the
// completed repetition scores, never of scheduling.
func TestAdaptiveDeterministicAcrossSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short (race CI) mode")
	}
	o := tiny()
	o.Reps = 3
	o.CIHalfWidth = 0.5
	defer SetParallelism(0)

	SetParallelism(1)
	ResetEngineCache()
	r, err := Run("fig7b", o)
	if err != nil {
		t.Fatal(err)
	}
	sequential := r.Render()

	SetParallelism(8)
	ResetEngineCache()
	r, err = Run("fig7b", o)
	if err != nil {
		t.Fatal(err)
	}
	if parallel := r.Render(); parallel != sequential {
		t.Fatalf("adaptive parallel run differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			sequential, parallel)
	}

	before := EngineStats()
	r, err = Run("fig7b", o)
	if err != nil {
		t.Fatal(err)
	}
	after := EngineStats()
	if warm := r.Render(); warm != sequential {
		t.Fatalf("adaptive warm-cache run differs from cold run:\n--- cold ---\n%s\n--- warm ---\n%s",
			sequential, warm)
	}
	if after.Misses != before.Misses {
		t.Fatalf("warm-cache run simulated %d new cells", after.Misses-before.Misses)
	}

	// Warm persistent store: a fresh session sharing the store answers
	// every cell from disk with an identical render.
	dir := t.TempDir()
	s1 := NewSession(2)
	if err := s1.OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	r, err = s1.Run("fig7b", o)
	if err != nil {
		t.Fatal(err)
	}
	cold := r.Render()
	if err := s1.CloseStore(); err != nil {
		t.Fatal(err)
	}
	if cold != sequential {
		t.Fatalf("store-backed run differs from plain run")
	}
	s2 := NewSession(2)
	if err := s2.OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	r, err = s2.Run("fig7b", o)
	if err != nil {
		t.Fatal(err)
	}
	warmStore := r.Render()
	st := s2.EngineStats()
	if err := s2.CloseStore(); err != nil {
		t.Fatal(err)
	}
	if warmStore != sequential {
		t.Fatalf("warm-store run differs:\n--- cold ---\n%s\n--- warm store ---\n%s",
			sequential, warmStore)
	}
	if st.Misses != 0 {
		t.Fatalf("warm-store run simulated %d cells", st.Misses)
	}
	if st.StoreHits == 0 {
		t.Fatal("warm-store run never consulted the store")
	}
}
