package experiments

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"
)

// cellCodec is the store.Codec for cell results: the experiments
// layer is the only place that knows the closed set of types a
// CellFunc can return, so the serializable set is defined here, as an
// explicit enumeration, instead of leaking reflection-driven "encode
// whatever shows up" semantics into the store.
//
// Wire format: one kind tag byte followed by the gob encoding of the
// concrete value. gob is self-describing (field names travel with the
// data, so adding fields to a score type keeps old entries readable)
// and encodes float64 by bit pattern, which the determinism contract
// requires: a decoded result must be bit-identical to the compute it
// replaces.
//
// Deliberately excluded: *cdn.Analysis (the fig1* population cells).
// Its histogram types keep unexported state that gob cannot see, so a
// round trip would silently drop data; those cells stay
// process-local and recompute per run (Encode reports ok=false and
// the store counts them as skipped).
type cellCodec struct{}

// Kind tags. Append-only: a tag's meaning is frozen once written to
// any store, and removing a type must retire its tag, not recycle it.
const (
	kindVoIP byte = iota + 1
	kindVideo
	kindHTTP
	kindPlayout
	kindSmoothing
	kindBG
	kindFloat
	kindDuration
)

// Encode renders one cell result; ok=false means the value is
// outside the serializable set (never persisted, always recomputed).
func (cellCodec) Encode(v any) ([]byte, bool) {
	var tag byte
	switch v.(type) {
	case voipScore:
		tag = kindVoIP
	case videoScore:
		tag = kindVideo
	case httpScore:
		tag = kindHTTP
	case playoutScore:
		tag = kindPlayout
	case smoothingScore:
		tag = kindSmoothing
	case bgMetrics:
		tag = kindBG
	case float64:
		tag = kindFloat
	case time.Duration:
		tag = kindDuration
	default:
		return nil, false
	}
	var buf bytes.Buffer
	buf.WriteByte(tag)
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

// Decode reverses Encode into the tagged concrete type.
func (cellCodec) Decode(data []byte) (any, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("experiments: empty cell payload")
	}
	dec := gob.NewDecoder(bytes.NewReader(data[1:]))
	switch tag := data[0]; tag {
	case kindVoIP:
		var v voipScore
		return v, dec.Decode(&v)
	case kindVideo:
		var v videoScore
		return v, dec.Decode(&v)
	case kindHTTP:
		var v httpScore
		return v, dec.Decode(&v)
	case kindPlayout:
		var v playoutScore
		return v, dec.Decode(&v)
	case kindSmoothing:
		var v smoothingScore
		return v, dec.Decode(&v)
	case kindBG:
		var v bgMetrics
		return v, dec.Decode(&v)
	case kindFloat:
		var v float64
		return v, dec.Decode(&v)
	case kindDuration:
		var v time.Duration
		return v, dec.Decode(&v)
	default:
		return nil, fmt.Errorf("experiments: unknown cell payload kind %d", tag)
	}
}

// cellCodec must keep satisfying store.Codec structurally (the store
// package is not imported here to keep this layer's dependencies
// one-directional).
var _ interface {
	Encode(any) ([]byte, bool)
	Decode([]byte) (any, error)
} = cellCodec{}
