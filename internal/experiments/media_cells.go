package experiments

import (
	"fmt"
	"time"

	"bufferqoe/internal/engine"
	"bufferqoe/internal/qoe"
	"bufferqoe/internal/sim"
	"bufferqoe/internal/sizing"
	"bufferqoe/internal/telemetry"
	"bufferqoe/internal/testbed"
	"bufferqoe/internal/video"
	"bufferqoe/internal/voip"
	"bufferqoe/internal/web"
)

// callSpacing is the gap between successive measurement call starts
// within one testbed run.
const callSpacing = 16 * time.Second

// cellCap bounds a single cell's simulated time as a safety net; the
// engine halts as soon as all repetitions complete.
const cellCap = 30 * time.Minute

// runVoIPPair schedules Reps simultaneous bidirectional calls on an
// already-configured access testbed and returns the median MOS of
// each direction. The two directions of one call share the
// conversational delay impairment, as in the paper's Section 7.2.
// pc marks the end of the cell's simulation phase; a disabled clock
// no-ops. With adaptive replication enabled, the loop halts as soon
// as both directions' MOS confidence intervals are tight enough —
// later pre-scheduled calls simply never start, so the completed
// repetitions are exactly the exhaustive run's first n.
func runVoIPPair(a *testbed.Access, o Options, cs *CellScratch, pc *telemetry.PhaseClock) (listen, talk float64) {
	lib := cs.library(o.Seed)
	rule := o.stop()
	listenS, talkS := cs.sample(0), cs.sample(1)
	for i := 0; i < o.Reps; i++ {
		i := i
		a.Eng.Schedule(o.Warmup+time.Duration(i)*callSpacing, func() {
			voip.StartPair(a.MediaClient, a.MediaServer,
				lib[(2*i)%len(lib)], lib[(2*i+1)%len(lib)], 0,
				func(pr voip.PairResult) {
					listenS.Add(pr.Listen.MOS)
					talkS.Add(pr.Talk.MOS)
					if listenS.N() == o.Reps || (rule.done(listenS) && rule.done(talkS)) {
						a.Eng.Halt()
					}
				})
		})
	}
	a.Eng.RunFor(cellCap)
	pc.Mark(telemetry.PhaseSim)
	recordReps(o, listenS.N(), listenS.N() < o.Reps)
	return listenS.Median(), talkS.Median()
}

// fig7 regenerates the Figure 7 access VoIP heatmaps: variant "a" is
// download congestion, "b" upload congestion. Variant "c" is the
// combined up+down scenario the paper describes in §7.2 ("plot not
// shown": results resemble upload-only, with the listen direction
// slightly worse from the added downlink traffic).
func fig7(s *Session, o Options, variant string) (*Result, error) {
	dir := testbed.DirDown
	switch variant {
	case "b":
		dir = testbed.DirUp
	case "c":
		dir = testbed.DirBidir
	}
	scenarios := []string{"noBG", "long-few", "long-many", "short-few", "short-many"}
	var rows []string
	for _, half := range []string{"user-listens", "user-talks"} {
		for _, s := range scenarios {
			rows = append(rows, half+"/"+s)
		}
	}
	g := NewGrid(fmt.Sprintf("Figure 7%s: VoIP access median MOS, %s congestion", variant, dir),
		rows, accessBufferCols())
	var jobs []cellJob
	for _, buf := range sizing.AccessBufferSizes {
		col := fmt.Sprintf("%d", buf)
		for _, s := range scenarios {
			jobs = append(jobs, cellJob{voipAccessTask(o, s, dir, buf, accessVariant{}), s, col})
		}
	}
	s.runCells(jobs, func(row, col string, v any) {
		p := v.(voipScore)
		g.Set("user-listens/"+row, col, Cell{Value: p.Listen, Class: string(qoe.VoIPSatisfaction(p.Listen))})
		g.Set("user-talks/"+row, col, Cell{Value: p.Talk, Class: string(qoe.VoIPSatisfaction(p.Talk))})
	})
	return &Result{ID: "fig7" + variant, Grids: []*Grid{g}}, nil
}

// fig8 regenerates the Figure 8 backbone VoIP heatmap (unidirectional
// calls, server -> client, as in the paper).
func fig8(s *Session, o Options) (*Result, error) {
	scenarios := testbed.BackboneScenarioNames
	g := NewGrid("Figure 8: VoIP backbone median MOS", scenarios, backboneBufferCols())
	var jobs []cellJob
	for _, buf := range sizing.BackboneBufferSizes {
		col := fmt.Sprintf("%d", buf)
		for _, s := range scenarios {
			jobs = append(jobs, cellJob{voipBackboneTask(o, s, buf, backboneVariant{}), s, col})
		}
	}
	s.runCells(jobs, func(row, col string, v any) {
		m := v.(float64)
		g.Set(row, col, Cell{Value: m, Class: string(qoe.VoIPSatisfaction(m))})
	})
	return &Result{ID: "fig8", Grids: []*Grid{g}}, nil
}

// videoReps streams the clip sequentially Reps times; start is
// invoked per repetition with the completion callback. It returns the
// median SSIM and PSNR across repetitions. The adaptive stopping rule
// watches a shadow MOS sample (SSIM mapped through the paper's
// SSIM-to-MOS curve) so the CI threshold means the same thing — MOS
// points — across all media types.
func videoReps(se *sim.Engine, o Options, clipDur time.Duration, cs *CellScratch, pc *telemetry.PhaseClock, start func(done func(video.Result))) videoScore {
	rule := o.stop()
	ssims, psnrs, mosS := cs.sample(0), cs.sample(1), cs.sample(2)
	spacing := clipDur + video.StartupDelay + 5*time.Second
	for i := 0; i < o.Reps; i++ {
		se.Schedule(o.Warmup+time.Duration(i)*spacing, func() {
			start(func(r video.Result) {
				ssims.Add(r.MeanSSIM)
				psnrs.Add(r.MeanPSNR)
				mosS.Add(qoe.SSIMToMOS(r.MeanSSIM))
				if ssims.N() == o.Reps || rule.done(mosS) {
					se.Halt()
				}
			})
		})
	}
	se.RunFor(cellCap)
	pc.Mark(telemetry.PhaseSim)
	recordReps(o, ssims.N(), ssims.N() < o.Reps)
	return videoScore{SSIM: ssims.Median(), PSNR: psnrs.Median()}
}

// fig9 regenerates the Figure 9 video heatmaps: variant "a" is the
// access testbed (download congestion only: IPTV is downstream),
// "b" the backbone.
func fig9(s *Session, o Options, variant string) (*Result, error) {
	profiles := []video.Profile{video.SD, video.HD}
	clip := video.ClipC // the clip the paper displays

	var scenarios []string
	var cols []string
	var bufs []int
	if variant == "a" {
		scenarios = []string{"noBG", "long-few", "long-many", "short-few", "short-many"}
		cols, bufs = accessBufferCols(), sizing.AccessBufferSizes
	} else {
		scenarios = testbed.BackboneScenarioNames
		cols, bufs = backboneBufferCols(), sizing.BackboneBufferSizes
	}
	var rows []string
	for _, p := range profiles {
		for _, s := range scenarios {
			rows = append(rows, p.Name+"/"+s)
		}
	}
	g := NewGrid(fmt.Sprintf("Figure 9%s: median SSIM (video C)", variant), rows, cols)

	var jobs []cellJob
	for bi, buf := range bufs {
		col := cols[bi]
		for _, s := range scenarios {
			for _, p := range profiles {
				// Build only the variant's own task: workload names
				// resolve at build time, and the backbone names are not
				// access names.
				var task engine.Task
				if variant == "a" {
					task = videoAccessTask(o, s, testbed.DirDown, clip, p, buf, accessVariant{})
				} else {
					task = videoBackboneTask(o, s, clip, p, video.RecoveryNone, buf, backboneVariant{})
				}
				jobs = append(jobs, cellJob{task, p.Name + "/" + s, col})
			}
		}
	}
	s.runCells(jobs, func(row, col string, v any) {
		ssim := v.(videoScore).SSIM
		g.Set(row, col, Cell{
			Value: ssim,
			Class: string(qoe.Rate(qoe.SSIMToMOS(ssim))),
		})
	})
	return &Result{ID: "fig9" + variant, Grids: []*Grid{g}}, nil
}

// webReps fetches the page sequentially Reps times and returns the
// median PLT. mos maps a PLT onto the testbed's WebQoE model so the
// adaptive stopping rule operates in MOS points, like every other
// media type.
func webReps(se *sim.Engine, o Options, cs *CellScratch, pc *telemetry.PhaseClock, mos func(time.Duration) float64, fetch func(done func(web.Result))) time.Duration {
	rule := o.stop()
	plts, mosS := cs.sample(0), cs.sample(1)
	remaining := o.Reps
	var next func()
	next = func() {
		if remaining == 0 {
			se.Halt()
			return
		}
		remaining--
		fetch(func(r web.Result) {
			plts.Add(r.PLT.Seconds())
			mosS.Add(mos(r.PLT))
			if rule.done(mosS) {
				se.Halt()
				return
			}
			se.Schedule(time.Second, next)
		})
	}
	se.Schedule(o.Warmup, next)
	se.RunFor(cellCap)
	pc.Mark(telemetry.PhaseSim)
	recordReps(o, plts.N(), plts.N() < o.Reps)
	return time.Duration(plts.Median() * float64(time.Second))
}

// fig10 regenerates the Figure 10 access WebQoE heatmaps: variant "a"
// is download congestion, "b" upload congestion. Variant "c" is the
// combined workload of §9.2 ("not shown": dominated by the upload
// side, with somewhat shorter PLTs than upload-only).
func fig10(s *Session, o Options, variant string) (*Result, error) {
	dir := testbed.DirDown
	switch variant {
	case "b":
		dir = testbed.DirUp
	case "c":
		dir = testbed.DirBidir
	}
	model := qoe.AccessWebModel()
	scenarios := []string{"noBG", "long-few", "long-many", "short-few", "short-many"}
	g := NewGrid(fmt.Sprintf("Figure 10%s: access median PLT (s) and WebQoE, %s congestion", variant, dir),
		scenarios, accessBufferCols())
	var jobs []cellJob
	for _, buf := range sizing.AccessBufferSizes {
		col := fmt.Sprintf("%d", buf)
		for _, s := range scenarios {
			jobs = append(jobs, cellJob{webAccessTask(o, s, dir, buf, accessVariant{}, 0), s, col})
		}
	}
	s.runCells(jobs, func(row, col string, v any) {
		plt := v.(time.Duration)
		mos := model.MOS(plt)
		g.Set(row, col, Cell{
			Value: plt.Seconds(),
			Text:  fmt.Sprintf("%.2fs/MOS %.1f", plt.Seconds(), mos),
			Class: string(qoe.Rate(mos)),
		})
	})
	return &Result{ID: "fig10" + variant, Grids: []*Grid{g}}, nil
}

// fig11 regenerates the Figure 11 backbone WebQoE heatmap.
func fig11(s *Session, o Options) (*Result, error) {
	model := qoe.BackboneWebModel()
	scenarios := testbed.BackboneScenarioNames
	g := NewGrid("Figure 11: backbone median PLT (s) and WebQoE", scenarios, backboneBufferCols())
	var jobs []cellJob
	for _, buf := range sizing.BackboneBufferSizes {
		col := fmt.Sprintf("%d", buf)
		for _, s := range scenarios {
			jobs = append(jobs, cellJob{webBackboneTask(o, s, buf, backboneVariant{}), s, col})
		}
	}
	s.runCells(jobs, func(row, col string, v any) {
		plt := v.(time.Duration)
		mos := model.MOS(plt)
		g.Set(row, col, Cell{
			Value: plt.Seconds(),
			Text:  fmt.Sprintf("%.2fs/MOS %.1f", plt.Seconds(), mos),
			Class: string(qoe.Rate(mos)),
		})
	})
	return &Result{ID: "fig11", Grids: []*Grid{g}}, nil
}
