package experiments

import (
	"fmt"
	"time"

	"bufferqoe/internal/media"
	"bufferqoe/internal/qoe"
	"bufferqoe/internal/sim"
	"bufferqoe/internal/sizing"
	"bufferqoe/internal/stats"
	"bufferqoe/internal/testbed"
	"bufferqoe/internal/video"
	"bufferqoe/internal/voip"
	"bufferqoe/internal/web"
)

// callSpacing is the gap between successive measurement call starts
// within one testbed run.
const callSpacing = 16 * time.Second

// cellCap bounds a single cell's simulated time as a safety net; the
// engine halts as soon as all repetitions complete.
const cellCap = 30 * time.Minute

// voipAccessCell runs Reps bidirectional calls over one configured
// access testbed and returns the median listen/talk MOS.
func voipAccessCell(name string, dir testbed.Direction, buf int, o Options) (listen, talk float64) {
	a := testbed.NewAccess(testbed.Config{BufferUp: buf, BufferDown: buf, Seed: o.Seed})
	if name != "noBG" {
		a.StartWorkload(testbed.AccessScenario(name, dir))
	}
	return runVoIPPair(a, o)
}

// runVoIPPair schedules Reps simultaneous bidirectional calls on an
// already-configured access testbed and returns the median MOS of
// each direction. The two directions of one call share the
// conversational delay impairment, as in the paper's Section 7.2.
func runVoIPPair(a *testbed.Access, o Options) (listen, talk float64) {
	lib := media.Library(o.Seed)
	var listenS, talkS stats.Sample
	for i := 0; i < o.Reps; i++ {
		i := i
		a.Eng.Schedule(o.Warmup+time.Duration(i)*callSpacing, func() {
			voip.StartPair(a.MediaClient, a.MediaServer,
				lib[(2*i)%len(lib)], lib[(2*i+1)%len(lib)], 0,
				func(pr voip.PairResult) {
					listenS.Add(pr.Listen.MOS)
					talkS.Add(pr.Talk.MOS)
					if listenS.N() == o.Reps {
						a.Eng.Halt()
					}
				})
		})
	}
	a.Eng.RunFor(cellCap)
	return listenS.Median(), talkS.Median()
}

// fig7 regenerates the Figure 7 access VoIP heatmaps: variant "a" is
// download congestion, "b" upload congestion. Variant "c" is the
// combined up+down scenario the paper describes in §7.2 ("plot not
// shown": results resemble upload-only, with the listen direction
// slightly worse from the added downlink traffic).
func fig7(o Options, variant string) (*Result, error) {
	dir := testbed.DirDown
	switch variant {
	case "b":
		dir = testbed.DirUp
	case "c":
		dir = testbed.DirBidir
	}
	scenarios := []string{"noBG", "long-few", "long-many", "short-few", "short-many"}
	var rows []string
	for _, half := range []string{"user-listens", "user-talks"} {
		for _, s := range scenarios {
			rows = append(rows, half+"/"+s)
		}
	}
	g := NewGrid(fmt.Sprintf("Figure 7%s: VoIP access median MOS, %s congestion", variant, dir),
		rows, accessBufferCols())
	for _, buf := range sizing.AccessBufferSizes {
		col := fmt.Sprintf("%d", buf)
		for _, s := range scenarios {
			listen, talk := voipAccessCell(s, dir, buf, o)
			g.Set("user-listens/"+s, col, Cell{Value: listen, Class: string(qoe.VoIPSatisfaction(listen))})
			g.Set("user-talks/"+s, col, Cell{Value: talk, Class: string(qoe.VoIPSatisfaction(talk))})
		}
	}
	return &Result{ID: "fig7" + variant, Grids: []*Grid{g}}, nil
}

// voipBackboneCell runs Reps unidirectional calls and returns the
// median MOS.
func voipBackboneCell(name string, buf int, o Options) float64 {
	b := testbed.NewBackbone(testbed.Config{BufferDown: buf, Seed: o.Seed})
	if name != "noBG" {
		b.StartWorkload(testbed.BackboneScenario(name))
	}
	lib := media.Library(o.Seed)
	var mosS stats.Sample
	for i := 0; i < o.Reps; i++ {
		i := i
		b.Eng.Schedule(o.Warmup+time.Duration(i)*callSpacing, func() {
			voip.Start(b.MediaServer, b.MediaClient, lib[i%len(lib)], 0,
				func(r voip.Result) {
					mosS.Add(r.MOS)
					if mosS.N() == o.Reps {
						b.Eng.Halt()
					}
				})
		})
	}
	b.Eng.RunFor(cellCap)
	return mosS.Median()
}

// fig8 regenerates the Figure 8 backbone VoIP heatmap (unidirectional
// calls, server -> client, as in the paper).
func fig8(o Options) (*Result, error) {
	scenarios := testbed.BackboneScenarioNames
	g := NewGrid("Figure 8: VoIP backbone median MOS", scenarios, backboneBufferCols())
	for _, buf := range sizing.BackboneBufferSizes {
		col := fmt.Sprintf("%d", buf)
		for _, s := range scenarios {
			m := voipBackboneCell(s, buf, o)
			g.Set(s, col, Cell{Value: m, Class: string(qoe.VoIPSatisfaction(m))})
		}
	}
	return &Result{ID: "fig8", Grids: []*Grid{g}}, nil
}

// videoReps streams the clip sequentially Reps times; start is invoked
// per repetition with the completion callback.
func videoReps(eng *sim.Engine, o Options, clipDur time.Duration, start func(done func(video.Result))) float64 {
	var ssims stats.Sample
	spacing := clipDur + video.StartupDelay + 5*time.Second
	for i := 0; i < o.Reps; i++ {
		eng.Schedule(o.Warmup+time.Duration(i)*spacing, func() {
			start(func(r video.Result) {
				ssims.Add(r.MeanSSIM)
				if ssims.N() == o.Reps {
					eng.Halt()
				}
			})
		})
	}
	eng.RunFor(cellCap)
	return ssims.Median()
}

// fig9 regenerates the Figure 9 video heatmaps: variant "a" is the
// access testbed (download congestion only: IPTV is downstream),
// "b" the backbone.
func fig9(o Options, variant string) (*Result, error) {
	profiles := []video.Profile{video.SD, video.HD}
	clip := video.ClipC // the clip the paper displays
	clipDur := time.Duration(o.ClipSeconds) * time.Second

	var scenarios []string
	var cols []string
	var bufs []int
	if variant == "a" {
		scenarios = []string{"noBG", "long-few", "long-many", "short-few", "short-many"}
		cols, bufs = accessBufferCols(), sizing.AccessBufferSizes
	} else {
		scenarios = testbed.BackboneScenarioNames
		cols, bufs = backboneBufferCols(), sizing.BackboneBufferSizes
	}
	var rows []string
	for _, p := range profiles {
		for _, s := range scenarios {
			rows = append(rows, p.Name+"/"+s)
		}
	}
	g := NewGrid(fmt.Sprintf("Figure 9%s: median SSIM (video C)", variant), rows, cols)

	for bi, buf := range bufs {
		col := cols[bi]
		for _, s := range scenarios {
			for _, p := range profiles {
				src := video.NewSource(clip, p, o.ClipSeconds)
				var ssim float64
				if variant == "a" {
					a := testbed.NewAccess(testbed.Config{BufferUp: buf, BufferDown: buf, Seed: o.Seed})
					if s != "noBG" {
						a.StartWorkload(testbed.AccessScenario(s, testbed.DirDown))
					}
					ssim = videoReps(a.Eng, o, clipDur, func(done func(video.Result)) {
						video.Start(a.MediaServer, a.MediaClient, src,
							video.Config{Smooth: true, Seed: o.Seed}, done)
					})
				} else {
					b := testbed.NewBackbone(testbed.Config{BufferDown: buf, Seed: o.Seed})
					if s != "noBG" {
						b.StartWorkload(testbed.BackboneScenario(s))
					}
					ssim = videoReps(b.Eng, o, clipDur, func(done func(video.Result)) {
						video.Start(b.MediaServer, b.MediaClient, src,
							video.Config{Smooth: true, Seed: o.Seed}, done)
					})
				}
				g.Set(p.Name+"/"+s, col, Cell{
					Value: ssim,
					Class: string(qoe.Rate(qoe.SSIMToMOS(ssim))),
				})
			}
		}
	}
	return &Result{ID: "fig9" + variant, Grids: []*Grid{g}}, nil
}

// webReps fetches the page sequentially Reps times and returns the
// median PLT.
func webReps(eng *sim.Engine, o Options, fetch func(done func(web.Result))) time.Duration {
	var plts stats.Sample
	remaining := o.Reps
	var next func()
	next = func() {
		if remaining == 0 {
			eng.Halt()
			return
		}
		remaining--
		fetch(func(r web.Result) {
			plts.Add(r.PLT.Seconds())
			eng.Schedule(time.Second, next)
		})
	}
	eng.Schedule(o.Warmup, next)
	eng.RunFor(cellCap)
	return time.Duration(plts.Median() * float64(time.Second))
}

// fig10 regenerates the Figure 10 access WebQoE heatmaps: variant "a"
// is download congestion, "b" upload congestion. Variant "c" is the
// combined workload of §9.2 ("not shown": dominated by the upload
// side, with somewhat shorter PLTs than upload-only).
func fig10(o Options, variant string) (*Result, error) {
	dir := testbed.DirDown
	switch variant {
	case "b":
		dir = testbed.DirUp
	case "c":
		dir = testbed.DirBidir
	}
	model := qoe.AccessWebModel()
	scenarios := []string{"noBG", "long-few", "long-many", "short-few", "short-many"}
	g := NewGrid(fmt.Sprintf("Figure 10%s: access median PLT (s) and WebQoE, %s congestion", variant, dir),
		scenarios, accessBufferCols())
	for _, buf := range sizing.AccessBufferSizes {
		col := fmt.Sprintf("%d", buf)
		for _, s := range scenarios {
			a := testbed.NewAccess(testbed.Config{BufferUp: buf, BufferDown: buf, Seed: o.Seed})
			if s != "noBG" {
				a.StartWorkload(testbed.AccessScenario(s, dir))
			}
			web.RegisterServer(a.MediaServerTCP, web.Port)
			plt := webReps(a.Eng, o, func(done func(web.Result)) {
				web.Fetch(a.MediaClientTCP, a.MediaServer.Addr(web.Port), 60*time.Second, done)
			})
			mos := model.MOS(plt)
			g.Set(s, col, Cell{
				Value: plt.Seconds(),
				Text:  fmt.Sprintf("%.2fs/MOS %.1f", plt.Seconds(), mos),
				Class: string(qoe.Rate(mos)),
			})
		}
	}
	return &Result{ID: "fig10" + variant, Grids: []*Grid{g}}, nil
}

// fig11 regenerates the Figure 11 backbone WebQoE heatmap.
func fig11(o Options) (*Result, error) {
	model := qoe.BackboneWebModel()
	scenarios := testbed.BackboneScenarioNames
	g := NewGrid("Figure 11: backbone median PLT (s) and WebQoE", scenarios, backboneBufferCols())
	for _, buf := range sizing.BackboneBufferSizes {
		col := fmt.Sprintf("%d", buf)
		for _, s := range scenarios {
			b := testbed.NewBackbone(testbed.Config{BufferDown: buf, Seed: o.Seed})
			if s != "noBG" {
				b.StartWorkload(testbed.BackboneScenario(s))
			}
			web.RegisterServer(b.MediaServerTCP, web.Port)
			plt := webReps(b.Eng, o, func(done func(web.Result)) {
				web.Fetch(b.MediaClientTCP, b.MediaServer.Addr(web.Port), 60*time.Second, done)
			})
			mos := model.MOS(plt)
			g.Set(s, col, Cell{
				Value: plt.Seconds(),
				Text:  fmt.Sprintf("%.2fs/MOS %.1f", plt.Seconds(), mos),
				Class: string(qoe.Rate(mos)),
			})
		}
	}
	return &Result{ID: "fig11", Grids: []*Grid{g}}, nil
}
