package experiments

import (
	"bufferqoe/internal/engine"
	"bufferqoe/internal/media"
	"bufferqoe/internal/stats"
	"bufferqoe/internal/testbed"
	"bufferqoe/internal/video"
)

// CellScratch is the per-worker reusable working memory of the cell
// runners: the testbed's bottleneck monitors (mutable, Reset between
// cells) and two immutable content caches — the G.711 speech library
// per seed and rendered video sources per (clip, profile, length).
// Rendering a clip or synthesizing the speech library costs far more
// than a small cell's network simulation, so reusing them across the
// cells of a sweep is one of the larger wins of the scratch design.
//
// Reuse safety: the caches hold content that is a pure function of
// their key and is only ever read by consumers, so a cache hit is
// bit-identical to a rebuild; everything mutable lives behind Reset.
type CellScratch struct {
	// Testbed holds the queue/link monitors a testbed build would
	// otherwise allocate per cell, plus the cached testbed carcasses
	// NewAccess/NewBackbone reset in place between cells.
	Testbed testbed.Scratch

	// repSamples is a fixed arena of per-repetition accumulators for
	// the cell rep loops (MOS/SSIM/PLT per repetition). One cell runs
	// on a scratch at a time and no rep loop needs more than four, so
	// the backing arrays amortize across the whole sweep. Acquire via
	// sample(i), which resets before handing out.
	repSamples [4]stats.Sample

	lib     map[uint64][]*media.Sample
	sources map[sourceKey]*video.Source
}

type sourceKey struct {
	clip    string
	profile string
	seconds int
}

func newCellScratch() *CellScratch {
	return &CellScratch{
		lib:     map[uint64][]*media.Sample{},
		sources: map[sourceKey]*video.Source{},
	}
}

// Reset implements engine.Scratch: clear the mutable state, keep the
// keyed content caches.
func (cs *CellScratch) Reset() {
	cs.Testbed.Reset()
}

// scratchOf narrows the engine's scratch handle; a nil result (no
// scratch configured, e.g. a cell function invoked directly in tests)
// makes every helper below fall back to fresh allocations.
func scratchOf(scr engine.Scratch) *CellScratch {
	cs, _ := scr.(*CellScratch)
	return cs
}

// sample returns the i-th arena accumulator, reset and ready to fill;
// a nil scratch (direct cell invocation in tests) falls back to a
// fresh allocation. The arena hands out at most len(repSamples)
// distinct accumulators per cell.
func (cs *CellScratch) sample(i int) *stats.Sample {
	if cs == nil {
		return &stats.Sample{}
	}
	s := &cs.repSamples[i]
	s.Reset()
	return s
}

// tb returns the testbed scratch to embed in a Config, or nil.
func (cs *CellScratch) tb() *testbed.Scratch {
	if cs == nil {
		return nil
	}
	return &cs.Testbed
}

// library returns the speech library for a seed, cached across cells.
func (cs *CellScratch) library(seed uint64) []*media.Sample {
	if cs == nil {
		return media.Library(seed)
	}
	if lib, ok := cs.lib[seed]; ok {
		return lib
	}
	lib := media.Library(seed)
	cs.lib[seed] = lib
	return lib
}

// source returns the rendered video source for a clip/profile/length,
// cached across cells.
func (cs *CellScratch) source(clip video.Clip, p video.Profile, seconds int) *video.Source {
	if cs == nil {
		return video.NewSource(clip, p, seconds)
	}
	k := sourceKey{clip: clip.Name, profile: p.Name, seconds: seconds}
	if src, ok := cs.sources[k]; ok {
		return src
	}
	src := video.NewSource(clip, p, seconds)
	cs.sources[k] = src
	return src
}
