package experiments

import (
	"math"
	"strconv"

	"bufferqoe/internal/stats"
)

// Adaptive replication: the paper runs a fixed number of calls/streams
// per cell (200-2000), far past where medians stabilize. The sequential
// stopping rule here keeps repeating a cell only until the 95%
// confidence interval of its per-repetition QoE score is tight enough,
// so cheap cells (idle links, uncongested buffers) stop after the
// minimum repetitions while noisy cells run to their configured cap.
//
// Determinism contract: the stop decision is a pure function of the
// completed repetitions' scores, which under the engine's
// common-random-numbers seeding are identical to the first n
// repetitions of an exhaustive run. The rule is therefore a cache axis
// (CellSpec.Stop) — adaptive and exhaustive runs of one configuration
// are distinct, individually deterministic cells — and early-stopped
// cells cache, persist, and replay exactly like any other.

// stopRule is the compiled form of Options.MinReps/CIHalfWidth. The
// zero value is the disabled rule (never stops early).
type stopRule struct {
	min int     // repetitions required before stopping is considered
	hw  float64 // target 95% CI half-width; <= 0 disables the rule
}

// stop compiles the options' stopping rule (the zero rule when
// adaptive replication is off).
func (o Options) stop() stopRule {
	if o.CIHalfWidth <= 0 {
		return stopRule{}
	}
	return stopRule{min: o.MinReps, hw: o.CIHalfWidth}
}

// tag renders the rule as its canonical CellSpec.Stop encoding, or ""
// when disabled. strconv's shortest-float rendering makes the encoding
// injective: distinct rules never share a cell.
func (r stopRule) tag() string {
	if r.hw <= 0 {
		return ""
	}
	return "ci" + strconv.Itoa(r.min) + ":" + strconv.FormatFloat(r.hw, 'g', -1, 64)
}

// done reports whether the repetitions accumulated in s satisfy the
// rule: at least min (and two, so a variance exists) observations and
// a 95% CI half-width t(n-1) * s/sqrt(n) no wider than hw. A disabled
// rule never stops.
func (r stopRule) done(s *stats.Sample) bool {
	n := s.N()
	if r.hw <= 0 || n < r.min || n < 2 {
		return false
	}
	return tCritical(n-1)*s.Std()/math.Sqrt(float64(n)) <= r.hw
}

// tCrit95 holds two-sided 95% Student-t critical values for 1..30
// degrees of freedom; beyond 30 the normal approximation is within
// half a percent.
var tCrit95 = [30]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCritical returns the two-sided 95% Student-t critical value for df
// degrees of freedom.
func tCritical(df int) float64 {
	if df < 1 {
		return math.Inf(1)
	}
	if df <= len(tCrit95) {
		return tCrit95[df-1]
	}
	return 1.96
}

// recordReps flushes one rep-loop cell's replication telemetry: the
// repetitions actually run and whether the stopping rule cut the cell
// short. Free when no collector is attached.
func recordReps(o Options, reps int, stopped bool) {
	col := o.Collector
	if col == nil {
		return
	}
	col.RepsPerCell.Observe(float64(reps))
	if stopped {
		col.CellsStoppedEarly.Inc()
	}
}
