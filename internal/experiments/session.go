package experiments

import (
	"context"
	"fmt"

	"bufferqoe/internal/engine"
	"bufferqoe/internal/store"
	"bufferqoe/internal/telemetry"
)

// ErrCanceled reports that a run was abandoned because its context was
// canceled. Cells already simulating when the cancellation lands drain
// to completion and stay cached (the simulator has no checkpoints to
// resume from); only queued cells are abandoned, so a canceled run
// followed by the same run on the same session re-simulates exactly
// the abandoned cells.
var ErrCanceled = engine.ErrCanceled

// Session owns one cell-execution engine: a worker pool, a result
// cache, and the hit/miss counters. Everything the package can run —
// experiment grids, probes, sweeps — runs *on* a session, so
// independent callers (a service handling many users, a test that
// wants a cold cache) get isolated state instead of sharing mutable
// package globals. The package-level Run/Measure* functions operate
// on Default, preserving the original single-engine behavior.
type Session struct {
	eng *engine.Engine
	// ctx, when non-nil, bounds every run on this view of the session;
	// see WithContext. nil means context.Background().
	ctx context.Context
	// collector, when non-nil, is merged into every run's Options (see
	// opts) so cells report per-cell telemetry without each caller
	// threading a collector through. Set via SetCollector on the root
	// session, before WithContext views are taken.
	collector *telemetry.Collector
	// store is the session's handle on the persistent result store
	// attached to the engine, kept so CloseStore/ResetCache can flush
	// and release it. Like collector, manage it on the root session
	// before WithContext views are taken (views copy the struct).
	store *store.Store
}

// NewSession creates a session with its own engine; workers <= 0 uses
// GOMAXPROCS. Each worker gets a reusable CellScratch (monitors,
// media/content caches) recycled between the cells it computes.
func NewSession(workers int) *Session {
	eng := engine.New(workers)
	eng.SetScratch(func() engine.Scratch { return newCellScratch() })
	return &Session{eng: eng}
}

// Default is the process-wide session behind the package-level
// functions. Cells submitted through it are shared across every
// caller that uses the package-level API.
var Default = NewSession(0)

// WithContext returns a view of the session whose runs are bounded by
// ctx: queued cells are abandoned once ctx is canceled and the run
// returns ErrCanceled. The view shares the session's engine, cache,
// and counters — it is a call-scoping device, not a new session.
func (s *Session) WithContext(ctx context.Context) *Session {
	view := *s
	view.ctx = ctx
	return &view
}

// Context returns the context bounding this session view:
// context.Background() unless the view came from WithContext.
func (s *Session) Context() context.Context {
	if s.ctx != nil {
		return s.ctx
	}
	return context.Background()
}

// context is shorthand for Context in the run paths.
func (s *Session) context() context.Context { return s.Context() }

// SetParallelism resizes the session's cell worker pool; n <= 0 means
// GOMAXPROCS. Parallelism never changes results: each cell's seed is
// derived from its canonical spec, not from scheduling order.
func (s *Session) SetParallelism(n int) { s.eng.SetWorkers(n) }

// Parallelism returns the session's worker-pool size.
func (s *Session) Parallelism() int { return s.eng.Workers() }

// EngineStats snapshots the session's cell cache/pool counters.
func (s *Session) EngineStats() engine.Stats { return s.eng.Stats() }

// SetCollector attaches a telemetry collector to the session (nil
// detaches): the cell engine mirrors its cache counters, gauges, and
// per-cell wall time into it, and every run whose Options leave
// Collector nil reports phase telemetry to it. Attach before
// submitting work and before taking WithContext views — views copy
// the session struct, so they see the collector set at copy time.
func (s *Session) SetCollector(c *telemetry.Collector) {
	s.collector = c
	s.eng.SetCollector(c)
}

// Collector returns the session's attached collector, or nil.
func (s *Session) Collector() *telemetry.Collector { return s.collector }

// opts normalizes run options and fills the session's collector into
// runs that don't bring their own. Every run entry point routes
// through it, so a collector attached to the session observes probes,
// experiments, and sweeps alike.
func (s *Session) opts(o Options) Options {
	o = o.withDefaults()
	if o.Collector == nil {
		o.Collector = s.collector
	}
	return o
}

// OpenStore attaches a persistent content-addressed result store at
// dir as the engine's second cache tier: in-memory misses are
// answered from disk when a prior run (any process, any machine)
// already computed the cell under the same engine.Version, and fresh
// computes are written through off the hot path. Open the store on
// the root session before submitting work or taking WithContext
// views; a session holds at most one store at a time.
func (s *Session) OpenStore(dir string) error {
	if s.store != nil {
		return fmt.Errorf("experiments: session already has a store open at %s", s.store.Dir())
	}
	st, err := store.Open(dir, engine.Version, cellCodec{})
	if err != nil {
		return err
	}
	s.store = st
	s.eng.SetStore(st)
	return nil
}

// CloseStore detaches the session's persistent store, flushes its
// queued writes to disk, and releases it. No-op without an open
// store. The session keeps working afterwards — cells just stop
// hitting and feeding the disk tier.
func (s *Session) CloseStore() error {
	st := s.store
	if st == nil {
		return nil
	}
	s.store = nil
	s.eng.SetStore(nil)
	return st.Close()
}

// StoreStats snapshots the open store's counters; ok is false when no
// store is open.
func (s *Session) StoreStats() (store.Stats, bool) {
	if s.store == nil {
		return store.Stats{}, false
	}
	return s.store.Stats(), true
}

// ResetCache drops the session's memoized cell results and detaches
// (closing) any open persistent store, so subsequent runs are genuine
// cold runs: nothing in memory, nothing answered from disk. Reattach
// with OpenStore if warm-store behavior is wanted again.
func (s *Session) ResetCache() {
	s.eng.ResetCache()
	if s.store != nil {
		s.store.Close()
		s.store = nil
	}
}

// cancelSignal carries a cancellation out of a grid runner through the
// panic path. The ~40 runners are straight-line cell submitters with
// no error plumbing of their own; rather than threading a ctx check
// through every one, runOne/runCells panic with this sentinel and
// Session.Run recovers it into an ordinary ErrCanceled return. The
// sentinel never crosses a goroutine boundary: runCells collects cell
// errors on the calling goroutine before panicking.
type cancelSignal struct{ err error }

// runOne executes a single cell synchronously (probes and small
// grids); batches should go through runCells.
func (s *Session) runOne(t engine.Task) any {
	v, err := s.eng.DoCtx(s.context(), t.Spec, t.Fn)
	if err != nil {
		panic(cancelSignal{err})
	}
	return v
}

// runCells fans a batch of jobs out across the engine and hands each
// value back with its grid coordinates.
func (s *Session) runCells(jobs []cellJob, each func(row, col string, v any)) {
	tasks := make([]engine.Task, len(jobs))
	for i, j := range jobs {
		tasks[i] = j.task
	}
	vals, err := s.eng.RunBatchCtx(s.context(), tasks)
	if err != nil {
		panic(cancelSignal{err})
	}
	for i, v := range vals {
		each(jobs[i].row, jobs[i].col, v)
	}
}

// SetParallelism resizes the Default session's worker pool.
func SetParallelism(n int) { Default.SetParallelism(n) }

// Parallelism returns the Default session's worker-pool size.
func Parallelism() int { return Default.Parallelism() }

// EngineStats snapshots the Default session's counters.
func EngineStats() engine.Stats { return Default.EngineStats() }

// ResetEngineCache drops the Default session's cached cell results
// (tests only).
func ResetEngineCache() { Default.ResetCache() }
