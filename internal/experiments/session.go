package experiments

import "bufferqoe/internal/engine"

// Session owns one cell-execution engine: a worker pool, a result
// cache, and the hit/miss counters. Everything the package can run —
// experiment grids, probes, sweeps — runs *on* a session, so
// independent callers (a service handling many users, a test that
// wants a cold cache) get isolated state instead of sharing mutable
// package globals. The package-level Run/Measure* functions operate
// on Default, preserving the original single-engine behavior.
type Session struct {
	eng *engine.Engine
}

// NewSession creates a session with its own engine; workers <= 0 uses
// GOMAXPROCS. Each worker gets a reusable CellScratch (monitors,
// media/content caches) recycled between the cells it computes.
func NewSession(workers int) *Session {
	eng := engine.New(workers)
	eng.SetScratch(func() engine.Scratch { return newCellScratch() })
	return &Session{eng: eng}
}

// Default is the process-wide session behind the package-level
// functions. Cells submitted through it are shared across every
// caller that uses the package-level API.
var Default = NewSession(0)

// SetParallelism resizes the session's cell worker pool; n <= 0 means
// GOMAXPROCS. Parallelism never changes results: each cell's seed is
// derived from its canonical spec, not from scheduling order.
func (s *Session) SetParallelism(n int) { s.eng.SetWorkers(n) }

// Parallelism returns the session's worker-pool size.
func (s *Session) Parallelism() int { return s.eng.Workers() }

// EngineStats snapshots the session's cell cache/pool counters.
func (s *Session) EngineStats() engine.Stats { return s.eng.Stats() }

// ResetCache drops the session's memoized cell results.
func (s *Session) ResetCache() { s.eng.ResetCache() }

// runOne executes a single cell synchronously (probes and small
// grids); batches should go through runCells.
func (s *Session) runOne(t engine.Task) any { return s.eng.Do(t.Spec, t.Fn) }

// runCells fans a batch of jobs out across the engine and hands each
// value back with its grid coordinates.
func (s *Session) runCells(jobs []cellJob, each func(row, col string, v any)) {
	tasks := make([]engine.Task, len(jobs))
	for i, j := range jobs {
		tasks[i] = j.task
	}
	for i, v := range s.eng.RunBatch(tasks) {
		each(jobs[i].row, jobs[i].col, v)
	}
}

// SetParallelism resizes the Default session's worker pool.
func SetParallelism(n int) { Default.SetParallelism(n) }

// Parallelism returns the Default session's worker-pool size.
func Parallelism() int { return Default.Parallelism() }

// EngineStats snapshots the Default session's counters.
func EngineStats() engine.Stats { return Default.EngineStats() }

// ResetEngineCache drops the Default session's cached cell results
// (tests only).
func ResetEngineCache() { Default.ResetCache() }
