package experiments

import (
	"fmt"

	"bufferqoe/internal/qoe"
	"bufferqoe/internal/sizing"
	"bufferqoe/internal/stats"
	"bufferqoe/internal/testbed"
)

// accessBufferCols renders the Table 2 access buffer sizes as column
// labels.
func accessBufferCols() []string {
	out := make([]string, len(sizing.AccessBufferSizes))
	for i, b := range sizing.AccessBufferSizes {
		out[i] = fmt.Sprintf("%d", b)
	}
	return out
}

func backboneBufferCols() []string {
	out := make([]string, len(sizing.BackboneBufferSizes))
	for i, b := range sizing.BackboneBufferSizes {
		out[i] = fmt.Sprintf("%d", b)
	}
	return out
}

// table2 regenerates Table 2 by computation (buffer size <-> maximum
// queueing delay).
func table2(s *Session, o Options) (*Result, error) {
	g := NewGrid("Table 2: buffer sizes and maximum queueing delays",
		[]string{"access uplink (1 Mbit/s)", "access downlink (16 Mbit/s)", "backbone (OC3)"},
		[]string{"buffers (pkts)", "delays (ms)", "schemes"})
	format := func(rows []sizing.Table2Row) (string, string, string) {
		var bufs, delays, schemes []string
		for _, r := range rows {
			bufs = append(bufs, fmt.Sprintf("%d", r.Packets))
			delays = append(delays, fmt.Sprintf("%.1f", r.Delay.Seconds()*1000))
			if r.Scheme != "" {
				schemes = append(schemes, fmt.Sprintf("%d=%s", r.Packets, r.Scheme))
			}
		}
		return join(bufs), join(delays), join(schemes)
	}
	for row, rows := range map[string][]sizing.Table2Row{
		"access uplink (1 Mbit/s)":    sizing.AccessUplinkTable2(),
		"access downlink (16 Mbit/s)": sizing.AccessDownlinkTable2(),
		"backbone (OC3)":              sizing.BackboneTable2(),
	} {
		b, d, s := format(rows)
		g.Set(row, "buffers (pkts)", Cell{Text: b})
		g.Set(row, "delays (ms)", Cell{Text: d})
		g.Set(row, "schemes", Cell{Text: s})
	}
	return &Result{ID: "table2", Grids: []*Grid{g}}, nil
}

func join(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += " "
		}
		out += x
	}
	return out
}

// table1 reruns every Table 1 workload at BDP buffers and reports the
// measured utilization, loss and concurrency.
func table1(s *Session, o Options) (*Result, error) {
	cols := []string{"conc flows", "util up %", "util down %", "sd up", "sd down", "loss up %", "loss down %"}
	var rows []string
	var jobs []cellJob
	for _, name := range []string{"short-few", "short-many", "long-few", "long-many"} {
		for _, dir := range []testbed.Direction{testbed.DirUp, testbed.DirBidir, testbed.DirDown} {
			row := fmt.Sprintf("access/%s/%s", name, dir)
			rows = append(rows, row)
			jobs = append(jobs, cellJob{bgAccessTask(o, name, dir, 8, 64), row, ""})
		}
	}
	g := NewGrid("Table 1 (access): measured workload characteristics at BDP buffers", rows, cols)
	s.runCells(jobs, func(row, _ string, v any) {
		m := v.(bgMetrics)
		g.Set(row, "conc flows", Cell{Value: m.Conc})
		g.Set(row, "util up %", Cell{Value: m.UtilUpPct})
		g.Set(row, "util down %", Cell{Value: m.UtilDownPct})
		g.Set(row, "sd up", Cell{Value: m.SdUp})
		g.Set(row, "sd down", Cell{Value: m.SdDown})
		g.Set(row, "loss up %", Cell{Value: m.LossUpPct})
		g.Set(row, "loss down %", Cell{Value: m.LossDownPct})
	})

	bbNames := []string{"short-low", "short-medium", "short-high", "short-overload", "long"}
	var bbRows []string
	var bbJobs []cellJob
	for _, name := range bbNames {
		row := "backbone/" + name
		bbRows = append(bbRows, row)
		bbJobs = append(bbJobs, cellJob{bgBackboneTask(o, name, 749), row, ""})
	}
	g2 := NewGrid("Table 1 (backbone): measured workload characteristics at BDP buffers",
		bbRows, []string{"conc flows", "util %", "sd", "loss %"})
	s.runCells(bbJobs, func(row, _ string, v any) {
		m := v.(bgMetrics)
		g2.Set(row, "conc flows", Cell{Value: m.Conc})
		g2.Set(row, "util %", Cell{Value: m.UtilDownPct})
		g2.Set(row, "sd", Cell{Value: m.SdDown})
		g2.Set(row, "loss %", Cell{Value: m.LossDownPct})
	})
	return &Result{ID: "table1", Grids: []*Grid{g, g2}}, nil
}

// fig4 regenerates the Figure 4 mean-queueing-delay heatmaps for one
// workload direction: "a" = downstream only, "b" = bidirectional,
// "c" = upstream only.
func fig4(s *Session, o Options, variant string) (*Result, error) {
	dir := map[string]testbed.Direction{
		"a": testbed.DirDown, "b": testbed.DirBidir, "c": testbed.DirUp,
	}[variant]
	scenarios := []string{"long-few", "long-many", "short-few", "short-many"}
	var rows []string
	for _, half := range []string{"uplink", "downlink"} {
		for _, s := range scenarios {
			rows = append(rows, half+"/"+s)
		}
	}
	g := NewGrid(fmt.Sprintf("Figure 4%s: mean queueing delay (ms), %s workload", variant, dir),
		rows, accessBufferCols())
	var jobs []cellJob
	for _, buf := range sizing.AccessBufferSizes {
		col := fmt.Sprintf("%d", buf)
		for _, s := range scenarios {
			jobs = append(jobs, cellJob{bgAccessTask(o, s, dir, buf, buf), s, col})
		}
	}
	s.runCells(jobs, func(row, col string, v any) {
		m := v.(bgMetrics)
		g.Set("uplink/"+row, col, Cell{
			Value: m.DelayUpMs,
			Class: qoe.ClassifyDelay(msToDuration(m.DelayUpMs)).String(),
		})
		g.Set("downlink/"+row, col, Cell{
			Value: m.DelayDownMs,
			Class: qoe.ClassifyDelay(msToDuration(m.DelayDownMs)).String(),
		})
	})
	return &Result{ID: "fig4" + variant, Grids: []*Grid{g}}, nil
}

// fig5 regenerates the Figure 5 utilization boxplots: bidirectional
// long workload (8 uplink, 64 downlink flows) across buffer sizes.
// Its cells are the same background runs as fig4b's long-many column,
// so a full-suite run pays for them once.
func fig5(s *Session, o Options) (*Result, error) {
	cols := accessBufferCols()
	rows := []string{
		"downlink median", "downlink q1", "downlink q3", "downlink min", "downlink max",
		"uplink median", "uplink q1", "uplink q3", "uplink min", "uplink max",
	}
	g := NewGrid("Figure 5: link utilization (%) under bidirectional long-many workload", rows, cols)
	var jobs []cellJob
	for bi, buf := range sizing.AccessBufferSizes {
		jobs = append(jobs, cellJob{bgAccessTask(o, "long-many", testbed.DirBidir, buf, buf), "", cols[bi]})
	}
	s.runCells(jobs, func(_, col string, v any) {
		m := v.(bgMetrics)
		set := func(prefix string, b stats.Boxplot) {
			g.Set(prefix+" median", col, Cell{Value: b.Median})
			g.Set(prefix+" q1", col, Cell{Value: b.Q1})
			g.Set(prefix+" q3", col, Cell{Value: b.Q3})
			g.Set(prefix+" min", col, Cell{Value: b.Min})
			g.Set(prefix+" max", col, Cell{Value: b.Max})
		}
		set("downlink", m.DownBox)
		set("uplink", m.UpBox)
	})
	return &Result{ID: "fig5", Grids: []*Grid{g}}, nil
}
