package experiments

import (
	"testing"

	"bufferqoe/internal/testbed"
)

// TestDeterminismAcrossSchedules is the engine's core guarantee made
// end-to-end: a representative experiment renders bit-identically
// when its cells run sequentially, fanned out across workers, and
// again from the warm cache.
func TestDeterminismAcrossSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short (race CI) mode")
	}
	o := tiny()
	defer SetParallelism(0)

	SetParallelism(1)
	ResetEngineCache()
	r, err := Run("fig7b", o)
	if err != nil {
		t.Fatal(err)
	}
	sequential := r.Render()

	SetParallelism(8)
	ResetEngineCache()
	r, err = Run("fig7b", o)
	if err != nil {
		t.Fatal(err)
	}
	parallel := r.Render()

	if sequential != parallel {
		t.Fatalf("parallel run differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			sequential, parallel)
	}

	// Third run, warm cache: every cell a hit, output unchanged.
	before := EngineStats()
	r, err = Run("fig7b", o)
	if err != nil {
		t.Fatal(err)
	}
	after := EngineStats()
	if warm := r.Render(); warm != sequential {
		t.Fatalf("warm-cache run differs from cold run:\n--- cold ---\n%s\n--- warm ---\n%s",
			sequential, warm)
	}
	if after.Misses != before.Misses {
		t.Fatalf("warm-cache run simulated %d new cells", after.Misses-before.Misses)
	}
	if after.Hits <= before.Hits {
		t.Fatal("warm-cache run recorded no cache hits")
	}
}

// TestCrossExperimentCellSharing asserts the cache works across
// experiment boundaries: the three Figure 1 panels share one CDN
// population cell, so running fig1b after fig1a must simulate
// nothing new.
func TestCrossExperimentCellSharing(t *testing.T) {
	o := tiny()
	ResetEngineCache()
	if _, err := Run("fig1a", o); err != nil {
		t.Fatal(err)
	}
	mid := EngineStats()
	if mid.Misses == 0 {
		t.Fatal("fig1a simulated no cells")
	}
	if _, err := Run("fig1b", o); err != nil {
		t.Fatal(err)
	}
	after := EngineStats()
	if after.Misses != mid.Misses {
		t.Fatalf("fig1b re-simulated %d cells fig1a already computed", after.Misses-mid.Misses)
	}
	if after.Hits <= mid.Hits {
		t.Fatal("fig1b recorded no cache hits")
	}
}

// TestProbeMatchesGrid asserts that a Measure* probe of a
// configuration an experiment grid visited returns the grid's exact
// number — probes and grids submit the same canonical cell specs.
func TestProbeMatchesGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short (race CI) mode")
	}
	o := tiny()
	ResetEngineCache()
	r, err := Run("fig7b", o)
	if err != nil {
		t.Fatal(err)
	}
	grid := r.Grids[0].Get("user-talks/long-many", "256").Value
	_, talk := MeasureVoIPAccess("long-many", testbed.DirUp, 256, o)
	if talk != grid {
		t.Fatalf("probe talk MOS %v != grid cell %v", talk, grid)
	}
}
