package experiments

import (
	"time"

	"bufferqoe/internal/testbed"
	"bufferqoe/internal/video"
)

// The Measure* probes answer one configuration question at a time.
// They submit the same canonical cell specs as the experiment grids,
// so a probe of a configuration an experiment already visited is a
// cache hit, and a probe's numbers always agree with the grids'.
// Each probe exists as a Session method and as a package-level
// function operating on the Default session.

// MeasureVoIPAccess runs one access VoIP cell (Reps bidirectional
// calls under the named workload/direction at the given buffer size)
// and returns the median listen and talk MOS.
func (s *Session) MeasureVoIPAccess(scenario string, dir testbed.Direction, buffer int, o Options) (listen, talk float64) {
	p := s.voipAccessCell(s.opts(o), scenario, dir, buffer, accessVariant{})
	return p.Listen, p.Talk
}

// MeasureVoIPAccess probes the Default session.
func MeasureVoIPAccess(scenario string, dir testbed.Direction, buffer int, o Options) (listen, talk float64) {
	return Default.MeasureVoIPAccess(scenario, dir, buffer, o)
}

// MeasureVoIPBackbone runs one backbone VoIP cell and returns the
// median MOS.
func (s *Session) MeasureVoIPBackbone(scenario string, buffer int, o Options) float64 {
	return s.runOne(voipBackboneTask(s.opts(o), scenario, buffer, backboneVariant{})).(float64)
}

// MeasureVoIPBackbone probes the Default session.
func MeasureVoIPBackbone(scenario string, buffer int, o Options) float64 {
	return Default.MeasureVoIPBackbone(scenario, buffer, o)
}

// MeasureWebAccess runs one access web cell and returns the median
// page load time.
func (s *Session) MeasureWebAccess(scenario string, dir testbed.Direction, buffer int, o Options) time.Duration {
	return s.webAccessCell(s.opts(o), scenario, dir, buffer, accessVariant{}, 0)
}

// MeasureWebAccess probes the Default session.
func MeasureWebAccess(scenario string, dir testbed.Direction, buffer int, o Options) time.Duration {
	return Default.MeasureWebAccess(scenario, dir, buffer, o)
}

// MeasureWebBackbone runs one backbone web cell and returns the median
// page load time.
func (s *Session) MeasureWebBackbone(scenario string, buffer int, o Options) time.Duration {
	return s.runOne(webBackboneTask(s.opts(o), scenario, buffer, backboneVariant{})).(time.Duration)
}

// MeasureWebBackbone probes the Default session.
func MeasureWebBackbone(scenario string, buffer int, o Options) time.Duration {
	return Default.MeasureWebBackbone(scenario, buffer, o)
}

// MeasureVideoAccess streams clip C at the given profile over the
// access testbed (download congestion) and returns the median SSIM.
func (s *Session) MeasureVideoAccess(scenario string, profile video.Profile, buffer int, o Options) float64 {
	t := videoAccessTask(s.opts(o), scenario, testbed.DirDown, video.ClipC, profile, buffer, accessVariant{})
	return s.runOne(t).(videoScore).SSIM
}

// MeasureVideoAccess probes the Default session.
func MeasureVideoAccess(scenario string, profile video.Profile, buffer int, o Options) float64 {
	return Default.MeasureVideoAccess(scenario, profile, buffer, o)
}

// MeasureVideoBackbone streams clip C over the backbone testbed and
// returns the median SSIM.
func (s *Session) MeasureVideoBackbone(scenario string, profile video.Profile, buffer int, o Options) float64 {
	t := videoBackboneTask(s.opts(o), scenario, video.ClipC, profile, video.RecoveryNone, buffer, backboneVariant{})
	return s.runOne(t).(videoScore).SSIM
}

// MeasureVideoBackbone probes the Default session.
func MeasureVideoBackbone(scenario string, profile video.Profile, buffer int, o Options) float64 {
	return Default.MeasureVideoBackbone(scenario, profile, buffer, o)
}
