package experiments

import (
	"time"

	"bufferqoe/internal/testbed"
	"bufferqoe/internal/video"
)

// The Measure* probes answer one configuration question at a time.
// They submit the same canonical cell specs as the experiment grids,
// so a probe of a configuration an experiment already visited is a
// cache hit, and a probe's numbers always agree with the grids'.

// MeasureVoIPAccess runs one access VoIP cell (Reps bidirectional
// calls under the named workload/direction at the given buffer size)
// and returns the median listen and talk MOS.
func MeasureVoIPAccess(scenario string, dir testbed.Direction, buffer int, o Options) (listen, talk float64) {
	p := voipAccessCell(o.withDefaults(), scenario, dir, buffer, accessVariant{})
	return p.Listen, p.Talk
}

// MeasureVoIPBackbone runs one backbone VoIP cell and returns the
// median MOS.
func MeasureVoIPBackbone(scenario string, buffer int, o Options) float64 {
	return runOne(voipBackboneTask(o.withDefaults(), scenario, buffer)).(float64)
}

// MeasureWebAccess runs one access web cell and returns the median
// page load time.
func MeasureWebAccess(scenario string, dir testbed.Direction, buffer int, o Options) time.Duration {
	return webAccessCell(o.withDefaults(), scenario, dir, buffer, accessVariant{}, 0)
}

// MeasureWebBackbone runs one backbone web cell and returns the median
// page load time.
func MeasureWebBackbone(scenario string, buffer int, o Options) time.Duration {
	return runOne(webBackboneTask(o.withDefaults(), scenario, buffer)).(time.Duration)
}

// MeasureVideoAccess streams clip C at the given profile over the
// access testbed (download congestion) and returns the median SSIM.
func MeasureVideoAccess(scenario string, profile video.Profile, buffer int, o Options) float64 {
	t := videoAccessTask(o.withDefaults(), scenario, video.ClipC, profile, buffer)
	return runOne(t).(videoScore).SSIM
}

// MeasureVideoBackbone streams clip C over the backbone testbed and
// returns the median SSIM.
func MeasureVideoBackbone(scenario string, profile video.Profile, buffer int, o Options) float64 {
	t := videoBackboneTask(o.withDefaults(), scenario, video.ClipC, profile, video.RecoveryNone, buffer)
	return runOne(t).(videoScore).SSIM
}
