package experiments

import (
	"time"

	"bufferqoe/internal/testbed"
	"bufferqoe/internal/video"
	"bufferqoe/internal/web"
)

// MeasureVoIPAccess runs one access VoIP cell (Reps bidirectional
// calls under the named workload/direction at the given buffer size)
// and returns the median listen and talk MOS.
func MeasureVoIPAccess(scenario string, dir testbed.Direction, buffer int, o Options) (listen, talk float64) {
	return voipAccessCell(scenario, dir, buffer, o.withDefaults())
}

// MeasureVoIPBackbone runs one backbone VoIP cell and returns the
// median MOS.
func MeasureVoIPBackbone(scenario string, buffer int, o Options) float64 {
	return voipBackboneCell(scenario, buffer, o.withDefaults())
}

// MeasureWebAccess runs one access web cell and returns the median
// page load time.
func MeasureWebAccess(scenario string, dir testbed.Direction, buffer int, o Options) time.Duration {
	o = o.withDefaults()
	a := testbed.NewAccess(testbed.Config{BufferUp: buffer, BufferDown: buffer, Seed: o.Seed})
	if scenario != "noBG" {
		a.StartWorkload(testbed.AccessScenario(scenario, dir))
	}
	web.RegisterServer(a.MediaServerTCP, web.Port)
	return webReps(a.Eng, o, func(done func(web.Result)) {
		web.Fetch(a.MediaClientTCP, a.MediaServer.Addr(web.Port), 60*time.Second, done)
	})
}

// MeasureWebBackbone runs one backbone web cell and returns the median
// page load time.
func MeasureWebBackbone(scenario string, buffer int, o Options) time.Duration {
	o = o.withDefaults()
	b := testbed.NewBackbone(testbed.Config{BufferDown: buffer, Seed: o.Seed})
	if scenario != "noBG" {
		b.StartWorkload(testbed.BackboneScenario(scenario))
	}
	web.RegisterServer(b.MediaServerTCP, web.Port)
	return webReps(b.Eng, o, func(done func(web.Result)) {
		web.Fetch(b.MediaClientTCP, b.MediaServer.Addr(web.Port), 60*time.Second, done)
	})
}

// MeasureVideoAccess streams clip C at the given profile over the
// access testbed (download congestion) and returns the median SSIM.
func MeasureVideoAccess(scenario string, profile video.Profile, buffer int, o Options) float64 {
	o = o.withDefaults()
	src := video.NewSource(video.ClipC, profile, o.ClipSeconds)
	a := testbed.NewAccess(testbed.Config{BufferUp: buffer, BufferDown: buffer, Seed: o.Seed})
	if scenario != "noBG" {
		a.StartWorkload(testbed.AccessScenario(scenario, testbed.DirDown))
	}
	return videoReps(a.Eng, o, time.Duration(o.ClipSeconds)*time.Second, func(done func(video.Result)) {
		video.Start(a.MediaServer, a.MediaClient, src, video.Config{Smooth: true, Seed: o.Seed}, done)
	})
}

// MeasureVideoBackbone streams clip C over the backbone testbed and
// returns the median SSIM.
func MeasureVideoBackbone(scenario string, profile video.Profile, buffer int, o Options) float64 {
	o = o.withDefaults()
	src := video.NewSource(video.ClipC, profile, o.ClipSeconds)
	b := testbed.NewBackbone(testbed.Config{BufferDown: buffer, Seed: o.Seed})
	if scenario != "noBG" {
		b.StartWorkload(testbed.BackboneScenario(scenario))
	}
	return videoReps(b.Eng, o, time.Duration(o.ClipSeconds)*time.Second, func(done func(video.Result)) {
		video.Start(b.MediaServer, b.MediaClient, src, video.Config{Smooth: true, Seed: o.Seed}, done)
	})
}
