package experiments

import (
	"fmt"
	"time"

	"bufferqoe/internal/aqm"
	"bufferqoe/internal/netem"
	"bufferqoe/internal/qoe"
	"bufferqoe/internal/sim"
	"bufferqoe/internal/sizing"
	"bufferqoe/internal/tcp"
	"bufferqoe/internal/testbed"
	"bufferqoe/internal/video"
	"bufferqoe/internal/web"
)

// ablationAQM answers the question the bufferbloat debate asks of the
// paper: how much of the QoE lost to a bloated, sustainably filled
// uplink buffer does AQM recover? It reruns the paper's worst VoIP
// case (Figure 7b, 256-packet uplink, upstream long-many workload)
// with the drop-tail queue swapped for each post-bufferbloat
// discipline: CoDel (the AQM the paper's §1 cites), RED and its
// self-tuning ARED variant, PIE (the DOCSIS answer), and FQ-CoDel
// (the home-router answer, adding flow isolation).
func ablationAQM(o Options) (*Result, error) {
	queues := []struct {
		name    string
		factory testbed.QueueFactory
	}{
		{"drop-tail", nil},
		{"codel", func(capPkts int) netem.Queue {
			return aqm.NewCoDelForRate(capPkts, testbed.AccessUpRate)
		}},
		{"red", func(capPkts int) netem.Queue { return aqm.NewRED(capPkts, sim.NewRNG(o.Seed, "red")) }},
		{"ared", func(capPkts int) netem.Queue { return aqm.NewARED(capPkts, sim.NewRNG(o.Seed, "ared")) }},
		{"pie", func(capPkts int) netem.Queue { return aqm.NewPIE(capPkts, sim.NewRNG(o.Seed, "pie")) }},
		{"fq-codel", func(capPkts int) netem.Queue {
			return aqm.NewFQCoDelForRate(capPkts, testbed.AccessUpRate)
		}},
	}
	cols := make([]string, 0, len(queues))
	for _, q := range queues {
		cols = append(cols, q.name)
	}
	g := NewGrid("Ablation: AQM at a bloated (256-pkt) uplink, upstream long-many workload",
		[]string{"talk MOS", "listen MOS"}, cols)
	for _, q := range queues {
		oq := o
		listen, talk := voipAccessCellQueue("long-many", testbed.DirUp, 256, oq, q.factory)
		g.Set("talk MOS", q.name, Cell{Value: talk, Class: string(qoe.VoIPSatisfaction(talk))})
		g.Set("listen MOS", q.name, Cell{Value: listen, Class: string(qoe.VoIPSatisfaction(listen))})
	}
	return &Result{ID: "abl-aqm", Grids: []*Grid{g}}, nil
}

// voipAccessCellQueue is voipAccessCell with a custom uplink queue
// discipline.
func voipAccessCellQueue(name string, dir testbed.Direction, buf int, o Options, qf testbed.QueueFactory) (listen, talk float64) {
	a := testbed.NewAccess(testbed.Config{
		BufferUp: buf, BufferDown: buf, Seed: o.Seed, UpQueue: qf,
	})
	if name != "noBG" {
		a.StartWorkload(testbed.AccessScenario(name, dir))
	}
	return runVoIPPair(a, o)
}

// ablationCC revisits the paper's Section 5.2 claim that the choice of
// background congestion control (Reno vs CUBIC) "does not
// substantially impact the QoE results": same cell, both algorithms.
func ablationCC(o Options) (*Result, error) {
	g := NewGrid("Ablation: background congestion control (access, 64-pkt buffers, bidir long-few)",
		[]string{"listen MOS", "talk MOS"}, []string{"cubic", "reno"})
	algos := map[string]func() tcp.CongestionControl{
		"cubic": tcp.NewCubic,
		"reno":  tcp.NewReno,
	}
	for cc, factory := range algos {
		a := testbed.NewAccess(testbed.Config{
			BufferUp: 64, BufferDown: 64, Seed: o.Seed, CC: factory,
		})
		a.StartWorkload(testbed.AccessScenario("long-few", testbed.DirBidir))
		listen, talk := runVoIPPair(a, o)
		g.Set("listen MOS", cc, Cell{Value: listen, Class: string(qoe.VoIPSatisfaction(listen))})
		g.Set("talk MOS", cc, Cell{Value: talk, Class: string(qoe.VoIPSatisfaction(talk))})
	}
	return &Result{ID: "abl-ccalgo", Grids: []*Grid{g}}, nil
}

// ablationLoadAware evaluates the paper's Section 10 suggestion of
// load-dependent buffer sizing on WebQoE: static BDP vs static bloat
// vs the load-aware choice under moderate and high load.
func ablationLoadAware(o Options) (*Result, error) {
	bdp := 64
	scenarios := []struct {
		name string
		util float64 // a-priori utilization class for the scheme
	}{
		{"short-few", 0.45},
		{"long-many", 0.99},
	}
	g := NewGrid("Ablation: load-aware buffer sizing (access downlink, WebQoE)",
		[]string{"short-few", "long-many"},
		[]string{"bdp", "bloat(10x)", "load-aware"})
	model := qoe.AccessWebModel()
	for _, sc := range scenarios {
		n := 24 // rough concurrent-flow estimate for the scheme
		choices := map[string]int{
			"bdp":        bdp,
			"bloat(10x)": sizing.BloatedPackets(bdp),
			"load-aware": sizing.LoadAware(bdp, n, sc.util),
		}
		for label, buf := range choices {
			a := testbed.NewAccess(testbed.Config{BufferUp: 8, BufferDown: buf, Seed: o.Seed})
			a.StartWorkload(testbed.AccessScenario(sc.name, testbed.DirDown))
			web.RegisterServer(a.MediaServerTCP, web.Port)
			plt := webReps(a.Eng, o, func(done func(web.Result)) {
				web.Fetch(a.MediaClientTCP, a.MediaServer.Addr(web.Port), 60*time.Second, done)
			})
			mos := model.MOS(plt)
			g.Set(sc.name, label, Cell{
				Value: mos,
				Text:  fmt.Sprintf("MOS %.1f @%dp", mos, buf),
				Class: string(qoe.Rate(mos)),
			})
		}
	}
	return &Result{ID: "abl-loadaware", Grids: []*Grid{g}}, nil
}

// ablationSmoothing quantifies Section 8.1's point that unsmoothed
// VLC-style frame bursts overflow access buffers even on an idle
// link.
func ablationSmoothing(o Options) (*Result, error) {
	g := NewGrid("Ablation: video sender smoothing (access, idle link)",
		[]string{"SSIM", "loss %"}, []string{"smooth-8pkt", "burst-8pkt", "smooth-64pkt", "burst-64pkt"})
	for _, buf := range []int{8, 64} {
		for _, smooth := range []bool{true, false} {
			a := testbed.NewAccess(testbed.Config{BufferUp: buf, BufferDown: buf, Seed: o.Seed})
			src := video.NewSource(video.ClipC, video.SD, o.ClipSeconds)
			var got video.Result
			video.Start(a.MediaServer, a.MediaClient, src,
				video.Config{Smooth: smooth, Seed: o.Seed},
				func(r video.Result) { got = r; a.Eng.Halt() })
			a.Eng.RunFor(cellCap)
			label := map[bool]string{true: "smooth", false: "burst"}[smooth]
			col := fmt.Sprintf("%s-%dpkt", label, buf)
			g.Set("SSIM", col, Cell{Value: got.MeanSSIM})
			g.Set("loss %", col, Cell{Value: got.LossPct()})
		}
	}
	return &Result{ID: "abl-smoothing", Grids: []*Grid{g}}, nil
}
