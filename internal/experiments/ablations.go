package experiments

import (
	"fmt"
	"time"

	"bufferqoe/internal/aqm"
	"bufferqoe/internal/netem"
	"bufferqoe/internal/qoe"
	"bufferqoe/internal/sim"
	"bufferqoe/internal/sizing"
	"bufferqoe/internal/tcp"
	"bufferqoe/internal/testbed"
)

// ablationAQM answers the question the bufferbloat debate asks of the
// paper: how much of the QoE lost to a bloated, sustainably filled
// uplink buffer does AQM recover? It reruns the paper's worst VoIP
// case (Figure 7b, 256-packet uplink, upstream long-many workload)
// with the drop-tail queue swapped for each post-bufferbloat
// discipline: CoDel (the AQM the paper's §1 cites), RED and its
// self-tuning ARED variant, PIE (the DOCSIS answer), and FQ-CoDel
// (the home-router answer, adding flow isolation).
func ablationAQM(s *Session, o Options) (*Result, error) {
	queues := []struct {
		name    string
		factory queueFactory
	}{
		{"drop-tail", nil},
		{"codel", func(capPkts int, _ uint64) netem.Queue {
			return aqm.NewCoDelForRate(capPkts, testbed.AccessUpRate)
		}},
		{"red", func(capPkts int, seed uint64) netem.Queue {
			return aqm.NewRED(capPkts, sim.NewRNG(seed, "red"))
		}},
		{"ared", func(capPkts int, seed uint64) netem.Queue {
			return aqm.NewARED(capPkts, sim.NewRNG(seed, "ared"))
		}},
		{"pie", func(capPkts int, seed uint64) netem.Queue {
			return aqm.NewPIE(capPkts, sim.NewRNG(seed, "pie"))
		}},
		{"fq-codel", func(capPkts int, _ uint64) netem.Queue {
			return aqm.NewFQCoDelForRate(capPkts, testbed.AccessUpRate)
		}},
	}
	cols := make([]string, 0, len(queues))
	var jobs []cellJob
	for _, q := range queues {
		cols = append(cols, q.name)
		v := accessVariant{upQueue: q.factory}
		if q.factory != nil {
			v.tag = "queue=" + q.name
		}
		jobs = append(jobs, cellJob{voipAccessTask(o, "long-many", testbed.DirUp, 256, v), "", q.name})
	}
	g := NewGrid("Ablation: AQM at a bloated (256-pkt) uplink, upstream long-many workload",
		[]string{"talk MOS", "listen MOS"}, cols)
	s.runCells(jobs, func(_, col string, v any) {
		p := v.(voipScore)
		g.Set("talk MOS", col, Cell{Value: p.Talk, Class: string(qoe.VoIPSatisfaction(p.Talk))})
		g.Set("listen MOS", col, Cell{Value: p.Listen, Class: string(qoe.VoIPSatisfaction(p.Listen))})
	})
	return &Result{ID: "abl-aqm", Grids: []*Grid{g}}, nil
}

// ablationCC revisits the paper's Section 5.2 claim that the choice of
// background congestion control (Reno vs CUBIC) "does not
// substantially impact the QoE results": same cell, both algorithms.
// CUBIC is the access testbed's default, so its cell is the cached
// fig7c long-few/64 cell.
func ablationCC(s *Session, o Options) (*Result, error) {
	g := NewGrid("Ablation: background congestion control (access, 64-pkt buffers, bidir long-few)",
		[]string{"listen MOS", "talk MOS"}, []string{"cubic", "reno"})
	variants := map[string]accessVariant{
		"cubic": {},
		"reno":  {tag: "cc=reno", cc: tcp.NewReno},
	}
	var jobs []cellJob
	for _, cc := range []string{"cubic", "reno"} {
		jobs = append(jobs, cellJob{voipAccessTask(o, "long-few", testbed.DirBidir, 64, variants[cc]), "", cc})
	}
	s.runCells(jobs, func(_, col string, v any) {
		p := v.(voipScore)
		g.Set("listen MOS", col, Cell{Value: p.Listen, Class: string(qoe.VoIPSatisfaction(p.Listen))})
		g.Set("talk MOS", col, Cell{Value: p.Talk, Class: string(qoe.VoIPSatisfaction(p.Talk))})
	})
	return &Result{ID: "abl-ccalgo", Grids: []*Grid{g}}, nil
}

// ablationLoadAware evaluates the paper's Section 10 suggestion of
// load-dependent buffer sizing on WebQoE: static BDP vs static bloat
// vs the load-aware choice under moderate and high load.
func ablationLoadAware(s *Session, o Options) (*Result, error) {
	bdp := 64
	scenarios := []struct {
		name string
		util float64 // a-priori utilization class for the scheme
	}{
		{"short-few", 0.45},
		{"long-many", 0.99},
	}
	g := NewGrid("Ablation: load-aware buffer sizing (access downlink, WebQoE)",
		[]string{"short-few", "long-many"},
		[]string{"bdp", "bloat(10x)", "load-aware"})
	model := qoe.AccessWebModel()
	labels := []string{"bdp", "bloat(10x)", "load-aware"}
	var jobs []cellJob
	chosen := map[string]int{}
	for _, sc := range scenarios {
		n := 24 // rough concurrent-flow estimate for the scheme
		choices := map[string]int{
			"bdp":        bdp,
			"bloat(10x)": sizing.BloatedPackets(bdp),
			"load-aware": sizing.LoadAware(bdp, n, sc.util),
		}
		for _, label := range labels {
			buf := choices[label]
			jobs = append(jobs, cellJob{webAccessTask(o, sc.name, testbed.DirDown, buf,
				accessVariant{bufUp: 8}, 0), sc.name, label})
			chosen[sc.name+"/"+label] = buf
		}
	}
	s.runCells(jobs, func(row, col string, v any) {
		plt := v.(time.Duration)
		mos := model.MOS(plt)
		g.Set(row, col, Cell{
			Value: mos,
			Text:  fmt.Sprintf("MOS %.1f @%dp", mos, chosen[row+"/"+col]),
			Class: string(qoe.Rate(mos)),
		})
	})
	return &Result{ID: "abl-loadaware", Grids: []*Grid{g}}, nil
}

// ablationSmoothing quantifies Section 8.1's point that unsmoothed
// VLC-style frame bursts overflow access buffers even on an idle
// link.
func ablationSmoothing(s *Session, o Options) (*Result, error) {
	g := NewGrid("Ablation: video sender smoothing (access, idle link)",
		[]string{"SSIM", "loss %"}, []string{"smooth-8pkt", "burst-8pkt", "smooth-64pkt", "burst-64pkt"})
	var jobs []cellJob
	for _, buf := range []int{8, 64} {
		for _, smooth := range []bool{true, false} {
			label := map[bool]string{true: "smooth", false: "burst"}[smooth]
			jobs = append(jobs, cellJob{smoothingTask(o, buf, smooth), "", fmt.Sprintf("%s-%dpkt", label, buf)})
		}
	}
	s.runCells(jobs, func(_, col string, v any) {
		sc := v.(smoothingScore)
		g.Set("SSIM", col, Cell{Value: sc.SSIM})
		g.Set("loss %", col, Cell{Value: sc.LossPct})
	})
	return &Result{ID: "abl-smoothing", Grids: []*Grid{g}}, nil
}
