package experiments

import (
	"testing"
	"time"

	"bufferqoe/internal/engine"
	"bufferqoe/internal/testbed"
)

// TestEngineVersionUnchangedByWifiAxes pins the cache compatibility
// contract of the wifi/reorder/BBR axes: they extend the canonical
// spec encoding with new fragments instead of changing the meaning of
// existing cells, so every result persisted before the axes existed
// is still valid and engine.Version must not have been bumped.
func TestEngineVersionUnchangedByWifiAxes(t *testing.T) {
	if engine.Version != "1" {
		t.Fatalf("engine.Version = %q; the wifi/BBR axes must not invalidate stored wired cells", engine.Version)
	}
}

// TestLinkTagWifiReorderEncoding pins the canonical link encodings:
// the default link stays "", pre-wifi wired encodings are
// byte-identical to what older stores recorded, and the wifi/reorder
// fragments appear exactly when active with defaults filled — the
// injectivity the cell cache and persistent store key on.
func TestLinkTagWifiReorderEncoding(t *testing.T) {
	cases := []struct {
		name string
		lp   testbed.LinkParams
		want string
	}{
		{"default", testbed.LinkParams{}, ""},
		{"default-spelled-out", testbed.LinkParams{
			UpRate: testbed.AccessUpRate, DownRate: testbed.AccessDownRate,
			ClientDelay: testbed.AccessClientDelay, ServerDelay: testbed.AccessServerDelay,
		}, ""},
		{"wired-custom", testbed.LinkParams{UpRate: 1e9, DownRate: 1e9,
			ClientDelay: 2 * time.Millisecond, ServerDelay: 10 * time.Millisecond},
			"up=1e+09;down=1e+09;cd=2ms;sd=10ms"},
		{"wifi-defaults-filled", testbed.LinkParams{UpRate: 65e6, DownRate: 65e6,
			ClientDelay: 2 * time.Millisecond, ServerDelay: 15 * time.Millisecond,
			Wifi: testbed.WifiParams{Stations: 4}},
			"up=6.5e+07;down=6.5e+07;cd=2ms;sd=15ms;wifi=4;retry=7;agg=16"},
		{"wifi-tuned", testbed.LinkParams{UpRate: 65e6, DownRate: 65e6,
			ClientDelay: 2 * time.Millisecond, ServerDelay: 15 * time.Millisecond,
			Wifi: testbed.WifiParams{Stations: 10, RetryLimit: 3, MaxAggFrames: 1}},
			"up=6.5e+07;down=6.5e+07;cd=2ms;sd=15ms;wifi=10;retry=3;agg=1"},
		{"reorder-on-default-rates", testbed.LinkParams{Reorder: 0.05},
			"up=1e+06;down=1.6e+07;cd=5ms;sd=20ms;ro=0.05"},
		{"wifi-plus-reorder", testbed.LinkParams{UpRate: 65e6, DownRate: 65e6,
			ClientDelay: 2 * time.Millisecond, ServerDelay: 15 * time.Millisecond,
			Wifi: testbed.WifiParams{Stations: 4}, Reorder: 0.02},
			"up=6.5e+07;down=6.5e+07;cd=2ms;sd=15ms;wifi=4;retry=7;agg=16;ro=0.02"},
	}
	seen := map[string]string{}
	for _, c := range cases {
		got := linkTag(c.lp)
		if got != c.want {
			t.Fatalf("%s: linkTag = %q, want %q", c.name, got, c.want)
		}
		if prev, dup := seen[got]; dup && got != "" {
			t.Fatalf("%s and %s share encoding %q", c.name, prev, got)
		}
		seen[got] = c.name
	}
}

// TestWifiSpecValidation: normalize rejects wifi/reorder
// configurations that would break the injective encoding or have no
// physical meaning, and accepts the real axes (including on the probe
// batch path).
func TestWifiSpecValidation(t *testing.T) {
	wifi := testbed.LinkParams{UpRate: 65e6, DownRate: 65e6,
		ClientDelay: 2 * time.Millisecond, ServerDelay: 15 * time.Millisecond,
		Wifi: testbed.WifiParams{Stations: 4}}
	good := []ProbeSpec{
		{Buffer: 64, Media: "voip", Link: wifi, CC: "bbr"},
		{Buffer: 64, Media: "web", Link: testbed.LinkParams{Reorder: 0.1}},
		{Buffer: 64, Media: "voip", CC: "bbr"},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Fatalf("good wifi spec %d rejected: %v", i, err)
		}
	}
	neg := wifi
	neg.Wifi.Stations = -1
	orphanRetry := testbed.LinkParams{UpRate: 65e6, Wifi: testbed.WifiParams{RetryLimit: 3}}
	badRetry := wifi
	badRetry.Wifi.RetryLimit = -2
	backboneWifi := ProbeSpec{Buffer: 64, Media: "voip", Testbed: "backbone", Scenario: "long", Link: wifi}
	bad := []ProbeSpec{
		{Buffer: 64, Media: "voip", Link: neg},
		{Buffer: 64, Media: "voip", Link: orphanRetry},
		{Buffer: 64, Media: "voip", Link: badRetry},
		{Buffer: 64, Media: "voip", Link: testbed.LinkParams{Reorder: -0.5}},
		{Buffer: 64, Media: "voip", Link: testbed.LinkParams{Reorder: 1.0}},
		backboneWifi,
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad wifi spec %d accepted: %+v", i, p)
		}
	}
}

// TestWifiBBRSeedPairing: wifi/BBR cells must share the CRN seed of
// their wired siblings — the link and CC axes are excluded from the
// seed key so paired comparisons across link types use common random
// numbers, while caching separately.
func TestWifiBBRSeedPairing(t *testing.T) {
	s := NewSession(0)
	o := tiny()
	wifi := testbed.LinkParams{UpRate: 65e6, DownRate: 65e6,
		ClientDelay: 2 * time.Millisecond, ServerDelay: 15 * time.Millisecond,
		Wifi: testbed.WifiParams{Stations: 2}}
	specs := []ProbeSpec{
		{Scenario: "short-few", Direction: testbed.DirDown, Buffer: 64, Media: "voip"},
		{Scenario: "short-few", Direction: testbed.DirDown, Buffer: 64, Media: "voip", Link: wifi, CC: "bbr"},
	}
	vals, err := s.ProbeBatch(specs, o)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].ListenMOS == vals[1].ListenMOS && vals[0].TalkMOS == vals[1].TalkMOS {
		t.Fatalf("wired and wifi/BBR cells returned identical scores %+v — cache keys may have collided", vals[0])
	}
	if st := s.EngineStats(); st.Misses != 2 {
		t.Fatalf("expected 2 distinct cells, simulated %d", st.Misses)
	}
}
