package experiments

import (
	"fmt"
	"testing"
	"time"

	"bufferqoe/internal/aqm"
	"bufferqoe/internal/engine"
	"bufferqoe/internal/netem"
	"bufferqoe/internal/testbed"
	"bufferqoe/internal/video"
)

// goldenOptions is the fixed configuration of the golden cross-section
// below. Changing it invalidates the recorded values.
func goldenOptions() Options {
	return Options{
		Seed:        42,
		Duration:    4 * time.Second,
		Warmup:      2 * time.Second,
		Reps:        2,
		ClipSeconds: 2,
		CDNFlows:    10000,
	}
}

// golden values recorded from the pre-refactor (closure-scheduling,
// unpooled) engine at commit aad3759. The pooled/handler event core
// must reproduce them bit-for-bit: every float printed with %v
// round-trips exactly, so a single ULP of drift fails the test.
var goldenCells = map[string]string{
	"access/voip/droptail":   "voipScore{Listen:2.893814368463304, Talk:1, UpDelayMs:1517.6494693148195, UpUtilPct:99.58892466194462}",
	"access/voip/codel":      "voipScore{Listen:4.448442240860835, Talk:1.3141405557459813, UpDelayMs:0, UpUtilPct:97.02253702511268}",
	"access/video/droptail":  "videoScore{SSIM:0.9968898450611506, PSNR:57.97436396783822}",
	"backbone/web/droptail":  "webPLT{PLT:488929029}",
	"backbone/voip/droptail": "voipMedian{MOS:4.414951120459074}",
}

// goldenTasks builds the cross-section: access + backbone testbeds,
// TCP (web) + UDP (voip, video) media, drop-tail + CoDel disciplines.
func goldenTasks(o Options) map[string]engine.Task {
	codel := accessVariant{
		tag: "queue=codel",
		upQueue: func(capPkts int, _ uint64) netem.Queue {
			return aqm.NewCoDelForRate(capPkts, testbed.AccessUpRate)
		},
	}
	return map[string]engine.Task{
		"access/voip/droptail":   voipAccessTask(o, "long-many", testbed.DirUp, 256, accessVariant{}),
		"access/voip/codel":      voipAccessTask(o, "long-many", testbed.DirUp, 256, codel),
		"access/video/droptail":  videoAccessTask(o, "short-few", testbed.DirDown, video.ClipC, video.SD, 32, accessVariant{}),
		"backbone/web/droptail":  webBackboneTask(o, "short-low", 128, backboneVariant{}),
		"backbone/voip/droptail": voipBackboneTask(o, "short-medium", 64, backboneVariant{}),
	}
}

// renderGolden formats a cell value with full float round-trip
// precision.
func renderGolden(v any) string {
	switch x := v.(type) {
	case voipScore:
		return fmt.Sprintf("voipScore{Listen:%v, Talk:%v, UpDelayMs:%v, UpUtilPct:%v}",
			x.Listen, x.Talk, x.UpDelayMs, x.UpUtilPct)
	case videoScore:
		return fmt.Sprintf("videoScore{SSIM:%v, PSNR:%v}", x.SSIM, x.PSNR)
	case time.Duration:
		return fmt.Sprintf("webPLT{PLT:%d}", int64(x))
	case float64:
		return fmt.Sprintf("voipMedian{MOS:%v}", x)
	default:
		return fmt.Sprintf("unknown(%T)%v", v, v)
	}
}

// runTaskForTest invokes a cell function directly, bypassing the
// engine's cache so the golden test always simulates.
func runTaskForTest(task engine.Task, seed uint64) any {
	return task.Fn(task.Spec.Canonical(), seed, nil)
}

// TestGoldenCrossSection pins a small cross-section of Grid metrics
// (access + backbone, TCP + UDP media, drop-tail + CoDel) to values
// recorded before the zero-allocation event-core refactor. It is the
// end-to-end proof that pooled timers, handler-based scheduling,
// packet free-lists and scratch reuse changed no simulated outcome.
func TestGoldenCrossSection(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short (race CI) mode")
	}
	o := goldenOptions()
	for name, task := range goldenTasks(o) {
		name, task := name, task
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := task.Spec.Canonical()
			got := renderGolden(runTaskForTest(task, engine.DeriveSeed(spec)))
			if want := goldenCells[name]; got != want {
				t.Errorf("golden mismatch for %s:\n got:  %s\n want: %s", spec, got, want)
			}
		})
	}
}
