package experiments

import (
	"fmt"
	"time"

	"bufferqoe/internal/qoe"
	"bufferqoe/internal/testbed"
	"bufferqoe/internal/web"
)

// extParWeb reruns representative Figure 10b cells with browser-style
// parallel fetching (6 connections, as 2014-era browsers) instead of
// the paper's sequential wget (§9.1). Expectation from the web model:
// on the idle link the handshake/slow-start restarts cancel the
// overlap gain; under upstream congestion the parallel fetch adds
// upstream packets (SYNs, requests, ACK streams on several
// connections) into the very queue that is the bottleneck, so
// parallelism cannot move a "bad" cell out of the bad band — the
// paper's methodology choice is QoE-neutral.
func extParWeb(o Options) (*Result, error) {
	model := qoe.AccessWebModel()
	bufs := []int{8, 64, 256}
	cols := make([]string, len(bufs))
	for i, b := range bufs {
		cols[i] = fmt.Sprintf("%d", b)
	}
	g := NewGrid("Extension: sequential (wget, §9.1) vs 6-conn browser fetch (access, upstream long-few)",
		[]string{"seq PLT", "par PLT", "seq MOS", "par MOS"}, cols)
	for bi, buf := range bufs {
		col := cols[bi]
		for _, mode := range []string{"seq", "par"} {
			a := testbed.NewAccess(testbed.Config{BufferUp: buf, BufferDown: buf, Seed: o.Seed})
			a.StartWorkload(testbed.AccessScenario("long-few", testbed.DirUp))
			var plt time.Duration
			if mode == "seq" {
				web.RegisterServer(a.MediaServerTCP, web.Port)
				plt = webReps(a.Eng, o, func(done func(web.Result)) {
					web.Fetch(a.MediaClientTCP, a.MediaServer.Addr(web.Port), 60*time.Second, done)
				})
			} else {
				web.RegisterBrowserServer(a.MediaServerTCP, web.BrowserPort)
				plt = webReps(a.Eng, o, func(done func(web.Result)) {
					web.FetchParallel(a.MediaClientTCP, a.MediaServer.Addr(web.BrowserPort), 6,
						60*time.Second, done)
				})
			}
			mos := model.MOS(plt)
			g.Set(mode+" PLT", col, Cell{Value: plt.Seconds(), Text: fmt.Sprintf("%.2fs", plt.Seconds())})
			g.Set(mode+" MOS", col, Cell{Value: mos, Class: string(qoe.Rate(mos))})
		}
	}
	return &Result{
		ID:    "ext-parweb",
		Grids: []*Grid{g},
		Notes: []string{"the paper's sequential-wget methodology is QoE-neutral: parallelism cannot rescue congested cells and roughly ties on idle ones"},
	}, nil
}
