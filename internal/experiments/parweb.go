package experiments

import (
	"fmt"
	"time"

	"bufferqoe/internal/qoe"
	"bufferqoe/internal/testbed"
)

// extParWeb reruns representative Figure 10b cells with browser-style
// parallel fetching (6 connections, as 2014-era browsers) instead of
// the paper's sequential wget (§9.1). Expectation from the web model:
// on the idle link the handshake/slow-start restarts cancel the
// overlap gain; under upstream congestion the parallel fetch adds
// upstream packets (SYNs, requests, ACK streams on several
// connections) into the very queue that is the bottleneck, so
// parallelism cannot move a "bad" cell out of the bad band — the
// paper's methodology choice is QoE-neutral. The sequential cells are
// shared with abl-iqx through the cache.
func extParWeb(s *Session, o Options) (*Result, error) {
	model := qoe.AccessWebModel()
	bufs := []int{8, 64, 256}
	cols := make([]string, len(bufs))
	for i, b := range bufs {
		cols[i] = fmt.Sprintf("%d", b)
	}
	g := NewGrid("Extension: sequential (wget, §9.1) vs 6-conn browser fetch (access, upstream long-few)",
		[]string{"seq PLT", "par PLT", "seq MOS", "par MOS"}, cols)
	var jobs []cellJob
	for bi, buf := range bufs {
		for _, mode := range []string{"seq", "par"} {
			conns := 0
			if mode == "par" {
				conns = 6
			}
			jobs = append(jobs, cellJob{webAccessTask(o, "long-few", testbed.DirUp, buf, accessVariant{}, conns),
				mode, cols[bi]})
		}
	}
	s.runCells(jobs, func(row, col string, v any) {
		plt := v.(time.Duration)
		mos := model.MOS(plt)
		g.Set(row+" PLT", col, Cell{Value: plt.Seconds(), Text: fmt.Sprintf("%.2fs", plt.Seconds())})
		g.Set(row+" MOS", col, Cell{Value: mos, Class: string(qoe.Rate(mos))})
	})
	return &Result{
		ID:    "ext-parweb",
		Grids: []*Grid{g},
		Notes: []string{"the paper's sequential-wget methodology is QoE-neutral: parallelism cannot rescue congested cells and roughly ties on idle ones"},
	}, nil
}
