package experiments

import (
	"fmt"
	"time"

	"bufferqoe/internal/cdn"
	"bufferqoe/internal/engine"
	"bufferqoe/internal/httpvideo"
	"bufferqoe/internal/netem"
	"bufferqoe/internal/qoe"
	"bufferqoe/internal/sim"
	"bufferqoe/internal/stats"
	"bufferqoe/internal/tcp"
	"bufferqoe/internal/telemetry"
	"bufferqoe/internal/testbed"
	"bufferqoe/internal/video"
	"bufferqoe/internal/voip"
	"bufferqoe/internal/web"
)

// Cell value types. Cells return every metric their simulation run
// can cheaply expose, so experiments asking different questions of
// the same configuration share one cached run.

// voipScore is an access VoIP cell: median MOS per direction plus the
// uplink-path characteristics the ablations read.
type voipScore struct {
	Listen, Talk float64
	UpDelayMs    float64
	UpUtilPct    float64
}

// videoScore is a video cell: median SSIM and PSNR across reps.
type videoScore struct{ SSIM, PSNR float64 }

// httpScore is an HTTP-video cell: median MOS and mean bitrate.
type httpScore struct{ MOS, Bitrate float64 }

// playoutScore is a VoIP playout-buffer cell.
type playoutScore struct{ MOS, Z1, LossPct float64 }

// smoothingScore is a single-stream video smoothing cell.
type smoothingScore struct{ SSIM, LossPct float64 }

// bgMetrics is a background-only characterization cell (table1, fig4,
// fig5): no foreground traffic, the workload itself is the
// measurement.
type bgMetrics struct {
	Conc                   float64
	UtilUpPct, UtilDownPct float64
	SdUp, SdDown           float64
	LossUpPct, LossDownPct float64
	DelayUpMs, DelayDownMs float64
	UpBox, DownBox         stats.Boxplot
}

// queueFactory builds a bottleneck queue discipline from its packet
// capacity and the cell's derived seed (RNG-bearing disciplines like
// RED must draw from the cell's stream, not the root seed).
type queueFactory func(capPkts int, seed uint64) netem.Queue

// accessVariant bundles the non-default access-testbed knobs a cell
// may carry together with the canonical tag that distinguishes them
// in the cell cache. The zero value — empty tag — is the paper's
// default configuration; builders must keep tag and knobs in sync, as
// the tag is what the cache sees. Custom link parameters travel
// separately (CellSpec.Link, see linkTag) so the same variant tag can
// apply to any link.
type accessVariant struct {
	tag       string
	bufUp     int // uplink buffer override; 0 = same as downlink
	upQueue   queueFactory
	downQueue queueFactory
	cc        func() tcp.CongestionControl
	tcpCfg    tcp.Config
	jitter    time.Duration
	link      testbed.LinkParams // zero = the paper's DSL link
	// mix, when non-nil, replaces the named Table 1 preset with a
	// custom workload (already canonical and known not to equal any
	// preset — ProbeSpec.normalize folds preset-equal mixes onto the
	// preset path so both spellings share one cache cell).
	mix *testbed.Workload
}

func (v accessVariant) config(buf int, seed uint64) testbed.Config {
	up := buf
	if v.bufUp != 0 {
		up = v.bufUp
	}
	cfg := testbed.Config{
		BufferUp: up, BufferDown: buf, Seed: seed,
		CC: v.cc, TCP: v.tcpCfg, Jitter: v.jitter, Link: v.link,
	}
	if v.upQueue != nil {
		qf := v.upQueue
		cfg.UpQueue = func(capPkts int) netem.Queue { return qf(capPkts, seed) }
	}
	if v.downQueue != nil {
		qf := v.downQueue
		cfg.DownQueue = func(capPkts int) netem.Queue { return qf(capPkts, seed) }
	}
	return cfg
}

// linkTag renders custom link parameters as the canonical
// CellSpec.Link encoding; the paper's preset link encodes as "", so
// probes of the default topology share cells with the experiment
// grids no matter how their LinkParams were spelled. The wifi and
// reorder axes append their own key=value fragments only when active,
// so wired encodings are byte-identical to what they were before those
// axes existed, and the encoding stays injective (every non-default
// knob appears exactly once, defaults filled first).
//
//qoe:encodes testbed.LinkParams testbed.WifiParams
func linkTag(lp testbed.LinkParams) string {
	if lp.IsDefault() {
		return ""
	}
	lp = lp.WithDefaults()
	tag := fmt.Sprintf("up=%g;down=%g;cd=%s;sd=%s",
		lp.UpRate, lp.DownRate, lp.ClientDelay, lp.ServerDelay)
	if lp.Wifi.Stations > 0 {
		tag += fmt.Sprintf(";wifi=%d;retry=%d;agg=%d",
			lp.Wifi.Stations, lp.Wifi.RetryLimit, lp.Wifi.MaxAggFrames)
	}
	if lp.Reorder > 0 {
		tag += fmt.Sprintf(";ro=%g", lp.Reorder)
	}
	return tag
}

// workload bundles the canonical workload axis of a cell: the
// scenario/direction strings the CellSpec carries (cache key and CRN
// seed stimulus) and the resolved session populations the cell
// starts. Resolution happens at task-build time on the caller's
// goroutine — workers only ever see an already-resolved Spec, so an
// unknown workload name can never panic a worker.
type workload struct {
	name string       // CellSpec.Scenario: preset name or canonical mix encoding
	dir  string       // CellSpec.Direction: "" for custom mixes (they encode direction)
	spec testbed.Spec // populations to start; empty = idle (noBG)
}

// accessWL resolves an access workload at build time: a custom mix
// when non-nil, the named Table 1 preset masked by dir otherwise.
// Preset names on this path are either literals from the preset
// tables (experiment grids) or pre-validated by ProbeSpec.normalize,
// so the panic is a programming-error guard on the caller's
// goroutine, not a reachable worker crash.
func accessWL(scenario string, dir testbed.Direction, mix *testbed.Workload) workload {
	if mix != nil {
		return workload{name: mix.Encode(), spec: mix.Spec(mix.Encode())}
	}
	spec, err := testbed.LookupAccessScenario(scenario, dir)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return workload{name: scenario, dir: dir.String(), spec: spec}
}

// backboneWL is accessWL for the backbone's direction-less workloads.
func backboneWL(scenario string, mix *testbed.Workload) workload {
	if mix != nil {
		return workload{name: mix.Encode(), spec: mix.Spec(mix.Encode())}
	}
	spec, err := testbed.LookupBackboneScenario(scenario)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return workload{name: scenario, spec: spec}
}

// start launches the resolved populations; idle workloads (noBG and
// empty mixes) leave the testbed untouched, exactly like the historic
// `scenario != "noBG"` guard.
func (w workload) start(tb interface{ StartWorkload(testbed.Spec) }) {
	if w.spec.HasTraffic() {
		tb.StartWorkload(w.spec)
	}
}

// backboneVariant is accessVariant's counterpart for the backbone
// testbed: congestion control, TCP tuning, and the bottleneck queue
// discipline (applied to the congested server->client direction).
type backboneVariant struct {
	tag       string
	downQueue queueFactory
	cc        func() tcp.CongestionControl
	tcpCfg    tcp.Config
	mix       *testbed.Workload // see accessVariant.mix
}

func (v backboneVariant) config(buf int, seed uint64) testbed.Config {
	cfg := testbed.Config{BufferDown: buf, Seed: seed, CC: v.cc, TCP: v.tcpCfg}
	if v.downQueue != nil {
		qf := v.downQueue
		cfg.DownQueue = func(capPkts int) netem.Queue { return qf(capPkts, seed) }
	}
	return cfg
}

// joinTags joins non-empty canonical tag fragments with ";".
func joinTags(tags ...string) string {
	out := ""
	for _, t := range tags {
		if t == "" {
			continue
		}
		if out != "" {
			out += ";"
		}
		out += t
	}
	return out
}

// cellJob pairs a cell task with the grid coordinates its value lands
// in, so a runner builds both in one append and the task/label
// pairing can never drift.
type cellJob struct {
	task     engine.Task
	row, col string
}

func msToDuration(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// simMetricsOf bundles a finished testbed's simulator and packet-pool
// counters for the telemetry flush. Called only on instrumented runs,
// after the cell's simulation has completed.
func simMetricsOf(se *sim.Engine, nw *netem.Network) telemetry.SimMetrics {
	m := se.Metrics()
	return telemetry.SimMetrics{
		EventsClosure:  m.EventsClosure,
		EventsPooled:   m.EventsPooled,
		EventsArg:      m.EventsArg,
		EventsOwned:    m.EventsOwned,
		TimerRecycles:  m.TimerRecycles,
		PacketRecycles: nw.PacketRecycles(),
		HeapHighWater:  m.HeapHighWater,
	}
}

// finishCell closes a cell's phase clock: remaining time is scored as
// the QoE/aggregation phase, the testbed's simulator counters are
// flushed, and the cell's trace event is emitted. The Enabled guard
// keeps the disabled path free — no spec stringification, no metric
// reads.
func finishCell(pc *telemetry.PhaseClock, sp engine.CellSpec, se *sim.Engine, nw *netem.Network) {
	if !pc.Enabled() {
		return
	}
	pc.Done(sp.String(), simMetricsOf(se, nw))
}

// --- VoIP cells ---------------------------------------------------

// voipAccessTask describes one access VoIP cell: Reps bidirectional
// calls under the named workload at the given buffers.
func voipAccessTask(o Options, scenario string, dir testbed.Direction, buf int, v accessVariant) engine.Task {
	wl := accessWL(scenario, dir, v.mix)
	sp := engine.CellSpec{
		Testbed: "access", Scenario: wl.name, Direction: wl.dir,
		Buffer: buf, BufferUp: v.bufUp, Media: "voip", Variant: v.tag,
		Link: linkTag(v.link), Stop: o.stop().tag(),
		Seed: o.Seed, Warmup: o.Warmup, Reps: o.Reps,
	}
	return engine.Task{Spec: sp, Fn: func(sp engine.CellSpec, seed uint64, scr engine.Scratch) any {
		cs := scratchOf(scr)
		pc := o.Collector.StartCell()
		oc := o
		oc.Seed = seed
		cfg := v.config(buf, seed)
		cfg.Scratch = cs.tb()
		a := testbed.NewAccess(cfg)
		wl.start(a)
		pc.Mark(telemetry.PhaseBuild)
		listen, talk := runVoIPPair(a, oc, cs, &pc)
		now := a.Eng.Now()
		score := voipScore{
			Listen: listen, Talk: talk,
			UpDelayMs: a.UpMon.MeanDelayMs(),
			UpUtilPct: a.UpLinkMonitor().MeanUtilization(now),
		}
		finishCell(&pc, sp, a.Eng, a.Net)
		return score
	}}
}

// voipAccessCell runs one access VoIP cell through the session's
// engine.
func (s *Session) voipAccessCell(o Options, scenario string, dir testbed.Direction, buf int, v accessVariant) voipScore {
	t := voipAccessTask(o, scenario, dir, buf, v)
	return s.runOne(t).(voipScore)
}

// voipBackboneTask describes one backbone VoIP cell (unidirectional
// calls, server -> client).
func voipBackboneTask(o Options, scenario string, buf int, v backboneVariant) engine.Task {
	wl := backboneWL(scenario, v.mix)
	sp := engine.CellSpec{
		Testbed: "backbone", Scenario: wl.name, Buffer: buf, Media: "voip",
		Variant: v.tag, Stop: o.stop().tag(),
		Seed: o.Seed, Warmup: o.Warmup, Reps: o.Reps,
	}
	return engine.Task{Spec: sp, Fn: func(sp engine.CellSpec, seed uint64, scr engine.Scratch) any {
		cs := scratchOf(scr)
		pc := o.Collector.StartCell()
		oc := o
		oc.Seed = seed
		cfg := v.config(buf, seed)
		cfg.Scratch = cs.tb()
		b := testbed.NewBackbone(cfg)
		wl.start(b)
		lib := cs.library(seed)
		rule := oc.stop()
		mosS := cs.sample(0)
		for i := 0; i < oc.Reps; i++ {
			i := i
			b.Eng.Schedule(oc.Warmup+time.Duration(i)*callSpacing, func() {
				voip.Start(b.MediaServer, b.MediaClient, lib[i%len(lib)], 0,
					func(r voip.Result) {
						mosS.Add(r.MOS)
						if mosS.N() == oc.Reps || rule.done(mosS) {
							b.Eng.Halt()
						}
					})
			})
		}
		pc.Mark(telemetry.PhaseBuild)
		b.Eng.RunFor(cellCap)
		pc.Mark(telemetry.PhaseSim)
		recordReps(oc, mosS.N(), mosS.N() < oc.Reps)
		med := mosS.Median()
		finishCell(&pc, sp, b.Eng, b.Net)
		return med
	}}
}

// playoutTask describes one fixed-vs-adaptive playout-buffer cell
// (access, short-many down, 256-packet buffers).
func playoutTask(o Options, mode string) engine.Task {
	sp := engine.CellSpec{
		Testbed: "access", Scenario: "short-many", Direction: testbed.DirDown.String(),
		Buffer: 256, Media: "voip", Variant: "playout=" + mode,
		Seed: o.Seed, Warmup: o.Warmup, Reps: o.Reps,
	}
	wl := accessWL("short-many", testbed.DirDown, nil)
	return engine.Task{Spec: sp, Fn: func(_ engine.CellSpec, seed uint64, scr engine.Scratch) any {
		cs := scratchOf(scr)
		oc := o
		oc.Seed = seed
		a := testbed.NewAccess(testbed.Config{BufferUp: 256, BufferDown: 256, Seed: seed, Scratch: cs.tb()})
		wl.start(a)
		lib := cs.library(seed)
		mosS, z1S, lossS := cs.sample(0), cs.sample(1), cs.sample(2)
		for i := 0; i < oc.Reps; i++ {
			i := i
			a.Eng.Schedule(oc.Warmup+time.Duration(i)*callSpacing, func() {
				done := func(r voip.Result) {
					mosS.Add(r.MOS)
					z1S.Add(r.Z1)
					lossS.Add(r.LossPct())
					if mosS.N() == oc.Reps {
						a.Eng.Halt()
					}
				}
				if mode == "adaptive" {
					voip.StartAdaptive(a.MediaServer, a.MediaClient, lib[i%len(lib)], done)
				} else {
					voip.Start(a.MediaServer, a.MediaClient, lib[i%len(lib)], 0, done)
				}
			})
		}
		a.Eng.RunFor(cellCap)
		return playoutScore{MOS: mosS.Median(), Z1: z1S.Median(), LossPct: lossS.Median()}
	}}
}

// --- Web cells ----------------------------------------------------

// webAccessTask describes one access web cell: Reps sequential
// fetches (or parallel browser-style fetches over fetchConns
// connections when fetchConns > 0) of the paper's static page.
func webAccessTask(o Options, scenario string, dir testbed.Direction, buf int, v accessVariant, fetchConns int) engine.Task {
	variant := v.tag
	if fetchConns > 0 {
		if variant != "" {
			variant += ";"
		}
		variant += fmt.Sprintf("par=%d", fetchConns)
	}
	wl := accessWL(scenario, dir, v.mix)
	sp := engine.CellSpec{
		Testbed: "access", Scenario: wl.name, Direction: wl.dir,
		Buffer: buf, BufferUp: v.bufUp, Media: "web", Variant: variant,
		Link: linkTag(v.link), Stop: o.stop().tag(),
		Seed: o.Seed, Warmup: o.Warmup, Reps: o.Reps,
	}
	return engine.Task{Spec: sp, Fn: func(sp engine.CellSpec, seed uint64, scr engine.Scratch) any {
		cs := scratchOf(scr)
		pc := o.Collector.StartCell()
		oc := o
		oc.Seed = seed
		cfg := v.config(buf, seed)
		cfg.Scratch = cs.tb()
		a := testbed.NewAccess(cfg)
		wl.start(a)
		mos := qoe.AccessWebModel().MOS
		var plt time.Duration
		if fetchConns > 0 {
			web.RegisterBrowserServer(a.MediaServerTCP, web.BrowserPort)
			pc.Mark(telemetry.PhaseBuild)
			plt = webReps(a.Eng, oc, cs, &pc, mos, func(done func(web.Result)) {
				web.FetchParallel(a.MediaClientTCP, a.MediaServer.Addr(web.BrowserPort),
					fetchConns, 60*time.Second, done)
			})
		} else {
			web.RegisterServer(a.MediaServerTCP, web.Port)
			pc.Mark(telemetry.PhaseBuild)
			plt = webReps(a.Eng, oc, cs, &pc, mos, func(done func(web.Result)) {
				web.Fetch(a.MediaClientTCP, a.MediaServer.Addr(web.Port), 60*time.Second, done)
			})
		}
		finishCell(&pc, sp, a.Eng, a.Net)
		return plt
	}}
}

// webAccessCell runs one access web cell and returns the median PLT.
func (s *Session) webAccessCell(o Options, scenario string, dir testbed.Direction, buf int, v accessVariant, fetchConns int) time.Duration {
	t := webAccessTask(o, scenario, dir, buf, v, fetchConns)
	return s.runOne(t).(time.Duration)
}

// webBackboneTask describes one backbone web cell.
func webBackboneTask(o Options, scenario string, buf int, v backboneVariant) engine.Task {
	wl := backboneWL(scenario, v.mix)
	sp := engine.CellSpec{
		Testbed: "backbone", Scenario: wl.name, Buffer: buf, Media: "web",
		Variant: v.tag, Stop: o.stop().tag(),
		Seed: o.Seed, Warmup: o.Warmup, Reps: o.Reps,
	}
	return engine.Task{Spec: sp, Fn: func(sp engine.CellSpec, seed uint64, scr engine.Scratch) any {
		cs := scratchOf(scr)
		pc := o.Collector.StartCell()
		oc := o
		oc.Seed = seed
		cfg := v.config(buf, seed)
		cfg.Scratch = cs.tb()
		b := testbed.NewBackbone(cfg)
		wl.start(b)
		web.RegisterServer(b.MediaServerTCP, web.Port)
		pc.Mark(telemetry.PhaseBuild)
		plt := webReps(b.Eng, oc, cs, &pc, qoe.BackboneWebModel().MOS, func(done func(web.Result)) {
			web.Fetch(b.MediaClientTCP, b.MediaServer.Addr(web.Port), 60*time.Second, done)
		})
		finishCell(&pc, sp, b.Eng, b.Net)
		return plt
	}}
}

// --- Video cells --------------------------------------------------

func videoVariantTag(clip video.Clip, p video.Profile, rec video.Recovery) string {
	tag := "clip=" + clip.Name + ";profile=" + p.Name
	if rec != video.RecoveryNone {
		tag += ";rec=" + rec.String()
	}
	return tag
}

// videoAccessTask describes one access RTP-video cell. The paper's
// grids congest the download direction only (IPTV is downstream);
// the composable probe path may ask for upload or bidirectional
// background congestion instead.
func videoAccessTask(o Options, scenario string, dir testbed.Direction, clip video.Clip, p video.Profile, buf int, v accessVariant) engine.Task {
	wl := accessWL(scenario, dir, v.mix)
	sp := engine.CellSpec{
		Testbed: "access", Scenario: wl.name, Direction: wl.dir,
		Buffer: buf, BufferUp: v.bufUp,
		Media: "video", Variant: joinTags(videoVariantTag(clip, p, video.RecoveryNone), v.tag),
		Link: linkTag(v.link), Stop: o.stop().tag(),
		Seed: o.Seed, Warmup: o.Warmup, Reps: o.Reps, ClipSeconds: o.ClipSeconds,
	}
	return engine.Task{Spec: sp, Fn: func(sp engine.CellSpec, seed uint64, scr engine.Scratch) any {
		cs := scratchOf(scr)
		pc := o.Collector.StartCell()
		oc := o
		oc.Seed = seed
		src := cs.source(clip, p, oc.ClipSeconds)
		cfg := v.config(buf, seed)
		cfg.Scratch = cs.tb()
		a := testbed.NewAccess(cfg)
		wl.start(a)
		pc.Mark(telemetry.PhaseBuild)
		score := videoReps(a.Eng, oc, time.Duration(oc.ClipSeconds)*time.Second, cs, &pc,
			func(done func(video.Result)) {
				video.Start(a.MediaServer, a.MediaClient, src,
					video.Config{Smooth: true, Seed: seed}, done)
			})
		finishCell(&pc, sp, a.Eng, a.Net)
		return score
	}}
}

// videoBackboneTask describes one backbone RTP-video cell, optionally
// with ARQ/FEC recovery.
func videoBackboneTask(o Options, scenario string, clip video.Clip, p video.Profile, rec video.Recovery, buf int, v backboneVariant) engine.Task {
	wl := backboneWL(scenario, v.mix)
	sp := engine.CellSpec{
		Testbed: "backbone", Scenario: wl.name, Buffer: buf,
		Media: "video", Variant: joinTags(videoVariantTag(clip, p, rec), v.tag),
		Stop: o.stop().tag(),
		Seed: o.Seed, Warmup: o.Warmup, Reps: o.Reps, ClipSeconds: o.ClipSeconds,
	}
	return engine.Task{Spec: sp, Fn: func(sp engine.CellSpec, seed uint64, scr engine.Scratch) any {
		cs := scratchOf(scr)
		pc := o.Collector.StartCell()
		oc := o
		oc.Seed = seed
		src := cs.source(clip, p, oc.ClipSeconds)
		cfg := v.config(buf, seed)
		cfg.Scratch = cs.tb()
		b := testbed.NewBackbone(cfg)
		wl.start(b)
		pc.Mark(telemetry.PhaseBuild)
		score := videoReps(b.Eng, oc, time.Duration(oc.ClipSeconds)*time.Second, cs, &pc,
			func(done func(video.Result)) {
				video.Start(b.MediaServer, b.MediaClient, src,
					video.Config{Smooth: true, Seed: seed, Recovery: rec}, done)
			})
		finishCell(&pc, sp, b.Eng, b.Net)
		return score
	}}
}

// smoothingTask describes one sender-smoothing cell: a single SD
// stream on an otherwise idle access link.
func smoothingTask(o Options, buf int, smooth bool) engine.Task {
	mode := "burst"
	if smooth {
		mode = "smooth"
	}
	sp := engine.CellSpec{
		Testbed: "access", Scenario: "noBG", Buffer: buf,
		Media: "video", Variant: "single;mode=" + mode + ";profile=SD",
		Seed: o.Seed, ClipSeconds: o.ClipSeconds,
	}
	return engine.Task{Spec: sp, Fn: func(_ engine.CellSpec, seed uint64, scr engine.Scratch) any {
		cs := scratchOf(scr)
		a := testbed.NewAccess(testbed.Config{BufferUp: buf, BufferDown: buf, Seed: seed, Scratch: cs.tb()})
		src := cs.source(video.ClipC, video.SD, o.ClipSeconds)
		var got video.Result
		video.Start(a.MediaServer, a.MediaClient, src,
			video.Config{Smooth: smooth, Seed: seed},
			func(r video.Result) { got = r; a.Eng.Halt() })
		a.Eng.RunFor(cellCap)
		return smoothingScore{SSIM: got.MeanSSIM, LossPct: got.LossPct()}
	}}
}

// --- HTTP video cells ---------------------------------------------

// httpVideoTask describes one backbone HTTP-video cell; player is
// "progressive", "abr-rate" or "abr-buffer".
func httpVideoTask(o Options, scenario string, buf int, player string) engine.Task {
	sp := engine.CellSpec{
		Testbed: "backbone", Scenario: scenario, Buffer: buf,
		Media: "httpvideo", Variant: "player=" + player,
		Seed: o.Seed, Warmup: o.Warmup, Reps: o.Reps, ClipSeconds: o.ClipSeconds,
	}
	wl := backboneWL(scenario, nil)
	return engine.Task{Spec: sp, Fn: func(_ engine.CellSpec, seed uint64, scr engine.Scratch) any {
		cs := scratchOf(scr)
		oc := o
		oc.Seed = seed
		mediaDur := time.Duration(oc.ClipSeconds*4) * time.Second
		b := testbed.NewBackbone(testbed.Config{BufferDown: buf, Seed: seed, Scratch: cs.tb()})
		wl.start(b)
		mosS, rateS := cs.sample(0), cs.sample(1)
		remaining := oc.Reps
		var next func()
		if player == "progressive" {
			cfg := httpvideo.Config{Bitrate: 4e6, MediaDuration: mediaDur}
			httpvideo.RegisterServer(b.MediaServerTCP, httpvideo.Port, cfg)
			next = func() {
				if remaining == 0 {
					b.Eng.Halt()
					return
				}
				remaining--
				httpvideo.Watch(b.MediaClientTCP, b.MediaServer.Addr(httpvideo.Port), cfg,
					func(r httpvideo.Result) {
						mosS.Add(r.MOS)
						rateS.Add(4e6)
						b.Eng.Schedule(time.Second, next)
					})
			}
		} else {
			cfg := httpvideo.ABRConfig{MediaDuration: mediaDur}
			if player == "abr-buffer" {
				cfg.Algorithm = httpvideo.ABRBuffer
			}
			httpvideo.RegisterABRServer(b.MediaServerTCP, httpvideo.ABRPort, cfg)
			next = func() {
				if remaining == 0 {
					b.Eng.Halt()
					return
				}
				remaining--
				httpvideo.WatchABR(b.MediaClientTCP, b.MediaServer.Addr(httpvideo.ABRPort), cfg,
					func(r httpvideo.ABRResult) {
						mosS.Add(r.MOS)
						rateS.Add(r.MeanBitrate)
						b.Eng.Schedule(time.Second, next)
					})
			}
		}
		b.Eng.Schedule(oc.Warmup, next)
		b.Eng.RunFor(cellCap)
		return httpScore{MOS: mosS.Median(), Bitrate: rateS.Median()}
	}}
}

// --- Background characterization cells ----------------------------

// bgAccessTask describes one background-only access cell: run the
// workload for Warmup+Duration and report the link/queue statistics.
func bgAccessTask(o Options, scenario string, dir testbed.Direction, bufUp, bufDown int) engine.Task {
	v := accessVariant{bufUp: bufUp}
	wl := accessWL(scenario, dir, nil)
	sp := engine.CellSpec{
		Testbed: "access", Scenario: wl.name, Direction: wl.dir,
		Buffer: bufDown, BufferUp: bufUp, Media: "background",
		Seed: o.Seed, Duration: o.Duration, Warmup: o.Warmup,
	}
	return engine.Task{Spec: sp, Fn: func(sp engine.CellSpec, seed uint64, scr engine.Scratch) any {
		cs := scratchOf(scr)
		pc := o.Collector.StartCell()
		cfg := v.config(bufDown, seed)
		cfg.Scratch = cs.tb()
		a := testbed.NewAccess(cfg)
		wl.start(a)
		pc.Mark(telemetry.PhaseBuild)
		a.Eng.RunFor(o.Warmup + o.Duration)
		pc.Mark(telemetry.PhaseSim)
		defer finishCell(&pc, sp, a.Eng, a.Net)
		now := a.Eng.Now()
		m := bgMetrics{
			UtilUpPct:   a.UpLinkMonitor().MeanUtilization(now),
			UtilDownPct: a.DownLinkMonitor().MeanUtilization(now),
			SdUp:        a.UpLinkMonitor().UtilSamples.Std(),
			SdDown:      a.DownLinkMonitor().UtilSamples.Std(),
			LossUpPct:   100 * a.UpMon.LossRate(),
			LossDownPct: 100 * a.DownMon.LossRate(),
			DelayUpMs:   a.UpMon.MeanDelayMs(),
			DelayDownMs: a.DownMon.MeanDelayMs(),
			UpBox:       stats.BoxplotOf(&a.UpLinkMonitor().UtilSamples),
			DownBox:     stats.BoxplotOf(&a.DownLinkMonitor().UtilSamples),
		}
		if a.UpGen != nil {
			m.Conc += a.UpGen.Stats().Concurrent.Mean()
		}
		if a.DownGen != nil {
			m.Conc += a.DownGen.Stats().Concurrent.Mean()
		}
		return m
	}}
}

// bgBackboneTask is bgAccessTask for the backbone testbed; only the
// Down-side metrics are meaningful.
func bgBackboneTask(o Options, scenario string, buf int) engine.Task {
	sp := engine.CellSpec{
		Testbed: "backbone", Scenario: scenario, Buffer: buf, Media: "background",
		Seed: o.Seed, Duration: o.Duration, Warmup: o.Warmup,
	}
	wl := backboneWL(scenario, nil)
	return engine.Task{Spec: sp, Fn: func(sp engine.CellSpec, seed uint64, scr engine.Scratch) any {
		cs := scratchOf(scr)
		pc := o.Collector.StartCell()
		b := testbed.NewBackbone(testbed.Config{BufferDown: buf, Seed: seed, Scratch: cs.tb()})
		wl.start(b)
		pc.Mark(telemetry.PhaseBuild)
		b.Eng.RunFor(o.Warmup + o.Duration)
		pc.Mark(telemetry.PhaseSim)
		defer finishCell(&pc, sp, b.Eng, b.Net)
		now := b.Eng.Now()
		return bgMetrics{
			Conc:        b.Gen.Stats().Concurrent.Mean(),
			UtilDownPct: b.DownLink.Monitor.MeanUtilization(now),
			SdDown:      b.DownLink.Monitor.UtilSamples.Std(),
			LossDownPct: 100 * b.DownMon.LossRate(),
			DelayDownMs: b.DownMon.MeanDelayMs(),
			DownBox:     stats.BoxplotOf(&b.DownLink.Monitor.UtilSamples),
		}
	}}
}

// --- Wild (Section 3) cell ----------------------------------------

// wildTask describes the synthetic CDN population analysis shared by
// the three Figure 1 panels; its only inputs are the seed and the
// population size.
func wildTask(o Options) engine.Task {
	sp := engine.CellSpec{
		Media: "wild", Seed: o.Seed, CDNFlows: o.CDNFlows,
	}
	return engine.Task{Spec: sp, Fn: func(_ engine.CellSpec, seed uint64, _ engine.Scratch) any {
		flows := cdn.Generate(cdn.Config{Flows: o.CDNFlows, Seed: seed})
		return cdn.Analyze(flows, cdn.MinSamplesDefault)
	}}
}
