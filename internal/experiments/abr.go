package experiments

import (
	"fmt"

	"bufferqoe/internal/qoe"
)

// extABR carries the paper's §10 HTTP-video future work one step
// further than ext-httpvideo: the fixed-bitrate progressive player is
// joined by rate-based and buffer-based DASH adaptation. The question
// is whether adaptation changes the paper's conclusion that workload
// decides QoE — the expected answer being "only in the middle": where
// a lower rung fits the per-flow share, ABR converts stalls into
// bitrate reduction; at sustained overload nothing fits and all three
// players are bad. The progressive-4M cells are shared with
// ext-httpvideo's 749-packet column through the cache.
func extABR(s *Session, o Options) (*Result, error) {
	scenarios := []string{"noBG", "short-medium", "short-high", "long"}
	players := []string{"progressive-4M", "abr-rate", "abr-buffer"}
	g := NewGrid("Extension: DASH adaptation vs fixed-rate HTTP video (backbone, BDP buffer)",
		players, scenarios)
	var jobs []cellJob
	for _, s := range scenarios {
		for _, player := range players {
			kind := player
			if player == "progressive-4M" {
				kind = "progressive"
			}
			jobs = append(jobs, cellJob{httpVideoTask(o, s, 749, kind), player, s})
		}
	}
	s.runCells(jobs, func(row, col string, v any) {
		sc := v.(httpScore)
		g.Set(row, col, Cell{
			Value: sc.MOS,
			Text:  fmt.Sprintf("MOS %.1f @%.1fM", sc.MOS, sc.Bitrate/1e6),
			Class: string(qoe.Rate(sc.MOS)),
		})
	})
	return &Result{
		ID:    "ext-abr",
		Grids: []*Grid{g},
		Notes: []string{"adaptation helps exactly in the band between 'fits easily' and 'nothing fits' — the workload-decides conclusion is unchanged at the extremes"},
	}, nil
}
