package experiments

import (
	"fmt"
	"time"

	"bufferqoe/internal/httpvideo"
	"bufferqoe/internal/qoe"
	"bufferqoe/internal/stats"
	"bufferqoe/internal/testbed"
)

// extABR carries the paper's §10 HTTP-video future work one step
// further than ext-httpvideo: the fixed-bitrate progressive player is
// joined by rate-based and buffer-based DASH adaptation. The question
// is whether adaptation changes the paper's conclusion that workload
// decides QoE — the expected answer being "only in the middle": where
// a lower rung fits the per-flow share, ABR converts stalls into
// bitrate reduction; at sustained overload nothing fits and all three
// players are bad.
func extABR(o Options) (*Result, error) {
	scenarios := []string{"noBG", "short-medium", "short-high", "long"}
	players := []string{"progressive-4M", "abr-rate", "abr-buffer"}
	g := NewGrid("Extension: DASH adaptation vs fixed-rate HTTP video (backbone, BDP buffer)",
		players, scenarios)
	mediaDur := time.Duration(o.ClipSeconds*4) * time.Second

	for _, s := range scenarios {
		for _, player := range players {
			b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: o.Seed})
			if s != "noBG" {
				b.StartWorkload(testbed.BackboneScenario(s))
			}
			var mosS, rateS stats.Sample
			remaining := o.Reps
			var next func()

			if player == "progressive-4M" {
				cfg := httpvideo.Config{Bitrate: 4e6, MediaDuration: mediaDur}
				httpvideo.RegisterServer(b.MediaServerTCP, httpvideo.Port, cfg)
				next = func() {
					if remaining == 0 {
						b.Eng.Halt()
						return
					}
					remaining--
					httpvideo.Watch(b.MediaClientTCP, b.MediaServer.Addr(httpvideo.Port), cfg,
						func(r httpvideo.Result) {
							mosS.Add(r.MOS)
							rateS.Add(4e6)
							b.Eng.Schedule(time.Second, next)
						})
				}
			} else {
				cfg := httpvideo.ABRConfig{MediaDuration: mediaDur}
				if player == "abr-buffer" {
					cfg.Algorithm = httpvideo.ABRBuffer
				}
				httpvideo.RegisterABRServer(b.MediaServerTCP, httpvideo.ABRPort, cfg)
				next = func() {
					if remaining == 0 {
						b.Eng.Halt()
						return
					}
					remaining--
					httpvideo.WatchABR(b.MediaClientTCP, b.MediaServer.Addr(httpvideo.ABRPort), cfg,
						func(r httpvideo.ABRResult) {
							mosS.Add(r.MOS)
							rateS.Add(r.MeanBitrate)
							b.Eng.Schedule(time.Second, next)
						})
				}
			}
			b.Eng.Schedule(o.Warmup, next)
			b.Eng.RunFor(cellCap)
			mos := mosS.Median()
			g.Set(player, s, Cell{
				Value: mos,
				Text:  fmt.Sprintf("MOS %.1f @%.1fM", mos, rateS.Median()/1e6),
				Class: string(qoe.Rate(mos)),
			})
		}
	}
	return &Result{
		ID:    "ext-abr",
		Grids: []*Grid{g},
		Notes: []string{"adaptation helps exactly in the band between 'fits easily' and 'nothing fits' — the workload-decides conclusion is unchanged at the extremes"},
	}, nil
}
