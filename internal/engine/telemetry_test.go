package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bufferqoe/internal/telemetry"
)

// TestCollectorReconcilesWithStats runs a mixed workload — fresh
// computes, warm cache hits, coalesced waiters, and an abandoned
// (canceled) batch — and asserts the collector's counters reconcile
// exactly with engine.Stats, with every gauge back at zero. Run under
// -race this also exercises the collector's concurrency safety.
func TestCollectorReconcilesWithStats(t *testing.T) {
	e := New(2)
	col := telemetry.New()
	e.SetCollector(col)
	if e.Collector() != col {
		t.Fatal("Collector() did not return the attached collector")
	}

	slow := func(CellSpec, uint64, Scratch) any {
		time.Sleep(5 * time.Millisecond)
		return "v"
	}

	// Phase 1: fresh computes with coalesced waiters — 4 goroutines per
	// spec race for 3 distinct specs; one computes, the rest coalesce.
	var wg sync.WaitGroup
	for buf := 0; buf < 3; buf++ {
		sp := spec(64 << buf)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if v := e.Do(sp, slow); v != "v" {
					t.Errorf("Do = %v", v)
				}
			}()
		}
	}
	wg.Wait()

	// Phase 2: warm-cache hits.
	for buf := 0; buf < 3; buf++ {
		e.Do(spec(64<<buf), slow)
	}

	// Phase 3: a canceled batch. Workers=2 and the cells sleep, so a
	// prompt cancel abandons the queued remainder; re-checks may also
	// cancel cells that won a slot.
	ctx, cancel := context.WithCancel(context.Background())
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{Spec: spec(1000 + i), Fn: slow}
	}
	done := make(chan struct{})
	var sawCancel atomic.Bool
	go func() {
		defer close(done)
		e.SubmitBatch(ctx, tasks, func(_ int, _ any, err error) {
			if errors.Is(err, ErrCanceled) {
				sawCancel.Store(true)
			}
		})
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	<-done
	if !sawCancel.Load() {
		t.Fatal("canceled batch reported no ErrCanceled outcomes")
	}

	st := e.Stats()
	if st.Canceled == 0 {
		t.Fatal("Stats.Canceled = 0 after canceled batch")
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected hits and misses, got %+v", st)
	}

	// Counters reconcile exactly: the collector was attached before any
	// activity, so its totals equal the engine's.
	if got, want := col.CacheHits.Value(), st.Hits; got != want {
		t.Errorf("collector hits = %d, stats = %d", got, want)
	}
	if got, want := col.CacheMisses.Value(), st.Misses; got != want {
		t.Errorf("collector misses = %d, stats = %d", got, want)
	}
	if got, want := col.CellsCanceled.Value(), st.Canceled; got != want {
		t.Errorf("collector canceled = %d, stats = %d", got, want)
	}
	// Every computed cell went through the wall-time histogram.
	if got, want := col.CellWall.Count(), st.Misses; got != want {
		t.Errorf("wall histogram count = %d, misses = %d", got, want)
	}
	if col.WorkerBusy.Value() == 0 {
		t.Error("worker busy time not recorded")
	}

	// All gauges settle at zero after the run, in Stats and collector
	// alike — including after canceled-batch abandonment.
	if st.InFlight != 0 || st.QueueDepth != 0 || st.Waiters != 0 {
		t.Errorf("stats gauges nonzero after drain: %+v", st)
	}
	s := col.Snapshot()
	if s.CellsInFlight != 0 || s.QueueDepth != 0 || s.Waiters != 0 {
		t.Errorf("collector gauges nonzero after drain: %+v", s)
	}
}

// TestDetachedCollectorSeesNothing verifies the nil fast path: an
// engine without a collector runs normally and records nothing.
func TestDetachedCollectorSeesNothing(t *testing.T) {
	e := New(1)
	col := telemetry.New()
	e.SetCollector(col)
	e.SetCollector(nil)
	e.Do(spec(64), func(CellSpec, uint64, Scratch) any { return 1 })
	if col.CacheMisses.Value() != 0 || col.CellWall.Count() != 0 {
		t.Fatalf("detached collector recorded activity: %+v", col.Snapshot())
	}
	st := e.Stats()
	if st.Misses != 1 || st.InFlight != 0 {
		t.Fatalf("stats wrong without collector: %+v", st)
	}
}

// TestStatsGaugesLive observes the in-flight and waiters gauges while
// cells are actually executing.
func TestStatsGaugesLive(t *testing.T) {
	e := New(1)
	col := telemetry.New()
	e.SetCollector(col)

	started := make(chan struct{})
	release := make(chan struct{})
	blocking := func(CellSpec, uint64, Scratch) any {
		close(started)
		<-release
		return "v"
	}
	go e.Do(spec(64), blocking)
	<-started

	// A coalesced waiter on the same spec.
	waiterIn := make(chan struct{})
	go func() {
		close(waiterIn)
		e.Do(spec(64), blocking)
	}()
	<-waiterIn
	// A queued cell: the single worker slot is held by the blocking cell.
	go e.Do(spec(128), func(CellSpec, uint64, Scratch) any { return "q" })

	deadline := time.After(2 * time.Second)
	for {
		st := e.Stats()
		if st.InFlight == 1 && st.Waiters == 1 && st.QueueDepth == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("gauges never converged: %+v", st)
		case <-time.After(time.Millisecond):
		}
	}
	if s := col.Snapshot(); s.CellsInFlight != 1 || s.Waiters != 1 || s.QueueDepth != 1 {
		t.Fatalf("collector gauges diverge: %+v", s)
	}
	close(release)
}
