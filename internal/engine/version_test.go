package engine

import "testing"

// TestVersionPinned is the tripwire for the cell-value format version.
// The perf waves (segment pooling, scratch arenas, conn recycling,
// warm-testbed reuse) are required to be bit-identical — the golden
// cross-section test proves it — so Version stays "1" and every entry
// in a persistent store written by an earlier build remains valid.
//
// If this test fails, one of two things happened:
//   - cell values were perturbed intentionally: bump the golden file
//     too, and update this pin — the store will correctly refuse old
//     entries; or
//   - Version was bumped without a value change (needlessly orphaning
//     every existing store) or a value change shipped without a bump
//     (stale store entries would be served as current): fix that.
func TestVersionPinned(t *testing.T) {
	if Version != "1" {
		t.Fatalf("engine.Version = %q, want %q (see comment above before updating)", Version, "1")
	}
}
