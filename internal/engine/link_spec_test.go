package engine

import (
	"strings"
	"testing"
)

// Custom-link cells must be distinct in the cache but paired in the
// seed derivation: a link sweep replays one workload realization
// (common random numbers), like the buffer axis does.
func TestLinkFieldCachesSeparately(t *testing.T) {
	base := CellSpec{Testbed: "access", Scenario: "long-few", Direction: "up", Buffer: 64, Media: "voip", Seed: 42}
	fiber := base
	fiber.Link = "up=1e+09;down=1e+09;cd=2ms;sd=10ms"

	if base.Key() == fiber.Key() {
		t.Fatal("custom link shares a cache key with the preset link")
	}
	if !strings.Contains(fiber.Key(), fiber.Link) {
		t.Fatalf("link missing from key %q", fiber.Key())
	}
	if DeriveSeed(base) != DeriveSeed(fiber) {
		t.Fatal("link sweep broke common-random-numbers pairing: seeds differ")
	}
	if !strings.Contains(fiber.String(), fiber.Link) {
		t.Fatalf("link missing from String() %q", fiber.String())
	}
}

func TestLinkFieldCanonicalization(t *testing.T) {
	a := CellSpec{Testbed: "access", Scenario: "noBG", Direction: "up", Buffer: 8, Media: "web", Link: "up=2e+06;down=2e+06;cd=5ms;sd=20ms"}
	// noBG canonicalization must still drop the direction with a
	// custom link present.
	if a.Canonical().Direction != "" {
		t.Fatal("noBG direction survived canonicalization on a custom link")
	}
}
