package engine

import (
	"reflect"
	"testing"
	"time"
)

// axesBase is a spec where every field holds a distinct non-zero value
// and none of the Canonical foldings apply (access testbed, a
// congested scenario, BufferUp != Buffer), so perturbing any single
// field cannot be normalized away.
func axesBase() CellSpec {
	return CellSpec{
		Testbed:     "access",
		Scenario:    "long-many",
		Direction:   "down",
		Buffer:      64,
		BufferUp:    32,
		Media:       "voip",
		Variant:     "cubic",
		Link:        "up=1e+06;down=2e+06;cd=2ms;sd=10ms",
		Stop:        "ci5:0.1",
		Seed:        7,
		Duration:    30 * time.Second,
		Warmup:      5 * time.Second,
		Reps:        3,
		ClipSeconds: 20,
		CDNFlows:    100,
	}
}

// perturb returns a copy of s with the named field moved to a
// different valid value that Canonical does not fold back.
func perturb(t *testing.T, s CellSpec, field string) CellSpec {
	t.Helper()
	v := reflect.ValueOf(&s).Elem().FieldByName(field)
	switch field {
	case "Testbed":
		// Stay on "access" values that keep Direction meaningful is
		// impossible for this axis; "backbone" drops Direction, which
		// is fine — the key still must change.
		v.SetString("backbone")
	case "Scenario":
		v.SetString("short-few")
	case "Direction":
		v.SetString("up")
	case "Media":
		v.SetString("web")
	case "Variant":
		v.SetString("reno")
	case "Link":
		v.SetString("up=3e+06;down=4e+06;cd=5ms;sd=20ms")
	case "Stop":
		v.SetString("ci10:0.05")
	default:
		switch v.Kind() {
		case reflect.Int, reflect.Int64:
			v.SetInt(v.Int() + 1)
		case reflect.Uint64:
			v.SetUint(v.Uint() + 1)
		case reflect.String:
			v.SetString(v.String() + "x")
		default:
			t.Fatalf("field %s: unhandled kind %s", field, v.Kind())
		}
	}
	return s
}

// seedAxes is the exact set of fields that may perturb the CRN seed:
// the stimulus-defining axes. Everything else is a comparison axis and
// must leave SeedKey unchanged so paired sweeps replay one workload
// realization. Growing this set silently would break every
// common-random-numbers comparison in the experiments layer, so the
// test pins it.
var seedAxes = map[string]bool{
	"Seed":      true,
	"Testbed":   true,
	"Scenario":  true,
	"Direction": true,
	"CDNFlows":  true,
}

// TestKeyCoversEveryAxis pins the cache-injectivity contract the
// qoelint injectivity analyzer enforces statically: every CellSpec
// field, when moved off the base value, must land the cell in a
// different cache entry. A new field that doesn't change Key would
// alias distinct cells onto one cached result.
func TestKeyCoversEveryAxis(t *testing.T) {
	base := axesBase()
	baseKey := base.Key()
	rt := reflect.TypeOf(base)
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		got := perturb(t, base, name).Key()
		if got == baseKey {
			t.Errorf("Key ignores field %s: %q", name, got)
		}
	}
}

// TestSeedKeyCoversExactlyTheStimulusAxes checks both directions of
// the CRN pairing contract: stimulus axes perturb the seed, comparison
// axes do not.
func TestSeedKeyCoversExactlyTheStimulusAxes(t *testing.T) {
	base := axesBase()
	baseSeed := base.SeedKey()
	rt := reflect.TypeOf(base)
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		got := perturb(t, base, name).SeedKey()
		changed := got != baseSeed
		if seedAxes[name] && !changed {
			t.Errorf("SeedKey ignores stimulus axis %s", name)
		}
		if !seedAxes[name] && changed {
			t.Errorf("SeedKey depends on comparison axis %s (%q); this breaks common-random-numbers pairing", name, got)
		}
	}
}

// TestAxisSetsStayClassified fails when a field is added to CellSpec
// without being classified here: decide whether it is a stimulus axis
// (add it to seedAxes and to SeedKey) or a comparison axis (Key only),
// then update this count.
func TestAxisSetsStayClassified(t *testing.T) {
	rt := reflect.TypeOf(CellSpec{})
	const classified = 15
	if rt.NumField() != classified {
		t.Errorf("CellSpec has %d fields but %d are classified; update axes_test.go (and SeedKey, if the new field shapes the stimulus)", rt.NumField(), classified)
	}
	for name := range seedAxes {
		if _, ok := rt.FieldByName(name); !ok {
			t.Errorf("seedAxes names %s, which is not a CellSpec field", name)
		}
	}
}
