package engine

import "fmt"

// SeedKey is the part of the canonical spec the seed derivation sees:
// the fields that define the background-traffic stimulus (root seed,
// testbed, workload, congestion direction, population size) — and
// deliberately nothing else.
//
// Comparison axes — buffer size, queue discipline, custom link
// rates/delays, media type, variant knobs, repetition counts — are
// excluded, which gives the classic paired-comparison
// (common-random-numbers) design the paper's sweeps rely on: a buffer
// sweep replays the identical workload realization at every size, so
// the spread across a row is attributable to the buffer and not to
// workload resampling, and an ablation's on/off cells differ only in
// the ablated mechanism. A sweep across link presets (DSL vs fiber vs
// LTE) likewise replays one arrival pattern per workload, so the
// spread is the link's doing. Cells with different workloads draw
// decorrelated streams instead of replaying one arrival pattern
// shifted by a config knob.
func (s CellSpec) SeedKey() string {
	c := s.Canonical()
	return fmt.Sprintf("seed=%d|tb=%s|sc=%s|dir=%s|cdn=%d",
		c.Seed, c.Testbed, c.Scenario, c.Direction, c.CDNFlows)
}

// DeriveSeed maps a cell spec to its simulation seed: a hash of the
// root seed and the spec's stimulus-defining fields (SeedKey). Equal
// cells get equal seeds no matter which experiment, worker or
// ordering produced them — this is what makes a parallel sweep
// bit-identical to a sequential one.
func DeriveSeed(s CellSpec) uint64 {
	// FNV-1a over the seed key...
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range []byte(s.SeedKey()) {
		h ^= uint64(b)
		h *= prime64
	}
	// ...then a splitmix64 finalizer: FNV is fast but its low bits mix
	// poorly, and downstream RNG streams are seeded from this value.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	if h == 0 { // keep 0 free as an "unset seed" sentinel downstream
		h = offset64
	}
	return h
}
