package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func spec(buf int) CellSpec {
	return CellSpec{
		Testbed: "access", Scenario: "long-many", Direction: "up",
		Buffer: buf, Media: "voip", Seed: 42,
		Duration: 4 * time.Second, Warmup: 2 * time.Second, Reps: 1,
	}
}

func TestCanonicalDropsIdleDirection(t *testing.T) {
	a := spec(64)
	a.Scenario = "noBG"
	b := a
	b.Direction = "down"
	c := a
	c.Direction = "bidir"
	if a.Key() != b.Key() || a.Key() != c.Key() {
		t.Fatalf("noBG cells with different directions got different keys:\n%s\n%s\n%s",
			a.Key(), b.Key(), c.Key())
	}
	// A congested cell's direction must stay significant.
	up, down := spec(64), spec(64)
	down.Direction = "down"
	if up.Key() == down.Key() {
		t.Fatal("up and down congestion share a key")
	}
}

func TestCanonicalDropsBackboneDirection(t *testing.T) {
	a := spec(749)
	a.Testbed = "backbone"
	b := a
	b.Direction = ""
	if a.Key() != b.Key() {
		t.Fatalf("backbone direction not canonicalized: %s vs %s", a.Key(), b.Key())
	}
}

func TestCanonicalFoldsEqualUplinkBuffer(t *testing.T) {
	a := spec(64)
	b := spec(64)
	b.BufferUp = 64
	if a.Key() != b.Key() {
		t.Fatal("BufferUp == Buffer should fold away")
	}
	c := spec(64)
	c.BufferUp = 8
	if c.Key() == a.Key() {
		t.Fatal("distinct uplink buffer lost in canonicalization")
	}
}

func TestDeriveSeedDeterministicAndDistinct(t *testing.T) {
	s1, s2 := DeriveSeed(spec(64)), DeriveSeed(spec(64))
	if s1 != s2 {
		t.Fatalf("same spec, different seeds: %d vs %d", s1, s2)
	}
	if s1 == 0 {
		t.Fatal("derived seed is the zero sentinel")
	}
	// Different workloads draw decorrelated streams.
	seen := map[uint64]string{}
	for _, sc := range []string{"noBG", "long-few", "long-many", "short-few", "short-many"} {
		for _, dir := range []string{"up", "down"} {
			sp := spec(64)
			sp.Scenario, sp.Direction = sc, dir
			d := DeriveSeed(sp)
			if prev, dup := seen[d]; dup && prev != sp.Canonical().SeedKey() {
				t.Fatalf("seed collision between %q and %q", prev, sp.SeedKey())
			}
			seen[d] = sp.Canonical().SeedKey()
		}
	}
	// The root seed must flow into the derivation.
	other := spec(64)
	other.Seed = 43
	if DeriveSeed(other) == DeriveSeed(spec(64)) {
		t.Fatal("root seed does not affect derived seed")
	}
}

func TestDeriveSeedPairsComparisonAxes(t *testing.T) {
	// Buffer size, media, and variant are comparison axes: cells that
	// differ only there must replay the identical workload
	// realization (common random numbers), as the paper's sweeps do.
	base := DeriveSeed(spec(8))
	for _, buf := range []int{16, 32, 64, 128, 256} {
		if DeriveSeed(spec(buf)) != base {
			t.Fatalf("buffer size leaked into seed (buf=%d)", buf)
		}
	}
	v := spec(8)
	v.Variant = "queue=codel"
	if DeriveSeed(v) != base {
		t.Fatal("variant leaked into seed")
	}
	m := spec(8)
	m.Media = "web"
	if DeriveSeed(m) != base {
		t.Fatal("media leaked into seed")
	}
}

func TestDoMemoizes(t *testing.T) {
	e := New(2)
	var calls atomic.Int64
	fn := func(sp CellSpec, seed uint64, _ Scratch) any {
		calls.Add(1)
		return seed
	}
	v1 := e.Do(spec(64), fn)
	v2 := e.Do(spec(64), fn)
	if v1 != v2 {
		t.Fatalf("cached value changed: %v vs %v", v1, v2)
	}
	if calls.Load() != 1 {
		t.Fatalf("cell computed %d times", calls.Load())
	}
	st := e.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDoCoalescesConcurrentCallers(t *testing.T) {
	e := New(4)
	var calls atomic.Int64
	fn := func(sp CellSpec, seed uint64, _ Scratch) any {
		calls.Add(1)
		time.Sleep(20 * time.Millisecond)
		return seed
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Do(spec(64), fn)
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("singleflight broken: %d computations", calls.Load())
	}
}

func TestRunBatchOrderAndParallelism(t *testing.T) {
	e := New(4)
	var inFlight, peak atomic.Int64
	fn := func(sp CellSpec, seed uint64, _ Scratch) any {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		inFlight.Add(-1)
		return sp.Buffer
	}
	var tasks []Task
	bufs := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	for _, b := range bufs {
		tasks = append(tasks, Task{Spec: spec(b), Fn: fn})
	}
	out := e.RunBatch(tasks)
	for i, b := range bufs {
		if out[i] != b {
			t.Fatalf("out[%d] = %v, want %d (order not preserved)", i, out[i], b)
		}
	}
	if peak.Load() < 2 {
		t.Fatalf("no parallelism observed (peak %d)", peak.Load())
	}
	if peak.Load() > 4 {
		t.Fatalf("worker bound exceeded: peak %d > 4", peak.Load())
	}
}

func TestSchedulingOrderIndependence(t *testing.T) {
	// The same grid submitted forwards, backwards, and one-by-one must
	// produce identical per-cell values: each value depends only on
	// the derived seed.
	fn := func(sp CellSpec, seed uint64, _ Scratch) any {
		return fmt.Sprintf("%s:%d", sp.Scenario, seed%1000)
	}
	var fwd, rev []Task
	for _, b := range []int{8, 16, 32, 64} {
		fwd = append(fwd, Task{Spec: spec(b), Fn: fn})
	}
	for i := len(fwd) - 1; i >= 0; i-- {
		rev = append(rev, fwd[i])
	}
	a := New(8).RunBatch(fwd)
	b := New(1).RunBatch(rev)
	for i := range a {
		if a[i] != b[len(b)-1-i] {
			t.Fatalf("cell %d differs across schedules: %v vs %v", i, a[i], b[len(b)-1-i])
		}
	}
}

func TestPanickingCellDoesNotPoisonEngine(t *testing.T) {
	e := New(1) // one slot: a leaked slot would hang everything below
	boom := func(CellSpec, uint64, Scratch) any { panic("cell exploded") }
	mustPanic := func() (r any) {
		defer func() { r = recover() }()
		e.Do(spec(8), boom)
		return nil
	}
	if r := mustPanic(); r != "cell exploded" {
		t.Fatalf("panic not propagated to computing caller: %v", r)
	}
	// The poisoned entry must be gone: a retry recomputes...
	var calls atomic.Int64
	good := func(sp CellSpec, seed uint64, _ Scratch) any { calls.Add(1); return seed }
	e.Do(spec(8), good)
	if calls.Load() != 1 {
		t.Fatalf("retry after panic computed %d times", calls.Load())
	}
	// ...and the worker slot was released: a different cell still runs.
	done := make(chan struct{})
	go func() { e.Do(spec(16), good); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("worker slot leaked by panicking cell")
	}
	if e.Stats().Entries != 2 {
		t.Fatalf("cache entries = %d, want 2 (panicked entry dropped)", e.Stats().Entries)
	}
}

func TestPanicPropagatesToCoalescedWaiters(t *testing.T) {
	e := New(2)
	started := make(chan struct{})
	slow := func(CellSpec, uint64, Scratch) any {
		close(started)
		time.Sleep(20 * time.Millisecond)
		panic("late boom")
	}
	recovered := make(chan any, 2)
	run := func(fn CellFunc) {
		defer func() { recovered <- recover() }()
		e.Do(spec(8), fn)
		recovered <- nil
	}
	go run(slow)
	<-started
	go run(slow) // coalesces onto the in-flight computation
	for i := 0; i < 2; i++ {
		if r := <-recovered; r != "late boom" {
			t.Fatalf("caller %d got %v, want the cell's panic", i, r)
		}
	}
}

func TestDoCtxCanceledBeforeStart(t *testing.T) {
	e := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	fn := func(CellSpec, uint64, Scratch) any { calls.Add(1); return 1 }
	if _, err := e.DoCtx(ctx, spec(8), fn); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if calls.Load() != 0 {
		t.Fatal("canceled call executed the cell")
	}
	st := e.Stats()
	if st.Canceled != 1 || st.Entries != 0 || st.Misses != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The engine is unpoisoned: a live call computes normally.
	if v := e.Do(spec(8), fn); v != 1 || calls.Load() != 1 {
		t.Fatalf("retry after cancellation: v=%v calls=%d", v, calls.Load())
	}
}

func TestDoCtxCanceledWhileQueued(t *testing.T) {
	e := New(1) // one slot, occupied: the second call must queue
	release := make(chan struct{})
	started := make(chan struct{})
	slow := func(CellSpec, uint64, Scratch) any {
		close(started)
		<-release
		return "slow"
	}
	go e.Do(spec(8), slow)
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.DoCtx(ctx, spec(16), func(CellSpec, uint64, Scratch) any { return "fast" })
		done <- err
	}()
	// Give the queued call time to block on the semaphore, then cancel:
	// it must return promptly without waiting for the slow cell.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("queued call returned %v, want ErrCanceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled queued call did not return promptly")
	}
	close(release)
	// The abandoned cell left no cache entry: a later call recomputes.
	var calls atomic.Int64
	e.Do(spec(16), func(CellSpec, uint64, Scratch) any { calls.Add(1); return "fast" })
	if calls.Load() != 1 {
		t.Fatalf("abandoned cell cached? calls = %d", calls.Load())
	}
}

func TestDoCtxWaiterCancellation(t *testing.T) {
	e := New(2)
	release := make(chan struct{})
	started := make(chan struct{})
	slow := func(CellSpec, uint64, Scratch) any {
		close(started)
		<-release
		return "v"
	}
	go e.Do(spec(8), slow)
	<-started

	// A waiter coalesced onto the in-flight cell gives up on cancel...
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.DoCtx(ctx, spec(8), slow); !errors.Is(err, ErrCanceled) {
		t.Fatalf("coalesced waiter returned %v, want ErrCanceled", err)
	}
	// ...while the in-flight computation drains and is cached.
	close(release)
	if v := e.Do(spec(8), func(CellSpec, uint64, Scratch) any { return "recomputed" }); v != "v" {
		t.Fatalf("drained cell not cached: got %v", v)
	}
}

func TestCanceledEntryWakesCoalescedWaiters(t *testing.T) {
	e := New(1)
	release := make(chan struct{})
	started := make(chan struct{})
	go e.Do(spec(8), func(CellSpec, uint64, Scratch) any {
		close(started)
		<-release
		return "slow"
	})
	<-started

	// Caller A queues for spec(16) and owns its entry; caller B
	// coalesces onto that entry with a live context. When A is
	// canceled, B must be woken, retry, and compute the cell itself.
	ctxA, cancelA := context.WithCancel(context.Background())
	aQueued := make(chan struct{})
	go func() {
		close(aQueued)
		e.DoCtx(ctxA, spec(16), func(CellSpec, uint64, Scratch) any { return "A" })
	}()
	<-aQueued
	time.Sleep(10 * time.Millisecond) // let A register its entry and queue

	bDone := make(chan any, 1)
	go func() {
		v, err := e.DoCtx(context.Background(), spec(16), func(CellSpec, uint64, Scratch) any { return "B" })
		if err != nil {
			bDone <- err
			return
		}
		bDone <- v
	}()
	time.Sleep(10 * time.Millisecond) // let B coalesce onto A's entry
	cancelA()
	close(release)
	select {
	case v := <-bDone:
		if v != "B" && v != "A" {
			t.Fatalf("waiter got %v, want a computed value", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter behind a canceled owner never woke")
	}
}

func TestSubmitBatchCompletionCallbacks(t *testing.T) {
	e := New(4)
	fn := func(sp CellSpec, seed uint64, _ Scratch) any { return sp.Buffer }
	bufs := []int{8, 16, 32, 64}
	var tasks []Task
	for _, b := range bufs {
		tasks = append(tasks, Task{Spec: spec(b), Fn: fn})
	}
	var mu sync.Mutex
	got := map[int]any{}
	e.SubmitBatch(context.Background(), tasks, func(i int, v any, err error) {
		if err != nil {
			t.Errorf("task %d: %v", i, err)
		}
		mu.Lock()
		got[i] = v
		mu.Unlock()
	})
	if len(got) != len(bufs) {
		t.Fatalf("callbacks for %d/%d tasks", len(got), len(bufs))
	}
	for i, b := range bufs {
		if got[i] != b {
			t.Fatalf("task %d = %v, want %d", i, got[i], b)
		}
	}
}

func TestSubmitBatchCancellationDrainsInFlight(t *testing.T) {
	e := New(1) // serialize: first task in flight, rest queued
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	firstRunning := make(chan struct{})
	var once sync.Once
	fn := func(sp CellSpec, seed uint64, _ Scratch) any {
		once.Do(func() {
			close(firstRunning)
			// Give the cancellation time to land while this cell is
			// mid-execution: it must still run to completion.
			time.Sleep(30 * time.Millisecond)
		})
		executed.Add(1)
		return sp.Buffer
	}
	var tasks []Task
	for _, b := range []int{8, 16, 32, 64, 128, 256} {
		tasks = append(tasks, Task{Spec: spec(b), Fn: fn})
	}
	go func() {
		<-firstRunning
		cancel()
	}()
	var okCount, canceledCount atomic.Int64
	e.SubmitBatch(ctx, tasks, func(i int, v any, err error) {
		switch {
		case err == nil:
			okCount.Add(1)
		case errors.Is(err, ErrCanceled):
			canceledCount.Add(1)
		default:
			t.Errorf("task %d: unexpected error %v", i, err)
		}
	})
	if okCount.Load() < 1 {
		t.Fatal("in-flight cell did not drain to completion")
	}
	if canceledCount.Load() < 1 {
		t.Fatal("no queued cell was abandoned")
	}
	if okCount.Load()+canceledCount.Load() != int64(len(tasks)) {
		t.Fatalf("callbacks: %d ok + %d canceled != %d tasks",
			okCount.Load(), canceledCount.Load(), len(tasks))
	}
	if st := e.Stats(); st.Canceled != uint64(canceledCount.Load()) {
		t.Fatalf("Stats.Canceled = %d, callbacks saw %d", st.Canceled, canceledCount.Load())
	}
}

func TestSetWorkersAndReset(t *testing.T) {
	e := New(0)
	if e.Workers() < 1 {
		t.Fatalf("default workers = %d", e.Workers())
	}
	e.SetWorkers(3)
	if e.Workers() != 3 || e.Stats().Workers != 3 {
		t.Fatalf("workers = %d", e.Workers())
	}
	e.Do(spec(8), func(CellSpec, uint64, Scratch) any { return 1 })
	if e.Stats().Entries != 1 {
		t.Fatal("missing cache entry")
	}
	e.ResetCache()
	st := e.Stats()
	if st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("reset left stats %+v", st)
	}
}
