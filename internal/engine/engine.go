package engine

import (
	"context"
	"errors"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bufferqoe/internal/telemetry"
)

// Version stamps the simulation semantics. It is part of every
// persistent-store content address: two processes may share a stored
// cell result only if they agree on Version, because a cell's value
// is a pure function of (canonical spec, Version).
//
// Bump rule: increment whenever any cell's computed value can change —
// simulator behavior, seed derivation, QoE models, default folding in
// Canonical(), or the meaning of any CellSpec field. The golden
// bit-identity test is the tripwire: if it needs regenerating, Version
// must be bumped in the same change, otherwise warm stores would keep
// serving values the new code can no longer reproduce. Cache-neutral
// changes (scheduling, telemetry, new axes that canonicalize away)
// must NOT bump it, or stores would be orphaned for nothing.
const Version = "1"

// CellStore is a persistent second cache tier consulted on in-memory
// misses and written through after fresh computes. Implementations
// (see internal/store) must be safe for concurrent use, and Get must
// return values bit-identical to the compute it replaces. Put must
// not block: persistence is off the hot path by contract.
type CellStore interface {
	// Get returns the stored value for an engine cache key, if any.
	Get(key string) (any, bool)
	// Put schedules the value for persistence and reports whether it
	// was accepted (false: unsupported type, duplicate, or shed load).
	Put(key string, v any) bool
}

// ErrCanceled reports that a cell was abandoned because its context
// was canceled before the cell executed. Cells already executing are
// never interrupted — simulation state is not checkpointable — so a
// canceled batch drains its in-flight cells (their results land in
// the cache) and abandons only the queued remainder.
var ErrCanceled = errors.New("engine: cell canceled")

// CellFunc computes one cell. It must be a pure function of the spec
// and the derived seed: no reads of clocks, global RNGs, or state
// mutated by other cells. The engine enforces the payoff — a pure
// cell's value can be computed once, on any worker, in any order, and
// be shared by every experiment that names the same spec.
//
// scr is the worker's reusable scratch (nil when the engine has no
// scratch factory): per-run working memory — monitors, media caches,
// metric accumulators — recycled between cells so steady-state sweeps
// stop paying a fresh-allocation tax per cell. A cell may keep state
// in the scratch only if reuse cannot change results: mutable state
// must be behind Reset, caches must be keyed by everything that
// determines their content.
type CellFunc func(spec CellSpec, seed uint64, scr Scratch) any

// Scratch is reusable per-cell working memory. Reset is called by the
// engine before every cell that borrows the scratch.
type Scratch interface {
	Reset()
}

// Task pairs a spec with the function that computes it, for batch
// submission.
type Task struct {
	Spec CellSpec
	Fn   CellFunc
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	// Workers is the current worker-pool size.
	Workers int
	// Entries is the number of cached cell results (including ones
	// still being computed).
	Entries int
	// Hits counts Do calls answered from the cache (or coalesced onto
	// an in-flight computation of the same cell).
	Hits uint64
	// Misses counts Do calls that actually computed a cell.
	Misses uint64
	// Canceled counts cells abandoned before execution because their
	// context was canceled (queued cells of a canceled batch, and
	// waiters that gave up on an in-flight computation).
	Canceled uint64
	// InFlight is the number of cells executing right now.
	InFlight int64
	// QueueDepth is the number of callers holding a cache entry but
	// still waiting for a worker slot.
	QueueDepth int64
	// Waiters is the number of callers blocked on another caller's
	// in-flight computation of the same cell.
	Waiters int64
	// StoreHits counts cells answered from the persistent store tier
	// (no simulation ran); StoreMisses counts store lookups that found
	// nothing and fell through to a compute; StoreWrites counts fresh
	// results accepted by the store for persistence. All zero when no
	// store is attached.
	StoreHits   uint64
	StoreMisses uint64
	StoreWrites uint64
}

// entry is one cache slot; done is closed once val (or panicked, or
// canceled) is set.
type entry struct {
	done     chan struct{}
	val      any
	panicked any
	// canceled marks an entry whose owning caller was canceled before
	// computing; the entry is already deleted from the cache and
	// coalesced waiters must retry (the cell was never computed).
	canceled bool
}

// Engine runs cells on a bounded worker pool and memoizes their
// results by canonical spec.
type Engine struct {
	mu       sync.Mutex
	sem      chan struct{} // capacity == worker count
	cache    map[string]*entry
	hits     atomic.Uint64
	misses   atomic.Uint64
	canceled atomic.Uint64
	workers  int

	// store, when non-nil, is the persistent second cache tier: an
	// in-memory miss consults it before acquiring a worker slot, and a
	// fresh compute writes through to it. Guarded by mu (read once per
	// DoCtx miss path); nil is the detached state.
	store       CellStore
	storeHits   atomic.Uint64
	storeMisses atomic.Uint64
	storeWrites atomic.Uint64

	// Live gauges: maintained on every DoCtx path (including panics
	// and canceled-batch abandonment) so Stats stays consistent — each
	// increment has a matching decrement on every exit.
	inFlight   atomic.Int64
	queueDepth atomic.Int64
	waiters    atomic.Int64

	// collector, when non-nil, mirrors every counter and gauge into a
	// telemetry.Collector and enables the per-cell extras that cost
	// something (wall-clock reads, pprof labels). Loaded once per DoCtx
	// call; nil is the zero-overhead disabled state.
	collector atomic.Pointer[telemetry.Collector]

	scratchNew  func() Scratch
	scratchPool []Scratch
}

// SetCollector attaches a telemetry collector (nil detaches). With a
// collector attached, every cache hit/miss/cancel and gauge movement
// is mirrored into it, fresh computations record wall time and worker
// busy-nanoseconds, and worker goroutines carry runtime/pprof labels
// (qoe_testbed, qoe_scenario, qoe_media, qoe_buffer) so CPU profiles
// attribute samples to grid coordinates. Attach before submitting
// work: counters mirror from attachment onward, so a collector
// attached to an idle engine reconciles exactly with Stats deltas.
func (e *Engine) SetCollector(c *telemetry.Collector) { e.collector.Store(c) }

// Collector returns the attached collector, or nil.
func (e *Engine) Collector() *telemetry.Collector { return e.collector.Load() }

// SetStore attaches a persistent result store as the second cache
// tier (nil detaches). Attaching a store never changes results — a
// store hit is by contract bit-identical to the compute it skips — it
// only changes how many cells are simulated. The store is consulted
// on the in-memory miss path exclusively, so the warm-cache fast path
// and the collector-off zero-overhead guarantees are untouched.
func (e *Engine) SetStore(st CellStore) {
	e.mu.Lock()
	e.store = st
	e.mu.Unlock()
}

// Store returns the attached persistent store, or nil.
func (e *Engine) Store() CellStore {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.store
}

// SetScratch installs a factory for per-worker scratch memory. Each
// cell computation borrows a scratch from a free-list (creating one
// via the factory when none is idle), gets it Reset, and returns it
// when done — so at most one scratch exists per concurrently running
// cell, regardless of how many cells a sweep submits.
func (e *Engine) SetScratch(factory func() Scratch) {
	e.mu.Lock()
	e.scratchNew = factory
	e.scratchPool = nil
	e.mu.Unlock()
}

func (e *Engine) takeScratch() Scratch {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.scratchNew == nil {
		return nil
	}
	if n := len(e.scratchPool); n > 0 {
		s := e.scratchPool[n-1]
		e.scratchPool = e.scratchPool[:n-1]
		s.Reset()
		return s
	}
	s := e.scratchNew()
	s.Reset()
	return s
}

func (e *Engine) putScratch(s Scratch) {
	if s == nil {
		return
	}
	e.mu.Lock()
	e.scratchPool = append(e.scratchPool, s)
	e.mu.Unlock()
}

// New creates an engine with the given worker-pool size; n <= 0 uses
// GOMAXPROCS.
func New(n int) *Engine {
	e := &Engine{cache: map[string]*entry{}}
	e.SetWorkers(n)
	return e
}

// SetWorkers resizes the worker pool; n <= 0 uses GOMAXPROCS. Cells
// already running are unaffected (they release into the pool they
// acquired from); new submissions see the new bound.
func (e *Engine) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e.mu.Lock()
	e.workers = n
	e.sem = make(chan struct{}, n)
	e.mu.Unlock()
}

// Workers returns the current worker-pool size.
func (e *Engine) Workers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.workers
}

// Do returns the cell's value, computing it at most once per process.
// Concurrent calls for the same canonical spec coalesce: one caller
// computes (bounded by the worker pool), the rest wait for its value.
// A panicking cell never poisons the engine: the worker slot is
// released, the cache entry is dropped (a retry recomputes), and the
// panic propagates to the computing caller and any coalesced waiters.
func (e *Engine) Do(spec CellSpec, fn CellFunc) any {
	// context.Background is never canceled, so DoCtx cannot fail here.
	v, _ := e.DoCtx(context.Background(), spec, fn)
	return v
}

// DoCtx is Do with cancellation: a call whose ctx is canceled before
// the cell starts executing returns ErrCanceled and leaves the engine
// exactly as if the call never happened (no cache entry, no leaked
// worker slot — a later call recomputes). Once a cell is executing it
// runs to completion and is cached; cancellation only prevents
// execution from starting.
func (e *Engine) DoCtx(ctx context.Context, spec CellSpec, fn CellFunc) (any, error) {
	spec = spec.Canonical()
	k := spec.Key()
	// One collector load per call: the nil check is the entire cost of
	// disabled telemetry on this path.
	col := e.collector.Load()

	for {
		if ctx.Err() != nil {
			e.noteCanceled(col)
			return nil, ErrCanceled
		}
		e.mu.Lock()
		if ent, ok := e.cache[k]; ok {
			e.mu.Unlock()
			select {
			case <-ent.done:
				// Completed entry (the warm-hit fast path): no waiting, so
				// the waiters gauge is never churned.
			default:
				e.waiters.Add(1)
				if col != nil {
					col.Waiters.Add(1)
				}
				select {
				case <-ent.done:
					e.waiters.Add(-1)
					if col != nil {
						col.Waiters.Add(-1)
					}
				case <-ctx.Done():
					e.waiters.Add(-1)
					if col != nil {
						col.Waiters.Add(-1)
					}
					e.noteCanceled(col)
					return nil, ErrCanceled
				}
			}
			if ent.canceled {
				// The computing caller was canceled before executing and
				// already dropped the entry; race for a fresh one.
				continue
			}
			e.hits.Add(1)
			if col != nil {
				col.CacheHits.Inc()
			}
			if ent.panicked != nil {
				panic(ent.panicked)
			}
			return ent.val, nil
		}
		ent := &entry{done: make(chan struct{})}
		e.cache[k] = ent
		sem := e.sem
		st := e.store
		e.mu.Unlock()

		// Second tier: before competing for a worker slot, ask the
		// persistent store. A hit completes the entry without simulating
		// — it is neither a Hit (in-memory) nor a Miss (no compute ran),
		// so Stats.Misses == 0 on a fully warm store.
		if st != nil {
			if v, ok := e.storeGet(st, k, col); ok {
				ent.val = v
				close(ent.done)
				return v, nil
			}
		}

		e.queueDepth.Add(1)
		if col != nil {
			col.QueueDepth.Add(1)
		}
		select {
		case sem <- struct{}{}:
			e.queueDepth.Add(-1)
			if col != nil {
				col.QueueDepth.Add(-1)
			}
		case <-ctx.Done():
			e.queueDepth.Add(-1)
			if col != nil {
				col.QueueDepth.Add(-1)
			}
			e.abandon(k, ent, col)
			return nil, ErrCanceled
		}
		// The semaphore send and the cancellation can race; re-check so
		// a canceled batch never starts new work it won a slot for.
		if ctx.Err() != nil {
			<-sem
			e.abandon(k, ent, col)
			return nil, ErrCanceled
		}

		e.misses.Add(1)
		if col != nil {
			col.CacheMisses.Inc()
		}
		e.compute(ctx, spec, fn, k, ent, sem, col)
		// Write-through: persist the fresh result. Put only enqueues
		// (the store writes on its own goroutine), so the compute path
		// never waits on disk; a panicking cell never reaches here.
		if st != nil && st.Put(k, ent.val) {
			e.storeWrites.Add(1)
			if col != nil {
				col.StoreWrites.Inc()
			}
		}
		return ent.val, nil
	}
}

// storeGet consults the persistent tier, maintaining the store
// counters and — with a collector attached — the store-load latency
// histogram.
func (e *Engine) storeGet(st CellStore, k string, col *telemetry.Collector) (any, bool) {
	var start time.Time
	if col != nil {
		//lint:allow qoelint/determinism observational latency telemetry only; never flows into a cell result or seed
		start = time.Now()
	}
	v, ok := st.Get(k)
	if col != nil {
		//lint:allow qoelint/determinism observational latency telemetry only; never flows into a cell result or seed
		col.StoreLoad.Observe(time.Since(start).Seconds())
	}
	if ok {
		e.storeHits.Add(1)
		if col != nil {
			col.StoreHits.Inc()
		}
	} else {
		e.storeMisses.Add(1)
		if col != nil {
			col.StoreMisses.Inc()
		}
	}
	return v, ok
}

// compute executes one cell on an acquired worker slot, maintaining
// the in-flight gauge and — with a collector attached — the wall-time
// histogram, worker busy-time, and pprof labels, on completion and
// panic alike.
func (e *Engine) compute(ctx context.Context, spec CellSpec, fn CellFunc, k string, ent *entry, sem chan struct{}, col *telemetry.Collector) {
	e.inFlight.Add(1)
	var start time.Time
	if col != nil {
		col.CellsInFlight.Add(1)
		//lint:allow qoelint/determinism observational wall-time telemetry only; never flows into a cell result or seed
		start = time.Now()
	}
	completed := false
	defer func() {
		e.inFlight.Add(-1)
		if col != nil {
			//lint:allow qoelint/determinism observational wall-time telemetry only; never flows into a cell result or seed
			wall := time.Since(start)
			col.CellsInFlight.Add(-1)
			col.WorkerBusy.Add(uint64(wall))
			col.CellWall.Observe(wall.Seconds())
		}
		<-sem
		if !completed {
			ent.panicked = recover()
			e.mu.Lock()
			delete(e.cache, k)
			e.mu.Unlock()
			close(ent.done)
			panic(ent.panicked)
		}
		close(ent.done)
	}()
	scr := e.takeScratch()
	// Deferred so a panicking cell still returns the scratch (and
	// its expensive content caches) to the pool; the next borrower
	// Resets it before use, so partially mutated state cannot leak.
	defer e.putScratch(scr)
	if col != nil {
		// pprof labels cost a context and a label-set allocation per
		// cell; worth it only when someone is observing.
		pprof.Do(ctx, pprof.Labels(
			"qoe_testbed", spec.Testbed,
			"qoe_scenario", spec.Scenario,
			"qoe_media", spec.Media,
			"qoe_buffer", strconv.Itoa(spec.Buffer),
		), func(context.Context) {
			ent.val = fn(spec, DeriveSeed(spec), scr)
		})
	} else {
		ent.val = fn(spec, DeriveSeed(spec), scr)
	}
	completed = true
}

// noteCanceled bumps the canceled counter and its collector mirror.
func (e *Engine) noteCanceled(col *telemetry.Collector) {
	e.canceled.Add(1)
	if col != nil {
		col.CellsCanceled.Inc()
	}
}

// abandon retracts a never-computed cache entry after a cancellation:
// the slot is removed so future callers recompute, and coalesced
// waiters are woken to retry.
func (e *Engine) abandon(k string, ent *entry, col *telemetry.Collector) {
	e.mu.Lock()
	delete(e.cache, k)
	e.mu.Unlock()
	ent.canceled = true
	close(ent.done)
	e.noteCanceled(col)
}

// RunBatch fans a batch of cells out across the worker pool and
// returns their values in submission order. Duplicate specs within a
// batch (or against other in-flight batches) are computed once.
func (e *Engine) RunBatch(tasks []Task) []any {
	out, _ := e.RunBatchCtx(context.Background(), tasks)
	return out
}

// RunBatchCtx is RunBatch with cancellation: it returns ErrCanceled —
// and a nil slice — if ctx was canceled before every task executed.
// In-flight tasks drain into the cache; queued tasks are abandoned.
func (e *Engine) RunBatchCtx(ctx context.Context, tasks []Task) ([]any, error) {
	out := make([]any, len(tasks))
	errs := make([]error, len(tasks))
	e.SubmitBatch(ctx, tasks, func(i int, v any, err error) {
		out[i], errs[i] = v, err
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SubmitBatch fans a batch of cells out across the worker pool and
// invokes each as every task completes, in completion order — the
// streaming primitive batch APIs and progress reporting build on.
// each(i, v, err) runs on the completing task's goroutine, possibly
// concurrently with other completions; err is ErrCanceled for tasks
// abandoned because ctx was canceled before they executed. SubmitBatch
// returns once every callback has run.
func (e *Engine) SubmitBatch(ctx context.Context, tasks []Task, each func(i int, v any, err error)) {
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for i, t := range tasks {
		go func(i int, t Task) {
			defer wg.Done()
			v, err := e.DoCtx(ctx, t.Spec, t.Fn)
			each(i, v, err)
		}(i, t)
	}
	wg.Wait()
}

// Stats snapshots the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	entries, workers := len(e.cache), e.workers
	e.mu.Unlock()
	return Stats{
		Workers:     workers,
		Entries:     entries,
		Hits:        e.hits.Load(),
		Misses:      e.misses.Load(),
		Canceled:    e.canceled.Load(),
		InFlight:    e.inFlight.Load(),
		QueueDepth:  e.queueDepth.Load(),
		Waiters:     e.waiters.Load(),
		StoreHits:   e.storeHits.Load(),
		StoreMisses: e.storeMisses.Load(),
		StoreWrites: e.storeWrites.Load(),
	}
}

// ResetCache drops all cached results, detaches the persistent store
// tier, and zeroes the hit/miss counters. Intended for tests and
// long-lived processes that change the simulation code underneath the
// cache (which nothing in-process can). Detaching the store is part
// of the contract: a reset promises genuine cold runs, and a store
// left attached would silently answer "cold" cells from disk.
func (e *Engine) ResetCache() {
	e.mu.Lock()
	e.cache = map[string]*entry{}
	e.store = nil
	e.mu.Unlock()
	e.hits.Store(0)
	e.misses.Store(0)
	e.canceled.Store(0)
	e.storeHits.Store(0)
	e.storeMisses.Store(0)
	e.storeWrites.Store(0)
}
