// Package engine is the parallel cell-execution subsystem of the
// reproduction. Every experiment in the paper's evaluation is a grid
// of independent simulation cells (testbed x scenario x direction x
// buffer x media); the engine gives each cell
//
//   - a canonical description (CellSpec) that names everything the
//     cell's outcome depends on,
//   - a seed derived deterministically from that description, so the
//     result is a pure function of the spec and independent of
//     scheduling order,
//   - a worker-pool slot, so a grid fans out across cores, and
//   - a memoized result, so cells shared between experiments (the
//     noBG rows of fig7a/b/c, the fig1 CDN population, the SD/ClipC
//     backbone cells of fig9b, ext-clips and ext-psnr) are computed
//     exactly once per process.
package engine

import (
	"fmt"
	"time"
)

// CellSpec canonically describes one simulation cell. Two cells with
// equal canonical specs are the same cell: they derive the same seed,
// compute the same value, and share one cache entry. Builders must
// therefore put every result-shaping knob either in a named field or
// in the Variant tag, and must leave fields the cell does not read at
// their zero value (a web cell's outcome does not depend on
// ClipSeconds, so a web spec carries ClipSeconds 0 and probes with
// different clip settings still share the cached cell).
type CellSpec struct {
	// Testbed is "access" or "backbone" ("" for testbed-less cells
	// such as the wild CDN analysis).
	Testbed string
	// Scenario is the canonical workload encoding: a Table 1 preset
	// name ("noBG", "long-many", ...) or, for a custom mix, the
	// canonical component rendering ("up:long=2;down:web=48/1.5s" —
	// see testbed.Workload.Encode). The two alphabets cannot collide
	// (preset names never contain ':'), and builders must fold a mix
	// equal to a direction-masked preset onto the preset's name so
	// both spellings share one cell.
	Scenario string
	// Direction is the congestion direction on the access testbed:
	// "down", "up" or "bidir". It is meaningless — and canonicalized
	// away — on the backbone and for the idle noBG scenario, and empty
	// for custom mixes (their encoding names its own directions).
	Direction string
	// Buffer is the bottleneck buffer in packets (downlink on the
	// access testbed).
	Buffer int
	// BufferUp overrides the access uplink buffer when it differs
	// from Buffer; 0 means "same as Buffer".
	BufferUp int
	// Media names the foreground measurement ("voip", "web", "video",
	// "httpvideo", "background", "wild", ...).
	Media string
	// Variant is a canonical tag for any remaining knobs (queue
	// discipline, congestion control, video profile, fetch mode...).
	// "" is the paper's default configuration.
	Variant string
	// Link is the canonical encoding of a custom bottleneck link
	// (rates and delays differing from the testbed preset), e.g.
	// "up=1e+09;down=1e+09;cd=2ms;sd=10ms". "" is the preset link of
	// the named testbed. Builders must canonicalize: a custom link
	// equal to the preset must be encoded as "".
	Link string
	// Stop is the canonical encoding of an adaptive-replication
	// stopping rule ("ci<minReps>:<halfWidth>"), or "" for exhaustive
	// repetition. Unlike the observational Collector, the stopping rule
	// shapes the cell's value (it may run fewer reps), so it is a cache
	// axis: adaptive and exhaustive runs of the same cell occupy
	// distinct cache/store entries. It deliberately does NOT enter the
	// seed (see SeedKey): an adaptive cell's first n repetitions are
	// the same realizations as the exhaustive cell's, which is what
	// makes early-stopped results comparable to full runs.
	Stop string

	// Seed is the root seed; the cell's own seed is derived from it
	// together with the stimulus-defining fields only — see SeedKey
	// for the exact list. Comparison axes (buffer, media, variant,
	// link) deliberately do not perturb the seed.
	Seed uint64
	// Duration and Warmup are the background measurement window and
	// warmup of Options.
	Duration time.Duration
	Warmup   time.Duration
	// Reps is the number of calls/streams/fetches in the cell.
	Reps int
	// ClipSeconds is the video clip length (video cells only).
	ClipSeconds int
	// CDNFlows sizes the synthetic Section 3 population (wild cells
	// only).
	CDNFlows int
}

// Canonical normalizes a spec so that equivalent cells compare equal:
// the congestion direction is dropped where no congestion exists
// (backbone, noBG) and an uplink buffer equal to the downlink one is
// folded into Buffer. This is what makes the noBG columns of
// fig7a/fig7b/fig7c one set of cells instead of three.
func (s CellSpec) Canonical() CellSpec {
	if s.Testbed != "access" || s.Scenario == "noBG" || s.Scenario == "" {
		s.Direction = ""
	}
	if s.BufferUp == s.Buffer {
		s.BufferUp = 0
	}
	return s
}

// Key renders the canonical spec as the cache/seed key. The Stop axis
// is appended only when set, so every pre-existing cell keeps the
// content address it had before adaptive replication existed (the
// persistent store stays valid across the upgrade); the suffix cannot
// collide with a suffix-free key because those always end in "cdn=<n>".
//
//qoe:encodes CellSpec
func (s CellSpec) Key() string {
	c := s.Canonical()
	k := fmt.Sprintf("tb=%s|sc=%s|dir=%s|buf=%d|bufup=%d|media=%s|var=%s|link=%s|seed=%d|dur=%d|warm=%d|reps=%d|clip=%d|cdn=%d",
		c.Testbed, c.Scenario, c.Direction, c.Buffer, c.BufferUp,
		c.Media, c.Variant, c.Link, c.Seed,
		int64(c.Duration), int64(c.Warmup), c.Reps, c.ClipSeconds, c.CDNFlows)
	if c.Stop != "" {
		k += "|stop=" + c.Stop
	}
	return k
}

// String is a compact human-readable form for logs and errors.
func (s CellSpec) String() string {
	c := s.Canonical()
	out := c.Media + "/" + c.Testbed + "/" + c.Scenario
	if c.Direction != "" {
		out += "/" + c.Direction
	}
	out += fmt.Sprintf("@%d", c.Buffer)
	if c.Variant != "" {
		out += "[" + c.Variant + "]"
	}
	if c.Link != "" {
		out += "{" + c.Link + "}"
	}
	if c.Stop != "" {
		out += "<" + c.Stop + ">"
	}
	return out
}
