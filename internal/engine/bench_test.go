package engine

import (
	"testing"
	"time"
)

// busyCell burns deterministic CPU proportional to the spec's buffer,
// standing in for a simulation cell.
func busyCell(sp CellSpec, seed uint64, _ Scratch) any {
	x := seed
	for i := 0; i < 200_000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

func benchTasks() []Task {
	var tasks []Task
	for _, buf := range []int{8, 16, 32, 64, 128, 256} {
		for _, sc := range []string{"noBG", "long-few", "long-many", "short-few", "short-many"} {
			sp := CellSpec{
				Testbed: "access", Scenario: sc, Direction: "up", Buffer: buf,
				Media: "bench", Seed: 42, Duration: 4 * time.Second, Reps: 1,
			}
			tasks = append(tasks, Task{Spec: sp, Fn: busyCell})
		}
	}
	return tasks
}

// BenchmarkBatchSequential is the single-worker baseline for a
// 30-cell grid.
func BenchmarkBatchSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New(1)
		e.RunBatch(benchTasks())
	}
}

// BenchmarkBatchParallel fans the same grid across GOMAXPROCS
// workers.
func BenchmarkBatchParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New(0)
		e.RunBatch(benchTasks())
	}
}

// BenchmarkBatchWarmCache measures the memoized path: every cell a
// hit.
func BenchmarkBatchWarmCache(b *testing.B) {
	e := New(0)
	e.RunBatch(benchTasks())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunBatch(benchTasks())
	}
}
