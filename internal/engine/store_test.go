package engine

import (
	"sync"
	"sync/atomic"
	"testing"
)

// memStore is an in-memory CellStore for wiring tests.
type memStore struct {
	mu   sync.Mutex
	m    map[string]any
	gets atomic.Int64
	puts atomic.Int64
}

func newMemStore() *memStore { return &memStore{m: map[string]any{}} }

func (s *memStore) Get(key string) (any, bool) {
	s.gets.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

func (s *memStore) Put(key string, v any) bool {
	s.puts.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.m[key]; dup {
		return false
	}
	s.m[key] = v
	return true
}

func TestStoreTierWriteThrough(t *testing.T) {
	st := newMemStore()
	e := New(2)
	e.SetStore(st)

	var computes atomic.Int64
	fn := func(sp CellSpec, seed uint64, _ Scratch) any {
		computes.Add(1)
		return sp.Buffer * 2
	}

	if v := e.Do(spec(8), fn); v.(int) != 16 {
		t.Fatalf("Do = %v", v)
	}
	s := e.Stats()
	if computes.Load() != 1 || s.Misses != 1 || s.StoreMisses != 1 || s.StoreWrites != 1 {
		t.Fatalf("cold run: computes=%d stats=%+v", computes.Load(), s)
	}

	// Same cell again: in-memory hit, store untouched.
	gets := st.gets.Load()
	e.Do(spec(8), fn)
	if st.gets.Load() != gets {
		t.Fatal("warm in-memory hit consulted the store")
	}

	// Fresh engine sharing the store: answered from the store, no
	// compute, no miss — the Stats contract the acceptance criteria
	// assert on.
	e2 := New(2)
	e2.SetStore(st)
	if v := e2.Do(spec(8), fn); v.(int) != 16 {
		t.Fatalf("store-hit Do = %v", v)
	}
	s2 := e2.Stats()
	if computes.Load() != 1 {
		t.Fatalf("store hit recomputed (computes=%d)", computes.Load())
	}
	if s2.Misses != 0 || s2.StoreHits != 1 || s2.Hits != 0 {
		t.Fatalf("warm-store stats = %+v", s2)
	}
}

func TestStoreTierCoalescesWaiters(t *testing.T) {
	st := newMemStore()
	st.Put(spec(8).Canonical().Key(), 99)
	e := New(1)
	e.SetStore(st)
	var computes atomic.Int64
	fn := func(CellSpec, uint64, Scratch) any { computes.Add(1); return 0 }

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v := e.Do(spec(8), fn); v.(int) != 99 {
				t.Errorf("Do = %v, want 99", v)
			}
		}()
	}
	wg.Wait()
	if computes.Load() != 0 {
		t.Fatalf("store-resident cell computed %d times", computes.Load())
	}
	s := e.Stats()
	if s.StoreHits != 1 || s.Misses != 0 || s.Hits != 7 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestResetCacheDetachesStore(t *testing.T) {
	st := newMemStore()
	e := New(2)
	e.SetStore(st)
	var computes atomic.Int64
	fn := func(CellSpec, uint64, Scratch) any { computes.Add(1); return 1 }

	e.Do(spec(8), fn)
	if e.Store() == nil {
		t.Fatal("store not attached")
	}
	e.ResetCache()
	if e.Store() != nil {
		t.Fatal("ResetCache left the store attached")
	}
	s := e.Stats()
	if s.StoreHits != 0 || s.StoreMisses != 0 || s.StoreWrites != 0 {
		t.Fatalf("store counters not reset: %+v", s)
	}
	// A genuine cold run: the store holds the cell, but a reset engine
	// must recompute it.
	e.Do(spec(8), fn)
	if computes.Load() != 2 {
		t.Fatalf("post-reset run did not recompute (computes=%d)", computes.Load())
	}
}

func TestStorePanicNotPersisted(t *testing.T) {
	st := newMemStore()
	e := New(1)
	e.SetStore(st)
	func() {
		defer func() { recover() }()
		e.Do(spec(8), func(CellSpec, uint64, Scratch) any { panic("boom") })
	}()
	if st.puts.Load() != 0 {
		t.Fatal("panicking cell reached the store")
	}
	if s := e.Stats(); s.StoreWrites != 0 {
		t.Fatalf("stats = %+v", s)
	}
}
