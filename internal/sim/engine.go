// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an event heap. All model
// components (links, queues, protocol endpoints, applications) schedule
// callbacks on a shared *Engine; the engine executes them in
// non-decreasing time order. Events scheduled for the same instant run
// in FIFO order of scheduling, which keeps runs bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an absolute point on the simulation clock, in nanoseconds
// since the start of the run. The zero Time is the beginning of the
// simulation.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts an absolute time to the duration elapsed since the
// simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the time like a time.Duration, e.g. "1.5s".
func (t Time) String() string { return time.Duration(t).String() }

// A Timer is a handle to a scheduled event. It can be stopped before it
// fires. Timers are not safe for concurrent use; the engine is a
// single-threaded simulator by design.
type Timer struct {
	at      Time
	seq     uint64
	fn      func()
	stopped bool
	fired   bool
}

// Stop cancels the timer. It reports whether the call prevented the
// timer from firing (false if it had already fired or been stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.stopped || t.fired {
		return false
	}
	t.stopped = true
	t.fn = nil // release closure for GC
	return true
}

// Stopped reports whether the timer was cancelled before firing.
func (t *Timer) Stopped() bool { return t != nil && t.stopped }

// When returns the absolute time the timer fires (or was scheduled to
// fire).
func (t *Timer) When() Time { return t.at }

// eventHeap orders timers by (time, sequence).
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Timer)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with New.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	running bool
	halted  bool

	// Executed counts events that have fired; useful for tests and
	// runaway detection.
	Executed uint64

	// MaxEvents, if non-zero, aborts Run with a panic after this many
	// events — a guard against accidental infinite event loops in
	// model code.
	MaxEvents uint64
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay d (relative to Now). A negative d is
// treated as zero. It returns a Timer that may be stopped.
func (e *Engine) Schedule(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at absolute time t. Times in the past are clamped to Now.
func (e *Engine) At(t Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	tm := &Timer{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, tm)
	return tm
}

// Pending reports the number of events in the queue, including
// stopped-but-not-yet-drained timers.
func (e *Engine) Pending() int { return len(e.events) }

// Halt stops the run loop after the current event completes. Unlike
// draining the queue, pending events remain queued.
func (e *Engine) Halt() { e.halted = true }

// Run executes events until the queue is empty or Halt is called.
func (e *Engine) Run() {
	e.RunUntil(Time(1<<63 - 1))
}

// RunUntil executes events with time <= t, then advances the clock to
// exactly t (if t is beyond the last event). It stops early if the
// queue empties or Halt is called.
func (e *Engine) RunUntil(t Time) {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	e.halted = false
	defer func() { e.running = false }()

	for len(e.events) > 0 && !e.halted {
		next := e.events[0]
		if next.at > t {
			break
		}
		heap.Pop(&e.events)
		if next.stopped {
			continue
		}
		if next.at > e.now {
			e.now = next.at
		}
		next.fired = true
		fn := next.fn
		next.fn = nil
		e.Executed++
		if e.MaxEvents != 0 && e.Executed > e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now))
		}
		fn()
	}
	if !e.halted && e.now < t && t != Time(1<<63-1) {
		e.now = t
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now.Add(d))
}
