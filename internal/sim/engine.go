// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an event heap. All model
// components (links, queues, protocol endpoints, applications) schedule
// callbacks on a shared *Engine; the engine executes them in
// non-decreasing time order. Events scheduled for the same instant run
// in FIFO order of scheduling, which keeps runs bit-for-bit reproducible.
//
// # Scheduling tiers
//
// Three tiers trade convenience against allocation cost:
//
//   - Closure one-shots (At, Schedule) allocate one Timer per call and
//     return the handle. They are the convenient tier for setup and
//     low-frequency application logic, and the returned handle may be
//     Stop()ped at any point before it fires.
//   - Pooled one-shots (AtHandler, ScheduleHandler, AtArg, ScheduleArg)
//     dispatch to a Handler/ArgHandler instead of a closure. Their
//     Timer comes from a per-engine free-list and is recycled the
//     moment it fires, so steady-state scheduling allocates nothing.
//     No handle is returned — a recycled timer must never be reachable
//     from model code — so pooled events cannot be cancelled.
//   - Owned timers (InitTimer, Reset, Stop) are embedded in a model
//     component and rearmed in place for the component's lifetime: the
//     reschedulable retransmission/delayed-ACK timers of a TCP
//     connection, a link's serialization tick. They are never pooled
//     while owned, so a retained handle is always safe.
//
// Every arming operation — At, Schedule, the handler variants, and
// Reset — draws one fresh sequence number, so migrating a call site
// between tiers preserves the engine's same-instant FIFO order exactly.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute point on the simulation clock, in nanoseconds
// since the start of the run. The zero Time is the beginning of the
// simulation.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts an absolute time to the duration elapsed since the
// simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the time like a time.Duration, e.g. "1.5s".
func (t Time) String() string { return time.Duration(t).String() }

// Handler is a component that reacts to a timer firing. Implementing
// it (instead of passing closures) lets a component schedule its
// recurring ticks with zero per-event allocation.
type Handler interface {
	Fire(now Time)
}

// ArgHandler is a Handler variant carrying a per-event payload, for
// events that are per-object rather than per-component: a link
// delivering one specific packet, a sender emitting one specific
// frame. The payload is stored in the pooled Timer, so scheduling an
// ArgHandler event with a pointer payload allocates nothing.
type ArgHandler interface {
	FireArg(now Time, arg any)
}

// A Timer is a scheduled event. Closure timers (from At/Schedule) are
// one-shot handles that may be stopped before firing. Owned timers
// (prepared with InitTimer and embedded in a component) are rearmed in
// place with Reset. Timers are not safe for concurrent use; the engine
// is a single-threaded simulator by design.
type Timer struct {
	at  Time
	seq uint64
	// idx is the timer's position in the engine's event heap, valid
	// only while queued. Tracking it makes Stop an O(log n) eager
	// removal instead of leaving cancelled timers to be drained at
	// their deadline (which let long runs with many cancelled
	// retransmission timers grow the heap without bound).
	idx int
	// queued reports heap membership; false in the zero value, so an
	// embedded timer is safely unarmed before InitTimer runs.
	queued  bool
	pooled  bool // recycled into the engine free-list when it fires
	stopped bool
	fired   bool

	eng *Engine
	fn  func()
	h   Handler
	ah  ArgHandler
	arg any
}

// Stop cancels the timer, removing it from the event heap immediately.
// It reports whether the call prevented the timer from firing (false
// if it had already fired, been stopped, or was never armed).
//
//qoe:hotpath
func (t *Timer) Stop() bool {
	if t == nil || t.stopped || t.fired || !t.queued {
		return false
	}
	t.stopped = true
	t.eng.heapRemove(t)
	t.fn = nil // release closure for GC
	return true
}

// Stopped reports whether the timer was cancelled before firing.
func (t *Timer) Stopped() bool { return t != nil && t.stopped }

// When returns the absolute time the timer fires (or was scheduled to
// fire).
func (t *Timer) When() Time { return t.at }

// Armed reports whether the timer is currently queued to fire. The
// zero value reports false.
func (t *Timer) Armed() bool { return t != nil && t.queued }

// Reset (re)arms an owned timer to fire d after the engine's current
// time, clearing any stopped/fired state. It must only be used on
// timers prepared with InitTimer. Like every arming operation it draws
// a fresh sequence number, so a Reset orders after events already
// scheduled for the same instant.
//
//qoe:hotpath
func (t *Timer) Reset(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.ResetAt(t.eng.now.Add(d))
}

// ResetAt is Reset with an absolute fire time. Times in the past are
// clamped to now.
//
//qoe:hotpath
func (t *Timer) ResetAt(at Time) {
	e := t.eng
	if e == nil || t.h == nil && t.ah == nil {
		panic("sim: ResetAt on a timer not prepared with InitTimer")
	}
	if at < e.now {
		at = e.now
	}
	e.seq++
	t.at, t.seq = at, e.seq
	t.stopped, t.fired = false, false
	if t.queued {
		e.heapFix(t)
	} else {
		e.heapPush(t)
	}
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with New.
type Engine struct {
	now     Time
	seq     uint64
	events  []*Timer // index-tracked 4-ary min-heap on (at, seq)
	free    []*Timer // recycled pooled one-shot timers
	running bool
	halted  bool

	// Executed counts events that have fired; useful for tests and
	// runaway detection.
	Executed uint64

	// MaxEvents, if non-zero, aborts Run with a panic after this many
	// events — a guard against accidental infinite event loops in
	// model code.
	MaxEvents uint64

	// met holds the engine's telemetry counters: plain ints, updated
	// unconditionally on the dispatch path. The engine is
	// single-threaded, so increments cost one add each — no atomics,
	// no branches, no allocations — and callers that don't care simply
	// never read them. Flushed per cell via Metrics.
	met Metrics
}

// Metrics is a snapshot of the engine's internal counters: events
// fired per scheduling tier, pooled-timer recycles, and the deepest
// the event heap ever ran. Read it with Engine.Metrics after (or
// during) a run.
type Metrics struct {
	// Per-tier fired-event counts. Their sum equals Executed.
	EventsClosure uint64 // closure one-shots (At/Schedule)
	EventsPooled  uint64 // pooled Handler one-shots
	EventsArg     uint64 // pooled ArgHandler one-shots
	EventsOwned   uint64 // owned reschedulable timers
	// TimerRecycles counts pooled timers returned to the free-list.
	TimerRecycles uint64
	// HeapHighWater is the maximum number of queued events observed.
	HeapHighWater int
}

// Metrics returns a copy of the engine's telemetry counters.
func (e *Engine) Metrics() Metrics { return e.met }

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Reset returns the engine to its freshly constructed state — clock at
// zero, sequence counter at zero, empty event queue, counters cleared
// — while keeping the pooled-timer free-list warm, so a reused engine
// behaves bit-identically to a new one but stops paying the
// steady-state timer allocations again. Pending events are discarded:
// pooled timers are recycled, closure timers release their closures,
// and owned timers are simply unhooked (their components may rearm
// them with Reset/ResetAt as usual). MaxEvents is preserved.
func (e *Engine) Reset() {
	if e.running {
		panic("sim: Reset during Run")
	}
	for i, t := range e.events {
		e.events[i] = nil
		t.queued = false
		switch {
		case t.pooled:
			e.recycle(t)
		case t.fn != nil:
			t.fn = nil
		}
	}
	e.events = e.events[:0]
	e.now, e.seq = 0, 0
	e.halted = false
	e.Executed = 0
	e.met = Metrics{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay d (relative to Now). A negative d is
// treated as zero. It returns a Timer that may be stopped.
func (e *Engine) Schedule(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at absolute time t. Times in the past are clamped to Now.
// The returned Timer is not pooled: the handle stays valid (and
// Stop-able) for as long as the caller retains it.
func (e *Engine) At(t Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	tm := &Timer{at: t, seq: e.seq, eng: e, fn: fn}
	e.heapPush(tm)
	return tm
}

// InitTimer prepares an owned, reschedulable timer dispatching to h.
// The timer is typically a field of the component implementing h, so
// arming and rearming it never allocates. It starts unarmed; use
// Reset/ResetAt to arm and Stop to cancel.
func (e *Engine) InitTimer(t *Timer, h Handler) {
	if h == nil {
		panic("sim: InitTimer with nil handler")
	}
	if t.queued {
		// Zeroing an armed timer would leave a stale pointer in the
		// event heap whose idx no longer matches its slot, silently
		// corrupting the heap much later; fail loudly instead.
		panic("sim: InitTimer on an armed timer (Stop it first)")
	}
	*t = Timer{eng: e, h: h}
}

// ScheduleHandler fires h after delay d. The event's Timer comes from
// the engine's free-list and is recycled when it fires: steady-state
// scheduling allocates nothing, and no handle is returned.
//
//qoe:hotpath
func (e *Engine) ScheduleHandler(d time.Duration, h Handler) {
	if d < 0 {
		d = 0
	}
	e.AtHandler(e.now.Add(d), h)
}

// AtHandler fires h at absolute time t (clamped to Now), using a
// pooled Timer.
//
//qoe:hotpath
func (e *Engine) AtHandler(t Time, h Handler) {
	if h == nil {
		panic("sim: AtHandler called with nil handler")
	}
	tm := e.getPooled(t)
	tm.h = h
}

// ScheduleArg fires h with the given payload after delay d, using a
// pooled Timer.
//
//qoe:hotpath
func (e *Engine) ScheduleArg(d time.Duration, h ArgHandler, arg any) {
	if d < 0 {
		d = 0
	}
	e.AtArg(e.now.Add(d), h, arg)
}

// AtArg fires h with the given payload at absolute time t (clamped to
// Now), using a pooled Timer.
//
//qoe:hotpath
func (e *Engine) AtArg(t Time, h ArgHandler, arg any) {
	if h == nil {
		panic("sim: AtArg called with nil handler")
	}
	tm := e.getPooled(t)
	tm.ah = h
	tm.arg = arg
}

// getPooled takes a timer from the free-list (or allocates one), arms
// it at t with a fresh sequence number, and pushes it on the heap.
//
//qoe:hotpath
func (e *Engine) getPooled(t Time) *Timer {
	if t < e.now {
		t = e.now
	}
	var tm *Timer
	if n := len(e.free); n > 0 {
		tm = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		tm = &Timer{eng: e}
	}
	e.seq++
	tm.at, tm.seq, tm.pooled = t, e.seq, true
	e.heapPush(tm)
	return tm
}

// recycle returns a pooled timer to the free-list.
//
//qoe:hotpath
func (e *Engine) recycle(t *Timer) {
	t.h, t.ah, t.arg, t.fn = nil, nil, nil, nil
	t.stopped, t.fired, t.pooled = false, false, false
	e.free = append(e.free, t)
	e.met.TimerRecycles++
}

// Pending reports the number of events in the queue. Stopped timers
// are removed eagerly, so they are never counted.
func (e *Engine) Pending() int { return len(e.events) }

// Halt stops the run loop after the current event completes. Unlike
// draining the queue, pending events remain queued.
func (e *Engine) Halt() { e.halted = true }

// Run executes events until the queue is empty or Halt is called.
func (e *Engine) Run() {
	e.RunUntil(Time(1<<63 - 1))
}

// RunUntil executes events with time <= t, then advances the clock to
// exactly t (if t is beyond the last event). It stops early if the
// queue empties or Halt is called.
//
//qoe:hotpath
func (e *Engine) RunUntil(t Time) {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	e.halted = false
	//lint:allow qoelint/hotpath one closure per RunUntil call, not per event; dispatch below is allocation-free
	defer func() { e.running = false }()

	for len(e.events) > 0 && !e.halted {
		next := e.events[0]
		if next.at > t {
			break
		}
		e.heapRemove(next)
		if next.at > e.now {
			e.now = next.at
		}
		e.Executed++
		if e.MaxEvents != 0 && e.Executed > e.MaxEvents {
			e.maxEventsExceeded()
		}
		// Read the dispatch target into locals first: a pooled timer is
		// recycled before its handler runs, so the handler (or anything
		// it schedules) may immediately reuse the Timer struct.
		switch {
		case next.fn != nil:
			fn := next.fn
			next.fn = nil
			next.fired = true
			e.met.EventsClosure++
			fn()
		case next.ah != nil:
			h, arg := next.ah, next.arg
			e.recycle(next)
			e.met.EventsArg++
			h.FireArg(e.now, arg)
		default:
			h := next.h
			if next.pooled {
				e.recycle(next)
				e.met.EventsPooled++
			} else {
				next.fired = true
				e.met.EventsOwned++
			}
			h.Fire(e.now)
		}
	}
	if !e.halted && e.now < t && t != Time(1<<63-1) {
		e.now = t
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now.Add(d))
}

// maxEventsExceeded panics describing the runaway event loop. It is a
// separate, unannotated function so the formatting stays off the
// RunUntil dispatch path.
func (e *Engine) maxEventsExceeded() {
	panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now))
}

// --- event heap -------------------------------------------------------
//
// A 4-ary min-heap on (at, seq) with index tracking. The wider node
// fans out better than a binary heap for this workload: sift-downs
// touch fewer levels (fewer cache lines) and the hot path — push a
// timer, pop the minimum — is dominated by sift-up, which is cheaper
// the shallower the tree. Index tracking is what makes eager Stop and
// in-place Reset O(log n).

// less orders timers by (time, sequence); seq is unique, so the order
// is total and pop order is independent of heap layout.
//
//qoe:hotpath
func less(a, b *Timer) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//qoe:hotpath
func (e *Engine) heapPush(t *Timer) {
	t.idx = len(e.events)
	t.queued = true
	e.events = append(e.events, t)
	if n := len(e.events); n > e.met.HeapHighWater {
		e.met.HeapHighWater = n
	}
	e.siftUp(t.idx)
}

// heapRemove unlinks the timer at any position.
//
//qoe:hotpath
func (e *Engine) heapRemove(t *Timer) {
	i := t.idx
	last := len(e.events) - 1
	if i != last {
		e.events[i] = e.events[last]
		e.events[i].idx = i
	}
	e.events[last] = nil
	e.events = e.events[:last]
	t.queued = false
	if i < last {
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	}
}

// heapFix repositions a timer whose key changed in place (Reset on an
// armed timer).
//
//qoe:hotpath
func (e *Engine) heapFix(t *Timer) {
	if !e.siftDown(t.idx) {
		e.siftUp(t.idx)
	}
}

//qoe:hotpath
func (e *Engine) siftUp(i int) {
	t := e.events[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := e.events[parent]
		if !less(t, p) {
			break
		}
		e.events[i] = p
		p.idx = i
		i = parent
	}
	e.events[i] = t
	t.idx = i
}

// siftDown reports whether the element moved.
//
//qoe:hotpath
func (e *Engine) siftDown(i int) bool {
	t := e.events[i]
	n := len(e.events)
	start := i
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if less(e.events[c], e.events[min]) {
				min = c
			}
		}
		if !less(e.events[min], t) {
			break
		}
		e.events[i] = e.events[min]
		e.events[i].idx = i
		i = min
	}
	e.events[i] = t
	t.idx = i
	return i != start
}
