package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// TestStopShrinksPending is the eager-removal regression test: a
// stopped timer must leave the heap immediately instead of lingering
// until its deadline drains it (long runs with many cancelled TCP
// retransmission timers used to grow the heap without bound).
func TestStopShrinksPending(t *testing.T) {
	e := New()
	var timers []*Timer
	for i := 0; i < 100; i++ {
		timers = append(timers, e.Schedule(time.Hour, func() {}))
	}
	if e.Pending() != 100 {
		t.Fatalf("pending = %d, want 100", e.Pending())
	}
	for i, tm := range timers {
		tm.Stop()
		if got, want := e.Pending(), 100-i-1; got != want {
			t.Fatalf("after %d stops: pending = %d, want %d", i+1, got, want)
		}
	}
}

// TestStopKeepsOrder stops every other timer out of a large pending
// set and checks the survivors still fire in exact (time, seq) order.
func TestStopKeepsOrder(t *testing.T) {
	e := New()
	var fired []int
	var timers []*Timer
	for i := 0; i < 200; i++ {
		i := i
		// Deliberately colliding deadlines to exercise seq tie-breaks.
		d := time.Duration(i%13) * time.Millisecond
		timers = append(timers, e.Schedule(d, func() { fired = append(fired, i) }))
	}
	for i := 1; i < len(timers); i += 2 {
		timers[i].Stop()
	}
	e.Run()
	if len(fired) != 100 {
		t.Fatalf("fired %d events, want 100", len(fired))
	}
	last := Time(-1)
	seen := map[int]bool{}
	for _, i := range fired {
		if i%2 == 1 {
			t.Fatalf("stopped timer %d fired", i)
		}
		at := Time(time.Duration(i%13) * time.Millisecond)
		if at < last {
			t.Fatalf("events fired out of time order")
		}
		last = at
		seen[i] = true
	}
	// Same-instant survivors must preserve scheduling order: within a
	// deadline class, indices ascend.
	byAt := map[Time][]int{}
	for _, i := range fired {
		at := Time(time.Duration(i%13) * time.Millisecond)
		byAt[at] = append(byAt[at], i)
	}
	for at, idxs := range byAt {
		for j := 1; j < len(idxs); j++ {
			if idxs[j] < idxs[j-1] {
				t.Fatalf("FIFO violated at %v: %v", at, idxs)
			}
		}
	}
}

type countingHandler struct {
	n    int
	last Time
}

func (h *countingHandler) Fire(now Time) { h.n++; h.last = now }

type recordingArgHandler struct{ got []any }

func (h *recordingArgHandler) FireArg(now Time, arg any) { h.got = append(h.got, arg) }

func TestHandlerOneShot(t *testing.T) {
	e := New()
	h := &countingHandler{}
	e.ScheduleHandler(3*time.Millisecond, h)
	e.ScheduleHandler(time.Millisecond, h)
	e.Run()
	if h.n != 2 {
		t.Fatalf("handler fired %d times, want 2", h.n)
	}
	if h.last != Time(3*time.Millisecond) {
		t.Fatalf("last fire at %v, want 3ms", h.last)
	}
}

func TestArgHandlerPayloadOrder(t *testing.T) {
	e := New()
	h := &recordingArgHandler{}
	a, b, c := &struct{ x int }{1}, &struct{ x int }{2}, &struct{ x int }{3}
	e.ScheduleArg(2*time.Millisecond, h, b)
	e.ScheduleArg(time.Millisecond, h, a)
	e.ScheduleArg(2*time.Millisecond, h, c)
	e.Run()
	if len(h.got) != 3 || h.got[0] != a || h.got[1] != b || h.got[2] != c {
		t.Fatalf("payload order = %v", h.got)
	}
}

// TestPooledTimersRecycle proves the free-list works: a long
// schedule/fire sequence must not keep one live Timer per event.
func TestPooledTimersRecycle(t *testing.T) {
	e := New()
	h := &countingHandler{}
	for i := 0; i < 1000; i++ {
		e.ScheduleHandler(time.Duration(i)*time.Microsecond, h)
	}
	e.Run()
	if h.n != 1000 {
		t.Fatalf("fired %d, want 1000", h.n)
	}
	if len(e.free) == 0 {
		t.Fatal("free-list empty after pooled events fired")
	}
	// Steady-state: schedule/fire one at a time must reuse a single
	// recycled timer, not allocate.
	before := len(e.free)
	for i := 0; i < 100; i++ {
		e.ScheduleHandler(time.Microsecond, h)
		e.RunFor(time.Microsecond)
	}
	if len(e.free) != before {
		t.Fatalf("free-list drifted from %d to %d in steady state", before, len(e.free))
	}
}

// chainHandler reschedules itself from inside Fire via an owned timer.
type chainHandler struct {
	e     *Engine
	timer Timer
	n     int
}

func (h *chainHandler) Fire(now Time) {
	h.n++
	if h.n < 5 {
		h.timer.Reset(time.Second)
	}
}

func TestOwnedTimerResetChain(t *testing.T) {
	e := New()
	h := &chainHandler{e: e}
	e.InitTimer(&h.timer, h)
	if h.timer.Armed() {
		t.Fatal("fresh owned timer reports armed")
	}
	h.timer.Reset(time.Second)
	if !h.timer.Armed() {
		t.Fatal("Reset did not arm")
	}
	e.Run()
	if h.n != 5 {
		t.Fatalf("chain fired %d times, want 5", h.n)
	}
	if e.Now() != Time(5*time.Second) {
		t.Fatalf("clock = %v, want 5s", e.Now())
	}
	if h.timer.Armed() {
		t.Fatal("timer armed after chain ended")
	}
}

func TestOwnedTimerStopAndRearm(t *testing.T) {
	e := New()
	h := &chainHandler{e: e}
	e.InitTimer(&h.timer, h)
	h.timer.Reset(time.Second)
	if !h.timer.Stop() {
		t.Fatal("Stop on armed owned timer returned false")
	}
	if h.timer.Armed() {
		t.Fatal("armed after Stop")
	}
	e.RunFor(10 * time.Second)
	if h.n != 0 {
		t.Fatal("stopped owned timer fired")
	}
	// Rearm after stop: must fire again.
	h.timer.Reset(time.Second)
	e.RunFor(time.Second)
	if h.n != 1 {
		t.Fatalf("rearmed timer fired %d times, want 1", h.n)
	}
}

// TestOwnedTimerRepositionsInPlace rearms an armed timer to an earlier
// and a later deadline and checks it fires exactly once, at the last
// deadline set.
func TestOwnedTimerRepositionsInPlace(t *testing.T) {
	e := New()
	h := &chainHandler{e: e}
	h.n = 100 // disable self-rechaining
	e.InitTimer(&h.timer, h)
	h.timer.Reset(10 * time.Second)
	h.timer.Reset(time.Second) // earlier
	h.timer.Reset(3 * time.Second)
	e.Run()
	if h.n != 101 {
		t.Fatalf("fired %d times, want exactly once", h.n-100)
	}
	if e.Now() != Time(3*time.Second) {
		t.Fatalf("fired at %v, want 3s", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after run", e.Pending())
	}
}

// TestMixedTiersSameInstantFIFO checks that closure, pooled-handler
// and owned-timer events scheduled for the same instant fire in
// scheduling order — the property the bit-identical migration of the
// model code relies on.
func TestMixedTiersSameInstantFIFO(t *testing.T) {
	e := New()
	var got []int
	rec := func(i int) func() { return func() { got = append(got, i) } }
	fh := &funcFirer{fn: func(Time) { got = append(got, 1) }}
	ah := &funcArgFirer{fn: func(_ Time, a any) { got = append(got, a.(int)) }}
	own := &funcFirer{fn: func(Time) { got = append(got, 3) }}
	var ot Timer
	e.InitTimer(&ot, own)

	e.Schedule(time.Millisecond, rec(0))
	e.ScheduleHandler(time.Millisecond, fh)
	e.ScheduleArg(time.Millisecond, ah, 2)
	ot.Reset(time.Millisecond)
	e.Schedule(time.Millisecond, rec(4))
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("mixed-tier order = %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

// TestZeroValueTimerUnarmed pins the zero-value contract: an embedded
// timer touched before InitTimer must report unarmed and ignore Stop
// instead of dereferencing a nil engine or clobbering heap slot 0.
func TestZeroValueTimerUnarmed(t *testing.T) {
	var tm Timer
	if tm.Armed() {
		t.Fatal("zero-value timer reports armed")
	}
	if tm.Stop() {
		t.Fatal("Stop on zero-value timer returned true")
	}
	if tm.Stopped() {
		t.Fatal("zero-value timer reports stopped after no-op Stop")
	}
}

type funcFirer struct{ fn func(Time) }

func (f *funcFirer) Fire(now Time) { f.fn(now) }

type funcArgFirer struct{ fn func(Time, any) }

func (f *funcArgFirer) FireArg(now Time, arg any) { f.fn(now, arg) }

// Property: random interleavings of schedules and eager stops always
// fire the surviving events sorted by (time, scheduling order).
func TestPropertyStopsPreserveOrder(t *testing.T) {
	f := func(ops []uint16) bool {
		e := New()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		var live []*Timer
		for i, op := range ops {
			d := time.Duration(op%97) * time.Microsecond
			i := i
			tm := e.Schedule(d, func() { fired = append(fired, rec{e.Now(), i}) })
			live = append(live, tm)
			if op%3 == 0 && len(live) > 1 {
				// Stop a pseudo-random earlier timer.
				live[int(op)%len(live)].Stop()
			}
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
