package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrder(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events out of FIFO order: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := New()
	var at Time
	e.Schedule(5*time.Second, func() { at = e.Now() })
	e.Run()
	if at != Time(5*time.Second) {
		t.Fatalf("event ran at %v, want 5s", at)
	}
	if e.Now() != Time(5*time.Second) {
		t.Fatalf("clock = %v, want 5s", e.Now())
	}
}

func TestRunUntilStopsAndAdvances(t *testing.T) {
	e := New()
	fired := 0
	e.Schedule(1*time.Second, func() { fired++ })
	e.Schedule(10*time.Second, func() { fired++ })
	e.RunUntil(Time(2 * time.Second))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != Time(2*time.Second) {
		t.Fatalf("clock = %v, want 2s", e.Now())
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after Run, want 2", fired)
	}
}

func TestTimerStop(t *testing.T) {
	e := New()
	ran := false
	tm := e.Schedule(time.Second, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	e.Run()
	if ran {
		t.Fatal("stopped timer fired")
	}
}

func TestStopAfterFire(t *testing.T) {
	e := New()
	var tm *Timer
	tm = e.Schedule(time.Millisecond, func() {})
	e.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
}

func TestReschedulingInsideEvent(t *testing.T) {
	e := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.Schedule(time.Second, tick)
		}
	}
	e.Schedule(time.Second, tick)
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != Time(5*time.Second) {
		t.Fatalf("clock = %v, want 5s", e.Now())
	}
}

func TestHalt(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (halted)", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := New()
	e.Schedule(time.Second, func() {
		tm := e.Schedule(-time.Minute, func() {})
		if tm.When() != e.Now() {
			t.Errorf("negative delay scheduled at %v, want now %v", tm.When(), e.Now())
		}
	})
	e.Run()
}

func TestTimeArithmetic(t *testing.T) {
	var a Time = Time(1500 * time.Millisecond)
	if a.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", a.Seconds())
	}
	b := a.Add(500 * time.Millisecond)
	if b.Sub(a) != 500*time.Millisecond {
		t.Fatalf("Sub = %v", b.Sub(a))
	}
	if a.String() != "1.5s" {
		t.Fatalf("String = %q", a.String())
	}
}

// Property: for any schedule of events, execution order is sorted by
// time with ties broken by insertion order.
func TestPropertyExecutionSorted(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := New()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, d := range delays {
			d := time.Duration(d) * time.Microsecond
			i := i
			e.Schedule(d, func() { fired = append(fired, rec{e.Now(), i}) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42, "tcp")
	b := NewRNG(42, "tcp")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same (seed, stream) produced different sequences")
		}
	}
	c := NewRNG(42, "voip")
	same := true
	a2 := NewRNG(42, "tcp")
	for i := 0; i < 16; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different streams produced identical sequences")
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(1, "exp")
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(2.0)
	}
	mean := sum / n
	if math.Abs(mean-2.0) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~2.0", mean)
	}
}

func TestWeibullMean(t *testing.T) {
	// Weibull(shape=0.35, scale=10039) has mean scale*Gamma(1+1/shape).
	// Gamma(1+1/0.35) = Gamma(3.857..) ~ 4.9415; the paper quotes a
	// mean flow size of ~50 KB with these parameters.
	r := NewRNG(7, "weibull")
	const n = 400000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Weibull(0.35, 10039)
	}
	mean := sum / n
	if mean < 40000 || mean > 62000 {
		t.Fatalf("weibull(0.35, 10039) mean = %v, want ~50000", mean)
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRNG(3, "pareto")
	for i := 0; i < 1000; i++ {
		v := r.Pareto(5, 1.5)
		if v < 5 {
			t.Fatalf("pareto draw %v below minimum", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(9, "uniform")
	for i := 0; i < 1000; i++ {
		v := r.Uniform(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("uniform draw %v outside [3,7)", v)
		}
	}
}

func TestMaxEventsGuard(t *testing.T) {
	e := New()
	e.MaxEvents = 10
	var loop func()
	loop = func() { e.Schedule(time.Millisecond, loop) }
	e.Schedule(time.Millisecond, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from MaxEvents guard")
		}
	}()
	e.Run()
}
