package sim

import (
	"testing"
	"time"
)

type countHandler struct{ fired int }

func (h *countHandler) Fire(Time) { h.fired++ }

type countArgHandler struct{ args []any }

func (h *countArgHandler) FireArg(_ Time, a any) { h.args = append(h.args, a) }

func TestMetricsPerTier(t *testing.T) {
	e := New()
	ch := &countHandler{}
	ah := &countArgHandler{}

	// One of each tier: closure, pooled Handler, pooled ArgHandler, and
	// an owned timer that fires twice (Reset rearm).
	e.Schedule(time.Millisecond, func() {})
	e.ScheduleHandler(2*time.Millisecond, ch)
	e.ScheduleArg(3*time.Millisecond, ah, "p")
	var owned Timer
	e.InitTimer(&owned, ch)
	owned.Reset(4 * time.Millisecond)
	e.At(Time(0).Add(5*time.Millisecond), func() { owned.Reset(time.Millisecond) })
	e.Run()

	m := e.Metrics()
	if m.EventsClosure != 2 {
		t.Fatalf("closure events = %d, want 2", m.EventsClosure)
	}
	if m.EventsPooled != 1 {
		t.Fatalf("pooled events = %d, want 1", m.EventsPooled)
	}
	if m.EventsArg != 1 {
		t.Fatalf("arg events = %d, want 1", m.EventsArg)
	}
	if m.EventsOwned != 2 {
		t.Fatalf("owned events = %d, want 2", m.EventsOwned)
	}
	if sum := m.EventsClosure + m.EventsPooled + m.EventsArg + m.EventsOwned; sum != e.Executed {
		t.Fatalf("tier sum = %d, Executed = %d", sum, e.Executed)
	}
	// Both pooled events recycled their timers.
	if m.TimerRecycles != 2 {
		t.Fatalf("timer recycles = %d, want 2", m.TimerRecycles)
	}
	// Five timers were queued before anything fired.
	if m.HeapHighWater != 5 {
		t.Fatalf("heap high water = %d, want 5", m.HeapHighWater)
	}
}

func TestMetricsHighWaterSurvivesDrain(t *testing.T) {
	e := New()
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after drain", e.Pending())
	}
	if hw := e.Metrics().HeapHighWater; hw != 10 {
		t.Fatalf("high water = %d, want 10", hw)
	}
}
