package sim

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// RNG wraps a deterministic pseudo-random source with the distribution
// helpers the traffic and media models need. Distinct named streams
// derived from the same base seed are statistically independent, so
// adding a consumer never perturbs another consumer's draws — essential
// for reproducible experiments.
type RNG struct {
	*rand.Rand
}

// NewRNG returns the named random stream for a base seed. The stream
// name is hashed into the second PCG seed word so that streams are
// decorrelated but fully determined by (seed, name).
func NewRNG(seed uint64, stream string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(stream))
	return &RNG{rand.New(rand.NewPCG(seed, h.Sum64()))}
}

// Exponential draws an exponentially distributed value with the given
// mean (rate 1/mean).
func (r *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return r.ExpFloat64() * mean
}

// Weibull draws from a Weibull distribution with the given shape and
// scale, via inverse transform sampling.
func (r *RNG) Weibull(shape, scale float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// LogNormal draws from a log-normal distribution where the underlying
// normal has mean mu and standard deviation sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto draws from a Pareto distribution with minimum xm and tail
// index alpha.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Uniform draws uniformly from [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool reports true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}
