package netem

import "bufferqoe/internal/sim"

// Queue is the buffer in front of a link's transmitter. Implementations
// decide the drop discipline: the paper studies drop-tail FIFOs sized
// in packets (NetFPGA reference router, Cisco line cards); the aqm
// package provides CoDel and RED alternatives.
type Queue interface {
	// Enqueue offers a packet to the queue at the given time. It
	// reports whether the packet was accepted (false = dropped).
	Enqueue(p *Packet, now sim.Time) bool
	// Dequeue removes and returns the next packet to transmit, or nil
	// if the queue is empty. AQMs may drop internally during Dequeue.
	Dequeue(now sim.Time) *Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the total queued bytes.
	Bytes() int
}

// DropTail is a FIFO queue with a fixed capacity in packets, matching
// the paper's buffer configurations (Table 2: 8-256 packets on the
// access testbed, 8-7490 on the backbone). A zero CapPackets means
// capacity 1 (a queue must hold at least the packet in service).
//
// Storage is a circular buffer sized to CapPackets, allocated once on
// first use and reused for the queue's lifetime: the bottleneck
// buffer — the busiest data structure in a congested cell — never
// grows, shrinks, or reallocates while packets churn through it.
type DropTail struct {
	// CapPackets is the buffer size in packets.
	CapPackets int
	// Monitor, if non-nil, observes enqueue/drop/dequeue events.
	Monitor *QueueMonitor

	ring  []*Packet
	head  int // index of the oldest packet
	n     int // occupied slots
	bytes int
}

// NewDropTail returns a drop-tail queue holding at most capPackets
// packets.
func NewDropTail(capPackets int) *DropTail {
	if capPackets < 1 {
		capPackets = 1
	}
	return &DropTail{CapPackets: capPackets}
}

// Reset empties the queue for carcass reuse, releasing any queued
// packets back to their pool and keeping the ring storage. The monitor
// is not notified: this is teardown bookkeeping, not simulated
// dequeueing.
func (d *DropTail) Reset() {
	for d.n > 0 {
		p := d.ring[d.head]
		d.ring[d.head] = nil
		d.head++
		if d.head == len(d.ring) {
			d.head = 0
		}
		d.n--
		p.Release()
	}
	d.head, d.bytes = 0, 0
}

// Enqueue implements Queue.
func (d *DropTail) Enqueue(p *Packet, now sim.Time) bool {
	if d.n >= d.CapPackets {
		if d.Monitor != nil {
			d.Monitor.drop(p, now, d.n, d.bytes)
		}
		return false
	}
	if d.ring == nil {
		d.ring = make([]*Packet, d.CapPackets)
	}
	p.Enqueued = now
	i := d.head + d.n
	if i >= len(d.ring) {
		i -= len(d.ring)
	}
	d.ring[i] = p
	d.n++
	d.bytes += p.Size
	if d.Monitor != nil {
		d.Monitor.enqueue(p, now, d.n, d.bytes)
	}
	return true
}

// Dequeue implements Queue.
func (d *DropTail) Dequeue(now sim.Time) *Packet {
	if d.n == 0 {
		return nil
	}
	p := d.ring[d.head]
	d.ring[d.head] = nil
	d.head++
	if d.head == len(d.ring) {
		d.head = 0
	}
	d.n--
	d.bytes -= p.Size
	if d.Monitor != nil {
		d.Monitor.dequeue(p, now, d.n, d.bytes)
	}
	return p
}

// Len implements Queue.
func (d *DropTail) Len() int { return d.n }

// Bytes implements Queue.
func (d *DropTail) Bytes() int { return d.bytes }
