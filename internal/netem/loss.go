package netem

import "bufferqoe/internal/sim"

// LossQueue wraps another queue and drops arriving packets at random
// with a fixed probability — the classic netem-style impairment
// injector. The testbeds themselves never use it (all loss in the
// paper's experiments is congestive, from finite buffers); it exists
// for failure-injection tests and for isolating loss effects from
// queueing effects (e.g. exercising video FEC against independent
// random loss).
type LossQueue struct {
	// Inner is the decorated queue.
	Inner Queue
	// Rate is the drop probability in [0, 1].
	Rate float64

	rng *sim.RNG

	// Injected counts the randomly dropped packets (not the inner
	// queue's own overflow drops).
	Injected uint64
}

// NewLossQueue wraps inner with a random drop stage.
func NewLossQueue(inner Queue, rate float64, rng *sim.RNG) *LossQueue {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &LossQueue{Inner: inner, Rate: rate, rng: rng}
}

// Enqueue implements Queue.
func (l *LossQueue) Enqueue(p *Packet, now sim.Time) bool {
	if l.Rate > 0 && l.rng.Bool(l.Rate) {
		l.Injected++
		return false
	}
	return l.Inner.Enqueue(p, now)
}

// Dequeue implements Queue.
func (l *LossQueue) Dequeue(now sim.Time) *Packet { return l.Inner.Dequeue(now) }

// Len implements Queue.
func (l *LossQueue) Len() int { return l.Inner.Len() }

// Bytes implements Queue.
func (l *LossQueue) Bytes() int { return l.Inner.Bytes() }
