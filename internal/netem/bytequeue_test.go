package netem

import (
	"testing"
	"testing/quick"
	"time"

	"bufferqoe/internal/sim"
)

func TestByteQueueAcceptsUntilCapacity(t *testing.T) {
	q := NewDropTailBytes(3000)
	if !q.Enqueue(mkpkt(1500), 0) || !q.Enqueue(mkpkt(1500), 0) {
		t.Fatal("enqueue under capacity rejected")
	}
	// Occupancy == capacity: the next packet must be dropped.
	if q.Enqueue(mkpkt(60), 0) {
		t.Fatal("enqueue at full byte capacity accepted")
	}
	if q.Len() != 2 || q.Bytes() != 3000 {
		t.Fatalf("len=%d bytes=%d", q.Len(), q.Bytes())
	}
}

func TestByteQueueOvershootBoundedByOnePacket(t *testing.T) {
	// 2000-byte budget with 1500-byte packets: the second enqueue sees
	// 1500 < 2000 and is accepted, overshooting to 3000 — but never
	// beyond capacity + one packet.
	q := NewDropTailBytes(2000)
	q.Enqueue(mkpkt(1500), 0)
	if !q.Enqueue(mkpkt(1500), 0) {
		t.Fatal("under-capacity enqueue rejected")
	}
	if q.Bytes() > 2000+MTU {
		t.Fatalf("occupancy %d exceeds capacity+MTU", q.Bytes())
	}
	if q.Enqueue(mkpkt(60), 0) {
		t.Fatal("enqueue above capacity accepted")
	}
}

func TestByteQueueSmallPacketsFitWhereLargeDoNot(t *testing.T) {
	// The motivating asymmetry: a byte-counted 6000-byte queue holds
	// many 60-byte VoIP frames, a 4-packet-counted queue only 4.
	bq := NewDropTailBytes(6000)
	pq := NewDropTail(4)
	acceptedB, acceptedP := 0, 0
	for i := 0; i < 120; i++ {
		if bq.Enqueue(mkpkt(60), 0) {
			acceptedB++
		}
		if pq.Enqueue(mkpkt(60), 0) {
			acceptedP++
		}
	}
	if acceptedP != 4 {
		t.Fatalf("packet-counted queue accepted %d", acceptedP)
	}
	if acceptedB < 100 {
		t.Fatalf("byte-counted queue accepted only %d small packets", acceptedB)
	}
}

func TestByteQueueMinimumCapacityIsOneMTU(t *testing.T) {
	q := NewDropTailBytes(10)
	if q.CapBytes != MTU {
		t.Fatalf("capacity %d, want %d", q.CapBytes, MTU)
	}
	if !q.Enqueue(mkpkt(1500), 0) {
		t.Fatal("full-sized packet rejected by minimum-capacity queue")
	}
}

func TestByteQueueMonitorSeesDrops(t *testing.T) {
	q := NewDropTailBytes(1500)
	q.Monitor = &QueueMonitor{Name: "bq"}
	q.Enqueue(mkpkt(1500), 0)
	q.Enqueue(mkpkt(1500), 0) // dropped
	if q.Monitor.Dropped != 1 || q.Monitor.Enqueued != 1 {
		t.Fatalf("drops=%d enq=%d", q.Monitor.Dropped, q.Monitor.Enqueued)
	}
}

// Property: for any interleaving of enqueues and dequeues the
// byte-counted queue preserves FIFO order, keeps Bytes() equal to the
// sum of queued packet sizes, and never exceeds capacity by more than
// one maximum packet.
func TestPropertyByteQueueInvariants(t *testing.T) {
	f := func(ops []bool, sizes []uint16, capacity uint16) bool {
		capB := int(capacity)%20000 + MTU
		q := NewDropTailBytes(capB)
		nextID, lastOut := uint64(0), uint64(0)
		sum := 0
		si := 0
		size := func() int {
			if len(sizes) == 0 {
				return 100
			}
			s := int(sizes[si%len(sizes)])%MTU + 1
			si++
			return s
		}
		for _, enq := range ops {
			if enq {
				nextID++
				p := mkpkt(size())
				p.ID = nextID
				if q.Enqueue(p, 0) {
					sum += p.Size
				}
			} else if p := q.Dequeue(0); p != nil {
				if p.ID <= lastOut {
					return false
				}
				lastOut = p.ID
				sum -= p.Size
			}
			if q.Bytes() != sum {
				return false
			}
			if q.Bytes() > capB+MTU {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestJitterBoxAddsDelayWithoutReordering(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	jb := NewJitterBox(eng, sim.NewRNG(7, "jitter"), 10*time.Millisecond, 5*time.Millisecond, s)
	const n = 200
	for i := 0; i < n; i++ {
		p := mkpkt(100)
		p.ID = uint64(i + 1)
		at := time.Duration(i) * time.Millisecond
		eng.Schedule(at, func() { jb.Receive(p) })
	}
	eng.Run()
	if len(s.pkts) != n {
		t.Fatalf("delivered %d packets, want %d", len(s.pkts), n)
	}
	for i, p := range s.pkts {
		if p.ID != uint64(i+1) {
			t.Fatalf("reordered: position %d has ID %d", i, p.ID)
		}
	}
}

func TestJitterBoxDelayAtLeastBase(t *testing.T) {
	eng := sim.New()
	var deliveredAt sim.Time
	dst := recvFunc(func(p *Packet) { deliveredAt = eng.Now() })
	jb := NewJitterBox(eng, sim.NewRNG(1, "jitter"), 30*time.Millisecond, 2*time.Millisecond, dst)
	jb.Receive(mkpkt(100))
	eng.Run()
	if deliveredAt.Duration() < 30*time.Millisecond {
		t.Fatalf("delivered after %v, want >= base 30ms", deliveredAt.Duration())
	}
}

func TestJitterBoxTruncatesExtremes(t *testing.T) {
	eng := sim.New()
	base, jit := 5*time.Millisecond, 10*time.Millisecond
	max := 20 * time.Millisecond
	var worst time.Duration
	dst := recvFunc(func(p *Packet) {
		d := eng.Now().Duration() - time.Duration(p.ID)*time.Second
		if d > worst {
			worst = d
		}
	})
	jb := NewJitterBox(eng, sim.NewRNG(3, "jitter"), base, jit, dst)
	jb.MaxJitter = max
	// Packets spaced a full second apart: no FIFO interaction, so each
	// delay is exactly base+extra.
	for i := 0; i < 500; i++ {
		p := mkpkt(100)
		p.ID = uint64(i)
		eng.Schedule(time.Duration(i)*time.Second, func() { jb.Receive(p) })
	}
	eng.Run()
	if worst > base+max {
		t.Fatalf("worst one-way delay %v exceeds base+max %v", worst, base+max)
	}
	if worst <= base {
		t.Fatal("jitter never materialized")
	}
}

// recvFunc adapts a function to the Receiver interface.
type recvFunc func(p *Packet)

func (f recvFunc) Receive(p *Packet) { f(p) }

func TestECNFieldsDefaultClear(t *testing.T) {
	p := mkpkt(100)
	if p.ECT || p.CE {
		t.Fatal("fresh packet has ECN bits set")
	}
}
