package netem

import (
	"time"

	"bufferqoe/internal/sim"
)

// JitterBox is a delay element that adds a random per-packet delay on
// top of a constant base, without reordering packets. It models the
// variable layer-2 delays of wireless links (802.11 retransmissions,
// rate adaptation) that the paper explicitly excludes from its testbeds
// ("we decided to omit WiFi connectivity which adds its own variable
// delay characteristics"); the ext-jitter experiment re-adds that
// dimension to show how path jitter shifts the buffer-sizing picture.
//
// Each packet is delayed by Base plus a draw from an exponential
// distribution with mean Jitter, truncated at MaxJitter. Delivery is
// serialized so a delayed packet holds back its successors (FIFO, as
// with a link-layer ARQ that blocks the transmit queue), which is how
// Wi-Fi retransmission delay manifests in practice.
type JitterBox struct {
	// Base is the constant one-way delay component.
	Base time.Duration
	// Jitter is the mean of the exponential extra delay.
	Jitter time.Duration
	// MaxJitter truncates the extra delay (a link-layer gives up after
	// a bounded number of retransmissions). Zero means 8x Jitter.
	MaxJitter time.Duration

	eng  *sim.Engine
	rng  *sim.RNG
	dst  Receiver
	free sim.Time // earliest time the next packet may be delivered
}

// NewJitterBox creates a jitter element delivering to dst.
func NewJitterBox(eng *sim.Engine, rng *sim.RNG, base, jitter time.Duration, dst Receiver) *JitterBox {
	return &JitterBox{Base: base, Jitter: jitter, eng: eng, rng: rng, dst: dst}
}

// Reset re-seeds the jitter element for carcass reuse: a fresh RNG
// stream, new delay parameters, and a rewound serialization horizon,
// exactly as NewJitterBox would leave it.
func (j *JitterBox) Reset(rng *sim.RNG, base, jitter time.Duration) {
	j.Base, j.Jitter, j.MaxJitter = base, jitter, 0
	j.rng = rng
	j.free = 0
}

// Receive implements Receiver: it forwards the packet after the jittered
// delay, preserving arrival order. Each delivery is a pooled
// ArgHandler event, so the per-packet path allocates nothing.
func (j *JitterBox) Receive(p *Packet) {
	maxJ := j.MaxJitter
	if maxJ == 0 {
		maxJ = 8 * j.Jitter
	}
	extra := time.Duration(j.rng.Exponential(float64(j.Jitter)))
	if extra > maxJ {
		extra = maxJ
	}
	deliver := j.eng.Now().Add(j.Base + extra)
	if deliver < j.free {
		deliver = j.free
	}
	j.free = deliver
	j.eng.AtArg(deliver, j, p)
}

// FireArg implements sim.ArgHandler: the jittered delay elapsed —
// deliver the packet downstream.
func (j *JitterBox) FireArg(now sim.Time, arg any) {
	j.dst.Receive(arg.(*Packet))
}
