package netem

import (
	"testing"
	"time"

	"bufferqoe/internal/sim"
)

// orderSink records the IDs of packets in delivery order.
type orderSink struct{ ids []uint64 }

func (s *orderSink) Receive(p *Packet) { s.ids = append(s.ids, p.ID) }

// feedReorder pushes n packets, one per millisecond, through a
// ReorderBox with the given probability and seed and returns the
// delivery order.
func feedReorder(n int, prob float64, seed uint64) []uint64 {
	eng := sim.New()
	sink := &orderSink{}
	rb := NewReorderBox(eng, sim.NewRNG(seed, "reorder-test"), prob, sink)
	for i := 0; i < n; i++ {
		p := &Packet{ID: uint64(i + 1), Size: 1500}
		eng.Schedule(time.Duration(i)*time.Millisecond, func() { rb.Receive(p) })
	}
	eng.RunFor(time.Second)
	return sink.ids
}

func inversions(ids []uint64) int {
	inv := 0
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			inv++
		}
	}
	return inv
}

func TestReorderBoxZeroProbPreservesOrder(t *testing.T) {
	ids := feedReorder(200, 0, 1)
	if len(ids) != 200 {
		t.Fatalf("delivered %d of 200", len(ids))
	}
	if inversions(ids) != 0 {
		t.Fatal("zero-probability box reordered packets")
	}
}

func TestReorderBoxActuallyReorders(t *testing.T) {
	ids := feedReorder(500, 0.2, 7)
	if len(ids) != 500 {
		t.Fatalf("delivered %d of 500", len(ids))
	}
	if inversions(ids) == 0 {
		t.Fatal("20%% reorder probability produced zero inversions")
	}
}

func TestReorderBoxDeterministic(t *testing.T) {
	a := feedReorder(300, 0.1, 42)
	b := feedReorder(300, 0.1, 42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// A different seed must (with overwhelming probability) produce a
	// different order.
	c := feedReorder(300, 0.1, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("independent seeds produced identical reorderings")
	}
}

func TestReorderBoxNoLoss(t *testing.T) {
	for _, prob := range []float64{0.01, 0.25, 0.9} {
		ids := feedReorder(250, prob, 5)
		if len(ids) != 250 {
			t.Fatalf("p=%v: delivered %d of 250", prob, len(ids))
		}
		seen := make(map[uint64]bool, len(ids))
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("p=%v: duplicate delivery of packet %d", prob, id)
			}
			seen[id] = true
		}
	}
}

func TestReorderBoxReset(t *testing.T) {
	eng := sim.New()
	sink := &orderSink{}
	rb := NewReorderBox(eng, sim.NewRNG(1, "a"), 0.5, sink)
	rb.Extra = 20 * time.Millisecond
	rb.Reset(sim.NewRNG(2, "b"), 0.1)
	if rb.Prob != 0.1 || rb.Extra != 0 {
		t.Fatalf("Reset left Prob=%v Extra=%v", rb.Prob, rb.Extra)
	}
}
