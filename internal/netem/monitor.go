package netem

import (
	"time"

	"bufferqoe/internal/sim"
	"bufferqoe/internal/stats"
)

// QueueMonitor collects the buffer statistics the paper reads from the
// NetFPGA cards: time-weighted occupancy, per-packet queueing delay
// (Figure 4 heatmaps), and drop counts (Table 1 loss columns).
type QueueMonitor struct {
	Name string

	Enqueued uint64
	Dropped  uint64
	Dequeued uint64

	// Delay collects per-packet waiting times in milliseconds.
	Delay stats.Sample
	// DelayMean tracks mean/max waiting time in milliseconds.
	DelayMean stats.Welford
	// OccupancyPkts tracks the time-weighted queue length.
	OccupancyPkts stats.TimeWeighted
}

// Reset clears the monitor for reuse on another run, keeping the
// sample backing arrays so a scratch-pooled monitor refills without
// reallocating.
func (m *QueueMonitor) Reset(name string) {
	m.Name = name
	m.Enqueued, m.Dropped, m.Dequeued = 0, 0, 0
	m.Delay.Reset()
	m.DelayMean.Reset()
	m.OccupancyPkts.Reset()
}

func (m *QueueMonitor) enqueue(p *Packet, now sim.Time, qlen, qbytes int) {
	m.Enqueued++
	m.OccupancyPkts.Set(now.Seconds(), float64(qlen))
}

func (m *QueueMonitor) drop(p *Packet, now sim.Time, qlen, qbytes int) {
	m.Dropped++
}

func (m *QueueMonitor) dequeue(p *Packet, now sim.Time, qlen, qbytes int) {
	m.Dequeued++
	ms := now.Sub(p.Enqueued).Seconds() * 1000
	m.Delay.Add(ms)
	m.DelayMean.Add(ms)
	m.OccupancyPkts.Set(now.Seconds(), float64(qlen))
}

// NoteEnqueue records an accepted packet from a queue implementation
// outside this package (the aqm disciplines).
func (m *QueueMonitor) NoteEnqueue(p *Packet, now sim.Time, qlen, qbytes int) {
	m.enqueue(p, now, qlen, qbytes)
}

// NoteDrop records a dropped packet from an external queue
// implementation.
func (m *QueueMonitor) NoteDrop(p *Packet, now sim.Time, qlen, qbytes int) {
	m.drop(p, now, qlen, qbytes)
}

// NoteDequeue records a dequeued packet from an external queue
// implementation; per-packet queueing delay is derived from
// p.Enqueued.
func (m *QueueMonitor) NoteDequeue(p *Packet, now sim.Time, qlen, qbytes int) {
	m.dequeue(p, now, qlen, qbytes)
}

// LossRate returns the fraction of offered packets that were dropped.
func (m *QueueMonitor) LossRate() float64 {
	total := m.Enqueued + m.Dropped
	if total == 0 {
		return 0
	}
	return float64(m.Dropped) / float64(total)
}

// MeanDelayMs returns the mean per-packet queueing delay in
// milliseconds.
func (m *QueueMonitor) MeanDelayMs() float64 { return m.DelayMean.Mean() }

// RatedCarrier is what a LinkMonitor observes: any transmission channel
// with a nominal capacity. The wired Link implements it; so does the
// 802.11 MAC link, whose nominal rate is the PHY rate (utilization is
// then reported against the raw air rate, contention overhead
// included).
type RatedCarrier interface {
	// NominalRate returns the channel capacity in bits per second; 0
	// means infinite (pure delay elements are never monitored).
	NominalRate() float64
}

// LinkMonitor measures link throughput and per-interval utilization
// samples (the boxplots of Figure 5 and the utilization columns of
// Table 1).
type LinkMonitor struct {
	Name string

	BytesSent uint64
	PktsSent  uint64

	// UtilSamples holds per-interval utilization percentages once
	// StartSampling has been called.
	UtilSamples stats.Sample

	carrier   RatedCarrier
	lastBytes uint64
	startTime sim.Time
	started   bool
}

// Reset clears the monitor for reuse on another run (the carrier
// attachment is re-established by Link.AttachMonitor or
// LinkMonitor.Attach).
func (m *LinkMonitor) Reset() {
	m.Name = ""
	m.BytesSent, m.PktsSent = 0, 0
	m.UtilSamples.Reset()
	m.carrier = nil
	m.lastBytes = 0
	m.startTime = 0
	m.started = false
}

// Attach wires the monitor to a carrier under the given name. Carrier
// implementations outside this package (the mac link) use it the way
// Link.AttachMonitor is used for wired links.
func (m *LinkMonitor) Attach(name string, c RatedCarrier) {
	m.Name = name
	m.carrier = c
}

func (m *LinkMonitor) transmitted(p *Packet) {
	m.BytesSent += uint64(p.Size)
	m.PktsSent++
}

// NoteTransmit records a transmitted packet from a carrier
// implementation outside this package (mirroring the QueueMonitor
// Note* hooks the aqm disciplines use).
func (m *LinkMonitor) NoteTransmit(p *Packet) { m.transmitted(p) }

// StartSampling records a utilization sample every interval until the
// engine stops. Utilization is the fraction of carrier capacity used
// during each interval, in percent.
func (m *LinkMonitor) StartSampling(eng *sim.Engine, interval time.Duration) {
	if m.carrier == nil || m.started {
		return
	}
	m.started = true
	m.startTime = eng.Now()
	m.lastBytes = m.BytesSent
	var tick func()
	tick = func() {
		sent := m.BytesSent - m.lastBytes
		m.lastBytes = m.BytesSent
		cap := m.carrier.NominalRate() * interval.Seconds() / 8
		if cap > 0 {
			m.UtilSamples.Add(100 * float64(sent) / cap)
		}
		eng.Schedule(interval, tick)
	}
	eng.Schedule(interval, tick)
}

// MeanUtilization returns the overall utilization percentage since the
// start of the run (or since StartSampling).
func (m *LinkMonitor) MeanUtilization(now sim.Time) float64 {
	if m.carrier == nil {
		return 0
	}
	rate := m.carrier.NominalRate()
	if rate == 0 {
		return 0
	}
	elapsed := now.Sub(m.startTime).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return 100 * float64(m.BytesSent) * 8 / (rate * elapsed)
}
