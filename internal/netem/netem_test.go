package netem

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"bufferqoe/internal/sim"
)

// sink records delivered packets with their arrival times.
type sink struct {
	eng  *sim.Engine
	pkts []*Packet
	ats  []sim.Time
}

func (s *sink) Receive(p *Packet) {
	s.pkts = append(s.pkts, p)
	s.ats = append(s.ats, s.eng.Now())
}

func mkpkt(size int) *Packet {
	return &Packet{
		Flow: Flow{Proto: ProtoUDP, Src: Addr{1, 10}, Dst: Addr{2, 20}},
		Size: size,
	}
}

func TestDropTailFIFO(t *testing.T) {
	q := NewDropTail(4)
	var now sim.Time
	for i := 0; i < 4; i++ {
		p := mkpkt(100 + i)
		if !q.Enqueue(p, now) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if q.Len() != 4 {
		t.Fatalf("len = %d", q.Len())
	}
	if q.Enqueue(mkpkt(999), now) {
		t.Fatal("overfull enqueue accepted")
	}
	for i := 0; i < 4; i++ {
		p := q.Dequeue(now)
		if p.Size != 100+i {
			t.Fatalf("FIFO violated: got size %d at pos %d", p.Size, i)
		}
	}
	if q.Dequeue(now) != nil {
		t.Fatal("dequeue from empty returned packet")
	}
}

func TestDropTailBytes(t *testing.T) {
	q := NewDropTail(10)
	q.Enqueue(mkpkt(100), 0)
	q.Enqueue(mkpkt(200), 0)
	if q.Bytes() != 300 {
		t.Fatalf("bytes = %d", q.Bytes())
	}
	q.Dequeue(0)
	if q.Bytes() != 200 {
		t.Fatalf("bytes after dequeue = %d", q.Bytes())
	}
}

// Property: a drop-tail queue never exceeds its capacity and preserves
// FIFO order, for any interleaving of enqueues and dequeues.
func TestPropertyDropTailInvariants(t *testing.T) {
	f := func(ops []bool, capacity uint8) bool {
		c := int(capacity%32) + 1
		q := NewDropTail(c)
		nextID := uint64(0)
		lastOut := uint64(0)
		for _, enq := range ops {
			if enq {
				nextID++
				p := mkpkt(100)
				p.ID = nextID
				q.Enqueue(p, 0)
			} else if p := q.Dequeue(0); p != nil {
				if p.ID <= lastOut {
					return false // order violated
				}
				lastOut = p.ID
			}
			if q.Len() > c || q.Len() < 0 {
				return false
			}
			if q.Bytes() != q.Len()*100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkSerializationAndPropagation(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	// 8 Mbit/s, 10 ms propagation: a 1000-byte packet serializes in
	// 1 ms and arrives at 11 ms.
	l := NewLink(eng, "test", 8e6, 10*time.Millisecond, NewDropTail(10), s)
	p := mkpkt(1000)
	p.Created = eng.Now()
	l.Send(p)
	eng.Run()
	if len(s.pkts) != 1 {
		t.Fatalf("delivered %d packets", len(s.pkts))
	}
	want := sim.Time(11 * time.Millisecond)
	if s.ats[0] != want {
		t.Fatalf("arrival at %v, want %v", s.ats[0], want)
	}
}

func TestLinkBackToBackPackets(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	l := NewLink(eng, "test", 8e6, 0, NewDropTail(10), s)
	for i := 0; i < 3; i++ {
		l.Send(mkpkt(1000))
	}
	eng.Run()
	// Serialization is 1 ms each; arrivals at 1, 2, 3 ms.
	for i, at := range s.ats {
		want := sim.Time(time.Duration(i+1) * time.Millisecond)
		if at != want {
			t.Fatalf("pkt %d arrived at %v, want %v", i, at, want)
		}
	}
}

func TestLinkInfiniteRateIsPureDelay(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	l := NewLink(eng, "delaybox", 0, 30*time.Millisecond, nil, s)
	for i := 0; i < 5; i++ {
		l.Send(mkpkt(1500))
	}
	eng.Run()
	for _, at := range s.ats {
		if at != sim.Time(30*time.Millisecond) {
			t.Fatalf("arrival at %v, want 30ms", at)
		}
	}
}

func TestLinkQueueOverflowDrops(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	l := NewLink(eng, "narrow", 8e6, 0, NewDropTail(2), s)
	accepted := 0
	for i := 0; i < 10; i++ {
		if l.Send(mkpkt(1000)) {
			accepted++
		}
	}
	eng.Run()
	// One in service + 2 queued = 3 accepted.
	if accepted != 3 {
		t.Fatalf("accepted = %d, want 3", accepted)
	}
	if len(s.pkts) != 3 {
		t.Fatalf("delivered = %d, want 3", len(s.pkts))
	}
}

func TestQueueMonitorDelays(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	q := NewDropTail(100)
	mon := &QueueMonitor{Name: "q"}
	q.Monitor = mon
	l := NewLink(eng, "l", 8e6, 0, q, s)
	// 4 packets of 1000 B: queueing delays 0, 1, 2, 3 ms.
	for i := 0; i < 4; i++ {
		l.Send(mkpkt(1000))
	}
	eng.Run()
	if mon.Dequeued != 4 {
		t.Fatalf("dequeued = %d", mon.Dequeued)
	}
	if got := mon.MeanDelayMs(); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("mean delay = %v ms, want 1.5", got)
	}
	if mon.LossRate() != 0 {
		t.Fatalf("loss = %v", mon.LossRate())
	}
}

func TestQueueMonitorLoss(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	q := NewDropTail(1)
	mon := &QueueMonitor{}
	q.Monitor = mon
	l := NewLink(eng, "l", 8e6, 0, q, s)
	for i := 0; i < 4; i++ {
		l.Send(mkpkt(1000))
	}
	eng.Run()
	// 2 accepted (1 in service + 1 queued), 2 dropped.
	if mon.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", mon.Dropped)
	}
	if got := mon.LossRate(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("loss rate = %v, want 0.5", got)
	}
}

func TestLinkMonitorUtilization(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	l := NewLink(eng, "l", 8e6, 0, NewDropTail(1000), s)
	l.EnsureMonitor().StartSampling(eng, 100*time.Millisecond)
	// Send 1000 B every ms for 1 s => 8 Mbit/s exactly => 100% util.
	for i := 0; i < 1000; i++ {
		d := time.Duration(i) * time.Millisecond
		eng.Schedule(d, func() { l.Send(mkpkt(1000)) })
	}
	eng.RunUntil(sim.Time(1 * time.Second))
	if got := l.Monitor.MeanUtilization(eng.Now()); math.Abs(got-100) > 1.0 {
		t.Fatalf("utilization = %v%%, want ~100%%", got)
	}
	if l.Monitor.UtilSamples.N() < 9 {
		t.Fatalf("too few samples: %d", l.Monitor.UtilSamples.N())
	}
}

func TestNodeLocalDelivery(t *testing.T) {
	eng := sim.New()
	nw := NewNetwork(eng)
	a := nw.NewNode("a")
	b := nw.NewNode("b")
	nw.Connect(a, b, 1e9, time.Millisecond, 100)

	var got []*Packet
	b.Bind(ProtoUDP, 5000, HandlerFunc(func(p *Packet) { got = append(got, p) }))
	p := &Packet{
		Flow: Flow{Proto: ProtoUDP, Src: a.Addr(1234), Dst: b.Addr(5000)},
		Size: 200,
	}
	a.Send(p)
	eng.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d", len(got))
	}
	if b.Delivered != 1 {
		t.Fatalf("node counter = %d", b.Delivered)
	}
}

func TestNodeForwarding(t *testing.T) {
	eng := sim.New()
	nw := NewNetwork(eng)
	a := nw.NewNode("a")
	r := nw.NewNode("router")
	b := nw.NewNode("b")
	nw.Connect(a, r, 1e9, time.Millisecond, 100)
	rb, _ := nw.Connect(r, b, 1e9, time.Millisecond, 100)
	_ = rb
	a.SetDefaultRoute(a.routes[r.ID])
	r.SetRoute(b.ID, r.routes[b.ID])

	var got []*Packet
	b.Bind(ProtoUDP, 80, HandlerFunc(func(p *Packet) { got = append(got, p) }))
	p := &Packet{
		Flow: Flow{Proto: ProtoUDP, Src: a.Addr(1), Dst: b.Addr(80)},
		Size: 100,
	}
	a.Send(p)
	eng.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d", len(got))
	}
	if r.Forwarded != 1 {
		t.Fatalf("router forwarded = %d", r.Forwarded)
	}
}

func TestNodeUndeliverable(t *testing.T) {
	eng := sim.New()
	nw := NewNetwork(eng)
	a := nw.NewNode("a")
	b := nw.NewNode("b")
	nw.Connect(a, b, 1e9, 0, 10)
	p := &Packet{Flow: Flow{Proto: ProtoUDP, Src: a.Addr(1), Dst: b.Addr(99)}, Size: 50}
	a.Send(p)
	eng.Run()
	if b.Undeliverable != 1 {
		t.Fatalf("undeliverable = %d", b.Undeliverable)
	}
}

func TestAllocPortSkipsBound(t *testing.T) {
	eng := sim.New()
	nw := NewNetwork(eng)
	a := nw.NewNode("a")
	a.Bind(ProtoTCP, 10001, HandlerFunc(func(*Packet) {}))
	a.nextPort = 10000
	p := a.AllocPort(ProtoTCP)
	if p == 10001 {
		t.Fatal("allocated a bound port")
	}
}

func TestFlowReverse(t *testing.T) {
	f := Flow{Proto: ProtoTCP, Src: Addr{1, 10}, Dst: Addr{2, 20}}
	r := f.Reverse()
	if r.Src != f.Dst || r.Dst != f.Src || r.Proto != f.Proto {
		t.Fatalf("reverse = %+v", r)
	}
	if r.Reverse() != f {
		t.Fatal("double reverse != identity")
	}
}

func TestFlowAsMapKey(t *testing.T) {
	m := map[Flow]int{}
	f := Flow{Proto: ProtoTCP, Src: Addr{1, 10}, Dst: Addr{2, 20}}
	m[f] = 7
	if m[Flow{Proto: ProtoTCP, Src: Addr{1, 10}, Dst: Addr{2, 20}}] != 7 {
		t.Fatal("flow map key equality failed")
	}
}

func TestTransmissionTime(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng, "l", 1e6, 0, NewDropTail(8), &sink{eng: eng})
	// 1500 B at 1 Mbit/s = 12 ms — the per-packet delay behind the
	// paper's Table 2 uplink numbers.
	if got := l.TransmissionTime(1500); got != 12*time.Millisecond {
		t.Fatalf("tx time = %v, want 12ms", got)
	}
}

func TestDoubleBindPanics(t *testing.T) {
	eng := sim.New()
	nw := NewNetwork(eng)
	a := nw.NewNode("a")
	a.Bind(ProtoUDP, 9, HandlerFunc(func(*Packet) {}))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double bind")
		}
	}()
	a.Bind(ProtoUDP, 9, HandlerFunc(func(*Packet) {}))
}
