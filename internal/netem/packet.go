// Package netem is the packet-level network substrate: packets and
// flows (gopacket-inspired hashable endpoints), rate/delay links with
// pluggable queues, drop-tail FIFOs, nodes with static routing and
// transport demultiplexing, and queue/link monitors.
//
// It stands in for the paper's physical testbed hardware (NetFPGA
// reference routers, Cisco switches/routers, GigE and OC3 links): the
// paper's results are driven by queueing and drop dynamics at a single
// drop-tail bottleneck, which this package reproduces exactly.
package netem

import (
	"fmt"

	"bufferqoe/internal/sim"
)

// Protocol identifies the transport protocol of a packet.
type Protocol uint8

// Transport protocols used in the study.
const (
	ProtoTCP Protocol = iota + 1
	ProtoUDP
)

func (p Protocol) String() string {
	switch p {
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// Header sizes in bytes. The models account for IP and transport
// headers explicitly so that on-wire sizes (and therefore queueing
// delays) match full-sized 1500-byte packets as in the paper.
const (
	MTU       = 1500 // Ethernet payload budget (IP + transport + data)
	IPHeader  = 20
	TCPHeader = 20
	UDPHeader = 8
	RTPHeader = 12
)

// NodeID identifies a node in a Network.
type NodeID int32

// Addr is a transport endpoint: node plus port. It is hashable and
// usable as a map key.
type Addr struct {
	Node NodeID
	Port uint16
}

func (a Addr) String() string { return fmt.Sprintf("n%d:%d", a.Node, a.Port) }

// Flow identifies a unidirectional transport flow (the gopacket
// Flow/Endpoint idea). Flows are hashable map keys, and Reverse gives
// the other direction of the same conversation.
type Flow struct {
	Proto    Protocol
	Src, Dst Addr
}

// Reverse returns the opposite direction of the flow.
func (f Flow) Reverse() Flow {
	return Flow{Proto: f.Proto, Src: f.Dst, Dst: f.Src}
}

func (f Flow) String() string {
	return fmt.Sprintf("%s %s>%s", f.Proto, f.Src, f.Dst)
}

// Packet is one IP datagram in flight. Size is the full on-wire size
// including IP and transport headers. Payload carries the
// protocol-specific content (e.g. *tcp.Segment); it is never inspected
// by the network layer.
//
// Ownership: packets obtained from Network.NewPacket belong to exactly
// one holder at a time — the sending endpoint until Send, then the
// link/queue/delivery pipeline, then the consuming endpoint. Whoever
// consumes a packet (the network on local delivery, a queue on a drop)
// calls Release to return it to the per-network free-list; holding a
// *Packet past its Release is a use-after-free class bug. Packets
// built with a composite literal have no pool and Release is a no-op,
// so tests and external constructions stay safe.
type Packet struct {
	ID   uint64
	Flow Flow
	Size int

	// Payload is interpreted by the receiving transport endpoint.
	Payload any

	// Created is when the sending host handed the packet to its NIC.
	Created sim.Time
	// Enqueued is stamped by the queue currently holding the packet;
	// AQMs (CoDel) and monitors derive sojourn time from it.
	Enqueued sim.Time

	// ECT marks the packet ECN-capable (the sender negotiated ECN,
	// RFC 3168 ECT(0) codepoint). AQM queues configured for ECN mark
	// such packets instead of dropping them.
	ECT bool
	// CE is the Congestion Experienced mark set by an ECN-enabled
	// queue in place of a drop. Receivers echo it back to the sender.
	CE bool

	// pool is the owning network's free-list for pooled packets; nil
	// for packets constructed directly.
	pool *Network
}

// Release returns a pooled packet to its network's free-list. It is
// idempotent (the first call clears the pool link) and a no-op for
// packets not obtained from Network.NewPacket.
func (p *Packet) Release() {
	nw := p.pool
	if nw == nil {
		return
	}
	p.pool = nil
	nw.pktFree = append(nw.pktFree, p)
	nw.recycles++
}
