package netem

import (
	"fmt"
	"time"

	"bufferqoe/internal/sim"
)

// Handler consumes packets addressed to a bound transport port.
type Handler interface {
	HandlePacket(p *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(p *Packet)

// HandlePacket implements Handler.
func (f HandlerFunc) HandlePacket(p *Packet) { f(p) }

// Egress is anything a node can route packets into: a wired Link, or an
// alternative last-hop implementation such as the 802.11 MAC link. Send
// reports whether the first hop accepted the packet (false = dropped by
// the queue, which releases the packet).
type Egress interface {
	Send(p *Packet) bool
}

type portKey struct {
	proto Protocol
	port  uint16
}

// Node is a host, switch, or router. Hosts bind transport handlers to
// ports; switches and routers only forward. Routing is static: an
// explicit per-destination table plus a default route, which is all a
// dumbbell topology needs.
type Node struct {
	ID   NodeID
	Name string

	eng      *sim.Engine
	net      *Network
	routes   map[NodeID]Egress
	defRoute Egress
	handlers map[portKey]Handler
	nextPort uint16
	// Forwarded counts transit packets, Delivered local deliveries,
	// Undeliverable packets with no route or handler.
	Forwarded     uint64
	Delivered     uint64
	Undeliverable uint64
}

// Reset returns the node to its never-used state for carcass reuse:
// port bindings and counters are cleared, the ephemeral port allocator
// rewinds, and the static routing tables — a function of the topology,
// not of any run — are kept. Applications re-Bind their ports each
// run, so a reset node accepts the same bind sequence a fresh one
// would.
func (n *Node) Reset() {
	clear(n.handlers)
	n.nextPort = 0
	n.Forwarded, n.Delivered, n.Undeliverable = 0, 0, 0
}

// SetRoute installs a next-hop egress for a destination node.
func (n *Node) SetRoute(dst NodeID, l Egress) {
	n.routes[dst] = l
}

// SetDefaultRoute installs the next-hop egress for all unmatched
// destinations.
func (n *Node) SetDefaultRoute(l Egress) { n.defRoute = l }

// Bind registers a handler for a protocol/port pair. It panics on
// double binds, which are always programming errors in the models.
func (n *Node) Bind(proto Protocol, port uint16, h Handler) {
	k := portKey{proto, port}
	if _, dup := n.handlers[k]; dup {
		panic(fmt.Sprintf("netem: %s: double bind %v port %d", n.Name, proto, port))
	}
	n.handlers[k] = h
}

// Unbind removes a port binding.
func (n *Node) Unbind(proto Protocol, port uint16) {
	delete(n.handlers, portKey{proto, port})
}

// AllocPort returns an unused ephemeral port for the protocol.
func (n *Node) AllocPort(proto Protocol) uint16 {
	for {
		n.nextPort++
		if n.nextPort < 10000 {
			n.nextPort = 10000
		}
		if _, used := n.handlers[portKey{proto, n.nextPort}]; !used {
			return n.nextPort
		}
	}
}

// Addr returns an Addr on this node with the given port.
func (n *Node) Addr(port uint16) Addr { return Addr{Node: n.ID, Port: port} }

// Engine returns the simulation engine the node is attached to.
func (n *Node) Engine() *sim.Engine { return n.eng }

// Network returns the network the node belongs to.
func (n *Node) Network() *Network { return n.net }

// Send originates a packet from this node, stamping creation time and
// routing it toward its destination. It reports whether the first hop
// accepted the packet.
func (n *Node) Send(p *Packet) bool {
	p.ID = n.net.nextPacketID()
	p.Created = n.eng.Now()
	return n.forward(p)
}

// Receive implements Receiver: deliver locally or forward. A locally
// consumed (or undeliverable) pooled packet is released back to the
// network free-list after the handler returns; handlers must copy what
// they need and not retain the *Packet.
func (n *Node) Receive(p *Packet) {
	if p.Flow.Dst.Node == n.ID {
		h, ok := n.handlers[portKey{p.Flow.Proto, p.Flow.Dst.Port}]
		if !ok {
			n.Undeliverable++
			p.Release()
			return
		}
		n.Delivered++
		h.HandlePacket(p)
		p.Release()
		return
	}
	n.Forwarded++
	n.forward(p)
}

func (n *Node) forward(p *Packet) bool {
	l, ok := n.routes[p.Flow.Dst.Node]
	if !ok {
		l = n.defRoute
	}
	if l == nil {
		n.Undeliverable++
		p.Release()
		return false
	}
	return l.Send(p)
}

// Network owns the engine, nodes and links of one simulated testbed,
// plus the packet free-list: in steady state every datagram the models
// send reuses a released *Packet instead of allocating.
type Network struct {
	Engine *sim.Engine

	nodes    []*Node
	packetID uint64
	pktFree  []*Packet
	recycles uint64
}

// PacketRecycles reports how many packets have been returned to the
// free-list over the network's lifetime — a pool-effectiveness signal
// for telemetry (recycles ≈ packets sent means steady state allocates
// nothing).
func (nw *Network) PacketRecycles() uint64 { return nw.recycles }

// NewPacket returns a zeroed packet from the network's free-list (or a
// fresh allocation when the list is empty). The caller fills it and
// hands it to Node.Send; see the Packet ownership comment for who
// releases it.
func (nw *Network) NewPacket() *Packet {
	if n := len(nw.pktFree); n > 0 {
		p := nw.pktFree[n-1]
		nw.pktFree[n-1] = nil
		nw.pktFree = nw.pktFree[:n-1]
		*p = Packet{pool: nw}
		return p
	}
	return &Packet{pool: nw}
}

// NewNetwork creates an empty network on the engine.
func NewNetwork(eng *sim.Engine) *Network {
	return &Network{Engine: eng}
}

// Reset rewinds the packet-ID counter and the recycle telemetry for
// carcass reuse, keeping the nodes and the packet free-list: recycled
// packets are fully zeroed on NewPacket, so a warm pool is
// behavior-identical to a cold one.
func (nw *Network) Reset() {
	nw.packetID = 0
	nw.recycles = 0
}

// NewNode adds a node with the given name.
func (nw *Network) NewNode(name string) *Node {
	n := &Node{
		ID:       NodeID(len(nw.nodes) + 1),
		Name:     name,
		eng:      nw.Engine,
		net:      nw,
		routes:   make(map[NodeID]Egress),
		handlers: make(map[portKey]Handler),
	}
	nw.nodes = append(nw.nodes, n)
	return n
}

// Nodes returns all nodes in creation order.
func (nw *Network) Nodes() []*Node { return nw.nodes }

func (nw *Network) nextPacketID() uint64 {
	nw.packetID++
	return nw.packetID
}

// Connect builds a bidirectional connection between a and b with
// symmetric rate and delay and per-direction drop-tail queues of qlen
// packets. It returns the a->b and b->a links.
func (nw *Network) Connect(a, b *Node, rate float64, delay time.Duration, qlen int) (*Link, *Link) {
	ab := NewLink(nw.Engine, a.Name+"->"+b.Name, rate, delay, NewDropTail(qlen), b)
	ba := NewLink(nw.Engine, b.Name+"->"+a.Name, rate, delay, NewDropTail(qlen), a)
	a.SetRoute(b.ID, ab)
	b.SetRoute(a.ID, ba)
	return ab, ba
}
