package netem

import (
	"testing"

	"bufferqoe/internal/sim"
)

func TestLossQueueDropsAtConfiguredRate(t *testing.T) {
	q := NewLossQueue(NewDropTail(100000), 0.3, sim.NewRNG(1, "loss"))
	const n = 20000
	accepted := 0
	for i := 0; i < n; i++ {
		if q.Enqueue(mkpkt(100), 0) {
			accepted++
			q.Dequeue(0)
		}
	}
	got := float64(n-accepted) / n
	if got < 0.27 || got > 0.33 {
		t.Fatalf("empirical loss rate %.3f, want ~0.30", got)
	}
	if q.Injected != uint64(n-accepted) {
		t.Fatalf("Injected=%d, dropped=%d", q.Injected, n-accepted)
	}
}

func TestLossQueueZeroRatePassthrough(t *testing.T) {
	q := NewLossQueue(NewDropTail(4), 0, sim.NewRNG(2, "loss"))
	for i := 0; i < 4; i++ {
		if !q.Enqueue(mkpkt(100), 0) {
			t.Fatal("zero-rate loss queue dropped")
		}
	}
	// Inner overflow still applies and is not counted as injected.
	if q.Enqueue(mkpkt(100), 0) {
		t.Fatal("inner overflow accepted")
	}
	if q.Injected != 0 {
		t.Fatalf("Injected = %d on overflow drop", q.Injected)
	}
	if q.Len() != 4 || q.Bytes() != 400 {
		t.Fatalf("len=%d bytes=%d", q.Len(), q.Bytes())
	}
}

func TestLossQueueRateClamped(t *testing.T) {
	q := NewLossQueue(NewDropTail(4), 1.7, sim.NewRNG(3, "loss"))
	if q.Rate != 1 {
		t.Fatalf("rate %v, want clamped to 1", q.Rate)
	}
	if q.Enqueue(mkpkt(100), 0) {
		t.Fatal("rate-1 queue accepted a packet")
	}
}
