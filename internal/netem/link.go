package netem

import (
	"time"

	"bufferqoe/internal/sim"
)

// Receiver consumes packets delivered by a link.
type Receiver interface {
	Receive(p *Packet)
}

// Link is a unidirectional transmission channel: packets wait in the
// queue, are serialized at Rate bits per second, then propagate for
// Delay before delivery. A Rate of 0 means infinite capacity (pure
// delay element — the NetPath delay boxes of the backbone testbed).
//
// The link is its own event handler: serialization completion is an
// owned timer dispatching to Fire, and each in-flight delivery is a
// pooled ArgHandler event carrying the packet — the forwarding hot
// path schedules zero closures and allocates nothing in steady state.
type Link struct {
	Name  string
	Rate  float64       // bits per second; 0 = infinite
	Delay time.Duration // one-way propagation delay

	Queue Queue
	// Monitor observes transmitted packets. It is nil by default — the
	// per-packet fast path pays for instrumentation only on links an
	// experiment actually reads — and is attached with EnsureMonitor.
	Monitor *LinkMonitor

	// Tap, if non-nil, observes every packet the link transmits (the
	// tcpdump vantage point of the paper's trace analysis).
	Tap func(p *Packet, at sim.Time)

	eng     *sim.Engine
	dst     Receiver
	busy    bool
	txTimer sim.Timer // owned: fires when the head packet finishes serializing
	txPkt   *Packet   // packet in service
}

// NewLink creates a link feeding dst through queue. No LinkMonitor is
// attached; call EnsureMonitor on links whose throughput or
// utilization an experiment reads.
func NewLink(eng *sim.Engine, name string, rate float64, delay time.Duration, queue Queue, dst Receiver) *Link {
	l := &Link{
		Name:  name,
		Rate:  rate,
		Delay: delay,
		Queue: queue,
		eng:   eng,
		dst:   dst,
	}
	eng.InitTimer(&l.txTimer, l)
	return l
}

// EnsureMonitor attaches (or returns the existing) LinkMonitor, for
// the bottleneck links whose utilization the experiments measure.
func (l *Link) EnsureMonitor() *LinkMonitor {
	if l.Monitor == nil {
		l.Monitor = &LinkMonitor{Name: l.Name, carrier: l}
	}
	return l.Monitor
}

// AttachMonitor wires a caller-owned (typically scratch-pooled)
// monitor to the link, replacing any current one. The monitor should
// be Reset by the caller before reuse.
func (l *Link) AttachMonitor(m *LinkMonitor) *LinkMonitor {
	m.Attach(l.Name, l)
	l.Monitor = m
	return m
}

// NominalRate implements RatedCarrier.
func (l *Link) NominalRate() float64 { return l.Rate }

// Reset returns the link to its never-used state for carcass reuse:
// the packet in service and any drop-tail queue content are released
// back to the packet pool, and the monitor and tap detach (the
// bottleneck links re-attach theirs per run). The owned transmit timer
// needs no attention — the engine's Reset already unhooked it, and
// Timer.Reset rearms from any state. Non-drop-tail queues (AQMs) are
// left to the garbage collector; the testbeds rebuild those per run.
func (l *Link) Reset() {
	if l.txPkt != nil {
		l.txPkt.Release()
		l.txPkt = nil
	}
	l.busy = false
	l.Monitor = nil
	l.Tap = nil
	if dt, ok := l.Queue.(*DropTail); ok {
		dt.Reset()
	}
}

// Send offers a packet to the link. It reports whether the packet was
// accepted (false = dropped by the queue, which releases the packet).
//
//qoe:hotpath
func (l *Link) Send(p *Packet) bool {
	if l.Rate == 0 {
		// Pure delay element: no serialization, no queueing.
		if l.Monitor != nil {
			l.Monitor.transmitted(p)
		}
		if l.Tap != nil {
			l.Tap(p, l.eng.Now())
		}
		l.eng.ScheduleArg(l.Delay, l, p)
		return true
	}
	if !l.Queue.Enqueue(p, l.eng.Now()) {
		p.Release()
		return false
	}
	if !l.busy {
		l.transmitNext()
	}
	return true
}

// transmitNext serializes the head-of-line packet. The next
// transmission starts when serialization (not propagation) completes,
// so the link can hold Delay/serialization many packets in flight.
//
//qoe:hotpath
func (l *Link) transmitNext() {
	p := l.Queue.Dequeue(l.eng.Now())
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	l.txPkt = p
	txTime := time.Duration(float64(p.Size*8) / l.Rate * float64(time.Second))
	l.txTimer.Reset(txTime)
}

// Fire implements sim.Handler: the packet in service finished
// serializing — start its propagation and pull the next one.
//
//qoe:hotpath
func (l *Link) Fire(now sim.Time) {
	p := l.txPkt
	l.txPkt = nil
	if l.Monitor != nil {
		l.Monitor.transmitted(p)
	}
	if l.Tap != nil {
		l.Tap(p, now)
	}
	l.eng.ScheduleArg(l.Delay, l, p)
	l.transmitNext()
}

// FireArg implements sim.ArgHandler: a packet finished propagating —
// hand it to the receiver.
//
//qoe:hotpath
func (l *Link) FireArg(now sim.Time, arg any) {
	l.dst.Receive(arg.(*Packet))
}

// TransmissionTime returns how long one packet of the given size takes
// to serialize on this link.
func (l *Link) TransmissionTime(size int) time.Duration {
	if l.Rate == 0 {
		return 0
	}
	return time.Duration(float64(size*8) / l.Rate * float64(time.Second))
}
