package netem

import (
	"time"

	"bufferqoe/internal/sim"
)

// Receiver consumes packets delivered by a link.
type Receiver interface {
	Receive(p *Packet)
}

// Link is a unidirectional transmission channel: packets wait in the
// queue, are serialized at Rate bits per second, then propagate for
// Delay before delivery. A Rate of 0 means infinite capacity (pure
// delay element — the NetPath delay boxes of the backbone testbed).
type Link struct {
	Name  string
	Rate  float64       // bits per second; 0 = infinite
	Delay time.Duration // one-way propagation delay

	Queue   Queue
	Monitor *LinkMonitor

	// Tap, if non-nil, observes every packet the link transmits (the
	// tcpdump vantage point of the paper's trace analysis).
	Tap func(p *Packet, at sim.Time)

	eng  *sim.Engine
	dst  Receiver
	busy bool
}

// NewLink creates a link feeding dst through queue.
func NewLink(eng *sim.Engine, name string, rate float64, delay time.Duration, queue Queue, dst Receiver) *Link {
	l := &Link{
		Name:    name,
		Rate:    rate,
		Delay:   delay,
		Queue:   queue,
		Monitor: &LinkMonitor{Name: name},
		eng:     eng,
		dst:     dst,
	}
	l.Monitor.link = l
	return l
}

// Send offers a packet to the link. It reports whether the packet was
// accepted (false = dropped by the queue).
func (l *Link) Send(p *Packet) bool {
	if l.Rate == 0 {
		// Pure delay element: no serialization, no queueing.
		l.Monitor.transmitted(p)
		if l.Tap != nil {
			l.Tap(p, l.eng.Now())
		}
		l.eng.Schedule(l.Delay, func() { l.dst.Receive(p) })
		return true
	}
	if !l.Queue.Enqueue(p, l.eng.Now()) {
		return false
	}
	if !l.busy {
		l.transmitNext()
	}
	return true
}

// transmitNext serializes the head-of-line packet. The next
// transmission starts when serialization (not propagation) completes,
// so the link can hold Delay/serialization many packets in flight.
func (l *Link) transmitNext() {
	p := l.Queue.Dequeue(l.eng.Now())
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	txTime := time.Duration(float64(p.Size*8) / l.Rate * float64(time.Second))
	l.eng.Schedule(txTime, func() {
		l.Monitor.transmitted(p)
		if l.Tap != nil {
			l.Tap(p, l.eng.Now())
		}
		l.eng.Schedule(l.Delay, func() { l.dst.Receive(p) })
		l.transmitNext()
	})
}

// TransmissionTime returns how long one packet of the given size takes
// to serialize on this link.
func (l *Link) TransmissionTime(size int) time.Duration {
	if l.Rate == 0 {
		return 0
	}
	return time.Duration(float64(size*8) / l.Rate * float64(time.Second))
}
