package netem

import (
	"time"

	"bufferqoe/internal/sim"
)

// ReorderBox is a delay element that reorders packets: with probability
// Prob a packet is held back by Extra while its successors are
// delivered on time and overtake it. This is the netem-style reorder
// model (the bassosimone/netem lesson: TCP robustness against
// reordering — spurious dup-ACKs, DSACK-less retransmits — is a
// dimension the jitter knob deliberately cannot exercise, because
// JitterBox serializes delivery and preserves arrival order).
//
// Unlike JitterBox there is no FIFO horizon: a held packet does NOT
// block the packets behind it — that is the whole point.
type ReorderBox struct {
	// Prob is the probability a packet is held back.
	Prob float64
	// Extra is how long a held packet lags its on-time peers. Zero
	// means a default of 5 ms, enough to let several full-size packets
	// at access rates overtake.
	Extra time.Duration

	eng *sim.Engine
	rng *sim.RNG
	dst Receiver
}

// DefaultReorderLag is the hold-back applied to reordered packets when
// Extra is left zero.
const DefaultReorderLag = 5 * time.Millisecond

// NewReorderBox creates a reordering element delivering to dst.
func NewReorderBox(eng *sim.Engine, rng *sim.RNG, prob float64, dst Receiver) *ReorderBox {
	return &ReorderBox{Prob: prob, eng: eng, rng: rng, dst: dst}
}

// Reset re-seeds the element for carcass reuse: a fresh RNG stream and
// new reorder probability, exactly as NewReorderBox would leave it.
func (r *ReorderBox) Reset(rng *sim.RNG, prob float64) {
	r.Prob, r.Extra = prob, 0
	r.rng = rng
}

// Receive implements Receiver: on-time packets are forwarded
// immediately (a zero-delay pooled event keeps delivery ordering
// deterministic relative to held packets), held packets after Extra.
func (r *ReorderBox) Receive(p *Packet) {
	var d time.Duration
	if r.rng.Bool(r.Prob) {
		d = r.Extra
		if d == 0 {
			d = DefaultReorderLag
		}
	}
	r.eng.ScheduleArg(d, r, p)
}

// FireArg implements sim.ArgHandler: deliver the packet downstream.
func (r *ReorderBox) FireArg(now sim.Time, arg any) {
	r.dst.Receive(arg.(*Packet))
}
