package netem

import "bufferqoe/internal/sim"

// DropTailBytes is a FIFO queue whose capacity is counted in bytes
// rather than packets. Real line cards size buffers either way; the
// distinction matters for mixed traffic because a packet-counted queue
// charges a 60-byte VoIP frame the same as a 1500-byte bulk segment,
// while a byte-counted queue lets many small packets share the space
// that few large ones would occupy. The abl-bytequeue experiment
// quantifies the difference at the paper's access uplink.
//
// A packet is accepted while the queue holds fewer than CapBytes bytes,
// so the occupancy may overshoot capacity by at most one MTU — the
// standard "at least one packet in flight" convention that also keeps a
// tiny byte budget from deadlocking the link.
type DropTailBytes struct {
	// CapBytes is the buffer size in bytes.
	CapBytes int
	// Monitor, if non-nil, observes enqueue/drop/dequeue events.
	Monitor *QueueMonitor

	q     []*Packet
	head  int
	bytes int
}

// NewDropTailBytes returns a byte-counted drop-tail queue. Capacities
// below one MTU are raised to one MTU so a full-sized packet can always
// be buffered.
func NewDropTailBytes(capBytes int) *DropTailBytes {
	if capBytes < MTU {
		capBytes = MTU
	}
	return &DropTailBytes{CapBytes: capBytes}
}

// Enqueue implements Queue.
func (d *DropTailBytes) Enqueue(p *Packet, now sim.Time) bool {
	if d.bytes >= d.CapBytes {
		if d.Monitor != nil {
			d.Monitor.drop(p, now, d.Len(), d.bytes)
		}
		return false
	}
	p.Enqueued = now
	d.q = append(d.q, p)
	d.bytes += p.Size
	if d.Monitor != nil {
		d.Monitor.enqueue(p, now, d.Len(), d.bytes)
	}
	return true
}

// Dequeue implements Queue.
func (d *DropTailBytes) Dequeue(now sim.Time) *Packet {
	if d.Len() == 0 {
		return nil
	}
	p := d.q[d.head]
	d.q[d.head] = nil
	d.head++
	if d.head == len(d.q) {
		d.q = d.q[:0]
		d.head = 0
	}
	d.bytes -= p.Size
	if d.Monitor != nil {
		d.Monitor.dequeue(p, now, d.Len(), d.bytes)
	}
	return p
}

// Len implements Queue.
func (d *DropTailBytes) Len() int { return len(d.q) - d.head }

// Bytes implements Queue.
func (d *DropTailBytes) Bytes() int { return d.bytes }
