package cdn

import (
	"testing"
)

func genAnalyzed(t *testing.T, n int, seed uint64) ([]FlowRecord, *Analysis) {
	t.Helper()
	flows := Generate(Config{Flows: n, Seed: seed})
	return flows, Analyze(flows, 0)
}

func TestPopulationShares(t *testing.T) {
	flows, _ := genAnalyzed(t, 200000, 1)
	counts := map[AccessTech]int{}
	for _, f := range flows {
		counts[f.Tech]++
	}
	fracADSL := float64(counts[ADSL]) / float64(len(flows))
	if fracADSL < 0.68 || fracADSL > 0.72 {
		t.Fatalf("ADSL share = %.3f, want ~0.70", fracADSL)
	}
	fracCable := float64(counts[Cable]) / float64(len(flows))
	if fracCable < 0.01 || fracCable > 0.02 {
		t.Fatalf("Cable share = %.4f, want ~0.014", fracCable)
	}
	if counts[FTTH] == 0 {
		t.Fatal("no FTTH flows in 200k population")
	}
}

func TestInvariantMinAvgMax(t *testing.T) {
	flows, _ := genAnalyzed(t, 50000, 2)
	for _, f := range flows {
		if !(f.MinSRTT <= f.AvgSRTT && f.AvgSRTT <= f.MaxSRTT) {
			t.Fatalf("ordering violated: %+v", f)
		}
		if f.MinSRTT <= 0 {
			t.Fatalf("non-positive RTT: %+v", f)
		}
	}
}

func TestCalibrationMatchesPaperMarginals(t *testing.T) {
	// Paper Section 3: "80% of all the flows experience less than
	// 100ms of delay variation. Only 2.8% (1%) experience excessive
	// queueing delays of more than 500ms (1000ms)."
	_, a := genAnalyzed(t, 300000, 3)
	if a.FracBelow100ms < 0.72 || a.FracBelow100ms > 0.88 {
		t.Fatalf("frac <100ms = %.3f, want ~0.80", a.FracBelow100ms)
	}
	if a.FracAbove500ms < 0.015 || a.FracAbove500ms > 0.045 {
		t.Fatalf("frac >500ms = %.4f, want ~0.028", a.FracAbove500ms)
	}
	if a.FracAbove1000ms < 0.004 || a.FracAbove1000ms > 0.02 {
		t.Fatalf("frac >1000ms = %.4f, want ~0.01", a.FracAbove1000ms)
	}
	if a.FracAbove1000ms >= a.FracAbove500ms {
		t.Fatal(">1s fraction not below >500ms fraction")
	}
}

func TestProximityAnalysis(t *testing.T) {
	// Paper: for flows with min RTT <= 100ms, 95% (99.9%) stay below
	// 100ms (1s) of queueing delay.
	_, a := genAnalyzed(t, 300000, 4)
	if a.NearFlows == 0 {
		t.Fatal("no near flows")
	}
	if a.NearFracBelow100 < 0.75 {
		t.Fatalf("near-flows <100ms = %.3f, want high (~0.95)", a.NearFracBelow100)
	}
	if a.NearFracBelow1000 < 0.97 {
		t.Fatalf("near-flows <1s = %.4f, want ~0.999", a.NearFracBelow1000)
	}
	if a.NearFracBelow1000 <= a.NearFracBelow100 {
		t.Fatal("proximity fractions inconsistent")
	}
}

func TestMaxDeviatesFromMin(t *testing.T) {
	// Figure 1a/1b: the max sRTT distribution must sit clearly to the
	// right of the min distribution.
	_, a := genAnalyzed(t, 100000, 5)
	if a.MaxPDF.Mode() <= a.MinPDF.Mode() {
		t.Fatalf("max mode %.1f <= min mode %.1f", a.MaxPDF.Mode(), a.MinPDF.Mode())
	}
	// And the 2D histogram shows off-diagonal mass.
	if f := a.MinMax.FracOnDiagonal(1); f > 0.9 {
		t.Fatalf("min~max for %.2f of flows: no queueing visible", f)
	}
}

func TestTechOrdering(t *testing.T) {
	// Figure 1c: ADSL users see more queueing than FTTH users.
	flows, _ := genAnalyzed(t, 400000, 6)
	var adslHigh, adslN, ftthHigh, ftthN int
	for _, f := range flows {
		if f.Samples < MinSamplesDefault {
			continue
		}
		switch f.Tech {
		case ADSL:
			adslN++
			if f.DelayVariation() > 200 {
				adslHigh++
			}
		case FTTH:
			ftthN++
			if f.DelayVariation() > 200 {
				ftthHigh++
			}
		}
	}
	if adslN == 0 || ftthN == 0 {
		t.Fatal("missing tech populations")
	}
	fADSL := float64(adslHigh) / float64(adslN)
	fFTTH := float64(ftthHigh) / float64(ftthN)
	if fADSL <= fFTTH {
		t.Fatalf("ADSL high-queueing frac %.4f <= FTTH %.4f", fADSL, fFTTH)
	}
}

func TestSampleFilter(t *testing.T) {
	flows := []FlowRecord{
		{Tech: ADSL, Samples: 5, MinSRTT: 10, AvgSRTT: 20, MaxSRTT: 30},
		{Tech: ADSL, Samples: 15, MinSRTT: 10, AvgSRTT: 20, MaxSRTT: 30},
	}
	a := Analyze(flows, 10)
	if a.FlowsAnalyzed != 1 {
		t.Fatalf("filter kept %d flows, want 1", a.FlowsAnalyzed)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Flows: 1000, Seed: 7})
	b := Generate(Config{Flows: 1000, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic generation")
		}
	}
}
