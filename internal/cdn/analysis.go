package cdn

import (
	"bufferqoe/internal/stats"
)

// Analysis is the output of the paper's Section 3 pipeline over a
// flow population.
type Analysis struct {
	// FlowsAnalyzed counts flows passing the >= MinSamples filter.
	FlowsAnalyzed int

	// MinPDF, AvgPDF, MaxPDF are the log-RTT densities of Figure 1a.
	MinPDF, AvgPDF, MaxPDF *stats.LogHist

	// MinMax is the Figure 1b 2D histogram (x: max RTT, y: min RTT).
	MinMax *stats.Hist2D

	// QDelay holds the Figure 1c estimated-queueing-delay densities,
	// one per access technology plus the complete data set.
	QDelay map[string]*stats.LogHist

	// Delay-variation marginals (the paper's headline numbers).
	FracBelow100ms  float64 // paper: ~80%
	FracAbove500ms  float64 // paper: ~2.8%
	FracAbove1000ms float64 // paper: ~1%

	// Proximity analysis: flows with min sRTT <= 100 ms.
	NearFlows         int
	NearFracBelow100  float64 // paper: ~95%
	NearFracBelow1000 float64 // paper: ~99.9%
}

// MinSamplesDefault is the paper's filter: flows with at least 10 RTT
// samples.
const MinSamplesDefault = 10

// Analyze runs the Section 3 pipeline.
func Analyze(flows []FlowRecord, minSamples int) *Analysis {
	if minSamples <= 0 {
		minSamples = MinSamplesDefault
	}
	a := &Analysis{
		MinPDF: stats.NewLogHist(1, 10000, 60),
		AvgPDF: stats.NewLogHist(1, 10000, 60),
		MaxPDF: stats.NewLogHist(1, 10000, 60),
		MinMax: stats.NewHist2D(1, 10000, 1, 10000, 40, 40),
		QDelay: map[string]*stats.LogHist{},
	}
	for _, t := range []string{"ADSL", "Cable", "FTTH", "all"} {
		a.QDelay[t] = stats.NewLogHist(1, 10000, 60)
	}
	var dv stats.Sample
	var nearDV stats.Sample
	for _, f := range flows {
		if f.Samples < minSamples {
			continue
		}
		a.FlowsAnalyzed++
		a.MinPDF.Add(f.MinSRTT)
		a.AvgPDF.Add(f.AvgSRTT)
		a.MaxPDF.Add(f.MaxSRTT)
		a.MinMax.Add(f.MaxSRTT, f.MinSRTT)
		d := f.DelayVariation()
		dv.Add(d)
		a.QDelay["all"].Add(d)
		if f.Tech != Other {
			a.QDelay[f.Tech.String()].Add(d)
		}
		if f.MinSRTT <= 100 {
			a.NearFlows++
			nearDV.Add(d)
		}
	}
	a.FracBelow100ms = dv.FracBelow(100)
	a.FracAbove500ms = dv.FracAbove(500)
	a.FracAbove1000ms = dv.FracAbove(1000)
	if nearDV.N() > 0 {
		a.NearFracBelow100 = nearDV.FracBelow(100)
		a.NearFracBelow1000 = nearDV.FracBelow(1000)
	}
	return a
}
