// Package cdn reproduces the paper's Section 3 "buffering in the
// wild" study. The original data — kernel-level smoothed-RTT
// statistics of 430 million TCP/HTTP connections at a major CDN — is
// proprietary, so this package generates a synthetic population with
// the published structure (ADSL/Cable/FTTH user mix, Karn-smoothed
// per-flow min/avg/max sRTT) calibrated to the paper's reported
// marginals (80% of flows see <100 ms delay variation; 2.8% exceed
// 500 ms; 1% exceed 1 s), and implements the paper's analysis
// pipeline: RTT PDFs (Figure 1a), the min-vs-max 2D histogram
// (Figure 1b), and the estimated queueing delay split by access
// technology (Figure 1c).
package cdn

import (
	"math"

	"bufferqoe/internal/sim"
)

// AccessTech is the subscriber's access technology, inferred in the
// paper from whois/DNS.
type AccessTech int

// Access technologies; Other covers flows the paper could not
// classify.
const (
	ADSL AccessTech = iota
	Cable
	FTTH
	Other
	numTech
)

func (t AccessTech) String() string {
	switch t {
	case ADSL:
		return "ADSL"
	case Cable:
		return "Cable"
	case FTTH:
		return "FTTH"
	default:
		return "Other"
	}
}

// FlowRecord mirrors one row of the CDN dataset: per-connection
// smoothed RTT extremes and the sample count.
type FlowRecord struct {
	Tech    AccessTech
	Samples int
	// MinSRTT, AvgSRTT, MaxSRTT are in milliseconds, as estimated by
	// the kernel's Karn/Jacobson smoothing.
	MinSRTT, AvgSRTT, MaxSRTT float64
}

// DelayVariation returns the paper's queueing-delay estimate: the
// sRTT range (max - min), an upper bound on queueing.
func (f FlowRecord) DelayVariation() float64 { return f.MaxSRTT - f.MinSRTT }

// Config parameterizes the generator.
type Config struct {
	Flows int
	Seed  uint64
}

// techParams hold the per-technology population parameters: the share
// of flows, base-RTT lognormal, and queueing severity scale. The
// shares match the paper (70% ADSL, 1.4% Cable, 0.02% FTTH); severity
// is calibrated to the published delay-variation marginals.
var techParams = []struct {
	tech      AccessTech
	share     float64
	baseMed   float64 // median base RTT, ms
	baseSigma float64
	qScale    float64 // queueing severity multiplier
}{
	{ADSL, 0.70, 45, 0.55, 1.15},
	{Cable, 0.014, 25, 0.5, 0.6},
	{FTTH, 0.0002, 8, 0.45, 0.25},
	{Other, 0.2858, 60, 0.8, 1.0},
}

// Generate synthesizes the flow population.
func Generate(cfg Config) []FlowRecord {
	rng := sim.NewRNG(cfg.Seed, "cdn")
	out := make([]FlowRecord, 0, cfg.Flows)
	for i := 0; i < cfg.Flows; i++ {
		out = append(out, genFlow(rng))
	}
	return out
}

func genFlow(rng *sim.RNG) FlowRecord {
	// Pick technology by share.
	u := rng.Float64()
	var tp = techParams[len(techParams)-1]
	acc := 0.0
	for _, p := range techParams {
		acc += p.share
		if u < acc {
			tp = p
			break
		}
	}
	base := rng.LogNormal(math.Log(tp.baseMed), tp.baseSigma)

	// Sample count: at least 2, heavy-ish tail; the paper filters to
	// flows with >= 10 samples for the queueing analysis.
	nSamples := 2 + int(rng.Exponential(25))
	if nSamples > 400 {
		nSamples = 400
	}

	// Queueing severity: 45% of flows see essentially no queueing
	// (idle access links, Section 3's "uplink capacity is seldom
	// utilized"); the rest draw an episode magnitude from a lognormal
	// whose tail is calibrated to the published marginals.
	severity := 0.0
	if rng.Bool(0.55) {
		severity = tp.qScale * rng.LogNormal(math.Log(95), 1.42)
	}

	// Walk the samples through Karn/Jacobson smoothing: srtt +=
	// (rtt - srtt) / 8. Queueing arrives in episodes of a few
	// consecutive samples (a busy period), so the smoothed estimate
	// approaches the raw episode magnitude.
	srtt := base
	minS, maxS, sum := srtt, srtt, srtt
	episodeLeft := 0
	for k := 1; k < nSamples; k++ {
		if episodeLeft == 0 && severity > 0 && rng.Bool(0.15) {
			episodeLeft = 2 + rng.IntN(8)
		}
		q := 0.0
		if episodeLeft > 0 {
			episodeLeft--
			q = severity * rng.Uniform(0.6, 1.0)
		}
		jitter := rng.Exponential(0.03 * base)
		rtt := base + jitter + q
		srtt += (rtt - srtt) / 8
		if srtt < minS {
			minS = srtt
		}
		if srtt > maxS {
			maxS = srtt
		}
		sum += srtt
	}
	return FlowRecord{
		Tech:    tp.tech,
		Samples: nSamples,
		MinSRTT: minS,
		AvgSRTT: sum / float64(nSamples),
		MaxSRTT: maxS,
	}
}
