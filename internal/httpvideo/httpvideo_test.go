package httpvideo

import (
	"testing"
	"time"

	"bufferqoe/internal/testbed"
)

func watch(t *testing.T, b *testbed.Backbone, cfg Config) Result {
	t.Helper()
	RegisterServer(b.MediaServerTCP, Port, cfg)
	var got *Result
	Watch(b.MediaClientTCP, b.MediaServer.Addr(Port), cfg, func(r Result) { got = &r })
	b.Eng.RunFor(cfg.withDefaults().Deadline + 10*time.Second)
	if got == nil {
		t.Fatal("session never finished")
	}
	return *got
}

func TestSmoothPlaybackOnIdleBackbone(t *testing.T) {
	// 4 Mbit/s media over an idle 155 Mbit/s path: starts fast, never
	// stalls, scores near the regression ceiling.
	b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: 1})
	r := watch(t, b, Config{MediaDuration: 8 * time.Second})
	if !r.Completed {
		t.Fatalf("idle-path session incomplete: %+v", r)
	}
	if r.Stalls != 0 {
		t.Fatalf("idle path stalled %d times", r.Stalls)
	}
	if r.StartupDelay > 2*time.Second {
		t.Fatalf("startup = %v", r.StartupDelay)
	}
	if r.MOS < 4.0 {
		t.Fatalf("MOS = %v, want >= 4", r.MOS)
	}
}

func TestCongestionCausesStalls(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short (race CI) mode")
	}
	// The paper's consistency claim: like RTP video, HTTP video QoE
	// collapses under sustained congestion — but via stalls, not
	// artifacts.
	b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: 2})
	b.StartWorkload(testbed.MustSpec(testbed.LookupBackboneScenario("short-overload")))
	b.Eng.RunFor(5 * time.Second)
	r := watch(t, b, Config{MediaDuration: 8 * time.Second})
	if r.Stalls == 0 && r.StartupDelay < 3*time.Second && r.Completed {
		t.Fatalf("overloaded path played cleanly: %+v", r)
	}
	clean := watchClean(t)
	if r.MOS >= clean {
		t.Fatalf("overload MOS %v >= clean MOS %v", r.MOS, clean)
	}
}

func watchClean(t *testing.T) float64 {
	b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: 3})
	return watch(t, b, Config{MediaDuration: 8 * time.Second}).MOS
}

func TestTCPVideoToleratesModerateLossUnlikeRTP(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short (race CI) mode")
	}
	// Key qualitative difference from Section 8: TCP retransmissions
	// hide moderate loss behind the playback buffer, so medium load
	// that would blemish RTP video leaves HTTP video clean.
	b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: 4})
	b.StartWorkload(testbed.MustSpec(testbed.LookupBackboneScenario("short-medium")))
	b.Eng.RunFor(5 * time.Second)
	r := watch(t, b, Config{MediaDuration: 8 * time.Second})
	if !r.Completed || r.Stalls > 0 {
		t.Fatalf("medium load broke HTTP playback: %+v", r)
	}
	if r.MOS < 4.0 {
		t.Fatalf("medium-load MOS = %v", r.MOS)
	}
}

func TestMokMOSLevels(t *testing.T) {
	// No impairment: ceiling.
	if got := MokMOS(500*time.Millisecond, 0, 0, time.Minute); got < 4.2 {
		t.Fatalf("clean MOS = %v", got)
	}
	// Frequent stalls crater the score.
	bad := MokMOS(8*time.Second, 10, 40*time.Second, time.Minute)
	if bad > 2.0 {
		t.Fatalf("stall-storm MOS = %v", bad)
	}
	// Monotone in stall count.
	a := MokMOS(time.Second, 1, 2*time.Second, time.Minute)
	c := MokMOS(time.Second, 20, 40*time.Second, time.Minute)
	if c >= a {
		t.Fatalf("MOS not monotone in stalls: %v vs %v", a, c)
	}
	// Bounded.
	if MokMOS(time.Hour, 100, time.Hour, time.Second) < 1 {
		t.Fatal("MOS below 1")
	}
}

func TestDeadlineAbortsSession(t *testing.T) {
	// No server: the deadline must still deliver a result.
	b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: 5})
	var got *Result
	cfg := Config{MediaDuration: 4 * time.Second, Deadline: 10 * time.Second}
	Watch(b.MediaClientTCP, b.MediaServer.Addr(Port), cfg, func(r Result) { got = &r })
	b.Eng.RunFor(30 * time.Second)
	if got == nil {
		t.Fatal("no result after deadline")
	}
	if got.Completed {
		t.Fatal("dead server session completed")
	}
	if got.MOS > 1.5 {
		t.Fatalf("dead session MOS = %v", got.MOS)
	}
}
