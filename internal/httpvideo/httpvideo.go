// Package httpvideo implements the paper's Section 10 future-work
// item: HTTP (TCP) progressive video streaming, whose "initial work
// ... is consistent with our results". A client downloads a
// fixed-bitrate video over a single TCP connection into a playback
// buffer; playback starts after an initial buffering target, stalls
// when the buffer drains, and resumes after rebuffering. QoE follows
// the waiting-time regression of Mok, Chan & Chang ("Measuring the
// Quality of Experience of HTTP video streaming", IM 2011):
//
//	MOS = 4.23 - 0.0672*Lti - 0.742*Lfr - 0.106*Ltr
//
// with discretized levels for initial delay (Lti), stall frequency
// (Lfr) and mean stall duration (Ltr).
package httpvideo

import (
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/tcp"
)

// Port is the streaming server's listening port.
const Port = 8080

// Config describes the stream and player.
type Config struct {
	// Bitrate is the media bitrate in bits/s (e.g. 4e6 for the
	// paper's SD profile).
	Bitrate float64
	// MediaDuration is the clip length.
	MediaDuration time.Duration
	// StartupTarget is how much media must be buffered before
	// playback starts (default 2s).
	StartupTarget time.Duration
	// RebufferTarget is the refill level after a stall (default 2s).
	RebufferTarget time.Duration
	// Deadline aborts the session (default: 10x media duration).
	Deadline time.Duration
}

func (c Config) withDefaults() Config {
	if c.Bitrate == 0 {
		c.Bitrate = 4e6
	}
	if c.MediaDuration == 0 {
		c.MediaDuration = 16 * time.Second
	}
	if c.StartupTarget == 0 {
		c.StartupTarget = 2 * time.Second
	}
	if c.RebufferTarget == 0 {
		c.RebufferTarget = 2 * time.Second
	}
	if c.Deadline == 0 {
		c.Deadline = 10 * c.MediaDuration
	}
	return c
}

// mediaBytes returns the clip size in bytes.
func (c Config) mediaBytes() int64 {
	return int64(c.Bitrate * c.MediaDuration.Seconds() / 8)
}

// Result summarizes one viewing session.
type Result struct {
	// StartupDelay is the time from request to first playback.
	StartupDelay time.Duration
	// Stalls counts rebuffering events after playback started.
	Stalls int
	// StallTime is the total time spent rebuffering.
	StallTime time.Duration
	// Played is how much media played out before the deadline.
	Played time.Duration
	// Completed reports whether the whole clip played.
	Completed bool
	// MOS is the Mok et al. score.
	MOS float64
}

// RegisterServer installs the progressive-download server: on a
// 200-byte request it streams the whole clip and closes.
func RegisterServer(st *tcp.Stack, port uint16, cfg Config) {
	cfg = cfg.withDefaults()
	st.Listen(port, func(c *tcp.Conn) {
		var got int64
		c.OnReadable = func(n int64) {
			got += n
			if got >= 200 {
				got = -1 << 40 // serve once
				c.Send(cfg.mediaBytes())
				c.CloseWrite()
			}
		}
		c.OnPeerClose = func(*tcp.Conn) { c.CloseWrite() }
	})
}

// player simulates playout with a 100 ms tick.
const tick = 100 * time.Millisecond

// Watch streams the clip from server and reports the session result.
func Watch(st *tcp.Stack, server netem.Addr, cfg Config, onDone func(Result)) {
	cfg = cfg.withDefaults()
	eng := st.Node().Engine()
	start := eng.Now()

	conn := st.Dial(server)
	var rxBytes int64
	conn.OnEstablished = func() { conn.Send(200) }
	conn.OnReadable = func(n int64) { rxBytes += n }
	conn.OnPeerClose = func(*tcp.Conn) { conn.CloseWrite() }

	var (
		playing      bool
		started      bool
		startupDelay time.Duration
		played       time.Duration
		stalls       int
		stallTime    time.Duration
		done         bool
	)
	finish := func() {
		if done {
			return
		}
		done = true
		if !started {
			// Playback never began: the whole session was waiting.
			startupDelay = eng.Now().Sub(start)
		}
		completed := played >= cfg.MediaDuration
		res := Result{
			StartupDelay: startupDelay,
			Stalls:       stalls,
			StallTime:    stallTime,
			Played:       played,
			Completed:    completed,
		}
		res.MOS = MokMOS(startupDelay, stalls, stallTime, played)
		if played == 0 && !completed {
			res.MOS = 1 // nothing ever played: worst case
		}
		conn.Abort(nil)
		onDone(res)
	}
	guard := eng.Schedule(cfg.Deadline, finish)

	buffered := func() time.Duration {
		media := time.Duration(float64(rxBytes) * 8 / cfg.Bitrate * float64(time.Second))
		return media - played
	}
	var step func()
	step = func() {
		if done {
			return
		}
		switch {
		case !started:
			if buffered() >= cfg.StartupTarget || rxBytes >= cfg.mediaBytes() {
				started = true
				playing = true
				startupDelay = eng.Now().Sub(start)
			}
		case playing:
			if buffered() <= 0 && played < cfg.MediaDuration {
				playing = false
				stalls++
			} else {
				played += tick
				if played >= cfg.MediaDuration {
					guard.Stop()
					finish()
					return
				}
			}
		default: // rebuffering
			stallTime += tick
			if buffered() >= cfg.RebufferTarget || rxBytes >= cfg.mediaBytes() {
				playing = true
			}
		}
		eng.Schedule(tick, step)
	}
	eng.Schedule(tick, step)
}

// MokMOS computes the IM 2011 regression from the session's waiting
// metrics. played bounds the stall-frequency normalization.
func MokMOS(startup time.Duration, stalls int, stallTime, played time.Duration) float64 {
	lti := level(startup.Seconds(), 1, 5, 10)
	freq := 0.0
	if played > 0 {
		freq = float64(stalls) / played.Minutes()
	} else if stalls > 0 {
		freq = 99
	}
	lfr := level(freq, 0.02, 0.15, 1)
	mean := 0.0
	if stalls > 0 {
		mean = stallTime.Seconds() / float64(stalls)
	}
	ltr := level(mean, 0.1, 5, 10)
	mos := 4.23 - 0.0672*lti - 0.742*lfr - 0.106*ltr
	if mos < 1 {
		mos = 1
	}
	if mos > 5 {
		mos = 5
	}
	return mos
}

// level discretizes a waiting metric into the regression's 0-3 scale.
func level(v, t1, t2, t3 float64) float64 {
	switch {
	case v <= t1:
		return 0
	case v <= t2:
		return 1
	case v <= t3:
		return 2
	default:
		return 3
	}
}
