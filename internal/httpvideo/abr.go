package httpvideo

import (
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
	"bufferqoe/internal/tcp"
)

// ABRPort is the segment server's listening port.
const ABRPort = 8081

// DefaultLadder is the bitrate ladder in bits/s, bracketing the
// paper's SD (4 Mbit/s) and HD (8 Mbit/s) profiles.
var DefaultLadder = []float64{1e6, 2.5e6, 4e6, 8e6}

// ABRAlgorithm selects the client's rate-decision logic.
type ABRAlgorithm int

// ABR algorithms.
const (
	// ABRRate picks the highest ladder rung below a safety fraction
	// of the EWMA throughput estimate (classic throughput-based DASH).
	ABRRate ABRAlgorithm = iota
	// ABRBuffer maps the playback buffer level linearly onto the
	// ladder between a reservoir and a cushion (BBA-style, Huang et
	// al. SIGCOMM 2014).
	ABRBuffer
)

func (a ABRAlgorithm) String() string {
	if a == ABRBuffer {
		return "buffer"
	}
	return "rate"
}

// ABRConfig describes a segmented adaptive stream and its player.
type ABRConfig struct {
	// Ladder is the available bitrate set, ascending (default
	// DefaultLadder).
	Ladder []float64
	// SegmentDuration is the media time per segment (default 2s).
	SegmentDuration time.Duration
	// MediaDuration is the clip length (default 16s).
	MediaDuration time.Duration
	// StartupTarget / RebufferTarget as for progressive download
	// (defaults 2s each).
	StartupTarget, RebufferTarget time.Duration
	// MaxBuffer stops fetching ahead when this much media is queued
	// (default 8s).
	MaxBuffer time.Duration
	// Algorithm selects rate- or buffer-based adaptation.
	Algorithm ABRAlgorithm
	// SafetyFactor discounts the throughput estimate for ABRRate
	// (default 0.8).
	SafetyFactor float64
	// Deadline aborts the session (default 10x media duration).
	Deadline time.Duration
}

func (c ABRConfig) withDefaults() ABRConfig {
	if len(c.Ladder) == 0 {
		c.Ladder = DefaultLadder
	}
	if c.SegmentDuration == 0 {
		c.SegmentDuration = 2 * time.Second
	}
	if c.MediaDuration == 0 {
		c.MediaDuration = 16 * time.Second
	}
	if c.StartupTarget == 0 {
		c.StartupTarget = 2 * time.Second
	}
	if c.RebufferTarget == 0 {
		c.RebufferTarget = 2 * time.Second
	}
	if c.MaxBuffer == 0 {
		c.MaxBuffer = 8 * time.Second
	}
	if c.SafetyFactor == 0 {
		c.SafetyFactor = 0.8
	}
	if c.Deadline == 0 {
		c.Deadline = 10 * c.MediaDuration
	}
	return c
}

// segments returns the number of segments in the clip.
func (c ABRConfig) segments() int {
	n := int((c.MediaDuration + c.SegmentDuration - 1) / c.SegmentDuration)
	if n < 1 {
		n = 1
	}
	return n
}

// segmentBytes is the size of one segment at ladder rung idx.
func (c ABRConfig) segmentBytes(idx int) int64 {
	return int64(c.Ladder[idx] * c.SegmentDuration.Seconds() / 8)
}

// abrRequestBase encodes "serve rung idx" as a request of
// abrRequestBase+idx bytes — the model's stand-in for a segment URL.
const abrRequestBase = 200

// RegisterABRServer installs the segment server: each connection
// carries one request whose length selects the ladder rung; the
// server responds with that segment and closes.
func RegisterABRServer(st *tcp.Stack, port uint16, cfg ABRConfig) {
	cfg = cfg.withDefaults()
	st.Listen(port, func(c *tcp.Conn) {
		var got int64
		c.OnReadable = func(n int64) {
			got += n
			if got >= abrRequestBase {
				idx := int(got - abrRequestBase)
				if idx >= len(cfg.Ladder) {
					idx = len(cfg.Ladder) - 1
				}
				got = -1 << 40 // serve once
				c.Send(cfg.segmentBytes(idx))
				c.CloseWrite()
			}
		}
		c.OnPeerClose = func(*tcp.Conn) { c.CloseWrite() }
	})
}

// ABRResult extends the progressive-download result with adaptation
// metrics.
type ABRResult struct {
	Result
	// MeanBitrate is the media-time-weighted average rung in bits/s.
	MeanBitrate float64
	// Switches counts rung changes between consecutive segments.
	Switches int
	// Segments is how many segments finished downloading.
	Segments int
}

// abrSession is one viewing session's state.
type abrSession struct {
	st     *tcp.Stack
	server netem.Addr
	cfg    ABRConfig
	onDone func(ABRResult)

	start        sim.Time
	rates        []float64 // chosen rate per downloaded segment
	estimate     float64   // EWMA throughput, bits/s
	nextSegment  int
	downloading  bool
	bufferedMed  time.Duration // media downloaded
	played       time.Duration
	playing      bool
	started      bool
	startupDelay time.Duration
	stalls       int
	stallTime    time.Duration
	done         bool
	guard        *sim.Timer
}

// WatchABR streams the clip with the configured adaptation and
// reports the session result.
func WatchABR(st *tcp.Stack, server netem.Addr, cfg ABRConfig, onDone func(ABRResult)) {
	cfg = cfg.withDefaults()
	s := &abrSession{
		st: st, server: server, cfg: cfg, onDone: onDone,
		start: st.Node().Engine().Now(),
	}
	eng := st.Node().Engine()
	s.guard = eng.Schedule(cfg.Deadline, s.finish)
	s.maybeFetch()
	eng.Schedule(tick, s.step)
}

// pickRate implements the two adaptation algorithms.
func (s *abrSession) pickRate() int {
	ladder := s.cfg.Ladder
	switch s.cfg.Algorithm {
	case ABRBuffer:
		// BBA: reservoir at the rebuffer target, cushion at MaxBuffer.
		reservoir := s.cfg.RebufferTarget
		cushion := s.cfg.MaxBuffer
		buf := s.buffered()
		if buf <= reservoir {
			return 0
		}
		if buf >= cushion {
			return len(ladder) - 1
		}
		frac := float64(buf-reservoir) / float64(cushion-reservoir)
		idx := int(frac * float64(len(ladder)-1))
		if idx >= len(ladder) {
			idx = len(ladder) - 1
		}
		return idx
	default: // ABRRate
		if s.estimate == 0 {
			return 0 // conservative first segment
		}
		budget := s.cfg.SafetyFactor * s.estimate
		idx := 0
		for i, r := range ladder {
			if r <= budget {
				idx = i
			}
		}
		return idx
	}
}

func (s *abrSession) buffered() time.Duration { return s.bufferedMed - s.played }

// maybeFetch starts the next segment download if the player wants
// more media and nothing is in flight.
func (s *abrSession) maybeFetch() {
	if s.done || s.downloading || s.nextSegment >= s.cfg.segments() {
		return
	}
	if s.buffered() >= s.cfg.MaxBuffer {
		return // pause fetching; step() will retry as playback drains
	}
	s.downloading = true
	idx := s.pickRate()
	eng := s.st.Node().Engine()
	begin := eng.Now()
	want := s.cfg.segmentBytes(idx)

	conn := s.st.Dial(s.server)
	var rx int64
	var firstByte sim.Time
	conn.OnEstablished = func() {
		conn.Send(int64(abrRequestBase + idx))
	}
	conn.OnReadable = func(n int64) {
		if rx == 0 {
			firstByte = eng.Now()
		}
		rx += n
	}
	conn.OnPeerClose = func(*tcp.Conn) {
		conn.CloseWrite()
		if s.done {
			return
		}
		s.downloading = false
		if rx < want {
			return // truncated: deadline will end the session
		}
		// Throughput sample from first payload byte, as real players
		// measure it — the handshake is not part of the link estimate.
		from := firstByte
		if from == 0 {
			from = begin
		}
		dur := eng.Now().Sub(from).Seconds()
		if dur > 0 {
			sample := float64(want*8) / dur
			if s.estimate == 0 {
				s.estimate = sample
			} else {
				s.estimate = 0.8*s.estimate + 0.2*sample
			}
		}
		s.rates = append(s.rates, s.cfg.Ladder[idx])
		s.nextSegment++
		s.bufferedMed += s.cfg.SegmentDuration
		s.maybeFetch()
	}
}

// step is the 100 ms playout tick (same loop as progressive Watch).
func (s *abrSession) step() {
	if s.done {
		return
	}
	eng := s.st.Node().Engine()
	switch {
	case !s.started:
		if s.buffered() >= s.cfg.StartupTarget || s.nextSegment >= s.cfg.segments() {
			s.started = true
			s.playing = true
			s.startupDelay = eng.Now().Sub(s.start)
		}
	case s.playing:
		if s.buffered() <= 0 && s.played < s.cfg.MediaDuration {
			s.playing = false
			s.stalls++
		} else {
			s.played += tick
			if s.played >= s.cfg.MediaDuration {
				s.guard.Stop()
				s.finish()
				return
			}
		}
	default: // rebuffering
		s.stallTime += tick
		if s.buffered() >= s.cfg.RebufferTarget || s.nextSegment >= s.cfg.segments() {
			s.playing = true
		}
	}
	s.maybeFetch()
	eng.Schedule(tick, s.step)
}

func (s *abrSession) finish() {
	if s.done {
		return
	}
	s.done = true
	eng := s.st.Node().Engine()
	if !s.started {
		s.startupDelay = eng.Now().Sub(s.start)
	}
	res := ABRResult{
		Result: Result{
			StartupDelay: s.startupDelay,
			Stalls:       s.stalls,
			StallTime:    s.stallTime,
			Played:       s.played,
			Completed:    s.played >= s.cfg.MediaDuration,
		},
		Switches: switchCount(s.rates),
		Segments: s.nextSegment,
	}
	var mediaWeighted float64
	for _, r := range s.rates {
		mediaWeighted += r
	}
	if len(s.rates) > 0 {
		res.MeanBitrate = mediaWeighted / float64(len(s.rates))
	}
	res.MOS = ABRMOS(res, s.cfg)
	if s.played == 0 && !res.Completed {
		res.MOS = 1
	}
	s.onDone(res)
}

func switchCount(rates []float64) int {
	n := 0
	for i := 1; i < len(rates); i++ {
		if rates[i] != rates[i-1] {
			n++
		}
	}
	return n
}

// ABRMOS extends the Mok et al. stall regression with the bitrate and
// switching terms of the standard ABR QoE utility (Yin et al.,
// SIGCOMM 2015): the stall score is discounted by how far the
// delivered bitrate sits below the top rung and by rate-switch churn.
func ABRMOS(r ABRResult, cfg ABRConfig) float64 {
	cfg = cfg.withDefaults()
	mos := MokMOS(r.StartupDelay, r.Stalls, r.StallTime, r.Played)
	top := cfg.Ladder[len(cfg.Ladder)-1]
	if top > 0 && r.MeanBitrate > 0 {
		mos -= 1.5 * (1 - r.MeanBitrate/top)
	}
	if r.Played > 0 {
		perMin := float64(r.Switches) / r.Played.Minutes()
		mos -= 0.05 * perMin
	}
	if mos < 1 {
		mos = 1
	}
	if mos > 5 {
		mos = 5
	}
	return mos
}
