package httpvideo

import (
	"testing"
	"time"

	"bufferqoe/internal/testbed"
)

func abrWatch(t *testing.T, b *testbed.Backbone, cfg ABRConfig) ABRResult {
	t.Helper()
	RegisterABRServer(b.MediaServerTCP, ABRPort, cfg)
	var res *ABRResult
	WatchABR(b.MediaClientTCP, b.MediaServer.Addr(ABRPort), cfg, func(r ABRResult) { res = &r })
	b.Eng.RunFor(cfg.withDefaults().Deadline + time.Minute)
	if res == nil {
		t.Fatal("ABR session never finished")
	}
	return *res
}

func TestABRCleanNetworkTopRate(t *testing.T) {
	// An idle OC3 carries even the top 8 Mbit/s rung easily: playback
	// must complete with no stalls and converge to the top rate.
	b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: 1})
	cfg := ABRConfig{MediaDuration: 16 * time.Second}
	r := abrWatch(t, b, cfg)
	if !r.Completed || r.Stalls != 0 {
		t.Fatalf("clean network: completed=%v stalls=%d", r.Completed, r.Stalls)
	}
	// The first segment is deliberately conservative and each request
	// restarts slow start, so the mean sits below the top rung even
	// on an idle OC3 — but the ramp must clearly leave the bottom.
	if r.MeanBitrate < 3e6 {
		t.Fatalf("mean bitrate %.1f Mbit/s, want > 3", r.MeanBitrate/1e6)
	}
	// A 16 s clip never fully amortizes the conservative start against
	// the 8 Mbit/s top rung, so the bitrate term keeps the score just
	// below "fair"; the stall terms must contribute nothing.
	if r.MOS < 2.8 {
		t.Fatalf("clean-network ABR MOS %.1f", r.MOS)
	}
}

func TestABRDownshiftsUnderCongestion(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short (race CI) mode")
	}
	// Under a saturating workload the rate-based client must pick
	// lower rungs than on the idle network.
	clean := func() float64 {
		b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: 2})
		return abrWatch(t, b, ABRConfig{MediaDuration: 16 * time.Second}).MeanBitrate
	}()
	congested := func() float64 {
		b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: 2})
		b.StartWorkload(testbed.MustSpec(testbed.LookupBackboneScenario("long")))
		b.Eng.RunFor(3 * time.Second)
		return abrWatch(t, b, ABRConfig{MediaDuration: 16 * time.Second}).MeanBitrate
	}()
	if congested >= clean {
		t.Fatalf("no downshift: congested %.1f >= clean %.1f Mbit/s", congested/1e6, clean/1e6)
	}
}

// runBoth plays the clip with ABR and with fixed-rate progressive
// download under the named backbone workload.
func runBoth(t *testing.T, scenario string) (abr ABRResult, prog Result) {
	t.Helper()
	b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: 3})
	b.StartWorkload(testbed.MustSpec(testbed.LookupBackboneScenario(scenario)))
	b.Eng.RunFor(3 * time.Second)
	abr = abrWatch(t, b, ABRConfig{MediaDuration: 16 * time.Second})

	b2 := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: 3})
	b2.StartWorkload(testbed.MustSpec(testbed.LookupBackboneScenario(scenario)))
	b2.Eng.RunFor(3 * time.Second)
	cfg := Config{Bitrate: 4e6, MediaDuration: 16 * time.Second}
	RegisterServer(b2.MediaServerTCP, Port, cfg)
	var res *Result
	Watch(b2.MediaClientTCP, b2.MediaServer.Addr(Port), cfg, func(r Result) { res = &r })
	b2.Eng.RunFor(cfg.withDefaults().Deadline + time.Minute)
	if res == nil {
		t.Fatal("progressive session never finished")
	}
	return abr, *res
}

func TestABRRescuesWhereAdaptationHasRoom(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short (race CI) mode")
	}
	// The rescue claim: at short-high the link cannot sustain the
	// fixed 4 Mbit/s stream, but a lower rung fits — adaptation
	// trades bitrate for continuity and wins on MOS.
	abr, prog := runBoth(t, "short-high")
	if abr.StallTime >= prog.StallTime {
		t.Fatalf("ABR stall time %v >= progressive %v", abr.StallTime, prog.StallTime)
	}
	if abr.MOS <= prog.MOS {
		t.Fatalf("ABR MOS %.2f <= progressive %.2f at short-high", abr.MOS, prog.MOS)
	}
	if abr.MeanBitrate >= 4e6 {
		t.Fatalf("ABR did not downshift: %.1f Mbit/s", abr.MeanBitrate/1e6)
	}
}

func TestABRCannotBeatOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short (race CI) mode")
	}
	// The paper's conclusion survives adaptation: at sustained
	// overload the per-flow share is below even the bottom rung, and
	// both players land in the bad band — though ABR still plays more
	// media within the deadline (it needs 4x fewer bytes).
	abr, prog := runBoth(t, "long")
	if abr.MOS > 2 || prog.MOS > 2 {
		t.Fatalf("overload rated acceptable: abr %.2f prog %.2f", abr.MOS, prog.MOS)
	}
	if abr.Played < prog.Played {
		t.Fatalf("ABR played %v < progressive %v under overload", abr.Played, prog.Played)
	}
}

func TestABRBufferAlgorithmCompletes(t *testing.T) {
	b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: 4})
	cfg := ABRConfig{MediaDuration: 16 * time.Second, Algorithm: ABRBuffer}
	r := abrWatch(t, b, cfg)
	if !r.Completed {
		t.Fatalf("buffer-based ABR did not complete: %+v", r.Result)
	}
}

func TestABRSegmentAccounting(t *testing.T) {
	b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: 5})
	cfg := ABRConfig{MediaDuration: 16 * time.Second, SegmentDuration: 2 * time.Second}
	r := abrWatch(t, b, cfg)
	if r.Segments != 8 {
		t.Fatalf("downloaded %d segments, want 8", r.Segments)
	}
}

func TestABRMOSPenalizesLowBitrate(t *testing.T) {
	cfg := ABRConfig{}.withDefaults()
	base := ABRResult{
		Result:      Result{Played: 16 * time.Second, Completed: true},
		MeanBitrate: cfg.Ladder[len(cfg.Ladder)-1],
	}
	low := base
	low.MeanBitrate = cfg.Ladder[0]
	if ABRMOS(low, cfg) >= ABRMOS(base, cfg) {
		t.Fatal("low bitrate not penalized")
	}
}

func TestABRMOSPenalizesChurn(t *testing.T) {
	cfg := ABRConfig{}.withDefaults()
	calm := ABRResult{
		Result:      Result{Played: 16 * time.Second, Completed: true},
		MeanBitrate: 4e6,
	}
	churny := calm
	churny.Switches = 8
	if ABRMOS(churny, cfg) >= ABRMOS(calm, cfg) {
		t.Fatal("switch churn not penalized")
	}
}

func TestABRAlgorithmStrings(t *testing.T) {
	if ABRRate.String() != "rate" || ABRBuffer.String() != "buffer" {
		t.Fatal("algorithm names wrong")
	}
}

func TestSwitchCount(t *testing.T) {
	if n := switchCount([]float64{1, 1, 2, 2, 1}); n != 2 {
		t.Fatalf("switchCount = %d, want 2", n)
	}
	if n := switchCount(nil); n != 0 {
		t.Fatalf("switchCount(nil) = %d", n)
	}
}
