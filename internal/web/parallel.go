package web

import (
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/tcp"
)

// BrowserPort is the addressed-object server's listening port (it can
// coexist with the sequential server of RegisterServer).
const BrowserPort = 81

// RegisterBrowserServer installs a server for browser-style parallel
// fetching: each connection carries exactly one request whose length
// (RequestSize + idx) names the object to serve — the model's
// stand-in for a URL path. The server responds with that object and
// closes.
func RegisterBrowserServer(st *tcp.Stack, port uint16) {
	st.Listen(port, func(c *tcp.Conn) {
		var got int64
		c.OnReadable = func(n int64) {
			got += n
			if got >= RequestSize {
				idx := int(got - RequestSize)
				if idx < 0 || idx >= len(ObjectSizes) {
					idx = 0
				}
				got = -1 << 40 // serve once
				c.Send(ObjectSizes[idx])
				c.CloseWrite()
			}
		}
		c.OnPeerClose = func(*tcp.Conn) { c.CloseWrite() }
	})
}

// FetchParallel retrieves the page the way a contemporary browser
// does rather than the paper's sequential wget (§9.1): the HTML
// (object 0) is fetched first — it names the sub-resources — then the
// remaining objects are requested over up to maxConns concurrent
// connections to a RegisterBrowserServer port. PLT is the time until
// the last object completes.
//
// The paper chose sequential fetching to keep the 14-RTT structure
// analyzable; the ext-parweb question is whether browser parallelism
// changes the buffer-sizing picture (expected: it compresses the RTT
// component, so RTT-dominated cells improve, while loss- and
// bandwidth-dominated cells do not).
func FetchParallel(st *tcp.Stack, server netem.Addr, maxConns int, deadline time.Duration, onDone func(Result)) {
	if deadline <= 0 {
		deadline = 30 * time.Second
	}
	if maxConns < 1 {
		maxConns = 1
	}
	eng := st.Node().Engine()
	start := eng.Now()

	done := false
	var retrans uint64
	var srtt time.Duration
	var conns []*tcp.Conn
	finish := func(completed bool) {
		if done {
			return
		}
		done = true
		onDone(Result{
			PLT:             eng.Now().Sub(start),
			Completed:       completed,
			Retransmissions: retrans,
			SRTT:            srtt,
		})
	}
	guard := eng.Schedule(deadline, func() {
		finish(false)
		for _, c := range conns {
			c.Abort(nil)
		}
	})

	remaining := len(ObjectSizes)
	var queue []int
	active := 0
	var launch func(idx int)
	onObjectDone := func(c *tcp.Conn) {
		retrans += c.Stat.Retransmissions
		if c.SRTT() > srtt {
			srtt = c.SRTT()
		}
		remaining--
		active--
		if remaining == 0 {
			guard.Stop()
			finish(true)
			return
		}
		if len(queue) > 0 && active < maxConns {
			next := queue[0]
			queue = queue[1:]
			launch(next)
		}
	}
	launch = func(idx int) {
		active++
		conn := st.Dial(server)
		conns = append(conns, conn)
		size := ObjectSizes[idx]
		var got int64
		fin := false
		conn.OnEstablished = func() { conn.Send(int64(RequestSize + idx)) }
		conn.OnReadable = func(n int64) {
			got += n
			if got >= size && !fin {
				fin = true
				conn.CloseWrite()
				if idx == 0 && !done {
					// HTML parsed: dispatch the sub-resources.
					for i := 1; i < len(ObjectSizes); i++ {
						if active < maxConns {
							launch(i)
						} else {
							queue = append(queue, i)
						}
					}
				}
				onObjectDone(conn)
			}
		}
		conn.OnPeerClose = func(*tcp.Conn) { conn.CloseWrite() }
	}
	launch(0)
}
