package web

import (
	"testing"
	"time"

	"bufferqoe/internal/qoe"
	"bufferqoe/internal/testbed"
)

func TestPageBytes(t *testing.T) {
	if PageBytes() != 80800 {
		t.Fatalf("page bytes = %d, want 80800 (15+5.8+30+30 KB)", PageBytes())
	}
}

func fetchOnce(t *testing.T, a *testbed.Access, deadline time.Duration) Result {
	t.Helper()
	RegisterServer(a.MediaServerTCP, Port)
	var res *Result
	Fetch(a.MediaClientTCP, a.MediaServer.Addr(Port), deadline, func(r Result) { res = &r })
	a.Eng.RunFor(deadline + 10*time.Second)
	if res == nil {
		t.Fatal("fetch never finished")
	}
	return *res
}

func TestBaselinePLT(t *testing.T) {
	// Paper Section 9.2: the fastest access-testbed PLT is ~0.56 s
	// (14 RTTs at ~40-50 ms), mapping to (nearly) excellent QoE.
	a := testbed.NewAccess(testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 1})
	r := fetchOnce(t, a, 30*time.Second)
	if !r.Completed {
		t.Fatal("baseline fetch did not complete")
	}
	if r.PLT < 300*time.Millisecond || r.PLT > 1200*time.Millisecond {
		t.Fatalf("baseline PLT = %v, want ~0.5-1s", r.PLT)
	}
	mos := qoe.AccessWebModel().MOS(r.PLT)
	if mos < 3.5 {
		t.Fatalf("baseline MOS = %v, want good", mos)
	}
	if r.Retransmissions != 0 {
		t.Fatalf("baseline retransmissions = %d", r.Retransmissions)
	}
}

func TestBackboneBaselinePLT(t *testing.T) {
	b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: 2})
	RegisterServer(b.MediaServerTCP, Port)
	var res *Result
	Fetch(b.MediaClientTCP, b.MediaServer.Addr(Port), 30*time.Second, func(r Result) { res = &r })
	b.Eng.RunFor(40 * time.Second)
	if res == nil || !res.Completed {
		t.Fatal("fetch failed")
	}
	// The paper measures ~0.85 s at 14 RTTs; our IW-3 stack needs
	// fewer round trips, landing near 0.5 s at the same 60 ms RTT.
	if res.PLT < 350*time.Millisecond || res.PLT > 1200*time.Millisecond {
		t.Fatalf("backbone baseline PLT = %v, want ~0.5s", res.PLT)
	}
}

func TestUplinkCongestionDestroysPLT(t *testing.T) {
	// Figure 10b: upload congestion with bloated buffers pushes PLTs
	// to many seconds (bad QoE).
	a := testbed.NewAccess(testbed.Config{BufferUp: 256, BufferDown: 64, Seed: 3})
	a.StartWorkload(testbed.MustSpec(testbed.LookupAccessScenario("long-many", testbed.DirUp)))
	a.Eng.RunFor(8 * time.Second)
	r := fetchOnce(t, a, 60*time.Second)
	if r.PLT < 3*time.Second {
		t.Fatalf("congested-uplink PLT = %v, want >= 3s", r.PLT)
	}
	mos := qoe.AccessWebModel().MOS(r.PLT)
	if mos > 1.8 {
		t.Fatalf("congested-uplink MOS = %v, want bad", mos)
	}
}

func TestSmallUplinkBufferImprovesPLTUnderLongFew(t *testing.T) {
	// Figure 10b long-few row: small uplink buffers cut the median
	// PLT dramatically (20.5 s at 256 pkts vs 1.3 s at 8 pkts in the
	// paper).
	plt := map[int]time.Duration{}
	for _, buf := range []int{8, 256} {
		a := testbed.NewAccess(testbed.Config{BufferUp: buf, BufferDown: 64, Seed: 4})
		a.StartWorkload(testbed.MustSpec(testbed.LookupAccessScenario("long-few", testbed.DirUp)))
		a.Eng.RunFor(8 * time.Second)
		r := fetchOnce(t, a, 60*time.Second)
		plt[buf] = r.PLT
	}
	if plt[8] >= plt[256] {
		t.Fatalf("PLT(8)=%v >= PLT(256)=%v under long-few upload", plt[8], plt[256])
	}
}

func TestDeadlineAbort(t *testing.T) {
	// A fetch against a server that cannot answer (no listener) must
	// fire the deadline path exactly once.
	a := testbed.NewAccess(testbed.Config{BufferUp: 8, BufferDown: 8, Seed: 5})
	count := 0
	var last Result
	Fetch(a.MediaClientTCP, a.MediaServer.Addr(Port), 5*time.Second, func(r Result) {
		count++
		last = r
	})
	a.Eng.RunFor(2 * time.Minute)
	if count != 1 {
		t.Fatalf("onDone fired %d times", count)
	}
	if last.Completed {
		t.Fatal("fetch against dead server completed")
	}
}

func TestSequentialObjectsSingleConnection(t *testing.T) {
	// The whole page must arrive over one connection: the server
	// stack should see exactly one connection live during the fetch.
	a := testbed.NewAccess(testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 6})
	RegisterServer(a.MediaServerTCP, Port)
	maxConns := 0
	var tick func()
	tick = func() {
		if c := a.MediaServerTCP.ConnCount(); c > maxConns {
			maxConns = c
		}
		a.Eng.Schedule(50*time.Millisecond, tick)
	}
	a.Eng.Schedule(0, tick)
	done := false
	Fetch(a.MediaClientTCP, a.MediaServer.Addr(Port), 30*time.Second, func(r Result) { done = r.Completed })
	a.Eng.RunFor(10 * time.Second)
	if !done {
		t.Fatal("fetch incomplete")
	}
	if maxConns != 1 {
		t.Fatalf("server saw %d concurrent connections, want 1", maxConns)
	}
}

func TestRepeatedFetchesIndependent(t *testing.T) {
	a := testbed.NewAccess(testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 7})
	RegisterServer(a.MediaServerTCP, Port)
	var plts []time.Duration
	var next func()
	next = func() {
		Fetch(a.MediaClientTCP, a.MediaServer.Addr(Port), 30*time.Second, func(r Result) {
			plts = append(plts, r.PLT)
			if len(plts) < 5 {
				a.Eng.Schedule(time.Second, next)
			}
		})
	}
	a.Eng.Schedule(0, next)
	a.Eng.RunFor(60 * time.Second)
	if len(plts) != 5 {
		t.Fatalf("completed %d fetches", len(plts))
	}
	// All uncongested fetches should be fast and similar.
	for _, p := range plts {
		if p > 2*time.Second {
			t.Fatalf("idle-network PLT = %v", p)
		}
	}
}
