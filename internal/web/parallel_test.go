package web

import (
	"testing"
	"time"

	"bufferqoe/internal/testbed"
)

func fetchParallelOnce(t *testing.T, a *testbed.Access, conns int) Result {
	t.Helper()
	RegisterBrowserServer(a.MediaServerTCP, BrowserPort)
	var res *Result
	FetchParallel(a.MediaClientTCP, a.MediaServer.Addr(BrowserPort), conns,
		60*time.Second, func(r Result) { res = &r })
	a.Eng.RunFor(2 * time.Minute)
	if res == nil {
		t.Fatal("parallel fetch never finished")
	}
	return *res
}

func TestParallelFetchCompletes(t *testing.T) {
	a := testbed.NewAccess(testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 1})
	r := fetchParallelOnce(t, a, 6)
	if !r.Completed {
		t.Fatal("fetch did not complete")
	}
	if r.PLT <= 0 {
		t.Fatalf("PLT = %v", r.PLT)
	}
}

func TestParallelComparableToSequentialOnIdleLink(t *testing.T) {
	// The instructive negative result: for this page (4 objects, one
	// of them gating the rest), browser parallelism does NOT beat the
	// paper's persistent sequential connection on an idle link — each
	// parallel connection pays a fresh handshake and restarts slow
	// start, which cancels the overlap gain. The two must land within
	// 50% of each other; the paper's wget methodology is therefore
	// not a QoE-pessimizing choice.
	a1 := testbed.NewAccess(testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 2})
	RegisterServer(a1.MediaServerTCP, Port)
	var seq *Result
	Fetch(a1.MediaClientTCP, a1.MediaServer.Addr(Port), 60*time.Second, func(r Result) { seq = &r })
	a1.Eng.RunFor(2 * time.Minute)
	if seq == nil || !seq.Completed {
		t.Fatal("sequential fetch failed")
	}

	a2 := testbed.NewAccess(testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 2})
	par := fetchParallelOnce(t, a2, 6)
	if !par.Completed {
		t.Fatal("parallel fetch failed")
	}
	ratio := par.PLT.Seconds() / seq.PLT.Seconds()
	if ratio > 1.5 || ratio < 0.5 {
		t.Fatalf("parallel/sequential PLT ratio %.2f on idle link (par %v, seq %v)",
			ratio, par.PLT, seq.PLT)
	}
}

func TestParallelSingleConnDegradesToSequentialShape(t *testing.T) {
	// maxConns=1 serializes the object downloads; it should not beat
	// a 6-way fetch.
	a1 := testbed.NewAccess(testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 3})
	one := fetchParallelOnce(t, a1, 1)
	a2 := testbed.NewAccess(testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 3})
	six := fetchParallelOnce(t, a2, 6)
	if !one.Completed || !six.Completed {
		t.Fatal("fetch failed")
	}
	if six.PLT > one.PLT {
		t.Fatalf("6-conn PLT %v > 1-conn PLT %v", six.PLT, one.PLT)
	}
}

func TestParallelDeadlineReported(t *testing.T) {
	// Against a congested uplink with a tiny deadline, the result must
	// report non-completion at the deadline.
	a := testbed.NewAccess(testbed.Config{BufferUp: 256, BufferDown: 256, Seed: 4})
	a.StartWorkload(testbed.MustSpec(testbed.LookupAccessScenario("long-many", testbed.DirUp)))
	RegisterBrowserServer(a.MediaServerTCP, BrowserPort)
	var res *Result
	FetchParallel(a.MediaClientTCP, a.MediaServer.Addr(BrowserPort), 6,
		500*time.Millisecond, func(r Result) { res = &r })
	a.Eng.RunFor(time.Minute)
	if res == nil {
		t.Fatal("no result")
	}
	if res.Completed {
		t.Fatal("completed despite 500ms deadline under congestion")
	}
	if res.PLT < 500*time.Millisecond {
		t.Fatalf("PLT %v below the deadline", res.PLT)
	}
}

func TestBrowserServerAddressesObjects(t *testing.T) {
	// Each object index must be retrievable individually: total bytes
	// received on a fetch equal the page size exactly.
	a := testbed.NewAccess(testbed.Config{BufferUp: 64, BufferDown: 64, Seed: 5})
	r := fetchParallelOnce(t, a, 2)
	if !r.Completed {
		t.Fatal("fetch failed")
	}
	// Completion is only reported when every object hit its exact
	// size, so reaching here with Completed proves addressing.
}
