// Package web models the paper's web browsing measurement (Section
// 9): a wget-style client fetching a small static page — one HTML
// file, one CSS file, and two JPEG images (15, 5.8, 30, 30 KB) — over
// a single persistent HTTP/1.0 TCP connection, sequentially and
// without pipelining, measuring the page load time (PLT) and mapping
// it to QoE with ITU-T G.1030.
package web

import (
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/tcp"
)

// ObjectSizes are the page objects in fetch order: HTML, CSS, two
// medium JPEGs (Section 9.1).
var ObjectSizes = []int64{15000, 5800, 30000, 30000}

// RequestSize is the size of one HTTP GET request.
const RequestSize = 200

// Port is the web server's listening port.
const Port = 80

// PageBytes returns the total page payload.
func PageBytes() int64 {
	var n int64
	for _, s := range ObjectSizes {
		n += s
	}
	return n
}

// RegisterServer installs the static-page server on a stack: for each
// complete 200-byte request it responds with the next object in
// sequence (per connection).
func RegisterServer(st *tcp.Stack, port uint16) {
	st.Listen(port, func(c *tcp.Conn) {
		var pending int64
		next := 0
		c.OnReadable = func(n int64) {
			pending += n
			for pending >= RequestSize && next < len(ObjectSizes) {
				pending -= RequestSize
				c.Send(ObjectSizes[next])
				next++
			}
		}
		c.OnPeerClose = func(*tcp.Conn) { c.CloseWrite() }
	})
}

// Result describes one page fetch.
type Result struct {
	// PLT is the page load time: connection start to last payload
	// byte.
	PLT time.Duration
	// Completed is false if the deadline elapsed first (PLT then holds
	// the deadline).
	Completed bool
	// Retransmissions and SRTT come from the client connection and
	// support the paper's loss-dominated vs RTT-dominated analysis.
	Retransmissions uint64
	SRTT            time.Duration
}

// Fetch retrieves the page from server and invokes onDone when the
// last byte arrives or the deadline passes. A deadline of zero means
// 30 s.
func Fetch(st *tcp.Stack, server netem.Addr, deadline time.Duration, onDone func(Result)) {
	if deadline <= 0 {
		deadline = 30 * time.Second
	}
	eng := st.Node().Engine()
	start := eng.Now()
	conn := st.Dial(server)

	var got int64
	obj := 0
	done := false
	total := PageBytes()

	finish := func(completed bool) {
		if done {
			return
		}
		done = true
		onDone(Result{
			PLT:             eng.Now().Sub(start),
			Completed:       completed,
			Retransmissions: conn.Stat.Retransmissions,
			SRTT:            conn.SRTT(),
		})
	}

	guard := eng.Schedule(deadline, func() {
		finish(false)
		conn.Abort(nil)
	})

	conn.OnEstablished = func() { conn.Send(RequestSize) } // first GET
	conn.OnReadable = func(n int64) {
		got += n
		// Objects arrive strictly in order on the single connection:
		// request the next one as soon as the current completes.
		var boundary int64
		for i := 0; i <= obj && i < len(ObjectSizes); i++ {
			boundary += ObjectSizes[i]
		}
		for got >= boundary && obj < len(ObjectSizes)-1 {
			obj++
			conn.Send(RequestSize)
			boundary += ObjectSizes[obj]
		}
		if got >= total {
			guard.Stop()
			finish(true)
			conn.CloseWrite()
		}
	}
	conn.OnPeerClose = func(*tcp.Conn) { conn.CloseWrite() }
	conn.OnClose = func(err error) {
		if err != nil {
			guard.Stop()
			finish(false)
		}
	}
}
