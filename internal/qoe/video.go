package qoe

import "math"

// PSNR computes the peak signal-to-noise ratio in dB between two
// 8-bit luma planes of equal size. Identical frames return +Inf.
func PSNR(ref, deg []uint8) float64 {
	if len(ref) == 0 || len(ref) != len(deg) {
		return math.NaN()
	}
	var mse float64
	for i := range ref {
		d := float64(ref[i]) - float64(deg[i])
		mse += d * d
	}
	mse /= float64(len(ref))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

// SSIM computes the mean structural similarity index (Wang, Bovik,
// Sheikh, Simoncelli 2004) between two 8-bit luma planes of
// dimensions w x h, using 8x8 windows with stride 4.
func SSIM(ref, deg []uint8, w, h int) float64 {
	if len(ref) != w*h || len(deg) != w*h || w < 8 || h < 8 {
		return math.NaN()
	}
	const (
		k1, k2 = 0.01, 0.03
		L      = 255.0
		win    = 8
		stride = 4
	)
	c1 := (k1 * L) * (k1 * L)
	c2 := (k2 * L) * (k2 * L)
	var sum float64
	var count int
	for y := 0; y+win <= h; y += stride {
		for x := 0; x+win <= w; x += stride {
			var ma, mb float64
			for j := 0; j < win; j++ {
				row := (y+j)*w + x
				for i := 0; i < win; i++ {
					ma += float64(ref[row+i])
					mb += float64(deg[row+i])
				}
			}
			n := float64(win * win)
			ma /= n
			mb /= n
			var va, vb, cov float64
			for j := 0; j < win; j++ {
				row := (y+j)*w + x
				for i := 0; i < win; i++ {
					da := float64(ref[row+i]) - ma
					db := float64(deg[row+i]) - mb
					va += da * da
					vb += db * db
					cov += da * db
				}
			}
			va /= n - 1
			vb /= n - 1
			cov /= n - 1
			s := ((2*ma*mb + c1) * (2*cov + c2)) /
				((ma*ma + mb*mb + c1) * (va + vb + c2))
			sum += s
			count++
		}
	}
	if count == 0 {
		return math.NaN()
	}
	return sum / float64(count)
}

// SSIMToMOS maps an SSIM score to a 5-point MOS, piecewise-linear
// through the anchor points of the scalable-video mapping of Zinner
// et al. ([49] in the paper): pristine video (SSIM ~1) is excellent
// and quality falls off steeply below ~0.9.
func SSIMToMOS(ssim float64) float64 {
	anchors := []struct{ s, mos float64 }{
		{0.00, 1.0},
		{0.60, 1.0},
		{0.70, 1.5},
		{0.80, 2.2},
		{0.88, 3.0},
		{0.95, 4.0},
		{0.99, 4.8},
		{1.00, 5.0},
	}
	return interpolate(ssim, anchors)
}

// PSNRToMOS maps PSNR (dB) to a 5-point MOS using the conventional
// thresholds (>=37 dB excellent, <20 dB bad).
func PSNRToMOS(psnr float64) float64 {
	if math.IsInf(psnr, 1) {
		return 5
	}
	anchors := []struct{ s, mos float64 }{
		{0, 1.0},
		{20, 1.0},
		{25, 2.0},
		{31, 3.0},
		{37, 4.0},
		{45, 5.0},
	}
	return interpolate(psnr, anchors)
}

func interpolate(x float64, anchors []struct{ s, mos float64 }) float64 {
	if x <= anchors[0].s {
		return anchors[0].mos
	}
	for i := 1; i < len(anchors); i++ {
		if x <= anchors[i].s {
			a, b := anchors[i-1], anchors[i]
			frac := (x - a.s) / (b.s - a.s)
			return a.mos + frac*(b.mos-a.mos)
		}
	}
	return anchors[len(anchors)-1].mos
}
