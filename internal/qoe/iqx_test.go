package qoe

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestIQXAnchorsMatchG1030(t *testing.T) {
	base := AccessWebModel()
	m := NewIQXWebModel(base)
	if got := m.MOS(base.MinPLT); got != 5 {
		t.Fatalf("MOS(MinPLT) = %v, want 5", got)
	}
	if got := m.MOS(base.MaxPLT); math.Abs(got-1) > 0.05 {
		t.Fatalf("MOS(MaxPLT) = %v, want ~1", got)
	}
}

func TestIQXFallsFasterThanLogEarly(t *testing.T) {
	// The defining IQX property: at small impairments the exponential
	// is below the anchored logarithmic curve (initial delays hurt
	// more), while both meet at the anchors.
	base := AccessWebModel()
	iqx := NewIQXWebModel(base)
	early := base.MinPLT + (base.MaxPLT-base.MinPLT)/10
	if iqx.MOS(early) >= base.MOS(early) {
		t.Fatalf("IQX %.2f >= G.1030 %.2f at early PLT", iqx.MOS(early), base.MOS(early))
	}
}

func TestIQXMonotoneNonIncreasing(t *testing.T) {
	m := NewIQXWebModel(BackboneWebModel())
	f := func(a, b uint16) bool {
		x := time.Duration(a) * time.Millisecond * 2
		y := time.Duration(b) * time.Millisecond * 2
		if x > y {
			x, y = y, x
		}
		return m.MOS(x) >= m.MOS(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIQXBounded(t *testing.T) {
	m := NewIQXWebModel(AccessWebModel())
	f := func(ms uint32) bool {
		v := m.MOS(time.Duration(ms%600000) * time.Millisecond)
		return v >= 1 && v <= 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIQXAgreesWithG1030OnCategories(t *testing.T) {
	// The two mappings may disagree on exact scores but must agree on
	// the extremes: sub-second loads are good (>3.5), loads past 5 s
	// are bad (<2) under both.
	log := AccessWebModel()
	iqx := NewIQXWebModel(log)
	for _, plt := range []time.Duration{450 * time.Millisecond, 500 * time.Millisecond} {
		if log.MOS(plt) < 3.5 || iqx.MOS(plt) < 3.5 {
			t.Fatalf("fast load rated poorly: log=%.2f iqx=%.2f", log.MOS(plt), iqx.MOS(plt))
		}
	}
	for _, plt := range []time.Duration{5500 * time.Millisecond, 8 * time.Second} {
		if log.MOS(plt) > 2 || iqx.MOS(plt) > 2 {
			t.Fatalf("slow load rated well: log=%.2f iqx=%.2f", log.MOS(plt), iqx.MOS(plt))
		}
	}
}
