package qoe

import (
	"math"
	"time"
)

// WebModel is the ITU-T G.1030 one-page web QoE model used in Section
// 9: page load times map logarithmically to MOS between a
// scenario-specific minimum PLT (-> "excellent") and a maximum PLT
// (-> "bad").
type WebModel struct {
	// MinPLT maps to MOS 5. The paper uses 0.56 s for the access
	// testbed and 0.85 s for the backbone (different base RTTs).
	MinPLT time.Duration
	// MaxPLT maps to MOS 1. The paper uses the G.1030 default of 6 s.
	MaxPLT time.Duration
}

// AccessWebModel returns the access-testbed parameterization. The
// paper anchors MinPLT at its testbed's fastest load (0.56 s); our TCP
// model (initial window 3, immediate server responses) loads the page
// slightly faster, so the anchor follows our measured noBG baseline —
// the same methodology, re-anchored.
func AccessWebModel() WebModel {
	return WebModel{MinPLT: 420 * time.Millisecond, MaxPLT: 6 * time.Second}
}

// BackboneWebModel returns the backbone parameterization (paper:
// 0.85 s; re-anchored to our measured noBG baseline as above).
func BackboneWebModel() WebModel {
	return WebModel{MinPLT: 500 * time.Millisecond, MaxPLT: 6 * time.Second}
}

// MOS maps a page load time to the G.1030 opinion score in [1, 5].
func (m WebModel) MOS(plt time.Duration) float64 {
	if plt <= m.MinPLT {
		return 5
	}
	if plt >= m.MaxPLT {
		return 1
	}
	span := math.Log(m.MaxPLT.Seconds()) - math.Log(m.MinPLT.Seconds())
	frac := (math.Log(plt.Seconds()) - math.Log(m.MinPLT.Seconds())) / span
	return 5 - 4*frac
}
