package qoe

import (
	"math"
)

// SpeechQuality is a PESQ-style full-reference speech quality
// estimator: it compares the degraded signal against the error-free
// reference and returns a listening-quality MOS in [1, 4.5].
//
// Substitution note: ITU-T P.862 (PESQ) is a standard whose reference
// implementation is licensed, not redistributable. This estimator
// keeps PESQ's structure — frame-wise perceptual band analysis of
// both signals, asymmetric disturbance aggregation weighted by speech
// activity, logistic mapping to MOS — and is calibrated to the
// operating points the paper reports (clean G.711 -> ~4.4; heavy
// loss/concealment -> ~1). It is monotone in concealment-gap density
// and in added-noise energy, which is what the buffer/workload
// sensitivity study needs.
func SpeechQuality(ref, deg []float64, sampleRate int) float64 {
	n := len(ref)
	if len(deg) < n {
		n = len(deg)
	}
	frame := sampleRate / 50 // 20 ms
	if frame == 0 || n < frame {
		return 1
	}
	bands := speechBands(sampleRate)
	// One Hann window and two band-level buffers per call, shared by
	// every frame: the per-sample cosine used to dominate the CPU
	// profile (it was recomputed per band, per signal, per frame) and
	// the per-frame level slices dominated the allocation profile.
	win := hannWindow(frame)
	lr := make([]float64, len(bands))
	ld := make([]float64, len(bands))

	// Two disturbance components, PESQ-style:
	//   - gross temporal disruptions (concealment gaps, bursts) —
	//     their *density* among speech-active frames drives quality,
	//     calibrated against the ITU G.711 packet-loss MOS curves;
	//   - background spectral distortion of the surviving frames
	//     (codec noise, mild clipping).
	var nActive, disrupted int
	var distBg float64
	var nBg int
	var noiseFrames int
	for off := 0; off+frame <= n; off += frame {
		rf := ref[off : off+frame]
		df := deg[off : off+frame]
		eRef := rms(rf)
		eDeg := rms(df)
		if eRef <= 0.01 {
			if eDeg > 3*eRef+0.005 {
				noiseFrames++ // audible noise injected into silence
			}
			continue
		}
		nActive++
		totalDiff := math.Abs(10 * math.Log10((eRef*eRef+1e-8)/(eDeg*eDeg+1e-8)))
		if totalDiff > 15 {
			// Muted/concealed or grossly distorted frame.
			disrupted++
			continue
		}
		// Masking floor: band energy 40 dB below the frame total is
		// inaudible next to the rest of the frame; flooring both
		// signals there keeps quantization noise in empty bands from
		// dominating the distortion.
		floor := eRef*eRef*1e-4 + 1e-8
		bandLevels(lr, rf, win, sampleRate, bands, floor)
		bandLevels(ld, df, win, sampleRate, bands, floor)
		var d float64
		for b := range bands {
			diff := lr[b] - ld[b]
			if diff < 0 {
				// Added energy (noise) is more annoying than missing
				// energy (PESQ's asymmetry factor).
				diff = -1.4 * diff
			}
			d += diff
		}
		distBg += d / float64(len(bands))
		nBg++
	}
	if nActive == 0 {
		return 1
	}
	// Gap density -> MOS along the ITU-style exponential loss curve:
	// 0% -> 4.45, 5% -> ~3.3, 10% -> ~2.5, 20% -> ~1.65.
	fGap := float64(disrupted) / float64(nActive)
	mos := 1 + 3.45*math.Exp(-fGap/0.12)
	// Background distortion penalty with a small inaudibility
	// threshold (keeps G.711 companding nearly free).
	if nBg > 0 {
		dbg := distBg/float64(nBg) - 1
		if dbg > 0 {
			mos -= 0.35 * math.Pow(dbg, 0.8)
		}
	}
	// Noise in pauses is mildly annoying.
	mos -= 2 * float64(noiseFrames) / float64(n/frame)
	if mos > 4.5 {
		mos = 4.5
	}
	if mos < 1 {
		mos = 1
	}
	return mos
}

// speechBands returns the analysis band center frequencies, roughly
// mel-spaced over the telephony band.
func speechBands(sampleRate int) []float64 {
	bands := []float64{150, 300, 500, 800, 1200, 1800, 2500, 3400}
	nyq := float64(sampleRate) / 2
	out := bands[:0]
	for _, f := range bands {
		if f < nyq-100 {
			out = append(out, f)
		}
	}
	return out
}

// hannWindow returns the length-n Hann window used to reduce leakage
// between Goertzel bands. The caller computes it once per signal; the
// values (and therefore every downstream band level) are bit-identical
// to the previous per-sample inline computation.
func hannWindow(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// bandLevels fills out with per-band log energies (dB) of a frame
// using Goertzel filters — a stdlib-only substitute for an FFT front
// end. Band powers below floor are clamped to it (energetic masking).
func bandLevels(out, frame, win []float64, sampleRate int, bands []float64, floor float64) {
	for i, f := range bands {
		p := goertzelPower(frame, win, f, sampleRate)
		if p < floor {
			p = floor
		}
		out[i] = 10 * math.Log10(p)
	}
}

// goertzelPower returns the normalized signal power at frequency f.
// win must be hannWindow(len(x)); the accumulation expression must
// stay exactly `v*win + coeff*s1 - s2` so the result is bit-identical
// to the pre-windowing-hoist code on every architecture.
func goertzelPower(x, win []float64, f float64, sampleRate int) float64 {
	w := 2 * math.Pi * f / float64(sampleRate)
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for i, v := range x {
		wv := win[i]
		s0 = v*wv + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	return power / float64(len(x)*len(x))
}

func rms(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}
