package qoe

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"bufferqoe/internal/media"
	"bufferqoe/internal/sim"
)

func TestDelayImpairmentAnchors(t *testing.T) {
	if got := DelayImpairment(50 * time.Millisecond); got != 0 {
		t.Fatalf("Idd(50ms) = %v, want 0", got)
	}
	if got := DelayImpairment(100 * time.Millisecond); got != 0 {
		t.Fatalf("Idd(100ms) = %v, want 0", got)
	}
	// G.114: 150 ms is still fine, 400 ms noticeably impaired,
	// seconds are catastrophic.
	d150 := DelayImpairment(150 * time.Millisecond)
	d400 := DelayImpairment(400 * time.Millisecond)
	d3s := DelayImpairment(3 * time.Second)
	if d150 > 5 {
		t.Fatalf("Idd(150ms) = %v, want small", d150)
	}
	if d400 < 5 || d400 > 35 {
		t.Fatalf("Idd(400ms) = %v, want 5-35", d400)
	}
	// G.107's Idd asymptotes toward 50 for very large delays.
	if d3s < 40 || d3s > 50 {
		t.Fatalf("Idd(3s) = %v, want ~49 (G.107 asymptote)", d3s)
	}
	if !(d150 < d400 && d400 < d3s) {
		t.Fatal("Idd not monotone")
	}
}

// Property: Idd is monotone non-decreasing in delay.
func TestPropertyDelayImpairmentMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		da := time.Duration(a) * time.Millisecond
		db := time.Duration(b) * time.Millisecond
		if da > db {
			da, db = db, da
		}
		return DelayImpairment(da) <= DelayImpairment(db)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLossImpairment(t *testing.T) {
	if LossImpairment(0) != 0 {
		t.Fatal("Ie-eff(0) != 0")
	}
	// G.711/Bpl=4.3: 1% loss -> ~17.9, 5% -> ~51.
	if got := LossImpairment(1); math.Abs(got-17.92) > 0.5 {
		t.Fatalf("Ie-eff(1%%) = %v, want ~17.9", got)
	}
	if got := LossImpairment(5); math.Abs(got-51.1) > 1 {
		t.Fatalf("Ie-eff(5%%) = %v, want ~51", got)
	}
}

func TestRToMOSAnchors(t *testing.T) {
	// Standard anchors: R=93.2 -> MOS ~4.41; R=50 -> ~2.58; R=0 -> 1.
	if got := RToMOS(93.2); math.Abs(got-4.41) > 0.03 {
		t.Fatalf("MOS(93.2) = %v", got)
	}
	if got := RToMOS(50); math.Abs(got-2.58) > 0.05 {
		t.Fatalf("MOS(50) = %v", got)
	}
	if RToMOS(0) != 1 || RToMOS(-5) != 1 {
		t.Fatal("MOS floor broken")
	}
	if RToMOS(120) != 4.5 {
		t.Fatal("MOS ceiling broken")
	}
}

func TestMOSToRInvertsRToMOS(t *testing.T) {
	// Sun's cubic fit should roughly invert the G.107 mapping over
	// the useful range.
	for r := 10.0; r <= 95; r += 5 {
		mos := RToMOS(r)
		back := MOSToR(mos)
		if math.Abs(back-r) > 6 {
			t.Fatalf("R=%v -> MOS=%v -> R=%v (drift > 6)", r, mos, back)
		}
	}
}

func TestVoIPScoreCombination(t *testing.T) {
	// Perfect signal, no delay: excellent.
	clean := VoIPScore(4.4, 20*time.Millisecond)
	if clean < 4.0 {
		t.Fatalf("clean score = %v, want >= 4.0", clean)
	}
	// Perfect signal but 3 s one-way delay: conversation seriously
	// impaired. (Matches the paper's Figure 7b "user listens" cells of
	// ~2.1-2.3 at 256-packet uplink buffers, where the signal itself
	// is clean but the conversational delay impairment dominates.)
	delayed := VoIPScore(4.4, 3*time.Second)
	if delayed > 2.5 {
		t.Fatalf("3s-delay score = %v, want <= 2.5", delayed)
	}
	// Destroyed signal, no delay: bad regardless.
	lossy := VoIPScore(1.2, 20*time.Millisecond)
	if lossy > 1.5 {
		t.Fatalf("lossy score = %v", lossy)
	}
	if !(delayed < clean && lossy < clean) {
		t.Fatal("ordering violated")
	}
}

func TestSpeechQualityCleanSignal(t *testing.T) {
	rng := sim.NewRNG(3, "sq")
	pcm := media.GenerateSpeech(rng, 4.0, 120)
	mos := SpeechQuality(pcm, pcm, media.SampleRate)
	if mos < 4.2 {
		t.Fatalf("identical signals scored %v, want >= 4.2", mos)
	}
}

func TestSpeechQualityG711Codec(t *testing.T) {
	rng := sim.NewRNG(4, "sq2")
	pcm := media.GenerateSpeech(rng, 4.0, 120)
	deg := media.ALawRoundTrip(pcm)
	mos := SpeechQuality(pcm, deg, media.SampleRate)
	if mos < 3.9 {
		t.Fatalf("G.711 companding alone scored %v, want >= 3.9", mos)
	}
}

// degradeFrames zeroes a fraction of 20 ms frames (silence
// concealment of lost packets).
func degradeFrames(pcm []float64, lossFrac float64, seed uint64) []float64 {
	rng := sim.NewRNG(seed, "loss")
	out := make([]float64, len(pcm))
	copy(out, pcm)
	f := media.FrameSamples
	for off := 0; off+f <= len(out); off += f {
		if rng.Bool(lossFrac) {
			for i := off; i < off+f; i++ {
				out[i] = 0
			}
		}
	}
	return out
}

func TestSpeechQualityMonotoneInLoss(t *testing.T) {
	rng := sim.NewRNG(5, "sq3")
	pcm := media.GenerateSpeech(rng, 6.0, 120)
	prev := 5.0
	for _, loss := range []float64{0, 0.05, 0.15, 0.35, 0.7} {
		deg := degradeFrames(pcm, loss, 9)
		mos := SpeechQuality(pcm, deg, media.SampleRate)
		if mos > prev+0.05 {
			t.Fatalf("MOS not monotone in loss: %.0f%% loss -> %v (prev %v)",
				loss*100, mos, prev)
		}
		prev = mos
	}
	// Heavy loss must land near the bottom of the scale.
	heavy := SpeechQuality(pcm, degradeFrames(pcm, 0.7, 9), media.SampleRate)
	if heavy > 1.8 {
		t.Fatalf("70%% frame loss scored %v, want <= 1.8", heavy)
	}
}

func TestWebModelAnchors(t *testing.T) {
	m := AccessWebModel()
	if got := m.MOS(m.MinPLT - time.Millisecond); got != 5 {
		t.Fatalf("fast page = %v, want 5", got)
	}
	if got := m.MOS(7 * time.Second); got != 1 {
		t.Fatalf("slow page = %v, want 1", got)
	}
	// Logarithmic midpoint: sqrt(min*max) -> MOS 3.
	mid := time.Duration(math.Sqrt(m.MinPLT.Seconds()*m.MaxPLT.Seconds()) * float64(time.Second))
	if got := m.MOS(mid); math.Abs(got-3) > 0.05 {
		t.Fatalf("midpoint = %v, want ~3", got)
	}
	// The paper's Section 9.4 argument: 9 s -> 5 s is a large QoS
	// improvement but both are bad QoE.
	if m.MOS(9*time.Second) != 1 || m.MOS(5*time.Second) > 1.5 {
		t.Fatal("9s/5s should both be (nearly) bad")
	}
}

func TestWebModelMonotone(t *testing.T) {
	m := BackboneWebModel()
	prev := 6.0
	for ms := 100; ms < 10000; ms += 100 {
		got := m.MOS(time.Duration(ms) * time.Millisecond)
		if got > prev {
			t.Fatalf("MOS increased with PLT at %d ms", ms)
		}
		prev = got
	}
}

func TestPSNRBasics(t *testing.T) {
	a := make([]uint8, 64*64)
	b := make([]uint8, 64*64)
	for i := range a {
		a[i] = uint8(i % 200) // headroom so +20 below cannot overflow
		b[i] = a[i]
	}
	if !math.IsInf(PSNR(a, b), 1) {
		t.Fatal("identical planes PSNR != +Inf")
	}
	b[0] += 10
	p := PSNR(a, b)
	if p < 40 {
		t.Fatalf("one-pixel difference PSNR = %v", p)
	}
	for i := range b {
		b[i] = a[i] + 20
	}
	if got := PSNR(a, b); math.Abs(got-10*math.Log10(255.0*255.0/400.0)) > 0.01 {
		t.Fatalf("uniform-offset PSNR = %v", got)
	}
}

func TestSSIMBasics(t *testing.T) {
	w, h := 64, 64
	a := make([]uint8, w*h)
	rng := sim.NewRNG(6, "ssim")
	for i := range a {
		a[i] = uint8(rng.IntN(256))
	}
	b := make([]uint8, w*h)
	copy(b, a)
	if got := SSIM(a, b, w, h); math.Abs(got-1) > 1e-9 {
		t.Fatalf("identical SSIM = %v, want 1", got)
	}
	// Heavy corruption of half the frame must reduce SSIM clearly.
	for i := 0; i < w*h/2; i++ {
		b[i] = uint8(rng.IntN(256))
	}
	got := SSIM(a, b, w, h)
	if got > 0.7 {
		t.Fatalf("corrupted SSIM = %v, want < 0.7", got)
	}
}

func TestSSIMToMOSAnchors(t *testing.T) {
	if got := SSIMToMOS(1.0); got != 5 {
		t.Fatalf("SSIM 1 -> %v", got)
	}
	if got := SSIMToMOS(0.4); got != 1 {
		t.Fatalf("SSIM 0.4 -> %v", got)
	}
	if got := SSIMToMOS(0.95); math.Abs(got-4.0) > 0.01 {
		t.Fatalf("SSIM 0.95 -> %v, want 4.0", got)
	}
	// Monotonicity.
	prev := 0.0
	for s := 0.0; s <= 1.0; s += 0.01 {
		m := SSIMToMOS(s)
		if m < prev-1e-9 {
			t.Fatalf("SSIMToMOS not monotone at %v", s)
		}
		prev = m
	}
}

func TestPSNRToMOS(t *testing.T) {
	if PSNRToMOS(math.Inf(1)) != 5 {
		t.Fatal("inf PSNR != 5")
	}
	if PSNRToMOS(15) != 1 {
		t.Fatal("15dB != 1")
	}
	if got := PSNRToMOS(37); math.Abs(got-4) > 0.01 {
		t.Fatalf("37dB = %v", got)
	}
}

func TestVoIPSatisfactionScale(t *testing.T) {
	cases := map[float64]VoIPCategory{
		4.4: VerySatisfied,
		4.1: Satisfied,
		3.8: SomeSatisfied,
		3.3: ManyDissatisfied,
		2.8: NearlyAllDissatisf,
		1.5: NotRecommended,
	}
	for mos, want := range cases {
		if got := VoIPSatisfaction(mos); got != want {
			t.Fatalf("VoIPSatisfaction(%v) = %v, want %v", mos, got, want)
		}
	}
}

func TestRateScale(t *testing.T) {
	cases := map[float64]Rating{4.8: Excellent, 4.0: Good, 3.0: Fair, 2.0: Poor, 1.2: Bad}
	for mos, want := range cases {
		if got := Rate(mos); got != want {
			t.Fatalf("Rate(%v) = %v, want %v", mos, got, want)
		}
	}
}

func TestClassifyDelay(t *testing.T) {
	if ClassifyDelay(100*time.Millisecond) != DelayAcceptable {
		t.Fatal("100ms not acceptable")
	}
	if ClassifyDelay(300*time.Millisecond) != DelayProblematic {
		t.Fatal("300ms not problematic")
	}
	if ClassifyDelay(3*time.Second) != DelaySevere {
		t.Fatal("3s not severe")
	}
}
