package qoe

import "time"

// VoIPCategory is the G.711 user-satisfaction scale of Figure 6a
// (ITU-T G.109 categories).
type VoIPCategory string

// Figure 6a categories.
const (
	VerySatisfied      VoIPCategory = "Very Satisfied"
	Satisfied          VoIPCategory = "Satisfied"
	SomeSatisfied      VoIPCategory = "Some Users Satisfied"
	ManyDissatisfied   VoIPCategory = "Many Users Dissatisfied"
	NearlyAllDissatisf VoIPCategory = "Nearly All Users Dissatisfied"
	NotRecommended     VoIPCategory = "Not Recommended"
)

// VoIPSatisfaction classifies a MOS on the Figure 6a scale.
func VoIPSatisfaction(mos float64) VoIPCategory {
	switch {
	case mos >= 4.3:
		return VerySatisfied
	case mos >= 4.0:
		return Satisfied
	case mos >= 3.6:
		return SomeSatisfied
	case mos >= 3.1:
		return ManyDissatisfied
	case mos >= 2.6:
		return NearlyAllDissatisf
	default:
		return NotRecommended
	}
}

// Rating is the five-point ACR scale of Figure 6b used for video and
// web scores.
type Rating string

// Figure 6b ratings.
const (
	Excellent Rating = "Excellent"
	Good      Rating = "Good"
	Fair      Rating = "Fair"
	Poor      Rating = "Poor"
	Bad       Rating = "Bad"
)

// Rate classifies a MOS on the five-point scale.
func Rate(mos float64) Rating {
	switch {
	case mos >= 4.5:
		return Excellent
	case mos >= 3.5:
		return Good
	case mos >= 2.5:
		return Fair
	case mos >= 1.5:
		return Poor
	default:
		return Bad
	}
}

// DelayClass is the ITU-T G.114 classification of one-way delays used
// to color the Figure 4 heatmaps.
type DelayClass int

// G.114 classes: green / orange / red in the paper's heatmaps.
const (
	DelayAcceptable  DelayClass = iota // <= 150 ms
	DelayProblematic                   // 150-400 ms
	DelaySevere                        // > 400 ms
)

func (d DelayClass) String() string {
	switch d {
	case DelayAcceptable:
		return "acceptable"
	case DelayProblematic:
		return "problematic"
	default:
		return "severe"
	}
}

// ClassifyDelay classifies a one-way delay per G.114.
func ClassifyDelay(d time.Duration) DelayClass {
	switch {
	case d <= 150*time.Millisecond:
		return DelayAcceptable
	case d <= 400*time.Millisecond:
		return DelayProblematic
	default:
		return DelaySevere
	}
}
