package qoe

import (
	"math"
	"testing"
	"testing/quick"
)

func TestG107DefaultRating(t *testing.T) {
	// The standard's best-known anchor: all defaults -> R = 93.2.
	r := DefaultParams().Rating()
	if math.Abs(r-93.2) > 0.4 {
		t.Fatalf("default rating = %v, want ~93.2", r)
	}
	mos := DefaultParams().MOS()
	if math.Abs(mos-4.41) > 0.05 {
		t.Fatalf("default MOS = %v, want ~4.41", mos)
	}
}

func TestG107MatchesShortcutOnDelay(t *testing.T) {
	// The full model with only Ta varied must track the paper's
	// shortcut R = 93.2 - Idd within the echo-term slack.
	for _, ms := range []float64{0, 100, 200, 400, 1000} {
		p := DefaultParams()
		p.Ta = ms
		full := p.Rating()
		short := RDefault - p.idd()
		if math.Abs(full-short) > 2.5 {
			t.Fatalf("Ta=%vms: full=%v shortcut=%v", ms, full, short)
		}
	}
}

func TestG107LossDegrades(t *testing.T) {
	p := DefaultParams()
	p.Bpl = 4.3 // G.711
	prev := p.Rating()
	for _, loss := range []float64{1, 5, 10, 20} {
		p.Ppl = loss
		r := p.Rating()
		if r >= prev {
			t.Fatalf("rating not decreasing at %v%% loss", loss)
		}
		prev = r
	}
}

func TestG107BurstLossWorse(t *testing.T) {
	random := DefaultParams()
	random.Bpl = 4.3
	random.Ppl = 5
	random.BurstR = 1
	bursty := random
	bursty.BurstR = 2
	if bursty.Rating() >= random.Rating() {
		t.Fatal("bursty loss not worse than random loss")
	}
}

func TestG107EchoImpairments(t *testing.T) {
	// A long echo path with poor echo loss must hurt.
	p := DefaultParams()
	p.T = 200
	p.TELR = 40
	if p.Rating() >= DefaultParams().Rating()-5 {
		t.Fatalf("echo impairment too small: %v vs %v", p.Rating(), DefaultParams().Rating())
	}
	// Listener echo: low WEPL with round-trip delay.
	q := DefaultParams()
	q.WEPL = 20
	q.Tr = 300
	if q.Rating() >= DefaultParams().Rating()-3 {
		t.Fatalf("listener echo impairment too small: %v", q.Rating())
	}
}

func TestG107QuantizationDistortion(t *testing.T) {
	p := DefaultParams()
	p.Qdu = 10 // many tandem codings
	if p.Rating() >= DefaultParams().Rating()-3 {
		t.Fatalf("qdu impairment too small: %v", p.Rating())
	}
}

func TestG107NoiseDegrades(t *testing.T) {
	p := DefaultParams()
	p.Nc = -50 // noisy circuit
	if p.Rating() >= DefaultParams().Rating()-2 {
		t.Fatalf("circuit noise impairment too small: %v", p.Rating())
	}
}

// Property: rating is monotone non-increasing in packet loss and in
// absolute delay.
func TestPropertyG107Monotone(t *testing.T) {
	f := func(l1, l2 uint8, d1, d2 uint16) bool {
		pa, pb := float64(l1%50), float64(l2%50)
		if pa > pb {
			pa, pb = pb, pa
		}
		p := DefaultParams()
		p.Bpl = 4.3
		p.Ppl = pa
		q := p
		q.Ppl = pb
		if q.Rating() > p.Rating()+1e-9 {
			return false
		}
		ta, tb := float64(d1%2000), float64(d2%2000)
		if ta > tb {
			ta, tb = tb, ta
		}
		x := DefaultParams()
		x.Ta = ta
		y := DefaultParams()
		y.Ta = tb
		return y.Rating() <= x.Rating()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestG107AdvantageFactor(t *testing.T) {
	p := DefaultParams()
	p.Ta = 300
	base := p.Rating()
	p.A = 10 // e.g. satellite-phone expectation advantage
	if math.Abs(p.Rating()-(base+10)) > 1e-9 {
		t.Fatal("advantage factor not additive")
	}
}
