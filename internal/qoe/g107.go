package qoe

import (
	"math"
	"time"
)

// Params is the full ITU-T G.107 (E-Model) input parameter set. The
// zero value is NOT usable; start from DefaultParams, which carries
// the standard's default values and yields the well-known rating of
// R = 93.2.
//
// The simpler helpers of this package (RFactor, VoIPScore) use the
// default-parameter shortcut R = 93.2 - Idd - Ie,eff exactly as the
// paper does; this type provides the complete computational model for
// users who need to deviate from the defaults (loudness ratings,
// sidetone, echo paths, circuit noise, quantization distortion).
type Params struct {
	SLR    float64 // send loudness rating, dB
	RLR    float64 // receive loudness rating, dB
	STMR   float64 // sidetone masking rating, dB
	LSTR   float64 // listener sidetone rating, dB
	Ds     float64 // D-value of telephone, send side
	Dr     float64 // D-value of telephone, receive side
	TELR   float64 // talker echo loudness rating, dB
	WEPL   float64 // weighted echo path loss, dB
	T      float64 // mean one-way delay of the echo path, ms
	Tr     float64 // round-trip delay in a 4-wire loop, ms
	Ta     float64 // absolute delay (mouth-to-ear), ms
	Qdu    float64 // number of quantization distortion units
	Ie     float64 // equipment impairment factor
	Bpl    float64 // packet-loss robustness factor
	Ppl    float64 // random packet-loss probability, %
	BurstR float64 // burst ratio (1 = random loss)
	Nc     float64 // circuit noise referred to 0 dBr, dBm0p
	Nfor   float64 // noise floor at the receive side, dBmp
	Ps     float64 // room noise at the send side, dB(A)
	Pr     float64 // room noise at the receive side, dB(A)
	A      float64 // advantage factor
}

// DefaultParams returns the G.107 default values (Table 1 of the
// Recommendation). With these, Rating() returns ~93.2.
func DefaultParams() Params {
	return Params{
		SLR: 8, RLR: 2,
		STMR: 15, LSTR: 18,
		Ds: 3, Dr: 3,
		TELR: 65, WEPL: 110,
		T: 0, Tr: 0, Ta: 0,
		Qdu: 1,
		Ie:  0, Bpl: 1, Ppl: 0, BurstR: 1,
		Nc: -70, Nfor: -64,
		Ps: 35, Pr: 35,
		A: 0,
	}
}

// Rating computes the transmission rating factor
// R = Ro - Is - Id - Ie,eff + A per the G.107 algorithm.
func (p Params) Rating() float64 {
	no := p.noiseSum()
	ro := 15 - 1.5*(p.SLR+no)
	is := p.iolr(no) + p.ist() + p.iq(ro)
	id := p.idte(no) + p.idle(ro) + p.idd()
	ieEff := p.ieEff()
	r := ro - is - id - ieEff + p.A
	return r
}

// MOS returns the rating mapped to the listening MOS scale.
func (p Params) MOS() float64 { return RToMOS(p.Rating()) }

// noiseSum computes No, the power addition of all noise sources
// referred to the 0 dBr point.
func (p Params) noiseSum() float64 {
	olr := p.SLR + p.RLR
	nos := p.Ps - p.SLR - p.Ds - 100 + 0.004*math.Pow(p.Ps-olr-p.Ds-14, 2)
	pre := p.Pr + 10*math.Log10(1+math.Pow(10, (10-p.LSTR)/10))
	nor := p.RLR - 121 + pre + 0.008*math.Pow(pre-35, 2)
	nfo := p.Nfor + p.RLR
	sum := math.Pow(10, p.Nc/10) + math.Pow(10, nos/10) +
		math.Pow(10, nor/10) + math.Pow(10, nfo/10)
	return 10 * math.Log10(sum)
}

// iolr is the impairment from too-low overall loudness rating.
func (p Params) iolr(no float64) float64 {
	xolr := p.SLR + p.RLR + 0.2*(64+no-p.RLR)
	return 20 * (math.Pow(1+math.Pow(xolr/8, 8), 1.0/8) - xolr/8)
}

// ist is the impairment caused by non-optimum sidetone.
func (p Params) ist() float64 {
	stmro := -10 * math.Log10(math.Pow(10, -p.STMR/10)+
		math.Exp(-p.T/4)*math.Pow(10, -p.TELR/10))
	return 12*math.Pow(1+math.Pow((stmro-13)/6, 8), 1.0/8) -
		28*math.Pow(1+math.Pow((stmro+1)/19.4, 35), 1.0/35) -
		13*math.Pow(1+math.Pow((stmro-3)/33, 13), 1.0/13) + 29
}

// iq is the impairment caused by quantization distortion.
func (p Params) iq(ro float64) float64 {
	q := 37 - 15*math.Log10(p.Qdu)
	g := 1.07 + 0.258*q + 0.0602*q*q
	y := (ro-100)/15 + 46.0/8.4 - g/9
	z := 46.0/30 - g/40
	return 15 * math.Log10(1+math.Pow(10, y)+math.Pow(10, z))
}

// idte is the talker-echo impairment.
func (p Params) idte(no float64) float64 {
	if p.T == 0 && p.TELR >= 65 {
		// No echo path delay and good echo loss: negligible.
	}
	roe := -1.5 * (no - p.RLR)
	terv := p.TELR - 40*math.Log10((1+p.T/10)/(1+p.T/150)) +
		6*math.Exp(-0.3*p.T*p.T)
	if p.STMR < 9 {
		terv += p.ist() / 2
	}
	re := 80 + 2.5*(terv-14)
	idte := ((roe-re)/2 + math.Sqrt((roe-re)*(roe-re)/4+100) - 1) *
		(1 - math.Exp(-p.T))
	if p.STMR > 20 {
		idte = math.Sqrt(idte*idte + p.ist()*p.ist())
	}
	if idte < 0 {
		return 0
	}
	return idte
}

// idle is the listener-echo impairment.
func (p Params) idle(ro float64) float64 {
	rle := 10.5 * (p.WEPL + 7) * math.Pow(p.Tr+1, -0.25)
	idle := (ro-rle)/2 + math.Sqrt((ro-rle)*(ro-rle)/4+169)
	if idle < 0 {
		return 0
	}
	return idle
}

// idd is the absolute-delay impairment (also exposed package-level as
// DelayImpairment).
func (p Params) idd() float64 {
	return DelayImpairment(time.Duration(p.Ta * float64(time.Millisecond)))
}

// ieEff is the effective equipment impairment including bursty packet
// loss (G.107 2011+ formulation with the burst ratio).
func (p Params) ieEff() float64 {
	if p.Ppl <= 0 {
		return p.Ie
	}
	burstR := p.BurstR
	if burstR < 1 {
		burstR = 1
	}
	return p.Ie + (95-p.Ie)*p.Ppl/(p.Ppl/burstR+p.Bpl)
}
