// Package qoe implements the standardized Quality of Experience
// metrics the paper evaluates with:
//
//   - the ITU-T G.107 E-Model (R-factor, delay impairment Idd, loss
//     impairment Ie-eff, R<->MOS conversions) for conversational VoIP
//     quality;
//   - a PESQ-style signal-based speech quality estimator (z1) —
//     documented substitution for the proprietary P.862
//     implementation;
//   - the paper's combined VoIP score z = max{0, z1 - z2};
//   - the ITU-T G.1030 logarithmic web QoE model on page load times;
//   - PSNR and SSIM full-reference video metrics with MOS mappings
//     (Zinner et al. [49]);
//   - the MOS scales of Figure 6 and the ITU-T G.114 delay classes
//     used to color Figure 4.
package qoe

import (
	"math"
	"time"
)

// RMax is the narrow-band E-Model maximum transmission rating.
const RMax = 100.0

// RDefault is the default R-factor with all G.107 parameters at their
// defaults (no impairments): R0 - Is = 93.2.
const RDefault = 93.2

// DelayImpairment returns the G.107 delay impairment factor Idd for a
// one-way ("mouth-to-ear") delay Ta. Below 100 ms it is zero; above,
// it follows the standard's closed form. Echo-related terms (Idte,
// Idle) are zero under the paper's echo-free testbed assumption.
func DelayImpairment(ta time.Duration) float64 {
	ms := ta.Seconds() * 1000
	if ms <= 100 {
		return 0
	}
	x := math.Log(ms/100) / math.Log(2)
	idd := 25 * (math.Pow(1+math.Pow(x, 6), 1.0/6) -
		3*math.Pow(1+math.Pow(x/3, 6), 1.0/6) + 2)
	if idd < 0 {
		return 0
	}
	return idd
}

// LossImpairment returns the G.107 effective equipment impairment
// Ie-eff for G.711 under random packet loss: Ie = 0, Bpl = 4.3.
// ppl is the packet loss percentage (0-100).
func LossImpairment(ppl float64) float64 {
	const ie, bpl = 0.0, 4.3
	if ppl <= 0 {
		return ie
	}
	return ie + (95-ie)*ppl/(ppl+bpl)
}

// RFactor computes the E-Model transmission rating from the delay and
// loss impairments (advantage factor A = 0).
func RFactor(ta time.Duration, ppl float64) float64 {
	r := RDefault - DelayImpairment(ta) - LossImpairment(ppl)
	if r < 0 {
		return 0
	}
	return r
}

// RToMOS converts an R-factor to a mean opinion score using the G.107
// Annex B mapping.
func RToMOS(r float64) float64 {
	switch {
	case r <= 0:
		return 1
	case r >= 100:
		return 4.5
	default:
		mos := 1 + 0.035*r + r*(r-60)*(100-r)*7e-6
		if mos < 1 {
			// The cubic dips slightly below 1 for very small R; G.107
			// defines MOS >= 1.
			mos = 1
		}
		return mos
	}
}

// MOSToR converts a MOS to an R-factor using the cubic fit from Sun's
// thesis ([41] in the paper), which the paper uses to remap the PESQ
// score z1 from [1, 5] to [0, 100].
func MOSToR(mos float64) float64 {
	if mos < 1 {
		mos = 1
	}
	if mos > 4.5 {
		mos = 4.5
	}
	r := 3.026*mos*mos*mos - 25.314*mos*mos + 87.06*mos - 57.336
	if r < 0 {
		return 0
	}
	if r > 100 {
		return 100
	}
	return r
}

// VoIPScore combines the two QoE components exactly as the paper's
// Section 7.1 does: z1 (signal quality, MOS-LQO from the PESQ-style
// comparator) is remapped to the R scale, z2 (the delay impairment
// Idd, already on a [0, 100] impairment scale) is subtracted, the
// result clamped at zero and mapped back to MOS.
func VoIPScore(z1 float64, oneWayDelay time.Duration) float64 {
	z1r := MOSToR(z1)
	z2 := DelayImpairment(oneWayDelay)
	z := z1r - z2
	if z < 0 {
		z = 0
	}
	return RToMOS(z)
}
