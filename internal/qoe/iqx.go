package qoe

import (
	"math"
	"time"
)

// IQXWebModel is the exponential alternative to the logarithmic G.1030
// mapping: the IQX hypothesis (Fiedler, Hossfeld & Tran-Gia, IEEE
// Network 2010) posits QoE = alpha*exp(-beta*x) + gamma against an
// impairment x. Section 9 of the paper notes that WebQoE research
// debates the waiting-time/QoE functional form ("time is bandwidth?",
// reference [15]); the abl-iqx experiment reruns the web conclusions
// under this alternative mapping to show they are not an artifact of
// choosing the logarithmic curve.
//
// The model is anchored to the same two points as the G.1030
// parameterization — MOS 5 at MinPLT and MOS 1 at MaxPLT — so the two
// curves differ only in shape between the anchors: the exponential
// falls faster early (small delays already hurt) and flattens near the
// "bad" floor.
type IQXWebModel struct {
	// MinPLT maps to MOS 5; MaxPLT maps to MOS 1 (same anchors as the
	// corresponding WebModel).
	MinPLT, MaxPLT time.Duration

	alpha, beta, gamma float64
}

// NewIQXWebModel fits the exponential between the same anchors as the
// given logarithmic model.
func NewIQXWebModel(base WebModel) IQXWebModel {
	m := IQXWebModel{MinPLT: base.MinPLT, MaxPLT: base.MaxPLT}
	// Solve alpha*exp(-beta*t0)+gamma = 5 and alpha*exp(-beta*t1)+gamma = 1
	// with a fixed asymptote gamma slightly below the MOS floor, which
	// leaves one degree of freedom (the decay rate) determined by the
	// anchor span.
	m.gamma = 0.9 // asymptotic "given up" score
	t0 := base.MinPLT.Seconds()
	t1 := base.MaxPLT.Seconds()
	// alpha*e^(-beta*t0) = 5 - gamma;  alpha*e^(-beta*t1) = 1 - gamma
	// => beta = ln((5-gamma)/(1-gamma)) / (t1 - t0)
	m.beta = math.Log((5-m.gamma)/(1-m.gamma)) / (t1 - t0)
	m.alpha = (5 - m.gamma) * math.Exp(m.beta*t0)
	return m
}

// MOS maps a page load time to the IQX opinion score in [1, 5].
func (m IQXWebModel) MOS(plt time.Duration) float64 {
	if plt <= m.MinPLT {
		return 5
	}
	v := m.alpha*math.Exp(-m.beta*plt.Seconds()) + m.gamma
	if v < 1 {
		return 1
	}
	if v > 5 {
		return 5
	}
	return v
}
