package harpoon

import (
	"testing"
	"testing/quick"
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
	"bufferqoe/internal/tcp"
)

// rig is a minimal two-host network for generator tests.
type rig struct {
	eng            *sim.Engine
	sender, sinkSt *tcp.Stack
}

func newRig() *rig {
	eng := sim.New()
	nw := netem.NewNetwork(eng)
	a := nw.NewNode("sender")
	b := nw.NewNode("sink")
	nw.Connect(a, b, 50e6, 5*time.Millisecond, 500)
	return &rig{
		eng:    eng,
		sender: tcp.NewStack(a, tcp.Config{}),
		sinkSt: tcp.NewStack(b, tcp.Config{}),
	}
}

func TestFileSizeWeibullMean(t *testing.T) {
	rng := sim.NewRNG(1, "w")
	var sum float64
	const n = 300000
	for i := 0; i < n; i++ {
		sum += float64(FileSizeWeibull(rng))
	}
	mean := sum / n
	// Paper: Weibull(0.35, 10039) has mean ~50 KB.
	if mean < 40000 || mean > 64000 {
		t.Fatalf("mean file size = %.0f, want ~50000", mean)
	}
}

// Property: file sizes are always at least one byte.
func TestPropertyFileSizePositive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed, "w")
		for i := 0; i < 100; i++ {
			if FileSizeWeibull(rng) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecLoops(t *testing.T) {
	if (Spec{Sessions: 4, Parallel: 3}).Loops() != 12 {
		t.Fatal("loops != sessions*parallel")
	}
	if (Spec{Sessions: 4}).Loops() != 4 {
		t.Fatal("zero parallel should default to 1")
	}
}

func TestClosedLoopSessions(t *testing.T) {
	r := newRig()
	RegisterSink(r.sinkSt, SinkPort)
	gen := NewGenerator(r.eng, sim.NewRNG(2, "g"),
		[]*tcp.Stack{r.sender}, []netem.Addr{r.sinkSt.Node().Addr(SinkPort)})
	gen.Start(Spec{Sessions: 2, Parallel: 2, Think: 100 * time.Millisecond})
	gen.StartConcurrencySampling(time.Second)
	r.eng.RunUntil(sim.Time(30 * time.Second))
	st := gen.Stats()
	if st.Completed < 20 {
		t.Fatalf("completed = %d, want many", st.Completed)
	}
	if st.BytesMoved == 0 {
		t.Fatal("no bytes moved")
	}
	// Closed loop: concurrency bounded by loop count.
	if max := st.Concurrent.Max(); max > 4 {
		t.Fatalf("concurrency %v exceeded loop count 4", max)
	}
	if st.CompletionSec.N() == 0 {
		t.Fatal("no completion samples")
	}
}

func TestInfiniteFlowsStayUp(t *testing.T) {
	r := newRig()
	RegisterSink(r.sinkSt, SinkPort)
	gen := NewGenerator(r.eng, sim.NewRNG(3, "g"),
		[]*tcp.Stack{r.sender}, []netem.Addr{r.sinkSt.Node().Addr(SinkPort)})
	gen.Start(Spec{Sessions: 3, Infinite: true})
	r.eng.RunUntil(sim.Time(20 * time.Second))
	if gen.Active() != 3 {
		t.Fatalf("active infinite flows = %d, want 3", gen.Active())
	}
	if gen.Stats().Completed != 0 {
		t.Fatal("infinite flows completed")
	}
	// They must actually move data at line rate.
	if gen.Stats().BytesMoved != 0 {
		t.Fatal("BytesMoved counts only completed flows")
	}
}

func TestSessionsAreDeterministic(t *testing.T) {
	run := func() uint64 {
		r := newRig()
		RegisterSink(r.sinkSt, SinkPort)
		gen := NewGenerator(r.eng, sim.NewRNG(4, "g"),
			[]*tcp.Stack{r.sender}, []netem.Addr{r.sinkSt.Node().Addr(SinkPort)})
		gen.Start(Spec{Sessions: 3, Parallel: 2, Think: 200 * time.Millisecond})
		r.eng.RunUntil(sim.Time(15 * time.Second))
		return gen.Stats().Completed
	}
	if run() != run() {
		t.Fatal("generator not deterministic")
	}
}

func TestGeneratorSpreadsAcrossSenders(t *testing.T) {
	eng := sim.New()
	nw := netem.NewNetwork(eng)
	hub := nw.NewNode("hub")
	sink := nw.NewNode("sink")
	_, sinkHub := nw.Connect(hub, sink, 100e6, time.Millisecond, 500)
	sink.SetDefaultRoute(sinkHub) // replies to senders go via the hub
	var senders []*tcp.Stack
	for i := 0; i < 3; i++ {
		n := nw.NewNode("s")
		toHub, _ := nw.Connect(n, hub, 100e6, time.Millisecond, 500)
		n.SetDefaultRoute(toHub)
		senders = append(senders, tcp.NewStack(n, tcp.Config{}))
	}
	sinkSt := tcp.NewStack(sink, tcp.Config{})
	RegisterSink(sinkSt, SinkPort)
	gen := NewGenerator(eng, sim.NewRNG(5, "g"), senders, []netem.Addr{sink.Addr(SinkPort)})
	gen.Start(Spec{Sessions: 3, Parallel: 1, Think: 50 * time.Millisecond})
	eng.RunUntil(sim.Time(10 * time.Second))
	if gen.Stats().Completed == 0 {
		t.Fatal("no completions in multi-sender rig")
	}
	// All three sender stacks must have been used.
	for i, st := range senders {
		if st.Node().Delivered == 0 {
			t.Fatalf("sender %d never received acks (unused)", i)
		}
	}
}
