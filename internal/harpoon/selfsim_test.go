// Self-similarity validation of the generated traffic: the paper
// chooses long-tailed (Weibull) file sizes "to be able to resemble
// self-similar traffic as seen in today's networks" (§5.2). The
// aggregated-variance method estimates the Hurst parameter of the
// byte-arrival process at the bottleneck: slope beta of
// log var(X^(m)) vs log m gives H = 1 + beta/2. Self-similar traffic
// has H > 0.5; a memoryless arrival process sits at H ~= 0.5.
package harpoon_test

import (
	"math"
	"testing"
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
	"bufferqoe/internal/testbed"
)

// hurstAggVar estimates H from a series of per-bin byte counts.
func hurstAggVar(bins []float64) float64 {
	variance := func(xs []float64) float64 {
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		var v float64
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		return v / float64(len(xs))
	}
	var logM, logV []float64
	for _, m := range []int{1, 2, 4, 8, 16, 32} {
		nBlocks := len(bins) / m
		if nBlocks < 8 {
			break
		}
		agg := make([]float64, nBlocks)
		for b := 0; b < nBlocks; b++ {
			var s float64
			for i := 0; i < m; i++ {
				s += bins[b*m+i]
			}
			agg[b] = s / float64(m)
		}
		v := variance(agg)
		if v <= 0 {
			continue
		}
		logM = append(logM, math.Log10(float64(m)))
		logV = append(logV, math.Log10(v))
	}
	// Least-squares slope.
	n := float64(len(logM))
	var sx, sy, sxx, sxy float64
	for i := range logM {
		sx += logM[i]
		sy += logV[i]
		sxx += logM[i] * logM[i]
		sxy += logM[i] * logV[i]
	}
	beta := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	return 1 + beta/2
}

// binnedBytes runs the named backbone workload and returns per-50ms
// byte counts observed at the bottleneck link.
func binnedBytes(scenario string, dur time.Duration, seed uint64) []float64 {
	b := testbed.NewBackbone(testbed.Config{BufferDown: 749, Seed: seed})
	const bin = 50 * time.Millisecond
	nBins := int(dur / bin)
	bins := make([]float64, nBins)
	b.DownLink.Tap = func(p *netem.Packet, at sim.Time) {
		i := int(at.Duration() / bin)
		if i >= 0 && i < nBins {
			bins[i] += float64(p.Size)
		}
	}
	b.StartWorkload(testbed.MustSpec(testbed.LookupBackboneScenario(scenario)))
	b.Eng.RunFor(dur)
	// Drop the slow-start warmup.
	return bins[nBins/10:]
}

func TestWeibullWorkloadIsSelfSimilar(t *testing.T) {
	if testing.Short() {
		t.Skip("long traffic generation")
	}
	bins := binnedBytes("short-medium", 120*time.Second, 21)
	h := hurstAggVar(bins)
	if h < 0.6 {
		t.Fatalf("Hurst estimate %.2f for the Weibull workload, want > 0.6 (self-similar)", h)
	}
	if h > 1.05 {
		t.Fatalf("Hurst estimate %.2f out of range", h)
	}
}

func TestPoissonNullHasLowerHurst(t *testing.T) {
	// Null comparator: memoryless per-bin counts (synthetic Poisson-
	// like, constant-intensity normal approximation) must estimate
	// H ~= 0.5, clearly below the generated traffic's value.
	rng := sim.NewRNG(33, "poisson-null")
	bins := make([]float64, 2048)
	for i := range bins {
		v := 1000 + 100*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		bins[i] = v
	}
	h := hurstAggVar(bins)
	if h < 0.3 || h > 0.62 {
		t.Fatalf("null-model Hurst %.2f, want ~0.5", h)
	}
}

func TestHurstEstimatorOnFGNLikeSeries(t *testing.T) {
	// Sanity-check the estimator itself on a constructed long-range-
	// dependent series: a sum of on/off sources with heavy-tailed on
	// periods (the classical Taqqu construction that motivates the
	// Weibull choice) must estimate H well above the null.
	rng := sim.NewRNG(44, "fgn")
	const nBins = 4096
	bins := make([]float64, nBins)
	for src := 0; src < 32; src++ {
		on := true
		i := 0
		for i < nBins {
			// Pareto(1.4) on/off periods: infinite variance, finite
			// mean -> H = (3-1.4)/2 = 0.8 asymptotically.
			length := int(rng.Pareto(2, 1.4))
			if length < 1 {
				length = 1
			}
			for j := 0; j < length && i < nBins; j, i = j+1, i+1 {
				if on {
					bins[i]++
				}
			}
			on = !on
		}
	}
	h := hurstAggVar(bins)
	if h < 0.65 {
		t.Fatalf("estimator gives H=%.2f on a Taqqu on/off series, want > 0.65", h)
	}
}
