// Package harpoon models the Harpoon flow-level traffic generator
// (Sommers, Kim, Barford, SIGMETRICS 2004) as used in the paper's
// testbeds: closed-loop user sessions that repeatedly transfer files
// with exponentially distributed think times and Weibull(0.35, 10039)
// file sizes (mean ~50 KB), plus long-lived flows of infinite
// duration.
//
// Calibration note (documented substitution): Harpoon sessions issue
// requests over several parallel connection threads; the paper's
// session counts (Table 1) implicitly include that parallelism. We
// model each session as Parallel independent request loops and
// calibrate think times so the generated link utilizations reproduce
// Table 1's measured values.
package harpoon

import (
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
	"bufferqoe/internal/stats"
	"bufferqoe/internal/tcp"
)

// FileSizeWeibull returns the paper's file size sampler:
// Weibull(shape 0.35, scale 10039), at least one byte.
func FileSizeWeibull(rng *sim.RNG) int64 {
	v := int64(rng.Weibull(0.35, 10039))
	if v < 1 {
		v = 1
	}
	return v
}

// SinkPort is the well-known port harpoon sinks listen on.
const SinkPort = 9000

// RegisterSink installs a data sink on the stack: it accepts
// connections, discards payload, and closes its half once the sender
// finishes. The accept hook installs shared function values, so a
// sink adds no per-connection allocations.
func RegisterSink(st *tcp.Stack, port uint16) {
	st.Listen(port, sinkAccept)
}

func sinkAccept(c *tcp.Conn) { c.OnPeerClose = (*tcp.Conn).CloseWrite }

// Stats aggregates generator-level counters.
type Stats struct {
	Started    uint64
	Completed  uint64
	Aborted    uint64
	BytesMoved int64
	// Concurrent samples the number of in-flight transfers once a
	// second (the "Concurrent Flows" column of Table 1).
	Concurrent stats.Welford
	// CompletionSec collects per-flow completion times in seconds.
	CompletionSec stats.Sample
}

// Generator drives one traffic direction: data flows from the sender
// stacks to the sink addresses.
type Generator struct {
	eng   *sim.Engine
	rng   *sim.RNG
	stats Stats

	senders []*tcp.Stack
	sinks   []netem.Addr

	active int
}

// NewGenerator creates a generator. senders are the stacks that emit
// file data; sinks are listening sink addresses on the receiving side.
func NewGenerator(eng *sim.Engine, rng *sim.RNG, senders []*tcp.Stack, sinks []netem.Addr) *Generator {
	return &Generator{eng: eng, rng: rng, senders: senders, sinks: sinks}
}

// Stats returns the accumulated counters.
func (g *Generator) Stats() *Stats { return &g.stats }

// Active returns the number of in-flight transfers.
func (g *Generator) Active() int { return g.active }

// Spec describes one session population.
type Spec struct {
	// Sessions is the number of user sessions (Table 1 "# Sessions").
	Sessions int
	// Parallel is the number of request loops per session.
	Parallel int
	// Think is the mean exponential gap between a completion and the
	// next request in a loop.
	Think time.Duration
	// FileSize samples the transfer size; nil means FileSizeWeibull.
	FileSize func(*sim.RNG) int64
	// Infinite starts Sessions*Parallel long-lived flows of infinite
	// duration instead of closed loops (the paper's "long" scenarios
	// use Parallel 1).
	Infinite bool
}

// Loops returns the total number of independent request loops.
func (s Spec) Loops() int {
	p := s.Parallel
	if p < 1 {
		p = 1
	}
	return s.Sessions * p
}

// Start launches the session population. Loop start times are jittered
// over the first think interval to avoid synchronization (the paper
// §5.1 notes the workload choice eliminates synchronization).
func (g *Generator) Start(spec Spec) {
	size := spec.FileSize
	if size == nil {
		size = FileSizeWeibull
	}
	for i := 0; i < spec.Loops(); i++ {
		i := i
		if spec.Infinite {
			delay := time.Duration(g.rng.Uniform(0, 1) * float64(time.Second))
			g.eng.Schedule(delay, func() { g.startInfinite(i) })
			continue
		}
		delay := time.Duration(g.rng.Exponential(spec.Think.Seconds()) * float64(time.Second))
		g.eng.Schedule(delay, func() { g.runLoop(i, spec, size) })
	}
}

// StartConcurrencySampling records the in-flight transfer count every
// interval.
func (g *Generator) StartConcurrencySampling(interval time.Duration) {
	var tick func()
	tick = func() {
		g.stats.Concurrent.Add(float64(g.active))
		g.eng.Schedule(interval, tick)
	}
	g.eng.Schedule(interval, tick)
}

func (g *Generator) pickSender(i int) *tcp.Stack {
	return g.senders[i%len(g.senders)]
}

func (g *Generator) pickSink() netem.Addr {
	return g.sinks[g.rng.IntN(len(g.sinks))]
}

func (g *Generator) startInfinite(i int) {
	st := g.pickSender(i)
	conn := st.Dial(g.pickSink())
	g.stats.Started++
	g.active++
	conn.OnEstablished = func() { conn.SendInfinite() }
	conn.OnClose = func(err error) {
		// Infinite flows only close on abort; restart to keep the
		// population size constant, as an operator restarting iperf
		// would.
		g.active--
		g.stats.Aborted++
		g.eng.Schedule(time.Second, func() { g.startInfinite(i) })
	}
}

// nopPeerClose is the shared no-op peer-close handler of the request
// loops (a func literal per flow would allocate).
func nopPeerClose(*tcp.Conn) {}

func (g *Generator) runLoop(i int, spec Spec, size func(*sim.RNG) int64) {
	n := size(g.rng)
	st := g.pickSender(i)
	conn := st.Dial(g.pickSink())
	g.stats.Started++
	g.active++
	start := g.eng.Now()
	conn.OnEstablished = func() {
		conn.Send(n)
		conn.CloseWrite()
	}
	conn.OnPeerClose = nopPeerClose // sink closes after us; nothing to do
	conn.OnClose = func(err error) {
		g.active--
		if err != nil {
			g.stats.Aborted++
		} else {
			g.stats.Completed++
			g.stats.BytesMoved += n
			g.stats.CompletionSec.Add(g.eng.Now().Sub(start).Seconds())
		}
		think := time.Duration(g.rng.Exponential(spec.Think.Seconds()) * float64(time.Second))
		g.eng.Schedule(think, func() { g.runLoop(i, spec, size) })
	}
}
