package voip

import (
	"testing"
	"time"

	"bufferqoe/internal/media"
	"bufferqoe/internal/sim"
	"bufferqoe/internal/testbed"
)

func runCall(t *testing.T, a *testbed.Access, talk bool) Result {
	t.Helper()
	lib := media.Library(1)
	var got *Result
	from, to := a.MediaServer, a.MediaClient // user listens
	if talk {
		from, to = a.MediaClient, a.MediaServer // user talks
	}
	Start(from, to, lib[0], 0, func(r Result) { got = &r })
	a.Eng.RunFor(20 * time.Second)
	if got == nil {
		t.Fatal("call never finished")
	}
	return *got
}

func TestCleanCallExcellent(t *testing.T) {
	a := testbed.NewAccess(testbed.Config{BufferUp: 8, BufferDown: 64, Seed: 1})
	r := runCall(t, a, false)
	if r.Lost != 0 || r.Late != 0 {
		t.Fatalf("clean network lost/late = %d/%d", r.Lost, r.Late)
	}
	// Paper Figure 7 noBG rows: ~4.1-4.2.
	if r.MOS < 4.0 {
		t.Fatalf("noBG MOS = %v, want >= 4.0", r.MOS)
	}
	if r.Sent != 400 {
		t.Fatalf("sent = %d, want 400 (8 s at 50 pps)", r.Sent)
	}
	if r.OneWayDelay > 150*time.Millisecond {
		t.Fatalf("one-way delay = %v, want < 150ms", r.OneWayDelay)
	}
}

func TestUplinkCongestionWrecksTalkDirection(t *testing.T) {
	// Paper Figure 7b "user talks": upstream congestion with a
	// 256-packet uplink buffer gives MOS ~1.
	a := testbed.NewAccess(testbed.Config{BufferUp: 256, BufferDown: 256, Seed: 2})
	a.StartWorkload(testbed.MustSpec(testbed.LookupAccessScenario("short-many", testbed.DirUp)))
	a.Eng.RunFor(10 * time.Second) // let the queue fill
	r := runCall(t, a, true)
	if r.MOS > 2.0 {
		t.Fatalf("bloated congested uplink talk MOS = %v, want <= 2.0", r.MOS)
	}
	// The long-flow variant keeps the signal cleaner but the delay
	// impairment still drags it below "many users dissatisfied".
	a2 := testbed.NewAccess(testbed.Config{BufferUp: 256, BufferDown: 256, Seed: 2})
	a2.StartWorkload(testbed.MustSpec(testbed.LookupAccessScenario("long-many", testbed.DirUp)))
	a2.Eng.RunFor(10 * time.Second)
	r2 := runCall(t, a2, true)
	if r2.MOS > 3.1 {
		t.Fatalf("long-many bloated uplink talk MOS = %v, want <= 3.1", r2.MOS)
	}
}

func TestUplinkBloatDegradesListenDirectionViaDelay(t *testing.T) {
	// Paper Figure 7b "user listens": even though the downlink is
	// clean, the conversational delay impairment from the bloated
	// uplink drags the listen-direction score down: the signal z1
	// stays high, the combined MOS does not.
	a := testbed.NewAccess(testbed.Config{BufferUp: 256, BufferDown: 256, Seed: 3})
	a.StartWorkload(testbed.MustSpec(testbed.LookupAccessScenario("long-many", testbed.DirUp)))
	a.Eng.RunFor(10 * time.Second)

	lib := media.Library(2)
	var listen *Result
	// The listen direction rides the clean downlink; its delay
	// impairment comes from the conversational path, which the paper
	// attributes to the uplink queue. Model the conversational delay
	// by measuring the talk direction's delay and noting that z2
	// applies to the conversation: here we verify the signal arrives
	// clean but the talk path is impaired.
	Start(a.MediaServer, a.MediaClient, lib[1], 0, func(r Result) { listen = &r })
	a.Eng.RunFor(20 * time.Second)
	if listen == nil {
		t.Fatal("no result")
	}
	if listen.Z1 < 3.8 {
		t.Fatalf("downlink signal z1 = %v, want clean (>= 3.8)", listen.Z1)
	}
}

func TestSmallBufferBeatsBloatUnderUploadCongestion(t *testing.T) {
	// Paper Section 7.2: reducing uplink buffers from 256 to 8 packets
	// improves the talk-direction MOS under upload congestion.
	mos := map[int]float64{}
	for _, buf := range []int{8, 256} {
		a := testbed.NewAccess(testbed.Config{BufferUp: buf, BufferDown: 64, Seed: 4})
		a.StartWorkload(testbed.MustSpec(testbed.LookupAccessScenario("long-few", testbed.DirUp)))
		a.Eng.RunFor(8 * time.Second)
		r := runCall(t, a, true)
		mos[buf] = r.MOS
	}
	if mos[8] <= mos[256] {
		t.Fatalf("small-buffer MOS %.2f <= bloated %.2f under upload congestion",
			mos[8], mos[256])
	}
}

func TestLossPct(t *testing.T) {
	r := Result{Sent: 100, Lost: 5, Late: 5}
	if r.LossPct() != 10 {
		t.Fatalf("LossPct = %v", r.LossPct())
	}
	if (Result{}).LossPct() != 0 {
		t.Fatal("empty LossPct != 0")
	}
}

func TestPlayoutBufferLateLoss(t *testing.T) {
	// With a congested downlink and a small playout buffer, jitter
	// should convert into late frames.
	a := testbed.NewAccess(testbed.Config{BufferUp: 64, BufferDown: 256, Seed: 5})
	a.StartWorkload(testbed.MustSpec(testbed.LookupAccessScenario("long-many", testbed.DirDown)))
	a.Eng.RunFor(8 * time.Second)
	lib := media.Library(3)
	var r *Result
	Start(a.MediaServer, a.MediaClient, lib[2], 20*time.Millisecond, func(x Result) { r = &x })
	a.Eng.RunFor(20 * time.Second)
	if r == nil {
		t.Fatal("no result")
	}
	if r.Lost+r.Late == 0 {
		t.Fatal("congested downlink produced no app-layer loss")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		a := testbed.NewAccess(testbed.Config{BufferUp: 32, BufferDown: 32, Seed: 9})
		a.StartWorkload(testbed.MustSpec(testbed.LookupAccessScenario("short-few", testbed.DirDown)))
		a.Eng.RunFor(3 * time.Second)
		return runCallQuiet(a)
	}
	r1, r2 := run(), run()
	if r1.MOS != r2.MOS || r1.Lost != r2.Lost || r1.Late != r2.Late {
		t.Fatalf("nondeterministic: %+v vs %+v", r1, r2)
	}
}

func runCallQuiet(a *testbed.Access) Result {
	lib := media.Library(1)
	var got Result
	Start(a.MediaServer, a.MediaClient, lib[0], 0, func(r Result) { got = r })
	a.Eng.RunFor(20 * time.Second)
	return got
}

func TestSimTimeTypesCompile(t *testing.T) {
	var x sim.Time = 5
	_ = x
}

func TestAdaptivePlayoutReducesLateLoss(t *testing.T) {
	// Under heavy downstream jitter a fixed 60 ms buffer drops late
	// frames; the adaptive receiver grows its budget instead.
	run := func(adaptive bool) Result {
		a := testbed.NewAccess(testbed.Config{BufferUp: 64, BufferDown: 256, Seed: 21})
		a.StartWorkload(testbed.MustSpec(testbed.LookupAccessScenario("long-many", testbed.DirDown)))
		a.Eng.RunFor(8 * time.Second)
		lib := media.Library(5)
		var got Result
		if adaptive {
			StartAdaptive(a.MediaServer, a.MediaClient, lib[4], func(r Result) { got = r })
		} else {
			Start(a.MediaServer, a.MediaClient, lib[4], 0, func(r Result) { got = r })
		}
		a.Eng.RunFor(20 * time.Second)
		return got
	}
	fixed := run(false)
	adaptive := run(true)
	if adaptive.Late > fixed.Late {
		t.Fatalf("adaptive late=%d > fixed late=%d", adaptive.Late, fixed.Late)
	}
	if fixed.Late > 0 && adaptive.Late >= fixed.Late {
		t.Fatalf("adaptive playout did not reduce late loss: %d vs %d", adaptive.Late, fixed.Late)
	}
	// And on a clean line the adaptive buffer must not hurt quality.
	clean := func(adaptive bool) Result {
		a := testbed.NewAccess(testbed.Config{BufferUp: 8, BufferDown: 64, Seed: 22})
		lib := media.Library(6)
		var got Result
		if adaptive {
			StartAdaptive(a.MediaServer, a.MediaClient, lib[0], func(r Result) { got = r })
		} else {
			Start(a.MediaServer, a.MediaClient, lib[0], 0, func(r Result) { got = r })
		}
		a.Eng.RunFor(20 * time.Second)
		return got
	}
	ca, cf := clean(true), clean(false)
	if ca.MOS < cf.MOS-0.3 {
		t.Fatalf("adaptive on clean line: %v vs fixed %v", ca.MOS, cf.MOS)
	}
}
