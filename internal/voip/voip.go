// Package voip models the paper's VoIP measurement application: a
// PjSIP-style RTP/UDP sender streaming 8-second G.711 speech samples
// (20 ms frames, 160-byte payloads, 50 packets/s), a receiver with a
// fixed playout (jitter) buffer that conceals lost and late frames,
// and the combined QoE evaluation of Section 7.1: a PESQ-style signal
// score z1 and the E-Model delay impairment z2 merged into one MOS.
package voip

import (
	"time"

	"bufferqoe/internal/media"
	"bufferqoe/internal/netem"
	"bufferqoe/internal/qoe"
	"bufferqoe/internal/sim"
)

// Wire framing of one RTP voice packet: 160 B G.711 payload + RTP +
// UDP + IP headers.
const packetSize = 160 + netem.RTPHeader + netem.UDPHeader + netem.IPHeader

// FrameInterval is the packetization interval.
const FrameInterval = 20 * time.Millisecond

// DefaultPlayout is the receiver's fixed jitter-buffer depth.
const DefaultPlayout = 60 * time.Millisecond

// rtp is the payload attached to each simulated voice packet.
type rtp struct {
	seq  int
	call *Call
}

// Result summarizes one call's QoE evaluation.
type Result struct {
	// Z1 is the signal-quality MOS from the PESQ-style comparator.
	Z1 float64
	// MOS is the final combined score (Section 7.1's z mapped to MOS).
	MOS float64
	// OneWayDelay is the mean mouth-to-ear delay (network + playout +
	// packetization) used for the delay impairment z2.
	OneWayDelay time.Duration
	// Sent / Lost / Late count RTP packets; Lost never arrived, Late
	// arrived after their playout deadline (both are concealed).
	Sent, Lost, Late int
}

// LossPct returns the application-layer loss percentage (lost + late).
func (r Result) LossPct() float64 {
	if r.Sent == 0 {
		return 0
	}
	return 100 * float64(r.Lost+r.Late) / float64(r.Sent)
}

// Call is one in-flight voice transmission.
type Call struct {
	eng      *sim.Engine
	sample   *media.Sample
	from     *netem.Node
	to       *netem.Node
	fromP    uint16
	toP      uint16
	playout  time.Duration
	adaptive bool
	start    sim.Time

	arrivals []sim.Time // per-frame arrival, 0 = not (yet) received
	received []bool
	rtps     []rtp // preallocated per-frame payloads
	onDone   func(Result)
}

// FireArg implements sim.ArgHandler: one frame's send tick. The
// payload is the preallocated rtp of that frame, so the per-packet
// schedule path allocates nothing.
func (c *Call) FireArg(now sim.Time, arg any) {
	c.sendFrame(arg.(*rtp))
}

// Fire implements sim.Handler: the drain deadline — evaluate the call.
func (c *Call) Fire(now sim.Time) { c.finish() }

// StartAdaptive streams a call whose receiver uses a Ramjee-style
// adaptive playout buffer (EWMA delay estimate plus four deviations)
// instead of the fixed jitter buffer — the behaviour of the paper's
// PjSIP receiver. The fixed playout value is kept as a floor.
func StartAdaptive(from, to *netem.Node, sample *media.Sample, onDone func(Result)) *Call {
	c := Start(from, to, sample, 0, onDone)
	c.adaptive = true
	return c
}

// Start streams sample from -> to and invokes onDone with the QoE
// result once the call (plus playout drain) completes. playout <= 0
// uses DefaultPlayout.
func Start(from, to *netem.Node, sample *media.Sample, playout time.Duration, onDone func(Result)) *Call {
	if playout <= 0 {
		playout = DefaultPlayout
	}
	eng := from.Engine()
	c := &Call{
		eng:      eng,
		sample:   sample,
		from:     from,
		to:       to,
		fromP:    from.AllocPort(netem.ProtoUDP),
		toP:      to.AllocPort(netem.ProtoUDP),
		playout:  playout,
		start:    eng.Now(),
		arrivals: make([]sim.Time, sample.Frames()),
		received: make([]bool, sample.Frames()),
		onDone:   onDone,
	}
	// The sender binds too so the port pair is reserved symmetrically.
	from.Bind(netem.ProtoUDP, c.fromP, netem.HandlerFunc(func(*netem.Packet) {}))
	to.Bind(netem.ProtoUDP, c.toP, netem.HandlerFunc(c.receive))

	n := sample.Frames()
	c.rtps = make([]rtp, n)
	for i := 0; i < n; i++ {
		c.rtps[i] = rtp{seq: i, call: c}
		eng.ScheduleArg(time.Duration(i)*FrameInterval, c, &c.rtps[i])
	}
	// Evaluate after the last deadline plus a generous network drain.
	drain := time.Duration(n)*FrameInterval + playout + 5*time.Second
	eng.ScheduleHandler(drain, c)
	return c
}

func (c *Call) sendFrame(r *rtp) {
	p := c.from.Network().NewPacket()
	p.Flow = netem.Flow{
		Proto: netem.ProtoUDP,
		Src:   c.from.Addr(c.fromP),
		Dst:   c.to.Addr(c.toP),
	}
	p.Size = packetSize
	p.Payload = r
	c.from.Send(p)
}

func (c *Call) receive(p *netem.Packet) {
	r, ok := p.Payload.(*rtp)
	if !ok || r.call != c || r.seq < 0 || r.seq >= len(c.arrivals) {
		return
	}
	if !c.received[r.seq] {
		c.received[r.seq] = true
		c.arrivals[r.seq] = c.eng.Now()
	}
}

// sendTime returns when frame i left the sender.
func (c *Call) sendTime(i int) sim.Time {
	return c.start.Add(time.Duration(i) * FrameInterval)
}

func (c *Call) finish() {
	c.from.Unbind(netem.ProtoUDP, c.fromP)
	c.to.Unbind(netem.ProtoUDP, c.toP)

	n := c.sample.Frames()
	res := Result{Sent: n}

	// Playout schedule: the receiver anchors its clock to the first
	// received frame, then plays one frame every 20 ms after the
	// jitter buffer depth.
	var t0 sim.Time
	anchored := false
	for i := 0; i < n; i++ {
		if c.received[i] {
			t0 = c.arrivals[i] - sim.Time(time.Duration(i)*FrameInterval)
			anchored = true
			break
		}
	}

	ref := c.sample.PCM[:n*media.FrameSamples]
	deg := make([]float64, len(ref))
	var delaySum time.Duration
	var delayN int

	// Adaptive playout state (Ramjee et al., INFOCOM 1994 algorithm
	// 1): track an EWMA of the one-way delay and its deviation from
	// already-played frames, and schedule playout at d+4v. The fixed
	// buffer depth acts as a floor.
	var dHat, vHat float64 // seconds
	adaptInit := false
	var budgetSum float64 // effective buffer depth actually applied
	var budgetN int

	for i := 0; i < n; i++ {
		if !c.received[i] {
			res.Lost++
			continue // concealment: silence
		}
		netDelay := c.arrivals[i].Sub(c.sendTime(i))
		budget := c.playout
		if c.adaptive {
			if !adaptInit {
				dHat = netDelay.Seconds()
				vHat = dHat / 4
				adaptInit = true
			}
			adaptBudget := time.Duration((dHat + 4*vHat) * float64(time.Second))
			if adaptBudget > budget {
				budget = adaptBudget
			}
			// Update the estimators with this frame's delay (causal:
			// affects later frames only).
			const alpha = 0.9
			d := netDelay.Seconds()
			vHat = alpha*vHat + (1-alpha)*abs(dHat-d)
			dHat = alpha*dHat + (1-alpha)*d
		}
		budgetSum += budget.Seconds()
		budgetN++
		deadline := c.sendTime(i).Add(budget)
		if !c.adaptive {
			deadline = t0.Add(time.Duration(i)*FrameInterval + budget)
		}
		if c.arrivals[i] > deadline {
			res.Late++
			continue
		}
		copy(deg[i*media.FrameSamples:(i+1)*media.FrameSamples], c.sample.Frame(i))
		delaySum += netDelay
		delayN++
	}

	res.Z1 = qoe.SpeechQuality(ref, deg, media.SampleRate)
	if anchored && delayN > 0 {
		// Mouth-to-ear: network + jitter buffer + one packetization
		// interval. For the adaptive receiver the buffer term is the
		// mean applied budget beyond the network delay.
		buffer := c.playout
		if c.adaptive && budgetN > 0 {
			mean := time.Duration(budgetSum / float64(budgetN) * float64(time.Second))
			net := delaySum / time.Duration(delayN)
			if mean > net {
				buffer = mean - net
			} else {
				buffer = 0
			}
		}
		res.OneWayDelay = delaySum/time.Duration(delayN) + buffer + FrameInterval
	} else {
		// Nothing played out: the "conversation" is effectively dead.
		res.OneWayDelay = 10 * time.Second
	}
	res.MOS = qoe.VoIPScore(res.Z1, res.OneWayDelay)
	if c.onDone != nil {
		c.onDone(res)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
