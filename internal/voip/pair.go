package voip

import (
	"time"

	"bufferqoe/internal/media"
	"bufferqoe/internal/netem"
	"bufferqoe/internal/qoe"
)

// PairResult is the outcome of a bidirectional call: both direction
// results rescored with the shared conversational delay impairment.
//
// Section 7.2 of the paper: the delay impairment z2 "expresses the
// conversational quality, it does not only effect the 'user talks'
// but also the 'user listen' part sent over the (non-congested)
// downlink" — so both directions share one conversational delay, the
// mean of the two one-way delays.
type PairResult struct {
	Listen, Talk Result
	// ConversationalDelay is the symmetrized one-way delay used for
	// the z2 component of both scores.
	ConversationalDelay time.Duration
}

// StartPair runs a full bidirectional call between the user (client)
// and the remote speaker (server): the listen direction streams
// server -> client, the talk direction client -> server. onDone fires
// when both directions have been evaluated.
func StartPair(client, server *netem.Node, listenSample, talkSample *media.Sample, playout time.Duration, onDone func(PairResult)) {
	var listen, talk *Result
	finish := func() {
		if listen == nil || talk == nil {
			return
		}
		conv := (listen.OneWayDelay + talk.OneWayDelay) / 2
		pr := PairResult{Listen: *listen, Talk: *talk, ConversationalDelay: conv}
		pr.Listen.OneWayDelay = conv
		pr.Talk.OneWayDelay = conv
		pr.Listen.MOS = qoe.VoIPScore(pr.Listen.Z1, conv)
		pr.Talk.MOS = qoe.VoIPScore(pr.Talk.Z1, conv)
		if onDone != nil {
			onDone(pr)
		}
	}
	Start(server, client, listenSample, playout, func(r Result) {
		listen = &r
		finish()
	})
	Start(client, server, talkSample, playout, func(r Result) {
		talk = &r
		finish()
	})
}
