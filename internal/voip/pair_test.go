package voip

import (
	"testing"
	"time"

	"bufferqoe/internal/media"
	"bufferqoe/internal/testbed"
)

func runPair(t *testing.T, a *testbed.Access) PairResult {
	t.Helper()
	lib := media.Library(4)
	var got *PairResult
	StartPair(a.MediaClient, a.MediaServer, lib[0], lib[1], 0,
		func(pr PairResult) { got = &pr })
	a.Eng.RunFor(25 * time.Second)
	if got == nil {
		t.Fatal("pair never finished")
	}
	return *got
}

func TestPairCleanLine(t *testing.T) {
	a := testbed.NewAccess(testbed.Config{BufferUp: 8, BufferDown: 64, Seed: 1})
	pr := runPair(t, a)
	if pr.Listen.MOS < 4.0 || pr.Talk.MOS < 4.0 {
		t.Fatalf("clean pair MOS = %.2f/%.2f", pr.Listen.MOS, pr.Talk.MOS)
	}
	if pr.ConversationalDelay > 150*time.Millisecond {
		t.Fatalf("conversational delay = %v", pr.ConversationalDelay)
	}
}

func TestPairSharesDelayImpairment(t *testing.T) {
	// Paper Figure 7b "user listens": with a bloated congested uplink,
	// the listen direction's signal is clean but its MOS drops because
	// the conversational delay is shared (paper: 4.2 -> ~2.1-2.3 at
	// buffers >= 64).
	a := testbed.NewAccess(testbed.Config{BufferUp: 256, BufferDown: 256, Seed: 2})
	a.StartWorkload(testbed.MustSpec(testbed.LookupAccessScenario("long-many", testbed.DirUp)))
	a.Eng.RunFor(10 * time.Second)
	pr := runPair(t, a)
	if pr.Listen.Z1 < 3.8 {
		t.Fatalf("listen signal z1 = %v, want clean", pr.Listen.Z1)
	}
	if pr.Listen.MOS > 3.0 {
		t.Fatalf("listen MOS = %v, want degraded by conversational delay", pr.Listen.MOS)
	}
	if pr.ConversationalDelay < 500*time.Millisecond {
		t.Fatalf("conversational delay = %v, want bloated", pr.ConversationalDelay)
	}
	// Both directions report the same (symmetrized) delay.
	if pr.Listen.OneWayDelay != pr.Talk.OneWayDelay {
		t.Fatal("pair delays not symmetrized")
	}
}
