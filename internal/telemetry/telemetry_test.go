package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHighWater(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Value())
	}
	g.Set(-7)
	if g.Value() != -7 {
		t.Fatalf("gauge = %d, want -7", g.Value())
	}
	var h HighWater
	h.Observe(3)
	h.Observe(1)
	h.Observe(9)
	h.Observe(4)
	if h.Value() != 9 {
		t.Fatalf("high water = %d, want 9", h.Value())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1, 2, 5)
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-16) > 1e-9 {
		t.Fatalf("sum = %g, want 16", got)
	}
	s := h.Snapshot()
	wantCum := []uint64{2, 3, 4, 5} // le=1:{0.5,1}, le=2:+{1.5}, le=5:+{3}, +Inf:+{10}
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %d, want %d", len(s.Buckets), len(wantCum))
	}
	for i, w := range wantCum {
		if s.Buckets[i].Count != w {
			t.Fatalf("bucket %d cum = %d, want %d", i, s.Buckets[i].Count, w)
		}
	}
	if !math.IsInf(s.Buckets[3].LE, 1) {
		t.Fatalf("last bucket LE = %v, want +Inf", s.Buckets[3].LE)
	}
	// Median lands in the (1,2] bucket.
	if q := s.Quantile(0.5); q <= 1 || q > 2 {
		t.Fatalf("p50 = %g, want in (1,2]", q)
	}
	// p99 lands in the overflow bucket and clamps to the last edge.
	if q := s.Quantile(0.99); q != 5 {
		t.Fatalf("p99 = %g, want 5 (clamped)", q)
	}
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
}

func TestHistogramBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram accepted non-ascending bounds")
		}
	}()
	NewHistogram(1, 1)
}

func TestNilCollectorIsFree(t *testing.T) {
	var c *Collector
	// Every nil-collector entry point must be a safe no-op.
	c.FlushSim(SimMetrics{EventsClosure: 10})
	c.TraceTo(&bytes.Buffer{})
	if err := c.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if !c.Start().IsZero() {
		t.Fatal("nil Start not zero")
	}
	pc := c.StartCell()
	if pc.Enabled() {
		t.Fatal("nil collector produced an enabled clock")
	}
	pc.Mark(PhaseBuild)
	pc.Done("x", SimMetrics{})
	if s := c.Snapshot(); s.PhaseCells != 0 || s.CacheHits != 0 || s.CellWall.Count != 0 {
		t.Fatalf("nil snapshot recorded data: %+v", s)
	}

	allocs := testing.AllocsPerRun(100, func() {
		pc := c.StartCell()
		pc.Mark(PhaseSim)
		pc.Done("x", SimMetrics{})
		c.FlushSim(SimMetrics{})
	})
	if allocs != 0 {
		t.Fatalf("nil-collector path allocates %v/op, want 0", allocs)
	}
}

func TestRecordingIsAllocationFree(t *testing.T) {
	c := New()
	m := SimMetrics{EventsClosure: 3, EventsPooled: 5, HeapHighWater: 12}
	allocs := testing.AllocsPerRun(100, func() {
		c.CacheHits.Inc()
		c.CellsInFlight.Add(1)
		c.CellsInFlight.Add(-1)
		c.CellWall.Observe(0.033)
		c.FlushSim(m)
		pc := c.StartCell()
		pc.Mark(PhaseBuild)
		pc.Mark(PhaseSim)
		pc.Done("cell", SimMetrics{})
	})
	if allocs != 0 {
		t.Fatalf("live recording allocates %v/op, want 0", allocs)
	}
}

func TestPhaseClockAndSnapshot(t *testing.T) {
	c := New()
	pc := c.StartCell()
	if !pc.Enabled() {
		t.Fatal("live clock not enabled")
	}
	pc.Mark(PhaseBuild)
	pc.Mark(PhaseSim)
	pc.Done("voip/access/short-few/down@64", SimMetrics{
		EventsClosure: 2, EventsPooled: 3, EventsArg: 4, EventsOwned: 5,
		TimerRecycles: 6, PacketRecycles: 7, HeapHighWater: 8,
	})
	s := c.Snapshot()
	if s.PhaseCells != 1 {
		t.Fatalf("phase cells = %d, want 1", s.PhaseCells)
	}
	if got := s.Sim.Events(); got != 14 {
		t.Fatalf("events = %d, want 14", got)
	}
	if s.Sim.HeapHighWater != 8 {
		t.Fatalf("heap high water = %d, want 8", s.Sim.HeapHighWater)
	}
	for _, ph := range []string{"build", "sim", "score"} {
		if _, ok := s.PhaseSeconds[ph]; !ok {
			t.Fatalf("snapshot missing phase %q", ph)
		}
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not JSON-serializable: %v", err)
	}
}

func TestSimMetricsAdd(t *testing.T) {
	a := SimMetrics{EventsClosure: 1, HeapHighWater: 5}
	a.Add(SimMetrics{EventsClosure: 2, EventsOwned: 3, HeapHighWater: 4, TimerRecycles: 9})
	if a.EventsClosure != 3 || a.EventsOwned != 3 || a.TimerRecycles != 9 {
		t.Fatalf("add mismatch: %+v", a)
	}
	if a.HeapHighWater != 5 {
		t.Fatalf("high water = %d, want max(5,4)=5", a.HeapHighWater)
	}
}

func TestTraceEvents(t *testing.T) {
	c := New()
	var buf bytes.Buffer
	c.TraceTo(&buf)
	pc := c.StartCell()
	pc.Mark(PhaseBuild)
	pc.Done("web/backbone/tcpmix@256", SimMetrics{EventsClosure: 100, HeapHighWater: 40})
	pc2 := c.StartCell()
	pc2.Done("web/backbone/tcpmix@512", SimMetrics{})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	var ev TraceEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("trace line not JSON: %v", err)
	}
	if ev.Kind != "cell" || ev.Cell != "web/backbone/tcpmix@256" {
		t.Fatalf("trace event = %+v", ev)
	}
	if ev.Events != 100 || ev.Heap != 40 {
		t.Fatalf("trace sim fields = %+v", ev)
	}

	// Disabling tracing stops emission.
	c.TraceTo(nil)
	pc3 := c.StartCell()
	pc3.Done("x", SimMetrics{})
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("trace emitted after disable: %d lines", got)
	}
}

func TestTraceWriterErrorDisablesTracing(t *testing.T) {
	c := New()
	c.TraceTo(failWriter{})
	pc := c.StartCell()
	pc.Done("x", SimMetrics{}) // must not panic
	pc2 := c.StartCell()
	pc2.Done("y", SimMetrics{})
	if c.trace.enc != nil {
		t.Fatal("tracing not disabled after write error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "write failed" }

func TestWritePrometheus(t *testing.T) {
	c := New()
	c.CacheHits.Add(3)
	c.CacheMisses.Add(7)
	c.CellsInFlight.Add(2)
	c.CellWall.Observe(0.02)
	c.FlushSim(SimMetrics{EventsClosure: 11, EventsPooled: 22, HeapHighWater: 33})
	c.SweepCells.Add(10)

	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"qoe_cache_hits_total 3",
		"qoe_cells_simulated_total 7",
		"qoe_cells_in_flight 2",
		"qoe_sim_events_total{tier=\"closure\"} 11",
		"qoe_sim_events_total{tier=\"pooled\"} 22",
		"qoe_sim_heap_high_water 33",
		"qoe_cell_wall_seconds_bucket{le=\"+Inf\"} 1",
		"qoe_cell_wall_seconds_count 1",
		"qoe_cell_phase_seconds_total{phase=\"build\"}",
		"qoe_sweep_cells_total 10",
		"# TYPE qoe_cell_wall_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	// A second scrape after failure sticks at the first error.
	if err := c.WritePrometheus(failWriter{}); err == nil {
		t.Fatal("WritePrometheus swallowed write error")
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := New()
	var buf bytes.Buffer
	c.TraceTo(&buf)
	var wg sync.WaitGroup
	const workers, perWorker = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.CacheMisses.Inc()
				c.CellsInFlight.Add(1)
				c.CellWall.Observe(0.001 * float64(i%20))
				pc := c.StartCell()
				pc.Mark(PhaseBuild)
				pc.Done("cell", SimMetrics{EventsClosure: 1, HeapHighWater: i})
				c.CellsInFlight.Add(-1)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.CacheMisses != workers*perWorker {
		t.Fatalf("misses = %d, want %d", s.CacheMisses, workers*perWorker)
	}
	if s.CellsInFlight != 0 {
		t.Fatalf("in flight = %d, want 0", s.CellsInFlight)
	}
	if s.CellWall.Count != workers*perWorker {
		t.Fatalf("wall count = %d, want %d", s.CellWall.Count, workers*perWorker)
	}
	if s.Sim.EventsClosure != workers*perWorker {
		t.Fatalf("events = %d, want %d", s.Sim.EventsClosure, workers*perWorker)
	}
	if s.Sim.HeapHighWater != perWorker-1 {
		t.Fatalf("heap high water = %d, want %d", s.Sim.HeapHighWater, perWorker-1)
	}
	if got := strings.Count(buf.String(), "\n"); got != workers*perWorker {
		t.Fatalf("trace lines = %d, want %d", got, workers*perWorker)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseBuild.String() != "build" || PhaseSim.String() != "sim" || PhaseScore.String() != "score" {
		t.Fatal("phase labels changed")
	}
	if Phase(99).String() != "unknown" {
		t.Fatal("out-of-range phase label")
	}
}

func TestStartAndUptime(t *testing.T) {
	c := New()
	if c.Start().IsZero() {
		t.Fatal("live Start is zero")
	}
	time.Sleep(time.Millisecond)
	if s := c.Snapshot(); s.UptimeSeconds <= 0 {
		t.Fatalf("uptime = %g, want > 0", s.UptimeSeconds)
	}
}
