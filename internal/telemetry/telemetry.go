// Package telemetry is the repository's zero-overhead observability
// layer: allocation-free counters, gauges, and fixed-bucket histograms
// built on atomic operations, aggregated by a Collector that every
// execution layer (engine, sim, experiments, facade) reports into.
//
// The design contract is "free when off, cheap when on":
//
//   - Off: a nil *Collector is the disabled state. Every Collector
//     method nil-checks its receiver and returns immediately, so the
//     instrumented hot paths cost one predictable branch and the
//     golden bit-identity and allocation budgets of the simulation
//     core are untouched.
//   - On: all primitives are preallocated at Collector construction
//     and mutated with atomic ops only — recording a counter, gauge,
//     or histogram observation never allocates, so a live collector
//     cannot perturb the allocs/op budgets it is supposed to watch.
//
// Layers that fire events at MHz rates (the discrete-event simulator)
// do not touch atomics per event: they keep plain local counters and
// the experiments layer flushes them into the Collector once per cell
// (see Collector.FlushSim), amortizing the synchronization cost to a
// handful of atomic adds per ~30 ms of simulation.
package telemetry

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
//
//qoe:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//qoe:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, in-flight cells). The
// zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by d (negative to decrement).
//
//qoe:hotpath
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set replaces the gauge value.
//
//qoe:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HighWater retains the maximum value ever observed (timer-heap
// high-water marks). The zero value is ready to use.
type HighWater struct{ v atomic.Int64 }

// Observe raises the mark to v if v exceeds it.
//
//qoe:hotpath
func (h *HighWater) Observe(v int64) {
	for {
		cur := h.v.Load()
		if v <= cur || h.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the high-water mark.
func (h *HighWater) Value() int64 { return h.v.Load() }

// Histogram is a fixed-bucket histogram: cumulative-style buckets with
// preallocated counts, an observation count, and a running sum. Bounds
// are upper bucket edges in ascending order; an implicit +Inf bucket
// catches the overflow. Observe is allocation-free and safe for
// concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; [len(bounds)] is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram creates a histogram with the given ascending upper
// bounds. This is the only allocation the histogram ever performs.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be ascending")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
//
//qoe:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bucket is one cumulative histogram bucket in a snapshot: the count
// of observations <= LE.
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// MarshalJSON renders the overflow bucket's +Inf edge as the string
// "+Inf" (JSON has no infinity literal); finite edges stay numeric.
func (b Bucket) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.LE, 1) {
		return []byte(fmt.Sprintf(`{"le":"+Inf","count":%d}`, b.Count)), nil
	}
	return []byte(fmt.Sprintf(`{"le":%g,"count":%d}`, b.LE, b.Count)), nil
}

// HistSnapshot is a point-in-time copy of a histogram, with cumulative
// buckets in Prometheus style (the +Inf bucket equals Count).
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram. Buckets are cumulative; under
// concurrent Observe calls the copy is a consistent-enough monotone
// view (each bucket count is read once, in ascending order).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Sum: h.Sum(), Buckets: make([]Bucket, 0, len(h.bounds)+1)}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		s.Buckets = append(s.Buckets, Bucket{LE: b, Count: cum})
	}
	cum += h.counts[len(h.bounds)].Load()
	s.Buckets = append(s.Buckets, Bucket{LE: math.Inf(1), Count: cum})
	s.Count = cum
	return s
}

// Quantile estimates the q-quantile (0..1) from the snapshot by linear
// interpolation within the holding bucket, Prometheus
// histogram_quantile-style. It returns 0 for an empty snapshot and
// clamps to the last finite bound when the quantile lands in +Inf.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	for i, b := range s.Buckets {
		if float64(b.Count) < rank {
			continue
		}
		if math.IsInf(b.LE, 1) {
			// Overflow bucket: report the last finite edge.
			if i > 0 {
				return s.Buckets[i-1].LE
			}
			return 0
		}
		lo, loCount := 0.0, uint64(0)
		if i > 0 {
			lo, loCount = s.Buckets[i-1].LE, s.Buckets[i-1].Count
		}
		span := float64(b.Count - loCount)
		if span == 0 {
			return b.LE
		}
		return lo + (b.LE-lo)*(rank-float64(loCount))/span
	}
	return s.Buckets[len(s.Buckets)-1].LE
}
