package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// traceWriter serializes JSON-lines trace events to an io.Writer. It
// lives off the hot path: a cell emits at most one event, after its
// simulation has finished, so the mutex and the per-event allocation
// cannot perturb simulation timing or the engine's alloc budgets.
type traceWriter struct {
	w   io.Writer
	enc *json.Encoder
}

// TraceTo routes per-cell trace events to w as JSON lines (one object
// per line); nil disables tracing. Safe on a nil collector.
func (c *Collector) TraceTo(w io.Writer) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trace.w = w
	if w != nil {
		c.trace.enc = json.NewEncoder(w)
	} else {
		c.trace.enc = nil
	}
}

// TraceEvent is one line of the JSON-lines trace. The schema is
// documented in DESIGN.md ("Observability"); fields are stable.
type TraceEvent struct {
	// T is seconds since the collector was created.
	T float64 `json:"t"`
	// Kind discriminates event types; currently always "cell".
	Kind string `json:"kind"`
	// Cell is the cell's canonical label, e.g.
	// "voip/access/short-few/down@64".
	Cell string `json:"cell"`
	// Per-phase wall time in milliseconds.
	BuildMS float64 `json:"build_ms"`
	SimMS   float64 `json:"sim_ms"`
	ScoreMS float64 `json:"score_ms"`
	// Events is the total simulator events the cell fired; Heap the
	// deepest its timer heap ran.
	Events uint64 `json:"events"`
	Heap   int    `json:"heap"`
}

// traceCell emits one cell event if tracing is enabled.
func (c *Collector) traceCell(cell string, d [PhaseCount]time.Duration, m SimMetrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.trace.enc == nil {
		return
	}
	// Encoding errors (e.g. a closed file) silently disable tracing
	// rather than failing the cell: telemetry must never affect results.
	ev := TraceEvent{
		T:       time.Since(c.start).Seconds(),
		Kind:    "cell",
		Cell:    cell,
		BuildMS: float64(d[PhaseBuild]) / 1e6,
		SimMS:   float64(d[PhaseSim]) / 1e6,
		ScoreMS: float64(d[PhaseScore]) / 1e6,
		Events:  m.Events(),
		Heap:    m.HeapHighWater,
	}
	if err := c.trace.enc.Encode(ev); err != nil {
		c.trace.enc = nil
		c.trace.w = nil
	}
}
