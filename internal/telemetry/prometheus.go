package telemetry

import (
	"fmt"
	"io"
	"math"
)

// WritePrometheus renders the collector in the Prometheus text
// exposition format (version 0.0.4), hand-written so the repository
// stays dependency-free. Safe on a nil collector (writes nothing).
func (c *Collector) WritePrometheus(w io.Writer) error {
	if c == nil {
		return nil
	}
	s := c.Snapshot()
	ew := &errWriter{w: w}

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(ew, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(ew, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	fcounter := func(name, help string, v float64) {
		fmt.Fprintf(ew, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}

	counter("qoe_cells_simulated_total", "Cells computed fresh (cache misses).", s.CacheMisses)
	counter("qoe_cache_hits_total", "Cells answered from the session cache.", s.CacheHits)
	counter("qoe_cells_canceled_total", "Cells abandoned by context cancellation.", s.CellsCanceled)
	gauge("qoe_cells_in_flight", "Cells executing right now.", s.CellsInFlight)
	gauge("qoe_cell_queue_depth", "Cells waiting for a worker slot.", s.QueueDepth)
	gauge("qoe_cell_waiters", "Callers blocked on another caller's in-flight cell.", s.Waiters)
	fcounter("qoe_worker_busy_seconds_total", "Wall time workers spent executing cells.", s.WorkerBusySeconds)

	fmt.Fprintf(ew, "# HELP qoe_cell_wall_seconds Wall time per freshly computed cell.\n# TYPE qoe_cell_wall_seconds histogram\n")
	for _, b := range s.CellWall.Buckets {
		le := "+Inf"
		if !math.IsInf(b.LE, 1) {
			le = fmt.Sprintf("%g", b.LE)
		}
		fmt.Fprintf(ew, "qoe_cell_wall_seconds_bucket{le=%q} %d\n", le, b.Count)
	}
	fmt.Fprintf(ew, "qoe_cell_wall_seconds_sum %g\nqoe_cell_wall_seconds_count %d\n", s.CellWall.Sum, s.CellWall.Count)

	counter("qoe_store_hits_total", "Cells answered from the persistent store tier.", s.StoreHits)
	counter("qoe_store_misses_total", "Persistent-store lookups that fell through to a compute.", s.StoreMisses)
	counter("qoe_store_writes_total", "Fresh results accepted by the persistent store.", s.StoreWrites)
	fmt.Fprintf(ew, "# HELP qoe_store_load_seconds Persistent-store lookup latency.\n# TYPE qoe_store_load_seconds histogram\n")
	for _, b := range s.StoreLoad.Buckets {
		le := "+Inf"
		if !math.IsInf(b.LE, 1) {
			le = fmt.Sprintf("%g", b.LE)
		}
		fmt.Fprintf(ew, "qoe_store_load_seconds_bucket{le=%q} %d\n", le, b.Count)
	}
	fmt.Fprintf(ew, "qoe_store_load_seconds_sum %g\nqoe_store_load_seconds_count %d\n", s.StoreLoad.Sum, s.StoreLoad.Count)

	fmt.Fprintf(ew, "# HELP qoe_sim_events_total Simulator events fired, by scheduling tier.\n# TYPE qoe_sim_events_total counter\n")
	fmt.Fprintf(ew, "qoe_sim_events_total{tier=\"closure\"} %d\n", s.Sim.EventsClosure)
	fmt.Fprintf(ew, "qoe_sim_events_total{tier=\"pooled\"} %d\n", s.Sim.EventsPooled)
	fmt.Fprintf(ew, "qoe_sim_events_total{tier=\"arg\"} %d\n", s.Sim.EventsArg)
	fmt.Fprintf(ew, "qoe_sim_events_total{tier=\"owned\"} %d\n", s.Sim.EventsOwned)
	counter("qoe_sim_timer_recycles_total", "Pooled timers returned to the free list.", s.Sim.TimerRecycles)
	counter("qoe_net_packet_recycles_total", "Packets returned to the netem packet pool.", s.Sim.PacketRecycles)
	gauge("qoe_sim_heap_high_water", "Deepest the simulator timer heap ever ran.", int64(s.Sim.HeapHighWater))

	fmt.Fprintf(ew, "# HELP qoe_cell_phase_seconds_total Per-cell wall time by phase.\n# TYPE qoe_cell_phase_seconds_total counter\n")
	for ph := Phase(0); ph < PhaseCount; ph++ {
		fmt.Fprintf(ew, "qoe_cell_phase_seconds_total{phase=%q} %g\n", ph.String(), s.PhaseSeconds[ph.String()])
	}
	counter("qoe_cell_phase_cells_total", "Cells that reported a phase breakdown.", s.PhaseCells)

	fmt.Fprintf(ew, "# HELP qoe_reps_per_cell Repetitions actually run per rep-loop cell.\n# TYPE qoe_reps_per_cell histogram\n")
	for _, b := range s.RepsPerCell.Buckets {
		le := "+Inf"
		if !math.IsInf(b.LE, 1) {
			le = fmt.Sprintf("%g", b.LE)
		}
		fmt.Fprintf(ew, "qoe_reps_per_cell_bucket{le=%q} %d\n", le, b.Count)
	}
	fmt.Fprintf(ew, "qoe_reps_per_cell_sum %g\nqoe_reps_per_cell_count %d\n", s.RepsPerCell.Sum, s.RepsPerCell.Count)
	counter("qoe_cells_stopped_early_total", "Cells halted early by the adaptive-replication CI rule.", s.CellsStoppedEarly)

	counter("qoe_sweep_cells_total", "Sweep cells completed (including cache hits).", s.SweepCells)
	fcounter("qoe_collector_uptime_seconds_total", "Seconds since the collector was created.", s.UptimeSeconds)
	return ew.err
}

// errWriter sticks at the first write error so the metric emitters
// above stay unconditional.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}
