package telemetry

import (
	"sync"
	"time"
)

// Phase indexes the per-cell phase breakdown: building the testbed,
// running the discrete-event simulation, and scoring the result into a
// QoE value.
type Phase int

const (
	PhaseBuild Phase = iota
	PhaseSim
	PhaseScore
	PhaseCount
)

// String returns the phase's trace/metric label.
func (p Phase) String() string {
	switch p {
	case PhaseBuild:
		return "build"
	case PhaseSim:
		return "sim"
	case PhaseScore:
		return "score"
	default:
		return "unknown"
	}
}

// SimMetrics is one cell's worth of simulator-core counters, flushed
// into the Collector after the cell's engines have finished. The sim
// layer keeps these as plain ints (events fire at MHz rates; per-event
// atomics would be measurable) and the experiments layer hands the
// totals over once per cell.
type SimMetrics struct {
	// Events fired, by scheduling tier: heap-allocated closures,
	// pooled/recycled Handler timers, pooled ArgHandler one-shots, and
	// caller-owned reschedulable timers.
	EventsClosure uint64 `json:"events_closure"`
	EventsPooled  uint64 `json:"events_pooled"`
	EventsArg     uint64 `json:"events_arg"`
	EventsOwned   uint64 `json:"events_owned"`
	// TimerRecycles counts pooled timers returned to the free list.
	TimerRecycles uint64 `json:"timer_recycles"`
	// PacketRecycles counts netem packets returned to the packet pool.
	PacketRecycles uint64 `json:"packet_recycles"`
	// HeapHighWater is the deepest the timer heap ever ran.
	HeapHighWater int `json:"heap_high_water"`
}

// Events returns the total events fired across all tiers.
func (m SimMetrics) Events() uint64 {
	return m.EventsClosure + m.EventsPooled + m.EventsArg + m.EventsOwned
}

// Add accumulates another engine's metrics (a cell may run several
// sim engines — e.g. warmup reps — that all report into one total).
func (m *SimMetrics) Add(o SimMetrics) {
	m.EventsClosure += o.EventsClosure
	m.EventsPooled += o.EventsPooled
	m.EventsArg += o.EventsArg
	m.EventsOwned += o.EventsOwned
	m.TimerRecycles += o.TimerRecycles
	m.PacketRecycles += o.PacketRecycles
	if o.HeapHighWater > m.HeapHighWater {
		m.HeapHighWater = o.HeapHighWater
	}
}

// Collector aggregates metrics from every layer of a run. A nil
// *Collector is the disabled state: every method no-ops, so call
// sites gate on a single nil check and pay nothing else. All fields
// are preallocated by New; recording is allocation-free.
//
// One Collector may serve several sessions or sweeps concurrently;
// all methods are safe for concurrent use.
//
//qoe:nilsafe
type Collector struct {
	start time.Time

	// Engine-layer: cell cache and worker pool.
	CacheHits     Counter // cells answered from the session cache
	CacheMisses   Counter // cells computed fresh (simulated)
	CellsCanceled Counter // cells abandoned by context cancellation
	CellsInFlight Gauge   // cells executing right now
	QueueDepth    Gauge   // cells waiting for a worker slot
	Waiters       Gauge   // callers blocked on another caller's in-flight cell
	WorkerBusy    Counter // nanoseconds workers spent executing cells
	CellWall      *Histogram

	// Persistent store tier (zero when no store is attached).
	StoreHits   Counter    // cells answered from the on-disk store
	StoreMisses Counter    // store lookups that fell through to a compute
	StoreWrites Counter    // fresh results accepted for persistence
	StoreLoad   *Histogram // store lookup latency in seconds (hit or miss)

	// Sim-layer totals, flushed per cell via FlushSim.
	EventsClosure  Counter
	EventsPooled   Counter
	EventsArg      Counter
	EventsOwned    Counter
	TimerRecycles  Counter
	PacketRecycles Counter
	HeapHighWater  HighWater

	// Experiments-layer: per-cell phase breakdown.
	PhaseNanos [PhaseCount]Counter
	PhaseCells Counter // cells that reported a phase breakdown

	// Adaptive replication (experiments layer): how many repetitions
	// each rep-loop cell actually ran, and how many cells the CI
	// stopping rule halted before their configured Reps.
	RepsPerCell       *Histogram
	CellsStoppedEarly Counter

	// Facade-layer: sweep progress.
	SweepCells Counter // sweep cells completed (incl. cache hits)

	mu    sync.Mutex
	trace traceWriter
}

// cellWallBounds are the wall-time histogram's upper bucket edges in
// seconds, spanning sub-millisecond cache-adjacent work up to
// multi-second cold cells.
var cellWallBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// storeLoadBounds are the store-lookup latency histogram's upper
// bucket edges in seconds: lookups are an index probe plus at most
// one small file read, so the range spans microseconds to the tens of
// milliseconds a cold page cache can cost.
var storeLoadBounds = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
}

// repsPerCellBounds are the repetitions-per-cell histogram's upper
// bucket edges: small counts resolve exactly (adaptive runs usually
// stop after a handful of reps), larger ones coarsen.
var repsPerCellBounds = []float64{1, 2, 3, 5, 8, 12, 20, 30}

// New creates a live collector. This is where every allocation the
// collector will ever perform happens.
func New() *Collector {
	return &Collector{
		start:       time.Now(),
		CellWall:    NewHistogram(cellWallBounds...),
		StoreLoad:   NewHistogram(storeLoadBounds...),
		RepsPerCell: NewHistogram(repsPerCellBounds...),
	}
}

// Start returns when the collector was created (the trace epoch).
func (c *Collector) Start() time.Time {
	if c == nil {
		return time.Time{}
	}
	return c.start
}

// FlushSim accumulates one cell's simulator counters. Safe on nil.
//
//qoe:hotpath
func (c *Collector) FlushSim(m SimMetrics) {
	if c == nil {
		return
	}
	c.EventsClosure.Add(m.EventsClosure)
	c.EventsPooled.Add(m.EventsPooled)
	c.EventsArg.Add(m.EventsArg)
	c.EventsOwned.Add(m.EventsOwned)
	c.TimerRecycles.Add(m.TimerRecycles)
	c.PacketRecycles.Add(m.PacketRecycles)
	c.HeapHighWater.Observe(int64(m.HeapHighWater))
}

// StartCell begins a per-cell phase clock. On a nil collector it
// returns a clock whose methods all no-op without reading the wall
// clock, so uninstrumented runs stay deterministic and free.
func (c *Collector) StartCell() PhaseClock {
	if c == nil {
		return PhaseClock{}
	}
	return PhaseClock{c: c, last: time.Now()}
}

// PhaseClock tracks one cell's phase breakdown. The zero value is the
// disabled clock: every method no-ops. A PhaseClock is used by one
// goroutine (the cell's worker).
//
//qoe:nilsafe
type PhaseClock struct {
	c    *Collector
	last time.Time
	d    [PhaseCount]time.Duration
}

// Enabled reports whether the clock is recording.
func (p *PhaseClock) Enabled() bool { return p.c != nil }

// Mark closes the current phase: time since the previous Mark (or
// StartCell) is attributed to ph.
func (p *PhaseClock) Mark(ph Phase) {
	if p.c == nil {
		return
	}
	now := time.Now()
	p.d[ph] += now.Sub(p.last)
	p.last = now
}

// Done closes the cell: remaining time is attributed to PhaseScore,
// the phase totals and sim counters are flushed into the collector,
// and a trace event is emitted when tracing is enabled. cell is the
// cell's label (CellSpec.String()).
func (p *PhaseClock) Done(cell string, m SimMetrics) {
	if p.c == nil {
		return
	}
	p.Mark(PhaseScore)
	for ph := Phase(0); ph < PhaseCount; ph++ {
		p.c.PhaseNanos[ph].Add(uint64(p.d[ph]))
	}
	p.c.PhaseCells.Inc()
	p.c.FlushSim(m)
	p.c.traceCell(cell, p.d, m)
}

// Snapshot is a point-in-time copy of every collector metric,
// JSON-serializable (it backs both Session.Metrics and the expvar
// endpoint).
type Snapshot struct {
	// UptimeSeconds is the time since the collector was created.
	UptimeSeconds float64 `json:"uptime_seconds"`

	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	CellsCanceled uint64 `json:"cells_canceled"`
	CellsInFlight int64  `json:"cells_in_flight"`
	QueueDepth    int64  `json:"queue_depth"`
	Waiters       int64  `json:"waiters"`
	// WorkerBusySeconds is the cumulative wall time workers spent
	// executing cells (a utilization numerator).
	WorkerBusySeconds float64      `json:"worker_busy_seconds"`
	CellWall          HistSnapshot `json:"cell_wall_seconds"`

	// Persistent store tier counters and lookup latency.
	StoreHits   uint64       `json:"store_hits"`
	StoreMisses uint64       `json:"store_misses"`
	StoreWrites uint64       `json:"store_writes"`
	StoreLoad   HistSnapshot `json:"store_load_seconds"`

	Sim SimMetrics `json:"sim"`

	// PhaseSeconds maps phase label ("build", "sim", "score") to
	// cumulative seconds across all traced cells.
	PhaseSeconds map[string]float64 `json:"phase_seconds"`
	PhaseCells   uint64             `json:"phase_cells"`

	// Adaptive replication: repetitions run per rep-loop cell and the
	// number of cells the CI stopping rule halted early.
	RepsPerCell       HistSnapshot `json:"reps_per_cell"`
	CellsStoppedEarly uint64       `json:"cells_stopped_early"`

	SweepCells uint64 `json:"sweep_cells"`
}

// Snapshot copies the collector. Safe on nil (returns the zero
// Snapshot).
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	s := Snapshot{
		UptimeSeconds:     time.Since(c.start).Seconds(),
		CacheHits:         c.CacheHits.Value(),
		CacheMisses:       c.CacheMisses.Value(),
		CellsCanceled:     c.CellsCanceled.Value(),
		CellsInFlight:     c.CellsInFlight.Value(),
		QueueDepth:        c.QueueDepth.Value(),
		Waiters:           c.Waiters.Value(),
		WorkerBusySeconds: float64(c.WorkerBusy.Value()) / 1e9,
		CellWall:          c.CellWall.Snapshot(),
		StoreHits:         c.StoreHits.Value(),
		StoreMisses:       c.StoreMisses.Value(),
		StoreWrites:       c.StoreWrites.Value(),
		StoreLoad:         c.StoreLoad.Snapshot(),
		Sim: SimMetrics{
			EventsClosure:  c.EventsClosure.Value(),
			EventsPooled:   c.EventsPooled.Value(),
			EventsArg:      c.EventsArg.Value(),
			EventsOwned:    c.EventsOwned.Value(),
			TimerRecycles:  c.TimerRecycles.Value(),
			PacketRecycles: c.PacketRecycles.Value(),
			HeapHighWater:  int(c.HeapHighWater.Value()),
		},
		PhaseSeconds:      make(map[string]float64, PhaseCount),
		PhaseCells:        c.PhaseCells.Value(),
		RepsPerCell:       c.RepsPerCell.Snapshot(),
		CellsStoppedEarly: c.CellsStoppedEarly.Value(),
		SweepCells:        c.SweepCells.Value(),
	}
	for ph := Phase(0); ph < PhaseCount; ph++ {
		s.PhaseSeconds[ph.String()] = float64(c.PhaseNanos[ph].Value()) / 1e9
	}
	return s
}
