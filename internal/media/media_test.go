package media

import (
	"math"
	"testing"
	"testing/quick"

	"bufferqoe/internal/sim"
)

func TestALawRoundTripAccuracy(t *testing.T) {
	// Companding noise should stay small relative to the signal
	// (G.711 achieves ~38 dB SNR; our continuous model is similar).
	rng := sim.NewRNG(1, "alaw")
	var sig, noise float64
	for i := 0; i < 10000; i++ {
		x := rng.Uniform(-0.8, 0.8)
		y := ALawDecode(ALawEncode(x))
		sig += x * x
		noise += (x - y) * (x - y)
	}
	snr := 10 * math.Log10(sig/noise)
	if snr < 30 {
		t.Fatalf("A-law SNR = %.1f dB, want > 30", snr)
	}
}

func TestALawSignPreserved(t *testing.T) {
	for _, x := range []float64{-0.5, -0.01, 0.01, 0.5} {
		y := ALawDecode(ALawEncode(x))
		if x*y <= 0 {
			t.Fatalf("sign lost: %v -> %v", x, y)
		}
	}
}

func TestALawClamps(t *testing.T) {
	if y := ALawDecode(ALawEncode(2.0)); y > 1.01 {
		t.Fatalf("overrange encode produced %v", y)
	}
}

// Property: decode(encode(x)) stays within the quantization error
// bound and inside [-1, 1].
func TestPropertyALawBounded(t *testing.T) {
	f := func(raw int16) bool {
		x := float64(raw) / 32768
		y := ALawDecode(ALawEncode(x))
		return y >= -1.01 && y <= 1.01 && math.Abs(x-y) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateSpeechShape(t *testing.T) {
	rng := sim.NewRNG(2, "speech")
	pcm := GenerateSpeech(rng, 8.0, 110)
	if len(pcm) != 8*SampleRate {
		t.Fatalf("length = %d, want %d", len(pcm), 8*SampleRate)
	}
	// Signal must be bounded and have both active and quiet regions.
	var peak float64
	active, quiet := 0, 0
	frame := FrameSamples
	for off := 0; off+frame <= len(pcm); off += frame {
		var e float64
		for _, v := range pcm[off : off+frame] {
			if math.Abs(v) > peak {
				peak = math.Abs(v)
			}
			e += v * v
		}
		r := math.Sqrt(e / float64(frame))
		if r > 0.01 {
			active++
		} else {
			quiet++
		}
	}
	if peak > 1.0 {
		t.Fatalf("peak = %v, want <= 1", peak)
	}
	if active < 100 {
		t.Fatalf("too few active frames: %d", active)
	}
	if quiet < 20 {
		t.Fatalf("too few quiet frames: %d (no speech pauses)", quiet)
	}
}

func TestLibrary(t *testing.T) {
	lib := Library(42)
	if len(lib) != 20 {
		t.Fatalf("library size = %d", len(lib))
	}
	male, female := 0, 0
	for _, s := range lib {
		if s.Frames() != 400 { // 8 s at 50 frames/s
			t.Fatalf("%s frames = %d, want 400", s.Name, s.Frames())
		}
		switch s.Voice {
		case "male":
			male++
		case "female":
			female++
		}
		if len(s.Frame(0)) != FrameSamples {
			t.Fatalf("frame size = %d", len(s.Frame(0)))
		}
	}
	if male != 10 || female != 10 {
		t.Fatalf("male/female = %d/%d", male, female)
	}
}

func TestLibraryDeterministic(t *testing.T) {
	a := Library(7)
	b := Library(7)
	for i := range a {
		for j := range a[i].PCM {
			if a[i].PCM[j] != b[i].PCM[j] {
				t.Fatal("library not deterministic")
			}
		}
	}
	c := Library(8)
	if a[0].PCM[100] == c[0].PCM[100] && a[0].PCM[5000] == c[0].PCM[5000] {
		t.Fatal("different seeds gave identical samples")
	}
}
