// Package media provides the audio substrate for the VoIP study:
// synthetic speech-like PCM signals (standing in for the 20 ITU-T
// P.862 Dutch reference samples, which are not redistributable), and a
// real G.711 A-law (PCMA) codec as used by the paper's PjSIP calls.
package media

import "math"

// G.711 A-law companding constants.
const alawA = 87.6

var alawDenom = 1 + math.Log(alawA)

// ALawEncode compresses a sample in [-1, 1] to an 8-bit A-law code
// point (represented as a byte).
func ALawEncode(x float64) byte {
	sign := byte(0x80)
	if x < 0 {
		sign = 0
		x = -x
	}
	if x > 1 {
		x = 1
	}
	var y float64
	if x < 1/alawA {
		y = alawA * x / alawDenom
	} else {
		y = (1 + math.Log(alawA*x)) / alawDenom
	}
	q := byte(y*127 + 0.5)
	return sign | q
}

// ALawDecode expands an 8-bit A-law code point back to [-1, 1].
func ALawDecode(b byte) float64 {
	sign := 1.0
	if b&0x80 == 0 {
		sign = -1
	}
	y := float64(b&0x7f) / 127
	var x float64
	if y < 1/alawDenom {
		x = y * alawDenom / alawA
	} else {
		x = math.Exp(y*alawDenom-1) / alawA
	}
	return sign * x
}

// ALawRoundTrip quantizes a whole signal through the codec, modeling
// the (slight) G.711 quantization distortion of the paper's PCMA
// encoding.
func ALawRoundTrip(pcm []float64) []float64 {
	out := make([]float64, len(pcm))
	for i, x := range pcm {
		out[i] = ALawDecode(ALawEncode(x))
	}
	return out
}
