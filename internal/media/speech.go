package media

import (
	"fmt"
	"math"

	"bufferqoe/internal/sim"
)

// SampleRate is the narrow-band telephony rate used by G.711.
const SampleRate = 8000

// FrameDuration is the paper's RTP packetization interval: one G.711
// frame per 20 ms.
const FrameSamples = SampleRate / 50 // 160 samples per 20 ms

// Sample is one reference speech recording.
type Sample struct {
	Name  string
	Voice string // "male" or "female"
	PCM   []float64
}

// Frames returns the number of whole 20 ms frames in the sample.
func (s *Sample) Frames() int { return len(s.PCM) / FrameSamples }

// Frame returns the i-th 20 ms frame (aliasing the sample buffer).
func (s *Sample) Frame(i int) []float64 {
	return s.PCM[i*FrameSamples : (i+1)*FrameSamples]
}

// GenerateSpeech synthesizes a speech-like signal: alternating voiced
// segments (harmonic stacks with wandering fundamental and formant
// envelope), unvoiced fricative bursts (shaped noise), and pauses —
// the activity structure that makes loss location matter perceptually,
// as in real speech material.
func GenerateSpeech(rng *sim.RNG, seconds float64, f0Base float64) []float64 {
	n := int(seconds * SampleRate)
	out := make([]float64, n)
	pos := 0
	lp := 0.0 // one-pole low-pass state for unvoiced shaping
	for pos < n {
		r := rng.Float64()
		switch {
		case r < 0.5: // voiced
			segN := int(rng.Uniform(0.15, 0.45) * SampleRate)
			f0 := f0Base * rng.Uniform(0.85, 1.15)
			amp := rng.Uniform(0.25, 0.5)
			phase := make([]float64, 8)
			for i := 0; i < segN && pos < n; i, pos = i+1, pos+1 {
				// Slow vibrato on the fundamental.
				f := f0 * (1 + 0.03*math.Sin(2*math.Pi*4*float64(i)/SampleRate))
				env := segmentEnvelope(i, segN)
				v := 0.0
				for h := 1; h <= 8; h++ {
					fh := f * float64(h)
					if fh > SampleRate/2-200 {
						break
					}
					phase[h-1] += 2 * math.Pi * fh / SampleRate
					// Formant-ish spectral tilt: -6 dB/octave with a
					// bump around 500-1500 Hz.
					w := 1 / float64(h)
					if fh > 400 && fh < 1600 {
						w *= 1.8
					}
					v += w * math.Sin(phase[h-1])
				}
				out[pos] = amp * env * v / 3
			}
		case r < 0.72: // unvoiced
			segN := int(rng.Uniform(0.06, 0.2) * SampleRate)
			amp := rng.Uniform(0.04, 0.12)
			for i := 0; i < segN && pos < n; i, pos = i+1, pos+1 {
				noise := rng.Float64()*2 - 1
				// High-pass-ish: difference against low-passed state.
				lp += 0.25 * (noise - lp)
				out[pos] = amp * segmentEnvelope(i, segN) * (noise - lp)
			}
		default: // pause
			segN := int(rng.Uniform(0.1, 0.4) * SampleRate)
			for i := 0; i < segN && pos < n; i, pos = i+1, pos+1 {
				out[pos] = 0.001 * (rng.Float64()*2 - 1) // noise floor
			}
		}
	}
	return out
}

// segmentEnvelope applies a 15 ms attack / 25 ms decay ramp.
func segmentEnvelope(i, n int) float64 {
	const attack = SampleRate * 15 / 1000
	const decay = SampleRate * 25 / 1000
	e := 1.0
	if i < attack {
		e = float64(i) / attack
	}
	if rem := n - i; rem < decay {
		e = math.Min(e, float64(rem)/decay)
	}
	return e
}

// Library synthesizes the stand-in for the ITU-recommended set of 20
// speech samples (P.862 Annex A): 10 male (F0 ~110 Hz) and 10 female
// (F0 ~210 Hz) recordings of eight seconds each, passed through the
// G.711 A-law codec as the paper's error-free references were.
func Library(seed uint64) []*Sample {
	out := make([]*Sample, 0, 20)
	for i := 0; i < 20; i++ {
		voice, f0 := "male", 110.0
		if i%2 == 1 {
			voice, f0 = "female", 210.0
		}
		rng := sim.NewRNG(seed, fmt.Sprintf("speech-%d", i))
		pcm := GenerateSpeech(rng, 8.0, f0)
		out = append(out, &Sample{
			Name:  fmt.Sprintf("sample-%02d-%s", i, voice),
			Voice: voice,
			PCM:   ALawRoundTrip(pcm),
		})
	}
	return out
}
