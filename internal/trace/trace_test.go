package trace

import (
	"testing"
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
	"bufferqoe/internal/tcp"
	"bufferqoe/internal/testbed"
	"bufferqoe/internal/web"
)

// rig builds a two-host path with captures on both directions.
func rig(rate float64, delay time.Duration, qlen int) (*sim.Engine, *tcp.Stack, *tcp.Stack, *Capture, netem.NodeID) {
	eng := sim.New()
	nw := netem.NewNetwork(eng)
	a := nw.NewNode("client")
	b := nw.NewNode("server")
	ab, ba := nw.Connect(a, b, rate, delay, qlen)
	cap := &Capture{}
	cap.Attach(ab)
	cap.Attach(ba)
	return eng, tcp.NewStack(a, tcp.Config{}), tcp.NewStack(b, tcp.Config{}), cap, b.ID
}

func transfer(eng *sim.Engine, client, server *tcp.Stack, serverNode netem.NodeID, n int64, d time.Duration) {
	server.Listen(80, func(c *tcp.Conn) {
		c.OnEstablished = func() { c.Send(n); c.CloseWrite() }
		c.OnPeerClose = func(*tcp.Conn) { c.CloseWrite() }
	})
	cc := client.Dial(netem.Addr{Node: serverNode, Port: 80})
	cc.OnPeerClose = func(*tcp.Conn) { cc.CloseWrite() }
	eng.RunUntil(sim.Time(d))
}

func TestCaptureSeesBothDirections(t *testing.T) {
	eng, client, server, cap, sid := rig(10e6, 10*time.Millisecond, 100)
	transfer(eng, client, server, sid, 100_000, 20*time.Second)
	if len(cap.Records) < 80 {
		t.Fatalf("captured %d records", len(cap.Records))
	}
	dirs := map[netem.Flow]bool{}
	for _, r := range cap.Records {
		dirs[r.Flow] = true
	}
	if len(dirs) != 2 {
		t.Fatalf("saw %d flows, want 2", len(dirs))
	}
}

func TestAnalyzeLossless(t *testing.T) {
	eng, client, server, cap, sid := rig(10e6, 10*time.Millisecond, 1000)
	transfer(eng, client, server, sid, 200_000, 20*time.Second)
	st := cap.Analyze()
	var data *FlowStats
	for _, s := range st {
		if s.DataBytes > 100_000 {
			data = s
		}
	}
	if data == nil {
		t.Fatal("no data flow found")
	}
	if data.Retransmissions != 0 {
		t.Fatalf("lossless flow shows %d retransmissions", data.Retransmissions)
	}
	if data.RTT.N() == 0 {
		t.Fatal("no RTT samples")
	}
	// Vantage point is mid-path: data->ack gap over the bottleneck is
	// bounded by the full RTT (~20 ms + serialization).
	rtt := data.RTT.Median()
	if rtt <= 0 || rtt > 60 {
		t.Fatalf("observer RTT = %v ms", rtt)
	}
}

func TestAnalyzeDetectsRetransmissions(t *testing.T) {
	eng, client, server, cap, sid := rig(2e6, 20*time.Millisecond, 4)
	transfer(eng, client, server, sid, 400_000, 60*time.Second)
	st := cap.Analyze()
	found := false
	for _, s := range st {
		if s.DataBytes > 100_000 && s.Retransmissions > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("4-packet bottleneck produced no detected retransmissions")
	}
}

func TestClassifyPLT(t *testing.T) {
	// 14 RTTs of 60 ms = 840 ms of a 1 s PLT: RTT-dominated.
	if got := ClassifyPLT(time.Second, 60*time.Millisecond, 0); got != RTTDominated {
		t.Fatalf("class = %v", got)
	}
	// 14 RTTs of 50 ms in a 10 s PLT with retransmissions: loss.
	if got := ClassifyPLT(10*time.Second, 50*time.Millisecond, 8); got != LossDominated {
		t.Fatalf("class = %v", got)
	}
	// Slow but no retransmissions and small RTT share: mixed.
	if got := ClassifyPLT(10*time.Second, 50*time.Millisecond, 0); got != Mixed {
		t.Fatalf("class = %v", got)
	}
	if ClassifyPLT(0, time.Second, 0) != Mixed {
		t.Fatal("zero PLT should be mixed")
	}
	if RTTDominated.String() == "" || LossDominated.String() == "" || Mixed.String() == "" {
		t.Fatal("empty class strings")
	}
}

func TestWebFetchClassification(t *testing.T) {
	// Bufferbloat web case (Figure 10b long-few): PLT becomes
	// RTT-dominated at large buffers because the uplink queue inflates
	// every round trip.
	a := testbed.NewAccess(testbed.Config{BufferUp: 256, BufferDown: 64, Seed: 1})
	cap := &Capture{}
	cap.Attach(a.UpLink)
	cap.Attach(a.DownLink)
	a.StartWorkload(testbed.MustSpec(testbed.LookupAccessScenario("long-few", testbed.DirUp)))
	a.Eng.RunFor(8 * time.Second)
	web.RegisterServer(a.MediaServerTCP, web.Port)
	var res *web.Result
	web.Fetch(a.MediaClientTCP, a.MediaServer.Addr(web.Port), 60*time.Second, func(r web.Result) { res = &r })
	a.Eng.RunFor(70 * time.Second)
	if res == nil {
		t.Fatal("no fetch result")
	}
	// The client's own sRTT includes the bloated uplink queue.
	cls := ClassifyPLT(res.PLT, res.SRTT, int(res.Retransmissions))
	if cls == Mixed {
		t.Fatalf("bufferbloat PLT unclassified: plt=%v srtt=%v retx=%d",
			res.PLT, res.SRTT, res.Retransmissions)
	}
}
