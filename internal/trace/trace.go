// Package trace is the reproduction's tcpdump + tcpcsm stand-in
// (paper Section 9.1): it captures packets at a link vantage point,
// estimates per-flow retransmission events and round-trip times from
// the observed segments alone (observer-side, like tcpcsm), and
// classifies page load times as RTT-dominated or loss-dominated.
package trace

import (
	"time"

	"bufferqoe/internal/netem"
	"bufferqoe/internal/sim"
	"bufferqoe/internal/stats"
	"bufferqoe/internal/tcp"
)

// Record is one captured packet (only TCP segments are recorded).
type Record struct {
	At   sim.Time
	Flow netem.Flow
	Size int
	Seq  int64
	Ack  int64
	Len  int
	SYN  bool
	FIN  bool
}

// Capture accumulates records from one or more link taps.
type Capture struct {
	Records []Record
}

// Attach installs the capture as the link's tap. Multiple links can
// feed one capture (e.g. both bottleneck directions).
func (c *Capture) Attach(l *netem.Link) {
	prev := l.Tap
	l.Tap = func(p *netem.Packet, at sim.Time) {
		if prev != nil {
			prev(p, at)
		}
		seg, ok := p.Payload.(*tcp.Segment)
		if !ok {
			return
		}
		c.Records = append(c.Records, Record{
			At:   at,
			Flow: p.Flow,
			Size: p.Size,
			Seq:  seg.Seq,
			Ack:  seg.Ack,
			Len:  seg.Len,
			SYN:  seg.SYN,
			FIN:  seg.FIN,
		})
	}
}

// FlowStats summarizes one unidirectional TCP flow seen at the
// vantage point.
type FlowStats struct {
	Flow    netem.Flow
	Packets int
	Bytes   int64
	// DataBytes counts payload bytes including retransmitted copies.
	DataBytes int64
	// Retransmissions counts data segments whose range was already
	// covered by a previously observed segment (the tcpcsm
	// heuristic).
	Retransmissions int
	// RTT collects data->ack matching samples in milliseconds,
	// excluding retransmitted ranges (Karn's rule at the observer).
	RTT stats.Sample
	// FirstAt / LastAt bound the flow's activity window.
	FirstAt, LastAt sim.Time
}

// flowState is the per-flow analysis scratchpad.
type flowState struct {
	st       *FlowStats
	highSeq  int64            // highest end-of-data observed
	outstand map[int64]outSeg // end-of-range -> send record
}

type outSeg struct {
	at   sim.Time
	retx bool
}

// Analyze walks the capture and returns per-flow statistics keyed by
// the data-direction flow.
func (c *Capture) Analyze() map[netem.Flow]*FlowStats {
	flows := map[netem.Flow]*flowState{}
	get := func(f netem.Flow) *flowState {
		fs, ok := flows[f]
		if !ok {
			fs = &flowState{
				st:       &FlowStats{Flow: f},
				outstand: map[int64]outSeg{},
			}
			flows[f] = fs
		}
		return fs
	}
	for _, r := range c.Records {
		fs := get(r.Flow)
		st := fs.st
		if st.Packets == 0 {
			st.FirstAt = r.At
		}
		st.LastAt = r.At
		st.Packets++
		st.Bytes += int64(r.Size)
		if r.Len > 0 {
			st.DataBytes += int64(r.Len)
			end := r.Seq + int64(r.Len)
			retx := end <= fs.highSeq || r.Seq < fs.highSeq
			if retx {
				st.Retransmissions++
			}
			if end > fs.highSeq {
				fs.highSeq = end
			}
			fs.outstand[end] = outSeg{at: r.At, retx: retx}
		}
		// Ack matching for the reverse flow's outstanding data.
		if rev, ok := flows[r.Flow.Reverse()]; ok && r.Ack > 0 {
			if o, ok := rev.outstand[r.Ack]; ok {
				if !o.retx {
					rev.st.RTT.Add(r.At.Sub(o.at).Seconds() * 1000)
				}
				delete(rev.outstand, r.Ack)
			}
		}
	}
	out := make(map[netem.Flow]*FlowStats, len(flows))
	for f, fs := range flows {
		out[f] = fs.st
	}
	return out
}

// PLTClass is the paper's decomposition of page load times.
type PLTClass int

// PLT classes (Section 9.1).
const (
	// RTTDominated: a significant portion of the PLT is the 14*RTT
	// structural component.
	RTTDominated PLTClass = iota
	// LossDominated: the PLT increase is mainly TCP retransmissions.
	LossDominated
	// Mixed: neither clearly dominates.
	Mixed
)

func (c PLTClass) String() string {
	switch c {
	case RTTDominated:
		return "rtt-dominated"
	case LossDominated:
		return "loss-dominated"
	default:
		return "mixed"
	}
}

// PageRTTs is the paper's structural round-trip count for the static
// page ("loaded within 14 RTTs, including TCP setup and teardown").
const PageRTTs = 14

// ClassifyPLT decomposes a page load time using the measured
// during-transfer RTT and the observed retransmission count.
func ClassifyPLT(plt time.Duration, meanRTT time.Duration, retransmissions int) PLTClass {
	if plt <= 0 {
		return Mixed
	}
	rttComponent := time.Duration(PageRTTs) * meanRTT
	frac := float64(rttComponent) / float64(plt)
	switch {
	case frac >= 0.6:
		return RTTDominated
	case retransmissions > 0:
		return LossDominated
	default:
		return Mixed
	}
}
