// Package stats provides the descriptive statistics used throughout the
// reproduction: streaming mean/variance, sample quantiles, time-weighted
// averages, linear and logarithmic histograms (for the PDF plots of
// Figure 1), two-dimensional histograms (Figure 1b), and five-number
// boxplot summaries (Figure 5).
package stats

import (
	"math"
	"sort"
)

// Welford accumulates a streaming mean and variance using Welford's
// online algorithm. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Reset clears the accumulator for reuse.
func (w *Welford) Reset() { *w = Welford{} }

// Mean returns the sample mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 if fewer than two
// observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 if empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 if empty).
func (w *Welford) Max() float64 { return w.max }

// Sample collects raw observations for quantile queries. The zero value
// is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Reset drops all observations but keeps the backing array, so a
// scratch-pooled sample refills without reallocating.
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.sorted = false
}

// Values returns the observations in sorted order. The returned slice
// is owned by the Sample; callers must not modify it.
func (s *Sample) Values() []float64 {
	s.sort()
	return s.xs
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-th sample quantile (0 <= q <= 1) using linear
// interpolation between order statistics. It returns 0 for an empty
// sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Mean returns the sample mean.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// FracBelow reports the fraction of observations strictly less than x.
func (s *Sample) FracBelow(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	i := sort.SearchFloat64s(s.xs, x)
	return float64(i) / float64(len(s.xs))
}

// FracAbove reports the fraction of observations greater than x.
func (s *Sample) FracAbove(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	i := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(len(s.xs)-i) / float64(len(s.xs))
}

// Boxplot is a five-number summary with 1.5-IQR whiskers, matching the
// boxplots of Figure 5.
type Boxplot struct {
	Min, Q1, Median, Q3, Max float64
	WhiskerLo, WhiskerHi     float64
	N                        int
}

// BoxplotOf summarizes a sample.
func BoxplotOf(s *Sample) Boxplot {
	if s.N() == 0 {
		return Boxplot{}
	}
	b := Boxplot{
		Min:    s.Quantile(0),
		Q1:     s.Quantile(0.25),
		Median: s.Quantile(0.5),
		Q3:     s.Quantile(0.75),
		Max:    s.Quantile(1),
		N:      s.N(),
	}
	iqr := b.Q3 - b.Q1
	b.WhiskerLo = math.Max(b.Min, b.Q1-1.5*iqr)
	b.WhiskerHi = math.Min(b.Max, b.Q3+1.5*iqr)
	return b
}

// TimeWeighted tracks a piecewise-constant signal (e.g. queue
// occupancy) and computes its time-weighted mean and maximum.
type TimeWeighted struct {
	started  bool
	lastT    float64
	lastV    float64
	integral float64
	elapsed  float64
	max      float64
	sampled  bool
}

// Set records that the signal has value v from time t (seconds) onward.
// Calls must have non-decreasing t.
func (tw *TimeWeighted) Set(t, v float64) {
	if tw.started {
		dt := t - tw.lastT
		if dt > 0 {
			tw.integral += tw.lastV * dt
			tw.elapsed += dt
		}
	}
	tw.started = true
	tw.lastT = t
	tw.lastV = v
	if !tw.sampled || v > tw.max {
		tw.max = v
		tw.sampled = true
	}
}

// Reset clears the tracker for reuse.
func (tw *TimeWeighted) Reset() { *tw = TimeWeighted{} }

// Finish closes the observation window at time t.
func (tw *TimeWeighted) Finish(t float64) {
	if tw.started {
		tw.Set(t, tw.lastV)
	}
}

// Mean returns the time-weighted mean over the observed window.
func (tw *TimeWeighted) Mean() float64 {
	if tw.elapsed == 0 {
		return tw.lastV
	}
	return tw.integral / tw.elapsed
}

// Max returns the maximum observed value.
func (tw *TimeWeighted) Max() float64 { return tw.max }
