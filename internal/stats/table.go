package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned ASCII tables; the experiment harness uses it
// to print paper-style tables and heatmap grids.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
