package stats

import (
	"fmt"
	"math"
	"strings"
)

// Hist is a fixed-range linear histogram. Out-of-range observations are
// clamped into the first/last bin so no mass is lost.
type Hist struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHist creates a histogram over [lo, hi) with n bins.
func NewHist(lo, hi float64, n int) *Hist {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram range")
	}
	return &Hist{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one observation.
func (h *Hist) Add(x float64) {
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// N returns the number of observations.
func (h *Hist) N() int { return h.total }

// PDF returns the probability density per bin (fraction / bin width).
func (h *Hist) PDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total) / w
	}
	return out
}

// BinCenter returns the midpoint of bin i.
func (h *Hist) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// LogHist bins the base-10 logarithm of positive observations; it is
// the shape of the RTT/queueing-delay PDFs of Figure 1 ("PDF of the
// logarithm of ...").
type LogHist struct {
	h *Hist
}

// NewLogHist covers [lo, hi] (in linear units, lo > 0) with n
// logarithmically spaced bins.
func NewLogHist(lo, hi float64, n int) *LogHist {
	if lo <= 0 {
		panic("stats: LogHist requires lo > 0")
	}
	return &LogHist{h: NewHist(math.Log10(lo), math.Log10(hi), n)}
}

// Add records one observation; non-positive values are clamped to the
// lowest bin.
func (l *LogHist) Add(x float64) {
	if x <= 0 {
		l.h.Add(l.h.Lo)
		return
	}
	l.h.Add(math.Log10(x))
}

// N returns the number of observations.
func (l *LogHist) N() int { return l.h.N() }

// PDF returns density per log10 unit for each bin.
func (l *LogHist) PDF() []float64 { return l.h.PDF() }

// BinCenter returns the linear-unit center of bin i.
func (l *LogHist) BinCenter(i int) float64 {
	return math.Pow(10, l.h.BinCenter(i))
}

// Bins returns the number of bins.
func (l *LogHist) Bins() int { return len(l.h.Counts) }

// Mode returns the linear-unit center of the most populated bin.
func (l *LogHist) Mode() float64 {
	best := 0
	for i, c := range l.h.Counts {
		if c > l.h.Counts[best] {
			best = i
		}
	}
	return l.BinCenter(best)
}

// Hist2D is a two-dimensional histogram with logarithmic axes, as in
// the min-vs-max RTT density plot of Figure 1b.
type Hist2D struct {
	XLo, XHi, YLo, YHi float64
	NX, NY             int
	Counts             [][]int
	total              int
}

// NewHist2D creates an nx-by-ny log-axis 2D histogram over the given
// (linear-unit) ranges.
func NewHist2D(xlo, xhi, ylo, yhi float64, nx, ny int) *Hist2D {
	if xlo <= 0 || ylo <= 0 {
		panic("stats: Hist2D requires positive ranges (log axes)")
	}
	c := make([][]int, ny)
	for i := range c {
		c[i] = make([]int, nx)
	}
	return &Hist2D{XLo: xlo, XHi: xhi, YLo: ylo, YHi: yhi, NX: nx, NY: ny, Counts: c}
}

func logIndex(v, lo, hi float64, n int) int {
	if v <= 0 {
		return 0
	}
	i := int(float64(n) * (math.Log10(v) - math.Log10(lo)) / (math.Log10(hi) - math.Log10(lo)))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Add records one (x, y) observation.
func (h *Hist2D) Add(x, y float64) {
	ix := logIndex(x, h.XLo, h.XHi, h.NX)
	iy := logIndex(y, h.YLo, h.YHi, h.NY)
	h.Counts[iy][ix]++
	h.total++
}

// N returns the number of observations.
func (h *Hist2D) N() int { return h.total }

// FracOnDiagonal reports the fraction of mass within +-band bins of the
// x==y diagonal (requires NX == NY); used to quantify how far max RTT
// deviates from min RTT.
func (h *Hist2D) FracOnDiagonal(band int) float64 {
	if h.total == 0 || h.NX != h.NY {
		return 0
	}
	on := 0
	for iy := range h.Counts {
		for ix, c := range h.Counts[iy] {
			if abs(ix-iy) <= band {
				on += c
			}
		}
	}
	return float64(on) / float64(h.total)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// RenderASCII draws the 2D histogram as a density grid using a
// character ramp, dense enough for eyeballing Figure 1b in a terminal.
func (h *Hist2D) RenderASCII() string {
	ramp := " .:-=+*#%@"
	max := 0
	for _, row := range h.Counts {
		for _, c := range row {
			if c > max {
				max = c
			}
		}
	}
	var b strings.Builder
	for iy := h.NY - 1; iy >= 0; iy-- {
		for ix := 0; ix < h.NX; ix++ {
			c := h.Counts[iy][ix]
			lvl := 0
			if max > 0 && c > 0 {
				lvl = 1 + int(float64(len(ramp)-2)*math.Log1p(float64(c))/math.Log1p(float64(max)))
				if lvl >= len(ramp) {
					lvl = len(ramp) - 1
				}
			}
			b.WriteByte(ramp[lvl])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SparklinePDF renders a small ASCII sketch of a PDF (for CLI output).
func SparklinePDF(pdf []float64) string {
	ramp := []rune("▁▂▃▄▅▆▇█")
	max := 0.0
	for _, v := range pdf {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return strings.Repeat("▁", len(pdf))
	}
	var b strings.Builder
	for _, v := range pdf {
		i := int(v / max * float64(len(ramp)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(ramp) {
			i = len(ramp) - 1
		}
		b.WriteRune(ramp[i])
	}
	return b.String()
}

// FormatFloat renders a float compactly (e.g. for heatmap cells):
// values >= 100 without decimals, >= 10 with one, otherwise two.
func FormatFloat(v float64) string {
	switch {
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
