package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	// population variance is 4; sample variance is 32/7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("var = %v, want %v", w.Var(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Std() != 0 {
		t.Fatal("empty Welford not zero")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Var() != 0 {
		t.Fatalf("single-obs mean/var = %v/%v", w.Mean(), w.Var())
	}
}

func TestQuantile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("median = %v, want 50.5", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v", got)
	}
	if got := s.Quantile(0.25); math.Abs(got-25.75) > 1e-9 {
		t.Fatalf("q25 = %v, want 25.75", got)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var s Sample
	if s.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestFracBelowAbove(t *testing.T) {
	var s Sample
	for i := 0; i < 10; i++ {
		s.Add(float64(i * 10)) // 0,10,...,90
	}
	if got := s.FracBelow(50); got != 0.5 {
		t.Fatalf("FracBelow(50) = %v, want 0.5", got)
	}
	if got := s.FracAbove(50); got != 0.4 {
		t.Fatalf("FracAbove(50) = %v, want 0.4", got)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		var s Sample
		ok := false
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				s.Add(x)
				ok = true
			}
		}
		if !ok {
			return true
		}
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		qa, qb := s.Quantile(a), s.Quantile(b)
		return qa <= qb && qa >= s.Quantile(0) && qb <= s.Quantile(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxplot(t *testing.T) {
	var s Sample
	for i := 1; i <= 11; i++ {
		s.Add(float64(i))
	}
	b := BoxplotOf(&s)
	if b.Median != 6 {
		t.Fatalf("median = %v", b.Median)
	}
	if b.Q1 != 3.5 || b.Q3 != 8.5 {
		t.Fatalf("quartiles = %v/%v", b.Q1, b.Q3)
	}
	if b.Min != 1 || b.Max != 11 {
		t.Fatalf("extremes = %v/%v", b.Min, b.Max)
	}
	if b.N != 11 {
		t.Fatalf("N = %d", b.N)
	}
}

func TestTimeWeighted(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 0)
	tw.Set(1, 10) // value 0 for [0,1)
	tw.Set(3, 0)  // value 10 for [1,3)
	tw.Finish(4)  // value 0 for [3,4)
	// mean = (0*1 + 10*2 + 0*1)/4 = 5
	if got := tw.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("time-weighted mean = %v, want 5", got)
	}
	if tw.Max() != 10 {
		t.Fatalf("max = %v", tw.Max())
	}
}

func TestHistPDFIntegratesToOne(t *testing.T) {
	h := NewHist(0, 10, 20)
	r := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 10000; i++ {
		h.Add(r.Float64() * 10)
	}
	pdf := h.PDF()
	w := 0.5
	sum := 0.0
	for _, p := range pdf {
		sum += p * w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("pdf integral = %v, want 1", sum)
	}
}

func TestHistClamping(t *testing.T) {
	h := NewHist(0, 10, 10)
	h.Add(-5)
	h.Add(15)
	if h.Counts[0] != 1 || h.Counts[9] != 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
}

func TestLogHist(t *testing.T) {
	l := NewLogHist(1, 10000, 40)
	for i := 0; i < 100; i++ {
		l.Add(100)
	}
	if l.N() != 100 {
		t.Fatalf("N = %d", l.N())
	}
	if mode := l.Mode(); mode < 50 || mode > 200 {
		t.Fatalf("mode = %v, want ~100", mode)
	}
	// Non-positive values must not panic and land in the lowest bin.
	l.Add(0)
	l.Add(-3)
	if l.N() != 102 {
		t.Fatalf("N after clamped adds = %d", l.N())
	}
}

func TestHist2D(t *testing.T) {
	h := NewHist2D(1, 1000, 1, 1000, 30, 30)
	// Mass exactly on the diagonal.
	for i := 0; i < 100; i++ {
		h.Add(50, 50)
	}
	if f := h.FracOnDiagonal(0); f != 1 {
		t.Fatalf("diagonal fraction = %v, want 1", f)
	}
	// Off-diagonal mass: max >> min.
	for i := 0; i < 100; i++ {
		h.Add(10, 900)
	}
	if f := h.FracOnDiagonal(1); f >= 1 {
		t.Fatalf("diagonal fraction should drop, got %v", f)
	}
	if h.N() != 200 {
		t.Fatalf("N = %d", h.N())
	}
	if out := h.RenderASCII(); len(out) == 0 {
		t.Fatal("empty render")
	}
}

func TestSparkline(t *testing.T) {
	out := SparklinePDF([]float64{0, 1, 2, 3})
	if out == "" {
		t.Fatal("empty sparkline")
	}
	if SparklinePDF([]float64{0, 0}) == "" {
		t.Fatal("empty sparkline for zero pdf")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b")
	out := tb.String()
	if out == "" {
		t.Fatal("empty table")
	}
	if len(out) < 20 {
		t.Fatalf("table too short: %q", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		123.456: "123",
		12.345:  "12.3",
		1.234:   "1.23",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Fatalf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
