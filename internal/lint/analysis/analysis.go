// Package analysis is a minimal, dependency-free core of the
// golang.org/x/tools/go/analysis API, just large enough to host the
// qoelint analyzers. The build environment is hermetic (no module
// proxy), so the real framework cannot be vendored; this package keeps
// the analyzers source-compatible with it — an Analyzer here has the
// same Name/Doc/Run shape and a Pass carries the same
// Fset/Files/Pkg/TypesInfo/Report fields — so they can migrate to the
// upstream framework by changing one import path if the dependency
// ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name is the identifier used in
// diagnostics and suppression comments (`//lint:allow qoelint/<Name>`),
// Doc the one-paragraph contract shown by `qoelint -analyzers`.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// Diagnostic is one finding, positioned inside Pass.Fset.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
