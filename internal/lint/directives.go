package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //qoe:<name> [args...] source annotation.
// Annotations live in the doc comment of the declaration they govern
// (function, type, or struct field).
type directive struct {
	name string // "hotpath", "encodes", "notaxis", "nilsafe"
	args []string
	pos  token.Pos
}

const directivePrefix = "qoe:"

// directivesIn parses the //qoe: directives of the given comment
// groups (nil groups are fine).
func directivesIn(groups ...*ast.CommentGroup) []directive {
	var out []directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			// A "//" token ends the directive: everything after it is
			// commentary (the golden tests use it for want markers).
			fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
			for i, f := range fields {
				if f == "//" {
					fields = fields[:i]
					break
				}
			}
			if len(fields) == 0 {
				continue
			}
			out = append(out, directive{name: fields[0], args: fields[1:], pos: c.Pos()})
		}
	}
	return out
}

// hasDirective reports whether any group carries //qoe:<name>.
func hasDirective(name string, groups ...*ast.CommentGroup) bool {
	for _, d := range directivesIn(groups...) {
		if d.name == name {
			return true
		}
	}
	return false
}

// simCoreSuffixes are the packages whose code feeds simulation
// outcomes and cache/store addresses: anything nondeterministic there
// breaks CRN seed pairing, bit-identical replay, or content
// addressing.
var simCoreSuffixes = []string{
	"internal/sim",
	"internal/netem",
	"internal/tcp",
	"internal/mac",
	"internal/engine",
	"internal/store",
	"internal/testbed",
}

// isSimCore reports whether the import path is one of the simulator
// core packages. Matching is by path suffix on a segment boundary so
// the golden-test modules under testdata/ qualify the same way the
// real module does.
func isSimCore(path string) bool {
	for _, s := range simCoreSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
