// Package linttest is a miniature analysistest: it loads a golden
// module under testdata/, runs qoelint analyzers over it, applies the
// //lint:allow suppression filter (suppression behavior is part of
// what the golden files pin), and diffs the surviving findings against
// `want` expectations written in the source.
//
// An expectation is a comment containing the word `want` followed by
// one or more quoted regular expressions:
//
//	time.Now() // want `time\.Now reads the wall clock`
//
// Every finding must match an expectation on its exact line, and every
// expectation must be consumed by a finding. Backquoted and
// double-quoted forms are both accepted.
package linttest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"bufferqoe/internal/lint"
	"bufferqoe/internal/lint/analysis"
)

// expectation is one `want` regex at a file:line.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the module rooted at dir, applies the analyzers, and
// reports any mismatch between findings and want expectations.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgs, err := lint.Load(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	wants := make(map[string]map[int][]*expectation) // file -> line -> expectations
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, group := range file.Comments {
				for _, c := range group.List {
					pos := pkg.Fset.Position(c.Pos())
					for _, re := range parseWant(t, pos.String(), c.Text) {
						if wants[pos.Filename] == nil {
							wants[pos.Filename] = make(map[int][]*expectation)
						}
						wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &expectation{re: re})
					}
				}
			}
		}
	}

	for _, f := range findings {
		exps := wants[f.Pos.Filename][f.Pos.Line]
		ok := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(f.Message) {
				e.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for file, lines := range wants {
		for line, exps := range lines {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: no finding matched want %q", file, line, e.re)
				}
			}
		}
	}
}

// wantRe locates the expectation marker inside a comment.
var wantRe = regexp.MustCompile(`(?:^|\s)want\s+(.*)`)

// parseWant extracts the quoted regexes of a want comment (nil when
// the comment carries no marker).
func parseWant(t *testing.T, pos, comment string) []*regexp.Regexp {
	t.Helper()
	text := strings.TrimPrefix(comment, "//")
	m := wantRe.FindStringSubmatch(text)
	if m == nil {
		return nil
	}
	var out []*regexp.Regexp
	rest := strings.TrimSpace(m[1])
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			t.Fatalf("%s: malformed want expectation %q (expected quoted regexps)", pos, comment)
		}
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("%s: malformed want expectation %q: %v", pos, comment, err)
		}
		lit, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s: malformed want expectation %q: %v", pos, comment, err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, lit, err)
		}
		out = append(out, re)
		rest = strings.TrimSpace(rest[len(q):])
	}
	return out
}
