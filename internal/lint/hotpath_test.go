package lint_test

import (
	"testing"

	"bufferqoe/internal/lint"
	"bufferqoe/internal/lint/linttest"
)

func TestHotpath(t *testing.T) {
	linttest.Run(t, "testdata/hotpath", lint.Hotpath)
}
