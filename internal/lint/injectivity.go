package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"bufferqoe/internal/lint/analysis"
)

// Injectivity checks that canonical encoding functions read every
// field of the axis structs they claim to encode. The engine's cache,
// the CRN seed derivation and the persistent content-addressed store
// all key on rendered encodings (CellSpec.Key, the Link/Workload
// tags): a field that exists on the struct but never enters its
// encoding makes the encoding non-injective, and two cells differing
// only in that field silently collapse onto one cache entry — the
// worst possible failure mode, because it poisons results instead of
// crashing.
var Injectivity = &analysis.Analyzer{
	Name: "injectivity",
	Doc: `canonical encodings must read every axis field

A function annotated

	//qoe:encodes T [T2 ...]

declares itself the canonical encoding of struct type T (package-local
"T" or imported "pkg.T"). The analyzer collects every struct field
read by the function and the package-local functions it (transitively)
references, and reports any field of T the encoding never touches.
Deliberately unencoded fields are declared either on the field
("//qoe:notaxis <reason>") or on the encoder
("//qoe:notaxis T.Field <reason>" for imported types); both forms
require a reason.`,
	Run: runInjectivity,
}

func runInjectivity(pass *analysis.Pass) (any, error) {
	decls := make(map[*types.Func]*ast.FuncDecl)
	var encoders []*ast.FuncDecl
	excluded := make(map[types.Object]bool)
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if fn, ok := pass.TypesInfo.Defs[d.Name].(*types.Func); ok {
					decls[fn] = d
				}
				if hasDirective("encodes", d.Doc) {
					encoders = append(encoders, d)
				}
			case *ast.GenDecl:
				collectFieldExclusions(pass, d, excluded)
			}
		}
	}
	for _, enc := range encoders {
		checkEncoder(pass, enc, decls, excluded)
	}
	return nil, nil
}

// collectFieldExclusions records struct fields annotated
// `//qoe:notaxis <reason>` on their declaration.
func collectFieldExclusions(pass *analysis.Pass, d *ast.GenDecl, excluded map[types.Object]bool) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			for _, dir := range directivesIn(field.Doc, field.Comment) {
				if dir.name != "notaxis" {
					continue
				}
				if len(dir.args) == 0 {
					pass.Reportf(dir.pos, "//qoe:notaxis on a field requires a reason explaining why the field is not a cache axis")
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						excluded[obj] = true
					}
				}
			}
		}
	}
}

// checkEncoder verifies one annotated encoding function against its
// declared axis structs.
func checkEncoder(pass *analysis.Pass, enc *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl, excluded map[types.Object]bool) {
	// Encoder-side exclusions: //qoe:notaxis T.Field <reason>.
	funcExcl := make(map[string]bool) // "T.Field" -> excluded
	var targets []directive
	for _, dir := range directivesIn(enc.Doc) {
		switch dir.name {
		case "encodes":
			targets = append(targets, dir)
		case "notaxis":
			if len(dir.args) < 2 {
				pass.Reportf(dir.pos, "//qoe:notaxis on an encoder takes a field (T.Field or pkg.T.Field) and a reason")
				continue
			}
			ref := dir.args[0]
			if parts := strings.Split(ref, "."); len(parts) >= 2 {
				funcExcl[parts[len(parts)-2]+"."+parts[len(parts)-1]] = true
			}
		}
	}

	covered := coveredFields(pass, enc, decls)
	for _, dir := range targets {
		if len(dir.args) == 0 {
			pass.Reportf(dir.pos, "//qoe:encodes requires at least one struct type (T or pkg.T)")
			continue
		}
		for _, ref := range dir.args {
			named, err := resolveTypeRef(pass, ref)
			if err != nil {
				pass.Reportf(dir.pos, "//qoe:encodes %s: %v", ref, err)
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				pass.Reportf(dir.pos, "//qoe:encodes %s: not a struct type", ref)
				continue
			}
			typeName := named.Obj().Name()
			for i := 0; i < st.NumFields(); i++ {
				fld := st.Field(i)
				if fld.Name() == "_" || excluded[fld] || funcExcl[typeName+"."+fld.Name()] {
					continue
				}
				if !covered[fld] {
					pass.Reportf(enc.Name.Pos(),
						"%s.%s is never read by canonical encoding %s or its local callees: two specs differing only in %s would collide on one cache/store entry; encode the field or mark it //qoe:notaxis with a reason",
						typeName, fld.Name(), enc.Name.Name, fld.Name())
				}
			}
		}
	}
}

// coveredFields walks the encoder and every package-local function it
// transitively references, returning the set of struct-field objects
// those bodies read (selectors and keyed composite literals both
// resolve to field objects in Uses).
func coveredFields(pass *analysis.Pass, enc *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) map[types.Object]bool {
	covered := make(map[types.Object]bool)
	seen := map[*ast.FuncDecl]bool{enc: true}
	queue := []*ast.FuncDecl{enc}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		ast.Inspect(d, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			switch obj := pass.TypesInfo.Uses[id].(type) {
			case *types.Var:
				if obj.IsField() {
					covered[obj] = true
				}
			case *types.Func:
				if obj.Pkg() == pass.Pkg {
					if dd, ok := decls[obj]; ok && !seen[dd] {
						seen[dd] = true
						queue = append(queue, dd)
					}
				}
			}
			return true
		})
	}
	return covered
}

// resolveTypeRef resolves "T" in the current package or "pkg.T" in a
// directly imported package to its named type.
func resolveTypeRef(pass *analysis.Pass, ref string) (*types.Named, error) {
	var obj types.Object
	if pkgName, typeName, ok := strings.Cut(ref, "."); ok {
		for _, imp := range pass.Pkg.Imports() {
			if imp.Name() == pkgName {
				obj = imp.Scope().Lookup(typeName)
				break
			}
		}
		if obj == nil {
			return nil, fmt.Errorf("cannot resolve %s in the imports of %s", ref, pass.Pkg.Path())
		}
	} else {
		if obj = pass.Pkg.Scope().Lookup(ref); obj == nil {
			return nil, fmt.Errorf("no type %s in package %s", ref, pass.Pkg.Path())
		}
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, fmt.Errorf("%s is not a type", ref)
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil, fmt.Errorf("%s is not a named type", ref)
	}
	return named, nil
}
