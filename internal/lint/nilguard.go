package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"bufferqoe/internal/lint/analysis"
)

// Nilguard enforces the telemetry fast-path contract: a nil collector
// is the disabled state, and every exported method on a type annotated
// //qoe:nilsafe must begin with a nil guard so that uninstrumented
// runs pay exactly one predicted branch — no wall-clock reads, no
// allocations, no field touches. The ≤3% telemetry overhead gate in CI
// measures this property; the analyzer pins the code shape that
// delivers it.
var Nilguard = &analysis.Analyzer{
	Name: "nilguard",
	Doc: `exported methods on //qoe:nilsafe types must nil-guard first

For a type declared with a //qoe:nilsafe annotation, every exported
pointer-receiver method must begin with

	if r == nil { return ... }      // or
	if r.field == nil { return ... }

before any other work (a single return statement that only evaluates a
nil comparison, like "return p.c != nil", also qualifies). This keeps
the disabled-telemetry path allocation- and clock-free by
construction.`,
	Run: runNilguard,
}

func runNilguard(pass *analysis.Pass) (any, error) {
	// Collect //qoe:nilsafe types.
	nilsafe := make(map[*types.TypeName]bool)
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				docs := []*ast.CommentGroup{ts.Doc, ts.Comment}
				if len(gd.Specs) == 1 {
					docs = append(docs, gd.Doc)
				}
				if hasDirective("nilsafe", docs...) {
					if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
						nilsafe[tn] = true
					}
				}
			}
		}
	}
	if len(nilsafe) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			recv, tn := receiverOf(pass, fn)
			if tn == nil || !nilsafe[tn] {
				continue
			}
			if recv == "" {
				pass.Reportf(fn.Name.Pos(), "exported method %s on //qoe:nilsafe type %s has an anonymous receiver, so it cannot nil-guard; name the receiver", fn.Name.Name, tn.Name())
				continue
			}
			if !startsWithNilGuard(fn, recv) {
				pass.Reportf(fn.Name.Pos(), "exported method %s on //qoe:nilsafe type %s must begin with a nil guard (if %s == nil { return ... }) before any other work", fn.Name.Name, tn.Name(), recv)
			}
		}
	}
	return nil, nil
}

// receiverOf returns the receiver name and the named type of a
// pointer-receiver method, or ("", nil) for value receivers and
// unresolvable types.
func receiverOf(pass *analysis.Pass, fn *ast.FuncDecl) (string, *types.TypeName) {
	field := fn.Recv.List[0]
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return "", nil // value receiver: a nil pointer cannot reach it as such
	}
	id, ok := ast.Unparen(star.X).(*ast.Ident)
	if !ok {
		return "", nil
	}
	tn, _ := pass.TypesInfo.Uses[id].(*types.TypeName)
	if tn == nil {
		return "", nil
	}
	if len(field.Names) == 0 || field.Names[0].Name == "_" {
		return "", tn
	}
	return field.Names[0].Name, tn
}

// startsWithNilGuard reports whether the method body opens with an
// accepted nil-guard shape for receiver recv.
func startsWithNilGuard(fn *ast.FuncDecl, recv string) bool {
	if len(fn.Body.List) == 0 {
		return true // empty body does no work
	}
	switch s := fn.Body.List[0].(type) {
	case *ast.IfStmt:
		// if recv == nil { ... return } / if recv.f == nil { ... return }
		if s.Init != nil || !isNilCompare(s.Cond, recv, token.EQL) {
			return false
		}
		return endsInReturn(s.Body)
	case *ast.ReturnStmt:
		// A body that is a single return evaluating only a nil
		// comparison of the receiver, e.g. "return p.c != nil".
		if len(fn.Body.List) != 1 || len(s.Results) != 1 {
			return false
		}
		return isNilCompare(s.Results[0], recv, token.EQL) || isNilCompare(s.Results[0], recv, token.NEQ)
	}
	return false
}

// isNilCompare reports whether expr is `x <op> nil` (or `nil <op> x`)
// where x is the receiver or a selector chain rooted at it.
func isNilCompare(expr ast.Expr, recv string, op token.Token) bool {
	be, ok := ast.Unparen(expr).(*ast.BinaryExpr)
	if !ok || be.Op != op {
		return false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(y) {
		return rootedAt(x, recv)
	}
	if isNilIdent(x) {
		return rootedAt(y, recv)
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// rootedAt reports whether e is recv or a selector chain recv.a.b...
func rootedAt(e ast.Expr, recv string) bool {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v.Name == recv
		case *ast.SelectorExpr:
			e = v.X
		default:
			return false
		}
	}
}

// endsInReturn reports whether the block's last statement is a return
// (the guard must actually exit the method).
func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}
