// Package lint hosts qoelint, the project's static-analysis suite. It
// mechanically enforces the three invariants the reproduction's
// headline results rest on — bit-identical determinism of the
// simulator core, injectivity of the canonical cache encodings, and
// the zero-allocation / nil-collector discipline of the hot paths —
// so that a future change cannot silently weaken what today is only
// guarded by after-the-fact tests.
//
// The analyzers are driven by source annotations:
//
//   - //qoe:hotpath on a function puts its body under the hotpath
//     allocation rules.
//   - //qoe:encodes T [T2 ...] on a function declares it the canonical
//     encoding of struct type T; the injectivity analyzer checks every
//     field of T is read by the function or its package-local callees.
//   - //qoe:notaxis T.Field <reason> (alongside //qoe:encodes, or on
//     the field itself) deliberately excludes a field from encoding
//     coverage.
//   - //qoe:nilsafe on a type requires every exported pointer-receiver
//     method to begin with a nil guard.
//
// A finding is silenced — never silently, always with a visible
// justification — by a suppression comment on the flagged line or the
// line above:
//
//	//lint:allow qoelint/<analyzer> <justification>
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"bufferqoe/internal/lint/analysis"
)

// All returns the full qoelint analyzer suite.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{Determinism, Injectivity, Hotpath, Nilguard}
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Finding is one resolved diagnostic.
type Finding struct {
	Pos      token.Position `json:"pos"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [qoelint/%s]", f.Pos, f.Message, f.Analyzer)
}

// Run applies the analyzers to every package, filters findings through
// the //lint:allow suppression comments, and returns what remains
// sorted by position. Analyzer errors (not findings) abort the run.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		raw, err := runPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, Suppress(pkg.Fset, pkg.Syntax, raw)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// runPackage runs the analyzers over one package and resolves raw
// diagnostics to positions, without suppression filtering.
func runPackage(pkg *Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(d.Pos),
				Analyzer: name,
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("qoelint/%s on %s: %v", a.Name, pkg.PkgPath, err)
		}
	}
	return out, nil
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer string // analyzer name, without the qoelint/ prefix
	reason   string
	pos      token.Pos
}

const allowPrefix = "lint:allow"

// Suppress filters findings through the files' //lint:allow comments.
// An allow comment silences findings of the named analyzer on its own
// line and on the line below (so it can trail the flagged statement or
// sit immediately above it). Allows that are malformed or carry no
// justification are themselves reported as findings — the whole point
// of the syntax is that every escape documents why it is sound.
func Suppress(fset *token.FileSet, files []*ast.File, findings []Finding) []Finding {
	// allowed[file][line] -> analyzers allowed on that line
	allowed := make(map[string]map[int][]string)
	var out []Finding
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				d, err := parseAllow(text, c.Pos())
				if err != nil {
					out = append(out, Finding{
						Pos:      fset.Position(c.Pos()),
						Analyzer: "suppress",
						Message:  err.Error(),
					})
					continue
				}
				line := fset.Position(c.Pos()).Line
				if allowed[fname] == nil {
					allowed[fname] = make(map[int][]string)
				}
				allowed[fname][line] = append(allowed[fname][line], d.analyzer)
				allowed[fname][line+1] = append(allowed[fname][line+1], d.analyzer)
			}
		}
	}
	for _, f := range findings {
		if contains(allowed[f.Pos.Filename][f.Pos.Line], f.Analyzer) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// parseAllow parses "lint:allow qoelint/<name> <justification>". A
// "//" inside the comment ends the directive (commentary beyond it,
// e.g. golden-test want markers, is not part of the justification).
func parseAllow(text string, pos token.Pos) (allowDirective, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
	if cut, _, found := strings.Cut(rest, "//"); found {
		rest = strings.TrimSpace(cut)
	}
	name, reason, _ := strings.Cut(rest, " ")
	const pfx = "qoelint/"
	if !strings.HasPrefix(name, pfx) || name == pfx {
		return allowDirective{}, fmt.Errorf("suppression %q must name an analyzer as qoelint/<name>", "//"+allowPrefix+" "+rest)
	}
	reason = strings.TrimSpace(reason)
	if reason == "" {
		return allowDirective{}, fmt.Errorf("suppression //%s %s requires a justification after the analyzer name", allowPrefix, name)
	}
	return allowDirective{analyzer: strings.TrimPrefix(name, pfx), reason: reason, pos: pos}, nil
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file is a _test.go file. The
// analyzers skip those: the enforced invariants govern shipped
// simulator code, while tests may freely use wall clocks, global
// randomness and fmt.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}
