package lint_test

import (
	"testing"

	"bufferqoe/internal/lint"
	"bufferqoe/internal/lint/linttest"
)

func TestInjectivity(t *testing.T) {
	linttest.Run(t, "testdata/injectivity", lint.Injectivity)
}
