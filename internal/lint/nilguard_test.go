package lint_test

import (
	"testing"

	"bufferqoe/internal/lint"
	"bufferqoe/internal/lint/linttest"
)

func TestNilguard(t *testing.T) {
	linttest.Run(t, "testdata/nilguard", lint.Nilguard)
}
