// Package enc encodes axis structs from another package, the way the
// real experiments package renders testbed.LinkParams.
package enc

import (
	"fmt"

	"inj/axis"
)

// Tag canonically encodes axis.Wide; Legacy is deliberately excluded
// with an encoder-side exclusion (field annotations in the axis
// package are invisible from here, so the exclusion must ride on the
// encoder).
//
//qoe:encodes axis.Wide
//qoe:notaxis Wide.Legacy carried for config migration, never keyed
func Tag(w axis.Wide) string {
	return fmt.Sprintf("a=%d;b=%d", w.A, w.B)
}

// LeakyTag forgets B on an imported struct.
//
//qoe:encodes axis.Wide
func LeakyTag(w axis.Wide) string { // want `Wide\.B is never read by canonical encoding LeakyTag` `Wide\.Legacy is never read by canonical encoding LeakyTag`
	return fmt.Sprintf("a=%d", w.A)
}

// BadRef names a type that does not resolve.
//
//qoe:encodes axis.Missing // want `cannot resolve axis\.Missing`
func BadRef() string {
	return ""
}

// AllowedLeak shows a suppressed coverage hole: the findings land on
// the function declaration, so the suppression sits directly above it
// (with a justification, as always).
//
//qoe:encodes axis.Wide
//lint:allow qoelint/injectivity demo escape: B and Legacy are folded into A upstream
func AllowedLeak(w axis.Wide) string {
	return fmt.Sprintf("a=%d", w.A)
}
