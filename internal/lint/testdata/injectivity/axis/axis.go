// Package axis declares cache-axis structs and same-package canonical
// encoders for the injectivity golden tests.
package axis

import "fmt"

// Spec is fully covered: Name and Buf are encoded directly, Reps via
// the repTag helper, and Debug is a declared non-axis.
type Spec struct {
	Name string
	Buf  int
	Reps int
	// Debug is display-only; it never shapes a cell's value.
	//qoe:notaxis display-only knob, never shapes the cell value
	Debug string
}

// Key renders the canonical cache key for Spec.
//
//qoe:encodes Spec
func (s Spec) Key() string {
	return fmt.Sprintf("name=%s|buf=%d|%s", s.Name, s.Buf, repTag(s))
}

// repTag is a package-local callee; fields it reads count as covered.
func repTag(s Spec) string {
	return fmt.Sprintf("reps=%d", s.Reps)
}

// Leaky has a field its encoder never reads.
type Leaky struct {
	Name string
	Skew int
}

// LeakyKey forgets Skew: two Leaky specs differing only in Skew would
// share one cache entry.
//
//qoe:encodes Leaky
func (l Leaky) LeakyKey() string { // want `Leaky\.Skew is never read by canonical encoding LeakyKey`
	return "name=" + l.Name
}

// Reasonless exercises the field-annotation syntax check.
type Reasonless struct {
	//qoe:notaxis // want `requires a reason`
	X int
}

// ReasonlessKey covers X anyway so the only finding is the bad
// annotation itself.
//
//qoe:encodes Reasonless
func (r Reasonless) ReasonlessKey() string {
	return fmt.Sprint(r.X)
}

// Wide is encoded from another package (see inj/enc); Legacy is
// excluded there with an encoder-side //qoe:notaxis.
type Wide struct {
	A, B   int
	Legacy string
}

// Nested exercises multi-type coverage: the encoder must read the
// outer and inner fields.
type Nested struct {
	Label string
	Inner Inner
}

// Inner is the nested axis struct.
type Inner struct {
	Rate  float64
	Burst int
}

// NestedKey covers Nested but forgets Inner.Burst.
//
//qoe:encodes Nested Inner
func (n Nested) NestedKey() string { // want `Inner\.Burst is never read by canonical encoding NestedKey`
	return fmt.Sprintf("%s|rate=%g", n.Label, n.Inner.Rate)
}
