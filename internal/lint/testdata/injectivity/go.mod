module inj

go 1.24
