module nils

go 1.24
