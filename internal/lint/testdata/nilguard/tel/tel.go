// Package tel exercises the nil-guard contract for telemetry types.
package tel

// Collector is the disabled-when-nil aggregate.
//
//qoe:nilsafe
type Collector struct {
	c *Collector
	n int
}

// Good guards the receiver first.
func (c *Collector) Good() int {
	if c == nil {
		return 0
	}
	return c.n
}

// GoodBare guards with a bare return.
func (c *Collector) GoodBare(d int) {
	if c == nil {
		return
	}
	c.n += d
}

// GoodFieldGuard guards a receiver field, the PhaseClock shape.
func (c *Collector) GoodFieldGuard(d int) {
	if c.c == nil {
		return
	}
	c.c.n += d
}

// Enabled is a single nil-comparison return: it is its own guard.
func (c *Collector) Enabled() bool { return c != nil }

// Bad does work with no guard.
func (c *Collector) Bad() int { // want `must begin with a nil guard`
	return c.n
}

// BadOrder guards too late.
func (c *Collector) BadOrder(d int) { // want `must begin with a nil guard`
	v := c.n + d
	if c == nil {
		return
	}
	c.n = v
}

// BadNoExit has a guard that does not leave the method.
func (c *Collector) BadNoExit(d int) { // want `must begin with a nil guard`
	if c == nil {
		d = 0
	}
	c.n += d
}

// BadWrongOp guards with != instead of an early nil exit.
func (c *Collector) BadWrongOp(d int) { // want `must begin with a nil guard`
	if c != nil {
		c.n += d
	}
}

// internal is unexported: callers inside the package guard for it.
func (c *Collector) internal() int { return c.n }

// Reading is a value-receiver method: a nil pointer dereferences
// before the call, which is outside this contract.
func (c Collector) Reading() int { return c.n }

// Allowed documents a method that is only reachable with a live
// collector.
//
//lint:allow qoelint/nilguard only called by Snapshot after its own guard
func (c *Collector) Allowed() int {
	return c.n
}

// Plain has no annotation and therefore no guard obligation.
type Plain struct{ n int }

// Get needs no guard.
func (p *Plain) Get() int { return p.n }
