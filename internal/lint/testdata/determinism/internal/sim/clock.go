// Package sim is a golden sim-core package: its import path ends in
// internal/sim, so the determinism analyzer applies in full.
package sim

import (
	"math/rand/v2"
	"time"
)

// BadClock reads the wall clock inside the simulator core.
func BadClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

// BadElapsed measures real elapsed time.
func BadElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// BadSleep blocks on real time.
func BadSleep() {
	time.Sleep(time.Millisecond) // want `time\.Sleep waits on real time`
}

// BadTimer waits on a real timer.
func BadTimer() {
	<-time.After(time.Second) // want `time\.After waits on real time`
}

// BadRand draws from the global generator.
func BadRand() int {
	return rand.IntN(10) // want `rand\.IntN draws from the process-global random source`
}

// BadShuffle permutes with the global generator.
func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the process-global random source`
}

// GoodRand derives an explicitly seeded stream: constructors are the
// sanctioned way in.
func GoodRand(seed uint64) float64 {
	r := rand.New(rand.NewPCG(seed, 1))
	return r.Float64()
}

// GoodDuration only uses time's types and constants, which are fine.
func GoodDuration(d time.Duration) time.Duration {
	return d + time.Millisecond
}

// AllowedClock documents a deliberate wall-clock read.
func AllowedClock() time.Time {
	//lint:allow qoelint/determinism observational timing for logs, never enters cell state
	return time.Now()
}

// BadAllow has a suppression with no justification: the suppression
// itself is a finding and the original finding survives.
func BadAllow() time.Time {
	//lint:allow qoelint/determinism // want `requires a justification`
	return time.Now() // want `time\.Now reads the wall clock`
}
