// Package engine is a golden sim-core package exercising the
// canonical-encoding map-iteration rules.
package engine

import (
	"sort"
	"strings"
)

// Spec is a toy cell spec with a map-valued axis.
type Spec struct {
	Axes map[string]string
}

// Key renders the cache key; ranging over the map makes the rendered
// key order nondeterministic even though the parts are sorted after.
func (s Spec) Key() string {
	var parts []string
	for k, v := range s.Axes { // want `map iteration order is nondeterministic inside canonical encoding Key`
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// encodeAxes is caught by the encode* naming convention.
func encodeAxes(m map[string]string) string {
	out := ""
	for k := range m { // want `map iteration order is nondeterministic inside canonical encoding encodeAxes`
		out += k
	}
	return out
}

// Count is not an encoding function, so map iteration is fine here.
func (s Spec) Count() int {
	n := 0
	for range s.Axes {
		n++
	}
	return n
}
