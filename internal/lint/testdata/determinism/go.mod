module simcore

go 1.24
