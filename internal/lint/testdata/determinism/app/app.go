// Package app is not a sim-core package: wall clocks and global
// randomness are allowed here — but a function annotated as a
// canonical encoder still may not iterate maps.
package app

import (
	"math/rand/v2"
	"sort"
	"time"
)

// Uptime may read the wall clock outside the simulator core.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

// Jitter may use the global generator outside the simulator core.
func Jitter() float64 {
	return rand.Float64()
}

// Cfg is an axis struct encoded by Render.
type Cfg struct {
	Tags map[string]bool
}

// Render is declared a canonical encoding by annotation, so the
// map-range rule applies even outside sim-core packages.
//
//qoe:encodes Cfg
func Render(c Cfg) string {
	keys := make([]string, 0, len(c.Tags))
	for k := range c.Tags { // want `map iteration order is nondeterministic inside canonical encoding Render`
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + ";"
	}
	return out
}
