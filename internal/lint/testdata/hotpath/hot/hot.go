// Package hot exercises the //qoe:hotpath allocation rules.
package hot

import "fmt"

// T is a toy dispatcher.
type T struct {
	sink  func()
	buf   []int
	boxes []any
}

func take(v any) {}

func consume(xs ...any) {}

// Dispatch allocates a closure per call.
//
//qoe:hotpath
func (t *T) Dispatch(n int) {
	t.sink = func() { _ = n } // want `function literal allocates a closure`
}

// Log formats on the hot path. The closure rule does not re-flag the
// arguments: fmt is the single finding.
//
//qoe:hotpath
func (t *T) Log(n int) {
	fmt.Println("n =", n) // want `fmt\.Println allocates and reflects`
}

// BoxAssign boxes an int into an interface variable.
//
//qoe:hotpath
func (t *T) BoxAssign(n int) {
	var sink any
	sink = n // want `int value boxed into any allocates`
	_ = sink
}

// BoxCall boxes through a parameter; pointer-shaped values are exempt.
//
//qoe:hotpath
func (t *T) BoxCall(d int64) {
	take(d)          // want `int64 value boxed into any allocates`
	take(t)          // pointer: free
	take(nil)        // nil: free
	take("constant") // constant: materialized statically
}

// BoxVariadic boxes each non-exempt variadic element.
//
//qoe:hotpath
func (t *T) BoxVariadic(x int, y *T) {
	consume(x, y) // want `int value boxed into any allocates`
}

// BoxSpread passes an existing slice through: no per-element boxing.
//
//qoe:hotpath
func (t *T) BoxSpread() {
	consume(t.boxes...)
}

// BoxReturn boxes on return.
//
//qoe:hotpath
func (t *T) BoxReturn(n int) any {
	return n // want `int value boxed into any allocates`
}

// Grow appends to a slice declared with zero capacity.
//
//qoe:hotpath
func (t *T) Grow(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want `append grows out from zero capacity`
	}
	return out
}

// GrowEmptyLit is the literal spelling of the same bug.
//
//qoe:hotpath
func (t *T) GrowEmptyLit(n int) []int {
	out := []int{}
	return append(out, n) // want `append grows out from zero capacity`
}

// GrowMakeZero grows from make with zero length and no capacity.
//
//qoe:hotpath
func (t *T) GrowMakeZero(n int) []int {
	out := make([]int, 0)
	return append(out, n) // want `append grows out from zero capacity`
}

// GrowOK preallocates.
//
//qoe:hotpath
func (t *T) GrowOK(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// GrowField appends to a field: the owner is responsible for its
// capacity, so the analyzer trusts it.
//
//qoe:hotpath
func (t *T) GrowField(n int) {
	t.buf = append(t.buf, n)
}

// GrowParam appends to a caller-owned slice: trusted likewise.
//
//qoe:hotpath
func GrowParam(dst []int, n int) []int {
	return append(dst, n)
}

// Allowed documents a deliberate once-per-setup closure.
//
//qoe:hotpath
func (t *T) Allowed() {
	//lint:allow qoelint/hotpath one closure per engine lifetime, not per event
	t.sink = func() {}
}

// Cold is unannotated: closures, fmt and interface boxing are its own
// business.
func (t *T) Cold(n int) {
	t.sink = func() { fmt.Println(n) }
	take(n)
	out := []int{}
	t.buf = append(out, n)
}
